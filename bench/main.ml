(* Reproduction harness for every table and figure in the paper's
   evaluation (§5), plus the §4.3 replacement-policy study and bechamel
   micro-benchmarks of the simulator's kernels.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- --quick    # small scales (CI-sized)
     dune exec bench/main.exe -- --table 2 --only go,gcc
     dune exec bench/main.exe -- --figure 7
     dune exec bench/main.exe -- --ablation gc

   Absolute times are host-dependent; the paper's claims reproduced here
   are the RATIOS (memoization speedup, FastSim vs SimpleScalar) and the
   memoization statistics; see EXPERIMENTS.md. *)

let quick = ref false
let repeat = ref 1
let only : string list ref = ref []
let sections : string list ref = ref []
let json_out = ref "BENCH_fastsim.json"
let require_speedup = ref 0.
let min_measure = ref 0.25

(* filled by the hotpath section; lands in the JSON artifact *)
let hotpath_stats : (string * float) list ref = ref []

(* filled by the loadtest section; lands in the JSON artifact *)
let loadtest_reports : (string * Fastsim_obs.Json.t) list ref = ref []

(* filled by the strategy section; lands in the JSON artifact *)
let strategy_report : Fastsim_obs.Json.t option ref = ref None

let add_section s () = sections := s :: !sections

let speclist =
  [ ("--quick", Arg.Set quick, " use small (test) workload scales");
    ("--repeat", Arg.Set_int repeat, "N time each engine N times, keep the best");
    ( "--min-time",
      Arg.Set_float min_measure,
      "S keep re-timing until S seconds have been measured cumulatively \
       (default 0.25; stabilizes millisecond-long quick-scale runs)" );
    ( "--only",
      Arg.String (fun s -> only := String.split_on_char ',' s),
      "W,W,... restrict to the named workloads" );
    ( "--table",
      Arg.Int (fun n -> add_section (Printf.sprintf "table%d" n) ()),
      "N reproduce Table N (1-5)" );
    ( "--figure",
      Arg.Int (fun n -> add_section (Printf.sprintf "figure%d" n) ()),
      "N reproduce Figure N (7)" );
    ( "--ablation",
      Arg.String (fun s -> add_section ("ablation-" ^ s) ()),
      "gc|bpred|cache|approx|width|inputs run an ablation study" );
    ("--micro", Arg.Unit (add_section "micro"), " bechamel micro-benchmarks");
    ( "--hotpath",
      Arg.Unit (add_section "hotpath"),
      " hot-path throughput: encode+lookup ops/s, replay groups/s" );
    ( "--loadtest",
      Arg.Unit (add_section "loadtest"),
      " daemon under concurrent load: fleet vs fork, cold vs warm \
       (req/s, p50/p99)" );
    ( "--strategy",
      Arg.Unit (add_section "strategy"),
      " strategy engines: interval-parallel wall-clock vs serial, \
       sampled estimation error (always full scale)" );
    ( "--require-speedup",
      Arg.Set_float require_speedup,
      "X exit 1 if any workload's fast-vs-slow speedup is below X (CI \
       gate)" );
    ( "--json",
      Arg.Set_string json_out,
      "FILE machine-readable results file (default BENCH_fastsim.json; \
       empty string disables)" ) ]

let usage =
  "main.exe [--quick] [--table N] [--figure 7] [--ablation X] [--micro]"

let wanted section =
  match !sections with [] -> true | l -> List.mem section l

let workloads () =
  let all = Workloads.Suite.all in
  match !only with
  | [] -> all
  | names ->
    List.filter
      (fun (w : Workloads.Workload.t) ->
        List.mem w.name names || List.mem w.short names)
      all

let scale_of (w : Workloads.Workload.t) =
  if !quick then w.test_scale else w.default_scale

(* Best-of-N timing with a floor on the cumulative measured time:
   quick-scale kernels finish in milliseconds, where a fixed iteration
   count is noise-dominated. Iterating until the floor is reached makes
   the minimum converge; long runs hit the floor in one iteration, so
   full-scale timing is unchanged. *)
let max_timing_iters = 100

let timed_loop run =
  let best = ref infinity in
  let result = ref None in
  let total = ref 0. in
  let iters = ref 0 in
  while
    !iters < max 1 !repeat
    || (!total < !min_measure && !iters < max_timing_iters)
  do
    let r, dt = run () in
    total := !total +. dt;
    incr iters;
    if dt < !best then best := dt;
    result := Some r
  done;
  match !result with Some r -> (r, !best) | None -> assert false

let time_best f =
  timed_loop (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0))

(* ---------------------------------------------------------------- *)
(* One full measurement per workload, shared by Tables 2, 3, 4, 5.
   The engine runs go through the sweep executor's runner, so the bench
   measures exactly what `fastsim sweep` measures (simulation proper,
   program construction excluded). *)

module Spec = Fastsim.Sim.Spec

let job ?(spec = Spec.default) engine (w : Workloads.Workload.t) =
  { Fastsim_exec.Job.id = 0;
    workload = w.name;
    scale = scale_of w;
    engine;
    spec;
    cache_name = "default";
    params_name = "default";
    warm = None;
    fault = None }

let time_best_sim j = timed_loop (fun () -> Fastsim_exec.Runner.run_sim j)

type row = {
  w : Workloads.Workload.t;
  insts : int;
  t_prog : float;
  t_slow : float;
  slow : Fastsim.Sim.result;
  t_fast : float;
  fast : Fastsim.Sim.result;
  t_base : float;
  base : Fastsim.Sim.result;
}

let measure_row (w : Workloads.Workload.t) =
  let prog = w.build (scale_of w) in
  let (_, _, insts), t_prog =
    time_best (fun () -> Fastsim.Sim.functional prog)
  in
  let slow, t_slow = time_best_sim (job `Slow w) in
  let fast, t_fast = time_best_sim (job `Fast w) in
  let base, t_base = time_best_sim (job `Baseline w) in
  assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
  assert (slow.Fastsim.Sim.retired = fast.Fastsim.Sim.retired);
  { w; insts; t_prog; t_slow; slow; t_fast; fast; t_base; base }

let rows : row list Lazy.t =
  lazy
    (List.map
       (fun w ->
         Printf.eprintf "  measuring %s...\n%!" w.Workloads.Workload.name;
         measure_row w)
       (workloads ()))

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ---------------------------------------------------------------- *)

let table1 () =
  header "Table 1: processor model parameters (configuration)";
  let p = Uarch.Params.default in
  Printf.printf "Decode %d instructions per cycle.\n" p.decode_width;
  Printf.printf
    "%d integer ALUs, %d FPUs, and %d load/store address adder(s).\n"
    p.int_units p.fp_units p.mem_units;
  Printf.printf "%d physical integer registers, %d physical FP registers.\n"
    p.phys_int_regs p.phys_fp_regs;
  Printf.printf "2-bit/512-entry branch history table for prediction.\n";
  Printf.printf
    "Speculation through up to %d conditional branches; %d-entry active \
     list.\n"
    p.max_spec_branches p.active_list;
  Printf.printf "Integer/FP/address queues: %d/%d/%d entries.\n" p.int_queue
    p.fp_queue p.addr_queue;
  let c = Cachesim.Config.default in
  Printf.printf "Non-blocking L1 and L2 data caches, %d MSHRs each.\n"
    c.l1_mshrs;
  Printf.printf "%d KByte %d-way set associative write-through L1.\n"
    (c.l1_size / 1024) c.l1_ways;
  Printf.printf "%d MByte %d-way set associative write-back L2.\n"
    (c.l2_size / 1024 / 1024) c.l2_ways;
  Printf.printf "%d byte wide, split transaction bus.\n" c.bus_width

let table2 () =
  header
    "Table 2: SlowSim/FastSim slowdowns vs functional execution, and the \
     memoization speedup (paper: 4.9x-11.9x)";
  Printf.printf "%-14s %9s %9s %9s %10s\n" "Benchmark" "Prog (s)" "SlowSim/"
    "FastSim/" "Slow/Fast";
  List.iter
    (fun r ->
      Printf.printf "%-14s %9.2f %9.1f %9.1f %10.2f\n"
        r.w.Workloads.Workload.name r.t_prog
        (r.t_slow /. r.t_prog)
        (r.t_fast /. r.t_prog)
        (r.t_slow /. r.t_fast))
    (Lazy.force rows)

let table3 () =
  header
    "Table 3: simulated cycles/instructions and simulation rates (paper: \
     FastSim 8.5x-14.7x SimpleScalar)";
  Printf.printf "%-14s %11s %11s %9s %9s %9s %9s\n" "Benchmark" "cycles"
    "insts" "SS Ki/s" "Slow Ki/s" "Fast Ki/s" "Fast/SS";
  List.iter
    (fun r ->
      let kips t = float_of_int r.slow.Fastsim.Sim.retired /. t /. 1000. in
      let base_kips =
        float_of_int r.base.Fastsim.Sim.retired /. r.t_base /. 1000.
      in
      Printf.printf "%-14s %11.3e %11.3e %9.1f %9.1f %9.1f %9.2f\n"
        r.w.Workloads.Workload.name
        (float_of_int r.slow.Fastsim.Sim.cycles)
        (float_of_int r.slow.Fastsim.Sim.retired)
        base_kips (kips r.t_slow) (kips r.t_fast)
        (kips r.t_fast /. base_kips))
    (Lazy.force rows)

let table4 () =
  header
    "Table 4: instructions simulated in detail vs replayed (paper: \
     detailed fraction 0.001%-0.311%)";
  Printf.printf "%-14s %12s %12s %14s\n" "Benchmark" "Detailed" "Replay"
    "Detailed/Total";
  List.iter
    (fun r ->
      match r.fast.Fastsim.Sim.memo with
      | None -> ()
      | Some m ->
        Printf.printf "%-14s %12.2e %12.2e %13.3f%%\n"
          r.w.Workloads.Workload.name
          (float_of_int m.Memo.Stats.detailed_retired)
          (float_of_int m.Memo.Stats.replayed_retired)
          (100. *. Memo.Stats.detailed_fraction m))
    (Lazy.force rows)

let table5 () =
  header
    "Table 5: memoization measurements (paper: 3.4-4.9 actions/config; \
     long replay chains)";
  Printf.printf "%-14s %9s %9s %9s %8s %8s %10s %12s\n" "Benchmark"
    "Cache(KB)" "Configs" "Actions" "Act/Cfg" "Cyc/Cfg" "AvgChain"
    "MaxChain";
  List.iter
    (fun r ->
      match (r.fast.Fastsim.Sim.memo, r.fast.Fastsim.Sim.pcache) with
      | Some m, Some p ->
        let groups = max 1 m.Memo.Stats.groups_replayed in
        Printf.printf "%-14s %9.1f %9d %9d %8.1f %8.1f %10.0f %12d\n"
          r.w.Workloads.Workload.name
          (float_of_int p.Memo.Pcache.peak_modeled_bytes /. 1024.)
          p.Memo.Pcache.static_configs p.Memo.Pcache.static_actions
          (float_of_int m.Memo.Stats.actions_replayed /. float_of_int groups)
          (float_of_int m.Memo.Stats.replayed_cycles /. float_of_int groups)
          (Memo.Stats.avg_chain m) m.Memo.Stats.chain_max
      | _ -> ())
    (Lazy.force rows)

(* ---------------------------------------------------------------- *)

let figure7 () =
  header
    "Figure 7: memoization speedup vs p-action cache budget, flush-on-full \
     policy (paper: most benchmarks tolerate a 10x reduction)";
  let budgets = [ 1024; 2048; 4096; 8192; 16384; 32768; 65536 ] in
  Printf.printf "%-14s" "Benchmark";
  List.iter
    (fun b -> Printf.printf "%8s" (Printf.sprintf "%dK" (b / 1024)))
    budgets;
  Printf.printf "%8s\n" "unltd";
  List.iter
    (fun r ->
      Printf.printf "%-14s%!" r.w.Workloads.Workload.name;
      List.iter
        (fun budget ->
          let spec =
            Spec.with_policy (Memo.Pcache.Flush_on_full budget) Spec.default
          in
          let _, t = time_best_sim (job ~spec `Fast r.w) in
          Printf.printf "%8.2f%!" (r.t_slow /. t))
        budgets;
      Printf.printf "%8.2f\n" (r.t_slow /. r.t_fast))
    (Lazy.force rows)

let ablation_gc () =
  header
    "Ablation (paper 4.3/5): replacement policies at tight budgets (paper: \
     copying/generational GC no better than flush-on-full)";
  Printf.printf "%-14s %-22s %9s %7s %7s %9s\n" "Benchmark" "Policy"
    "time (s)" "colls" "flushes" "speedup";
  List.iter
    (fun r ->
      let budget =
        max 2048
          ((match r.fast.Fastsim.Sim.pcache with
           | Some p -> p.Memo.Pcache.peak_modeled_bytes
           | None -> 65536)
          / 4)
      in
      List.iter
        (fun (name, policy) ->
          let spec = Spec.with_policy policy Spec.default in
          let res, t = time_best_sim (job ~spec `Fast r.w) in
          let colls, flushes =
            match res.Fastsim.Sim.pcache with
            | Some p ->
              ( p.Memo.Pcache.minor_collections + p.Memo.Pcache.full_collections,
                p.Memo.Pcache.flushes )
            | None -> (0, 0)
          in
          Printf.printf "%-14s %-22s %9.2f %7d %7d %9.2f\n"
            r.w.Workloads.Workload.name
            (Printf.sprintf "%s@%dK" name (budget / 1024))
            t colls flushes (r.t_slow /. t))
        [ ("flush-on-full", Memo.Pcache.Flush_on_full budget);
          ("copying-gc", Memo.Pcache.Copying_gc budget);
          ( "generational-gc",
            Memo.Pcache.Generational_gc
              { nursery = budget / 4; total = budget } ) ])
    (Lazy.force rows)

let ablation_bpred () =
  header
    "Ablation: branch predictor vs memoization (mispredictions diversify \
     configurations and outcome edges)";
  Printf.printf "%-14s %-10s %11s %9s %9s %9s\n" "Benchmark" "Predictor"
    "cycles" "wrongpath" "configs" "speedup";
  List.iter
    (fun r ->
      List.iter
        (fun (name, predictor) ->
          let spec = Spec.with_predictor predictor Spec.default in
          let slow, t_slow = time_best_sim (job ~spec `Slow r.w) in
          let fast, t_fast = time_best_sim (job ~spec `Fast r.w) in
          assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
          let configs =
            match fast.Fastsim.Sim.pcache with
            | Some p -> p.Memo.Pcache.static_configs
            | None -> 0
          in
          Printf.printf "%-14s %-10s %11d %9d %9d %9.2f\n"
            r.w.Workloads.Workload.name name fast.Fastsim.Sim.cycles
            fast.Fastsim.Sim.wrong_path_insts configs (t_slow /. t_fast))
        [ ("2bit+ras", Fastsim.Sim.Standard);
          ("not-taken", Fastsim.Sim.Not_taken);
          ("taken", Fastsim.Sim.Taken) ])
    (Lazy.force rows)

let ablation_cache () =
  header
    "Ablation: cache size vs memoization (smaller caches create more \
     latency outcomes, widening the action graph)";
  Printf.printf "%-14s %-8s %11s %9s %9s %9s\n" "Benchmark" "Cache" "cycles"
    "l1 misses" "actions" "speedup";
  List.iter
    (fun r ->
      List.iter
        (fun (name, cache_config) ->
          let spec = Spec.with_cache_config cache_config Spec.default in
          let slow, t_slow = time_best_sim (job ~spec `Slow r.w) in
          let fast, t_fast = time_best_sim (job ~spec `Fast r.w) in
          assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
          let actions =
            match fast.Fastsim.Sim.pcache with
            | Some p -> p.Memo.Pcache.static_actions
            | None -> 0
          in
          Printf.printf "%-14s %-8s %11d %9d %9d %9.2f\n"
            r.w.Workloads.Workload.name name fast.Fastsim.Sim.cycles
            fast.Fastsim.Sim.cache.Cachesim.Hierarchy.l1_misses actions
            (t_slow /. t_fast))
        [ ("default", Cachesim.Config.default);
          ("tiny", Cachesim.Config.tiny) ])
    (Lazy.force rows)

let ablation_inputs () =
  header
    "Ablation (beyond the paper): does a p-action cache built on one INPUT \
     accelerate a different input of the same program? (configurations \
     reference code, not data)";
  Printf.printf "%-14s %-18s %9s %12s %9s\n" "Benchmark" "run" "time (s)"
    "detailed%" "configs";
  let experiments =
    [ ("099.go",
       (fun seed -> Workloads.Kernels_int.go ~data_seed:seed 200));
      ("129.compress",
       (fun seed -> Workloads.Kernels_int.compress ~data_seed:seed 2));
      ("101.tomcatv",
       (fun seed -> Workloads.Kernels_fp.tomcatv ~data_seed:seed 30)) ]
  in
  List.iter
    (fun (name, build) ->
      let prog_a = build 1111 and prog_b = build 9999 in
      let pc = Memo.Pcache.create () in
      let report label (res : Fastsim.Sim.result) t =
        match (res.Fastsim.Sim.memo, res.Fastsim.Sim.pcache) with
        | Some m, Some p ->
          Printf.printf "%-14s %-18s %9.2f %11.3f%% %9d\n" name label t
            (100. *. Memo.Stats.detailed_fraction m)
            p.Memo.Pcache.static_configs
        | _ -> ()
      in
      let fast pc prog =
        Fastsim.Sim.run ~engine:`Fast (Spec.with_pcache pc Spec.default) prog
      in
      let a, ta = time_best (fun () -> fast pc prog_a) in
      report "input A (cold)" a ta;
      let b, tb = time_best (fun () -> fast pc prog_b) in
      report "input B (shared)" b tb;
      let pc2 = Memo.Pcache.create () in
      let c, tc = time_best (fun () -> fast pc2 prog_b) in
      report "input B (cold)" c tc)
    experiments

let ablation_width () =
  header
    "Ablation: machine width (the iQ abstraction \"can be easily adapted\" \
     -- paper 4.1; same engines, different processor)";
  let machines =
    [ ("4-wide (paper)", Uarch.Params.default);
      ( "2-wide",
        { Uarch.Params.default with
          Uarch.Params.fetch_width = 2;
          decode_width = 2;
          retire_width = 2;
          int_units = 1;
          fp_units = 1 } );
      ( "8-wide",
        { Uarch.Params.default with
          Uarch.Params.fetch_width = 8;
          decode_width = 8;
          retire_width = 8;
          int_units = 4;
          fp_units = 4;
          mem_units = 2;
          active_list = 64;
          int_queue = 32;
          fp_queue = 32;
          addr_queue = 32;
          phys_int_regs = 96;
          phys_fp_regs = 96 } ) ]
  in
  Printf.printf "%-14s %-14s %11s %7s %9s\n" "Benchmark" "Machine" "cycles"
    "IPC" "speedup";
  List.iter
    (fun r ->
      List.iter
        (fun (name, params) ->
          let spec = Spec.with_params params Spec.default in
          let slow, t_slow = time_best_sim (job ~spec `Slow r.w) in
          let fast, t_fast = time_best_sim (job ~spec `Fast r.w) in
          assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
          Printf.printf "%-14s %-14s %11d %7.2f %9.2f\n"
            r.w.Workloads.Workload.name name slow.Fastsim.Sim.cycles
            (float_of_int slow.Fastsim.Sim.retired
            /. float_of_int slow.Fastsim.Sim.cycles)
            (t_slow /. t_fast))
        machines)
    (Lazy.force rows)

let ablation_approx () =
  header
    "Ablation (paper 2, Pai et al.): in-order approximation vs \
     cycle-accurate OOO -- the error is not a constant factor across \
     workloads, so a fast approximate model cannot rank designs";
  Printf.printf "%-14s %12s %12s %9s %9s\n" "Benchmark" "OOO cycles"
    "in-order" "ratio" "time (s)";
  List.iter
    (fun r ->
      let prog = r.w.Workloads.Workload.build (scale_of r.w) in
      let a, t = time_best (fun () -> Baseline.Inorder.run prog) in
      Printf.printf "%-14s %12d %12d %9.2f %9.2f\n"
        r.w.Workloads.Workload.name r.slow.Fastsim.Sim.cycles
        a.Baseline.Inorder.cycles
        (float_of_int a.Baseline.Inorder.cycles
        /. float_of_int r.slow.Fastsim.Sim.cycles)
        t)
    (Lazy.force rows)

(* ---------------------------------------------------------------- *)
(* Machine-readable results: one JSON object per measured workload — the
   Table 2/3/4 numbers (slowdowns vs functional, simulation rates, memo
   hit fractions) plus a per-phase host-time split from one extra
   profiled fast run. Consumed by CI and plotting scripts. *)

let write_json path =
  let open Fastsim_obs.Json in
  let row_json r =
    let phases =
      (* The timed runs above are unobserved (profiling would perturb
         them); one extra profiled run splits host time into phases. *)
      let prof = Fastsim_obs.Profile.create () in
      let obs = Fastsim_obs.Ctx.create ~profile:prof () in
      let prog = r.w.Workloads.Workload.build (scale_of r.w) in
      ignore
        (Fastsim.Sim.run ~engine:`Fast (Spec.with_obs obs Spec.default) prog
          : Fastsim.Sim.result);
      Fastsim_obs.Profile.to_json prof
    in
    let memo =
      match (r.fast.Fastsim.Sim.memo, r.fast.Fastsim.Sim.pcache) with
      | Some m, Some p ->
        Obj
          [ ("detailed_fraction", Float (Memo.Stats.detailed_fraction m));
            ( "replay_fraction",
              Float (1. -. Memo.Stats.detailed_fraction m) );
            ("detailed_retired", Int m.Memo.Stats.detailed_retired);
            ("replayed_retired", Int m.Memo.Stats.replayed_retired);
            ("avg_chain", Float (Memo.Stats.avg_chain m));
            ("max_chain", Int m.Memo.Stats.chain_max);
            ("episodes", Int m.Memo.Stats.episodes);
            ("static_configs", Int p.Memo.Pcache.static_configs);
            ("static_actions", Int p.Memo.Pcache.static_actions);
            ("peak_modeled_bytes", Int p.Memo.Pcache.peak_modeled_bytes) ]
      | _ -> Null
    in
    Obj
      [ ("name", Str r.w.Workloads.Workload.name);
        ("scale", Int (scale_of r.w));
        ("insts", Int r.insts);
        ("cycles", Int r.slow.Fastsim.Sim.cycles);
        ("retired", Int r.slow.Fastsim.Sim.retired);
        ( "seconds",
          Obj
            [ ("functional", Float r.t_prog);
              ("slow", Float r.t_slow);
              ("fast", Float r.t_fast);
              ("baseline", Float r.t_base) ] );
        ( "slowdown_vs_functional",
          Obj
            [ ("slow", Float (r.t_slow /. r.t_prog));
              ("fast", Float (r.t_fast /. r.t_prog)) ] );
        ("memo_speedup", Float (r.t_slow /. r.t_fast));
        ("memo", memo);
        ("phases_seconds", phases) ]
  in
  let rows = if Lazy.is_val rows then Lazy.force rows else [] in
  let geomean =
    match rows with
    | [] -> Null
    | rs ->
      let logs =
        List.fold_left (fun acc r -> acc +. log (r.t_slow /. r.t_fast)) 0. rs
      in
      Float (exp (logs /. float_of_int (List.length rs)))
  in
  let doc =
    Obj
      [ ("harness", Str "fastsim-bench");
        ("quick", Bool !quick);
        ("repeat", Int !repeat);
        ("geomean_memo_speedup", geomean);
        ( "hotpath",
          match !hotpath_stats with
          | [] -> Null
          | stats -> Obj (List.map (fun (k, v) -> (k, Float v)) stats) );
        ( "loadtest",
          match !loadtest_reports with [] -> Null | l -> Obj l );
        ( "strategy",
          match !strategy_report with None -> Null | Some j -> j );
        ("workloads", List (List.map row_json rows)) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc doc;
      output_char oc '\n');
  Printf.eprintf "machine-readable results written to %s\n%!" path

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the engine's kernels.                *)

(* A detailed simulator stepped to a mid-run state, so snapshot encoding
   sees a busy pipeline (shared by the micro and hotpath sections). *)
let busy_uarch prog =
  let pred = Bpred.standard ~prog () in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create () in
  let oracle : Uarch.Oracle.t =
    { cache_load =
        (fun ~now ->
          let l = Emu.Emulator.pop_load emu in
          Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr);
      cache_store =
        (fun ~now ->
          let s = Emu.Emulator.pop_store emu in
          Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr);
      fetch_control =
        (fun () ->
          match Emu.Emulator.next_event emu with
          | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
            Uarch.Oracle.C_cond
              { taken; mispredicted = taken <> predicted_taken }
          | Emu.Emulator.Indirect { target; predicted; _ } ->
            Uarch.Oracle.C_indirect { target; hit = predicted = Some target }
          | _ -> Uarch.Oracle.C_stalled);
      rollback =
        (fun ~index -> ignore (Emu.Emulator.rollback_to emu ~index : int)) }
  in
  let uarch = Uarch.Detailed.create prog in
  for i = 0 to 49 do
    ignore
      (Uarch.Detailed.step_cycle uarch ~now:i oracle
        : Uarch.Detailed.cycle_result)
  done;
  uarch

let micro () =
  header "Micro-benchmarks (bechamel, ns per call)";
  let open Bechamel in
  let prog = (Workloads.Suite.find "go").build 2 in
  (* a mid-run snapshot to exercise encode/decode on a busy pipeline *)
  let busy_key = Uarch.Detailed.snapshot (busy_uarch prog) in
  let fetch_state, iq = Uarch.Snapshot.decode prog ~capacity:32 busy_key in
  let hierarchy = Cachesim.Hierarchy.create () in
  let clock = ref 0 in
  let pcache = Memo.Pcache.create () in
  ignore (Memo.Pcache.intern pcache busy_key : Memo.Action.config);
  let tests =
    Test.make_grouped ~name:"fastsim"
      [ Test.make ~name:"snapshot-encode"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Uarch.Snapshot.encode ~fetch:fetch_state iq)));
        Test.make ~name:"snapshot-decode"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Uarch.Snapshot.decode prog ~capacity:32 busy_key)));
        Test.make ~name:"pcache-intern"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Memo.Pcache.intern pcache busy_key)));
        (let arena = Uarch.Snapshot.Arena.create () in
         Test.make ~name:"encode+intern-arena"
           (Staged.stage (fun () ->
                Uarch.Snapshot.encode_into arena ~fetch:fetch_state iq;
                Sys.opaque_identity (Memo.Pcache.intern_arena pcache arena))));
        Test.make ~name:"cache-load"
          (Staged.stage (fun () ->
               incr clock;
               Sys.opaque_identity
                 (Cachesim.Hierarchy.load hierarchy ~now:!clock
                    ~addr:(!clock * 4096 land 0xfffff))));
        Test.make ~name:"functional-run-2k-insts"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Emu.Emulator.run_functional ~max_insts:2000 prog))) ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/call\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* ---------------------------------------------------------------- *)
(* Hot-path throughput: the operations the interning rewrite targets
   (docs/INTERNALS.md "Hot path"), reported as rates so CI can spot a
   regression at a glance. Results land in the JSON artifact. *)

let hotpath () =
  header "Hot path: zero-allocation interning and warm replay throughput";
  let prog = (Workloads.Suite.find "go").build 2 in
  let uarch = busy_uarch prog in
  let pcache = Memo.Pcache.create () in
  ignore
    (Memo.Pcache.intern_arena pcache (Uarch.Detailed.snapshot_arena uarch)
      : Memo.Action.config);
  let iters = if !quick then 300_000 else 3_000_000 in
  (* warm hit through the arena: encode + hash + probe, no allocation *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match
      Memo.Pcache.find_arena pcache (Uarch.Detailed.snapshot_arena uarch)
    with
    | Some _ -> ()
    | None -> assert false
  done;
  let encode_lookup = float_of_int iters /. (Unix.gettimeofday () -. t0) in
  (* the legacy path (materialise the key string, then intern) for scale *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore
      (Sys.opaque_identity
         (Memo.Pcache.intern pcache (Uarch.Detailed.snapshot uarch))
        : Memo.Action.config)
  done;
  let string_intern = float_of_int iters /. (Unix.gettimeofday () -. t0) in
  (* warm-cache replay rate (stride-compacted chains included) *)
  let w = Workloads.Suite.find "compress" in
  let wprog = w.Workloads.Workload.build (scale_of w) in
  let pc = Memo.Pcache.create () in
  ignore
    (Fastsim.Sim.run ~engine:`Fast Spec.(with_pcache pc default) wprog
      : Fastsim.Sim.result);
  let r, dt =
    time_best (fun () ->
        Fastsim.Sim.run ~engine:`Fast Spec.(with_pcache pc default) wprog)
  in
  let groups =
    match r.Fastsim.Sim.memo with
    | Some m -> m.Memo.Stats.groups_replayed
    | None -> 0
  in
  let replay_rate = float_of_int groups /. dt in
  (* the same replay after an FSPC0004 save/load round trip: strides come
     back rule-backed from the chain store, and the rate must hold up
     against the freshly compacted in-memory cache above (CI gates on
     this ratio — grammar compression is not allowed to tax replay) *)
  let path = Filename.temp_file "fastsim_bench" ".fspc" in
  Memo.Persist.Codec.save_file pc ~program:wprog path;
  let pc' = Memo.Persist.Codec.load_file ~program:wprog path in
  Sys.remove path;
  let r', dt' =
    time_best (fun () ->
        Fastsim.Sim.run ~engine:`Fast Spec.(with_pcache pc' default) wprog)
  in
  let groups' =
    match r'.Fastsim.Sim.memo with
    | Some m -> m.Memo.Stats.groups_replayed
    | None -> 0
  in
  let warm_replay_rate = float_of_int groups' /. dt' in
  (* persist footprint over the whole kernel suite, current codec vs the
     inline-segment FSPC0003 stream (always at test scale: the ratio is
     what matters, and CI gates v4 <= v3) *)
  let v4_bytes = ref 0 and v3_bytes = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = w.build w.test_scale in
      let pc = Memo.Pcache.create () in
      ignore
        (Fastsim.Sim.run ~engine:`Fast Spec.(with_pcache pc default) prog
          : Fastsim.Sim.result);
      let size codec =
        let p = Filename.temp_file "fastsim_bench_sz" ".fspc" in
        Memo.Persist.Codec.save_file ~codec pc ~program:prog p;
        let n = (Unix.stat p).Unix.st_size in
        Sys.remove p;
        n
      in
      v4_bytes := !v4_bytes + size Memo.Persist.Codec.current;
      v3_bytes := !v3_bytes + size Memo.Persist.Codec.v3)
    Workloads.Suite.all;
  Printf.printf "encode+lookup (arena):  %14.0f ops/s\n" encode_lookup;
  Printf.printf "encode+intern (string): %14.0f ops/s\n" string_intern;
  Printf.printf "warm replay:            %14.0f groups/s  (%d groups, %.3f s)\n"
    replay_rate groups dt;
  Printf.printf "warm replay (reloaded): %14.0f groups/s  (%d groups, %.3f s)\n"
    warm_replay_rate groups' dt';
  Printf.printf "persist bytes (suite):  %14d FSPC0004 / %d FSPC0003 (%.2fx)\n"
    !v4_bytes !v3_bytes
    (float_of_int !v4_bytes /. float_of_int (max 1 !v3_bytes));
  hotpath_stats :=
    [ ("encode_lookup_ops_per_sec", encode_lookup);
      ("string_intern_ops_per_sec", string_intern);
      ("replay_groups_per_sec", replay_rate);
      ("warm_replay_groups_per_s", warm_replay_rate);
      ("persist_bytes_fspc0004", float_of_int !v4_bytes);
      ("persist_bytes_fspc0003", float_of_int !v3_bytes) ]

(* ---------------------------------------------------------------- *)
(* Daemon under load: the fleet backend against the fork-per-request
   baseline, cold registry vs warm, at high client concurrency. The
   interesting ratios are warm-vs-cold (memoization through the wire)
   and fleet-vs-fork (persistent shard workers vs per-request forks). *)

let loadtest () =
  header
    "Loadtest: daemon throughput/latency under concurrent clients (fleet \
     vs fork, cold vs warm)";
  let clients = if !quick then 24 else 100 in
  let requests = 2 in
  let jobs = 4 in
  let print_phase tag (p : Fastsim_serve.Loadtest.phase) =
    Printf.printf
      "  %-6s %5d req in %6.2fs  %8.1f req/s  p50 %8.1fms  p99 %8.1fms  \
       (%d warm, %d errors)\n"
      tag p.Fastsim_serve.Loadtest.ph_requests p.ph_wall_s p.ph_rps
      p.ph_p50_ms p.ph_p99_ms p.ph_warm_hits p.ph_errors
  in
  List.iter
    (fun (label, backend) ->
      let cfg =
        { Fastsim_serve.Loadtest.default with
          Fastsim_serve.Loadtest.backend;
          jobs;
          clients;
          requests_per_client = requests }
      in
      match Fastsim_serve.Loadtest.run cfg with
      | Error m -> Printf.printf "%-8s FAILED: %s\n" label m
      | Ok r ->
        Printf.printf "%s (%d clients, %d jobs):\n" label clients jobs;
        print_phase "cold" r.Fastsim_serve.Loadtest.lt_cold;
        print_phase "warm" r.Fastsim_serve.Loadtest.lt_warm;
        if r.Fastsim_serve.Loadtest.lt_divergent > 0 then
          Printf.printf "  DIVERGENCE: %d workload(s) disagreed with \
                         direct runs\n"
            r.Fastsim_serve.Loadtest.lt_divergent;
        loadtest_reports :=
          !loadtest_reports
          @ [ (label, Fastsim_serve.Loadtest.report_to_json r) ])
    [ ("fleet", `Fleet); ("fork", `Fork) ]

(* ---------------------------------------------------------------- *)
(* Strategy engines (docs/STRATEGY.md): interval-parallel wall-clock
   against the serial reference it must reproduce bit-for-bit, and the
   sampled engine's estimation error against the exact run. Always at
   full scale, even under --quick: the timing ratio is meaningless on
   millisecond-long runs where fork/marshal overhead dominates. *)

let strategy_section () =
  header
    "Strategy engines: interval-parallel stitching and periodic sampling";
  let cores = Fastsim_exec.Domain_shim.recommended_jobs () in
  let jobs = max 2 cores in
  let once f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun name ->
        let w = Workloads.Suite.find name in
        let prog = w.Workloads.Workload.build w.default_scale in
        let slow, t_slow =
          once (fun () -> Fastsim.Sim.run ~engine:`Slow Spec.default prog)
        in
        let t = slow.Fastsim.Sim.retired in
        let parallel =
          Fastsim.Sim.Parallel
            { interval_insns = max 1 (t / 3);
              warmup_insns = max 1 (t / 64);
              fanout = Some (Fastsim_exec.Strategy_pool.fanout ~jobs ()) }
        in
        let par, t_par =
          once (fun () ->
              Fastsim.Sim.run ~strategy:parallel ~engine:`Slow Spec.default
                prog)
        in
        let prov r =
          match r.Fastsim.Sim.provenance with
          | Some p -> p
          | None -> failwith "strategy run without provenance"
        in
        let pp = prov par in
        let agreement = par.Fastsim.Sim.cycles = slow.Fastsim.Sim.cycles in
        let fast, _ =
          once (fun () -> Fastsim.Sim.run ~engine:`Fast Spec.default prog)
        in
        let sampled =
          Fastsim.Sim.Sampled
            { sample_insns = max 1 (t / 40);
              sample_period = max 1 (t / 20);
              warmup_insns = max 1 (t / 80) }
        in
        let sam, t_sam =
          once (fun () ->
              Fastsim.Sim.run ~strategy:sampled ~engine:`Fast Spec.default
                prog)
        in
        let err =
          abs_float
            (float_of_int (sam.Fastsim.Sim.cycles - fast.Fastsim.Sim.cycles))
          /. float_of_int (max 1 fast.Fastsim.Sim.cycles)
        in
        Printf.printf
          "%-12s serial %6.2fs  parallel %6.2fs (%4.2fx, %d/%d stitched%s)  \
           sampled %5.2fs err %5.2f%%\n%!"
          w.Workloads.Workload.name t_slow t_par (t_slow /. t_par)
          pp.Fastsim.Sim.prov_accepted pp.Fastsim.Sim.prov_intervals
          (if agreement then "" else ", CYCLE MISMATCH")
          t_sam (100. *. err);
        let open Fastsim_obs.Json in
        Obj
          [ ("name", Str w.Workloads.Workload.name);
            ("retired", Int t);
            ("serial_slow_s", Float t_slow);
            ("parallel_s", Float t_par);
            ("parallel_speedup", Float (t_slow /. t_par));
            ("intervals", Int pp.Fastsim.Sim.prov_intervals);
            ("accepted", Int pp.Fastsim.Sim.prov_accepted);
            ("repaired", Int pp.Fastsim.Sim.prov_repaired);
            ("cycle_agreement", Bool agreement);
            ("sampled_s", Float t_sam);
            ("sampled_windows", Int (prov sam).Fastsim.Sim.prov_intervals);
            ("sampled_rel_err", Float err) ])
      [ "go"; "m88ksim"; "ijpeg"; "perl" ]
  in
  strategy_report :=
    Some
      Fastsim_obs.Json.(
        Obj [ ("jobs", Int jobs); ("cores", Int cores);
              ("kernels", List rows) ])

(* The CI gate: with --require-speedup X, any workload whose fast-vs-slow
   speedup falls below X fails the run (after the JSON artifact is
   written, so the evidence is always archived). *)
let speedup_failures () =
  if !require_speedup <= 0. then []
  else begin
    let rs = Lazy.force rows in
    let speedups = List.map (fun r -> r.t_slow /. r.t_fast) rs in
    let geomean =
      exp
        (List.fold_left (fun acc s -> acc +. log s) 0. speedups
        /. float_of_int (List.length speedups))
    in
    Printf.printf "\ngeomean memoization speedup: %.2fx (gate: %.2fx per \
                   workload)\n"
      geomean !require_speedup;
    List.filter
      (fun r -> r.t_slow /. r.t_fast < !require_speedup)
      rs
  end

let () =
  Arg.parse (Arg.align speclist)
    (fun a -> raise (Arg.Bad ("unknown " ^ a)))
    usage;
  Printf.printf "FastSim evaluation harness%s: %d workloads, repeat=%d\n%!"
    (if !quick then " (quick)" else "")
    (List.length (workloads ()))
    !repeat;
  if wanted "table1" then table1 ();
  if wanted "table2" then table2 ();
  if wanted "table3" then table3 ();
  if wanted "table4" then table4 ();
  if wanted "table5" then table5 ();
  if wanted "figure7" then figure7 ();
  if wanted "ablation-gc" then ablation_gc ();
  if wanted "ablation-bpred" then ablation_bpred ();
  if wanted "ablation-cache" then ablation_cache ();
  if wanted "ablation-approx" then ablation_approx ();
  if wanted "ablation-width" then ablation_width ();
  if wanted "ablation-inputs" then ablation_inputs ();
  if wanted "micro" then micro ();
  if wanted "hotpath" then hotpath ();
  if List.mem "loadtest" !sections then loadtest ();
  if List.mem "strategy" !sections then strategy_section ();
  let failures = speedup_failures () in
  (* Only when the shared rows were actually measured: a --micro-only or
     --table 1 invocation should not trigger the full suite. *)
  if
    !json_out <> ""
    && (Lazy.is_val rows || !hotpath_stats <> [] || !loadtest_reports <> []
        || !strategy_report <> None)
  then write_json !json_out;
  if failures <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf "SPEEDUP GATE FAILED: %s fast/slow = %.2fx < %.2fx\n"
          r.w.Workloads.Workload.name (r.t_slow /. r.t_fast)
          !require_speedup)
      failures;
    exit 1
  end
