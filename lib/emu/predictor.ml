type t = {
  predict_cond : pc:int -> bool;
  train_cond : pc:int -> taken:bool -> unit;
  predict_indirect : pc:int -> int option;
  train_indirect : pc:int -> target:int -> unit;
  note_call : pc:int -> return_to:int -> unit;
}

let always_not_taken =
  { predict_cond = (fun ~pc:_ -> false);
    train_cond = (fun ~pc:_ ~taken:_ -> ());
    predict_indirect = (fun ~pc:_ -> None);
    train_indirect = (fun ~pc:_ ~target:_ -> ());
    note_call = (fun ~pc:_ ~return_to:_ -> ()) }
