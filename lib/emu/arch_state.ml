type t = {
  iregs : int array;
  fregs : float array;
  mutable pc : int;
}

let create ?(pc = 0) () =
  { iregs = Array.make Isa.Reg.count 0;
    fregs = Array.make Isa.Reg.count 0.0;
    pc }

let norm32 v =
  let v = v land 0xffffffff in
  if v >= 0x80000000 then v - 0x100000000 else v

let to_u32 v = v land 0xffffffff

let get_i t r = if r = Isa.Reg.zero then 0 else Array.unsafe_get t.iregs r
let set_i t r v =
  if r <> Isa.Reg.zero then Array.unsafe_set t.iregs r (norm32 v)

let get_f t r = Array.unsafe_get t.fregs r
let set_f t r v = Array.unsafe_set t.fregs r v

let snapshot t =
  { iregs = Array.copy t.iregs; fregs = Array.copy t.fregs; pc = t.pc }

let restore t ~from_ =
  Array.blit from_.iregs 0 t.iregs 0 (Array.length t.iregs);
  Array.blit from_.fregs 0 t.fregs 0 (Array.length t.fregs);
  t.pc <- from_.pc

let equal a b =
  a.pc = b.pc && a.iregs = b.iregs
  && Array.for_all2 (fun (x : float) y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a.fregs b.fregs
