type t = { pages : (int, Bytes.t) Hashtbl.t }

exception Unaligned of int

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

let create () = { pages = Hashtbl.create 64 }

let mask32 a = a land 0xffffffff

let page t addr =
  let key = addr lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.add t.pages key p;
    p

let check_align addr width =
  if addr land (width - 1) <> 0 then raise (Unaligned addr)

(* All multi-byte accesses are naturally aligned, so they never straddle a
   page boundary and can use the single-page fast path. *)

let load8u t addr =
  let addr = mask32 addr in
  Char.code (Bytes.unsafe_get (page t addr) (addr land page_mask))

let load8 t addr =
  let v = load8u t addr in
  if v >= 0x80 then v - 0x100 else v

let load16u t addr =
  let addr = mask32 addr in
  check_align addr 2;
  Bytes.get_uint16_le (page t addr) (addr land page_mask)

let load16 t addr =
  let v = load16u t addr in
  if v >= 0x8000 then v - 0x10000 else v

let load32 t addr =
  let addr = mask32 addr in
  check_align addr 4;
  Int32.to_int (Bytes.get_int32_le (page t addr) (addr land page_mask))

let load64 t addr =
  let addr = mask32 addr in
  check_align addr 8;
  Bytes.get_int64_le (page t addr) (addr land page_mask)

let store8 t addr v =
  let addr = mask32 addr in
  Bytes.unsafe_set (page t addr) (addr land page_mask)
    (Char.unsafe_chr (v land 0xff))

let store16 t addr v =
  let addr = mask32 addr in
  check_align addr 2;
  Bytes.set_uint16_le (page t addr) (addr land page_mask) (v land 0xffff)

let store32 t addr v =
  let addr = mask32 addr in
  check_align addr 4;
  Bytes.set_int32_le (page t addr) (addr land page_mask) (Int32.of_int v)

let store64 t addr v =
  let addr = mask32 addr in
  check_align addr 8;
  Bytes.set_int64_le (page t addr) (addr land page_mask) v

let load_double t addr = Int64.float_of_bits (load64 t addr)
let store_double t addr v = store64 t addr (Int64.bits_of_float v)

let init_segment t addr bytes =
  String.iteri (fun i c -> store8 t (addr + i) (Char.code c)) bytes

let load_program t (p : Isa.Program.t) =
  Array.iteri
    (fun i w -> store32 t (p.code_base + (4 * i)) (Int32.to_int w))
    p.words;
  List.iter (fun (addr, bytes) -> init_segment t addr bytes) p.data

let pages_allocated t = Hashtbl.length t.pages

(* ---- capture / restore (strategy engines, docs/STRATEGY.md) ---- *)

let is_zero_page p =
  let n = Bytes.length p in
  let rec go i = i >= n || (Bytes.unsafe_get p i = '\000' && go (i + 1)) in
  go 0

let copy t =
  let pages = Hashtbl.create (max 16 (Hashtbl.length t.pages)) in
  Hashtbl.iter (fun k p -> Hashtbl.add pages k (Bytes.copy p)) t.pages;
  { pages }

(* Canonical page image: sorted by page index, with all-zero pages dropped
   (a demand-created zero page is indistinguishable from an untouched
   one), so two behaviourally identical memories always produce equal
   arrays — this doubles as the restorable form and the comparable form. *)
let to_pages t =
  let acc = ref [] in
  Hashtbl.iter
    (fun k p -> if not (is_zero_page p) then acc := (k, Bytes.to_string p) :: !acc)
    t.pages;
  let a = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
  a

let of_pages pages =
  let t = create () in
  Array.iter
    (fun (k, img) -> Hashtbl.replace t.pages k (Bytes.of_string img))
    pages;
  t
