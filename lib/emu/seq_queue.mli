(** FIFO queues addressed by absolute sequence number.

    The emulator's lQ and sQ are queues whose *producer* end can be rolled
    back: entries recorded down a mispredicted path must be discarded when
    the misprediction is repaired, while entries already consumed by the
    µ-architecture simulator stay consumed. Addressing both ends with
    monotonically increasing sequence numbers makes that truncation a
    constant-time pointer move. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Appends at the tail. *)

val pop : 'a t -> 'a
(** Removes from the head. Raises [Invalid_argument] when empty. *)

val peek : 'a t -> 'a option

val length : 'a t -> int

val head_seq : 'a t -> int
(** Sequence number of the next entry to be popped. *)

val tail_seq : 'a t -> int
(** Sequence number the next pushed entry will receive. *)

val truncate_to : 'a t -> int -> unit
(** [truncate_to q seq] discards entries with sequence number >= [seq].
    If consumption has already advanced past [seq], the queue simply
    becomes empty (consumed entries are never restored). *)

val last : 'a t -> 'a
(** The most recently pushed entry. Raises [Invalid_argument] when no
    un-consumed entries remain. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
(** Iterates over un-consumed entries, head to tail. *)
