(** Sparse, demand-paged simulated memory.

    Memory is a flat 32-bit little-endian byte space backed by 4 KiB pages
    allocated on first touch. Reads from untouched pages return zero.
    Accesses must be naturally aligned; {!Unaligned} is raised otherwise
    (SRISC has no unaligned accesses).

    This is the *functional* memory used by direct execution; the cache
    simulator never reads or writes data, it only sees addresses — exactly
    as in FastSim, where "no program data is returned by the [cache]
    simulator, only the time taken to obtain the data". *)

type t

exception Unaligned of int

val create : unit -> t

val load8 : t -> int -> int   (** sign-extended byte. *)

val load8u : t -> int -> int

val load16 : t -> int -> int  (** sign-extended halfword. *)

val load16u : t -> int -> int

val load32 : t -> int -> int
(** 32-bit load, returned as a signed OCaml int in [-2{^31}, 2{^31}). *)

val load64 : t -> int -> int64

val store8 : t -> int -> int -> unit
val store16 : t -> int -> int -> unit
val store32 : t -> int -> int -> unit
val store64 : t -> int -> int64 -> unit

val load_double : t -> int -> float
val store_double : t -> int -> float -> unit

val init_segment : t -> int -> string -> unit
(** [init_segment m addr bytes] copies [bytes] into memory at [addr]
    (no alignment requirement). Used to load program data segments. *)

val load_program : t -> Isa.Program.t -> unit
(** Copies a program's encoded code and data segments into memory. *)

val pages_allocated : t -> int
(** Number of 4 KiB pages touched so far (for tests/diagnostics). *)

(** {1 Capture / restore}

    Used by the strategy engines (interval-parallel simulation,
    [docs/STRATEGY.md]) to checkpoint functional memory at instruction
    boundaries. *)

val copy : t -> t
(** Deep copy (pages are duplicated). *)

val to_pages : t -> (int * string) array
(** Canonical page image: (page index, 4 KiB contents) sorted by index,
    with all-zero pages dropped — a demand-created zero page is
    indistinguishable from an untouched one, so behaviourally identical
    memories always produce byte-equal arrays. *)

val of_pages : (int * string) array -> t
(** Rebuilds a memory from {!to_pages} output. *)
