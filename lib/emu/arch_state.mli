(** Architectural register state.

    Integer registers hold signed 32-bit values represented as OCaml ints in
    [-2{^31}, 2{^31}); FP registers hold IEEE doubles. [r0] always reads as
    zero. The program counter is a byte address. *)

type t = {
  iregs : int array;
  fregs : float array;
  mutable pc : int;
}

val create : ?pc:int -> unit -> t

val get_i : t -> Isa.Reg.ireg -> int
val set_i : t -> Isa.Reg.ireg -> int -> unit
(** Writes are normalised to signed 32-bit; writes to [r0] are discarded. *)

val get_f : t -> Isa.Reg.freg -> float
val set_f : t -> Isa.Reg.freg -> float -> unit

val norm32 : int -> int
(** Wraps an OCaml int to the canonical signed 32-bit representation. *)

val to_u32 : int -> int
(** The unsigned 32-bit value of a canonical signed-32 int. *)

val snapshot : t -> t
(** Deep copy (used for bQ register checkpoints). *)

val restore : t -> from_:t -> unit
(** Overwrites [t] with the contents of a snapshot. *)

val equal : t -> t -> bool
