(** Speculative direct-execution of SRISC programs.

    This module is the reproduction of FastSim's instrumented executable
    (paper §3.1–3.2): it executes target instructions functionally, in
    program order, while recording exactly the information the timing
    simulators need —

    - every load and store address (the lQ and sQ queues);
    - a control event at every conditional branch and indirect jump;
    - at every {e mispredicted} conditional branch, a register checkpoint
      (the bQ, at most {!max_checkpoints} deep) and, from then on, the
      pre-store value of every store so memory can be rolled back.

    Conditional branches are followed in the {e predicted} direction, so
    mispredicted paths execute for real — producing wrong-path loads,
    stores and further control events — until the µ-architecture simulator
    detects the misprediction and calls {!rollback_to}, which restores
    registers and memory and resumes execution at the corrected target.

    Indirect jumps (including returns) always follow their true target;
    the predicted target in the event lets the timing model decide whether
    fetch stalled (see DESIGN.md for this deliberate restriction of
    speculation to conditional branches). *)

type load_rec = { l_addr : int; l_width : int }
type store_rec = { s_addr : int; s_width : int }

type control =
  | Cond of {
      pc : int;
      taken : bool;
      predicted_taken : bool;
      fall_through : int;
      taken_target : int;
    }
  | Indirect of { pc : int; target : int; predicted : int option }
  | Halted of { pc : int }
      (** The program executed [Halt] on the architectural path. *)
  | Wedged of { pc : int }
      (** Wrong-path execution can no longer proceed (it ran off the code
          segment, misaligned an access, or reached [Halt] speculatively).
          Fetch must stall until a rollback repairs the path. *)

type t

exception Fault of string
(** Raised when the {e architectural} (non-speculative) path faults:
    executing outside the code segment, or a misaligned access. These
    indicate a broken test program, not a simulator condition. *)

val max_checkpoints : int
(** Capacity of the bQ. The processor model speculates through at most 4
    conditional branches, but direct execution runs one control event ahead
    of fetch (so that lQ/sQ always cover everything the pipeline can
    fetch), which can briefly add outstanding checkpoints; the capacity
    leaves headroom for that. *)

val create : ?read_ahead:bool -> ?predictor:Predictor.t -> Isa.Program.t -> t
(** Fresh emulator with the program loaded into memory and the PC at the
    entry point. Default predictor is {!Predictor.always_not_taken}.
    [read_ahead] (default true) pre-runs execution to the first control
    event so lQ/sQ always cover everything a decoupled pipeline can fetch;
    pass [false] when driving the emulator per-instruction with
    {!step_one}. *)

val next_event : t -> control
(** Runs forward to the next control event. If the emulator is already
    halted or wedged, returns that state again without executing. *)

val rollback_to : t -> index:int -> int
(** [rollback_to t ~index] repairs the misprediction of the [index]-th
    oldest outstanding checkpoint: restores its registers, unwinds all
    stores logged since it, discards it and all younger checkpoints, and
    resumes at the corrected target. Returns the corrected PC.
    Raises [Invalid_argument] if [index] is out of range. *)

val outstanding : t -> int
(** Number of unresolved misprediction checkpoints (depth of the bQ). *)

val pop_load : t -> load_rec
(** Consumes the oldest unconsumed lQ entry (µ-arch issues it to the cache
    simulator). Entries recorded on a squashed wrong path that were never
    consumed disappear at rollback. *)

val pop_store : t -> store_rec

val loads_pending : t -> int
val stores_pending : t -> int

val halted : t -> bool
val wedged : t -> bool

val insts_executed : t -> int
(** Instructions executed on the current (believed-correct) path; wrong-path
    work is subtracted again at rollback. *)

val wrong_path_insts : t -> int
(** Total instructions that were executed and later rolled back. *)

val state : t -> Arch_state.t
(** The live architectural state (shared, not a copy). *)

type stepped = {
  s_addr : int;               (** address of the executed instruction. *)
  s_event : control option;   (** control event produced, if any. *)
  s_load : load_rec option;   (** lQ entry recorded, if any. *)
  s_store : store_rec option; (** sQ entry recorded, if any. *)
}

val step_one : t -> stepped
(** Executes exactly one instruction, for simulators that interleave
    functional execution with timing per instruction (the
    SimpleScalar-style baseline). On an already halted or wedged emulator,
    returns the corresponding event without executing. Do not mix with
    {!next_event}'s read-ahead on the same instance. *)

val memory : t -> Memory.t

(** {1 Pure functional execution}

    The analogue of running the original, uninstrumented executable: no
    recording, no prediction, no speculation. Used as the "native execution
    time" baseline of Tables 2 and 3 and to cross-check architectural
    results. *)

val run_functional :
  ?max_insts:int -> Isa.Program.t -> Arch_state.t * Memory.t * int
(** [run_functional p] executes [p] to completion (or [max_insts]) and
    returns the final state, memory, and instruction count. *)

(** {1 Capture / restore}

    Full-state checkpointing at instruction boundaries, for the strategy
    engines (interval-parallel simulation, [docs/STRATEGY.md]). A capture
    is plain, closure-free data: safe to [Marshal] across a process
    boundary and safe to compare for behavioural equality via
    {!Capture.canonical}. *)

module Capture : sig
  type cap_ck = {
    k_regs : Arch_state.t;
    k_undo : int;
    k_lq : int;   (** relative to the consumed lQ head at capture. *)
    k_sq : int;
    k_insts : int;  (** relative to the captured instruction count. *)
  }

  type t = {
    c_state : Arch_state.t;
    c_pages : (int * string) array;   (** canonical memory image. *)
    c_undo : (int * int * int64) array;
    c_checkpoints : cap_ck list;      (** youngest first. *)
    c_lq : load_rec array;            (** unconsumed entries, oldest first. *)
    c_sq : store_rec array;
    c_halted : bool;
    c_wedged : bool;
    c_pending : control option;
        (** the one-event read-ahead, carried verbatim. Restoring a blank
            here and re-producing the event would re-train the predictor
            on outcomes it already saw — the latent checkpoint hazard
            pinned by test_strategy.ml. *)
    c_insts : int;     (** non-behavioural: statistics continuation. *)
    c_wp_insts : int;  (** non-behavioural: statistics continuation. *)
  }

  val canonical : t -> string
  (** Byte encoding of the {e behavioural} part of the capture (the
      counters [c_insts]/[c_wp_insts] are excluded): two captures with
      equal canonical strings produce identical future behaviour. *)
end

val capture : t -> Capture.t
(** Copies the complete emulator state out, including mid-speculation
    state: undo log, outstanding misprediction checkpoints (queue
    references re-based to the consumed head), unconsumed lQ/sQ entries
    and the pending read-ahead event. *)

val restore : ?predictor:Predictor.t -> Isa.Program.t -> Capture.t -> t
(** Rebuilds an emulator from a capture. The caller supplies the predictor
    (restore it separately via {!Bpred.handle}); the pending read-ahead
    event is restored verbatim, never re-produced. *)

val create_at :
  ?predictor:Predictor.t -> Isa.Program.t -> state:Arch_state.t ->
  mem:Memory.t -> insts:int -> t
(** Fresh (non-speculative, cold) emulator positioned at an architectural
    checkpoint: registers from [state] (copied), memory [mem] (owned by
    the new emulator — pass a {!Memory.copy} to keep the original), and
    the instruction counter at [insts]. Read-ahead is primed, so the
    predictor sees exactly what a cold start at this boundary would. *)

(** {1 Functional checkpointing} *)

type functional_ck = {
  f_state : Arch_state.t;
  f_mem : Memory.t;   (** private copy. *)
  f_insts : int;
}

(** Architectural observation hooks for {e functional warming} (the
    sampled strategy engine, docs/STRATEGY.md): while a functional pass
    fast-forwards between samples, these callbacks let the caller keep a
    cache model and a branch predictor trained on the architectural
    stream — the SMARTS insight that makes short detailed samples
    unbiased. Fired by {!run_functional_checkpoints} as each instruction
    executes: loads/stores with their effective address, conditional
    branches with their outcome, indirect jumps with their target, calls
    with their return address. *)
type warm_hooks = {
  wh_load : addr:int -> width:int -> unit;
  wh_store : addr:int -> width:int -> unit;
  wh_cond : pc:int -> taken:bool -> unit;
  wh_indirect : pc:int -> target:int -> unit;
  wh_call : pc:int -> return_to:int -> unit;
}

val run_functional_checkpoints :
  ?max_insts:int ->
  ?on_inst:(pc:int -> unit) ->
  ?hooks:warm_hooks ->
  Isa.Program.t ->
  at:int list ->
  functional_ck list * Arch_state.t * int * bool
(** Pure functional execution that snapshots the architectural state at
    each instruction count in [at] (deduplicated; 0 means the initial
    state). [on_inst] is called with the PC before each executed
    instruction (including the final [Halt]). Returns the checkpoints in
    ascending order, the final state, the instruction count, and whether
    the program halted (as opposed to hitting [max_insts]). *)
