type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* absolute seq of next pop *)
  mutable tail : int;  (* absolute seq of next push *)
}

let create () = { buf = Array.make 64 None; head = 0; tail = 0 }

let slot t seq = seq land (Array.length t.buf - 1)

let grow t =
  let n = Array.length t.buf in
  let buf' = Array.make (2 * n) None in
  for seq = t.head to t.tail - 1 do
    buf'.(seq land ((2 * n) - 1)) <- t.buf.(seq land (n - 1))
  done;
  t.buf <- buf'

let push t x =
  if t.tail - t.head >= Array.length t.buf then grow t;
  t.buf.(slot t t.tail) <- Some x;
  t.tail <- t.tail + 1

let pop t =
  if t.head >= t.tail then invalid_arg "Seq_queue.pop: empty";
  let i = slot t t.head in
  match t.buf.(i) with
  | None -> assert false
  | Some x ->
    t.buf.(i) <- None;
    t.head <- t.head + 1;
    x

let peek t =
  if t.head >= t.tail then None
  else t.buf.(slot t t.head)

let length t = t.tail - t.head
let head_seq t = t.head
let tail_seq t = t.tail

let truncate_to t seq =
  let seq = max seq t.head in
  for s = seq to t.tail - 1 do
    t.buf.(slot t s) <- None
  done;
  t.tail <- seq

let clear t = truncate_to t t.head

let last t =
  if t.tail <= t.head then invalid_arg "Seq_queue.last: empty";
  match t.buf.(slot t (t.tail - 1)) with
  | Some x -> x
  | None -> assert false

let iter f t =
  for s = t.head to t.tail - 1 do
    match t.buf.(slot t s) with Some x -> f x | None -> assert false
  done
