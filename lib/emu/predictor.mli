(** Branch-predictor interface used by speculative direct-execution.

    In FastSim, instrumented code consults the branch predictor *during
    functional execution* (Figure 3: "advance simulation & call branch
    predictor") and then branches in the predicted direction, so the
    predictor lives outside the memoized µ-architecture simulator. This
    record is that boundary: the emulator asks for predictions and trains
    the predictor as branches execute; implementations live in [Bpred]. *)

type t = {
  predict_cond : pc:int -> bool;
      (** Predicted direction for the conditional branch at [pc]. *)
  train_cond : pc:int -> taken:bool -> unit;
      (** Called with the actual outcome after every conditional branch. *)
  predict_indirect : pc:int -> int option;
      (** Predicted target for the indirect jump at [pc], if any. *)
  train_indirect : pc:int -> target:int -> unit;
  note_call : pc:int -> return_to:int -> unit;
      (** Called when a call instruction ([Jal]/[Jalr]) executes, so a
          return-address-stack predictor can push the return address. *)
}

val always_not_taken : t
(** Static predictor: conditional branches predicted not-taken, indirect
    targets never predicted. Useful in tests. *)
