type load_rec = { l_addr : int; l_width : int }
type store_rec = { s_addr : int; s_width : int }

type control =
  | Cond of {
      pc : int;
      taken : bool;
      predicted_taken : bool;
      fall_through : int;
      taken_target : int;
    }
  | Indirect of { pc : int; target : int; predicted : int option }
  | Halted of { pc : int }
  | Wedged of { pc : int }

exception Fault of string

(* The processor model speculates through at most 4 conditional branches,
   but direct execution runs one control event ahead of the pipeline's
   fetch, so a few extra outstanding checkpoints are possible. *)
let max_checkpoints = 8

(* A wrong path that executes this many instructions without reaching a
   control event can never be fetched that deep by a 32-entry pipeline;
   treat it as a fetch stall (wedge) to bound wrong-path execution. *)
let wrong_path_step_limit = 10_000

(* Architectural straight-line runs between control events are bounded too:
   exceeding this means an infinite loop of direct jumps (a broken test
   program), which would otherwise spin forever inside event production. *)
let straight_line_step_limit = 50_000_000

type checkpoint = {
  ck_regs : Arch_state.t;  (* pc = corrected resume target *)
  ck_undo : int;
  ck_lq : int;
  ck_sq : int;
  ck_insts : int;
}

(* Architectural observation hooks for functional warming (the sampled
   strategy engine, docs/STRATEGY.md): fired by [step] as instructions
   execute, so a fast-forwarding pass can keep cache and branch-predictor
   models warm without any timing simulation. *)
type warm_hooks = {
  wh_load : addr:int -> width:int -> unit;
  wh_store : addr:int -> width:int -> unit;
  wh_cond : pc:int -> taken:bool -> unit;
  wh_indirect : pc:int -> target:int -> unit;
  wh_call : pc:int -> return_to:int -> unit;
}

type t = {
  prog : Isa.Program.t;
  mem : Memory.t;
  st : Arch_state.t;
  pred : Predictor.t;
  recording : bool;
  lq : load_rec Seq_queue.t;
  sq : store_rec Seq_queue.t;
  mutable undo : (int * int * int64) array;
  mutable undo_len : int;
  mutable checkpoints : checkpoint list;  (* youngest first *)
  mutable insts : int;
  mutable wp_insts : int;
  mutable halted_f : bool;
  mutable wedged_f : bool;
  (* One-event read-ahead: direct execution always runs one control event
     past the last one handed to the µ-architecture, so every load/store on
     straight-line code the pipeline can fetch is already in lQ/sQ. Off for
     per-instruction (step_one) clients. *)
  mutable read_ahead : bool;
  mutable pending : control option;
  mutable hooks : warm_hooks option;
}

let create_gen ~recording ?(predictor = Predictor.always_not_taken) prog =
  let mem = Memory.create () in
  Memory.load_program mem prog;
  { prog;
    mem;
    st = Arch_state.create ~pc:prog.Isa.Program.entry ();
    pred = predictor;
    recording;
    lq = Seq_queue.create ();
    sq = Seq_queue.create ();
    undo = Array.make 256 (0, 0, 0L);
    undo_len = 0;
    checkpoints = [];
    insts = 0;
    wp_insts = 0;
    halted_f = false;
    wedged_f = false;
    read_ahead = false;
    pending = None;
    hooks = None }

let speculative t = t.checkpoints <> []

let push_undo t addr width pre =
  if t.undo_len >= Array.length t.undo then begin
    let arr = Array.make (2 * Array.length t.undo) (0, 0, 0L) in
    Array.blit t.undo 0 arr 0 t.undo_len;
    t.undo <- arr
  end;
  t.undo.(t.undo_len) <- (addr, width, pre);
  t.undo_len <- t.undo_len + 1

let apply_undo t mark =
  for i = t.undo_len - 1 downto mark do
    let addr, width, pre = t.undo.(i) in
    match width with
    | 1 -> Memory.store8 t.mem addr (Int64.to_int pre)
    | 2 -> Memory.store16 t.mem addr (Int64.to_int pre)
    | 4 -> Memory.store32 t.mem addr (Int64.to_int pre)
    | 8 -> Memory.store64 t.mem addr pre
    | _ -> assert false
  done;
  t.undo_len <- mark

let pre_value t addr width =
  match width with
  | 1 -> Int64.of_int (Memory.load8u t.mem addr)
  | 2 -> Int64.of_int (Memory.load16u t.mem addr)
  | 4 -> Int64.of_int (Memory.load32 t.mem addr land 0xffffffff)
  | 8 -> Memory.load64 t.mem addr
  | _ -> assert false

let eval_cond (c : Isa.Instr.cond) a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Gt -> a > b

let fcvt_to_int v =
  if Float.is_nan v then 0
  else if v >= 2147483647.0 then 0x7fffffff
  else if v <= -2147483648.0 then -0x80000000
  else int_of_float (Float.trunc v)

(* Executes the instruction at the current PC. Returns a control event if
   the instruction is a conditional branch, indirect jump, or halt. *)
let step t : control option =
  let st = t.st in
  let pc = st.pc in
  let open Isa.Instr in
  match Isa.Program.fetch t.prog pc with
  | exception Isa.Program.Fault _ ->
    if speculative t then begin
      t.wedged_f <- true;
      Some (Wedged { pc })
    end
    else raise (Fault (Printf.sprintf "fetch outside code segment at 0x%x" pc))
  | insn -> (
    let gi = Arch_state.get_i st in
    let si = Arch_state.set_i st in
    let gf = Arch_state.get_f st in
    let sf = Arch_state.set_f st in
    let u32 = Arch_state.to_u32 in
    t.insts <- t.insts + 1;
    let next = pc + 4 in
    let mem_fault = ref false in
    let do_load rd_set ~addr ~width ~loader =
      let addr = u32 addr in
      match loader addr with
      | v ->
        if t.recording then Seq_queue.push t.lq { l_addr = addr; l_width = width };
        (match t.hooks with
         | Some h -> h.wh_load ~addr ~width
         | None -> ());
        rd_set v
      | exception Memory.Unaligned _ ->
        if speculative t then mem_fault := true
        else raise (Fault (Printf.sprintf "misaligned %d-byte load at 0x%x (pc 0x%x)" width addr pc))
    in
    let do_store ~addr ~width ~storer =
      let addr = u32 addr in
      if addr land (width - 1) <> 0 then begin
        if speculative t then mem_fault := true
        else raise (Fault (Printf.sprintf "misaligned %d-byte store at 0x%x (pc 0x%x)" width addr pc))
      end
      else begin
        if speculative t then push_undo t addr width (pre_value t addr width);
        storer addr;
        if t.recording then Seq_queue.push t.sq { s_addr = addr; s_width = width };
        (match t.hooks with
         | Some h -> h.wh_store ~addr ~width
         | None -> ())
      end
    in
    let event = ref None in
    (match insn with
     | Alu (op, rd, rs1, rs2) ->
       let a = gi rs1 and b = gi rs2 in
       let v =
         match op with
         | Add -> a + b
         | Sub -> a - b
         | And -> u32 a land u32 b
         | Or -> u32 a lor u32 b
         | Xor -> u32 a lxor u32 b
         | Sll -> u32 a lsl (b land 31)
         | Srl -> u32 a lsr (b land 31)
         | Sra -> a asr (b land 31)
         | Slt -> if a < b then 1 else 0
         | Sltu -> if u32 a < u32 b then 1 else 0
       in
       si rd v;
       st.pc <- next
     | Alui (op, rd, rs1, imm) ->
       let a = gi rs1 in
       let v =
         match op with
         | Add -> a + imm
         | Sub -> a - imm
         | And -> u32 a land imm
         | Or -> u32 a lor imm
         | Xor -> u32 a lxor imm
         | Sll -> u32 a lsl imm
         | Srl -> u32 a lsr imm
         | Sra -> a asr imm
         | Slt -> if a < imm then 1 else 0
         | Sltu -> if u32 a < u32 imm then 1 else 0
       in
       si rd v;
       st.pc <- next
     | Lui (rd, imm) ->
       si rd (imm lsl 16);
       st.pc <- next
     | Mul (rd, rs1, rs2) ->
       si rd (gi rs1 * gi rs2);
       st.pc <- next
     | Div (rd, rs1, rs2) ->
       let b = gi rs2 in
       si rd (if b = 0 then 0 else gi rs1 / b);
       st.pc <- next
     | Rem (rd, rs1, rs2) ->
       let b = gi rs2 in
       si rd (if b = 0 then gi rs1 else gi rs1 mod b);
       st.pc <- next
     | Load (w, rd, base, off) ->
       let addr = gi base + off in
       (match w with
        | Lb -> do_load (si rd) ~addr ~width:1 ~loader:(Memory.load8 t.mem)
        | Lbu -> do_load (si rd) ~addr ~width:1 ~loader:(Memory.load8u t.mem)
        | Lh -> do_load (si rd) ~addr ~width:2 ~loader:(Memory.load16 t.mem)
        | Lhu -> do_load (si rd) ~addr ~width:2 ~loader:(Memory.load16u t.mem)
        | Lw -> do_load (si rd) ~addr ~width:4 ~loader:(Memory.load32 t.mem));
       st.pc <- next
     | Store (w, rs, base, off) ->
       let addr = gi base + off in
       let v = gi rs in
       (match w with
        | Sb -> do_store ~addr ~width:1 ~storer:(fun a -> Memory.store8 t.mem a v)
        | Sh -> do_store ~addr ~width:2 ~storer:(fun a -> Memory.store16 t.mem a v)
        | Sw -> do_store ~addr ~width:4 ~storer:(fun a -> Memory.store32 t.mem a v));
       st.pc <- next
     | Fload (fd, base, off) ->
       do_load (sf fd) ~addr:(gi base + off) ~width:8
         ~loader:(Memory.load_double t.mem);
       st.pc <- next
     | Fstore (fs, base, off) ->
       let v = gf fs in
       do_store ~addr:(gi base + off) ~width:8
         ~storer:(fun a -> Memory.store_double t.mem a v);
       st.pc <- next
     | Fop (op, fd, fs1, fs2) ->
       let a = gf fs1 and b = gf fs2 in
       let v =
         match op with
         | Fadd -> a +. b
         | Fsub -> a -. b
         | Fmul -> a *. b
         | Fdiv -> a /. b
         | Fsqrt -> Float.sqrt a
         | Fneg -> -.a
         | Fabs -> Float.abs a
       in
       sf fd v;
       st.pc <- next
     | Fcmp (op, rd, fs1, fs2) ->
       let a = gf fs1 and b = gf fs2 in
       let r = match op with Feq -> a = b | Flt -> a < b | Fle -> a <= b in
       si rd (if r then 1 else 0);
       st.pc <- next
     | Fcvt_if (fd, rs) ->
       sf fd (float_of_int (gi rs));
       st.pc <- next
     | Fcvt_fi (rd, fs) ->
       si rd (fcvt_to_int (gf fs));
       st.pc <- next
     | Branch (c, rs1, rs2, off) ->
       let taken = eval_cond c (gi rs1) (gi rs2) in
       let fall_through = next and taken_target = next + (4 * off) in
       let actual = if taken then taken_target else fall_through in
       (match t.hooks with Some h -> h.wh_cond ~pc ~taken | None -> ());
       if t.recording then begin
         let predicted_taken = t.pred.predict_cond ~pc in
         t.pred.train_cond ~pc ~taken;
         if predicted_taken <> taken then begin
           assert (List.length t.checkpoints < max_checkpoints);
           let snap = Arch_state.snapshot st in
           snap.pc <- actual;
           t.checkpoints <-
             { ck_regs = snap;
               ck_undo = t.undo_len;
               ck_lq = Seq_queue.tail_seq t.lq;
               ck_sq = Seq_queue.tail_seq t.sq;
               ck_insts = t.insts }
             :: t.checkpoints
         end;
         st.pc <- (if predicted_taken then taken_target else fall_through);
         event :=
           Some
             (Cond { pc; taken; predicted_taken; fall_through; taken_target })
       end
       else st.pc <- actual
     | Jump target -> st.pc <- target * 4
     | Jal (rd, target) ->
       si rd next;
       if t.recording then t.pred.note_call ~pc ~return_to:next;
       (match t.hooks with
        | Some h -> h.wh_call ~pc ~return_to:next
        | None -> ());
       st.pc <- target * 4
     | Jr rs ->
       let target = u32 (gi rs) in
       st.pc <- target;
       (match t.hooks with
        | Some h -> h.wh_indirect ~pc ~target
        | None -> ());
       if t.recording then begin
         let predicted = t.pred.predict_indirect ~pc in
         t.pred.train_indirect ~pc ~target;
         event := Some (Indirect { pc; target; predicted })
       end
     | Jalr (rd, rs) ->
       let target = u32 (gi rs) in
       si rd next;
       st.pc <- target;
       (match t.hooks with
        | Some h ->
          h.wh_indirect ~pc ~target;
          h.wh_call ~pc ~return_to:next
        | None -> ());
       if t.recording then begin
         let predicted = t.pred.predict_indirect ~pc in
         t.pred.train_indirect ~pc ~target;
         t.pred.note_call ~pc ~return_to:next;
         event := Some (Indirect { pc; target; predicted })
       end
     | Nop -> st.pc <- next
     | Halt ->
       t.insts <- t.insts - 1;
       if speculative t then begin
         t.wedged_f <- true;
         event := Some (Wedged { pc })
       end
       else begin
         t.halted_f <- true;
         event := Some (Halted { pc })
       end);
    if !mem_fault then begin
      t.wedged_f <- true;
      Some (Wedged { pc })
    end
    else !event)

(* Runs forward to the next control event (no read-ahead). *)
let produce t =
  if t.halted_f then Halted { pc = t.st.pc }
  else if t.wedged_f then Wedged { pc = t.st.pc }
  else begin
    let budget = ref wrong_path_step_limit in
    let straight = ref straight_line_step_limit in
    let rec loop () =
      match step t with
      | Some ev -> ev
      | None ->
        if speculative t then begin
          decr budget;
          if !budget <= 0 then begin
            t.wedged_f <- true;
            Wedged { pc = t.st.pc }
          end
          else loop ()
        end
        else begin
          decr straight;
          if !straight <= 0 then
            raise
              (Fault
                 (Printf.sprintf
                    "no control event within %d instructions (infinite                      direct-jump loop at 0x%x?)"
                    straight_line_step_limit t.st.pc))
          else loop ()
        end
    in
    loop ()
  end

let create ?(read_ahead = true) ?predictor prog =
  let t = create_gen ~recording:true ?predictor prog in
  t.read_ahead <- read_ahead;
  if read_ahead then t.pending <- Some (produce t);
  t

type stepped = {
  s_addr : int;
  s_event : control option;
  s_load : load_rec option;
  s_store : store_rec option;
}

let step_one t =
  if t.halted_f then
    { s_addr = t.st.pc; s_event = Some (Halted { pc = t.st.pc });
      s_load = None; s_store = None }
  else if t.wedged_f then
    { s_addr = t.st.pc; s_event = Some (Wedged { pc = t.st.pc });
      s_load = None; s_store = None }
  else begin
    let addr = t.st.pc in
    let lq_before = Seq_queue.tail_seq t.lq in
    let sq_before = Seq_queue.tail_seq t.sq in
    let event = step t in
    let s_load =
      if Seq_queue.tail_seq t.lq > lq_before then Some (Seq_queue.last t.lq)
      else None
    in
    let s_store =
      if Seq_queue.tail_seq t.sq > sq_before then Some (Seq_queue.last t.sq)
      else None
    in
    { s_addr = addr; s_event = event; s_load; s_store }
  end

let next_event t =
  match t.pending with
  | None ->
    (* Only reachable on a freshly rolled-back emulator. *)
    let ev = produce t in
    t.pending <- Some (produce t);
    ev
  | Some ev ->
    t.pending <- Some (produce t);
    ev

let outstanding t = List.length t.checkpoints

let rollback_to t ~index =
  let n = List.length t.checkpoints in
  if index < 0 || index >= n then invalid_arg "Emulator.rollback_to";
  (* Checkpoints are stored youngest-first; index counts from the oldest. *)
  let pos = n - 1 - index in
  let ck = List.nth t.checkpoints pos in
  apply_undo t ck.ck_undo;
  Seq_queue.truncate_to t.lq ck.ck_lq;
  Seq_queue.truncate_to t.sq ck.ck_sq;
  Arch_state.restore t.st ~from_:ck.ck_regs;
  t.wp_insts <- t.wp_insts + (t.insts - ck.ck_insts);
  t.insts <- ck.ck_insts;
  t.checkpoints <- List.filteri (fun i _ -> i > pos) t.checkpoints;
  t.wedged_f <- false;
  t.halted_f <- false;
  let corrected = t.st.pc in
  t.pending <- None;
  (* Re-establish the one-event read-ahead along the corrected path. *)
  if t.read_ahead then t.pending <- Some (produce t);
  corrected

let pop_load t = Seq_queue.pop t.lq
let pop_store t = Seq_queue.pop t.sq
let loads_pending t = Seq_queue.length t.lq
let stores_pending t = Seq_queue.length t.sq
let halted t = t.halted_f
let wedged t = t.wedged_f
let insts_executed t = t.insts
let wrong_path_insts t = t.wp_insts
let state t = t.st
let memory t = t.mem

let run_functional ?(max_insts = max_int) prog =
  let t = create_gen ~recording:false prog in
  let rec loop () =
    if t.halted_f || t.insts >= max_insts then ()
    else
      match step t with
      | None | Some _ -> loop ()
  in
  loop ();
  (t.st, t.mem, t.insts)

(* ---- capture / restore (strategy engines, docs/STRATEGY.md) -------- *)

module Capture = struct
  type cap_ck = {
    k_regs : Arch_state.t;
    k_undo : int;
    k_lq : int;
    k_sq : int;
    k_insts : int;
  }

  type t = {
    c_state : Arch_state.t;
    c_pages : (int * string) array;
    c_undo : (int * int * int64) array;
    c_checkpoints : cap_ck list;
    c_lq : load_rec array;
    c_sq : store_rec array;
    c_halted : bool;
    c_wedged : bool;
    c_pending : control option;
    c_insts : int;
    c_wp_insts : int;
  }

  let canonical (c : t) : string =
    Marshal.to_string
      ( c.c_state,
        c.c_pages,
        c.c_undo,
        c.c_checkpoints,
        c.c_lq,
        c.c_sq,
        c.c_halted,
        c.c_wedged,
        c.c_pending )
      [ Marshal.No_sharing ]
end

let capture t : Capture.t =
  let q_to_array q =
    let acc = ref [] in
    Seq_queue.iter (fun x -> acc := x :: !acc) q;
    Array.of_list (List.rev !acc)
  in
  let lq_head = Seq_queue.head_seq t.lq in
  let sq_head = Seq_queue.head_seq t.sq in
  { Capture.c_state = Arch_state.snapshot t.st;
    c_pages = Memory.to_pages t.mem;
    c_undo = Array.sub t.undo 0 t.undo_len;
    c_checkpoints =
      List.map
        (fun ck ->
          { Capture.k_regs = Arch_state.snapshot ck.ck_regs;
            k_undo = ck.ck_undo;
            k_lq = ck.ck_lq - lq_head;
            k_sq = ck.ck_sq - sq_head;
            k_insts = ck.ck_insts - t.insts })
        t.checkpoints;
    c_lq = q_to_array t.lq;
    c_sq = q_to_array t.sq;
    c_halted = t.halted_f;
    c_wedged = t.wedged_f;
    c_pending = t.pending;
    c_insts = t.insts;
    c_wp_insts = t.wp_insts }

let restore ?(predictor = Predictor.always_not_taken) prog (c : Capture.t) =
  let lq = Seq_queue.create () in
  let sq = Seq_queue.create () in
  Array.iter (fun x -> Seq_queue.push lq x) c.Capture.c_lq;
  Array.iter (fun x -> Seq_queue.push sq x) c.Capture.c_sq;
  let undo_cap =
    let n = max 256 (Array.length c.Capture.c_undo) in
    let rec pow2 k = if k >= n then k else pow2 (2 * k) in
    pow2 256
  in
  let undo = Array.make undo_cap (0, 0, 0L) in
  Array.blit c.Capture.c_undo 0 undo 0 (Array.length c.Capture.c_undo);
  { prog;
    mem = Memory.of_pages c.Capture.c_pages;
    st = Arch_state.snapshot c.Capture.c_state;
    pred = predictor;
    recording = true;
    lq;
    sq;
    undo;
    undo_len = Array.length c.Capture.c_undo;
    checkpoints =
      List.map
        (fun (k : Capture.cap_ck) ->
          { ck_regs = Arch_state.snapshot k.Capture.k_regs;
            ck_undo = k.Capture.k_undo;
            (* captured seqs are relative to the consumed head, which a
               rebuilt queue restarts at 0 *)
            ck_lq = k.Capture.k_lq;
            ck_sq = k.Capture.k_sq;
            ck_insts = c.Capture.c_insts + k.Capture.k_insts })
        c.Capture.c_checkpoints;
    insts = c.Capture.c_insts;
    wp_insts = c.Capture.c_wp_insts;
    halted_f = c.Capture.c_halted;
    wedged_f = c.Capture.c_wedged;
    read_ahead = true;
    (* The pending read-ahead event is restored VERBATIM — never
       re-produced. Producing it again would re-execute instructions the
       capture already executed and re-train the branch predictor on
       outcomes it was already trained on, silently corrupting later
       predictions (pinned by a regression test in test_strategy.ml). *)
    pending = c.Capture.c_pending;
    hooks = None }

let create_at ?predictor prog ~(state : Arch_state.t) ~(mem : Memory.t)
    ~insts =
  let t = create_gen ~recording:true ?predictor prog in
  let t = { t with mem; st = Arch_state.snapshot state } in
  t.insts <- insts;
  t.read_ahead <- true;
  t.pending <- Some (produce t);
  t

(* ---- functional checkpointing --------------------------------------- *)

type functional_ck = {
  f_state : Arch_state.t;
  f_mem : Memory.t;
  f_insts : int;
}

let run_functional_checkpoints ?(max_insts = max_int) ?on_inst ?hooks prog
    ~at =
  let t = create_gen ~recording:false prog in
  t.hooks <- hooks;
  let cks = ref [] in
  let remaining = ref (List.sort_uniq compare at) in
  let take () =
    match !remaining with
    | n :: rest when t.insts >= n ->
      remaining := rest;
      cks :=
        { f_state = Arch_state.snapshot t.st;
          f_mem = Memory.copy t.mem;
          f_insts = t.insts }
        :: !cks
    | _ -> ()
  in
  take ();
  let rec loop () =
    if t.halted_f || t.insts >= max_insts then ()
    else begin
      (match on_inst with Some f -> f ~pc:t.st.pc | None -> ());
      ignore (step t : control option);
      take ();
      loop ()
    end
  in
  loop ();
  (List.rev !cks, Arch_state.snapshot t.st, t.insts, t.halted_f)
