type ireg = int
type freg = int

let count = 32
let zero = 0
let link = 31
let sp = 30
let valid r = r >= 0 && r < count
let pp_ireg ppf r = Format.fprintf ppf "r%d" r
let pp_freg ppf r = Format.fprintf ppf "f%d" r
