(** A combinator assembler for SRISC.

    Workloads and tests build programs from a list of statements: raw
    instructions, labels, label-targeted control flow, pseudo-instructions
    ([li], [la], [call], [ret]) and data definitions. The assembler resolves
    labels in two passes, expands pseudo-instructions, lays out data segments
    and produces a {!Program.t}.

    {[
      let prog = Asm.(assemble [
        data "table" [ Words [ 1; 2; 3; 4 ] ];
        label "start";
        la r1 "table";
        li r2 0;
        li r3 4;
        label "loop";
        insn (Load (Lw, 4, 1, 0));
        insn (Alu (Add, 2, 2, 4));
        insn (Alui (Add, 1, 1, 4));
        insn (Alui (Add, 3, 3, -1));
        bgt 3 0 "loop";
        halt;
      ])
    ]} *)

type stmt

val insn : Instr.t -> stmt
(** A raw instruction. *)

val label : string -> stmt
(** Defines a code label at the current position. *)

val branch : Instr.cond -> Reg.ireg -> Reg.ireg -> string -> stmt
(** Conditional branch to a label. *)

val beq : Reg.ireg -> Reg.ireg -> string -> stmt
val bne : Reg.ireg -> Reg.ireg -> string -> stmt
val blt : Reg.ireg -> Reg.ireg -> string -> stmt
val bge : Reg.ireg -> Reg.ireg -> string -> stmt
val ble : Reg.ireg -> Reg.ireg -> string -> stmt
val bgt : Reg.ireg -> Reg.ireg -> string -> stmt

val j : string -> stmt
(** Unconditional direct jump to a label. *)

val call : string -> stmt
(** [jal r31, label]. *)

val jal : Reg.ireg -> string -> stmt
val ret : stmt
(** [jr r31]. *)

val li : Reg.ireg -> int -> stmt
(** Load a 32-bit constant (expands to 1 or 2 instructions). *)

val la : Reg.ireg -> string -> stmt
(** Load the address of a label (2 instructions: lui + ori). *)

val halt : stmt
val nop : stmt

(** {1 Data} *)

type data_item =
  | Word of int          (** one 32-bit word. *)
  | Words of int list
  | Double of float      (** one IEEE double (8 bytes). *)
  | Doubles of float list
  | Space of int         (** [n] zero bytes. *)
  | Asciiz of string     (** NUL-terminated string. *)
  | Label_word of string (** the 32-bit address of a (code or data) label;
                             lets programs build jump tables. *)
  | Label_words of string list

val data : string -> data_item list -> stmt
(** Defines a labelled data block. Data blocks are laid out in order of
    appearance starting at the data base, each 8-byte aligned. The label is
    usable with {!la}. *)

(** {1 Assembly} *)

exception Error of string
(** Raised on duplicate or undefined labels and out-of-range branch
    displacements. *)

val assemble :
  ?code_base:int -> ?data_base:int -> ?entry:string -> stmt list -> Program.t
(** Assembles statements into a program image. [entry], if given, names the
    label where execution starts (defaults to the first instruction). *)
