exception Error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

(* ---- lexing ---- *)

type token =
  | T_ident of string       (* mnemonic, label reference, directive *)
  | T_reg of Reg.ireg       (* rN *)
  | T_freg of Reg.freg      (* fN *)
  | T_int of int
  | T_float of float
  | T_string of string
  | T_mem of int * Reg.ireg (* off(rN) *)

let strip_comment s =
  let cut =
    match (String.index_opt s ';', String.index_opt s '#') with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match cut with Some i -> String.sub s 0 i | None -> s

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let reg_of_string s =
  let len = String.length s in
  if len >= 2 && len <= 3 && (s.[0] = 'r' || s.[0] = 'f') then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some n when Reg.valid n -> Some (s.[0], n)
    | _ -> None
  else None

let lex_line lineno s =
  let s = strip_comment s in
  let n = String.length s in
  let tokens = ref [] in
  let label = ref None in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = ',') do
      incr i
    done
  in
  let read_while p =
    let start = !i in
    while !i < n && p s.[!i] do
      incr i
    done;
    String.sub s start (!i - start)
  in
  let read_number () =
    let start = !i in
    if peek () = Some '-' then incr i;
    if !i + 1 < n && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X')
    then begin
      i := !i + 2;
      ignore (read_while (fun c -> is_ident_char c) : string)
    end
    else
      ignore
        (read_while (fun c -> (c >= '0' && c <= '9') || c = '.' || c = 'e'
                              || c = 'E' || c = '-' || c = '+')
          : string);
    String.sub s start (!i - start)
  in
  skip_ws ();
  let rec go () =
    skip_ws ();
    if !i >= n then ()
    else begin
      (match s.[!i] with
       | '"' ->
         incr i;
         let buf = Buffer.create 16 in
         let rec str () =
           if !i >= n then fail lineno "unterminated string"
           else if s.[!i] = '"' then incr i
           else if s.[!i] = '\\' && !i + 1 < n then begin
             (match s.[!i + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '0' -> Buffer.add_char buf '\000'
              | c -> Buffer.add_char buf c);
             i := !i + 2;
             str ()
           end
           else begin
             Buffer.add_char buf s.[!i];
             incr i;
             str ()
           end
         in
         str ();
         tokens := T_string (Buffer.contents buf) :: !tokens
       | c when c = '-' || (c >= '0' && c <= '9') ->
         let num = read_number () in
         (* memory operand off(reg)? *)
         if peek () = Some '(' then begin
           incr i;
           let r = read_while is_ident_char in
           (match (reg_of_string r, peek ()) with
            | Some ('r', reg), Some ')' ->
              incr i;
              let off =
                match int_of_string_opt num with
                | Some v -> v
                | None -> fail lineno "bad offset %S" num
              in
              tokens := T_mem (off, reg) :: !tokens
            | _ -> fail lineno "bad memory operand")
         end
         else if String.contains num '.' || String.contains num 'e'
                 || String.contains num 'E'
         then
           match float_of_string_opt num with
           | Some f -> tokens := T_float f :: !tokens
           | None -> fail lineno "bad number %S" num
         else (
           match int_of_string_opt num with
           | Some v -> tokens := T_int v :: !tokens
           | None ->
             (match float_of_string_opt num with
              | Some f -> tokens := T_float f :: !tokens
              | None -> fail lineno "bad number %S" num))
       | c when is_ident_char c ->
         let word = read_while is_ident_char in
         if peek () = Some ':' then begin
           incr i;
           if !tokens <> [] || !label <> None then
             fail lineno "label %S must start the line" word;
           label := Some word
         end
         else if peek () = Some '(' then begin
           (* 0-offset written as reg in parens is not supported; treat a
              bare ident followed by ( as an error *)
           fail lineno "unexpected '(' after %S" word
         end
         else begin
           match reg_of_string word with
           | Some ('r', r) -> tokens := T_reg r :: !tokens
           | Some ('f', r) -> tokens := T_freg r :: !tokens
           | _ -> tokens := T_ident word :: !tokens
         end
       | c -> fail lineno "unexpected character %C" c);
      go ()
    end
  in
  go ();
  (!label, List.rev !tokens)

(* ---- parsing ---- *)

let alu_ops =
  [ ("add", Instr.Add); ("sub", Instr.Sub); ("and", Instr.And);
    ("or", Instr.Or); ("xor", Instr.Xor); ("sll", Instr.Sll);
    ("srl", Instr.Srl); ("sra", Instr.Sra); ("slt", Instr.Slt);
    ("sltu", Instr.Sltu) ]

let branch_ops =
  [ ("beq", Instr.Eq); ("bne", Instr.Ne); ("blt", Instr.Lt);
    ("bge", Instr.Ge); ("ble", Instr.Le); ("bgt", Instr.Gt) ]

let load_ops =
  [ ("lb", Instr.Lb); ("lbu", Instr.Lbu); ("lh", Instr.Lh);
    ("lhu", Instr.Lhu); ("lw", Instr.Lw) ]

let store_ops = [ ("sb", Instr.Sb); ("sh", Instr.Sh); ("sw", Instr.Sw) ]

let fop3 =
  [ ("fadd", Instr.Fadd); ("fsub", Instr.Fsub); ("fmul", Instr.Fmul);
    ("fdiv", Instr.Fdiv) ]

let fop2 = [ ("fsqrt", Instr.Fsqrt); ("fneg", Instr.Fneg);
             ("fabs", Instr.Fabs) ]

let fcmp_ops = [ ("feq", Instr.Feq); ("flt", Instr.Flt); ("fle", Instr.Fle) ]

type block_state = {
  mutable out : Asm.stmt list;  (* reversed *)
  mutable data_name : string option;
  mutable data_items : Asm.data_item list;  (* reversed *)
}

let flush_data line st =
  match st.data_name with
  | None ->
    if st.data_items <> [] then fail line "data directive outside .data"
  | Some name ->
    st.out <- Asm.data name (List.rev st.data_items) :: st.out;
    st.data_name <- None;
    st.data_items <- []

let parse_insn line st mnemonic args =
  let stmt =
    match (mnemonic, args) with
    | op, [ T_reg rd; T_reg rs1; T_reg rs2 ]
      when List.mem_assoc op alu_ops ->
      Asm.insn (Instr.Alu (List.assoc op alu_ops, rd, rs1, rs2))
    | op, [ T_reg rd; T_reg rs1; T_int imm ]
      when String.length op > 1
           && List.mem_assoc (String.sub op 0 (String.length op - 1)) alu_ops
           && op.[String.length op - 1] = 'i' ->
      let base = String.sub op 0 (String.length op - 1) in
      Asm.insn (Instr.Alui (List.assoc base alu_ops, rd, rs1, imm))
    | "sltui", [ T_reg rd; T_reg rs1; T_int imm ] ->
      Asm.insn (Instr.Alui (Instr.Sltu, rd, rs1, imm))
    | "lui", [ T_reg rd; T_int imm ] -> Asm.insn (Instr.Lui (rd, imm))
    | "mul", [ T_reg rd; T_reg a; T_reg b ] -> Asm.insn (Instr.Mul (rd, a, b))
    | "div", [ T_reg rd; T_reg a; T_reg b ] -> Asm.insn (Instr.Div (rd, a, b))
    | "rem", [ T_reg rd; T_reg a; T_reg b ] -> Asm.insn (Instr.Rem (rd, a, b))
    | op, [ T_reg rd; T_mem (off, base) ] when List.mem_assoc op load_ops ->
      Asm.insn (Instr.Load (List.assoc op load_ops, rd, base, off))
    | op, [ T_reg rs; T_mem (off, base) ] when List.mem_assoc op store_ops ->
      Asm.insn (Instr.Store (List.assoc op store_ops, rs, base, off))
    | "fld", [ T_freg fd; T_mem (off, base) ] ->
      Asm.insn (Instr.Fload (fd, base, off))
    | "fsd", [ T_freg fs; T_mem (off, base) ] ->
      Asm.insn (Instr.Fstore (fs, base, off))
    | op, [ T_freg fd; T_freg a; T_freg b ] when List.mem_assoc op fop3 ->
      Asm.insn (Instr.Fop (List.assoc op fop3, fd, a, b))
    | op, [ T_freg fd; T_freg a ] when List.mem_assoc op fop2 ->
      Asm.insn (Instr.Fop (List.assoc op fop2, fd, a, a))
    | op, [ T_reg rd; T_freg a; T_freg b ] when List.mem_assoc op fcmp_ops ->
      Asm.insn (Instr.Fcmp (List.assoc op fcmp_ops, rd, a, b))
    | "cvtif", [ T_freg fd; T_reg rs ] -> Asm.insn (Instr.Fcvt_if (fd, rs))
    | "cvtfi", [ T_reg rd; T_freg fs ] -> Asm.insn (Instr.Fcvt_fi (rd, fs))
    | op, [ T_reg a; T_reg b; T_ident target ]
      when List.mem_assoc op branch_ops ->
      Asm.branch (List.assoc op branch_ops) a b target
    | "j", [ T_ident target ] -> Asm.j target
    | "jal", [ T_reg rd; T_ident target ] -> Asm.jal rd target
    | "call", [ T_ident target ] -> Asm.call target
    | "jr", [ T_reg rs ] -> Asm.insn (Instr.Jr rs)
    | "jalr", [ T_reg rd; T_reg rs ] -> Asm.insn (Instr.Jalr (rd, rs))
    | "ret", [] -> Asm.ret
    | "nop", [] -> Asm.nop
    | "halt", [] -> Asm.halt
    | "li", [ T_reg rd; T_int v ] -> Asm.li rd v
    | "la", [ T_reg rd; T_ident name ] -> Asm.la rd name
    | op, _ -> fail line "cannot parse %S with these operands" op
  in
  st.out <- stmt :: st.out

let parse_directive line st name args =
  if name <> ".data" && st.data_name = None then
    fail line "%s outside a .data block" name;
  match (name, args) with
  | ".data", [ T_ident dname ] ->
    flush_data line st;
    st.data_name <- Some dname
  | ".word", [ T_int v ] | ".words", [ T_int v ] ->
    st.data_items <- Asm.Word v :: st.data_items
  | (".words" | ".word"), vs ->
    let words =
      List.map
        (function
          | T_int v -> v
          | _ -> fail line ".words takes integers")
        vs
    in
    st.data_items <- Asm.Words words :: st.data_items
  | ".double", [ T_float f ] ->
    st.data_items <- Asm.Double f :: st.data_items
  | ".double", [ T_int v ] ->
    st.data_items <- Asm.Double (float_of_int v) :: st.data_items
  | ".doubles", vs ->
    let ds =
      List.map
        (function
          | T_float f -> f
          | T_int v -> float_of_int v
          | _ -> fail line ".doubles takes numbers")
        vs
    in
    st.data_items <- Asm.Doubles ds :: st.data_items
  | ".space", [ T_int n ] -> st.data_items <- Asm.Space n :: st.data_items
  | ".asciiz", [ T_string s ] ->
    st.data_items <- Asm.Asciiz s :: st.data_items
  | ".addr", labels ->
    let names =
      List.map
        (function
          | T_ident l -> l
          | _ -> fail line ".addr takes labels")
        labels
    in
    st.data_items <- Asm.Label_words names :: st.data_items
  | d, _ -> fail line "unknown or malformed directive %S" d

let stmts source =
  let st = { out = []; data_name = None; data_items = [] } in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let label, tokens = lex_line lineno raw in
      (match label with
       | Some l ->
         flush_data lineno st;
         st.out <- Asm.label l :: st.out
       | None -> ());
      match tokens with
      | [] -> ()
      | T_ident name :: args when String.length name > 0 && name.[0] = '.' ->
        parse_directive lineno st name args
      | T_ident mnemonic :: args ->
        flush_data lineno st;
        parse_insn lineno st mnemonic args
      | _ -> fail lineno "expected a mnemonic or directive")
    lines;
  flush_data (List.length lines) st;
  List.rev st.out

let program ?code_base ?data_base ?entry source =
  Asm.assemble ?code_base ?data_base ?entry (stmts source)
