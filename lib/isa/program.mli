(** Immutable program images.

    A program image is the simulated analogue of the statically linked
    SPARC executable that FastSim's [fs] tool rewrites: a contiguous code
    segment of encoded instructions, initialised data segments, an entry
    point, and a symbol table. The image never changes during simulation
    (SRISC has no self-modifying code), which is what makes "the instruction
    at address A" a pure function — the property the memoizing simulator
    relies on when it re-fetches instructions from configuration snapshots
    alone. *)

type t = private {
  code_base : int;       (** Byte address of the first instruction. *)
  entry : int;           (** Byte address where execution starts. *)
  code : Instr.t array;  (** Decoded instructions, [code.(i)] at
                             [code_base + 4*i]. *)
  words : int32 array;   (** The encoded form of [code]. *)
  data : (int * string) list;
      (** Initial data segments as (byte address, bytes) pairs. *)
  symbols : (string * int) list;  (** Label -> byte address. *)
}

exception Fault of int
(** Raised by [fetch] for an address outside the code segment or not
    4-byte aligned. *)

val make :
  ?code_base:int -> ?entry:int -> ?data:(int * string) list ->
  ?symbols:(string * int) list -> Instr.t array -> t
(** [make code] builds an image. [code_base] defaults to
    [default_code_base]; [entry] defaults to [code_base]. Every instruction
    must be encodable; raises [Encode.Encode_error] otherwise. *)

val default_code_base : int
(** 0x10000. *)

val default_data_base : int
(** 0x200000. *)

val default_stack_top : int
(** 0x800000; stacks grow down from here. *)

val fetch : t -> int -> Instr.t
(** [fetch p addr] is the instruction at byte address [addr]. *)

val fetch_opt : t -> int -> Instr.t option

val in_code : t -> int -> bool

val size : t -> int
(** Number of instructions. *)

val last_addr : t -> int
(** Byte address of the last instruction. *)

val symbol : t -> string -> int
(** Address of a label; raises [Not_found]. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing of the whole code segment. *)
