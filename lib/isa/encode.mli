(** Binary encoding of SRISC instructions as 32-bit words.

    The encoding is conventional RISC: a 6-bit major opcode in bits [31:26],
    with R-type (register + 11-bit function code), I-type (16-bit immediate),
    and J-type (26-bit target) formats. It exists so that programs have a
    definite binary representation in simulated memory and so that the
    instruction stream can be stored and fetched by address, as FastSim
    fetches rewritten SPARC code.

    All encodable instructions round-trip: [decode (encode i) = i]. *)

exception Encode_error of string
(** Raised when an instruction's fields are out of range for the encoding
    (e.g. an immediate that does not fit in 16 bits). *)

exception Decode_error of int32
(** Raised on words that are not valid SRISC encodings. *)

val encode : Instr.t -> int32
val decode : int32 -> Instr.t

val encodable : Instr.t -> bool
(** [encodable i] is true iff [encode i] will not raise. *)

val imm16_fits : int -> bool
(** True iff the value fits a signed 16-bit immediate. *)
