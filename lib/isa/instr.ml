type alu_op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu

type fpu_op =
  | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs

type fcmp_op = Feq | Flt | Fle

type cond = Eq | Ne | Lt | Ge | Le | Gt

type load_width = Lb | Lbu | Lh | Lhu | Lw
type store_width = Sb | Sh | Sw

type t =
  | Alu of alu_op * Reg.ireg * Reg.ireg * Reg.ireg
  | Alui of alu_op * Reg.ireg * Reg.ireg * int
  | Lui of Reg.ireg * int
  | Mul of Reg.ireg * Reg.ireg * Reg.ireg
  | Div of Reg.ireg * Reg.ireg * Reg.ireg
  | Rem of Reg.ireg * Reg.ireg * Reg.ireg
  | Load of load_width * Reg.ireg * Reg.ireg * int
  | Store of store_width * Reg.ireg * Reg.ireg * int
  | Fload of Reg.freg * Reg.ireg * int
  | Fstore of Reg.freg * Reg.ireg * int
  | Fop of fpu_op * Reg.freg * Reg.freg * Reg.freg
  | Fcmp of fcmp_op * Reg.ireg * Reg.freg * Reg.freg
  | Fcvt_if of Reg.freg * Reg.ireg
  | Fcvt_fi of Reg.ireg * Reg.freg
  | Branch of cond * Reg.ireg * Reg.ireg * int
  | Jump of int
  | Jal of Reg.ireg * int
  | Jr of Reg.ireg
  | Jalr of Reg.ireg * Reg.ireg
  | Nop
  | Halt

type fu_class =
  | Fu_int_alu
  | Fu_int_mul
  | Fu_int_div
  | Fu_fp_add
  | Fu_fp_mul
  | Fu_fp_div
  | Fu_fp_sqrt
  | Fu_mem
  | Fu_branch
  | Fu_none

let fu_class = function
  | Alu _ | Alui _ | Lui _ -> Fu_int_alu
  | Mul _ -> Fu_int_mul
  | Div _ | Rem _ -> Fu_int_div
  | Load _ | Store _ | Fload _ | Fstore _ -> Fu_mem
  | Fop (Fadd, _, _, _) | Fop (Fsub, _, _, _)
  | Fop (Fneg, _, _, _) | Fop (Fabs, _, _, _)
  | Fcmp _ | Fcvt_if _ | Fcvt_fi _ -> Fu_fp_add
  | Fop (Fmul, _, _, _) -> Fu_fp_mul
  | Fop (Fdiv, _, _, _) -> Fu_fp_div
  | Fop (Fsqrt, _, _, _) -> Fu_fp_sqrt
  | Branch _ | Jump _ | Jal _ | Jr _ | Jalr _ -> Fu_branch
  | Nop | Halt -> Fu_none

let fu_count = 10

let fu_index = function
  | Fu_int_alu -> 0
  | Fu_int_mul -> 1
  | Fu_int_div -> 2
  | Fu_fp_add -> 3
  | Fu_fp_mul -> 4
  | Fu_fp_div -> 5
  | Fu_fp_sqrt -> 6
  | Fu_mem -> 7
  | Fu_branch -> 8
  | Fu_none -> 9

let fu_classes =
  [| Fu_int_alu; Fu_int_mul; Fu_int_div; Fu_fp_add; Fu_fp_mul; Fu_fp_div;
     Fu_fp_sqrt; Fu_mem; Fu_branch; Fu_none |]

let fu_name = function
  | Fu_int_alu -> "int-alu"
  | Fu_int_mul -> "int-mul"
  | Fu_int_div -> "int-div"
  | Fu_fp_add -> "fp-add"
  | Fu_fp_mul -> "fp-mul"
  | Fu_fp_div -> "fp-div"
  | Fu_fp_sqrt -> "fp-sqrt"
  | Fu_mem -> "mem"
  | Fu_branch -> "branch"
  | Fu_none -> "none"

let latency = function
  | Fu_int_alu -> 1
  | Fu_int_mul -> 5
  | Fu_int_div -> 34
  | Fu_fp_add -> 2
  | Fu_fp_mul -> 2
  | Fu_fp_div -> 12
  | Fu_fp_sqrt -> 18
  | Fu_mem -> 1
  | Fu_branch -> 1
  | Fu_none -> 1

type dest = Dint of Reg.ireg | Dfloat of Reg.freg

let int_dest rd = if rd = Reg.zero then None else Some (Dint rd)

let dest = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Lui (rd, _)
  | Mul (rd, _, _) | Div (rd, _, _) | Rem (rd, _, _)
  | Load (_, rd, _, _) | Fcmp (_, rd, _, _) | Fcvt_fi (rd, _) ->
    int_dest rd
  | Fload (fd, _, _) | Fop (_, fd, _, _) | Fcvt_if (fd, _) ->
    Some (Dfloat fd)
  | Jal (rd, _) | Jalr (rd, _) -> int_dest rd
  | Store _ | Fstore _ | Branch _ | Jump _ | Jr _ | Nop | Halt -> None

let isrc r acc = if r = Reg.zero then acc else Dint r :: acc

let sources = function
  | Alu (_, _, rs1, rs2) | Mul (_, rs1, rs2) | Div (_, rs1, rs2)
  | Rem (_, rs1, rs2) | Branch (_, rs1, rs2, _) ->
    isrc rs1 (isrc rs2 [])
  | Alui (_, _, rs1, _) | Load (_, _, rs1, _) | Fload (_, rs1, _)
  | Jr rs1 | Jalr (_, rs1) | Fcvt_if (_, rs1) ->
    isrc rs1 []
  | Store (_, rs, base, _) -> isrc rs (isrc base [])
  | Fstore (fs, base, _) -> Dfloat fs :: isrc base []
  | Fop (Fsqrt, _, fs1, _) | Fop (Fneg, _, fs1, _) | Fop (Fabs, _, fs1, _) ->
    [ Dfloat fs1 ]
  | Fop (_, _, fs1, fs2) | Fcmp (_, _, fs1, fs2) -> [ Dfloat fs1; Dfloat fs2 ]
  | Fcvt_fi (_, fs) -> [ Dfloat fs ]
  | Lui _ | Jump _ | Jal _ | Nop | Halt -> []

type control =
  | Ctl_none
  | Ctl_cond
  | Ctl_direct of int
  | Ctl_indirect
  | Ctl_halt

let control = function
  | Branch _ -> Ctl_cond
  | Jump target | Jal (_, target) -> Ctl_direct (target * 4)
  | Jr _ | Jalr _ -> Ctl_indirect
  | Halt -> Ctl_halt
  | Alu _ | Alui _ | Lui _ | Mul _ | Div _ | Rem _ | Load _ | Store _
  | Fload _ | Fstore _ | Fop _ | Fcmp _ | Fcvt_if _ | Fcvt_fi _ | Nop ->
    Ctl_none

let branch_targets t ~pc =
  match t with
  | Branch (_, _, _, off) -> Some (pc + 4, pc + 4 + (4 * off))
  | _ -> None

let is_load = function Load _ | Fload _ -> true | _ -> false
let is_store = function Store _ | Fstore _ -> true | _ -> false
let writes_memory = is_store

let alu_op_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra" | Slt -> "slt" | Sltu -> "sltu"

let fpu_op_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt" | Fneg -> "fneg" | Fabs -> "fabs"

let fcmp_op_name = function Feq -> "feq" | Flt -> "flt" | Fle -> "fle"

let cond_name = function
  | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"
  | Le -> "ble" | Gt -> "bgt"

let load_name = function
  | Lb -> "lb" | Lbu -> "lbu" | Lh -> "lh" | Lhu -> "lhu" | Lw -> "lw"

let store_name = function Sb -> "sb" | Sh -> "sh" | Sw -> "sw"

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  match t with
  | Alu (op, rd, rs1, rs2) ->
    f "%s r%d, r%d, r%d" (alu_op_name op) rd rs1 rs2
  | Alui (op, rd, rs1, imm) -> f "%si r%d, r%d, %d" (alu_op_name op) rd rs1 imm
  | Lui (rd, imm) -> f "lui r%d, %d" rd imm
  | Mul (rd, rs1, rs2) -> f "mul r%d, r%d, r%d" rd rs1 rs2
  | Div (rd, rs1, rs2) -> f "div r%d, r%d, r%d" rd rs1 rs2
  | Rem (rd, rs1, rs2) -> f "rem r%d, r%d, r%d" rd rs1 rs2
  | Load (w, rd, base, off) -> f "%s r%d, %d(r%d)" (load_name w) rd off base
  | Store (w, rs, base, off) -> f "%s r%d, %d(r%d)" (store_name w) rs off base
  | Fload (fd, base, off) -> f "fld f%d, %d(r%d)" fd off base
  | Fstore (fs, base, off) -> f "fsd f%d, %d(r%d)" fs off base
  | Fop (Fsqrt, fd, fs1, _) -> f "fsqrt f%d, f%d" fd fs1
  | Fop (Fneg, fd, fs1, _) -> f "fneg f%d, f%d" fd fs1
  | Fop (Fabs, fd, fs1, _) -> f "fabs f%d, f%d" fd fs1
  | Fop (op, fd, fs1, fs2) -> f "%s f%d, f%d, f%d" (fpu_op_name op) fd fs1 fs2
  | Fcmp (op, rd, fs1, fs2) ->
    f "%s r%d, f%d, f%d" (fcmp_op_name op) rd fs1 fs2
  | Fcvt_if (fd, rs) -> f "cvtif f%d, r%d" fd rs
  | Fcvt_fi (rd, fs) -> f "cvtfi r%d, f%d" rd fs
  | Branch (c, rs1, rs2, off) -> f "%s r%d, r%d, %d" (cond_name c) rs1 rs2 off
  | Jump target -> f "j 0x%x" (target * 4)
  | Jal (rd, target) -> f "jal r%d, 0x%x" rd (target * 4)
  | Jr rs -> f "jr r%d" rs
  | Jalr (rd, rs) -> f "jalr r%d, r%d" rd rs
  | Nop -> f "nop"
  | Halt -> f "halt"

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b
