type t = {
  code_base : int;
  entry : int;
  code : Instr.t array;
  words : int32 array;
  data : (int * string) list;
  symbols : (string * int) list;
}

exception Fault of int

let default_code_base = 0x10000
let default_data_base = 0x200000
let default_stack_top = 0x800000

let make ?(code_base = default_code_base) ?entry ?(data = []) ?(symbols = [])
    code =
  if code_base land 3 <> 0 then invalid_arg "Program.make: unaligned base";
  let entry = match entry with Some e -> e | None -> code_base in
  let words = Array.map Encode.encode code in
  { code_base; entry; code; words; data; symbols }

let size t = Array.length t.code
let last_addr t = t.code_base + (4 * (size t - 1))

let in_code t addr =
  addr land 3 = 0
  && addr >= t.code_base
  && addr < t.code_base + (4 * Array.length t.code)

let fetch t addr =
  if not (in_code t addr) then raise (Fault addr)
  else Array.unsafe_get t.code ((addr - t.code_base) lsr 2)

let fetch_opt t addr = if in_code t addr then Some (fetch t addr) else None

let symbol t name = List.assoc name t.symbols

let pp_listing ppf t =
  Array.iteri
    (fun i insn ->
      Format.fprintf ppf "0x%06x:  %a@." (t.code_base + (4 * i)) Instr.pp insn)
    t.code
