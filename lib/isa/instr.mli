(** The SRISC instruction set.

    SRISC is a 32-bit RISC ISA in the SPARC/MIPS mould, designed to exercise
    the same microarchitectural behaviours as the SPARC v8 code FastSim
    simulates: fixed 4-byte instructions, integer and floating point register
    files, displacement addressing, conditional branches with PC-relative
    targets, direct and indirect jumps, and long-latency integer divide and
    FP divide/sqrt operations.

    Immediates are 16-bit sign-extended unless noted. Branch offsets are in
    instruction words relative to the *next* PC. Direct jump targets are
    absolute instruction-word addresses (26 bits). *)

type alu_op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu

type fpu_op =
  | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs

type fcmp_op = Feq | Flt | Fle

type cond = Eq | Ne | Lt | Ge | Le | Gt
(** Condition for conditional branches, comparing two integer registers
    as signed values ([Eq]/[Ne] compare bit patterns). *)

type load_width = Lb | Lbu | Lh | Lhu | Lw
type store_width = Sb | Sh | Sw

type t =
  | Alu of alu_op * Reg.ireg * Reg.ireg * Reg.ireg
      (** [Alu (op, rd, rs1, rs2)]: register-register ALU operation. *)
  | Alui of alu_op * Reg.ireg * Reg.ireg * int
      (** [Alui (op, rd, rs1, imm)]: register-immediate ALU operation.
          For shifts the immediate is a count in [0, 31]; for the logical
          operations (and/or/xor) it is zero-extended (as in MIPS), for the
          rest sign-extended. *)
  | Lui of Reg.ireg * int
      (** [Lui (rd, imm)]: load [imm] (16 bits) into the upper half of [rd],
          zeroing the lower half. *)
  | Mul of Reg.ireg * Reg.ireg * Reg.ireg
  | Div of Reg.ireg * Reg.ireg * Reg.ireg
      (** Signed division; division by zero yields 0 (no traps in SRISC). *)
  | Rem of Reg.ireg * Reg.ireg * Reg.ireg
      (** Signed remainder; remainder by zero yields the dividend. *)
  | Load of load_width * Reg.ireg * Reg.ireg * int
      (** [Load (w, rd, base, off)]: [rd <- mem[base + off]]. *)
  | Store of store_width * Reg.ireg * Reg.ireg * int
      (** [Store (w, rs, base, off)]: [mem[base + off] <- rs]. *)
  | Fload of Reg.freg * Reg.ireg * int
      (** 8-byte load of an IEEE double into an FP register. *)
  | Fstore of Reg.freg * Reg.ireg * int
      (** 8-byte store of an FP register. *)
  | Fop of fpu_op * Reg.freg * Reg.freg * Reg.freg
      (** [Fop (op, fd, fs1, fs2)]; unary ops ignore [fs2]. *)
  | Fcmp of fcmp_op * Reg.ireg * Reg.freg * Reg.freg
      (** FP compare writing 0/1 into an integer register. *)
  | Fcvt_if of Reg.freg * Reg.ireg   (** int -> double conversion. *)
  | Fcvt_fi of Reg.ireg * Reg.freg   (** double -> int, truncating. *)
  | Branch of cond * Reg.ireg * Reg.ireg * int
      (** [Branch (c, rs1, rs2, off)]: if [rs1 c rs2] then
          [pc <- pc + 4 + 4*off]. *)
  | Jump of int            (** Direct jump to absolute word address. *)
  | Jal of Reg.ireg * int  (** Direct call: link register <- return address. *)
  | Jr of Reg.ireg         (** Indirect jump (includes returns). *)
  | Jalr of Reg.ireg * Reg.ireg
      (** [Jalr (rd, rs)]: indirect call through [rs], linking into [rd]. *)
  | Nop
  | Halt                   (** Terminates the simulated program. *)

(** {1 Classification for the timing model} *)

type fu_class =
  | Fu_int_alu   (** 1-cycle integer ops, branches' compare. *)
  | Fu_int_mul   (** pipelined multiply. *)
  | Fu_int_div   (** non-pipelined divide. *)
  | Fu_fp_add    (** FP add pipe (add/sub/neg/abs/cmp/cvt). *)
  | Fu_fp_mul    (** FP multiply pipe. *)
  | Fu_fp_div    (** non-pipelined FP divide. *)
  | Fu_fp_sqrt   (** non-pipelined FP square root. *)
  | Fu_mem       (** loads and stores: address generation then cache. *)
  | Fu_branch    (** control transfers resolved in the integer pipe. *)
  | Fu_none      (** [Nop]/[Halt]: no functional unit. *)

val fu_class : t -> fu_class

val fu_count : int
(** Number of functional-unit classes (for statistics arrays indexed by
    {!fu_index}). *)

val fu_index : fu_class -> int
(** Dense index in [0, fu_count). *)

val fu_name : fu_class -> string

val fu_classes : fu_class array
(** All classes in {!fu_index} order ([fu_classes.(fu_index c) = c]), for
    building per-class tables. Callers must not mutate it. *)

val latency : fu_class -> int
(** Execution latency in cycles once issued to a functional unit. For
    [Fu_mem] this is the address-generation latency; cache access time is
    added by the cache simulator. *)

type dest = Dint of Reg.ireg | Dfloat of Reg.freg

val dest : t -> dest option
(** Destination register written by the instruction, if any. Writes to
    [r0] are reported as [None] (they are architecturally discarded). *)

val sources : t -> dest list
(** Registers read by the instruction (using [dest] as a register-file tag).
    Reads of [r0] are omitted. *)

type control =
  | Ctl_none
  | Ctl_cond                 (** conditional branch: two successors. *)
  | Ctl_direct of int        (** unconditional direct jump/call target (byte address). *)
  | Ctl_indirect             (** indirect jump/call: target known only dynamically. *)
  | Ctl_halt

val control : t -> control
(** Control-flow classification used by both the emulator (where to stop and
    record a control event) and the µ-architecture fetch unit. *)

val is_load : t -> bool
val is_store : t -> bool
val writes_memory : t -> bool

val branch_targets : t -> pc:int -> (int * int) option
(** For a conditional branch at byte address [pc], its
    [(fall_through, taken_target)] pair; [None] for other instructions. *)

val cond_name : cond -> string
(** Branch mnemonic for a condition, e.g. ["beq"] — the same spelling
    {!pp} prints and the textual parser accepts. *)

val pp : Format.formatter -> t -> unit
(** Assembly-style rendering, e.g. ["add r3, r1, r2"]. *)

val to_string : t -> string

val equal : t -> t -> bool
