type data_item =
  | Word of int
  | Words of int list
  | Double of float
  | Doubles of float list
  | Space of int
  | Asciiz of string
  | Label_word of string
  | Label_words of string list

type stmt =
  | S_insn of Instr.t
  | S_label of string
  | S_branch of Instr.cond * Reg.ireg * Reg.ireg * string
  | S_j of string
  | S_jal of Reg.ireg * string
  | S_li of Reg.ireg * int
  | S_la of Reg.ireg * string
  | S_data of string * data_item list

let insn i = S_insn i
let label name = S_label name
let branch c rs1 rs2 target = S_branch (c, rs1, rs2, target)
let beq rs1 rs2 t = branch Instr.Eq rs1 rs2 t
let bne rs1 rs2 t = branch Instr.Ne rs1 rs2 t
let blt rs1 rs2 t = branch Instr.Lt rs1 rs2 t
let bge rs1 rs2 t = branch Instr.Ge rs1 rs2 t
let ble rs1 rs2 t = branch Instr.Le rs1 rs2 t
let bgt rs1 rs2 t = branch Instr.Gt rs1 rs2 t
let j target = S_j target
let call target = S_jal (Reg.link, target)
let jal rd target = S_jal (rd, target)
let ret = S_insn (Instr.Jr Reg.link)
let li rd v = S_li (rd, v)
let la rd name = S_la (rd, name)
let halt = S_insn Instr.Halt
let nop = S_insn Instr.Nop
let data name items = S_data (name, items)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Number of instruction words a statement expands to. *)
let stmt_size = function
  | S_insn _ | S_branch _ | S_j _ | S_jal _ -> 1
  | S_li (_, v) -> if Encode.imm16_fits v then 1 else 2
  | S_la _ -> 2
  | S_label _ | S_data _ -> 0

let align8 n = (n + 7) land lnot 7

let data_item_size = function
  | Word _ | Label_word _ -> 4
  | Words ws -> 4 * List.length ws
  | Label_words ls -> 4 * List.length ls
  | Double _ -> 8
  | Doubles ds -> 8 * List.length ds
  | Space n ->
    if n < 0 then error "negative Space size %d" n;
    n
  | Asciiz s -> String.length s + 1

let render_data lookup items =
  let buf = Buffer.create 64 in
  let put_word v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
  in
  let put_double d =
    let bits = Int64.bits_of_float d in
    for i = 0 to 7 do
      Buffer.add_char buf
        (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i))
                   land 0xff))
    done
  in
  let put = function
    | Word v -> put_word v
    | Words ws -> List.iter put_word ws
    | Double d -> put_double d
    | Doubles ds -> List.iter put_double ds
    | Space n ->
      if n < 0 then error "negative Space size %d" n;
      Buffer.add_string buf (String.make n '\000')
    | Label_word name -> put_word (lookup name)
    | Label_words names -> List.iter (fun n -> put_word (lookup n)) names
    | Asciiz s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\000'
  in
  List.iter put items;
  Buffer.contents buf

let expand_li rd v =
  if Encode.imm16_fits v then [ Instr.Alui (Instr.Add, rd, Reg.zero, v) ]
  else
    [ Instr.Lui (rd, (v lsr 16) land 0xffff);
      Instr.Alui (Instr.Or, rd, rd, v land 0xffff) ]

let expand_la rd addr =
  [ Instr.Lui (rd, (addr lsr 16) land 0xffff);
    Instr.Alui (Instr.Or, rd, rd, addr land 0xffff) ]

let assemble ?(code_base = Program.default_code_base)
    ?(data_base = Program.default_data_base) ?entry stmts =
  (* Pass 1: lay out code labels and data segments. *)
  let symbols = Hashtbl.create 64 in
  let define name addr =
    if Hashtbl.mem symbols name then error "duplicate label %S" name;
    Hashtbl.add symbols name addr
  in
  let code_words = ref 0 in
  let data_cursor = ref data_base in
  let data_segments = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | S_label name -> define name (code_base + (4 * !code_words))
      | S_data (name, items) ->
        let addr = align8 !data_cursor in
        define name addr;
        let size = List.fold_left (fun a i -> a + data_item_size i) 0 items in
        data_segments := (addr, items) :: !data_segments;
        data_cursor := addr + size
      | _ -> code_words := !code_words + stmt_size stmt)
    stmts;
  let lookup name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> error "undefined label %S" name
  in
  (* Pass 2: emit instructions with resolved targets. *)
  let out = ref [] in
  let pos = ref 0 in
  let emit i =
    out := i :: !out;
    incr pos
  in
  List.iter
    (fun stmt ->
      match stmt with
      | S_label _ | S_data _ -> ()
      | S_insn i -> emit i
      | S_branch (c, rs1, rs2, target) ->
        let taddr = lookup target in
        let off = ((taddr - code_base) / 4) - (!pos + 1) in
        if not (Encode.imm16_fits off) then
          error "branch to %S out of range (offset %d)" target off;
        emit (Instr.Branch (c, rs1, rs2, off))
      | S_j target -> emit (Instr.Jump (lookup target / 4))
      | S_jal (rd, target) -> emit (Instr.Jal (rd, lookup target / 4))
      | S_li (rd, v) -> List.iter emit (expand_li rd v)
      | S_la (rd, name) -> List.iter emit (expand_la rd (lookup name)))
    stmts;
  let code = Array.of_list (List.rev !out) in
  let data_segments =
    List.rev_map
      (fun (addr, items) -> (addr, render_data lookup items))
      !data_segments
  in
  let entry =
    match entry with Some name -> lookup name | None -> code_base
  in
  let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [] in
  Program.make ~code_base ~entry ~data:data_segments ~symbols code
