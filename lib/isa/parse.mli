(** Textual assembly for SRISC.

    Parses the same surface syntax the disassembler ({!Instr.pp} /
    {!Program.pp_listing}) prints, plus labels, data directives and the
    assembler's pseudo-instructions, into {!Asm.stmt} lists:

    {[
      ; sum an array
              .data table
              .words 1 2 3 4
              .space 16
      start:  la   r1, table
              li   r2, 0
              li   r3, 4
      loop:   lw   r4, 0(r1)
              add  r2, r2, r4
              addi r1, r1, 4
              addi r3, r3, -1
              bgt  r3, r0, loop
              sw   r2, 0(r1)
              halt
    ]}

    Comments run from [;] or [#] to end of line. Registers are [r0]–[r31]
    and [f0]–[f31]. Branches take a label; [j]/[jal]/[call] take a label;
    [li]/[la] are the usual pseudo-instructions. Data blocks start with
    [.data NAME] and contain [.words], [.word], [.doubles], [.double],
    [.space N], [.asciiz "..."], and [.addr LABEL ...] (jump-table entries)
    directives; the block ends at the next [.data] or at the first
    instruction/label. *)

exception Error of { line : int; message : string }

val program : ?code_base:int -> ?data_base:int -> ?entry:string ->
  string -> Program.t
(** [program source] parses and assembles [source].
    Raises {!Error} with a 1-based line number on syntax errors and
    {!Asm.Error} on assembly errors (undefined labels, ranges). *)

val stmts : string -> Asm.stmt list
(** Parse only, without assembling. *)
