(** Architectural registers of the SRISC ISA.

    SRISC has 32 integer registers ([r0] is hard-wired to zero, [r31] is the
    link register by convention) and 32 floating-point registers holding IEEE
    doubles. Registers are represented as plain integers in [0, 31]; the two
    phantom types below only exist to keep the two files apart in signatures
    via naming convention ([ireg] vs [freg]). *)

type ireg = int
(** Integer register number, in [0, 31]. *)

type freg = int
(** Floating-point register number, in [0, 31]. *)

val count : int
(** Number of registers in each file (32). *)

val zero : ireg
(** The hard-wired zero register, [r0]. *)

val link : ireg
(** The conventional link register for calls, [r31]. *)

val sp : ireg
(** The conventional stack pointer, [r30]. *)

val valid : int -> bool
(** [valid r] is true iff [r] is a legal register number. *)

val pp_ireg : Format.formatter -> ireg -> unit
(** Prints an integer register as ["r7"]. *)

val pp_freg : Format.formatter -> freg -> unit
(** Prints a floating-point register as ["f7"]. *)
