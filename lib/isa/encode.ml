exception Encode_error of string
exception Decode_error of int32

let imm16_fits v = v >= -32768 && v <= 32767

(* Major opcodes. *)
let op_special = 0          (* R-type: integer ops, jumps, nop, halt *)
let op_alui_base = 1        (* 1..10: addi..sltui, in alu_op order *)
let op_lui = 11
let op_load_base = 12       (* 12..16: lb lbu lh lhu lw *)
let op_store_base = 17      (* 17..19: sb sh sw *)
let op_fld = 20
let op_fsd = 21
let op_fp = 22              (* R-type FP: funct selects *)
let op_branch_base = 23     (* 23..28: beq bne blt bge ble bgt *)
let op_j = 29
let op_jal = 30

(* SPECIAL functs. *)
let funct_alu_base = 0      (* 0..9 in alu_op order *)
let funct_mul = 10
let funct_div = 11
let funct_rem = 12
let funct_jr = 13
let funct_jalr = 14
let funct_nop = 15
let funct_halt = 16

(* FP functs. *)
let funct_fp_base = 0       (* 0..6 in fpu_op order *)
let funct_fcmp_base = 7     (* 7..9: feq flt fle *)
let funct_cvt_if = 10
let funct_cvt_fi = 11

let alu_op_code : Instr.alu_op -> int = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4
  | Sll -> 5 | Srl -> 6 | Sra -> 7 | Slt -> 8 | Sltu -> 9

let alu_op_of_code = function
  | 0 -> Instr.Add | 1 -> Sub | 2 -> And | 3 -> Or | 4 -> Xor
  | 5 -> Sll | 6 -> Srl | 7 -> Sra | 8 -> Slt | 9 -> Sltu
  | _ -> invalid_arg "alu_op_of_code"

let fpu_op_code : Instr.fpu_op -> int = function
  | Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3
  | Fsqrt -> 4 | Fneg -> 5 | Fabs -> 6

let fpu_op_of_code = function
  | 0 -> Instr.Fadd | 1 -> Fsub | 2 -> Fmul | 3 -> Fdiv
  | 4 -> Fsqrt | 5 -> Fneg | 6 -> Fabs
  | _ -> invalid_arg "fpu_op_of_code"

let fcmp_op_code : Instr.fcmp_op -> int = function
  | Feq -> 0 | Flt -> 1 | Fle -> 2

let fcmp_op_of_code = function
  | 0 -> Instr.Feq | 1 -> Flt | 2 -> Fle
  | _ -> invalid_arg "fcmp_op_of_code"

let cond_code : Instr.cond -> int = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3 | Le -> 4 | Gt -> 5

let cond_of_code = function
  | 0 -> Instr.Eq | 1 -> Ne | 2 -> Lt | 3 -> Ge | 4 -> Le | 5 -> Gt
  | _ -> invalid_arg "cond_of_code"

let load_width_code : Instr.load_width -> int = function
  | Lb -> 0 | Lbu -> 1 | Lh -> 2 | Lhu -> 3 | Lw -> 4

let load_width_of_code = function
  | 0 -> Instr.Lb | 1 -> Lbu | 2 -> Lh | 3 -> Lhu | 4 -> Lw
  | _ -> invalid_arg "load_width_of_code"

let store_width_code : Instr.store_width -> int = function
  | Sb -> 0 | Sh -> 1 | Sw -> 2

let store_width_of_code = function
  | 0 -> Instr.Sb | 1 -> Sh | 2 -> Sw
  | _ -> invalid_arg "store_width_of_code"

let check_reg r =
  if not (Reg.valid r) then
    raise (Encode_error (Printf.sprintf "bad register %d" r))

let check_imm16 v =
  if not (imm16_fits v) then
    raise (Encode_error (Printf.sprintf "immediate %d out of 16-bit range" v))

let check_uimm16 v =
  if v < 0 || v > 0xffff then
    raise (Encode_error (Printf.sprintf "immediate %d out of u16 range" v))

let check_shamt v =
  if v < 0 || v > 31 then
    raise (Encode_error (Printf.sprintf "shift amount %d out of range" v))

let check_target26 v =
  if v < 0 || v > 0x3ffffff then
    raise (Encode_error (Printf.sprintf "jump target %d out of range" v))

let check_target21 v =
  if v < 0 || v > 0x1fffff then
    raise (Encode_error (Printf.sprintf "call target %d out of range" v))

let word ~op ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(funct = 0) () =
  Int32.of_int
    ((op lsl 26) lor (rd lsl 21) lor (rs1 lsl 16) lor (rs2 lsl 11) lor funct)

let iword ~op ~rd ~rs1 ~imm =
  Int32.of_int
    ((op lsl 26) lor (rd lsl 21) lor (rs1 lsl 16) lor (imm land 0xffff))

let jword ~op ~target = Int32.of_int ((op lsl 26) lor target)

let is_shift : Instr.alu_op -> bool = function
  | Sll | Srl | Sra -> true
  | Add | Sub | And | Or | Xor | Slt | Sltu -> false

(* Logical immediates are zero-extended (as in MIPS andi/ori/xori); this is
   what lets [la]/[li] synthesise a 32-bit constant as lui + ori. *)
let is_logical : Instr.alu_op -> bool = function
  | And | Or | Xor -> true
  | Add | Sub | Sll | Srl | Sra | Slt | Sltu -> false

let encode (i : Instr.t) : int32 =
  match i with
  | Alu (op, rd, rs1, rs2) ->
    check_reg rd; check_reg rs1; check_reg rs2;
    word ~op:op_special ~rd ~rs1 ~rs2 ~funct:(funct_alu_base + alu_op_code op)
      ()
  | Alui (op, rd, rs1, imm) ->
    check_reg rd; check_reg rs1;
    if is_shift op then check_shamt imm
    else if is_logical op then check_uimm16 imm
    else check_imm16 imm;
    iword ~op:(op_alui_base + alu_op_code op) ~rd ~rs1 ~imm
  | Lui (rd, imm) ->
    check_reg rd; check_uimm16 imm;
    iword ~op:op_lui ~rd ~rs1:0 ~imm
  | Mul (rd, rs1, rs2) ->
    check_reg rd; check_reg rs1; check_reg rs2;
    word ~op:op_special ~rd ~rs1 ~rs2 ~funct:funct_mul ()
  | Div (rd, rs1, rs2) ->
    check_reg rd; check_reg rs1; check_reg rs2;
    word ~op:op_special ~rd ~rs1 ~rs2 ~funct:funct_div ()
  | Rem (rd, rs1, rs2) ->
    check_reg rd; check_reg rs1; check_reg rs2;
    word ~op:op_special ~rd ~rs1 ~rs2 ~funct:funct_rem ()
  | Load (w, rd, base, off) ->
    check_reg rd; check_reg base; check_imm16 off;
    iword ~op:(op_load_base + load_width_code w) ~rd ~rs1:base ~imm:off
  | Store (w, rs, base, off) ->
    check_reg rs; check_reg base; check_imm16 off;
    iword ~op:(op_store_base + store_width_code w) ~rd:rs ~rs1:base ~imm:off
  | Fload (fd, base, off) ->
    check_reg fd; check_reg base; check_imm16 off;
    iword ~op:op_fld ~rd:fd ~rs1:base ~imm:off
  | Fstore (fs, base, off) ->
    check_reg fs; check_reg base; check_imm16 off;
    iword ~op:op_fsd ~rd:fs ~rs1:base ~imm:off
  | Fop (op, fd, fs1, fs2) ->
    check_reg fd; check_reg fs1; check_reg fs2;
    word ~op:op_fp ~rd:fd ~rs1:fs1 ~rs2:fs2
      ~funct:(funct_fp_base + fpu_op_code op) ()
  | Fcmp (op, rd, fs1, fs2) ->
    check_reg rd; check_reg fs1; check_reg fs2;
    word ~op:op_fp ~rd ~rs1:fs1 ~rs2:fs2
      ~funct:(funct_fcmp_base + fcmp_op_code op) ()
  | Fcvt_if (fd, rs) ->
    check_reg fd; check_reg rs;
    word ~op:op_fp ~rd:fd ~rs1:rs ~funct:funct_cvt_if ()
  | Fcvt_fi (rd, fs) ->
    check_reg rd; check_reg fs;
    word ~op:op_fp ~rd ~rs1:fs ~funct:funct_cvt_fi ()
  | Branch (c, rs1, rs2, off) ->
    check_reg rs1; check_reg rs2; check_imm16 off;
    Int32.of_int
      (((op_branch_base + cond_code c) lsl 26) lor (rs1 lsl 21)
      lor (rs2 lsl 16) lor (off land 0xffff))
  | Jump target ->
    check_target26 target;
    jword ~op:op_j ~target
  | Jal (rd, target) ->
    check_reg rd; check_target21 target;
    Int32.of_int ((op_jal lsl 26) lor (rd lsl 21) lor target)
  | Jr rs ->
    check_reg rs;
    word ~op:op_special ~rs1:rs ~funct:funct_jr ()
  | Jalr (rd, rs) ->
    check_reg rd; check_reg rs;
    word ~op:op_special ~rd ~rs1:rs ~funct:funct_jalr ()
  | Nop -> word ~op:op_special ~funct:funct_nop ()
  | Halt -> word ~op:op_special ~funct:funct_halt ()

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode (w : int32) : Instr.t =
  let v = Int32.to_int w land 0xffffffff in
  let op = (v lsr 26) land 0x3f in
  let rd = (v lsr 21) land 0x1f in
  let rs1 = (v lsr 16) land 0x1f in
  let rs2 = (v lsr 11) land 0x1f in
  let funct = v land 0x7ff in
  let imm = v land 0xffff in
  let bad () = raise (Decode_error w) in
  if op = op_special then
    if funct >= funct_alu_base && funct < funct_alu_base + 10 then
      Alu (alu_op_of_code (funct - funct_alu_base), rd, rs1, rs2)
    else if funct = funct_mul then Mul (rd, rs1, rs2)
    else if funct = funct_div then Div (rd, rs1, rs2)
    else if funct = funct_rem then Rem (rd, rs1, rs2)
    else if funct = funct_jr then Jr rs1
    else if funct = funct_jalr then Jalr (rd, rs1)
    else if funct = funct_nop then Nop
    else if funct = funct_halt then Halt
    else bad ()
  else if op >= op_alui_base && op < op_alui_base + 10 then
    let aop = alu_op_of_code (op - op_alui_base) in
    let i =
      if is_shift aop then imm land 0x1f
      else if is_logical aop then imm
      else sign16 imm
    in
    Alui (aop, rd, rs1, i)
  else if op = op_lui then Lui (rd, imm)
  else if op >= op_load_base && op < op_load_base + 5 then
    Load (load_width_of_code (op - op_load_base), rd, rs1, sign16 imm)
  else if op >= op_store_base && op < op_store_base + 3 then
    Store (store_width_of_code (op - op_store_base), rd, rs1, sign16 imm)
  else if op = op_fld then Fload (rd, rs1, sign16 imm)
  else if op = op_fsd then Fstore (rd, rs1, sign16 imm)
  else if op = op_fp then
    if funct >= funct_fp_base && funct < funct_fp_base + 7 then
      Fop (fpu_op_of_code (funct - funct_fp_base), rd, rs1, rs2)
    else if funct >= funct_fcmp_base && funct < funct_fcmp_base + 3 then
      Fcmp (fcmp_op_of_code (funct - funct_fcmp_base), rd, rs1, rs2)
    else if funct = funct_cvt_if then Fcvt_if (rd, rs1)
    else if funct = funct_cvt_fi then Fcvt_fi (rd, rs1)
    else bad ()
  else if op >= op_branch_base && op < op_branch_base + 6 then
    Branch (cond_of_code (op - op_branch_base), rd, rs1, sign16 imm)
  else if op = op_j then Jump (v land 0x3ffffff)
  else if op = op_jal then Jal (rd, v land 0x1fffff)
  else bad ()

let encodable i =
  match encode i with _ -> true | exception Encode_error _ -> false
