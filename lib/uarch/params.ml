type port = P_int | P_fp | P_mem

let port_name = function P_int -> "int" | P_fp -> "fp" | P_mem -> "mem"

let port_of_string = function
  | "int" -> Ok P_int
  | "fp" -> Ok P_fp
  | "mem" -> Ok P_mem
  | s -> Error (Printf.sprintf "unknown issue port %S (want int, fp or mem)" s)

type t = {
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  retire_width : int;
  active_list : int;
  int_queue : int;
  fp_queue : int;
  addr_queue : int;
  int_units : int;
  fp_units : int;
  mem_units : int;
  fu_latency : int array;
  issue_ports : port array;
  phys_int_regs : int;
  phys_fp_regs : int;
  max_spec_branches : int;
}

(* The default port map reproduces the R10000 grouping the simulator
   historically hard-coded: integer ops, divides and control transfers
   share the integer ports, every FP class shares the FP ports, and
   address generation has its own port. [Fu_none] never issues; its port
   assignment is inert. *)
let default_issue_ports =
  Array.map
    (fun c ->
      match c with
      | Isa.Instr.Fu_int_alu | Fu_int_mul | Fu_int_div | Fu_branch | Fu_none
        -> P_int
      | Fu_fp_add | Fu_fp_mul | Fu_fp_div | Fu_fp_sqrt -> P_fp
      | Fu_mem -> P_mem)
    Isa.Instr.fu_classes

let default_fu_latency = Array.map Isa.Instr.latency Isa.Instr.fu_classes

let default =
  { fetch_width = 4;
    decode_width = 4;
    issue_width = 0;
    retire_width = 4;
    active_list = 32;
    int_queue = 16;
    fp_queue = 16;
    addr_queue = 16;
    int_units = 2;
    fp_units = 2;
    mem_units = 1;
    fu_latency = default_fu_latency;
    issue_ports = default_issue_ports;
    phys_int_regs = 64;
    phys_fp_regs = 64;
    max_spec_branches = 4 }

let rename_int_budget t = t.phys_int_regs - Isa.Reg.count
let rename_fp_budget t = t.phys_fp_regs - Isa.Reg.count

let port t fu = t.issue_ports.(Isa.Instr.fu_index fu)
let latency t fu = t.fu_latency.(Isa.Instr.fu_index fu)

let port_units t = function
  | P_int -> t.int_units
  | P_fp -> t.fp_units
  | P_mem -> t.mem_units

(* One-byte entry count in the snapshot wire format (Snapshot.encode). *)
let snapshot_entry_limit = 255

let validate t =
  let check name v = if v <= 0 then invalid_arg ("Params: " ^ name) in
  check "fetch_width" t.fetch_width;
  check "decode_width" t.decode_width;
  check "retire_width" t.retire_width;
  check "active_list" t.active_list;
  check "int_queue" t.int_queue;
  check "fp_queue" t.fp_queue;
  check "addr_queue" t.addr_queue;
  check "int_units" t.int_units;
  check "fp_units" t.fp_units;
  check "mem_units" t.mem_units;
  check "max_spec_branches" t.max_spec_branches;
  if t.issue_width < 0 then invalid_arg "Params: issue_width";
  if t.active_list > snapshot_entry_limit then
    invalid_arg
      (Printf.sprintf
         "Params: active_list %d exceeds the snapshot entry limit %d"
         t.active_list snapshot_entry_limit);
  if Array.length t.fu_latency <> Isa.Instr.fu_count then
    invalid_arg "Params: fu_latency must have one entry per fu class";
  Array.iteri
    (fun i l ->
      if l <= 0 then
        invalid_arg
          (Printf.sprintf "Params: fu_latency.%s must be >= 1"
             (Isa.Instr.fu_name Isa.Instr.fu_classes.(i))))
    t.fu_latency;
  if Array.length t.issue_ports <> Isa.Instr.fu_count then
    invalid_arg "Params: issue_ports must have one entry per fu class";
  if rename_int_budget t <= 0 then invalid_arg "Params: phys_int_regs";
  if rename_fp_budget t <= 0 then invalid_arg "Params: phys_fp_regs"
