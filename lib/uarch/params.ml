type t = {
  fetch_width : int;
  decode_width : int;
  retire_width : int;
  active_list : int;
  int_queue : int;
  fp_queue : int;
  addr_queue : int;
  int_units : int;
  fp_units : int;
  mem_units : int;
  phys_int_regs : int;
  phys_fp_regs : int;
  max_spec_branches : int;
}

let default =
  { fetch_width = 4;
    decode_width = 4;
    retire_width = 4;
    active_list = 32;
    int_queue = 16;
    fp_queue = 16;
    addr_queue = 16;
    int_units = 2;
    fp_units = 2;
    mem_units = 1;
    phys_int_regs = 64;
    phys_fp_regs = 64;
    max_spec_branches = 4 }

let rename_int_budget t = t.phys_int_regs - Isa.Reg.count
let rename_fp_budget t = t.phys_fp_regs - Isa.Reg.count

let validate t =
  let check name v = if v <= 0 then invalid_arg ("Params: " ^ name) in
  check "fetch_width" t.fetch_width;
  check "decode_width" t.decode_width;
  check "retire_width" t.retire_width;
  check "active_list" t.active_list;
  check "int_queue" t.int_queue;
  check "fp_queue" t.fp_queue;
  check "addr_queue" t.addr_queue;
  check "int_units" t.int_units;
  check "fp_units" t.fp_units;
  check "mem_units" t.mem_units;
  check "max_spec_branches" t.max_spec_branches;
  if rename_int_budget t <= 0 then invalid_arg "Params: phys_int_regs";
  if rename_fp_budget t <= 0 then invalid_arg "Params: phys_fp_regs"
