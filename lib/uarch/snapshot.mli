(** Compact configuration encoding (paper §4.1–4.2).

    A configuration is a byte-string snapshot of the µ-architecture state
    between cycles: the fetch state plus every iQ entry. Instruction
    addresses are not stored per entry — only the oldest entry's address is
    kept, and the rest are reconstructed by walking the program: one
    taken/not-taken bit per conditional branch and one 32-bit target per
    indirect jump suffice, exactly the compression the paper describes.

    Encoding then decoding is the identity on simulator state; this is the
    property that lets fast-forwarding resume detailed simulation from a
    configuration key alone. *)

type key = string
(** Immutable configuration key, suitable for hashing. *)

module Arena : sig
  type t
  (** A reusable scratch encode buffer plus the FNV-1a hash of its current
      contents. One arena per detailed simulator instance means the
      per-group hot path (encode the configuration, look it up in the
      p-action cache) allocates nothing on a warm cache: {!encode_into}
      rewrites the scratch bytes in place and
      [Memo.Pcache.intern_arena] probes the intern table directly against
      them, materialising a {!key} string only on a miss. *)

  val create : unit -> t

  val length : t -> int
  (** Valid bytes in {!buffer}. *)

  val hash : t -> int
  (** FNV-1a hash of those bytes (= {!hash_key} of {!key}). *)

  val buffer : t -> Bytes.t

  val key : t -> key
  (** Materialises the key string (allocates). *)
end

val encode_into :
  ?limit:int -> Arena.t -> fetch:Pipeline.fetch_state -> Pipeline.t -> unit
(** Encodes into the arena's scratch buffer (growing it if needed),
    computing the configuration hash in the same pass. Raises
    [Invalid_argument] — before writing anything, naming the configured
    limit — if the iQ holds more than [limit] entries. [limit] defaults
    to, and is clamped at, {!Params.snapshot_entry_limit} (255): the
    entry count is stored in one byte. {!Detailed} passes its
    params-derived active-list size. *)

val encode : ?limit:int -> fetch:Pipeline.fetch_state -> Pipeline.t -> key
(** [encode_into] a fresh arena; convenience for cold paths and tests. *)

val hash_key : key -> int
(** The same FNV-1a hash {!encode_into} computes, over an already
    materialised key (used when interning by string, e.g. on
    deserialisation). *)

val decode :
  Isa.Program.t -> capacity:int -> key -> Pipeline.fetch_state * Pipeline.t
(** Rebuilds the fetch state and iQ. Raises [Invalid_argument] on a
    malformed key and [Isa.Program.Fault] if the key references addresses
    outside the program (impossible for keys produced by [encode] against
    the same program). *)

val modeled_bytes : key -> int
(** Size of this configuration under the paper's accounting: 16 bytes of
    header + 1.5 bytes per instruction + 4 bytes per indirect jump. Used
    for the p-action cache budget (Table 5, Figure 7) so that budget
    experiments are comparable with the paper regardless of OCaml's actual
    representation overhead. *)

val entry_count : key -> int
val pp : Format.formatter -> key -> unit
(** Human-readable dump (for the memo-explorer example). *)
