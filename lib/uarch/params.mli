(** The machine description: every structural knob of the modeled
    out-of-order processor, defaulting to the paper's Table 1 (MIPS
    R10000-like) settings. All of {!Detailed}'s structural constraints —
    widths, queue and register-file capacities, per-class unit counts,
    latencies and the issue-port map — come from here, so a sweep over
    [t] values is a sweep over the design space. *)

type port =
  | P_int   (** competes for the {!t.int_units} integer ports. *)
  | P_fp    (** competes for the {!t.fp_units} floating-point ports. *)
  | P_mem   (** competes for the {!t.mem_units} address-generation ports. *)

val port_name : port -> string
(** ["int"], ["fp"] or ["mem"] (the JSON wire names). *)

val port_of_string : string -> (port, string) result

type t = {
  fetch_width : int;        (** instructions fetched per cycle (4). *)
  decode_width : int;       (** instructions decoded/renamed per cycle (4). *)
  issue_width : int;        (** max instructions issued to functional units
                                per cycle across all ports; 0 means no
                                global cap beyond the per-port unit counts
                                (0 — the R10000 issues per-queue). *)
  retire_width : int;       (** instructions retired per cycle (4). *)
  active_list : int;        (** max instructions in flight — iQ capacity (32,
                                the R10000 active list). At most 255: the
                                snapshot wire format stores the entry count
                                in one byte. *)
  int_queue : int;          (** integer queue entries (16). *)
  fp_queue : int;           (** FP queue entries (16). *)
  addr_queue : int;         (** address queue entries (16). *)
  int_units : int;          (** integer ALU ports (2). *)
  fp_units : int;           (** FP ports (2). *)
  mem_units : int;          (** load/store address adders (1). *)
  fu_latency : int array;   (** execution latency per functional-unit class,
                                indexed by {!Isa.Instr.fu_index}; each >= 1.
                                Defaults to {!Isa.Instr.latency}. For
                                [Fu_mem] this is address generation; cache
                                access time is added by the cache model. *)
  issue_ports : port array; (** which port group each functional-unit class
                                competes for (and, equivalently, which issue
                                queue it occupies), indexed by
                                {!Isa.Instr.fu_index}. *)
  phys_int_regs : int;      (** physical integer registers (64). *)
  phys_fp_regs : int;       (** physical FP registers (64). *)
  max_spec_branches : int;  (** conditional branches speculated through (4). *)
}

val default : t
(** Table 1. [fu_latency] and [issue_ports] are physically shared between
    all records derived from [default] via [{ default with ... }]; treat
    them as immutable (copy before modifying). *)

val default_fu_latency : int array
val default_issue_ports : port array

val rename_int_budget : t -> int
(** Size of the integer physical-register freelist when the pipeline is
    empty: physical minus architectural registers. This bounds the
    in-flight instructions with an integer destination the rename stage
    can sustain (see {!Rename}). *)

val rename_fp_budget : t -> int

val port : t -> Isa.Instr.fu_class -> port
val latency : t -> Isa.Instr.fu_class -> int
val port_units : t -> port -> int
(** Number of issue ports in a port group. *)

val snapshot_entry_limit : int
(** Hard ceiling on [active_list] (255) imposed by the one-byte entry
    count in {!Snapshot}'s wire format. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (zero widths,
    fewer physical than architectural registers, zero latencies,
    mis-sized per-class tables, [active_list] beyond
    {!snapshot_entry_limit}, ...). *)
