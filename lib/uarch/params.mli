(** Processor model parameters (the paper's Table 1, MIPS R10000-like). *)

type t = {
  fetch_width : int;        (** instructions fetched per cycle (4). *)
  decode_width : int;       (** instructions decoded per cycle (4). *)
  retire_width : int;       (** instructions retired per cycle (4). *)
  active_list : int;        (** max instructions in flight — iQ capacity (32,
                                the R10000 active list). *)
  int_queue : int;          (** integer queue entries (16). *)
  fp_queue : int;           (** FP queue entries (16). *)
  addr_queue : int;         (** address queue entries (16). *)
  int_units : int;          (** integer ALUs (2). *)
  fp_units : int;           (** FPUs (2). *)
  mem_units : int;          (** load/store address adders (1). *)
  phys_int_regs : int;      (** physical integer registers (64). *)
  phys_fp_regs : int;       (** physical FP registers (64). *)
  max_spec_branches : int;  (** conditional branches speculated through (4). *)
}

val default : t

val rename_int_budget : t -> int
(** In-flight instructions with an integer destination the rename stage can
    sustain: physical minus architectural registers. *)

val rename_fp_budget : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (zero widths,
    fewer physical than architectural registers, ...). *)
