type t = {
  params : Params.t;
  prog : Isa.Program.t;
  iq : Pipeline.t;
  mutable fetch : Pipeline.fetch_state;
  mutable halted_f : bool;
  (* The explicit rename stage: bounded freelists + branch shadow maps.
     A deterministic function of the iQ (Rename.rebuild), so it is not
     part of the snapshot. *)
  rename : Rename.t;
  (* Scratch wakeup maps, rebuilt every cycle (paper §4.1): the entry
     index of the youngest in-flight writer of each architectural
     register, or -1 when the architectural value is current. *)
  int_writer : int array;
  fp_writer : int array;
  (* Cumulative retired-instruction counts per functional-unit class,
     indexed by [Isa.Instr.fu_index]. *)
  cls : int array;
  (* Scratch configuration-encode buffer (hot path, see Snapshot.Arena):
     reused every interaction cycle so snapshotting allocates nothing. *)
  arena : Snapshot.Arena.t;
}

type cycle_result = { retired : int; interactions : int; halted : bool }

let create ?(params = Params.default) prog =
  Params.validate params;
  { params;
    prog;
    iq = Pipeline.create ~capacity:params.active_list;
    fetch = Pipeline.F_run prog.Isa.Program.entry;
    halted_f = false;
    rename = Rename.create params;
    int_writer = Array.make Isa.Reg.count (-1);
    fp_writer = Array.make Isa.Reg.count (-1);
    cls = Array.make Isa.Instr.fu_count 0;
    arena = Snapshot.Arena.create () }

let create_at ?params prog ~pc =
  let t = create ?params prog in
  t.fetch <- Pipeline.F_run pc;
  t

let restore ?(params = Params.default) prog key =
  Params.validate params;
  let fetch, iq = Snapshot.decode prog ~capacity:params.active_list key in
  let rename = Rename.create params in
  Rename.rebuild rename iq;
  { params;
    prog;
    iq;
    fetch;
    halted_f = false;
    rename;
    int_writer = Array.make Isa.Reg.count (-1);
    fp_writer = Array.make Isa.Reg.count (-1);
    cls = Array.make Isa.Instr.fu_count 0;
    arena = Snapshot.Arena.create () }

let snapshot t =
  Snapshot.encode ~limit:t.params.Params.active_list ~fetch:t.fetch t.iq

let snapshot_arena t =
  Snapshot.encode_into ~limit:t.params.Params.active_list t.arena
    ~fetch:t.fetch t.iq;
  t.arena

let dump ppf t =
  let fs =
    match t.fetch with
    | Pipeline.F_run pc -> Printf.sprintf "run@0x%x" pc
    | Pipeline.F_stall_indirect -> "stall-ind"
    | Pipeline.F_stall_wedged -> "wedged"
    | Pipeline.F_halted -> "halted"
  in
  Format.fprintf ppf "fetch=%s free-phys=%d/%d@." fs
    (Rename.free_int t.rename) (Rename.free_fp t.rename);
  Pipeline.iteri
    (fun i e ->
      let st =
        match Pipeline.stage e with
        | Pipeline.Fetched -> "fetched"
        | Pipeline.Queued -> "queued"
        | Pipeline.Exec n -> Printf.sprintf "exec(%d)" n
        | Pipeline.Wait_cache n -> Printf.sprintf "wait(%d)" n
        | Pipeline.Done -> "done"
      in
      Format.fprintf ppf "  [%2d] 0x%x %-24s %s%s%s%s@." i e.Pipeline.addr
        (Isa.Instr.to_string e.Pipeline.insn)
        st
        (if e.Pipeline.taken then " taken" else "")
        (if e.Pipeline.mispredicted then " MISPRED" else "")
        (if e.Pipeline.ind_stall then " IND-STALL" else ""))
    t.iq

let halted t = t.halted_f
let retired_by_class t = Array.copy t.cls
let in_flight t = Pipeline.length t.iq
let fetch_state t = t.fetch
let free_phys t = (Rename.free_int t.rename, Rename.free_fp t.rename)

let is_cond e =
  match Isa.Instr.control e.Pipeline.insn with
  | Isa.Instr.Ctl_cond -> true
  | _ -> false

(* Phase 1: in-order retirement of completed instructions. *)
let retire t =
  let retired = ref 0 and halted_now = ref false in
  let continue_ = ref true in
  while
    !continue_ && (not !halted_now) && !retired < t.params.retire_width
  do
    match Pipeline.peek t.iq with
    | Some e when e.Pipeline.st = Pipeline.st_done ->
      ignore (Pipeline.pop t.iq : Pipeline.entry);
      Rename.retire t.rename e;
      incr retired;
      t.cls.(Isa.Instr.fu_index e.Pipeline.fu) <-
        t.cls.(Isa.Instr.fu_index e.Pipeline.fu) + 1;
      (match e.Pipeline.insn with
       | Isa.Instr.Halt ->
         halted_now := true;
         t.halted_f <- true
       | _ -> ())
    | Some _ | None -> continue_ := false
  done;
  (!retired, !halted_now)

(* Scratch per-cycle occupancy counters, filled by the merged
   execute/issue pass and consumed by decode and fetch. *)
type counts = {
  mutable c_intq : int;
  mutable c_fpq : int;
  mutable c_memq : int;
  mutable c_first_fetched : int;
  mutable c_unresolved_cond : int;
}

let fresh_counts () =
  { c_intq = 0;
    c_fpq = 0;
    c_memq = 0;
    c_first_fetched = -1;
    c_unresolved_cond = 0 }

(* Issue-queue occupancy follows the port map: a class competing for the
   integer ports sits in the integer queue, and so on. At the default map
   this reproduces the historical int/fp/addr queue split. *)
let bump_queue (p : Params.t) (c : counts) fu =
  match Params.port p fu with
  | Params.P_int -> c.c_intq <- c.c_intq + 1
  | Params.P_fp -> c.c_fpq <- c.c_fpq + 1
  | Params.P_mem -> c.c_memq <- c.c_memq + 1

let queue_free (p : Params.t) (c : counts) fu =
  match Params.port p fu with
  | Params.P_int -> c.c_intq < p.Params.int_queue
  | Params.P_fp -> c.c_fpq < p.Params.fp_queue
  | Params.P_mem -> c.c_memq < p.Params.addr_queue

(* Phases 2+3 merged into a single oldest-to-newest scan: advance executing
   instructions (completions issue loads/stores to the cache, resolve
   branches, trigger rollbacks), then issue ready queued instructions —
   readiness only consults older entries, which this pass has already
   updated, so the merge is behaviour-preserving. Occupancy counters for
   decode and fetch are gathered on the same pass. *)
let execute_and_issue t ~now (o : Oracle.t) interactions (c : counts) =
  let p = t.params in
  Array.fill t.int_writer 0 Isa.Reg.count (-1);
  Array.fill t.fp_writer 0 Isa.Reg.count (-1);
  let int_issued = ref 0 and fp_issued = ref 0 and mem_issued = ref 0 in
  let total_issued = ref 0 in
  let div_busy = ref false and fpdiv_busy = ref false in
  (* Non-pipelined units busy with instructions issued in earlier cycles. *)
  Pipeline.iteri
    (fun _ e ->
      if e.Pipeline.st = Pipeline.st_exec && e.Pipeline.counter > 1 then
        match e.Pipeline.fu with
        | Isa.Instr.Fu_int_div -> div_busy := true
        | Isa.Instr.Fu_fp_div | Isa.Instr.Fu_fp_sqrt -> fpdiv_busy := true
        | _ -> ())
    t.iq;
  let saw_unissued_mem = ref false in
  let i = ref 0 in
  while !i < Pipeline.length t.iq do
    let e = Pipeline.unsafe_get t.iq !i in
    (* -- execute/complete -- *)
    let st = e.Pipeline.st in
    if st = Pipeline.st_exec then begin
      if e.Pipeline.counter > 1 then
        e.Pipeline.counter <- e.Pipeline.counter - 1
      else if Isa.Instr.is_load e.Pipeline.insn then begin
        let lat = o.cache_load ~now in
        incr interactions;
        if lat <= 0 then e.Pipeline.st <- Pipeline.st_done
        else begin
          e.Pipeline.st <- Pipeline.st_wait;
          e.Pipeline.counter <- lat
        end
      end
      else if Isa.Instr.is_store e.Pipeline.insn then begin
        o.cache_store ~now;
        incr interactions;
        e.Pipeline.st <- Pipeline.st_done
      end
      else begin
        e.Pipeline.st <- Pipeline.st_done;
        match Isa.Instr.control e.Pipeline.insn with
        | Isa.Instr.Ctl_cond ->
          if e.Pipeline.mispredicted then begin
            (* Resolve the misprediction: index is this branch's position
               among outstanding mispredictions, oldest first. *)
            let index = ref 0 in
            for j = 0 to !i - 1 do
              if (Pipeline.unsafe_get t.iq j).Pipeline.mispredicted then
                incr index
            done;
            e.Pipeline.mispredicted <- false;
            o.rollback ~index:!index;
            incr interactions;
            (* Undo the squashed suffix's renames and restore this
               branch's shadow map before the entries disappear. *)
            Rename.rollback t.rename t.iq ~keep:(!i + 1) e;
            Pipeline.truncate t.iq (!i + 1);
            (* Squashed entries may have been counted already; recount from
               scratch is unnecessary — younger entries only added to the
               counters below, and this loop stops at the new length. The
               first_fetched marker can only have pointed at squashed
               entries. *)
            c.c_first_fetched <- -1;
            let fall, target =
              match
                Isa.Instr.branch_targets e.Pipeline.insn ~pc:e.Pipeline.addr
              with
              | Some x -> x
              | None -> assert false
            in
            t.fetch <-
              Pipeline.F_run (if e.Pipeline.taken then target else fall)
          end;
          (* Resolved either way: the checkpoint is dead. *)
          Rename.release_shadow t.rename e
        | Isa.Instr.Ctl_indirect when e.Pipeline.ind_stall ->
          e.Pipeline.ind_stall <- false;
          t.fetch <- Pipeline.F_run e.Pipeline.ind_target
        | _ -> ()
      end
    end
    else if st = Pipeline.st_wait then begin
      if e.Pipeline.counter > 1 then
        e.Pipeline.counter <- e.Pipeline.counter - 1
      else e.Pipeline.st <- Pipeline.st_done
    end
    (* -- issue -- *)
    else if st = Pipeline.st_queued then begin
      let srcs = e.Pipeline.srcs in
      let ready = ref true in
      for s = 0 to Array.length srcs - 1 do
        (match Array.unsafe_get srcs s with
         | Isa.Instr.Dint r ->
           let w = t.int_writer.(r) in
           if
             w >= 0
             && (Pipeline.unsafe_get t.iq w).Pipeline.st <> Pipeline.st_done
           then ready := false
         | Isa.Instr.Dfloat r ->
           let w = t.fp_writer.(r) in
           if
             w >= 0
             && (Pipeline.unsafe_get t.iq w).Pipeline.st <> Pipeline.st_done
           then ready := false)
      done;
      if !ready then begin
        let fu = e.Pipeline.fu in
        (* A port is free when its group has an unclaimed unit this cycle
           and the global issue width (0 = uncapped) is not exhausted.
           Non-pipelined semantics stay class-based regardless of the
           port map: the divider and the FP divide/sqrt unit each accept
           one instruction at a time, and address generation proceeds
           strictly in program order (R10000 address queue — this also
           serialises cache calls into lQ/sQ order). *)
        let port_issued =
          match Params.port p fu with
          | Params.P_int -> int_issued
          | Params.P_fp -> fp_issued
          | Params.P_mem -> mem_issued
        in
        let class_free =
          match fu with
          | Isa.Instr.Fu_int_div -> not !div_busy
          | Fu_fp_div | Fu_fp_sqrt -> not !fpdiv_busy
          | Fu_mem -> not !saw_unissued_mem
          | Fu_none -> false
          | Fu_int_alu | Fu_int_mul | Fu_fp_add | Fu_fp_mul | Fu_branch ->
            true
        in
        let unit_free =
          class_free
          && !port_issued < Params.port_units p (Params.port p fu)
          && (p.Params.issue_width = 0
             || !total_issued < p.Params.issue_width)
        in
        if unit_free then begin
          e.Pipeline.st <- Pipeline.st_exec;
          e.Pipeline.counter <- Params.latency p fu;
          incr port_issued;
          incr total_issued;
          match fu with
          | Isa.Instr.Fu_int_div -> div_busy := true
          | Fu_fp_div | Fu_fp_sqrt -> fpdiv_busy := true
          | _ -> ()
        end
      end
    end;
    (* -- occupancy bookkeeping on the post-update state -- *)
    let st = e.Pipeline.st in
    let fu = e.Pipeline.fu in
    if fu = Isa.Instr.Fu_mem
       && (st = Pipeline.st_fetched || st = Pipeline.st_queued)
    then saw_unissued_mem := true;
    if st = Pipeline.st_fetched then begin
      if c.c_first_fetched = -1 then c.c_first_fetched <- !i
    end
    else if st = Pipeline.st_queued then bump_queue p c fu;
    if st <> Pipeline.st_done && is_cond e then
      c.c_unresolved_cond <- c.c_unresolved_cond + 1;
    (match e.Pipeline.dst with
     | Some (Isa.Instr.Dint r) -> t.int_writer.(r) <- !i
     | Some (Isa.Instr.Dfloat r) -> t.fp_writer.(r) <- !i
     | None -> ());
    incr i
  done

(* Phase 4: in-order decode/rename of fetched instructions, limited by
   issue-queue capacity and physical-register availability. *)
let decode t (c : counts) =
  let p = t.params in
  if c.c_first_fetched >= 0 then begin
    let stop = ref false and k = ref 0 in
    while
      (not !stop)
      && !k < p.decode_width
      && c.c_first_fetched + !k < Pipeline.length t.iq
    do
      let e = Pipeline.get t.iq (c.c_first_fetched + !k) in
      assert (e.Pipeline.st = Pipeline.st_fetched);
      (match e.Pipeline.fu with
       | Isa.Instr.Fu_none ->
         (* Nop / Halt: no queue, no unit; complete at decode and wait to
            retire in order. *)
         e.Pipeline.st <- Pipeline.st_done;
         incr k
       | fu ->
         let need_int, need_fp =
           match e.Pipeline.dst with
           | Some (Isa.Instr.Dint _) -> (1, 0)
           | Some (Isa.Instr.Dfloat _) -> (0, 1)
           | None -> (0, 0)
         in
         if
           Rename.free_int t.rename < need_int
           || Rename.free_fp t.rename < need_fp
         then stop := true
         else if queue_free p c fu then begin
           e.Pipeline.st <- Pipeline.st_queued;
           Rename.alloc t.rename e;
           if is_cond e then Rename.save_shadow t.rename e;
           bump_queue p c fu;
           incr k
         end
         else stop := true)
    done
  end

(* Phase 5: fetch along the path direct execution took, pulling a control
   outcome at each conditional branch and indirect jump. *)
let fetch t (o : Oracle.t) interactions (c : counts) =
  let p = t.params in
  let fetched = ref 0 and continue_ = ref true in
  while
    !continue_ && !fetched < p.fetch_width && not (Pipeline.is_full t.iq)
  do
    match t.fetch with
    | Pipeline.F_stall_indirect | Pipeline.F_stall_wedged | Pipeline.F_halted
      ->
      continue_ := false
    | Pipeline.F_run pc -> (
      match Isa.Program.fetch_opt t.prog pc with
      | None ->
        (* Wrong-path fetch ran off the code segment. *)
        t.fetch <- Pipeline.F_stall_wedged;
        continue_ := false
      | Some insn -> (
        match Isa.Instr.control insn with
        | Isa.Instr.Ctl_halt ->
          Pipeline.push t.iq (Pipeline.entry_of_addr t.prog pc);
          incr fetched;
          t.fetch <- Pipeline.F_halted;
          continue_ := false
        | Isa.Instr.Ctl_none ->
          Pipeline.push t.iq (Pipeline.entry_of_addr t.prog pc);
          incr fetched;
          t.fetch <- Pipeline.F_run (pc + 4)
        | Isa.Instr.Ctl_direct target ->
          Pipeline.push t.iq (Pipeline.entry_of_addr t.prog pc);
          incr fetched;
          t.fetch <- Pipeline.F_run target;
          (* A taken transfer ends the fetch packet. *)
          continue_ := false
        | Isa.Instr.Ctl_cond ->
          if c.c_unresolved_cond >= p.max_spec_branches then
            continue_ := false
          else begin
            match o.fetch_control () with
            | Oracle.C_cond { taken; mispredicted } ->
              incr interactions;
              let e = Pipeline.entry_of_addr t.prog pc in
              e.Pipeline.taken <- taken;
              e.Pipeline.mispredicted <- mispredicted;
              Pipeline.push t.iq e;
              incr fetched;
              c.c_unresolved_cond <- c.c_unresolved_cond + 1;
              let fall, target =
                match Isa.Instr.branch_targets insn ~pc with
                | Some x -> x
                | None -> assert false
              in
              let predicted_taken =
                if mispredicted then not taken else taken
              in
              if predicted_taken then begin
                t.fetch <- Pipeline.F_run target;
                continue_ := false
              end
              else t.fetch <- Pipeline.F_run fall
            | Oracle.C_stalled ->
              incr interactions;
              t.fetch <- Pipeline.F_stall_wedged;
              continue_ := false
            | Oracle.C_indirect _ ->
              invalid_arg "Detailed.fetch: indirect outcome at branch"
          end
        | Isa.Instr.Ctl_indirect -> (
          match o.fetch_control () with
          | Oracle.C_indirect { target; hit } ->
            incr interactions;
            let e = Pipeline.entry_of_addr t.prog pc in
            e.Pipeline.ind_target <- target;
            if hit then begin
              Pipeline.push t.iq e;
              t.fetch <- Pipeline.F_run target
            end
            else begin
              e.Pipeline.ind_stall <- true;
              Pipeline.push t.iq e;
              t.fetch <- Pipeline.F_stall_indirect
            end;
            incr fetched;
            continue_ := false
          | Oracle.C_stalled ->
            incr interactions;
            t.fetch <- Pipeline.F_stall_wedged;
            continue_ := false
          | Oracle.C_cond _ ->
            invalid_arg "Detailed.fetch: cond outcome at indirect jump")))
  done

let step_cycle t ~now (o : Oracle.t) =
  let interactions = ref 0 in
  let retired, halted_now = retire t in
  if halted_now then { retired; interactions = !interactions; halted = true }
  else begin
    let c = fresh_counts () in
    execute_and_issue t ~now o interactions c;
    decode t c;
    fetch t o interactions c;
    { retired; interactions = !interactions; halted = false }
  end
