(* Explicit register-rename stage: a speculative map from architectural to
   physical registers per class, a bounded freelist, and per-branch shadow
   maps (R10000-style checkpoints) restored on misprediction rollback.

   Timing only ever depends on the freelist occupancies, which are pure
   functions of the iQ (committed registers + one allocation per decoded
   in-flight destination). Physical-register identities are invisible to
   the rest of the simulator, which is what lets [rebuild] reconstruct an
   equivalent state from a snapshot-decoded iQ in canonical order without
   perturbing determinism. *)

type t = {
  imap : int array;               (* arch int reg -> speculative phys *)
  fmap : int array;
  ifree : int array;              (* freelist stacks; pop at [*_top - 1] *)
  mutable ifree_top : int;
  ffree : int array;
  mutable ffree_top : int;
  ishadow : int array array;      (* shadow_slot -> saved imap / fmap *)
  fshadow : int array array;
  shadow_used : bool array;
}

let reset t =
  for r = 0 to Isa.Reg.count - 1 do
    t.imap.(r) <- r;
    t.fmap.(r) <- r
  done;
  (* Stack the free registers so allocation proceeds in ascending
     canonical order: Reg.count first. *)
  let fill free =
    let n = Array.length free in
    for i = 0 to n - 1 do
      free.(i) <- Isa.Reg.count + n - 1 - i
    done;
    n
  in
  t.ifree_top <- fill t.ifree;
  t.ffree_top <- fill t.ffree;
  Array.fill t.shadow_used 0 (Array.length t.shadow_used) false

let create (p : Params.t) =
  let t =
    { imap = Array.make Isa.Reg.count 0;
      fmap = Array.make Isa.Reg.count 0;
      ifree = Array.make (Params.rename_int_budget p) 0;
      ifree_top = 0;
      ffree = Array.make (Params.rename_fp_budget p) 0;
      ffree_top = 0;
      ishadow =
        Array.init p.Params.max_spec_branches (fun _ ->
            Array.make Isa.Reg.count 0);
      fshadow =
        Array.init p.Params.max_spec_branches (fun _ ->
            Array.make Isa.Reg.count 0);
      shadow_used = Array.make p.Params.max_spec_branches false }
  in
  reset t;
  t

let free_int t = t.ifree_top
let free_fp t = t.ffree_top

(* Allocates a physical register for [e]'s destination (if any), recording
   the allocation and the displaced mapping on the entry. *)
let alloc t (e : Pipeline.entry) =
  match e.Pipeline.dst with
  | None -> ()
  | Some (Isa.Instr.Dint r) ->
    if t.ifree_top = 0 then invalid_arg "Rename.alloc: int freelist empty";
    t.ifree_top <- t.ifree_top - 1;
    let p = t.ifree.(t.ifree_top) in
    e.Pipeline.old_phys <- t.imap.(r);
    e.Pipeline.new_phys <- p;
    t.imap.(r) <- p
  | Some (Isa.Instr.Dfloat r) ->
    if t.ffree_top = 0 then invalid_arg "Rename.alloc: fp freelist empty";
    t.ffree_top <- t.ffree_top - 1;
    let p = t.ffree.(t.ffree_top) in
    e.Pipeline.old_phys <- t.fmap.(r);
    e.Pipeline.new_phys <- p;
    t.fmap.(r) <- p

(* Checkpoints the speculative maps into a free shadow slot for a
   conditional branch being renamed. The fetch stage admits at most
   [max_spec_branches] unresolved conditionals, so a slot is always
   available. *)
let save_shadow t (e : Pipeline.entry) =
  let slot = ref (-1) in
  (try
     for s = 0 to Array.length t.shadow_used - 1 do
       if not t.shadow_used.(s) then begin
         slot := s;
         raise Exit
       end
     done
   with Exit -> ());
  if !slot < 0 then invalid_arg "Rename.save_shadow: no free shadow slot";
  t.shadow_used.(!slot) <- true;
  Array.blit t.imap 0 t.ishadow.(!slot) 0 Isa.Reg.count;
  Array.blit t.fmap 0 t.fshadow.(!slot) 0 Isa.Reg.count;
  e.Pipeline.shadow_slot <- !slot

(* Releases a branch's shadow slot once it resolves (or is squashed). *)
let release_shadow t (e : Pipeline.entry) =
  if e.Pipeline.shadow_slot >= 0 then begin
    t.shadow_used.(e.Pipeline.shadow_slot) <- false;
    e.Pipeline.shadow_slot <- -1
  end

let free_entry t (e : Pipeline.entry) phys =
  match e.Pipeline.dst with
  | None -> ()
  | Some (Isa.Instr.Dint _) ->
    t.ifree.(t.ifree_top) <- phys;
    t.ifree_top <- t.ifree_top + 1
  | Some (Isa.Instr.Dfloat _) ->
    t.ffree.(t.ffree_top) <- phys;
    t.ffree_top <- t.ffree_top + 1

(* Retirement commits [e]'s rename: the previous mapping of its
   destination can no longer be referenced and returns to the freelist. *)
let retire t (e : Pipeline.entry) =
  if e.Pipeline.new_phys >= 0 then free_entry t e e.Pipeline.old_phys

(* Misprediction rollback for branch [e]: every entry at index >= [keep]
   is about to be squashed — return their allocations to the freelist
   (youngest first, the canonical undo order) and release any shadow
   slots held by squashed branches — then restore the maps from [e]'s
   checkpoint. The caller truncates the iQ afterwards. *)
let rollback t iq ~keep (e : Pipeline.entry) =
  for i = Pipeline.length iq - 1 downto keep do
    let s = Pipeline.get iq i in
    if s.Pipeline.new_phys >= 0 then begin
      free_entry t s s.Pipeline.new_phys;
      s.Pipeline.new_phys <- -1;
      s.Pipeline.old_phys <- -1
    end;
    release_shadow t s
  done;
  let slot = e.Pipeline.shadow_slot in
  if slot < 0 then invalid_arg "Rename.rollback: branch has no shadow";
  Array.blit t.ishadow.(slot) 0 t.imap 0 Isa.Reg.count;
  Array.blit t.fshadow.(slot) 0 t.fmap 0 Isa.Reg.count

let is_cond (e : Pipeline.entry) =
  match Isa.Instr.control e.Pipeline.insn with
  | Isa.Instr.Ctl_cond -> true
  | _ -> false

(* Reconstructs rename state for a snapshot-decoded iQ: re-performs the
   in-order decode-time effects (allocation per decoded destination, a
   shadow checkpoint per decoded unresolved conditional branch) on a
   freshly reset state. Decode is in-order, so the decoded entries form a
   prefix of the iQ and oldest-to-youngest replay is exactly the original
   allocation order; physical identities come out canonical rather than
   historical, which is invisible to timing. *)
let rebuild t iq =
  reset t;
  Pipeline.iteri
    (fun _ e ->
      e.Pipeline.new_phys <- -1;
      e.Pipeline.old_phys <- -1;
      e.Pipeline.shadow_slot <- -1;
      if e.Pipeline.st <> Pipeline.st_fetched then begin
        alloc t e;
        if is_cond e && e.Pipeline.st <> Pipeline.st_done then
          save_shadow t e
      end)
    iq
