type key = string

let fetch_tag = function
  | Pipeline.F_run _ -> 0
  | Pipeline.F_stall_indirect -> 1
  | Pipeline.F_stall_wedged -> 2
  | Pipeline.F_halted -> 3

let put32 b off v =
  Bytes.set b off (Char.unsafe_chr (v land 0xff));
  Bytes.set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get32 (s : string) off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let header_size = 11

(* 64-bit FNV-1a, folded into OCaml's native int (the offset basis is the
   standard constant truncated to 62 bits so it remains a literal; the
   prime is the standard 2^40 + 2^8 + 0xb3). Multiplication wraps, which
   is exactly FNV's behaviour modulo the word size. The final [land
   max_int] keeps the hash non-negative so masking it with a power-of-two
   table size is well defined. *)
let fnv_basis = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3

let hash_sub (b : Bytes.t) len =
  let h = ref fnv_basis in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime
  done;
  !h land max_int

let hash_key (s : string) =
  let h = ref fnv_basis in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

module Arena = struct
  type t = { mutable buf : Bytes.t; mutable len : int; mutable hash : int }

  let create () = { buf = Bytes.create 256; len = 0; hash = 0 }
  let length a = a.len
  let hash a = a.hash
  let buffer a = a.buf
  let key a = Bytes.sub_string a.buf 0 a.len

  let reserve a size =
    if Bytes.length a.buf < size then begin
      let cap = ref (Bytes.length a.buf * 2) in
      while !cap < size do
        cap := !cap * 2
      done;
      a.buf <- Bytes.create !cap
    end
end

let encode_into ?(limit = 255) (a : Arena.t) ~fetch iq =
  let limit = min limit 255 in
  let n = Pipeline.length iq in
  if n > limit then
    invalid_arg
      (Printf.sprintf
         "Snapshot.encode: iQ has %d entries (configured limit %d)" n limit);
  let n_ind = ref 0 in
  Pipeline.iteri (fun _ e -> if e.Pipeline.ind_target >= 0 then incr n_ind) iq;
  let size = header_size + (4 * n) + (4 * !n_ind) in
  Arena.reserve a size;
  let b = a.Arena.buf in
  Bytes.set b 0 (Char.chr (fetch_tag fetch));
  put32 b 1 (match fetch with Pipeline.F_run pc -> pc | _ -> 0);
  Bytes.set b 5 (Char.chr n);
  Bytes.set b 6 (Char.chr !n_ind);
  put32 b 7 (if n = 0 then 0 else (Pipeline.get iq 0).Pipeline.addr);
  let ind_off = ref (header_size + (4 * n)) in
  Pipeline.iteri
    (fun i e ->
      let open Pipeline in
      let counter = e.counter in
      assert (counter >= 0 && counter < 1 lsl 24);
      let b0 =
        e.st
        lor (if e.taken then 8 else 0)
        lor (if e.mispredicted then 16 else 0)
        lor if e.ind_stall then 32 else 0
      in
      let off = header_size + (4 * i) in
      Bytes.set b off (Char.chr b0);
      Bytes.set b (off + 1) (Char.unsafe_chr (counter land 0xff));
      Bytes.set b (off + 2) (Char.unsafe_chr ((counter lsr 8) land 0xff));
      Bytes.set b (off + 3) (Char.unsafe_chr ((counter lsr 16) land 0xff));
      if e.ind_target >= 0 then begin
        put32 b !ind_off e.ind_target;
        ind_off := !ind_off + 4
      end)
    iq;
  a.Arena.len <- size;
  a.Arena.hash <- hash_sub b size

let encode ?limit ~fetch iq =
  let a = Arena.create () in
  encode_into ?limit a ~fetch iq;
  Arena.key a

let entry_count (k : key) = Char.code k.[5]

let modeled_bytes (k : key) =
  let n = Char.code k.[5] and n_ind = Char.code k.[6] in
  16 + ((3 * n + 1) / 2) + (4 * n_ind)

let decode prog ~capacity (k : key) =
  if String.length k < header_size then invalid_arg "Snapshot.decode: short";
  let n = Char.code k.[5] and n_ind = Char.code k.[6] in
  if String.length k <> header_size + (4 * n) + (4 * n_ind) then
    invalid_arg "Snapshot.decode: length mismatch";
  let fetch =
    match Char.code k.[0] with
    | 0 -> Pipeline.F_run (get32 k 1)
    | 1 -> Pipeline.F_stall_indirect
    | 2 -> Pipeline.F_stall_wedged
    | 3 -> Pipeline.F_halted
    | _ -> invalid_arg "Snapshot.decode: bad fetch tag"
  in
  let iq = Pipeline.create ~capacity in
  let ind_off = ref (header_size + (4 * n)) in
  let next_addr = ref (get32 k 7) in
  for i = 0 to n - 1 do
    let off = header_size + (4 * i) in
    let b0 = Char.code k.[off] in
    let counter =
      Char.code k.[off + 1]
      lor (Char.code k.[off + 2] lsl 8)
      lor (Char.code k.[off + 3] lsl 16)
    in
    let e = Pipeline.entry_of_addr prog !next_addr in
    let tag = b0 land 7 in
    if tag > 4 then invalid_arg "Snapshot.decode: bad stage tag";
    e.Pipeline.st <- tag;
    e.Pipeline.counter <- counter;
    e.Pipeline.taken <- b0 land 8 <> 0;
    e.Pipeline.mispredicted <- b0 land 16 <> 0;
    e.Pipeline.ind_stall <- b0 land 32 <> 0;
    if
      match Isa.Instr.control e.Pipeline.insn with
      | Isa.Instr.Ctl_indirect -> true
      | _ -> false
    then begin
      e.Pipeline.ind_target <- get32 k !ind_off;
      ind_off := !ind_off + 4
    end;
    Pipeline.push iq e;
    if i < n - 1 then
      match Pipeline.successor e with
      | Some a -> next_addr := a
      | None -> invalid_arg "Snapshot.decode: entry after halt"
  done;
  (fetch, iq)

let pp ppf (k : key) =
  let n = Char.code k.[5] and n_ind = Char.code k.[6] in
  Format.fprintf ppf
    "@[<v>config: fetch_tag=%d fetch_pc=0x%x entries=%d indirect=%d \
     modeled_bytes=%d@]"
    (Char.code k.[0]) (get32 k 1) n n_ind (modeled_bytes k)
