(** The detailed (cycle-by-cycle) out-of-order pipeline simulator.

    Models an R10000-like processor (the paper's Figure 1 / Table 1 at
    the default {!Params}): configurable fetch/decode/issue/retire
    widths, per-port issue queues and unit counts, per-class latencies,
    a bounded physical register file behind an explicit rename stage
    ({!Rename}: freelist + branch shadow maps), and speculation through
    a bounded number of conditional branches. Structural occupancies are
    recomputed every cycle from the iQ, and the rename state is a
    deterministic function of the iQ (rebuilt on {!restore}), so the
    iQ + fetch state remains the complete inter-cycle state.

    The simulator is timing-only: it never sees program data. Addresses
    reach the cache simulator through the {!Oracle.t}, control-flow
    outcomes arrive through it, and that is the complete interface.

    Determinism contract (the foundation of fast-forwarding): two [t]
    values with equal {!snapshot}s, stepped with oracles that return equal
    outcomes, perform identical oracle calls in identical order and end in
    equal snapshots. This is tested property-style in the test suite. *)

type t

val create : ?params:Params.t -> Isa.Program.t -> t
(** Pipeline empty, fetch starting at the program entry point. *)

val create_at : ?params:Params.t -> Isa.Program.t -> pc:int -> t
(** Like {!create} but fetching from [pc] instead of the entry point:
    the cold-start state of a strategy-engine interval whose functional
    checkpoint resumes mid-program (docs/STRATEGY.md). *)

val restore : ?params:Params.t -> Isa.Program.t -> Snapshot.key -> t
(** Rebuilds a simulator from a configuration snapshot. *)

type cycle_result = {
  retired : int;      (** instructions retired this cycle. *)
  interactions : int; (** oracle calls made this cycle. *)
  halted : bool;      (** a [Halt] retired: simulation is complete. *)
}

val step_cycle : t -> now:int -> Oracle.t -> cycle_result
(** Simulates one cycle: retire, execute/complete (issuing loads and stores
    to the cache as their address generation finishes, resolving branches,
    triggering rollbacks), issue, decode/rename, fetch. [now] is the
    current cycle number, used only to timestamp cache calls. *)

val snapshot : t -> Snapshot.key
(** The current configuration (valid between cycles). *)

val snapshot_arena : t -> Snapshot.Arena.t
(** Like {!snapshot}, but encodes into this simulator's reusable scratch
    arena (no allocation) and returns it. The arena is overwritten by the
    next [snapshot_arena] call on the same [t]; callers must consume (or
    intern) it first. *)

val halted : t -> bool

val retired_by_class : t -> int array
(** Cumulative retired-instruction counts per functional-unit class,
    indexed by {!Isa.Instr.fu_index} (a fresh copy). *)

val in_flight : t -> int
(** Number of iQ entries (for tests and diagnostics). *)

val free_phys : t -> int * int
(** Free (integer, FP) physical registers on the rename stage's freelists
    (for tests and diagnostics). *)

val fetch_state : t -> Pipeline.fetch_state

val dump : Format.formatter -> t -> unit
(** Human-readable pipeline dump for debugging and the examples. *)
