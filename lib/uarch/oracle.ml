type ctl_outcome =
  | C_cond of { taken : bool; mispredicted : bool }
  | C_indirect of { target : int; hit : bool }
  | C_stalled

type t = {
  cache_load : now:int -> int;
  cache_store : now:int -> unit;
  fetch_control : unit -> ctl_outcome;
  rollback : index:int -> unit;
}
