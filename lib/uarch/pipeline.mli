(** The iQ: FastSim's central pipeline data structure (paper §4.1).

    One entry per instruction in flight, from fetch to retirement, in
    program order. Between cycles, the iQ entries plus the fetch state are
    the {e entire} µ-architecture simulator state — everything else
    (queue occupancy, functional-unit availability, speculation depth) is
    recomputed every cycle, exactly as the paper prescribes, and the
    explicit rename-stage state ({!Rename}) is a deterministic function of
    the iQ, rebuilt on restore — so configurations stay small and
    memoizable.

    For speed, an entry's pipeline stage is stored unboxed as a tag plus a
    cycle counter ([st]/[counter]); the {!stage} view reconstructs the
    symbolic form for tests and display. *)

type stage =
  | Fetched              (** in the fetch buffer, awaiting decode/rename. *)
  | Queued               (** in its issue queue, awaiting operands + unit. *)
  | Exec of int          (** executing; cycles remaining (>= 1). *)
  | Wait_cache of int    (** load issued to the cache; cycles until data. *)
  | Done                 (** completed; retires when it reaches the head. *)

(** Unboxed stage tags, the values of [entry.st]. *)

val st_fetched : int
val st_queued : int
val st_exec : int
val st_wait : int
val st_done : int

type entry = {
  addr : int;
  insn : Isa.Instr.t;          (** decoded from [addr]; derived, not state. *)
  fu : Isa.Instr.fu_class;     (** derived from [insn]. *)
  srcs : Isa.Instr.dest array; (** source registers; derived, cached. *)
  dst : Isa.Instr.dest option; (** destination register; derived, cached. *)
  mutable st : int;            (** stage tag, one of the [st_*] values. *)
  mutable counter : int;       (** cycles remaining in [st_exec]/[st_wait]. *)
  mutable taken : bool;        (** conditional branches: actual direction. *)
  mutable mispredicted : bool; (** conditional branches: misprediction not
                                   yet repaired by a rollback. *)
  mutable ind_target : int;    (** indirect jumps: actual target; -1 else. *)
  mutable ind_stall : bool;    (** indirect jumps: fetch stalled on this
                                   entry until it resolves. *)
  mutable new_phys : int;      (** physical register allocated to [dst] at
                                   rename; -1 before decode / no dest. *)
  mutable old_phys : int;      (** previous mapping of [dst]'s architectural
                                   register, freed at retirement; -1 as
                                   above. *)
  mutable shadow_slot : int;   (** conditional branches: index of the shadow
                                   map saved at rename; -1 otherwise.
                                   These three fields are {!Rename} state
                                   riding on the entry. They are rebuilt
                                   deterministically from the iQ on restore
                                   and are deliberately {e not} part of the
                                   snapshot: physical-register identities
                                   never influence timing. *)
}

val stage : entry -> stage
val set_stage : entry -> stage -> unit

type fetch_state =
  | F_run of int         (** fetching at this byte address. *)
  | F_stall_indirect     (** stalled on the youngest entry's indirect jump. *)
  | F_stall_wedged       (** the (wrong) path cannot be fetched further;
                             only a rollback can redirect fetch. *)
  | F_halted             (** a [Halt] has been fetched. *)

type t
(** A bounded in-order buffer of entries (the active list). *)

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val entry_of_addr : Isa.Program.t -> int -> entry
(** Fresh entry in the fetched stage; raises [Isa.Program.Fault] when
    [addr] is not a decodable instruction address. *)

val push : t -> entry -> unit
(** Appends at the tail (youngest). Raises [Invalid_argument] when full. *)

val pop : t -> entry
(** Removes the head (oldest). Raises [Invalid_argument] when empty. *)

val peek : t -> entry option

val get : t -> int -> entry
(** [get t i] is the [i]-th oldest entry, [0 <= i < length t]. *)

val unsafe_get : t -> int -> entry
(** [get] without the bounds check, for the simulator's hot loops. *)

val truncate : t -> int -> unit
(** [truncate t n] squashes all but the [n] oldest entries. *)

val iteri : (int -> entry -> unit) -> t -> unit
(** Oldest to youngest. The callback must not modify the queue. *)

val successor : entry -> int option
(** The address of the instruction that follows [entry] on the {e fetched}
    path, derived from the entry's control bits: for conditional branches
    the predicted direction while a misprediction is pending and the actual
    direction afterwards, the static target for direct jumps, [ind_target]
    for indirect jumps, [None] after [Halt]. This is what lets
    configurations store only the oldest address plus control bits
    (paper §4.2). *)
