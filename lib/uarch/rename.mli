(** The explicit register-rename stage.

    An R10000-style renamer: one speculative architectural-to-physical map
    per register class, a bounded freelist sized by
    {!Params.rename_int_budget}/{!Params.rename_fp_budget}, and up to
    [max_spec_branches] shadow-map checkpoints, one per in-flight renamed
    conditional branch, restored wholesale on misprediction rollback.

    Lifecycle, driven by {!Detailed}:
    - decode allocates ({!alloc}) for each renamed destination and
      checkpoints ({!save_shadow}) at each conditional branch;
    - retirement frees the displaced previous mapping ({!retire});
    - branch resolution releases the checkpoint ({!release_shadow}),
      after restoring it ({!rollback}) when the branch mispredicted.

    Determinism: simulator timing depends only on the freelist
    occupancies {!free_int}/{!free_fp}, which are pure functions of the
    iQ contents. Physical-register identities are never observable, so
    {!rebuild} can reconstruct an equivalent state from a
    snapshot-decoded iQ (allocating in canonical order) without breaking
    the configuration-determinism contract memoization rests on. *)

type t

val create : Params.t -> t
(** Empty-pipeline state: identity maps, full freelists, no shadows. *)

val reset : t -> unit

val free_int : t -> int
(** Free integer physical registers; decode stalls when an instruction
    needs more than are available. *)

val free_fp : t -> int

val alloc : t -> Pipeline.entry -> unit
(** Allocates a physical register for the entry's destination (no-op when
    it has none), sets the entry's [new_phys]/[old_phys], and updates the
    speculative map. Raises [Invalid_argument] when the freelist is empty
    — callers must check {!free_int}/{!free_fp} first. *)

val save_shadow : t -> Pipeline.entry -> unit
(** Checkpoints the speculative maps for a conditional branch being
    renamed, recording the slot in the entry's [shadow_slot]. *)

val release_shadow : t -> Pipeline.entry -> unit
(** Frees the entry's shadow slot, if it holds one. *)

val retire : t -> Pipeline.entry -> unit
(** Returns the entry's displaced previous mapping to the freelist. *)

val rollback : t -> Pipeline.t -> keep:int -> Pipeline.entry -> unit
(** [rollback t iq ~keep branch]: undoes the rename effects of every
    entry at index [>= keep] (all about to be squashed) — freeing their
    allocations and shadow slots — and restores the maps from [branch]'s
    checkpoint. Call {e before} truncating the iQ; the branch's own slot
    stays live until {!release_shadow}. *)

val rebuild : t -> Pipeline.t -> unit
(** Reconstructs the state implied by a snapshot-decoded iQ by replaying
    decode-time effects oldest to youngest on a {!reset} state. Also
    (re)initialises the per-entry rename fields. *)
