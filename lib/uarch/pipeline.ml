type stage =
  | Fetched
  | Queued
  | Exec of int
  | Wait_cache of int
  | Done

let st_fetched = 0
let st_queued = 1
let st_exec = 2
let st_wait = 3
let st_done = 4

type entry = {
  addr : int;
  insn : Isa.Instr.t;
  fu : Isa.Instr.fu_class;
  srcs : Isa.Instr.dest array;
  dst : Isa.Instr.dest option;
  mutable st : int;
  mutable counter : int;
  mutable taken : bool;
  mutable mispredicted : bool;
  mutable ind_target : int;
  mutable ind_stall : bool;
  (* Rename-stage bookkeeping (Rename). Derived deterministically from the
     rest of the iQ on restore, so it is NOT part of the snapshot. *)
  mutable new_phys : int;
  mutable old_phys : int;
  mutable shadow_slot : int;
}

let stage e =
  if e.st = st_fetched then Fetched
  else if e.st = st_queued then Queued
  else if e.st = st_exec then Exec e.counter
  else if e.st = st_wait then Wait_cache e.counter
  else Done

let set_stage e = function
  | Fetched ->
    e.st <- st_fetched;
    e.counter <- 0
  | Queued ->
    e.st <- st_queued;
    e.counter <- 0
  | Exec n ->
    e.st <- st_exec;
    e.counter <- n
  | Wait_cache n ->
    e.st <- st_wait;
    e.counter <- n
  | Done ->
    e.st <- st_done;
    e.counter <- 0

type fetch_state =
  | F_run of int
  | F_stall_indirect
  | F_stall_wedged
  | F_halted

type t = {
  buf : entry option array;  (* power-of-two sized ring *)
  mask : int;
  cap : int;                 (* logical capacity *)
  mutable head : int;
  mutable count : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Pipeline.create";
  let n = ref 1 in
  while !n < capacity do
    n := !n * 2
  done;
  { buf = Array.make !n None; mask = !n - 1; cap = capacity; head = 0;
    count = 0 }

let capacity t = t.cap
let length t = t.count
let is_full t = t.count = t.cap
let is_empty t = t.count = 0

(* Issue-readiness operands. Stores enter the address queue as soon as
   their BASE register is ready (the R10000 computes store addresses
   independently of store data; data reaches the cache at retirement,
   which in-order retire already sequences after the producer). *)
let issue_srcs insn =
  match insn with
  | Isa.Instr.Store (_, _, base, _) | Isa.Instr.Fstore (_, base, _) ->
    if base = Isa.Reg.zero then [||] else [| Isa.Instr.Dint base |]
  | _ -> Array.of_list (Isa.Instr.sources insn)

let entry_of_addr prog addr =
  let insn = Isa.Program.fetch prog addr in
  { addr;
    insn;
    fu = Isa.Instr.fu_class insn;
    srcs = issue_srcs insn;
    dst = Isa.Instr.dest insn;
    st = st_fetched;
    counter = 0;
    taken = false;
    mispredicted = false;
    ind_target = -1;
    ind_stall = false;
    new_phys = -1;
    old_phys = -1;
    shadow_slot = -1 }

let slot t i = (t.head + i) land t.mask

let push t e =
  if is_full t then invalid_arg "Pipeline.push: full";
  t.buf.(slot t t.count) <- Some e;
  t.count <- t.count + 1

let pop t =
  if is_empty t then invalid_arg "Pipeline.pop: empty";
  let i = t.head land t.mask in
  match t.buf.(i) with
  | None -> assert false
  | Some e ->
    t.buf.(i) <- None;
    t.head <- (t.head + 1) land t.mask;
    t.count <- t.count - 1;
    e

let peek t = if is_empty t then None else t.buf.(t.head land t.mask)

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Pipeline.get";
  match t.buf.(slot t i) with Some e -> e | None -> assert false

let unsafe_get t i =
  match Array.unsafe_get t.buf ((t.head + i) land t.mask) with
  | Some e -> e
  | None -> assert false

let truncate t n =
  if n < 0 || n > t.count then invalid_arg "Pipeline.truncate";
  for i = n to t.count - 1 do
    t.buf.(slot t i) <- None
  done;
  t.count <- n

let iteri f t =
  for i = 0 to t.count - 1 do
    match t.buf.(slot t i) with Some e -> f i e | None -> assert false
  done

let successor e =
  match Isa.Instr.control e.insn with
  | Ctl_none -> Some (e.addr + 4)
  | Ctl_cond -> (
    (* Younger entries lie on the FETCHED path: the predicted direction
       while a misprediction is pending, the actual direction once it has
       been repaired (the wrong-path suffix is squashed at resolution). *)
    let direction = if e.mispredicted then not e.taken else e.taken in
    match Isa.Instr.branch_targets e.insn ~pc:e.addr with
    | Some (fall, target) -> Some (if direction then target else fall)
    | None -> assert false)
  | Ctl_direct target -> Some target
  | Ctl_indirect -> if e.ind_target >= 0 then Some e.ind_target else None
  | Ctl_halt -> None
