(** The boundary between the µ-architecture simulator and the rest of
    FastSim.

    Everything the detailed simulator learns from outside — cache latencies
    and control-flow outcomes — and every effect it causes outside —
    issuing loads/stores to the cache simulator, rolling back direct
    execution — flows through this record. This is precisely the set of
    "simulator actions" that fast-forwarding must record and replay
    (paper §4.2); keeping the interface this narrow is what makes
    configurations + outcomes a complete determinant of behaviour. *)

type ctl_outcome =
  | C_cond of { taken : bool; mispredicted : bool }
      (** Outcome of the next conditional branch on the fetch path: the
          four-way taken/not-taken × predicted/mispredicted outcome of the
          paper. *)
  | C_indirect of { target : int; hit : bool }
      (** Outcome of the next indirect jump: actual target, and whether the
          front-end predicted it (BTB/RAS hit with the correct target). *)
  | C_stalled
      (** Direct execution cannot supply the outcome because the (wrong)
          path faulted or reached [Halt] speculatively; fetch must stall
          until a rollback. *)

type t = {
  cache_load : now:int -> int;
      (** Issue the oldest pending load to the cache simulator at cycle
          [now]; returns the latency until its data is available (>= 1). *)
  cache_store : now:int -> unit;
      (** Issue the oldest pending store to the cache simulator. *)
  fetch_control : unit -> ctl_outcome;
      (** Ask direct execution for the next control-flow outcome on the
          fetch path. *)
  rollback : index:int -> unit;
      (** Repair the [index]-th oldest outstanding misprediction in direct
          execution (restore registers and memory, resume on the corrected
          path). *)
}
