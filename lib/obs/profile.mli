(** Host-profiling hooks: monotonic wall-clock timers partitioning
    simulator time into phases.

    Accounting is {e exclusive}: entering a nested phase stops the clock of
    the enclosing one, so the per-phase seconds sum to the total elapsed
    time. Time spent outside any phase accrues to {!Other}.

    The engines map their work onto phases as follows: the detailed
    cycle-by-cycle simulator runs under {!Detailed}; fast-forwarding under
    {!Replay}; each oracle call nests {!Cachesim} (cache loads/stores) or
    {!Emulation} (direct-execution control pulls and rollbacks) inside
    whichever of the two is active. *)

type phase = Detailed | Replay | Cachesim | Emulation | Other

type t

val create : unit -> t
(** The clock starts immediately; unattributed time accrues to {!Other}. *)

val enter : t -> phase -> unit
val leave : t -> unit
(** Unbalanced [leave] (empty phase stack) is a no-op. *)

val with_phase : t -> phase -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a thunk, exception-safe. *)

val stop : t -> unit
(** Charges time since the last transition and stops accumulating; called
    automatically by the reporting functions below. Safe to call twice. *)

val seconds : t -> phase -> float
val total : t -> float
val phase_name : phase -> string
val all_phases : phase list

val to_json : t -> Json.t
(** [{ "detailed": s, "replay": s, "cachesim": s, "emulation": s,
      "other": s, "total": s }] *)

val pp : Format.formatter -> t -> unit
(** A small table: seconds and percentage per phase. *)
