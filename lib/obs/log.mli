(** Leveled structured logging: one JSON object per line (JSONL).

    Every record carries a fixed prefix — [ts] (Unix epoch seconds),
    [level], [event] — an optional [req] correlation id linking the line
    to a request-scoped trace ({!Span.Ctx}), then the caller's fields in
    call order. The fixed ordering makes log lines diff cleanly and
    [jq]-friendly:

    {v
    {"ts":1754700000.123,"level":"info","event":"serve.dispatch",
     "req":"r42","engine":"fast","digest":"5ab5421d"}
    v}

    Lines are flushed per record, so multiple processes appending to the
    same file (a daemon and its forked workers) interleave whole lines.

    A disabled logger ({!null}, or a level below the threshold) costs a
    couple of comparisons per call site — cheap enough to leave log
    statements on hot-ish control paths. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

type t

val null : t
(** Drops everything. The default everywhere a logger is optional. *)

val to_channel : ?level:level -> out_channel -> t
(** Logger writing to an existing channel (not closed by {!close}).
    [level] (default [Info]) is the minimum severity emitted. *)

val open_file : ?level:level -> string -> t
(** Opens [path] in append mode. {!close} closes it. *)

val close : t -> unit
(** Closes a file-backed logger (no-op otherwise, idempotent). *)

val enabled : t -> level -> bool
(** [true] iff a record at [level] would be written — guard expensive
    field construction with this. *)

val log : t -> level -> ?req:string -> event:string -> (string * Json.t) list -> unit
val debug : t -> ?req:string -> event:string -> (string * Json.t) list -> unit
val info : t -> ?req:string -> event:string -> (string * Json.t) list -> unit
val warn : t -> ?req:string -> event:string -> (string * Json.t) list -> unit
val error : t -> ?req:string -> event:string -> (string * Json.t) list -> unit

val set_default : t -> unit
(** Installs the process-wide default logger used by subsystems that are
    not handed one explicitly (e.g. {!Fastsim_exec.Pool.Async} spawn and
    kill events). Starts as {!null}. *)

val default : unit -> t
