(** Structured trace events.

    One event = a timestamp in {e simulated cycles}, a category (the
    emitting subsystem), a name, a phase, and free-form arguments. The
    taxonomy emitted by the engines:

    {v
    cat      name               ph  args
    -------  -----------------  --  ------------------------------------
    engine   detailed           B/E spans of detailed simulation (the slow
                                    engine emits one; fast, one per episode)
    engine   replay             B/E spans of fast-forwarding, with
                                    groups/actions replayed on the E event
    engine   retired            C   cumulative retired-instruction counter
    core     cond               i   taken, mispredicted
    core     indirect           i   target, hit
    core     fetch_stall        i   direct execution cannot supply outcome
    core     rollback           i   index of the repaired misprediction
    cache    l1_miss            i   addr, latency, merged
    cache    l2_miss            i   addr
    cache    writeback          i   dirty L2 victim
    pcache   insert             i   a new configuration was interned
    pcache   flush              i   population (flush-on-full fired)
    pcache   minor_gc, full_gc  i   survivors, population
    v}

    Under memoization the [core] and [cache] events during replay are
    {e synthetic}: they are reconstructed from the recorded action chains
    as the replay engine re-performs each interaction, so a FastSim trace
    covers fast-forwarded regions too. *)

type ph =
  | B  (** span begin. *)
  | E  (** span end. *)
  | I  (** instant. *)
  | C  (** counter sample. *)

type t = {
  ts : int;  (** simulated cycle. *)
  cat : string;
  name : string;
  ph : ph;
  args : (string * Json.t) list;
}

val span_begin :
  ts:int -> cat:string -> ?args:(string * Json.t) list -> string -> t

val span_end :
  ts:int -> cat:string -> ?args:(string * Json.t) list -> string -> t

val instant :
  ts:int -> cat:string -> ?args:(string * Json.t) list -> string -> t

val counter : ts:int -> cat:string -> string -> int -> t
(** [counter ~ts ~cat name v] samples counter [name] at value [v]. *)

val to_chrome : t -> Json.t
(** The Chrome [trace_event] object (catapult JSON): cycle timestamps map
    to microseconds (1 cycle = 1 µs), categories map to fixed [tid] lanes
    so Perfetto draws each subsystem as its own track. *)

val to_jsonl : t -> Json.t
(** A flat per-line object for the JSONL exporter. *)
