type counter = { mutable c : int }
type gauge = { mutable g : float }

(* 63-bit ints need buckets 0 (<= 0) through 62 ([2^61, 2^62-1], where
   max_int lives); size 64 also covers 32-bit hosts with room to spare. *)
let n_buckets = 64

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.tbl name m;
    t.order <- name :: t.order;
    m

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter t name =
  match register t name (fun () -> M_counter { c = 0 }) with
  | M_counter c -> c
  | _ -> kind_error name

let gauge t name =
  match register t name (fun () -> M_gauge { g = 0. }) with
  | M_gauge g -> g
  | _ -> kind_error name

let histogram t name =
  match
    register t name (fun () ->
        M_histogram
          { buckets = Array.make n_buckets 0;
            count = 0;
            sum = 0;
            min = max_int;
            max = min_int })
  with
  | M_histogram h -> h
  | _ -> kind_error name

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits: 1 -> 1, 2..3 -> 2, max_int -> 62 *)
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    !b
  end

let bucket_lower_bound i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v

let h_count h = h.count
let h_sum h = h.sum
let h_min h = h.min
let h_max h = h.max

let h_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      acc := (bucket_lower_bound i, h.buckets.(i)) :: !acc
  done;
  !acc

let h_mean h =
  if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

let names_in_order t = List.rev t.order

let iter_counters f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_counter c) -> f name c.c
      | _ -> ())
    (names_in_order t)

let iter_gauges f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_gauge g) -> f name g.g
      | _ -> ())
    (names_in_order t)

let iter_histograms f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_histogram h) -> f name h
      | _ -> ())
    (names_in_order t)

let to_json t =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  iter_counters (fun name v -> counters := (name, Json.Int v) :: !counters) t;
  iter_gauges (fun name v -> gauges := (name, Json.Float v) :: !gauges) t;
  iter_histograms
    (fun name h ->
      let buckets =
        List.map
          (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ])
          (h_buckets h)
      in
      histos :=
        ( name,
          Json.Obj
            [ ("count", Json.Int h.count);
              ("sum", Json.Int h.sum);
              ("min", Json.Int (if h.count = 0 then 0 else h.min));
              ("max", Json.Int (if h.count = 0 then 0 else h.max));
              ("mean", Json.Float (h_mean h));
              ("buckets", Json.List buckets) ] )
        :: !histos)
    t;
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histos)) ]
