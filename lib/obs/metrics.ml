type counter = { mutable c : int }
type gauge = { mutable g : float }

(* 63-bit ints need buckets 0 (<= 0) through 62 ([2^61, 2^62-1], where
   max_int lives); size 64 also covers 32-bit hosts with room to spare. *)
let n_buckets = 64

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.tbl name m;
    t.order <- name :: t.order;
    m

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter t name =
  match register t name (fun () -> M_counter { c = 0 }) with
  | M_counter c -> c
  | _ -> kind_error name

let gauge t name =
  match register t name (fun () -> M_gauge { g = 0. }) with
  | M_gauge g -> g
  | _ -> kind_error name

let histogram t name =
  match
    register t name (fun () ->
        M_histogram
          { buckets = Array.make n_buckets 0;
            count = 0;
            sum = 0;
            min = max_int;
            max = min_int })
  with
  | M_histogram h -> h
  | _ -> kind_error name

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits: 1 -> 1, 2..3 -> 2, max_int -> 62 *)
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    !b
  end

let bucket_lower_bound i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v

let h_count h = h.count
let h_sum h = h.sum
let h_min h = h.min
let h_max h = h.max

let h_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      acc := (bucket_lower_bound i, h.buckets.(i)) :: !acc
  done;
  !acc

let h_mean h =
  if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

(* Lexicographic, not registration, order: two registries that acquired
   the same instruments in different orders (a server and its forked
   worker, two CI runs with shuffled tests) must export byte-identical
   JSON so snapshots diff cleanly. *)
let names_in_order t = List.sort compare (List.rev t.order)

let iter_counters f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_counter c) -> f name c.c
      | _ -> ())
    (names_in_order t)

let iter_gauges f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_gauge g) -> f name g.g
      | _ -> ())
    (names_in_order t)

let iter_histograms f t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (M_histogram h) -> f name h
      | _ -> ())
    (names_in_order t)

(* ---------------------------------------------------------------- *)
(* Snapshots: immutable copies of a registry's state, so scrapers can
   diff two points in time (cheap per-interval deltas) and stitchers
   can merge registries from several processes. min/max are already
   normalised (0 when empty) — same convention as the JSON export. *)

type hsnap = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : (int * int) list;  (* (lower_bound, count), ascending *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hsnap) list;
}

let hsnap_of h =
  { s_count = h.count;
    s_sum = h.sum;
    s_min = (if h.count = 0 then 0 else h.min);
    s_max = (if h.count = 0 then 0 else h.max);
    s_buckets = h_buckets h }

let snapshot t =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  iter_counters (fun name v -> counters := (name, v) :: !counters) t;
  iter_gauges (fun name v -> gauges := (name, v) :: !gauges) t;
  iter_histograms (fun name h -> histos := (name, hsnap_of h) :: !histos) t;
  { s_counters = List.rev !counters;
    s_gauges = List.rev !gauges;
    s_histograms = List.rev !histos }

(* Outer-join two sorted assoc lists; [combine name left right] sees
   [None] for a side missing the name. Result stays sorted. *)
let join_assoc combine xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | (n, x) :: xs', [] -> go ((n, combine (Some x) None) :: acc) xs' []
    | [], (n, y) :: ys' -> go ((n, combine None (Some y)) :: acc) [] ys'
    | (nx, x) :: xs', (ny, y) :: ys' ->
      if nx = ny then go ((nx, combine (Some x) (Some y)) :: acc) xs' ys'
      else if nx < ny then go ((nx, combine (Some x) None) :: acc) xs' ys
      else go ((ny, combine None (Some y)) :: acc) xs ys'
  in
  go [] xs ys

let hsnap_empty =
  { s_count = 0; s_sum = 0; s_min = 0; s_max = 0; s_buckets = [] }

let bucket_join f xs ys =
  List.filter
    (fun (_, n) -> n <> 0)
    (join_assoc
       (fun a b ->
         f (Option.value a ~default:0) (Option.value b ~default:0))
       xs ys)

let hsnap_diff ~after ~before =
  let s_count = after.s_count - before.s_count in
  { s_count;
    s_sum = after.s_sum - before.s_sum;
    (* Per-interval extrema aren't recoverable from cumulative state;
       after's values are the least-surprising approximation. *)
    s_min = (if s_count > 0 then after.s_min else 0);
    s_max = (if s_count > 0 then after.s_max else 0);
    s_buckets = bucket_join (fun a b -> a - b) after.s_buckets before.s_buckets }

let hsnap_merge a b =
  let s_count = a.s_count + b.s_count in
  { s_count;
    s_sum = a.s_sum + b.s_sum;
    s_min =
      (if a.s_count = 0 then b.s_min
       else if b.s_count = 0 then a.s_min
       else min a.s_min b.s_min);
    s_max =
      (if a.s_count = 0 then b.s_max
       else if b.s_count = 0 then a.s_max
       else max a.s_max b.s_max);
    s_buckets = bucket_join ( + ) a.s_buckets b.s_buckets }

let snapshot_diff ~after ~before =
  { s_counters =
      join_assoc
        (fun a b -> Option.value a ~default:0 - Option.value b ~default:0)
        after.s_counters before.s_counters;
    (* Gauges are levels, not accumulators: the newer reading wins. *)
    s_gauges =
      join_assoc
        (fun a b ->
          match a with Some v -> v | None -> Option.value b ~default:0.)
        after.s_gauges before.s_gauges;
    s_histograms =
      join_assoc
        (fun a b ->
          hsnap_diff
            ~after:(Option.value a ~default:hsnap_empty)
            ~before:(Option.value b ~default:hsnap_empty))
        after.s_histograms before.s_histograms }

let snapshot_merge a b =
  { s_counters =
      join_assoc
        (fun a b -> Option.value a ~default:0 + Option.value b ~default:0)
        a.s_counters b.s_counters;
    s_gauges =
      join_assoc
        (fun a b ->
          Option.value a ~default:0. +. Option.value b ~default:0.)
        a.s_gauges b.s_gauges;
    s_histograms =
      join_assoc
        (fun a b ->
          hsnap_merge
            (Option.value a ~default:hsnap_empty)
            (Option.value b ~default:hsnap_empty))
        a.s_histograms b.s_histograms }

let hsnap_mean s =
  if s.s_count = 0 then 0. else float_of_int s.s_sum /. float_of_int s.s_count

(* Smallest sample value v such that at least [q * count] samples are
   <= v's bucket; reported as the bucket midpoint (1.5x the lower
   bound), clamped into [min, max] so tight distributions don't read
   above their own maximum. Exact enough for p50/p99 dashboards. *)
let hsnap_quantile s q =
  if s.s_count = 0 then 0.
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int s.s_count)) in
      if t < 1 then 1 else if t > s.s_count then s.s_count else t
    in
    let rec go seen = function
      | [] -> float_of_int s.s_max
      | (lo, n) :: rest ->
        if seen + n >= target then
          let mid = if lo = 0 then 0. else 1.5 *. float_of_int lo in
          Float.min (float_of_int s.s_max) (Float.max (float_of_int s.s_min) mid)
        else go (seen + n) rest
    in
    go 0 s.s_buckets
  end

let snapshot_to_json s =
  let buckets bs =
    Json.List
      (List.map (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ]) bs)
  in
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.s_counters));
      ("gauges",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.s_gauges));
      ("histograms",
       Json.Obj
         (List.map
            (fun (n, h) ->
              ( n,
                Json.Obj
                  [ ("count", Json.Int h.s_count);
                    ("sum", Json.Int h.s_sum);
                    ("min", Json.Int h.s_min);
                    ("max", Json.Int h.s_max);
                    ("mean", Json.Float (hsnap_mean h));
                    ("buckets", buckets h.s_buckets) ] ))
            s.s_histograms)) ]

let snapshot_of_json j =
  try
    let assoc what k =
      match Json.member k j with
      | Json.Obj kvs -> kvs
      | _ -> failwith (what ^ " must be an object")
    in
    let hist (name, hj) =
      let b =
        match Json.member "buckets" hj with
        | Json.List bs ->
          List.map
            (function
              | Json.List [ lo; n ] -> (Json.to_int lo, Json.to_int n)
              | _ -> failwith "bucket must be a [lower, count] pair")
            bs
        | _ -> failwith "buckets must be an array"
      in
      ( name,
        { s_count = Json.to_int (Json.member "count" hj);
          s_sum = Json.to_int (Json.member "sum" hj);
          s_min = Json.to_int (Json.member "min" hj);
          s_max = Json.to_int (Json.member "max" hj);
          s_buckets = b } )
    in
    Ok
      { s_counters =
          List.map (fun (n, v) -> (n, Json.to_int v)) (assoc "counters" "counters");
        s_gauges =
          List.map (fun (n, v) -> (n, Json.to_float v)) (assoc "gauges" "gauges");
        s_histograms = List.map hist (assoc "histograms" "histograms") }
  with
  | Json.Parse_error m | Failure m -> Error ("metrics snapshot: " ^ m)

let to_json t = snapshot_to_json (snapshot t)
