type phase = Detailed | Replay | Cachesim | Emulation | Other

let all_phases = [ Detailed; Replay; Cachesim; Emulation; Other ]
let n_phases = 5

let index = function
  | Detailed -> 0
  | Replay -> 1
  | Cachesim -> 2
  | Emulation -> 3
  | Other -> 4

let phase_name = function
  | Detailed -> "detailed"
  | Replay -> "replay"
  | Cachesim -> "cachesim"
  | Emulation -> "emulation"
  | Other -> "other"

type t = {
  acc : float array;
  mutable stack : phase list;
  mutable last : float;  (* timestamp of the last phase transition *)
  mutable stopped : bool;
}

let now () = Unix.gettimeofday ()

let create () =
  { acc = Array.make n_phases 0.; stack = []; last = now (); stopped = false }

let current t = match t.stack with ph :: _ -> ph | [] -> Other

(* Charge elapsed time since the last transition to the active phase. *)
let charge t =
  if not t.stopped then begin
    let n = now () in
    let i = index (current t) in
    t.acc.(i) <- t.acc.(i) +. (n -. t.last);
    t.last <- n
  end

let enter t ph =
  charge t;
  t.stack <- ph :: t.stack

let leave t =
  charge t;
  match t.stack with [] -> () | _ :: rest -> t.stack <- rest

let with_phase t ph f =
  enter t ph;
  Fun.protect ~finally:(fun () -> leave t) f

let stop t =
  charge t;
  t.stopped <- true

let seconds t ph =
  stop t;
  t.acc.(index ph)

let total t =
  stop t;
  Array.fold_left ( +. ) 0. t.acc

let to_json t =
  stop t;
  Json.Obj
    (List.map (fun ph -> (phase_name ph, Json.Float t.acc.(index ph)))
       all_phases
    @ [ ("total", Json.Float (total t)) ])

let pp ppf t =
  stop t;
  let tot = total t in
  Format.fprintf ppf "%-10s %9s %6s@." "phase" "seconds" "%";
  List.iter
    (fun ph ->
      let s = t.acc.(index ph) in
      Format.fprintf ppf "%-10s %9.3f %5.1f%%@." (phase_name ph) s
        (if tot > 0. then 100. *. s /. tot else 0.))
    all_phases;
  Format.fprintf ppf "%-10s %9.3f@." "total" tot
