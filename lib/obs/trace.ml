type t = { ring : Event.t Ring.t }

let create ?(capacity = 65536) () = { ring = Ring.create ~capacity }
let emit t ev = Ring.push t.ring ev
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let total t = Ring.total_pushed t.ring
let events t = Ring.to_list t.ring
let iter f t = Ring.iter f t.ring
let clear t = Ring.clear t.ring
