(** Wall-clock spans for request-scoped tracing across processes.

    {!Trace}/{!Event} timestamp in {e simulated cycles} inside one
    engine run; a span timestamps in {e host wall-clock microseconds}
    and carries the recording process's pid. Because a forked worker
    shares its parent's clock, spans recorded server-side (queue wait,
    fork, ship-back) and worker-side (engine run, pcache save) stitch
    into one Chrome trace with a per-process lane each.

    Everything here is passive bookkeeping: recording a span never
    touches simulation state. *)

type t = {
  name : string;
  cat : string;
  pid : int;
  start_us : int;  (** absolute wall-clock µs (63-bit int is plenty). *)
  dur_us : int;
  args : (string * Json.t) list;
}

type span = t
(** Alias so {!Ctx}'s signature can name the span type. *)

val now_us : unit -> int
(** [gettimeofday] in microseconds. *)

type collector
(** A mutable bag of spans; one per request on the server, one per
    forked worker (marshalled back with the result). *)

val create : unit -> collector
val add : collector -> t -> unit

val record :
  collector -> name:string -> ?cat:string -> ?args:(string * Json.t) list ->
  start_us:int -> end_us:int -> unit -> unit
(** Records a closed span ([cat] defaults to ["serve"]; the pid is the
    calling process's). Negative durations clamp to 0. *)

val with_span :
  collector -> name:string -> ?cat:string -> ?args:(string * Json.t) list ->
  (unit -> 'a) -> 'a
(** Times [f], recording the span even when [f] raises. *)

val spans : collector -> t list
(** In recording order. *)

val length : collector -> int
val absorb : collector -> t list -> unit
(** Folds spans from another process (e.g. a worker's shipped-back
    list) into this collector. *)

val with_arg : t -> string * Json.t -> t

(** {1 JSON codec} — for telemetry frames and worker ship-back. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val list_to_json : t list -> Json.t
val list_of_json : Json.t -> (t list, string) result

(** {1 Chrome stitching} *)

val chrome_json : ?process_names:(int * string) list -> t list -> Json.t
(** Chrome [trace_event] JSON: one ["M"] [process_name] record per
    distinct pid (named from [process_names], default ["pid-N"]) and
    one ["X"] complete event per span, timestamps normalised so the
    earliest span starts at 0. Load in Perfetto or [chrome://tracing]. *)

val write_chrome_file :
  string -> ?process_names:(int * string) list -> t list -> unit

(** {1 Request-scoped context} *)

val mint_id : unit -> string
(** A fresh id unique within this process ("r<pid>-<seq>"). *)

module Ctx : sig
  type t
  (** A request id plus the collector its spans accumulate into. *)

  val create : ?id:string -> unit -> t
  (** Mints an id with {!mint_id} unless one is supplied (workers reuse
      the server-minted id that arrived in the frame). *)

  val id : t -> string
  val collector : t -> collector

  val finish : t -> span list
  (** The recorded spans, each tagged with an ["req" = id] arg so many
      requests can share one stitched trace file. *)
end
