(** Bounded ring buffer.

    The event-trace sink keeps the most recent [capacity] events: pushes
    past capacity silently overwrite the oldest element (the count of
    overwritten elements is reported by {!dropped}). All operations are
    O(1) except {!to_list} / {!iter}, which are O(length). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val total_pushed : 'a t -> int
(** Elements pushed over the ring's lifetime (survivors + dropped). *)

val dropped : 'a t -> int
(** Elements overwritten by wraparound: [total_pushed - length]. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
(** Empties the ring; {!total_pushed} and {!dropped} reset too. *)
