type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  profile : Profile.t option;
}

let create ?trace ?metrics ?profile () = { trace; metrics; profile }

let full ?trace_capacity () =
  { trace = Some (Trace.create ?capacity:trace_capacity ());
    metrics = Some (Metrics.create ());
    profile = Some (Profile.create ()) }

let trace = function None -> None | Some t -> t.trace
let metrics = function None -> None | Some t -> t.metrics
let profile = function None -> None | Some t -> t.profile
