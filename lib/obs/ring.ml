type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0; pushed = 0 }

let capacity t = Array.length t.buf

let push t x =
  let cap = Array.length t.buf in
  t.buf.(t.head) <- Some x;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1;
  t.pushed <- t.pushed + 1

let length t = t.len
let total_pushed t = t.pushed
let dropped t = t.pushed - t.len

let iter f t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    match t.buf.((start + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.pushed <- 0
