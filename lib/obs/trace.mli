(** The event-trace sink: a ring buffer of {!Event.t}.

    A sink is bounded — the most recent [capacity] events survive; earlier
    ones are dropped (counted by {!dropped}), so tracing an arbitrarily
    long run costs bounded memory and exporters stay usable in a viewer.

    Disabled means {e absent}: emitters hold a [Trace.t option] and a
    [None] costs exactly one pattern match per potential event — no event
    is constructed, no closure is entered. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 events. *)

val emit : t -> Event.t -> unit
val length : t -> int
val dropped : t -> int
val total : t -> int
(** Events emitted over the sink's lifetime (kept + dropped). *)

val events : t -> Event.t list
(** Oldest first. *)

val iter : (Event.t -> unit) -> t -> unit
val clear : t -> unit
