(** The observability context handed to the simulation engines.

    A bundle of up to three optional instruments — an event-trace sink, a
    metrics registry, and a host profiler. Engines accept a [Ctx.t option];
    [None] (the default everywhere) short-circuits every hook with a single
    pattern match, so a run without observability pays nothing.

    Observability is {e strictly passive}: no instrument feeds back into
    simulation, so every field of a simulation result is bit-identical with
    and without a context (enforced by the test suite). *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  profile : Profile.t option;
}

val create :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?profile:Profile.t -> unit -> t

val full : ?trace_capacity:int -> unit -> t
(** A context with all three instruments enabled. *)

val trace : t option -> Trace.t option
val metrics : t option -> Metrics.t option
val profile : t option -> Profile.t option
(** Flattening accessors for [Ctx.t option] holders. *)
