type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" -> Ok Warn
  | "error" -> Ok Error
  | s ->
    Stdlib.Error
      (Printf.sprintf "unknown log level %S (want debug, info, warn or error)"
         s)

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  min_level : level;
  oc : out_channel option;  (* None: every call is a cheap no-op *)
  owns_channel : bool;
  mutable closed : bool;
}

let null = { min_level = Error; oc = None; owns_channel = false; closed = false }

let to_channel ?(level = Info) oc =
  { min_level = level; oc = Some oc; owns_channel = false; closed = false }

let open_file ?(level = Info) path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { min_level = level; oc = Some oc; owns_channel = true; closed = false }

let close t =
  if t.owns_channel && not t.closed then begin
    t.closed <- true;
    match t.oc with Some oc -> close_out_noerr oc | None -> ()
  end

let enabled t level =
  (not t.closed) && t.oc <> None && severity level >= severity t.min_level

(* One line per record, flushed immediately so concurrent processes
   appending to the same file interleave whole lines, never fragments.
   Key order is fixed (ts, level, event, req?, then caller fields in
   call order) so lines diff cleanly. *)
let log t level ?req ~event fields =
  if enabled t level then
    match t.oc with
    | None -> ()
    | Some oc ->
      let members =
        [ ("ts", Json.Float (Unix.gettimeofday ()));
          ("level", Json.Str (level_to_string level));
          ("event", Json.Str event) ]
        @ (match req with None -> [] | Some r -> [ ("req", Json.Str r) ])
        @ fields
      in
      Json.to_channel oc (Json.Obj members);
      output_char oc '\n';
      flush oc

let debug t ?req ~event fields = log t Debug ?req ~event fields
let info t ?req ~event fields = log t Info ?req ~event fields
let warn t ?req ~event fields = log t Warn ?req ~event fields
let error t ?req ~event fields = log t Error ?req ~event fields

(* A process-wide default, for subsystems (the worker pool, registries)
   that should emit into whatever sink the application configured
   without threading a logger through every call. Starts as {!null}. *)
let default_logger = ref null
let set_default l = default_logger := l
let default () = !default_logger
