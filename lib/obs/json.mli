(** A minimal JSON value type, printer and parser.

    The exporters need to {e write} JSON (JSONL traces, Chrome
    [trace_event] files, metrics dumps, bench results) and the sweep
    driver needs to {e read} it back (manifests, reports, simulation
    specs) without pulling a JSON dependency into the core libraries;
    this is a complete, escaping implementation of both directions.
    Non-finite floats serialise as [null] (JSON has no representation
    for them); finite floats print with enough digits to parse back to
    the identical double, so a print/parse round-trip is exact — the
    wire result codec depends on this. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val to_channel : out_channel -> t -> unit

exception Parse_error of string
(** Raised by the parsing functions; the message includes a byte offset. *)

val of_string : string -> t
(** Parses one JSON value. Numbers without [.], [e] or [E] become {!Int}
    (fitting OCaml's [int]), all others {!Float}. Object member order is
    preserved; duplicate keys are kept as written. Trailing whitespace is
    permitted, trailing garbage is not. Raises {!Parse_error}. *)

val of_channel : in_channel -> t
(** Reads the channel to exhaustion and parses it. *)

val of_file : string -> t
(** Reads and parses a whole file. Raises [Sys_error] on I/O failure. *)

(* Accessors used by manifest / report readers: total (raising) lookups
   keep call sites short, [mem] guards the optional fields. *)

val member : string -> t -> t
(** [member k (Obj _)] is the value bound to the first occurrence of [k].
    Raises {!Parse_error} when the key is missing or the value is not an
    object. *)

val mem : string -> t -> bool
(** [mem k v] is [true] iff [v] is an object with a [k] member. *)

val to_int : t -> int
val to_float : t -> float
(** [to_float] also accepts {!Int} values. *)

val to_str : t -> string
val to_bool : t -> bool
val to_list : t -> t list
(** All raise {!Parse_error} on a constructor mismatch. *)
