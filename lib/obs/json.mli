(** A minimal JSON value type and printer.

    The exporters need to {e write} JSON (JSONL traces, Chrome
    [trace_event] files, metrics dumps, bench results) without pulling a
    JSON dependency into the core libraries; this is a complete, escaping,
    write-only implementation. Non-finite floats serialise as [null] (JSON
    has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val to_channel : out_channel -> t -> unit
