type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* Shortest representation that parses back to the same double:
         %.12g suffices for almost every value the simulator emits (and
         keeps existing outputs stable); values that genuinely need more
         precision fall back to %.17g, which is always exact. The wire
         result codec (Sim.result_of_json) relies on this. *)
      let s = Printf.sprintf "%.12g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      (* Keep a marker of floatness so the parser reads the value back as
         a Float (and "-0" keeps its sign instead of collapsing to Int 0). *)
      let s =
        if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
        else s ^ ".0"
      in
      Buffer.add_string buf s
    end
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.output_buffer oc buf

(* ---------------------------------------------------------------- *)
(* Parser: a plain recursive descent over a string. *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let read_hex4 () =
             if st.pos + 4 > String.length st.src then
               fail st "truncated \\u escape";
             let hex = String.sub st.src st.pos 4 in
             let code =
               try int_of_string ("0x" ^ hex)
               with Failure _ -> fail st "bad \\u escape"
             in
             st.pos <- st.pos + 4;
             code
           in
           let code = read_hex4 () in
           (* Valid surrogate pairs combine into one code point; a lone
              surrogate becomes the replacement character (never raw
              CESU-8, which is not valid UTF-8). *)
           let code =
             if code >= 0xD800 && code <= 0xDBFF then begin
               if
                 st.pos + 2 <= String.length st.src
                 && st.src.[st.pos] = '\\'
                 && st.src.[st.pos + 1] = 'u'
               then begin
                 let saved = st.pos in
                 st.pos <- st.pos + 2;
                 let lo = read_hex4 () in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                 else begin
                   st.pos <- saved;
                   0xFFFD
                 end
               end
               else 0xFFFD
             end
             else if code >= 0xDC00 && code <= 0xDFFF then 0xFFFD
             else code
           in
           (* encode the code point as UTF-8 *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else if code < 0x10000 then begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf
               (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
             Buffer.add_char buf
               (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
             Buffer.add_char buf
               (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail st "bad escape");
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* an integer literal too large for [int]: keep it as a float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      let rec go () =
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items := parse_value st :: !items;
          go ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let parse_member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let members = ref [ parse_member () ] in
      let rec go () =
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members := parse_member () :: !members;
          go ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !members)
    end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_channel ic =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  (try go () with End_of_file -> ());
  of_string (Buffer.contents buf)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> of_channel ic)

(* ---------------------------------------------------------------- *)
(* Accessors. *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let access_error want v =
  raise (Parse_error (Printf.sprintf "expected %s, got %s" want (type_name v)))

let member k = function
  | Obj fields as v -> (
    match List.assoc_opt k fields with
    | Some x -> x
    | None ->
      raise (Parse_error (Printf.sprintf "missing key %S in %s" k
                            (type_name v))))
  | v -> access_error "object" v

let mem k = function Obj fields -> List.mem_assoc k fields | _ -> false

let to_int = function Int i -> i | v -> access_error "int" v
let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> access_error "float" v

let to_str = function Str s -> s | v -> access_error "string" v
let to_bool = function Bool b -> b | v -> access_error "bool" v
let to_list = function List l -> l | v -> access_error "list" v
