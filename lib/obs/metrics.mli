(** Metrics registry: named counters, gauges, and log2-bucketed histograms.

    Metrics are find-or-create by name, so any subsystem can obtain its
    instruments from a shared registry without coordination:

    {[
      let misses = Metrics.counter reg "cache.l1_misses" in
      Metrics.incr misses
    ]}

    Instruments are plain mutable records; updating one is a field write
    (no hashing on the hot path — look the instrument up once, keep it).
    Registering the same name with a different instrument kind raises
    [Invalid_argument]. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Records one sample. Buckets are powers of two: bucket 0 holds samples
    [<= 0]; bucket [i >= 1] holds samples in [[2{^i-1}, 2{^i} - 1]]. The
    full [int] range is covered ([max_int] lands in bucket 62 on 64-bit). *)

val bucket_of : int -> int
(** The bucket index a sample falls into (exposed for tests). *)

val bucket_lower_bound : int -> int
(** Smallest positive sample of bucket [i >= 1] (i.e. [2{^i-1}]);
    [bucket_lower_bound 0 = 0] by convention (the [<= 0] bucket). *)

val h_count : histogram -> int
val h_sum : histogram -> int
val h_min : histogram -> int
(** [max_int] when empty. *)

val h_max : histogram -> int
(** [min_int] when empty. *)

val h_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)], ascending. *)

val h_mean : histogram -> float
(** 0 when empty. *)

val to_json : t -> Json.t
(** {v
    { "counters":   { name: value, ... },
      "gauges":     { name: value, ... },
      "histograms": { name: { "count", "sum", "min", "max", "mean",
                              "buckets": [[lower, count], ...] }, ... } }
    v}
    Names appear in lexicographic order (see {!names_in_order}), so two
    registries holding the same state export byte-identical JSON. *)

val names_in_order : t -> string list
(** All registered names, sorted lexicographically. Every iterator and
    export uses this order — deterministic across processes regardless
    of registration order. *)

val iter_counters : (string -> int -> unit) -> t -> unit
val iter_gauges : (string -> float -> unit) -> t -> unit
val iter_histograms : (string -> histogram -> unit) -> t -> unit

(** {1 Snapshots}

    Immutable copies of a registry's state. Scrapers take one per
    interval and {!snapshot_diff} consecutive pairs for cheap deltas;
    {!snapshot_merge} combines registries from several processes. *)

type hsnap = {
  s_count : int;
  s_sum : int;
  s_min : int;   (** 0 when empty (unlike {!h_min}). *)
  s_max : int;   (** 0 when empty (unlike {!h_max}). *)
  s_buckets : (int * int) list;  (** [(lower_bound, count)], ascending. *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hsnap) list;
}
(** All three lists are sorted by name. *)

val snapshot : t -> snapshot

val snapshot_diff : after:snapshot -> before:snapshot -> snapshot
(** Counters and histogram counts/sums/buckets subtract; gauges are
    levels, so [after]'s reading is kept. Histogram [s_min]/[s_max] of
    an interval aren't recoverable from cumulative state — the diff
    carries [after]'s values when the interval saw samples, else 0.
    Names missing on one side are treated as empty. *)

val snapshot_merge : snapshot -> snapshot -> snapshot
(** Counters, gauges, histogram counts/sums/buckets add; min/max
    combine honouring empty sides. *)

val hsnap_mean : hsnap -> float
(** 0 when empty. *)

val hsnap_quantile : hsnap -> float -> float
(** [hsnap_quantile h q] estimates the [q]-quantile ([0 <= q <= 1])
    from the log2 buckets: the midpoint of the first bucket where the
    cumulative count reaches [q * count], clamped to [[s_min, s_max]].
    0 when empty. Accurate to a factor of 2 — fine for p50/p99 views. *)

val snapshot_to_json : snapshot -> Json.t
(** Same shape as {!to_json} (which is [snapshot_to_json ∘ snapshot]). *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json} (the [mean] field is recomputed, not
    read). Used by clients parsing telemetry frames. *)
