(** Metrics registry: named counters, gauges, and log2-bucketed histograms.

    Metrics are find-or-create by name, so any subsystem can obtain its
    instruments from a shared registry without coordination:

    {[
      let misses = Metrics.counter reg "cache.l1_misses" in
      Metrics.incr misses
    ]}

    Instruments are plain mutable records; updating one is a field write
    (no hashing on the hot path — look the instrument up once, keep it).
    Registering the same name with a different instrument kind raises
    [Invalid_argument]. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Records one sample. Buckets are powers of two: bucket 0 holds samples
    [<= 0]; bucket [i >= 1] holds samples in [[2{^i-1}, 2{^i} - 1]]. The
    full [int] range is covered ([max_int] lands in bucket 62 on 64-bit). *)

val bucket_of : int -> int
(** The bucket index a sample falls into (exposed for tests). *)

val bucket_lower_bound : int -> int
(** Smallest positive sample of bucket [i >= 1] (i.e. [2{^i-1}]);
    [bucket_lower_bound 0 = 0] by convention (the [<= 0] bucket). *)

val h_count : histogram -> int
val h_sum : histogram -> int
val h_min : histogram -> int
(** [max_int] when empty. *)

val h_max : histogram -> int
(** [min_int] when empty. *)

val h_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)], ascending. *)

val h_mean : histogram -> float
(** 0 when empty. *)

val to_json : t -> Json.t
(** {v
    { "counters":   { name: value, ... },
      "gauges":     { name: value, ... },
      "histograms": { name: { "count", "sum", "min", "max", "mean",
                              "buckets": [[lower, count], ...] }, ... } }
    v}
    Names appear in registration order. *)

val iter_counters : (string -> int -> unit) -> t -> unit
val iter_gauges : (string -> float -> unit) -> t -> unit
val iter_histograms : (string -> histogram -> unit) -> t -> unit
