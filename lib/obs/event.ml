type ph = B | E | I | C

type t = {
  ts : int;
  cat : string;
  name : string;
  ph : ph;
  args : (string * Json.t) list;
}

let span_begin ~ts ~cat ?(args = []) name = { ts; cat; name; ph = B; args }
let span_end ~ts ~cat ?(args = []) name = { ts; cat; name; ph = E; args }
let instant ~ts ~cat ?(args = []) name = { ts; cat; name; ph = I; args }

let counter ~ts ~cat name v =
  { ts; cat; name; ph = C; args = [ (name, Json.Int v) ] }

let ph_string = function B -> "B" | E -> "E" | I -> "i" | C -> "C"

(* One Perfetto track ("thread") per emitting subsystem. *)
let tid_of_cat = function
  | "engine" -> 1
  | "core" -> 2
  | "cache" -> 3
  | "memo" -> 4
  | "pcache" -> 5
  | "bpred" -> 6
  | _ -> 9

let to_chrome e =
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (ph_string e.ph));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int (tid_of_cat e.cat)) ]
  in
  let scope = match e.ph with I -> [ ("s", Json.Str "t") ] | _ -> [] in
  let args =
    match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ]
  in
  Json.Obj (base @ scope @ args)

let to_jsonl e =
  Json.Obj
    [ ("ts", Json.Int e.ts);
      ("cat", Json.Str e.cat);
      ("name", Json.Str e.name);
      ("ph", Json.Str (ph_string e.ph));
      ("args", Json.Obj e.args) ]
