(* Wall-clock spans for request-scoped tracing across processes.

   Unlike Trace/Event (simulated-cycle timestamps inside one engine
   run), a span is host wall-clock time with the recording process's
   pid attached, so spans recorded in a server and in its forked
   workers stitch into one Chrome trace on a shared timeline: fork
   inherits the clock, and gettimeofday is the same clock in both. *)

type t = {
  name : string;
  cat : string;
  pid : int;
  start_us : int;  (* absolute wall-clock microseconds (needs 64-bit int) *)
  dur_us : int;
  args : (string * Json.t) list;
}

type span = t

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

type collector = { mutable acc : t list (* newest first *) }

let create () = { acc = [] }
let add c s = c.acc <- s :: c.acc

let record c ~name ?(cat = "serve") ?(args = []) ~start_us ~end_us () =
  add c
    { name; cat; pid = Unix.getpid (); start_us;
      dur_us = max 0 (end_us - start_us); args }

let with_span c ~name ?cat ?args f =
  let start_us = now_us () in
  Fun.protect
    ~finally:(fun () -> record c ~name ?cat ?args ~start_us ~end_us:(now_us ()) ())
    f

let spans c = List.rev c.acc
let length c = List.length c.acc
let absorb c others = List.iter (add c) others

let with_arg s kv = { s with args = s.args @ [ kv ] }

(* ---------------------------------------------------------------- *)
(* JSON codec — for dumping span sets and for the telemetry frame.   *)

let to_json s =
  Json.Obj
    ([ ("name", Json.Str s.name);
       ("cat", Json.Str s.cat);
       ("pid", Json.Int s.pid);
       ("start_us", Json.Int s.start_us);
       ("dur_us", Json.Int s.dur_us) ]
    @ match s.args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let of_json j =
  match j with
  | Json.Obj _ ->
    (try
       Ok
         { name = Json.to_str (Json.member "name" j);
           cat = Json.to_str (Json.member "cat" j);
           pid = Json.to_int (Json.member "pid" j);
           start_us = Json.to_int (Json.member "start_us" j);
           dur_us = Json.to_int (Json.member "dur_us" j);
           args =
             (if Json.mem "args" j then
                match Json.member "args" j with
                | Json.Obj kvs -> kvs
                | _ -> failwith "span args must be an object"
              else []) }
     with
     | Json.Parse_error m | Failure m -> Error ("span: " ^ m))
  | _ -> Error "span must be an object"

let list_to_json ss = Json.List (List.map to_json ss)

let list_of_json = function
  | Json.List js ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match of_json j with
        | Ok s -> go (s :: acc) rest
        | Error _ as e -> e)
    in
    go [] js
  | _ -> Error "span list must be an array"

(* ---------------------------------------------------------------- *)
(* Chrome trace_event stitching. Every distinct pid becomes one
   Perfetto process lane; timestamps are normalised to the earliest
   span so the trace opens at t=0 regardless of the absolute clock. *)

let chrome_json ?(process_names = []) ss =
  let t0 =
    List.fold_left (fun acc s -> min acc s.start_us) max_int ss
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let pids =
    List.sort_uniq compare (List.map (fun s -> s.pid) ss)
  in
  let meta =
    List.map
      (fun pid ->
        let name =
          match List.assoc_opt pid process_names with
          | Some n -> n
          | None -> Printf.sprintf "pid-%d" pid
        in
        Json.Obj
          [ ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int pid);
            ("args", Json.Obj [ ("name", Json.Str name) ]) ])
      pids
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          ([ ("name", Json.Str s.name);
             ("cat", Json.Str s.cat);
             ("ph", Json.Str "X");
             ("ts", Json.Int (s.start_us - t0));
             ("dur", Json.Int s.dur_us);
             ("pid", Json.Int s.pid);
             ("tid", Json.Int 1) ]
          @ match s.args with
            | [] -> []
            | args -> [ ("args", Json.Obj args) ]))
      (List.sort (fun a b -> compare a.start_us b.start_us) ss)
  in
  Json.Obj
    [ ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.Str "ms") ]

let write_chrome_file path ?process_names ss =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (chrome_json ?process_names ss))

(* ---------------------------------------------------------------- *)
(* Request-scoped context: a server-minted id plus the collector its
   spans accumulate into. [finish] tags every span with the id so
   traces from many requests can share one stitched file. *)

let mint_counter = ref 0

let mint_id () =
  incr mint_counter;
  Printf.sprintf "r%d-%d" (Unix.getpid ()) !mint_counter

module Ctx = struct
  type nonrec t = { id : string; collector : collector }

  let create ?id () =
    { id = (match id with Some i -> i | None -> mint_id ());
      collector = create () }

  let id t = t.id
  let collector t = t.collector

  let finish t =
    List.map (fun s -> with_arg s ("req", Json.Str t.id)) (spans t.collector)
end
