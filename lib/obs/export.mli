(** Trace and metrics exporters.

    Two trace formats:

    - {b Chrome [trace_event]} (catapult JSON): an object with a
      ["traceEvents"] array, loadable directly in Perfetto
      ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
      [chrome://tracing]. Simulated cycles map to microseconds.
    - {b JSONL}: one JSON object per line, for [jq]-style processing.

    A [dropped] metadata record is included when the ring wrapped, so a
    truncated trace is detectable. *)

val chrome_json : Trace.t -> Json.t
val write_chrome : out_channel -> Trace.t -> unit
val write_chrome_file : string -> Trace.t -> unit

val write_jsonl : out_channel -> Trace.t -> unit
val write_jsonl_file : string -> Trace.t -> unit

val write_metrics : out_channel -> Metrics.t -> unit
val write_metrics_file : string -> Metrics.t -> unit
