(** Trace and metrics exporters.

    Two trace formats:

    - {b Chrome [trace_event]} (catapult JSON): an object with a
      ["traceEvents"] array, loadable directly in Perfetto
      ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
      [chrome://tracing]. Simulated cycles map to microseconds.
    - {b JSONL}: one JSON object per line, for [jq]-style processing.

    A [dropped] metadata record is included when the ring wrapped, so a
    truncated trace is detectable. *)

val chrome_json : Trace.t -> Json.t
val write_chrome : out_channel -> Trace.t -> unit
val write_chrome_file : string -> Trace.t -> unit

val write_jsonl : out_channel -> Trace.t -> unit
val write_jsonl_file : string -> Trace.t -> unit

val write_metrics : out_channel -> Metrics.t -> unit
(** JSON dump ({!Metrics.to_json}); names in deterministic sorted order. *)

val write_metrics_file : string -> Metrics.t -> unit

val prometheus_of_snapshot : Metrics.snapshot -> string
(** Prometheus text exposition. Names are prefixed ["fastsim_"] with
    invalid characters (notably ['.']) mangled to ['_']. Histograms
    export cumulative [le]-buckets — the log2 bucket starting at [lo]
    as [le="2*lo-1"] (the [<= 0] bucket as [le="0"]), plus [le="+Inf"],
    [_sum] and [_count]. Deterministic: follows the snapshot's sorted
    order. *)

val prometheus : Metrics.t -> string
