(* Perfetto shows thread names from these metadata records; one lane per
   emitting subsystem (see Event.tid_of_cat). *)
let thread_name_meta =
  List.map
    (fun (cat, tid) ->
      Json.Obj
        [ ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("name", Json.Str cat) ]) ])
    [ ("engine", 1); ("core", 2); ("cache", 3); ("memo", 4); ("pcache", 5);
      ("bpred", 6) ]

let process_name_meta =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str "fastsim") ]) ]

let chrome_json tr =
  let events =
    List.rev (Trace.events tr |> List.rev_map Event.to_chrome)
  in
  let meta =
    [ ("traceEvents",
       Json.List ((process_name_meta :: thread_name_meta) @ events));
      ("displayTimeUnit", Json.Str "ms") ]
  in
  let meta =
    if Trace.dropped tr > 0 then
      meta @ [ ("fastsimDroppedEvents", Json.Int (Trace.dropped tr)) ]
    else meta
  in
  Json.Obj meta

let write_chrome oc tr = Json.to_channel oc (chrome_json tr)

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_chrome_file path tr = with_file path (fun oc -> write_chrome oc tr)

let write_jsonl oc tr =
  if Trace.dropped tr > 0 then begin
    Json.to_channel oc
      (Json.Obj
         [ ("meta", Json.Str "dropped");
           ("dropped", Json.Int (Trace.dropped tr)) ]);
    output_char oc '\n'
  end;
  Trace.iter
    (fun ev ->
      Json.to_channel oc (Event.to_jsonl ev);
      output_char oc '\n')
    tr

let write_jsonl_file path tr = with_file path (fun oc -> write_jsonl oc tr)
let write_metrics oc m = Json.to_channel oc (Metrics.to_json m)
let write_metrics_file path m = with_file path (fun oc -> write_metrics oc m)

(* Prometheus text exposition. Metric names mangle '.' (our namespace
   separator) and any other invalid character to '_', with a "fastsim_"
   prefix. Histogram buckets become cumulative le-bucketed series: the
   log2 bucket [lo, 2*lo-1] exports as le="2*lo-1" (bucket 0, holding
   <= 0 samples, as le="0"), plus the mandatory le="+Inf", _sum and
   _count. The snapshot's sorted order makes output deterministic. *)

let prom_name name =
  let b = Bytes.of_string ("fastsim_" ^ name) in
  Bytes.iteri
    (fun i ch ->
      let ok =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9') || ch = '_' || ch = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let prometheus_of_snapshot (s : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l;
                                   Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (prom_float v))
    s.Metrics.s_gauges;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (lo, count) ->
          cum := !cum + count;
          let le = if lo = 0 then 0 else (2 * lo) - 1 in
          line "%s_bucket{le=\"%d\"} %d" n le !cum)
        h.Metrics.s_buckets;
      line "%s_bucket{le=\"+Inf\"} %d" n h.Metrics.s_count;
      line "%s_sum %d" n h.Metrics.s_sum;
      line "%s_count %d" n h.Metrics.s_count)
    s.Metrics.s_histograms;
  Buffer.contents buf

let prometheus m = prometheus_of_snapshot (Metrics.snapshot m)
