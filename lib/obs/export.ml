(* Perfetto shows thread names from these metadata records; one lane per
   emitting subsystem (see Event.tid_of_cat). *)
let thread_name_meta =
  List.map
    (fun (cat, tid) ->
      Json.Obj
        [ ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("name", Json.Str cat) ]) ])
    [ ("engine", 1); ("core", 2); ("cache", 3); ("memo", 4); ("pcache", 5);
      ("bpred", 6) ]

let process_name_meta =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str "fastsim") ]) ]

let chrome_json tr =
  let events =
    List.rev (Trace.events tr |> List.rev_map Event.to_chrome)
  in
  let meta =
    [ ("traceEvents",
       Json.List ((process_name_meta :: thread_name_meta) @ events));
      ("displayTimeUnit", Json.Str "ms") ]
  in
  let meta =
    if Trace.dropped tr > 0 then
      meta @ [ ("fastsimDroppedEvents", Json.Int (Trace.dropped tr)) ]
    else meta
  in
  Json.Obj meta

let write_chrome oc tr = Json.to_channel oc (chrome_json tr)

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_chrome_file path tr = with_file path (fun oc -> write_chrome oc tr)

let write_jsonl oc tr =
  if Trace.dropped tr > 0 then begin
    Json.to_channel oc
      (Json.Obj
         [ ("meta", Json.Str "dropped");
           ("dropped", Json.Int (Trace.dropped tr)) ]);
    output_char oc '\n'
  end;
  Trace.iter
    (fun ev ->
      Json.to_channel oc (Event.to_jsonl ev);
      output_char oc '\n')
    tr

let write_jsonl_file path tr = with_file path (fun oc -> write_jsonl oc tr)
let write_metrics oc m = Json.to_channel oc (Metrics.to_json m)
let write_metrics_file path m = with_file path (fun oc -> write_metrics oc m)
