exception Deadlock of string

type branch_stats = {
  conditionals : int;
  mispredicted : int;
  indirects : int;
  misfetched : int;
}

type result = {
  cycles : int;
  retired : int;
  retired_by_class : int array;
  emulated_insts : int;
  wrong_path_insts : int;
  branches : branch_stats;
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;
  pcache : Memo.Pcache.counters option;
  final_state : Emu.Arch_state.t;
  truncated : bool;
}

type predictor_kind = Standard | Not_taken | Taken

type engine = [ `Fast | `Slow | `Baseline ]

(* Cycles without a retirement before the driver declares the pipeline
   stuck; generous enough for any real memory-latency pile-up. *)
let watchdog = 100_000

let make_predictor ?metrics kind prog =
  match kind with
  | Standard -> Bpred.standard ~prog ?metrics ()
  | Not_taken -> Bpred.static_not_taken ()
  | Taken -> Bpred.static_taken ()

(* Branch statistics accumulate at the live-oracle boundary: both the
   detailed simulator and the replay engine pull outcomes through here
   (prefix-served outcomes during a divergence re-run are NOT re-pulled),
   so each fetched control event is counted exactly once and the counts
   are identical with and without memoization. *)
type branch_counters = {
  mutable n_cond : int;
  mutable n_mispred : int;
  mutable n_ind : int;
  mutable n_misfetch : int;
}

let translate counters (ev : Emu.Emulator.control) : Uarch.Oracle.ctl_outcome
    =
  match ev with
  | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
    let mispredicted = taken <> predicted_taken in
    counters.n_cond <- counters.n_cond + 1;
    if mispredicted then counters.n_mispred <- counters.n_mispred + 1;
    Uarch.Oracle.C_cond { taken; mispredicted }
  | Emu.Emulator.Indirect { target; predicted; _ } ->
    let hit = predicted = Some target in
    counters.n_ind <- counters.n_ind + 1;
    if not hit then counters.n_misfetch <- counters.n_misfetch + 1;
    Uarch.Oracle.C_indirect { target; hit }
  | Emu.Emulator.Halted _ | Emu.Emulator.Wedged _ -> Uarch.Oracle.C_stalled

let live_oracle emu cache counters : Uarch.Oracle.t =
  { cache_load =
      (fun ~now ->
        let l = Emu.Emulator.pop_load emu in
        Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr);
    cache_store =
      (fun ~now ->
        let s = Emu.Emulator.pop_store emu in
        Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr);
    fetch_control =
      (fun () -> translate counters (Emu.Emulator.next_event emu));
    rollback =
      (fun ~index -> ignore (Emu.Emulator.rollback_to emu ~index : int)) }

(* ---------------------------------------------------------------- *)
(* Observability plumbing (docs/OBSERVABILITY.md). Everything below is
   strictly passive: the instrumented oracle and all event emission only
   observe, so simulation results are bit-identical with and without an
   observability context (enforced by the equivalence suite). *)

let prof_enter p ph =
  match p with None -> () | Some p -> Fastsim_obs.Profile.enter p ph

let prof_leave p =
  match p with None -> () | Some p -> Fastsim_obs.Profile.leave p

let emit_opt tr ev =
  match tr with None -> () | Some tr -> Fastsim_obs.Trace.emit tr ev

(* Wraps the live oracle so cache calls are charged to the Cachesim
   profiling phase, direct-execution pulls/rollbacks to the Emulation
   phase, and control outcomes / rollbacks appear as [core] trace events.
   During replay these emissions come from the recorded chains being
   re-performed, which is exactly what makes FastSim observable. *)
let instrument_oracle (obs : Fastsim_obs.Ctx.t option) ~now
    (oracle : Uarch.Oracle.t) : Uarch.Oracle.t =
  match obs with
  | None | Some { Fastsim_obs.Ctx.trace = None; profile = None; _ } -> oracle
  | Some { Fastsim_obs.Ctx.trace; profile; _ } ->
    { cache_load =
        (fun ~now:cyc ->
          prof_enter profile Fastsim_obs.Profile.Cachesim;
          let lat = oracle.Uarch.Oracle.cache_load ~now:cyc in
          prof_leave profile;
          lat);
      cache_store =
        (fun ~now:cyc ->
          prof_enter profile Fastsim_obs.Profile.Cachesim;
          oracle.Uarch.Oracle.cache_store ~now:cyc;
          prof_leave profile);
      fetch_control =
        (fun () ->
          prof_enter profile Fastsim_obs.Profile.Emulation;
          let out = oracle.Uarch.Oracle.fetch_control () in
          prof_leave profile;
          (match trace with
           | None -> ()
           | Some tr ->
             let ts = now () in
             let ev =
               match out with
               | Uarch.Oracle.C_cond { taken; mispredicted } ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "cond"
                   ~args:
                     [ ("taken", Fastsim_obs.Json.Bool taken);
                       ("mispredicted", Fastsim_obs.Json.Bool mispredicted) ]
               | Uarch.Oracle.C_indirect { target; hit } ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "indirect"
                   ~args:
                     [ ("target", Fastsim_obs.Json.Int target);
                       ("hit", Fastsim_obs.Json.Bool hit) ]
               | Uarch.Oracle.C_stalled ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "fetch_stall"
             in
             Fastsim_obs.Trace.emit tr ev);
          out);
      rollback =
        (fun ~index ->
          prof_enter profile Fastsim_obs.Profile.Emulation;
          oracle.Uarch.Oracle.rollback ~index;
          prof_leave profile;
          emit_opt trace
            (Fastsim_obs.Event.instant ~ts:(now ()) ~cat:"core" "rollback"
               ~args:[ ("index", Fastsim_obs.Json.Int index) ])) }

let functional = Emu.Emulator.run_functional

let finish ~cycles ~retired ~classes ~emu ~cache ~counters ~memo ~pcache
    ~truncated =
  { cycles;
    retired;
    retired_by_class = classes;
    emulated_insts = Emu.Emulator.insts_executed emu;
    wrong_path_insts = Emu.Emulator.wrong_path_insts emu;
    branches =
      { conditionals = counters.n_cond;
        mispredicted = counters.n_mispred;
        indirects = counters.n_ind;
        misfetched = counters.n_misfetch };
    cache = Cachesim.Hierarchy.stats cache;
    memo;
    pcache;
    final_state = Emu.Emulator.state emu;
    truncated }

let fresh_counters () =
  { n_cond = 0; n_mispred = 0; n_ind = 0; n_misfetch = 0 }

let slow_sim ?params ?cache_config ?(predictor = Standard)
    ?(max_cycles = max_int) ?observer ?obs prog =
  let trace = Fastsim_obs.Ctx.trace obs in
  let metrics = Fastsim_obs.Ctx.metrics obs in
  let profile = Fastsim_obs.Ctx.profile obs in
  let pred = make_predictor ?metrics predictor prog in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create ?config:cache_config ?trace ?metrics () in
  let uarch = Uarch.Detailed.create ?params prog in
  let counters = fresh_counters () in
  let cycle = ref 0 and retired = ref 0 and last_progress = ref 0 in
  let oracle =
    instrument_oracle obs ~now:(fun () -> !cycle)
      (live_oracle emu cache counters)
  in
  let halted = ref false in
  let truncated = ref false in
  emit_opt trace (Fastsim_obs.Event.span_begin ~ts:0 ~cat:"engine" "detailed");
  prof_enter profile Fastsim_obs.Profile.Detailed;
  Fun.protect
    ~finally:(fun () -> prof_leave profile)
    (fun () ->
      while (not !halted) && not !truncated do
        if !cycle >= max_cycles then truncated := true
        else begin
          let r = Uarch.Detailed.step_cycle uarch ~now:!cycle oracle in
          (match observer with
           | Some f -> f !cycle uarch r
           | None -> ());
          incr cycle;
          retired := !retired + r.Uarch.Detailed.retired;
          if r.Uarch.Detailed.retired > 0 then begin
            last_progress := !cycle;
            emit_opt trace
              (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
                 !retired)
          end;
          if !cycle - !last_progress > watchdog then
            raise (Deadlock "no retirement progress");
          if r.Uarch.Detailed.halted then halted := true
        end
      done);
  emit_opt trace
    (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "detailed"
       ~args:[ ("cycles", Fastsim_obs.Json.Int !cycle) ]);
  finish ~cycles:!cycle ~retired:!retired
    ~classes:(Uarch.Detailed.retired_by_class uarch)
    ~emu ~cache ~counters ~memo:None ~pcache:None ~truncated:!truncated

(* The memoizing engine: run the detailed simulator, recording a group per
   interaction cycle; when a group ends at a configuration that already has
   recorded actions, switch to fast-forwarding; when fast-forwarding meets
   an unseen outcome, resume detailed simulation from the configuration
   with the already-obtained outcomes as a prefix. *)
let fast_sim ?params ?cache_config ?(predictor = Standard)
    ?(max_cycles = max_int) ?(policy = Memo.Pcache.Unbounded) ?pcache ?obs
    prog =
  let trace = Fastsim_obs.Ctx.trace obs in
  let metrics = Fastsim_obs.Ctx.metrics obs in
  let profile = Fastsim_obs.Ctx.profile obs in
  let pred = make_predictor ?metrics predictor prog in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create ?config:cache_config ?trace ?metrics () in
  let counters = fresh_counters () in
  let cycle = ref 0 in
  let oracle =
    instrument_oracle obs ~now:(fun () -> !cycle)
      (live_oracle emu cache counters)
  in
  let pc =
    match pcache with
    | Some pc -> pc
    | None -> Memo.Pcache.create ~policy ()
  in
  if Option.is_some obs then
    Memo.Pcache.attach_obs pc ?trace ?metrics ~now:(fun () -> !cycle) ();
  let mstats = Memo.Stats.create () in
  let total_classes = Array.make Isa.Instr.fu_count 0 in
  let prefix_mismatch what item =
    raise
      (Memo.Pcache.Determinism_violation
         (Format.asprintf
            "detailed re-run requested a %s but the replay prefix holds %a"
            what Memo.Action.pp_item item))
  in
  (* One detailed episode: from [cfg0] (with [prefix0] outcomes already
     obtained by a diverged replay), record groups until a known
     configuration is reached or the program halts. *)
  let detailed_episode uarch cfg0 prefix0 =
    emit_opt trace
      (Fastsim_obs.Event.span_begin ~ts:!cycle ~cat:"engine" "detailed");
    prof_enter profile Fastsim_obs.Profile.Detailed;
    mstats.Memo.Stats.detailed_entries <-
      mstats.Memo.Stats.detailed_entries + 1;
    let items_rev = ref [] in
    let pending = ref prefix0 in
    let record item = items_rev := item :: !items_rev in
    let wrapped : Uarch.Oracle.t =
      { cache_load =
          (fun ~now ->
            let lat =
              match !pending with
              | Memo.Action.I_load lat :: rest ->
                pending := rest;
                lat
              | [] -> oracle.Uarch.Oracle.cache_load ~now
              | item :: _ -> prefix_mismatch "load" item
            in
            record (Memo.Action.I_load lat);
            lat);
        cache_store =
          (fun ~now ->
            (match !pending with
             | Memo.Action.I_store :: rest -> pending := rest
             | [] -> oracle.Uarch.Oracle.cache_store ~now
             | item :: _ -> prefix_mismatch "store" item);
            record Memo.Action.I_store);
        fetch_control =
          (fun () ->
            let out =
              match !pending with
              | Memo.Action.I_ctl c :: rest ->
                pending := rest;
                c
              | [] -> oracle.Uarch.Oracle.fetch_control ()
              | item :: _ -> prefix_mismatch "fetch_control" item
            in
            record (Memo.Action.I_ctl out);
            out);
        rollback =
          (fun ~index ->
            (match !pending with
             | Memo.Action.I_rollback j :: rest ->
               if j <> index then prefix_mismatch "rollback" (I_rollback j);
               pending := rest
             | [] -> oracle.Uarch.Oracle.rollback ~index
             | item :: _ -> prefix_mismatch "rollback" item);
            record (Memo.Action.I_rollback index)) }
    in
    let cfg = ref cfg0 in
    let silent = ref 0 and group_retired = ref 0 in
    let class_base = ref (Uarch.Detailed.retired_by_class uarch) in
    let group_classes uarch =
      let cur = Uarch.Detailed.retired_by_class uarch in
      let delta = Array.mapi (fun i v -> v - !class_base.(i)) cur in
      Array.iteri
        (fun i v -> total_classes.(i) <- total_classes.(i) + v)
        delta;
      class_base := cur;
      delta
    in
    let last_progress = ref !cycle in
    let result = ref None in
    Fun.protect
      ~finally:(fun () -> prof_leave profile)
      (fun () ->
        while !result = None do
          if !cycle >= max_cycles then begin
            (* Truncated mid-group. Flush the partial group's per-class
               retirement into the totals (the cycles simulated so far are
               real and their statistics must be reported, exactly as the
               slow engine reports them) but do NOT merge the partial group
               into the p-action cache: its silent/retired aggregates
               describe a prefix, and recording them would poison later
               full-length runs. *)
            ignore (group_classes uarch : int array);
            result := Some `Truncated
          end
          else begin
          let r = Uarch.Detailed.step_cycle uarch ~now:!cycle wrapped in
          incr cycle;
          mstats.Memo.Stats.detailed_cycles <-
            mstats.Memo.Stats.detailed_cycles + 1;
          mstats.Memo.Stats.detailed_retired <-
            mstats.Memo.Stats.detailed_retired + r.Uarch.Detailed.retired;
          group_retired := !group_retired + r.Uarch.Detailed.retired;
          if r.Uarch.Detailed.retired > 0 then begin
            last_progress := !cycle;
            emit_opt trace
              (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
                 (mstats.Memo.Stats.detailed_retired
                 + mstats.Memo.Stats.replayed_retired))
          end;
          if !cycle - !last_progress > watchdog then
            raise (Deadlock "no retirement progress");
          if r.Uarch.Detailed.halted then begin
            ignore
              (Memo.Pcache.merge_group pc !cfg ~silent:!silent
                 ~retired:!group_retired
                 ~classes:(group_classes uarch)
                 ~items:(List.rev !items_rev)
                 ~terminal:Memo.Action.T_halt
                : Memo.Action.config option);
            result := Some `Halted
          end
          else if r.Uarch.Detailed.interactions > 0 then begin
            (* Hot path: encode the snapshot into the simulator's reusable
               arena and probe the table with its precomputed hash — a warm
               cache resolves the successor without allocating. *)
            let next0 =
              Memo.Pcache.intern_arena pc
                (Uarch.Detailed.snapshot_arena uarch)
            in
            ignore
              (Memo.Pcache.merge_group pc !cfg ~silent:!silent
                 ~retired:!group_retired
                 ~classes:(group_classes uarch)
                 ~items:(List.rev !items_rev)
                 ~terminal:(Memo.Action.T_goto next0)
                : Memo.Action.config option);
            assert (!pending = []);
            items_rev := [];
            silent := 0;
            group_retired := 0;
            let next =
              match Memo.Pcache.check_budget pc with
              | `Kept -> next0
              | `Flushed | `Collected ->
                (* Our configuration nodes may be stale; re-intern by key. *)
                Memo.Pcache.intern pc next0.Memo.Action.cfg_key
            in
            if next.Memo.Action.cfg_group <> None then
              result := Some (`Replay next)
            else cfg := next
          end
          else incr silent
          end
        done);
    emit_opt trace
      (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "detailed"
         ~args:
           [ ( "detailed_cycles",
               Fastsim_obs.Json.Int mstats.Memo.Stats.detailed_cycles ) ]);
    match !result with Some r -> r | None -> assert false
  in
  let uarch0 = Uarch.Detailed.create ?params prog in
  let cfg0 = Memo.Pcache.intern pc (Uarch.Detailed.snapshot uarch0) in
  (* A warm (persisted) cache may already know the initial configuration:
     start fast-forwarding immediately. *)
  let state =
    if cfg0.Memo.Action.cfg_group <> None then ref (`Replay cfg0)
    else ref (`Detailed (uarch0, cfg0, []))
  in
  let halted = ref false in
  let truncated = ref false in
  Fun.protect
    ~finally:(fun () -> if Option.is_some obs then Memo.Pcache.detach_obs pc)
    (fun () ->
      while (not !halted) && not !truncated do
        match !state with
        | `Detailed (uarch, cfg, prefix) -> (
          match detailed_episode uarch cfg prefix with
          | `Halted -> halted := true
          | `Truncated -> truncated := true
          | `Replay cfg' -> state := `Replay cfg')
        | `Replay cfg ->
          prof_enter profile Fastsim_obs.Profile.Replay;
          let r =
            Fun.protect
              ~finally:(fun () -> prof_leave profile)
              (fun () ->
                Memo.Replay.run ~max_cycles ?trace ?metrics pc mstats
                  ~oracle ~cycle ~classes:total_classes ~start:cfg)
          in
          (match r with
           | Memo.Replay.Replay_halted -> halted := true
           | Memo.Replay.Replay_budget config ->
             (* The budget falls inside this configuration's group: replay
                hands it back untouched and the detailed simulator runs the
                truncated tail, stopping exactly at [max_cycles] with exact
                partial statistics — so Fast ≡ Slow at every truncation
                point. *)
             let uarch =
               Uarch.Detailed.restore ?params prog config.Memo.Action.cfg_key
             in
             state := `Detailed (uarch, config, [])
           | Memo.Replay.Diverged { config; prefix } ->
             let uarch =
               Uarch.Detailed.restore ?params prog config.Memo.Action.cfg_key
             in
             state := `Detailed (uarch, config, prefix))
      done);
  let retired =
    mstats.Memo.Stats.detailed_retired + mstats.Memo.Stats.replayed_retired
  in
  finish ~cycles:!cycle ~retired ~classes:total_classes ~emu ~cache
    ~counters ~memo:(Some mstats)
    ~pcache:(Some (Memo.Pcache.counters pc))
    ~truncated:!truncated

(* ---------------------------------------------------------------- *)
(* The unified engine front end: one configuration record instead of a
   fan of optional arguments, serialisable so sweep manifests and reports
   can record exactly which configuration produced each result. *)

module J = Fastsim_obs.Json

(* Shared strict JSON-object decoder: one pass over the members, rejecting
   unknown AND duplicate keys, so a typo'd or doubled field in a manifest,
   fuzz artifact or wire request fails loudly instead of silently applying
   last-wins. [path] is the JSON path of the object being decoded (e.g.
   ["$.params"]) so every error names the offending location.
   [error : string -> unit] must raise. *)
let strict_obj ~error ~path ~field init j =
  match j with
  | J.Obj members ->
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (k, v) ->
        if Hashtbl.mem seen k then
          error (Printf.sprintf "duplicate field %S at %s" k path);
        Hashtbl.add seen k ();
        match field acc k v with
        | Some acc -> acc
        | None ->
          error (Printf.sprintf "unknown field %S at %s" k path);
          assert false)
      init members
  | _ ->
    error (Printf.sprintf "%s must be an object" path);
    assert false

module Spec = struct
  type observer = int -> Uarch.Detailed.t -> Uarch.Detailed.cycle_result -> unit

  type t = {
    params : Uarch.Params.t;
    cache_config : Cachesim.Config.t;
    predictor : predictor_kind;
    max_cycles : int;
    policy : Memo.Pcache.policy;
    pcache : Memo.Pcache.t option;
    obs : Fastsim_obs.Ctx.t option;
    observer : observer option;
  }

  let default =
    { params = Uarch.Params.default;
      cache_config = Cachesim.Config.default;
      predictor = Standard;
      max_cycles = max_int;
      policy = Memo.Pcache.Unbounded;
      pcache = None;
      obs = None;
      observer = None }

  let with_params params t = { t with params }
  let with_cache_config cache_config t = { t with cache_config }
  let with_predictor predictor t = { t with predictor }
  let with_max_cycles max_cycles t = { t with max_cycles }
  let with_policy policy t = { t with policy }
  let with_pcache pc t = { t with pcache = Some pc }
  let with_obs obs t = { t with obs = Some obs }
  let with_observer f t = { t with observer = Some f }

  (* ---- string conversions shared by the CLI and the sweep driver ---- *)

  let predictor_to_string = function
    | Standard -> "standard"
    | Not_taken -> "not-taken"
    | Taken -> "taken"

  let predictor_of_string = function
    | "standard" -> Ok Standard
    | "not-taken" | "not_taken" -> Ok Not_taken
    | "taken" -> Ok Taken
    | s -> Error (Printf.sprintf "unknown predictor %S" s)

  let policy_to_string = function
    | Memo.Pcache.Unbounded -> "unbounded"
    | Memo.Pcache.Flush_on_full n -> Printf.sprintf "flush:%d" n
    | Memo.Pcache.Copying_gc n -> Printf.sprintf "copy:%d" n
    | Memo.Pcache.Generational_gc { nursery; total } ->
      Printf.sprintf "gen:%d:%d" nursery total

  let policy_of_string s =
    let num n =
      match int_of_string_opt n with
      | Some i when i > 0 -> Ok i
      | _ -> Error (Printf.sprintf "bad byte budget %S in policy %S" n s)
    in
    match String.split_on_char ':' s with
    | [ "unbounded" ] -> Ok Memo.Pcache.Unbounded
    | [ "flush"; n ] ->
      Result.map (fun n -> Memo.Pcache.Flush_on_full n) (num n)
    | [ "copy"; n ] -> Result.map (fun n -> Memo.Pcache.Copying_gc n) (num n)
    | [ "gen"; n; t ] ->
      Result.bind (num n) (fun nursery ->
          Result.map
            (fun total -> Memo.Pcache.Generational_gc { nursery; total })
            (num t))
    | _ ->
      Error
        (Printf.sprintf
           "bad policy %S (want unbounded, flush:BYTES, copy:BYTES or \
            gen:NURSERY:TOTAL)" s)

  let engine_to_string = function
    | `Fast -> "fast"
    | `Slow -> "slow"
    | `Baseline -> "baseline"

  let engine_of_string = function
    | "fast" -> Ok `Fast
    | "slow" -> Ok `Slow
    | "baseline" -> Ok `Baseline
    | s -> Error (Printf.sprintf "unknown engine %S" s)

  (* ---- JSON (de)serialisation -------------------------------------- *)
  (* The runtime-only fields (pcache, obs, observer) are not represented:
     a decoded spec always has them unset. Decoding overlays the present
     fields onto {!default} and rejects unknown and duplicate keys, so a
     typo in a manifest fails loudly rather than silently running the
     default. The [Result]-returning decoders are the primary forms (the
     serve daemon, manifests and fuzz artifacts all decode untrusted
     input); the raising versions are deprecated thin wrappers.

     Versioning: documents carry a "version" field. Version 1 (or an
     absent field — every pre-versioning document) is the original wire
     format; version 2 added [issue_width], [fu_latency] and
     [issue_ports]. Decoding is strictly backward compatible: every new
     field is an optional overlay onto the same defaults the old engine
     hard-coded, so a v1 document decodes to a spec with identical
     behaviour. Unknown future versions are rejected. *)

  let version = 2

  let fu_table_to_json value_of : J.t =
    Obj
      (Array.to_list
         (Array.map
            (fun c -> (Isa.Instr.fu_name c, value_of c))
            Isa.Instr.fu_classes))

  let params_to_json (p : Uarch.Params.t) : J.t =
    Obj
      [ ("fetch_width", Int p.fetch_width);
        ("decode_width", Int p.decode_width);
        ("issue_width", Int p.issue_width);
        ("retire_width", Int p.retire_width);
        ("active_list", Int p.active_list);
        ("int_queue", Int p.int_queue);
        ("fp_queue", Int p.fp_queue);
        ("addr_queue", Int p.addr_queue);
        ("int_units", Int p.int_units);
        ("fp_units", Int p.fp_units);
        ("mem_units", Int p.mem_units);
        ( "fu_latency",
          fu_table_to_json (fun c ->
              J.Int p.fu_latency.(Isa.Instr.fu_index c)) );
        ( "issue_ports",
          fu_table_to_json (fun c ->
              J.Str
                (Uarch.Params.port_name
                   p.issue_ports.(Isa.Instr.fu_index c))) );
        ("phys_int_regs", Int p.phys_int_regs);
        ("phys_fp_regs", Int p.phys_fp_regs);
        ("max_spec_branches", Int p.max_spec_branches) ]

  let cache_config_to_json (c : Cachesim.Config.t) : J.t =
    Obj
      [ ("l1_size", Int c.l1_size);
        ("l1_ways", Int c.l1_ways);
        ("l1_line", Int c.l1_line);
        ("l1_hit_latency", Int c.l1_hit_latency);
        ("l1_miss_penalty", Int c.l1_miss_penalty);
        ("l1_mshrs", Int c.l1_mshrs);
        ("l2_size", Int c.l2_size);
        ("l2_ways", Int c.l2_ways);
        ("l2_line", Int c.l2_line);
        ("l2_hit_latency", Int c.l2_hit_latency);
        ("l2_mshrs", Int c.l2_mshrs);
        ("mem_latency", Int c.mem_latency);
        ("bus_width", Int c.bus_width) ]

  let to_json t : J.t =
    let fields =
      [ ("version", J.Int version);
        ("params", params_to_json t.params);
        ("cache_config", cache_config_to_json t.cache_config);
        ("predictor", J.Str (predictor_to_string t.predictor));
        ("policy", J.Str (policy_to_string t.policy)) ]
    in
    let fields =
      if t.max_cycles = max_int then fields
      else fields @ [ ("max_cycles", J.Int t.max_cycles) ]
    in
    Obj fields

  let spec_error fmt = Printf.ksprintf (fun m -> failwith ("spec: " ^ m)) fmt

  let fold_obj ~path ~field init j =
    strict_obj ~error:(fun m -> failwith ("spec: " ^ m)) ~path ~field init j

  (* Typed accessors that blame the offending JSON path on a mismatch. *)
  let int_at path v =
    match J.to_int v with
    | n -> n
    | exception J.Parse_error m -> spec_error "%s: %s" path m

  let str_at path v =
    match J.to_str v with
    | s -> s
    | exception J.Parse_error m -> spec_error "%s: %s" path m

  (* Runs a raising decoder and reflects its failures — including
     ill-typed values, which surface as [Json.Parse_error] from the
     accessors — into a [Result]. *)
  let decode_result decode j =
    match decode j with
    | v -> Ok v
    | exception Failure m -> Error m
    | exception J.Parse_error m -> Error ("spec: " ^ m)

  let fu_index_of_name path k =
    let rec find i =
      if i >= Isa.Instr.fu_count then
        spec_error "%s: unknown fu class %S" path k
      else if String.equal (Isa.Instr.fu_name Isa.Instr.fu_classes.(i)) k
      then i
      else find (i + 1)
    in
    find 0

  (* Per-fu-class table ({"int-alu": v, ...}): overlays present entries
     onto a copy of [base] (never onto [base] itself — records derived
     from [default] share its arrays). *)
  let fu_table_decode ~path ~value base j =
    let a = Array.copy base in
    fold_obj ~path () j ~field:(fun () k v ->
        let idx = fu_index_of_name path k in
        a.(idx) <- value (path ^ "." ^ k) v;
        Some ());
    a

  let params_decode ?(path = "$.params") j : Uarch.Params.t =
    fold_obj ~path Uarch.Params.default j
      ~field:(fun (p : Uarch.Params.t) k v ->
        let i () = int_at (path ^ "." ^ k) v in
        match k with
        | "fetch_width" -> Some { p with fetch_width = i () }
        | "decode_width" -> Some { p with decode_width = i () }
        | "issue_width" -> Some { p with issue_width = i () }
        | "retire_width" -> Some { p with retire_width = i () }
        | "active_list" -> Some { p with active_list = i () }
        | "int_queue" -> Some { p with int_queue = i () }
        | "fp_queue" -> Some { p with fp_queue = i () }
        | "addr_queue" -> Some { p with addr_queue = i () }
        | "int_units" -> Some { p with int_units = i () }
        | "fp_units" -> Some { p with fp_units = i () }
        | "mem_units" -> Some { p with mem_units = i () }
        | "fu_latency" ->
          Some
            { p with
              fu_latency =
                fu_table_decode ~path:(path ^ ".fu_latency") ~value:int_at
                  p.fu_latency v }
        | "issue_ports" ->
          Some
            { p with
              issue_ports =
                fu_table_decode ~path:(path ^ ".issue_ports")
                  ~value:(fun path v ->
                    match Uarch.Params.port_of_string (str_at path v) with
                    | Ok port -> port
                    | Error m -> spec_error "%s: %s" path m)
                  p.issue_ports v }
        | "phys_int_regs" -> Some { p with phys_int_regs = i () }
        | "phys_fp_regs" -> Some { p with phys_fp_regs = i () }
        | "max_spec_branches" -> Some { p with max_spec_branches = i () }
        | _ -> None)

  let cache_config_decode ?(path = "$.cache_config") j : Cachesim.Config.t =
    fold_obj ~path Cachesim.Config.default j
      ~field:(fun (c : Cachesim.Config.t) k v ->
        let i () = int_at (path ^ "." ^ k) v in
        match k with
        | "l1_size" -> Some { c with l1_size = i () }
        | "l1_ways" -> Some { c with l1_ways = i () }
        | "l1_line" -> Some { c with l1_line = i () }
        | "l1_hit_latency" -> Some { c with l1_hit_latency = i () }
        | "l1_miss_penalty" -> Some { c with l1_miss_penalty = i () }
        | "l1_mshrs" -> Some { c with l1_mshrs = i () }
        | "l2_size" -> Some { c with l2_size = i () }
        | "l2_ways" -> Some { c with l2_ways = i () }
        | "l2_line" -> Some { c with l2_line = i () }
        | "l2_hit_latency" -> Some { c with l2_hit_latency = i () }
        | "l2_mshrs" -> Some { c with l2_mshrs = i () }
        | "mem_latency" -> Some { c with mem_latency = i () }
        | "bus_width" -> Some { c with bus_width = i () }
        | _ -> None)

  let decode j : t =
    let ok_or_fail path = function
      | Ok v -> v
      | Error m -> spec_error "%s: %s" path m
    in
    fold_obj ~path:"$" default j ~field:(fun t k v ->
        match k with
        | "version" ->
          let n = int_at "$.version" v in
          if n < 1 || n > version then
            spec_error
              "$.version: unsupported spec version %d (this decoder knows \
               1..%d)" n version;
          Some t
        | "params" -> Some { t with params = params_decode v }
        | "cache_config" ->
          Some { t with cache_config = cache_config_decode v }
        | "predictor" ->
          Some
            { t with
              predictor =
                ok_or_fail "$.predictor"
                  (predictor_of_string (str_at "$.predictor" v)) }
        | "policy" ->
          Some
            { t with
              policy =
                ok_or_fail "$.policy"
                  (policy_of_string (str_at "$.policy" v)) }
        | "max_cycles" -> Some { t with max_cycles = int_at "$.max_cycles" v }
        | _ -> None)

  let params_of_json_result j = decode_result params_decode j
  let cache_config_of_json_result j = decode_result cache_config_decode j
  let of_json_result j = decode_result decode j

  (* ---- self-describing schema --------------------------------------- *)
  (* One entry per accepted JSON path, with the type the decoder expects,
     the default the field overlays, and a one-line doc. This is the
     source for [fastsim spec schema] and [fastsim sweep --list-params];
     docs/CONFIG.md is the prose companion. The table is written by hand
     next to the decoders above — a new decoder case and its schema row
     belong in the same change. *)

  type schema_field = {
    sf_path : string;     (* e.g. "$.params.fetch_width" *)
    sf_type : string;     (* human-readable type *)
    sf_default : string;  (* rendered default value *)
    sf_doc : string;
  }

  let schema : schema_field list =
    let p = Uarch.Params.default in
    let c = Cachesim.Config.default in
    let f sf_path sf_type sf_default sf_doc =
      { sf_path; sf_type; sf_default; sf_doc }
    in
    let pi name v doc = f ("$.params." ^ name) "int" (string_of_int v) doc in
    let ci name v doc =
      f ("$.cache_config." ^ name) "int" (string_of_int v) doc
    in
    [ f "$.version" "int" (string_of_int version)
        "wire-format version; absent means 1 (pre-versioning documents); \
         versions 1 through the current one decode, later are rejected";
      pi "fetch_width" p.fetch_width "instructions fetched per cycle";
      pi "decode_width" p.decode_width
        "instructions decoded and renamed per cycle";
      pi "issue_width" p.issue_width
        "total instructions issued per cycle across all ports; 0 means \
         uncapped (per-port unit counts still limit issue)";
      pi "retire_width" p.retire_width "instructions retired per cycle";
      pi "active_list" p.active_list
        "active-list (reorder buffer) entries; bounds in-flight \
         instructions and the snapshot entry count, so at most 255";
      pi "int_queue" p.int_queue "integer issue-queue entries";
      pi "fp_queue" p.fp_queue "floating-point issue-queue entries";
      pi "addr_queue" p.addr_queue "address (memory) issue-queue entries";
      pi "int_units" p.int_units "functional units on the int port";
      pi "fp_units" p.fp_units "functional units on the fp port";
      pi "mem_units" p.mem_units "functional units on the mem port";
      f "$.params.fu_latency" "{fu-class: int}"
        (J.to_string
           (fu_table_to_json (fun cl ->
                J.Int p.fu_latency.(Isa.Instr.fu_index cl))))
        "execution latency in cycles per functional-unit class; a partial \
         object overlays the defaults; every latency must be >= 1";
      f "$.params.issue_ports" "{fu-class: \"int\"|\"fp\"|\"mem\"}"
        (J.to_string
           (fu_table_to_json (fun cl ->
                J.Str
                  (Uarch.Params.port_name
                     p.issue_ports.(Isa.Instr.fu_index cl)))))
        "issue port — and therefore issue queue — per functional-unit \
         class; a partial object overlays the defaults";
      pi "phys_int_regs" p.phys_int_regs
        "integer physical registers; the rename freelist holds this minus \
         the 32 architectural registers, so it must exceed 32";
      pi "phys_fp_regs" p.phys_fp_regs
        "floating-point physical registers; must exceed 32, as above";
      pi "max_spec_branches" p.max_spec_branches
        "unresolved conditional branches fetch may speculate past \
         (= branch shadow-map slots)";
      ci "l1_size" c.l1_size "L1 data cache size in bytes";
      ci "l1_ways" c.l1_ways "L1 associativity";
      ci "l1_line" c.l1_line "L1 line size in bytes";
      ci "l1_hit_latency" c.l1_hit_latency "cycles to data on an L1 hit";
      ci "l1_miss_penalty" c.l1_miss_penalty
        "cycles to reach L2 after an L1 miss";
      ci "l1_mshrs" c.l1_mshrs "L1 outstanding-miss registers";
      ci "l2_size" c.l2_size "L2 cache size in bytes";
      ci "l2_ways" c.l2_ways "L2 associativity";
      ci "l2_line" c.l2_line "L2 line size in bytes";
      ci "l2_hit_latency" c.l2_hit_latency "L2 array access time in cycles";
      ci "l2_mshrs" c.l2_mshrs "L2 outstanding-miss registers";
      ci "mem_latency" c.mem_latency
        "cycles from bus grant to the first data beat";
      ci "bus_width" c.bus_width "bytes per bus cycle";
      f "$.predictor" "string"
        (Printf.sprintf "%S" (predictor_to_string default.predictor))
        "branch predictor: \"standard\" (BHT + BTB + RAS), \"not-taken\" \
         or \"taken\"";
      f "$.policy" "string"
        (Printf.sprintf "%S" (policy_to_string default.policy))
        "p-action cache policy (fast engine only): \"unbounded\", \
         \"flush:BYTES\", \"copy:BYTES\" or \"gen:NURSERY:TOTAL\"";
      f "$.max_cycles" "int" "(absent: unlimited)"
        "cycle budget; the run stops and reports truncated = true when it \
         is reached" ]

  let schema_to_json () : J.t =
    Obj
      [ ("version", Int version);
        ( "fields",
          List
            (Stdlib.List.map
               (fun s ->
                 J.Obj
                   [ ("path", J.Str s.sf_path);
                     ("type", J.Str s.sf_type);
                     ("default", J.Str s.sf_default);
                     ("doc", J.Str s.sf_doc) ])
               schema) ) ]

  let unwrap = function Ok v -> v | Error m -> failwith m
  let params_of_json j = unwrap (params_of_json_result j)
  let cache_config_of_json j = unwrap (cache_config_of_json_result j)
  let of_json j = unwrap (of_json_result j)
end

(* ---------------------------------------------------------------- *)
(* Wire codec for {!result}. Every field — including the final
   architectural state and the optional memo/pcache statistics — crosses
   the JSON boundary and decodes back structurally equal (floats rely on
   Json's exact round-trip printing). The sweep report and the serve
   daemon both emit this shape; derived conveniences (ipc,
   detailed_fraction, avg_chain) ride along for human consumers and are
   accepted-but-ignored on decode. *)

let result_error fmt = Printf.ksprintf (fun m -> failwith ("result: " ^ m)) fmt

(* Imperative flavour of [strict_obj]: [field] returns whether it
   recognised the key and stashes the value in a ref. *)
let result_obj ~path ~field j =
  strict_obj ~error:(fun m -> failwith ("result: " ^ m)) ~path () j
    ~field:(fun () k v -> if field k v then Some () else None)

let result_need what = function
  | Some v -> v
  | None -> result_error "missing %s" what

let branch_stats_to_json (b : branch_stats) : J.t =
  Obj
    [ ("conditionals", Int b.conditionals);
      ("mispredicted", Int b.mispredicted);
      ("indirects", Int b.indirects);
      ("misfetched", Int b.misfetched) ]

let branch_stats_decode j : branch_stats =
  let c = ref None and m = ref None and i = ref None and f = ref None in
  result_obj ~path:"$.branches" j ~field:(fun k v ->
      match k with
      | "conditionals" -> c := Some (J.to_int v); true
      | "mispredicted" -> m := Some (J.to_int v); true
      | "indirects" -> i := Some (J.to_int v); true
      | "misfetched" -> f := Some (J.to_int v); true
      | _ -> false);
  { conditionals = result_need "branches.conditionals" !c;
    mispredicted = result_need "branches.mispredicted" !m;
    indirects = result_need "branches.indirects" !i;
    misfetched = result_need "branches.misfetched" !f }

let cache_stats_to_json (c : Cachesim.Hierarchy.stats) : J.t =
  Obj
    [ ("loads", Int c.loads);
      ("stores", Int c.stores);
      ("l1_hits", Int c.l1_hits);
      ("l1_misses", Int c.l1_misses);
      ("l2_hits", Int c.l2_hits);
      ("l2_misses", Int c.l2_misses);
      ("writebacks", Int c.writebacks);
      ("merged_misses", Int c.merged_misses) ]

let cache_stats_decode j : Cachesim.Hierarchy.stats =
  let got = Hashtbl.create 8 in
  result_obj ~path:"$.cache" j ~field:(fun k v ->
      match k with
      | "loads" | "stores" | "l1_hits" | "l1_misses" | "l2_hits" | "l2_misses"
      | "writebacks" | "merged_misses" ->
        Hashtbl.replace got k (J.to_int v);
        true
      | _ -> false);
  let need k =
    match Hashtbl.find_opt got k with
    | Some v -> v
    | None -> result_error "missing cache.%s" k
  in
  { Cachesim.Hierarchy.loads = need "loads";
    stores = need "stores";
    l1_hits = need "l1_hits";
    l1_misses = need "l1_misses";
    l2_hits = need "l2_hits";
    l2_misses = need "l2_misses";
    writebacks = need "writebacks";
    merged_misses = need "merged_misses" }

let memo_stats_to_json (m : Memo.Stats.t) : J.t =
  Obj
    [ ("detailed_retired", Int m.detailed_retired);
      ("replayed_retired", Int m.replayed_retired);
      ("detailed_cycles", Int m.detailed_cycles);
      ("replayed_cycles", Int m.replayed_cycles);
      ("detailed_fraction", Float (Memo.Stats.detailed_fraction m));
      ("actions_replayed", Int m.actions_replayed);
      ("groups_replayed", Int m.groups_replayed);
      ("chain_current", Int m.chain_current);
      ("chain_max", Int m.chain_max);
      ("avg_chain", Float (Memo.Stats.avg_chain m));
      ("episodes", Int m.episodes);
      ("detailed_entries", Int m.detailed_entries) ]

let memo_stats_decode j : Memo.Stats.t =
  let s = Memo.Stats.create () in
  result_obj ~path:"$.memo" j ~field:(fun k v ->
      match k with
      | "detailed_retired" -> s.Memo.Stats.detailed_retired <- J.to_int v; true
      | "replayed_retired" -> s.Memo.Stats.replayed_retired <- J.to_int v; true
      | "detailed_cycles" -> s.Memo.Stats.detailed_cycles <- J.to_int v; true
      | "replayed_cycles" -> s.Memo.Stats.replayed_cycles <- J.to_int v; true
      | "actions_replayed" -> s.Memo.Stats.actions_replayed <- J.to_int v; true
      | "groups_replayed" -> s.Memo.Stats.groups_replayed <- J.to_int v; true
      | "chain_current" -> s.Memo.Stats.chain_current <- J.to_int v; true
      | "chain_max" -> s.Memo.Stats.chain_max <- J.to_int v; true
      | "episodes" -> s.Memo.Stats.episodes <- J.to_int v; true
      | "detailed_entries" -> s.Memo.Stats.detailed_entries <- J.to_int v; true
      | "detailed_fraction" | "avg_chain" -> ignore (J.to_float v); true
      | _ -> false);
  s

let pcache_counters_to_json (p : Memo.Pcache.counters) : J.t =
  Obj
    [ ("static_configs", Int p.static_configs);
      ("static_actions", Int p.static_actions);
      ("live_configs", Int p.live_configs);
      ("modeled_bytes", Int p.modeled_bytes);
      ("peak_modeled_bytes", Int p.peak_modeled_bytes);
      ("flushes", Int p.flushes);
      ("minor_collections", Int p.minor_collections);
      ("full_collections", Int p.full_collections);
      ("last_gc_survivors", Int p.last_gc_survivors);
      ("last_gc_population", Int p.last_gc_population);
      ("stride_compactions", Int p.stride_compactions);
      ("stride_expansions", Int p.stride_expansions) ]

let pcache_counters_decode j : Memo.Pcache.counters =
  let got = Hashtbl.create 16 in
  result_obj ~path:"$.pcache" j ~field:(fun k v ->
      match k with
      | "static_configs" | "static_actions" | "live_configs" | "modeled_bytes"
      | "peak_modeled_bytes" | "flushes" | "minor_collections"
      | "full_collections" | "last_gc_survivors" | "last_gc_population"
      | "stride_compactions" | "stride_expansions" ->
        Hashtbl.replace got k (J.to_int v);
        true
      | _ -> false);
  let need k =
    match Hashtbl.find_opt got k with
    | Some v -> v
    | None -> result_error "missing pcache.%s" k
  in
  { Memo.Pcache.static_configs = need "static_configs";
    static_actions = need "static_actions";
    live_configs = need "live_configs";
    modeled_bytes = need "modeled_bytes";
    peak_modeled_bytes = need "peak_modeled_bytes";
    flushes = need "flushes";
    minor_collections = need "minor_collections";
    full_collections = need "full_collections";
    last_gc_survivors = need "last_gc_survivors";
    last_gc_population = need "last_gc_population";
    stride_compactions = need "stride_compactions";
    stride_expansions = need "stride_expansions" }

(* FP registers must round-trip bit-exactly, and JSON has no literal
   for NaN or the infinities (the printer would emit null). Finite
   values stay ordinary JSON floats; non-finite ones are carried as
   "bits:<16 hex digits>" strings of their IEEE-754 representation. *)
let freg_to_json v =
  if Float.is_finite v then J.Float v
  else J.Str (Printf.sprintf "bits:%016Lx" (Int64.bits_of_float v))

let freg_of_json = function
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | J.Str s when String.length s = 21 && String.sub s 0 5 = "bits:" -> (
    match Int64.of_string_opt ("0x" ^ String.sub s 5 16) with
    | Some bits -> Int64.float_of_bits bits
    | None -> result_error "final_state.fregs: bad bits literal %S" s)
  | _ -> result_error "final_state.fregs: expected a float"

let final_state_to_json (s : Emu.Arch_state.t) : J.t =
  Obj
    [ ("pc", Int s.Emu.Arch_state.pc);
      ( "iregs",
        List
          (Array.to_list
             (Array.map (fun v -> J.Int v) s.Emu.Arch_state.iregs)) );
      ( "fregs",
        List
          (Array.to_list
             (Array.map freg_to_json s.Emu.Arch_state.fregs)) ) ]

let final_state_decode j : Emu.Arch_state.t =
  let pc = ref None and iregs = ref None and fregs = ref None in
  result_obj ~path:"$.final_state" j ~field:(fun k v ->
      match k with
      | "pc" -> pc := Some (J.to_int v); true
      | "iregs" ->
        iregs := Some (Array.of_list (List.map J.to_int (J.to_list v)));
        true
      | "fregs" ->
        fregs := Some (Array.of_list (List.map freg_of_json (J.to_list v)));
        true
      | _ -> false);
  { Emu.Arch_state.pc = result_need "final_state.pc" !pc;
    iregs = result_need "final_state.iregs" !iregs;
    fregs = result_need "final_state.fregs" !fregs }

let result_to_json (r : result) : J.t =
  Obj
    ([ ("cycles", J.Int r.cycles);
       ("retired", J.Int r.retired);
       ( "ipc",
         J.Float (float_of_int r.retired /. float_of_int (max 1 r.cycles)) );
       ("emulated_insts", J.Int r.emulated_insts);
       ("wrong_path_insts", J.Int r.wrong_path_insts);
       ( "retired_by_class",
         J.List
           (Array.to_list (Array.map (fun n -> J.Int n) r.retired_by_class))
       );
       ("branches", branch_stats_to_json r.branches);
       ("cache", cache_stats_to_json r.cache) ]
    @ (match r.memo with
       | None -> []
       | Some m -> [ ("memo", memo_stats_to_json m) ])
    @ (match r.pcache with
       | None -> []
       | Some p -> [ ("pcache", pcache_counters_to_json p) ])
    @ [ ("final_state", final_state_to_json r.final_state);
        ("truncated", J.Bool r.truncated) ])

let result_of_json j : (result, string) Stdlib.result =
  let decode j =
    let cycles = ref None and retired = ref None in
    let emulated = ref None and wrong_path = ref None in
    let classes = ref None and branches = ref None and cache = ref None in
    let memo = ref None and pcache = ref None in
    let final_state = ref None and truncated = ref None in
    result_obj ~path:"$" j ~field:(fun k v ->
        match k with
        | "cycles" -> cycles := Some (J.to_int v); true
        | "retired" -> retired := Some (J.to_int v); true
        | "ipc" -> ignore (J.to_float v); true
        | "emulated_insts" -> emulated := Some (J.to_int v); true
        | "wrong_path_insts" -> wrong_path := Some (J.to_int v); true
        | "retired_by_class" ->
          classes := Some (Array.of_list (List.map J.to_int (J.to_list v)));
          true
        | "branches" -> branches := Some (branch_stats_decode v); true
        | "cache" -> cache := Some (cache_stats_decode v); true
        | "memo" -> memo := Some (memo_stats_decode v); true
        | "pcache" -> pcache := Some (pcache_counters_decode v); true
        | "final_state" -> final_state := Some (final_state_decode v); true
        | "truncated" -> truncated := Some (J.to_bool v); true
        | _ -> false);
    { cycles = result_need "cycles" !cycles;
      retired = result_need "retired" !retired;
      retired_by_class = result_need "retired_by_class" !classes;
      emulated_insts = result_need "emulated_insts" !emulated;
      wrong_path_insts = result_need "wrong_path_insts" !wrong_path;
      branches = result_need "branches" !branches;
      cache = result_need "cache" !cache;
      memo = !memo;
      pcache = !pcache;
      final_state = result_need "final_state" !final_state;
      truncated = result_need "truncated" !truncated }
  in
  match decode j with
  | v -> Ok v
  | exception Failure m -> Error m
  | exception J.Parse_error m -> Error ("result: " ^ m)

(* Baseline results are reshaped into {!result} so every engine answers
   through one type. The baseline model has no direct-execution
   decoupling and no per-class retirement accounting, so the fields it
   cannot produce are zero ([emulated_insts], [retired_by_class],
   conditional/indirect fetch counts) — only [mispredicted] is real. *)
let baseline_result (b : Baseline.result) : result =
  { cycles = b.Baseline.cycles;
    retired = b.Baseline.retired;
    retired_by_class = Array.make Isa.Instr.fu_count 0;
    emulated_insts = 0;
    wrong_path_insts = b.Baseline.wrong_path_insts;
    branches =
      { conditionals = 0;
        mispredicted = b.Baseline.mispredicts;
        indirects = 0;
        misfetched = 0 };
    cache = b.Baseline.cache;
    memo = None;
    pcache = None;
    final_state = b.Baseline.final_state;
    truncated = b.Baseline.truncated }

let run ~engine (spec : Spec.t) prog =
  match engine with
  | `Slow ->
    slow_sim ~params:spec.Spec.params ~cache_config:spec.Spec.cache_config
      ~predictor:spec.Spec.predictor ~max_cycles:spec.Spec.max_cycles
      ?observer:spec.Spec.observer ?obs:spec.Spec.obs prog
  | `Fast ->
    fast_sim ~params:spec.Spec.params ~cache_config:spec.Spec.cache_config
      ~predictor:spec.Spec.predictor ~max_cycles:spec.Spec.max_cycles
      ~policy:spec.Spec.policy ?pcache:spec.Spec.pcache ?obs:spec.Spec.obs
      prog
  | `Baseline ->
    let max_cycles =
      if spec.Spec.max_cycles = max_int then None
      else Some spec.Spec.max_cycles
    in
    baseline_result
      (Baseline.run ~cache_config:spec.Spec.cache_config ?max_cycles prog)
