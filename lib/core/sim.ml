exception Deadlock of string

type branch_stats = {
  conditionals : int;
  mispredicted : int;
  indirects : int;
  misfetched : int;
}

(* ---- strategy types (docs/STRATEGY.md) ---------------------------- *)

type fanout = {
  f_map : 'a. (int -> 'a) -> int -> 'a option array;
  f_pcache_mode : [ `Inherit | `Isolate ];
}

let inline_fanout =
  { f_map =
      (fun f n ->
        Array.init n (fun i -> try Some (f i) with _ -> None));
    f_pcache_mode = `Inherit }

type strategy =
  | Serial
  | Parallel of {
      interval_insns : int;
      warmup_insns : int;
      fanout : fanout option;
    }
  | Sampled of {
      sample_insns : int;
      sample_period : int;
      warmup_insns : int;
    }

type provenance = {
  prov_strategy : string;
  prov_intervals : int;
  prov_accepted : int;
  prov_repaired : int;
  prov_fallback : string option;
  prov_errors : (string * float) list;
}

type result = {
  cycles : int;
  retired : int;
  retired_by_class : int array;
  emulated_insts : int;
  wrong_path_insts : int;
  branches : branch_stats;
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;
  pcache : Memo.Pcache.counters option;
  final_state : Emu.Arch_state.t;
  truncated : bool;
  provenance : provenance option;
}

type predictor_kind = Standard | Not_taken | Taken

type engine = [ `Fast | `Slow | `Baseline ]

(* Cycles without a retirement before the driver declares the pipeline
   stuck; generous enough for any real memory-latency pile-up. *)
let watchdog = 100_000

let make_predictor ?metrics kind prog =
  match kind with
  | Standard -> Bpred.standard ~prog ?metrics ()
  | Not_taken -> Bpred.static_not_taken ()
  | Taken -> Bpred.static_taken ()

(* Branch statistics accumulate at the live-oracle boundary: both the
   detailed simulator and the replay engine pull outcomes through here
   (prefix-served outcomes during a divergence re-run are NOT re-pulled),
   so each fetched control event is counted exactly once and the counts
   are identical with and without memoization. *)
type branch_counters = {
  mutable n_cond : int;
  mutable n_mispred : int;
  mutable n_ind : int;
  mutable n_misfetch : int;
}

let translate counters (ev : Emu.Emulator.control) : Uarch.Oracle.ctl_outcome
    =
  match ev with
  | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
    let mispredicted = taken <> predicted_taken in
    counters.n_cond <- counters.n_cond + 1;
    if mispredicted then counters.n_mispred <- counters.n_mispred + 1;
    Uarch.Oracle.C_cond { taken; mispredicted }
  | Emu.Emulator.Indirect { target; predicted; _ } ->
    let hit = predicted = Some target in
    counters.n_ind <- counters.n_ind + 1;
    if not hit then counters.n_misfetch <- counters.n_misfetch + 1;
    Uarch.Oracle.C_indirect { target; hit }
  | Emu.Emulator.Halted _ | Emu.Emulator.Wedged _ -> Uarch.Oracle.C_stalled

let live_oracle emu cache counters : Uarch.Oracle.t =
  { cache_load =
      (fun ~now ->
        let l = Emu.Emulator.pop_load emu in
        Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr);
    cache_store =
      (fun ~now ->
        let s = Emu.Emulator.pop_store emu in
        Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr);
    fetch_control =
      (fun () -> translate counters (Emu.Emulator.next_event emu));
    rollback =
      (fun ~index -> ignore (Emu.Emulator.rollback_to emu ~index : int)) }

(* ---------------------------------------------------------------- *)
(* Observability plumbing (docs/OBSERVABILITY.md). Everything below is
   strictly passive: the instrumented oracle and all event emission only
   observe, so simulation results are bit-identical with and without an
   observability context (enforced by the equivalence suite). *)

let prof_enter p ph =
  match p with None -> () | Some p -> Fastsim_obs.Profile.enter p ph

let prof_leave p =
  match p with None -> () | Some p -> Fastsim_obs.Profile.leave p

let emit_opt tr ev =
  match tr with None -> () | Some tr -> Fastsim_obs.Trace.emit tr ev

(* Wraps the live oracle so cache calls are charged to the Cachesim
   profiling phase, direct-execution pulls/rollbacks to the Emulation
   phase, and control outcomes / rollbacks appear as [core] trace events.
   During replay these emissions come from the recorded chains being
   re-performed, which is exactly what makes FastSim observable. *)
let instrument_oracle (obs : Fastsim_obs.Ctx.t option) ~now
    (oracle : Uarch.Oracle.t) : Uarch.Oracle.t =
  match obs with
  | None | Some { Fastsim_obs.Ctx.trace = None; profile = None; _ } -> oracle
  | Some { Fastsim_obs.Ctx.trace; profile; _ } ->
    { cache_load =
        (fun ~now:cyc ->
          prof_enter profile Fastsim_obs.Profile.Cachesim;
          let lat = oracle.Uarch.Oracle.cache_load ~now:cyc in
          prof_leave profile;
          lat);
      cache_store =
        (fun ~now:cyc ->
          prof_enter profile Fastsim_obs.Profile.Cachesim;
          oracle.Uarch.Oracle.cache_store ~now:cyc;
          prof_leave profile);
      fetch_control =
        (fun () ->
          prof_enter profile Fastsim_obs.Profile.Emulation;
          let out = oracle.Uarch.Oracle.fetch_control () in
          prof_leave profile;
          (match trace with
           | None -> ()
           | Some tr ->
             let ts = now () in
             let ev =
               match out with
               | Uarch.Oracle.C_cond { taken; mispredicted } ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "cond"
                   ~args:
                     [ ("taken", Fastsim_obs.Json.Bool taken);
                       ("mispredicted", Fastsim_obs.Json.Bool mispredicted) ]
               | Uarch.Oracle.C_indirect { target; hit } ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "indirect"
                   ~args:
                     [ ("target", Fastsim_obs.Json.Int target);
                       ("hit", Fastsim_obs.Json.Bool hit) ]
               | Uarch.Oracle.C_stalled ->
                 Fastsim_obs.Event.instant ~ts ~cat:"core" "fetch_stall"
             in
             Fastsim_obs.Trace.emit tr ev);
          out);
      rollback =
        (fun ~index ->
          prof_enter profile Fastsim_obs.Profile.Emulation;
          oracle.Uarch.Oracle.rollback ~index;
          prof_leave profile;
          emit_opt trace
            (Fastsim_obs.Event.instant ~ts:(now ()) ~cat:"core" "rollback"
               ~args:[ ("index", Fastsim_obs.Json.Int index) ])) }

let functional = Emu.Emulator.run_functional

let finish ~cycles ~retired ~classes ~emu ~cache ~counters ~memo ~pcache
    ~truncated =
  { cycles;
    retired;
    retired_by_class = classes;
    emulated_insts = Emu.Emulator.insts_executed emu;
    wrong_path_insts = Emu.Emulator.wrong_path_insts emu;
    branches =
      { conditionals = counters.n_cond;
        mispredicted = counters.n_mispred;
        indirects = counters.n_ind;
        misfetched = counters.n_misfetch };
    cache = Cachesim.Hierarchy.stats cache;
    memo;
    pcache;
    final_state = Emu.Emulator.state emu;
    truncated;
    provenance = None }

let fresh_counters () =
  { n_cond = 0; n_mispred = 0; n_ind = 0; n_misfetch = 0 }

let slow_sim ?params ?cache_config ?(predictor = Standard)
    ?(max_cycles = max_int) ?observer ?obs prog =
  let trace = Fastsim_obs.Ctx.trace obs in
  let metrics = Fastsim_obs.Ctx.metrics obs in
  let profile = Fastsim_obs.Ctx.profile obs in
  let pred = make_predictor ?metrics predictor prog in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create ?config:cache_config ?trace ?metrics () in
  let uarch = Uarch.Detailed.create ?params prog in
  let counters = fresh_counters () in
  let cycle = ref 0 and retired = ref 0 and last_progress = ref 0 in
  let oracle =
    instrument_oracle obs ~now:(fun () -> !cycle)
      (live_oracle emu cache counters)
  in
  let halted = ref false in
  let truncated = ref false in
  emit_opt trace (Fastsim_obs.Event.span_begin ~ts:0 ~cat:"engine" "detailed");
  prof_enter profile Fastsim_obs.Profile.Detailed;
  Fun.protect
    ~finally:(fun () -> prof_leave profile)
    (fun () ->
      while (not !halted) && not !truncated do
        if !cycle >= max_cycles then truncated := true
        else begin
          let r = Uarch.Detailed.step_cycle uarch ~now:!cycle oracle in
          (match observer with
           | Some f -> f !cycle uarch r
           | None -> ());
          incr cycle;
          retired := !retired + r.Uarch.Detailed.retired;
          if r.Uarch.Detailed.retired > 0 then begin
            last_progress := !cycle;
            emit_opt trace
              (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
                 !retired)
          end;
          if !cycle - !last_progress > watchdog then
            raise (Deadlock "no retirement progress");
          if r.Uarch.Detailed.halted then halted := true
        end
      done);
  emit_opt trace
    (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "detailed"
       ~args:[ ("cycles", Fastsim_obs.Json.Int !cycle) ]);
  finish ~cycles:!cycle ~retired:!retired
    ~classes:(Uarch.Detailed.retired_by_class uarch)
    ~emu ~cache ~counters ~memo:None ~pcache:None ~truncated:!truncated

(* The memoizing engine: run the detailed simulator, recording a group per
   interaction cycle; when a group ends at a configuration that already has
   recorded actions, switch to fast-forwarding; when fast-forwarding meets
   an unseen outcome, resume detailed simulation from the configuration
   with the already-obtained outcomes as a prefix. *)
let fast_sim ?params ?cache_config ?(predictor = Standard)
    ?(max_cycles = max_int) ?(policy = Memo.Pcache.Unbounded) ?pcache ?store
    ?obs prog =
  let trace = Fastsim_obs.Ctx.trace obs in
  let metrics = Fastsim_obs.Ctx.metrics obs in
  let profile = Fastsim_obs.Ctx.profile obs in
  let pred = make_predictor ?metrics predictor prog in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create ?config:cache_config ?trace ?metrics () in
  let counters = fresh_counters () in
  let cycle = ref 0 in
  let oracle =
    instrument_oracle obs ~now:(fun () -> !cycle)
      (live_oracle emu cache counters)
  in
  let pc =
    match pcache with
    | Some pc -> pc
    | None -> Memo.Pcache.create ~policy ?store ()
  in
  if Option.is_some obs then
    Memo.Pcache.attach_obs pc ?trace ?metrics ~now:(fun () -> !cycle) ();
  let mstats = Memo.Stats.create () in
  let total_classes = Array.make Isa.Instr.fu_count 0 in
  let prefix_mismatch what item =
    raise
      (Memo.Pcache.Determinism_violation
         (Format.asprintf
            "detailed re-run requested a %s but the replay prefix holds %a"
            what Memo.Action.pp_item item))
  in
  (* One detailed episode: from [cfg0] (with [prefix0] outcomes already
     obtained by a diverged replay), record groups until a known
     configuration is reached or the program halts. *)
  let detailed_episode uarch cfg0 prefix0 =
    emit_opt trace
      (Fastsim_obs.Event.span_begin ~ts:!cycle ~cat:"engine" "detailed");
    prof_enter profile Fastsim_obs.Profile.Detailed;
    mstats.Memo.Stats.detailed_entries <-
      mstats.Memo.Stats.detailed_entries + 1;
    let items_rev = ref [] in
    let pending = ref prefix0 in
    let record item = items_rev := item :: !items_rev in
    let wrapped : Uarch.Oracle.t =
      { cache_load =
          (fun ~now ->
            let lat =
              match !pending with
              | Memo.Action.I_load lat :: rest ->
                pending := rest;
                lat
              | [] -> oracle.Uarch.Oracle.cache_load ~now
              | item :: _ -> prefix_mismatch "load" item
            in
            record (Memo.Action.I_load lat);
            lat);
        cache_store =
          (fun ~now ->
            (match !pending with
             | Memo.Action.I_store :: rest -> pending := rest
             | [] -> oracle.Uarch.Oracle.cache_store ~now
             | item :: _ -> prefix_mismatch "store" item);
            record Memo.Action.I_store);
        fetch_control =
          (fun () ->
            let out =
              match !pending with
              | Memo.Action.I_ctl c :: rest ->
                pending := rest;
                c
              | [] -> oracle.Uarch.Oracle.fetch_control ()
              | item :: _ -> prefix_mismatch "fetch_control" item
            in
            record (Memo.Action.I_ctl out);
            out);
        rollback =
          (fun ~index ->
            (match !pending with
             | Memo.Action.I_rollback j :: rest ->
               if j <> index then prefix_mismatch "rollback" (I_rollback j);
               pending := rest
             | [] -> oracle.Uarch.Oracle.rollback ~index
             | item :: _ -> prefix_mismatch "rollback" item);
            record (Memo.Action.I_rollback index)) }
    in
    let cfg = ref cfg0 in
    let silent = ref 0 and group_retired = ref 0 in
    let class_base = ref (Uarch.Detailed.retired_by_class uarch) in
    let group_classes uarch =
      let cur = Uarch.Detailed.retired_by_class uarch in
      let delta = Array.mapi (fun i v -> v - !class_base.(i)) cur in
      Array.iteri
        (fun i v -> total_classes.(i) <- total_classes.(i) + v)
        delta;
      class_base := cur;
      delta
    in
    let last_progress = ref !cycle in
    let result = ref None in
    Fun.protect
      ~finally:(fun () -> prof_leave profile)
      (fun () ->
        while !result = None do
          if !cycle >= max_cycles then begin
            (* Truncated mid-group. Flush the partial group's per-class
               retirement into the totals (the cycles simulated so far are
               real and their statistics must be reported, exactly as the
               slow engine reports them) but do NOT merge the partial group
               into the p-action cache: its silent/retired aggregates
               describe a prefix, and recording them would poison later
               full-length runs. *)
            ignore (group_classes uarch : int array);
            result := Some `Truncated
          end
          else begin
          let r = Uarch.Detailed.step_cycle uarch ~now:!cycle wrapped in
          incr cycle;
          mstats.Memo.Stats.detailed_cycles <-
            mstats.Memo.Stats.detailed_cycles + 1;
          mstats.Memo.Stats.detailed_retired <-
            mstats.Memo.Stats.detailed_retired + r.Uarch.Detailed.retired;
          group_retired := !group_retired + r.Uarch.Detailed.retired;
          if r.Uarch.Detailed.retired > 0 then begin
            last_progress := !cycle;
            emit_opt trace
              (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
                 (mstats.Memo.Stats.detailed_retired
                 + mstats.Memo.Stats.replayed_retired))
          end;
          if !cycle - !last_progress > watchdog then
            raise (Deadlock "no retirement progress");
          if r.Uarch.Detailed.halted then begin
            ignore
              (Memo.Pcache.merge_group pc !cfg ~silent:!silent
                 ~retired:!group_retired
                 ~classes:(group_classes uarch)
                 ~items:(List.rev !items_rev)
                 ~terminal:Memo.Action.T_halt
                : Memo.Action.config option);
            result := Some `Halted
          end
          else if r.Uarch.Detailed.interactions > 0 then begin
            (* Hot path: encode the snapshot into the simulator's reusable
               arena and probe the table with its precomputed hash — a warm
               cache resolves the successor without allocating. *)
            let next0 =
              Memo.Pcache.intern_arena pc
                (Uarch.Detailed.snapshot_arena uarch)
            in
            ignore
              (Memo.Pcache.merge_group pc !cfg ~silent:!silent
                 ~retired:!group_retired
                 ~classes:(group_classes uarch)
                 ~items:(List.rev !items_rev)
                 ~terminal:(Memo.Action.T_goto next0)
                : Memo.Action.config option);
            assert (!pending = []);
            items_rev := [];
            silent := 0;
            group_retired := 0;
            let next =
              match Memo.Pcache.check_budget pc with
              | `Kept -> next0
              | `Flushed | `Collected ->
                (* Our configuration nodes may be stale; re-intern by key. *)
                Memo.Pcache.intern pc next0.Memo.Action.cfg_key
            in
            if next.Memo.Action.cfg_group <> None then
              result := Some (`Replay next)
            else cfg := next
          end
          else incr silent
          end
        done);
    emit_opt trace
      (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "detailed"
         ~args:
           [ ( "detailed_cycles",
               Fastsim_obs.Json.Int mstats.Memo.Stats.detailed_cycles ) ]);
    match !result with Some r -> r | None -> assert false
  in
  let uarch0 = Uarch.Detailed.create ?params prog in
  let cfg0 = Memo.Pcache.intern pc (Uarch.Detailed.snapshot uarch0) in
  (* A warm (persisted) cache may already know the initial configuration:
     start fast-forwarding immediately. *)
  let state =
    if cfg0.Memo.Action.cfg_group <> None then ref (`Replay cfg0)
    else ref (`Detailed (uarch0, cfg0, []))
  in
  let halted = ref false in
  let truncated = ref false in
  Fun.protect
    ~finally:(fun () -> if Option.is_some obs then Memo.Pcache.detach_obs pc)
    (fun () ->
      while (not !halted) && not !truncated do
        match !state with
        | `Detailed (uarch, cfg, prefix) -> (
          match detailed_episode uarch cfg prefix with
          | `Halted -> halted := true
          | `Truncated -> truncated := true
          | `Replay cfg' -> state := `Replay cfg')
        | `Replay cfg ->
          prof_enter profile Fastsim_obs.Profile.Replay;
          let r =
            Fun.protect
              ~finally:(fun () -> prof_leave profile)
              (fun () ->
                Memo.Replay.run ~max_cycles ?trace ?metrics pc mstats
                  ~oracle ~cycle ~classes:total_classes ~start:cfg)
          in
          (match r with
           | Memo.Replay.Replay_halted -> halted := true
           | Memo.Replay.Replay_budget config ->
             (* The budget falls inside this configuration's group: replay
                hands it back untouched and the detailed simulator runs the
                truncated tail, stopping exactly at [max_cycles] with exact
                partial statistics — so Fast ≡ Slow at every truncation
                point. *)
             let uarch =
               Uarch.Detailed.restore ?params prog config.Memo.Action.cfg_key
             in
             state := `Detailed (uarch, config, [])
           | Memo.Replay.Diverged { config; prefix } ->
             let uarch =
               Uarch.Detailed.restore ?params prog config.Memo.Action.cfg_key
             in
             state := `Detailed (uarch, config, prefix))
      done);
  let retired =
    mstats.Memo.Stats.detailed_retired + mstats.Memo.Stats.replayed_retired
  in
  finish ~cycles:!cycle ~retired ~classes:total_classes ~emu ~cache
    ~counters ~memo:(Some mstats)
    ~pcache:(Some (Memo.Pcache.counters pc))
    ~truncated:!truncated

(* ================================================================== *)
(* Strategy engines (docs/STRATEGY.md): time-parallel interval
   simulation and SMARTS-style sampling layered over the serial engines.

   The parallel engine is speculative-but-exact: workers cold-start at a
   functional checkpoint a warmup distance before their interval, and the
   stitcher accepts a worker's steady-state stats only when the worker's
   machine state at the interval boundary is byte-identical (in a
   canonical normal form) to the exact boundary state carried along from
   the previous interval. Any mismatch is repaired by re-simulating that
   interval serially from the exact boundary, so the stitched result is
   bit-identical to the serial run by induction — the worst case
   degenerates to the serial run, never to a wrong answer.

   Strategy runs do not support [Spec.obs]/[Spec.observer] (segments run
   without instrumentation) and report [memo = None]/[pcache = None]
   (per-worker memoization statistics are not meaningfully stitchable). *)

let strategy_to_string = function
  | Serial -> "serial"
  | Parallel { interval_insns; warmup_insns; _ } ->
    Printf.sprintf "parallel:%d:%d" interval_insns warmup_insns
  | Sampled { sample_insns; sample_period; warmup_insns } ->
    Printf.sprintf "sampled:%d:%d:%d" sample_insns sample_period warmup_insns

let strategy_of_string s =
  let num what v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "bad %s %S in strategy %S" what v s)
  in
  match String.split_on_char ':' s with
  | [ "serial" ] -> Ok Serial
  | [ "parallel"; k; w ] ->
    Result.bind (num "interval" k) (fun interval_insns ->
        Result.map
          (fun warmup_insns ->
            Parallel { interval_insns; warmup_insns; fanout = None })
          (num "warmup" w))
  | [ "sampled"; l; p; w ] ->
    Result.bind (num "sample length" l) (fun sample_insns ->
        Result.bind (num "period" p) (fun sample_period ->
            Result.map
              (fun warmup_insns ->
                Sampled { sample_insns; sample_period; warmup_insns })
              (num "warmup" w)))
  | _ ->
    Error
      (Printf.sprintf
         "bad strategy %S (want serial, parallel:INSNS:WARMUP or \
          sampled:INSNS:PERIOD:WARMUP)" s)

let make_handle kind prog =
  match kind with
  | Standard -> Bpred.standard_handle ~prog ()
  | Not_taken -> Bpred.not_taken_handle ()
  | Taken -> Bpred.taken_handle ()

(* Absolute statistic totals at one instant of one simulation rig. Frames
   (per-interval deltas) reuse the same record; they telescope, so
   stitching sums of exact deltas onto the exact initial totals yields
   exactly the serial run's totals. *)
type abs_totals = {
  a_cycles : int;
  a_retired : int;
  a_classes : int array;
  a_emulated : int;
  a_wrong_path : int;
  a_cond : int;
  a_mispred : int;
  a_ind : int;
  a_misfetch : int;
  a_cache : Cachesim.Hierarchy.stats;
}

let cache_sub (b : Cachesim.Hierarchy.stats) (a : Cachesim.Hierarchy.stats) :
    Cachesim.Hierarchy.stats =
  { loads = b.loads - a.loads;
    stores = b.stores - a.stores;
    l1_hits = b.l1_hits - a.l1_hits;
    l1_misses = b.l1_misses - a.l1_misses;
    l2_hits = b.l2_hits - a.l2_hits;
    l2_misses = b.l2_misses - a.l2_misses;
    writebacks = b.writebacks - a.writebacks;
    merged_misses = b.merged_misses - a.merged_misses }

let cache_add (a : Cachesim.Hierarchy.stats) (d : Cachesim.Hierarchy.stats) :
    Cachesim.Hierarchy.stats =
  { loads = a.loads + d.loads;
    stores = a.stores + d.stores;
    l1_hits = a.l1_hits + d.l1_hits;
    l1_misses = a.l1_misses + d.l1_misses;
    l2_hits = a.l2_hits + d.l2_hits;
    l2_misses = a.l2_misses + d.l2_misses;
    writebacks = a.writebacks + d.writebacks;
    merged_misses = a.merged_misses + d.merged_misses }

let abs_sub b a =
  { a_cycles = b.a_cycles - a.a_cycles;
    a_retired = b.a_retired - a.a_retired;
    a_classes = Array.mapi (fun i v -> v - a.a_classes.(i)) b.a_classes;
    a_emulated = b.a_emulated - a.a_emulated;
    a_wrong_path = b.a_wrong_path - a.a_wrong_path;
    a_cond = b.a_cond - a.a_cond;
    a_mispred = b.a_mispred - a.a_mispred;
    a_ind = b.a_ind - a.a_ind;
    a_misfetch = b.a_misfetch - a.a_misfetch;
    a_cache = cache_sub b.a_cache a.a_cache }

let abs_add a d =
  { a_cycles = a.a_cycles + d.a_cycles;
    a_retired = a.a_retired + d.a_retired;
    a_classes = Array.mapi (fun i v -> v + d.a_classes.(i)) a.a_classes;
    a_emulated = a.a_emulated + d.a_emulated;
    a_wrong_path = a.a_wrong_path + d.a_wrong_path;
    a_cond = a.a_cond + d.a_cond;
    a_mispred = a.a_mispred + d.a_mispred;
    a_ind = a.a_ind + d.a_ind;
    a_misfetch = a.a_misfetch + d.a_misfetch;
    a_cache = cache_add a.a_cache d.a_cache }

(* Complete machine state at an interval boundary: restorable (for serial
   repair) and canonically comparable (for acceptance). [m_prefix] carries
   replay-divergence outcomes already pulled from the live oracle but not
   yet consumed by the detailed simulator (fast engine only); it is
   behavioural state and participates in the canonical form, as does the
   boundary overshoot (how far past the retirement target the crossing
   cycle ran) because it fixes how statistics partition at the boundary. *)
type machine = {
  m_pipe : Uarch.Snapshot.key;
  m_emu : Emu.Emulator.Capture.t;
  m_pred : Bpred.state;
  m_cache : Cachesim.Hierarchy.state;
  m_prefix : Memo.Action.item list;
  m_overshoot : int;
}

let machine_canonical (m : machine) : string =
  Marshal.to_string
    ( m.m_pipe,
      Emu.Emulator.Capture.canonical m.m_emu,
      m.m_pred,
      Cachesim.Hierarchy.state_canonical m.m_cache,
      m.m_prefix,
      m.m_overshoot )
    [ Marshal.No_sharing ]

(* A simulation rig: the live components one segment runs on. The cycle
   counter is local to the rig; all cross-boundary time state is relative
   (see Cachesim.Hierarchy.capture), so segments stitch regardless of
   where each rig's clock started. *)
type rig = {
  r_emu : Emu.Emulator.t;
  r_cache : Cachesim.Hierarchy.t;
  r_handle : Bpred.handle;
  r_counters : branch_counters;
  r_cycle : int ref;
  r_oracle : Uarch.Oracle.t;
}

let make_rig ~cache_config ~handle emu =
  let cache = Cachesim.Hierarchy.create ~config:cache_config () in
  let counters = fresh_counters () in
  { r_emu = emu;
    r_cache = cache;
    r_handle = handle;
    r_counters = counters;
    r_cycle = ref 0;
    r_oracle = live_oracle emu cache counters }

let rig_fresh ~cache_config ~predictor prog =
  let h = make_handle predictor prog in
  make_rig ~cache_config ~handle:h
    (Emu.Emulator.create ~predictor:h.Bpred.h_pred prog)

let rig_at ~cache_config ~predictor prog (ck : Emu.Emulator.functional_ck) =
  let h = make_handle predictor prog in
  let emu =
    Emu.Emulator.create_at ~predictor:h.Bpred.h_pred prog
      ~state:ck.Emu.Emulator.f_state
      ~mem:(Emu.Memory.copy ck.Emu.Emulator.f_mem)
      ~insts:ck.Emu.Emulator.f_insts
  in
  make_rig ~cache_config ~handle:h emu

let rig_restore ~cache_config ~predictor prog (m : machine) =
  let h = make_handle predictor prog in
  h.Bpred.h_load m.m_pred;
  let emu = Emu.Emulator.restore ~predictor:h.Bpred.h_pred prog m.m_emu in
  let rig = make_rig ~cache_config ~handle:h emu in
  Cachesim.Hierarchy.restore rig.r_cache ~now:0 m.m_cache;
  rig

let capture_machine rig uarch ~prefix ~overshoot =
  { m_pipe = Uarch.Detailed.snapshot uarch;
    m_emu = Emu.Emulator.capture rig.r_emu;
    m_pred = rig.r_handle.Bpred.h_save ();
    m_cache = Cachesim.Hierarchy.capture rig.r_cache ~now:!(rig.r_cycle);
    m_prefix = prefix;
    m_overshoot = overshoot }

let abs_now rig ~retired ~classes =
  { a_cycles = !(rig.r_cycle);
    a_retired = retired;
    a_classes = classes;
    a_emulated = Emu.Emulator.insts_executed rig.r_emu;
    a_wrong_path = Emu.Emulator.wrong_path_insts rig.r_emu;
    a_cond = rig.r_counters.n_cond;
    a_mispred = rig.r_counters.n_mispred;
    a_ind = rig.r_counters.n_ind;
    a_misfetch = rig.r_counters.n_misfetch;
    a_cache = Cachesim.Hierarchy.stats rig.r_cache }

(* One segment run: simulate on [rig] until every retirement mark in
   [marks] (ascending, in the rig's local retirement count) has been
   captured, the cycle [budget] (local) is hit, or the program halts.
   Marks are captured at the end of the first cycle where the local
   retired count reaches the mark — checked at the loop top, so a halt
   cycle that crosses the final mark still captures it. *)
type seg_out = {
  so_caps : (machine * abs_totals) array;
  so_end : [ `Done | `Halted | `Truncated ];
  so_final : abs_totals;
}

let slow_segment rig uarch ~budget ~marks : seg_out =
  let nmarks = Array.length marks in
  let caps = ref [] in
  let mi = ref 0 in
  let retired = ref 0 in
  let halted = ref false in
  let last_progress = ref !(rig.r_cycle) in
  let stop = ref None in
  while !stop = None do
    if !mi < nmarks && !retired >= marks.(!mi) then begin
      let m =
        capture_machine rig uarch ~prefix:[]
          ~overshoot:(!retired - marks.(!mi))
      in
      let a =
        abs_now rig ~retired:!retired
          ~classes:(Uarch.Detailed.retired_by_class uarch)
      in
      caps := (m, a) :: !caps;
      incr mi
    end
    else if !mi >= nmarks then stop := Some `Done
    else if !halted then stop := Some `Halted
    else if !(rig.r_cycle) >= budget then stop := Some `Truncated
    else begin
      let r = Uarch.Detailed.step_cycle uarch ~now:!(rig.r_cycle) rig.r_oracle in
      incr rig.r_cycle;
      retired := !retired + r.Uarch.Detailed.retired;
      if r.Uarch.Detailed.retired > 0 then last_progress := !(rig.r_cycle);
      if !(rig.r_cycle) - !last_progress > watchdog then
        raise (Deadlock "no retirement progress");
      if r.Uarch.Detailed.halted then halted := true
    end
  done;
  { so_caps = Array.of_list (List.rev !caps);
    so_end = (match !stop with Some s -> s | None -> assert false);
    so_final =
      abs_now rig ~retired:!retired
        ~classes:(Uarch.Detailed.retired_by_class uarch) }

(* Memoizing segment runner: the fast engine restructured around
   retirement marks. Replay is bounded by [max_retired] so it stops
   before any group that would cross the next mark; the detailed
   simulator then steps cycle-by-cycle to the exact crossing. Captures
   mid-group flush nothing into the p-action cache (the group continues
   and merges normally later); the captured statistics peek at the live
   per-class deltas without disturbing group accounting. *)
let fast_segment ~params rig pc ~uarch0 ~cfg0 ~prefix0 ~budget ~marks prog :
    seg_out =
  let nmarks = Array.length marks in
  let caps = ref [] in
  let mi = ref 0 in
  let mstats = Memo.Stats.create () in
  let total_classes = Array.make Isa.Instr.fu_count 0 in
  let retired_now () =
    mstats.Memo.Stats.detailed_retired + mstats.Memo.Stats.replayed_retired
  in
  let oracle = rig.r_oracle and cycle = rig.r_cycle in
  let prefix_mismatch what item =
    raise
      (Memo.Pcache.Determinism_violation
         (Format.asprintf
            "detailed re-run requested a %s but the replay prefix holds %a"
            what Memo.Action.pp_item item))
  in
  let detailed_episode uarch cfg0 prefix0 =
    mstats.Memo.Stats.detailed_entries <-
      mstats.Memo.Stats.detailed_entries + 1;
    let items_rev = ref [] in
    let pending = ref prefix0 in
    let record item = items_rev := item :: !items_rev in
    let wrapped : Uarch.Oracle.t =
      { cache_load =
          (fun ~now ->
            let lat =
              match !pending with
              | Memo.Action.I_load lat :: rest ->
                pending := rest;
                lat
              | [] -> oracle.Uarch.Oracle.cache_load ~now
              | item :: _ -> prefix_mismatch "load" item
            in
            record (Memo.Action.I_load lat);
            lat);
        cache_store =
          (fun ~now ->
            (match !pending with
             | Memo.Action.I_store :: rest -> pending := rest
             | [] -> oracle.Uarch.Oracle.cache_store ~now
             | item :: _ -> prefix_mismatch "store" item);
            record Memo.Action.I_store);
        fetch_control =
          (fun () ->
            let out =
              match !pending with
              | Memo.Action.I_ctl c :: rest ->
                pending := rest;
                c
              | [] -> oracle.Uarch.Oracle.fetch_control ()
              | item :: _ -> prefix_mismatch "fetch_control" item
            in
            record (Memo.Action.I_ctl out);
            out);
        rollback =
          (fun ~index ->
            (match !pending with
             | Memo.Action.I_rollback j :: rest ->
               if j <> index then prefix_mismatch "rollback" (I_rollback j);
               pending := rest
             | [] -> oracle.Uarch.Oracle.rollback ~index
             | item :: _ -> prefix_mismatch "rollback" item);
            record (Memo.Action.I_rollback index)) }
    in
    let cfg = ref cfg0 in
    let silent = ref 0 and group_retired = ref 0 in
    let class_base = ref (Uarch.Detailed.retired_by_class uarch) in
    let group_classes uarch =
      let cur = Uarch.Detailed.retired_by_class uarch in
      let delta = Array.mapi (fun i v -> v - !class_base.(i)) cur in
      Array.iteri
        (fun i v -> total_classes.(i) <- total_classes.(i) + v)
        delta;
      class_base := cur;
      delta
    in
    (* Per-class totals through the current cycle, including the open
       group's partial retirement, WITHOUT flushing it (a flushed base
       would make the eventual merge_group record wrong class counts). *)
    let live_classes () =
      let cur = Uarch.Detailed.retired_by_class uarch in
      Array.mapi (fun i c -> total_classes.(i) + c - !class_base.(i)) cur
    in
    let last_progress = ref !cycle in
    let result = ref None in
    while !result = None do
      if !mi < nmarks && retired_now () >= marks.(!mi) then begin
        let m =
          capture_machine rig uarch ~prefix:!pending
            ~overshoot:(retired_now () - marks.(!mi))
        in
        let a =
          abs_now rig ~retired:(retired_now ()) ~classes:(live_classes ())
        in
        caps := (m, a) :: !caps;
        incr mi
      end
      else if !mi >= nmarks then result := Some `Done
      else if !cycle >= budget then begin
        (* Truncated mid-group: flush the partial group's per-class
           retirement into the totals but never merge the partial group
           (same contract as the serial fast engine). *)
        ignore (group_classes uarch : int array);
        result := Some `Truncated
      end
      else begin
        let r = Uarch.Detailed.step_cycle uarch ~now:!cycle wrapped in
        incr cycle;
        mstats.Memo.Stats.detailed_cycles <-
          mstats.Memo.Stats.detailed_cycles + 1;
        mstats.Memo.Stats.detailed_retired <-
          mstats.Memo.Stats.detailed_retired + r.Uarch.Detailed.retired;
        group_retired := !group_retired + r.Uarch.Detailed.retired;
        if r.Uarch.Detailed.retired > 0 then last_progress := !cycle;
        if !cycle - !last_progress > watchdog then
          raise (Deadlock "no retirement progress");
        if r.Uarch.Detailed.halted then begin
          ignore
            (Memo.Pcache.merge_group pc !cfg ~silent:!silent
               ~retired:!group_retired
               ~classes:(group_classes uarch)
               ~items:(List.rev !items_rev)
               ~terminal:Memo.Action.T_halt
              : Memo.Action.config option);
          result := Some `Halted
        end
        else if r.Uarch.Detailed.interactions > 0 then begin
          let next0 =
            Memo.Pcache.intern_arena pc (Uarch.Detailed.snapshot_arena uarch)
          in
          ignore
            (Memo.Pcache.merge_group pc !cfg ~silent:!silent
               ~retired:!group_retired
               ~classes:(group_classes uarch)
               ~items:(List.rev !items_rev)
               ~terminal:(Memo.Action.T_goto next0)
              : Memo.Action.config option);
          assert (!pending = []);
          items_rev := [];
          silent := 0;
          group_retired := 0;
          let next =
            match Memo.Pcache.check_budget pc with
            | `Kept -> next0
            | `Flushed | `Collected ->
              Memo.Pcache.intern pc next0.Memo.Action.cfg_key
          in
          if next.Memo.Action.cfg_group <> None then
            result := Some (`Replay next)
          else cfg := next
        end
        else incr silent
      end
    done;
    match !result with Some r -> r | None -> assert false
  in
  let state =
    if prefix0 = [] && cfg0.Memo.Action.cfg_group <> None then
      ref (`Replay cfg0)
    else ref (`Detailed (uarch0, cfg0, prefix0))
  in
  let finish = ref None in
  while !finish = None do
    match !state with
    | `Detailed (uarch, cfg, prefix) -> (
      match detailed_episode uarch cfg prefix with
      | `Done -> finish := Some `Done
      | `Truncated -> finish := Some `Truncated
      | `Halted ->
        (* Serve marks crossed by the halt cycle (the episode exits before
           its next loop-top check). All groups are flushed at a halt, so
           the totals are current. *)
        while !mi < nmarks && retired_now () >= marks.(!mi) do
          let m =
            capture_machine rig uarch ~prefix:[]
              ~overshoot:(retired_now () - marks.(!mi))
          in
          let a =
            abs_now rig ~retired:(retired_now ())
              ~classes:(Array.copy total_classes)
          in
          caps := (m, a) :: !caps;
          incr mi
        done;
        finish := Some (if !mi >= nmarks then `Done else `Halted)
      | `Replay cfg' -> state := `Replay cfg')
    | `Replay cfg ->
      if !mi >= nmarks then finish := Some `Done
      else begin
        let max_retired = marks.(!mi) - retired_now () in
        match
          Memo.Replay.run ~max_cycles:budget ~max_retired pc mstats ~oracle
            ~cycle ~classes:total_classes ~start:cfg
        with
        | Memo.Replay.Replay_halted ->
          (* Marks remain but the chain halted: only reachable when a mark
             exceeds the program's total retirement. Report short. *)
          finish := Some `Halted
        | Memo.Replay.Replay_budget config ->
          let uarch =
            Uarch.Detailed.restore ~params prog config.Memo.Action.cfg_key
          in
          state := `Detailed (uarch, config, [])
        | Memo.Replay.Diverged { config; prefix } ->
          let uarch =
            Uarch.Detailed.restore ~params prog config.Memo.Action.cfg_key
          in
          state := `Detailed (uarch, config, prefix)
      end
  done;
  let so_end = match !finish with Some s -> s | None -> assert false in
  let so_final =
    match (so_end, !caps) with
    | `Done, (_, a) :: _ -> a
    | _ ->
      abs_now rig ~retired:(retired_now ()) ~classes:(Array.copy total_classes)
  in
  { so_caps = Array.of_list (List.rev !caps); so_end; so_final }

type seg_start =
  | Start_cold
  | Start_at of Emu.Emulator.functional_ck
  | Start_warm of Emu.Emulator.functional_ck * Bpred.state * Cachesim.Hierarchy.state
      (** functional checkpoint plus functionally-warmed predictor and
          cache states (sampled engine, docs/STRATEGY.md). *)
  | Start_machine of machine

(* Builds a rig for [start] and runs one segment on it. Returns the
   absolute totals at the start instant (for delta framing), the segment
   outcome, and the rig (for the architectural state at a truncation). *)
let run_segment ~engine ~params ~cache_config ~predictor ~policy ?store
    ~pcache prog
    start ~budget ~marks : abs_totals * seg_out * rig =
  let rig, uarch, prefix =
    match start with
    | Start_cold ->
      (rig_fresh ~cache_config ~predictor prog,
       Uarch.Detailed.create ~params prog,
       [])
    | Start_at ck ->
      (rig_at ~cache_config ~predictor prog ck,
       Uarch.Detailed.create_at ~params prog
         ~pc:ck.Emu.Emulator.f_state.Emu.Arch_state.pc,
       [])
    | Start_warm (ck, pred, cache) ->
      (* Load the warmed predictor tables BEFORE building the emulator:
         its read-ahead produces (and trains on) the first control event
         at construction time, which must see the warm state. *)
      let h = make_handle predictor prog in
      h.Bpred.h_load pred;
      let emu =
        Emu.Emulator.create_at ~predictor:h.Bpred.h_pred prog
          ~state:ck.Emu.Emulator.f_state
          ~mem:(Emu.Memory.copy ck.Emu.Emulator.f_mem)
          ~insts:ck.Emu.Emulator.f_insts
      in
      let rig = make_rig ~cache_config ~handle:h emu in
      Cachesim.Hierarchy.restore rig.r_cache ~now:0 cache;
      (rig,
       Uarch.Detailed.create_at ~params prog
         ~pc:ck.Emu.Emulator.f_state.Emu.Arch_state.pc,
       [])
    | Start_machine m ->
      (rig_restore ~cache_config ~predictor prog m,
       Uarch.Detailed.restore ~params prog m.m_pipe,
       m.m_prefix)
  in
  let abs0 =
    abs_now rig ~retired:0 ~classes:(Array.make Isa.Instr.fu_count 0)
  in
  let out =
    match engine with
    | `Slow ->
      assert (prefix = []);
      slow_segment rig uarch ~budget ~marks
    | `Fast ->
      let pc =
        match pcache with
        | Some pc -> pc
        | None -> Memo.Pcache.create ~policy ?store ()
      in
      let cfg0 = Memo.Pcache.intern pc (Uarch.Detailed.snapshot uarch) in
      fast_segment ~params rig pc ~uarch0:uarch ~cfg0 ~prefix0:prefix ~budget
        ~marks prog
  in
  (abs0, out, rig)

let max_parallel_intervals = 4096
let functional_insn_cap = 200_000_000

let no_provenance ~strategy reason =
  { prov_strategy = strategy;
    prov_intervals = 0;
    prov_accepted = 0;
    prov_repaired = 0;
    prov_fallback = Some reason;
    prov_errors = [] }

(* ---- interval-parallel engine -------------------------------------- *)

let run_parallel ~engine ~params ~cache_config ~predictor ~max_cycles ~policy
    ?store ~pcache ~serial prog ~interval_insns ~warmup_insns ~fanout =
  if interval_insns <= 0 then
    invalid_arg "Sim.run: interval_insns must be positive";
  if warmup_insns < 0 then
    invalid_arg "Sim.run: warmup_insns must be non-negative";
  let fb reason =
    let r : result = serial () in
    { r with provenance = Some (no_provenance ~strategy:"parallel" reason) }
  in
  let insn_cap =
    if max_cycles >= 100_000_000 then functional_insn_cap
    else (max_cycles * max 1 params.Uarch.Params.retire_width) + 64
  in
  let _, _, total_insts, halted_f =
    Emu.Emulator.run_functional_checkpoints ~max_insts:insn_cap prog ~at:[]
  in
  if not halted_f then fb "functional-overrun"
  else begin
    let total_retired = total_insts + 1 in
    if total_retired <= interval_insns then fb "single-interval"
    else begin
      let k =
        let n0 = (total_retired + interval_insns - 1) / interval_insns in
        if n0 <= max_parallel_intervals then interval_insns
        else (total_retired + max_parallel_intervals - 1)
             / max_parallel_intervals
      in
      let n = (total_retired + k - 1) / k in
      let bound i = if i >= n then total_retired else min (i * k) total_retired in
      let warm_start i = max 0 (bound i - warmup_insns) in
      let starts = List.init (n - 1) (fun j -> warm_start (j + 1)) in
      let cks, _, _, _ =
        Emu.Emulator.run_functional_checkpoints ~max_insts:insn_cap prog
          ~at:starts
      in
      let ck_at insts =
        List.find
          (fun c -> c.Emu.Emulator.f_insts = insts)
          cks
      in
      let fan = match fanout with Some f -> f | None -> inline_fanout in
      let worker_pcache =
        match (fan.f_pcache_mode, pcache) with
        | `Inherit, (Some _ as pc) -> pc
        | _ -> None
      in
      let worker i : seg_out =
        let start, s =
          if i = 0 then (Start_cold, 0)
          else
            let s = warm_start i in
            (Start_at (ck_at s), s)
        in
        let marks = [| bound i - s; bound (i + 1) - s |] in
        let _, out, _ =
          run_segment ~engine ~params ~cache_config ~predictor ~policy
            ?store ~pcache:worker_pcache prog start ~budget:max_int ~marks
        in
        out
      in
      let results = fan.f_map worker n in
      (* ---- stitch ---------------------------------------------------- *)
      let init_machine, init_abs =
        let rig = rig_fresh ~cache_config ~predictor prog in
        let uarch = Uarch.Detailed.create ~params prog in
        ( capture_machine rig uarch ~prefix:[] ~overshoot:0,
          abs_now rig ~retired:0 ~classes:(Array.make Isa.Instr.fu_count 0) )
      in
      let boundary = ref init_machine in
      let cum = ref init_abs in
      let accepted = ref 0 and repaired = ref 0 in
      let truncated = ref false in
      let stopped = ref false in
      let final_override = ref None in
      (* Repairs share one warm p-action cache (fast engine). *)
      let repair_pc =
        lazy
          (match pcache with
           | Some pc -> pc
           | None -> Memo.Pcache.create ~policy ?store ())
      in
      let repair i =
        let c = !cum in
        let budget =
          if max_cycles = max_int then max_int else max_cycles - c.a_cycles
        in
        let mark = max 0 (bound (i + 1) - c.a_retired) in
        let seg_pc =
          match engine with `Fast -> Some (Lazy.force repair_pc) | `Slow -> None
        in
        let abs0, out, rig =
          run_segment ~engine ~params ~cache_config ~predictor ~policy
            ?store ~pcache:seg_pc prog (Start_machine !boundary) ~budget
            ~marks:[| mark |]
        in
        incr repaired;
        match (out.so_end, out.so_caps) with
        | `Done, [| (m, a) |] ->
          cum := abs_add c (abs_sub a abs0);
          boundary := m
        | `Truncated, _ ->
          cum := abs_add c (abs_sub out.so_final abs0);
          truncated := true;
          stopped := true;
          final_override :=
            Some (Emu.Arch_state.snapshot (Emu.Emulator.state rig.r_emu))
        | _ ->
          (* Halted before the repair mark: the functional instruction
             count and the timing engines disagree — impossible unless a
             component is broken. Stop with what we have so the
             differential harness reports the divergence loudly. *)
          cum := abs_add c (abs_sub out.so_final abs0);
          stopped := true;
          final_override :=
            Some (Emu.Arch_state.snapshot (Emu.Emulator.state rig.r_emu))
      in
      let i = ref 0 in
      while (not !stopped) && !i < n do
        let c = !cum in
        if max_cycles <> max_int && c.a_cycles >= max_cycles then begin
          truncated := true;
          stopped := true
        end
        else begin
          let acceptable =
            match results.(!i) with
            | Some w when w.so_end = `Done && Array.length w.so_caps = 2 ->
              let ms, _ = w.so_caps.(0) in
              if
                String.equal (machine_canonical ms)
                  (machine_canonical !boundary)
              then Some w
              else None
            | _ -> None
          in
          (match acceptable with
           | Some w ->
             let _, a0 = w.so_caps.(0) in
             let m1, a1 = w.so_caps.(1) in
             let fr = abs_sub a1 a0 in
             if max_cycles <> max_int && c.a_cycles + fr.a_cycles > max_cycles
             then repair !i
             else begin
               cum := abs_add c fr;
               boundary := m1;
               incr accepted
             end
           | None -> repair !i);
          incr i
        end
      done;
      let c = !cum in
      let final_state =
        match !final_override with
        | Some st -> st
        | None -> (!boundary).m_emu.Emu.Emulator.Capture.c_state
      in
      { cycles = c.a_cycles;
        retired = c.a_retired;
        retired_by_class = c.a_classes;
        emulated_insts = c.a_emulated;
        wrong_path_insts = c.a_wrong_path;
        branches =
          { conditionals = c.a_cond;
            mispredicted = c.a_mispred;
            indirects = c.a_ind;
            misfetched = c.a_misfetch };
        cache = c.a_cache;
        memo = None;
        pcache = None;
        final_state;
        truncated = !truncated;
        provenance =
          Some
            { prov_strategy = "parallel";
              prov_intervals = n;
              prov_accepted = !accepted;
              prov_repaired = !repaired;
              prov_fallback = None;
              prov_errors = [] } }
    end
  end

(* ---- sampled engine ------------------------------------------------- *)

let max_samples = 512

let run_sampled ~engine ~params ~cache_config ~predictor ~max_cycles ~policy
    ?store ~pcache ~serial prog ~sample_insns ~sample_period ~warmup_insns =
  if sample_insns <= 0 then
    invalid_arg "Sim.run: sample_insns must be positive";
  if warmup_insns < 0 then
    invalid_arg "Sim.run: warmup_insns must be non-negative";
  let fb reason =
    let r : result = serial () in
    { r with provenance = Some (no_provenance ~strategy:"sampled" reason) }
  in
  if max_cycles <> max_int then fb "max-cycles"
  else begin
    let period = max sample_period (warmup_insns + sample_insns) in
    let classes = Array.make Isa.Instr.fu_count 0 in
    let count_class ~pc =
      match Isa.Program.fetch_opt prog pc with
      | Some ins ->
        let i = Isa.Instr.fu_index (Isa.Instr.fu_class ins) in
        classes.(i) <- classes.(i) + 1
      | None -> ()
    in
    let _, final_state, total_insts, halted_f =
      Emu.Emulator.run_functional_checkpoints ~max_insts:functional_insn_cap
        ~on_inst:count_class prog ~at:[]
    in
    if not halted_f then fb "functional-overrun"
    else begin
      let total_retired = total_insts + 1 in
      let all_windows =
        let rec go j acc =
          let u = j * period in
          if u + warmup_insns + sample_insns <= total_retired then
            go (j + 1) (u :: acc)
          else List.rev acc
        in
        go 0 []
      in
      if all_windows = [] then fb "program-too-short"
      else begin
        let windows =
          let total = List.length all_windows in
          if total <= max_samples then all_windows
          else
            let stride = (total + max_samples - 1) / max_samples in
            List.filteri (fun j _ -> j mod stride = 0) all_windows
        in
        (* Functional warming pass (the SMARTS insight): while
           fast-forwarding between samples, keep a cache model and a
           branch predictor trained on the architectural stream, and
           photograph both at each window start. Without this, every
           window starts cache-cold and over-estimates cycles by tens of
           percent; with it, the short detailed warmup only has to fill
           the pipeline. Warming pseudo-time advances one tick per
           instruction so in-flight miss state ages realistically; the
           capture slack lets every fill land before the state is
           photographed. *)
        let warm_handle = make_handle predictor prog in
        let warm_cache = Cachesim.Hierarchy.create ~config:cache_config () in
        let tick = ref 0 in
        let hooks =
          { Emu.Emulator.wh_load =
              (fun ~addr ~width:_ ->
                ignore
                  (Cachesim.Hierarchy.load warm_cache ~now:!tick ~addr : int));
            wh_store =
              (fun ~addr ~width:_ ->
                Cachesim.Hierarchy.store warm_cache ~now:!tick ~addr);
            wh_cond =
              (fun ~pc ~taken ->
                ignore
                  (warm_handle.Bpred.h_pred.Emu.Predictor.predict_cond ~pc
                    : bool);
                warm_handle.Bpred.h_pred.Emu.Predictor.train_cond ~pc ~taken);
            wh_indirect =
              (fun ~pc ~target ->
                ignore
                  (warm_handle.Bpred.h_pred.Emu.Predictor.predict_indirect ~pc
                    : int option);
                warm_handle.Bpred.h_pred.Emu.Predictor.train_indirect ~pc
                  ~target);
            wh_call =
              (fun ~pc ~return_to ->
                warm_handle.Bpred.h_pred.Emu.Predictor.note_call ~pc
                  ~return_to) }
        in
        let wstates = ref [] in
        let next_windows = ref windows in
        let executed = ref 0 in
        let on_inst ~pc:_ =
          (match !next_windows with
          | u :: rest when !executed >= u ->
            next_windows := rest;
            wstates :=
              ( u,
                warm_handle.Bpred.h_save (),
                Cachesim.Hierarchy.capture warm_cache ~now:(!tick + 100_000) )
              :: !wstates
          | _ -> ());
          incr executed;
          incr tick
        in
        let cks, _, _, _ =
          Emu.Emulator.run_functional_checkpoints
            ~max_insts:functional_insn_cap ~on_inst ~hooks prog ~at:windows
        in
        let seg_pc =
          match engine with
          | `Fast -> (
            match pcache with
            | Some _ as pc -> pc
            | None -> Some (Memo.Pcache.create ~policy ?store ()))
          | `Slow -> None
        in
        let frames =
          List.filter_map
            (fun u ->
              match
                ( List.find_opt (fun c -> c.Emu.Emulator.f_insts = u) cks,
                  List.find_opt (fun (v, _, _) -> v = u) !wstates )
              with
              | Some ck, Some (_, pred, cache) -> (
                let marks =
                  [| warmup_insns; warmup_insns + sample_insns |]
                in
                let _, out, _ =
                  run_segment ~engine ~params ~cache_config ~predictor
                    ~policy ?store ~pcache:seg_pc prog
                    (Start_warm (ck, pred, cache))
                    ~budget:max_int ~marks
                in
                match (out.so_end, out.so_caps) with
                | `Done, [| (_, a0); (_, a1) |] -> Some (abs_sub a1 a0)
                | _ -> None)
              | _ -> None)
            windows
        in
        let n = List.length frames in
        let sum f = List.fold_left (fun s fr -> s + f fr) 0 frames in
        let measured_retired = sum (fun fr -> fr.a_retired) in
        if n = 0 || measured_retired = 0 then fb "no-samples"
        else begin
          let scale = float_of_int total_retired /. float_of_int measured_retired in
          let est v = int_of_float (Float.round (scale *. float_of_int v)) in
          let est_of f = est (sum f) in
          (* Deterministic per-statistic relative-error estimate: a 95%
             CLT half-width on the mean per-retirement rate across the
             sampled windows, relative to that mean. 1.0 (i.e. "no
             confidence") when only one sample exists. *)
          let rel_error f =
            if n < 2 then 1.0
            else begin
              let rates =
                List.map
                  (fun fr ->
                    float_of_int (f fr) /. float_of_int (max 1 fr.a_retired))
                  frames
              in
              let fn = float_of_int n in
              let mean = List.fold_left ( +. ) 0. rates /. fn in
              if mean = 0. then 0.
              else begin
                let var =
                  List.fold_left
                    (fun s r -> s +. ((r -. mean) *. (r -. mean)))
                    0. rates
                  /. (fn -. 1.)
                in
                1.96 *. sqrt var /. (sqrt fn *. mean)
              end
            end
          in
          let errors =
            [ ("cycles", rel_error (fun fr -> fr.a_cycles));
              ("mispredicted", rel_error (fun fr -> fr.a_mispred));
              ("loads", rel_error (fun fr -> fr.a_cache.loads));
              ("l1_misses", rel_error (fun fr -> fr.a_cache.l1_misses));
              ("l2_misses", rel_error (fun fr -> fr.a_cache.l2_misses)) ]
          in
          { cycles = est_of (fun fr -> fr.a_cycles);
            retired = total_retired;
            retired_by_class = classes;
            emulated_insts = total_insts;
            wrong_path_insts = est_of (fun fr -> fr.a_wrong_path);
            branches =
              { conditionals = est_of (fun fr -> fr.a_cond);
                mispredicted = est_of (fun fr -> fr.a_mispred);
                indirects = est_of (fun fr -> fr.a_ind);
                misfetched = est_of (fun fr -> fr.a_misfetch) };
            cache =
              { loads = est_of (fun fr -> fr.a_cache.loads);
                stores = est_of (fun fr -> fr.a_cache.stores);
                l1_hits = est_of (fun fr -> fr.a_cache.l1_hits);
                l1_misses = est_of (fun fr -> fr.a_cache.l1_misses);
                l2_hits = est_of (fun fr -> fr.a_cache.l2_hits);
                l2_misses = est_of (fun fr -> fr.a_cache.l2_misses);
                writebacks = est_of (fun fr -> fr.a_cache.writebacks);
                merged_misses = est_of (fun fr -> fr.a_cache.merged_misses) };
            memo = None;
            pcache = None;
            final_state;
            truncated = false;
            provenance =
              Some
                { prov_strategy = "sampled";
                  prov_intervals = n;
                  prov_accepted = 0;
                  prov_repaired = 0;
                  prov_fallback = None;
                  prov_errors = errors } }
        end
      end
    end
  end

(* ---------------------------------------------------------------- *)
(* The unified engine front end: one configuration record instead of a
   fan of optional arguments, serialisable so sweep manifests and reports
   can record exactly which configuration produced each result. *)

module J = Fastsim_obs.Json

(* Shared strict JSON-object decoder: one pass over the members, rejecting
   unknown AND duplicate keys, so a typo'd or doubled field in a manifest,
   fuzz artifact or wire request fails loudly instead of silently applying
   last-wins. [path] is the JSON path of the object being decoded (e.g.
   ["$.params"]) so every error names the offending location.
   [error : string -> unit] must raise. *)
let strict_obj ~error ~path ~field init j =
  match j with
  | J.Obj members ->
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (k, v) ->
        if Hashtbl.mem seen k then
          error (Printf.sprintf "duplicate field %S at %s" k path);
        Hashtbl.add seen k ();
        match field acc k v with
        | Some acc -> acc
        | None ->
          error (Printf.sprintf "unknown field %S at %s" k path);
          assert false)
      init members
  | _ ->
    error (Printf.sprintf "%s must be an object" path);
    assert false

module Spec = struct
  type observer = int -> Uarch.Detailed.t -> Uarch.Detailed.cycle_result -> unit

  type t = {
    params : Uarch.Params.t;
    cache_config : Cachesim.Config.t;
    predictor : predictor_kind;
    max_cycles : int;
    policy : Memo.Pcache.policy;
    pcache : Memo.Pcache.t option;
    store : Memo.Store.t option;
    obs : Fastsim_obs.Ctx.t option;
    observer : observer option;
  }

  let default =
    { params = Uarch.Params.default;
      cache_config = Cachesim.Config.default;
      predictor = Standard;
      max_cycles = max_int;
      policy = Memo.Pcache.Unbounded;
      pcache = None;
      store = None;
      obs = None;
      observer = None }

  let with_params params t = { t with params }
  let with_cache_config cache_config t = { t with cache_config }
  let with_predictor predictor t = { t with predictor }
  let with_max_cycles max_cycles t = { t with max_cycles }
  let with_policy policy t = { t with policy }
  let with_pcache pc t = { t with pcache = Some pc }
  let with_store store t = { t with store = Some store }
  let with_obs obs t = { t with obs = Some obs }
  let with_observer f t = { t with observer = Some f }

  (* ---- string conversions shared by the CLI and the sweep driver ---- *)

  let predictor_to_string = function
    | Standard -> "standard"
    | Not_taken -> "not-taken"
    | Taken -> "taken"

  let predictor_of_string = function
    | "standard" -> Ok Standard
    | "not-taken" | "not_taken" -> Ok Not_taken
    | "taken" -> Ok Taken
    | s -> Error (Printf.sprintf "unknown predictor %S" s)

  let policy_to_string = function
    | Memo.Pcache.Unbounded -> "unbounded"
    | Memo.Pcache.Flush_on_full n -> Printf.sprintf "flush:%d" n
    | Memo.Pcache.Copying_gc n -> Printf.sprintf "copy:%d" n
    | Memo.Pcache.Generational_gc { nursery; total } ->
      Printf.sprintf "gen:%d:%d" nursery total

  let policy_of_string s =
    let num n =
      match int_of_string_opt n with
      | Some i when i > 0 -> Ok i
      | _ -> Error (Printf.sprintf "bad byte budget %S in policy %S" n s)
    in
    match String.split_on_char ':' s with
    | [ "unbounded" ] -> Ok Memo.Pcache.Unbounded
    | [ "flush"; n ] ->
      Result.map (fun n -> Memo.Pcache.Flush_on_full n) (num n)
    | [ "copy"; n ] -> Result.map (fun n -> Memo.Pcache.Copying_gc n) (num n)
    | [ "gen"; n; t ] ->
      Result.bind (num n) (fun nursery ->
          Result.map
            (fun total -> Memo.Pcache.Generational_gc { nursery; total })
            (num t))
    | _ ->
      Error
        (Printf.sprintf
           "bad policy %S (want unbounded, flush:BYTES, copy:BYTES or \
            gen:NURSERY:TOTAL)" s)

  let engine_to_string = function
    | `Fast -> "fast"
    | `Slow -> "slow"
    | `Baseline -> "baseline"

  let engine_of_string = function
    | "fast" -> Ok `Fast
    | "slow" -> Ok `Slow
    | "baseline" -> Ok `Baseline
    | s -> Error (Printf.sprintf "unknown engine %S" s)

  (* ---- JSON (de)serialisation -------------------------------------- *)
  (* The runtime-only fields (pcache, obs, observer) are not represented:
     a decoded spec always has them unset. Decoding overlays the present
     fields onto {!default} and rejects unknown and duplicate keys, so a
     typo in a manifest fails loudly rather than silently running the
     default. The [Result]-returning decoders are the primary forms (the
     serve daemon, manifests and fuzz artifacts all decode untrusted
     input); the raising versions are deprecated thin wrappers.

     Versioning: documents carry a "version" field. Version 1 (or an
     absent field — every pre-versioning document) is the original wire
     format; version 2 added [issue_width], [fu_latency] and
     [issue_ports]. Decoding is strictly backward compatible: every new
     field is an optional overlay onto the same defaults the old engine
     hard-coded, so a v1 document decodes to a spec with identical
     behaviour. Unknown future versions are rejected. *)

  let version = 2

  let fu_table_to_json value_of : J.t =
    Obj
      (Array.to_list
         (Array.map
            (fun c -> (Isa.Instr.fu_name c, value_of c))
            Isa.Instr.fu_classes))

  let params_to_json (p : Uarch.Params.t) : J.t =
    Obj
      [ ("fetch_width", Int p.fetch_width);
        ("decode_width", Int p.decode_width);
        ("issue_width", Int p.issue_width);
        ("retire_width", Int p.retire_width);
        ("active_list", Int p.active_list);
        ("int_queue", Int p.int_queue);
        ("fp_queue", Int p.fp_queue);
        ("addr_queue", Int p.addr_queue);
        ("int_units", Int p.int_units);
        ("fp_units", Int p.fp_units);
        ("mem_units", Int p.mem_units);
        ( "fu_latency",
          fu_table_to_json (fun c ->
              J.Int p.fu_latency.(Isa.Instr.fu_index c)) );
        ( "issue_ports",
          fu_table_to_json (fun c ->
              J.Str
                (Uarch.Params.port_name
                   p.issue_ports.(Isa.Instr.fu_index c))) );
        ("phys_int_regs", Int p.phys_int_regs);
        ("phys_fp_regs", Int p.phys_fp_regs);
        ("max_spec_branches", Int p.max_spec_branches) ]

  let cache_config_to_json (c : Cachesim.Config.t) : J.t =
    Obj
      [ ("l1_size", Int c.l1_size);
        ("l1_ways", Int c.l1_ways);
        ("l1_line", Int c.l1_line);
        ("l1_hit_latency", Int c.l1_hit_latency);
        ("l1_miss_penalty", Int c.l1_miss_penalty);
        ("l1_mshrs", Int c.l1_mshrs);
        ("l2_size", Int c.l2_size);
        ("l2_ways", Int c.l2_ways);
        ("l2_line", Int c.l2_line);
        ("l2_hit_latency", Int c.l2_hit_latency);
        ("l2_mshrs", Int c.l2_mshrs);
        ("mem_latency", Int c.mem_latency);
        ("bus_width", Int c.bus_width) ]

  let to_json t : J.t =
    let fields =
      [ ("version", J.Int version);
        ("params", params_to_json t.params);
        ("cache_config", cache_config_to_json t.cache_config);
        ("predictor", J.Str (predictor_to_string t.predictor));
        ("policy", J.Str (policy_to_string t.policy)) ]
    in
    let fields =
      if t.max_cycles = max_int then fields
      else fields @ [ ("max_cycles", J.Int t.max_cycles) ]
    in
    Obj fields

  let spec_error fmt = Printf.ksprintf (fun m -> failwith ("spec: " ^ m)) fmt

  let fold_obj ~path ~field init j =
    strict_obj ~error:(fun m -> failwith ("spec: " ^ m)) ~path ~field init j

  (* Typed accessors that blame the offending JSON path on a mismatch. *)
  let int_at path v =
    match J.to_int v with
    | n -> n
    | exception J.Parse_error m -> spec_error "%s: %s" path m

  let str_at path v =
    match J.to_str v with
    | s -> s
    | exception J.Parse_error m -> spec_error "%s: %s" path m

  (* Runs a raising decoder and reflects its failures — including
     ill-typed values, which surface as [Json.Parse_error] from the
     accessors — into a [Result]. *)
  let decode_result decode j =
    match decode j with
    | v -> Ok v
    | exception Failure m -> Error m
    | exception J.Parse_error m -> Error ("spec: " ^ m)

  let fu_index_of_name path k =
    let rec find i =
      if i >= Isa.Instr.fu_count then
        spec_error "%s: unknown fu class %S" path k
      else if String.equal (Isa.Instr.fu_name Isa.Instr.fu_classes.(i)) k
      then i
      else find (i + 1)
    in
    find 0

  (* Per-fu-class table ({"int-alu": v, ...}): overlays present entries
     onto a copy of [base] (never onto [base] itself — records derived
     from [default] share its arrays). *)
  let fu_table_decode ~path ~value base j =
    let a = Array.copy base in
    fold_obj ~path () j ~field:(fun () k v ->
        let idx = fu_index_of_name path k in
        a.(idx) <- value (path ^ "." ^ k) v;
        Some ());
    a

  let params_decode ?(path = "$.params") j : Uarch.Params.t =
    fold_obj ~path Uarch.Params.default j
      ~field:(fun (p : Uarch.Params.t) k v ->
        let i () = int_at (path ^ "." ^ k) v in
        match k with
        | "fetch_width" -> Some { p with fetch_width = i () }
        | "decode_width" -> Some { p with decode_width = i () }
        | "issue_width" -> Some { p with issue_width = i () }
        | "retire_width" -> Some { p with retire_width = i () }
        | "active_list" -> Some { p with active_list = i () }
        | "int_queue" -> Some { p with int_queue = i () }
        | "fp_queue" -> Some { p with fp_queue = i () }
        | "addr_queue" -> Some { p with addr_queue = i () }
        | "int_units" -> Some { p with int_units = i () }
        | "fp_units" -> Some { p with fp_units = i () }
        | "mem_units" -> Some { p with mem_units = i () }
        | "fu_latency" ->
          Some
            { p with
              fu_latency =
                fu_table_decode ~path:(path ^ ".fu_latency") ~value:int_at
                  p.fu_latency v }
        | "issue_ports" ->
          Some
            { p with
              issue_ports =
                fu_table_decode ~path:(path ^ ".issue_ports")
                  ~value:(fun path v ->
                    match Uarch.Params.port_of_string (str_at path v) with
                    | Ok port -> port
                    | Error m -> spec_error "%s: %s" path m)
                  p.issue_ports v }
        | "phys_int_regs" -> Some { p with phys_int_regs = i () }
        | "phys_fp_regs" -> Some { p with phys_fp_regs = i () }
        | "max_spec_branches" -> Some { p with max_spec_branches = i () }
        | _ -> None)

  let cache_config_decode ?(path = "$.cache_config") j : Cachesim.Config.t =
    fold_obj ~path Cachesim.Config.default j
      ~field:(fun (c : Cachesim.Config.t) k v ->
        let i () = int_at (path ^ "." ^ k) v in
        match k with
        | "l1_size" -> Some { c with l1_size = i () }
        | "l1_ways" -> Some { c with l1_ways = i () }
        | "l1_line" -> Some { c with l1_line = i () }
        | "l1_hit_latency" -> Some { c with l1_hit_latency = i () }
        | "l1_miss_penalty" -> Some { c with l1_miss_penalty = i () }
        | "l1_mshrs" -> Some { c with l1_mshrs = i () }
        | "l2_size" -> Some { c with l2_size = i () }
        | "l2_ways" -> Some { c with l2_ways = i () }
        | "l2_line" -> Some { c with l2_line = i () }
        | "l2_hit_latency" -> Some { c with l2_hit_latency = i () }
        | "l2_mshrs" -> Some { c with l2_mshrs = i () }
        | "mem_latency" -> Some { c with mem_latency = i () }
        | "bus_width" -> Some { c with bus_width = i () }
        | _ -> None)

  let decode j : t =
    let ok_or_fail path = function
      | Ok v -> v
      | Error m -> spec_error "%s: %s" path m
    in
    fold_obj ~path:"$" default j ~field:(fun t k v ->
        match k with
        | "version" ->
          let n = int_at "$.version" v in
          if n < 1 || n > version then
            spec_error
              "$.version: unsupported spec version %d (this decoder knows \
               1..%d)" n version;
          Some t
        | "params" -> Some { t with params = params_decode v }
        | "cache_config" ->
          Some { t with cache_config = cache_config_decode v }
        | "predictor" ->
          Some
            { t with
              predictor =
                ok_or_fail "$.predictor"
                  (predictor_of_string (str_at "$.predictor" v)) }
        | "policy" ->
          Some
            { t with
              policy =
                ok_or_fail "$.policy"
                  (policy_of_string (str_at "$.policy" v)) }
        | "max_cycles" -> Some { t with max_cycles = int_at "$.max_cycles" v }
        | _ -> None)

  let params_of_json_result j = decode_result params_decode j
  let cache_config_of_json_result j = decode_result cache_config_decode j
  let of_json_result j = decode_result decode j

  (* ---- self-describing schema --------------------------------------- *)
  (* One entry per accepted JSON path, with the type the decoder expects,
     the default the field overlays, and a one-line doc. This is the
     source for [fastsim spec schema] and [fastsim sweep --list-params];
     docs/CONFIG.md is the prose companion. The table is written by hand
     next to the decoders above — a new decoder case and its schema row
     belong in the same change. *)

  type schema_field = {
    sf_path : string;     (* e.g. "$.params.fetch_width" *)
    sf_type : string;     (* human-readable type *)
    sf_default : string;  (* rendered default value *)
    sf_doc : string;
  }

  let schema : schema_field list =
    let p = Uarch.Params.default in
    let c = Cachesim.Config.default in
    let f sf_path sf_type sf_default sf_doc =
      { sf_path; sf_type; sf_default; sf_doc }
    in
    let pi name v doc = f ("$.params." ^ name) "int" (string_of_int v) doc in
    let ci name v doc =
      f ("$.cache_config." ^ name) "int" (string_of_int v) doc
    in
    [ f "$.version" "int" (string_of_int version)
        "wire-format version; absent means 1 (pre-versioning documents); \
         versions 1 through the current one decode, later are rejected";
      pi "fetch_width" p.fetch_width "instructions fetched per cycle";
      pi "decode_width" p.decode_width
        "instructions decoded and renamed per cycle";
      pi "issue_width" p.issue_width
        "total instructions issued per cycle across all ports; 0 means \
         uncapped (per-port unit counts still limit issue)";
      pi "retire_width" p.retire_width "instructions retired per cycle";
      pi "active_list" p.active_list
        "active-list (reorder buffer) entries; bounds in-flight \
         instructions and the snapshot entry count, so at most 255";
      pi "int_queue" p.int_queue "integer issue-queue entries";
      pi "fp_queue" p.fp_queue "floating-point issue-queue entries";
      pi "addr_queue" p.addr_queue "address (memory) issue-queue entries";
      pi "int_units" p.int_units "functional units on the int port";
      pi "fp_units" p.fp_units "functional units on the fp port";
      pi "mem_units" p.mem_units "functional units on the mem port";
      f "$.params.fu_latency" "{fu-class: int}"
        (J.to_string
           (fu_table_to_json (fun cl ->
                J.Int p.fu_latency.(Isa.Instr.fu_index cl))))
        "execution latency in cycles per functional-unit class; a partial \
         object overlays the defaults; every latency must be >= 1";
      f "$.params.issue_ports" "{fu-class: \"int\"|\"fp\"|\"mem\"}"
        (J.to_string
           (fu_table_to_json (fun cl ->
                J.Str
                  (Uarch.Params.port_name
                     p.issue_ports.(Isa.Instr.fu_index cl)))))
        "issue port — and therefore issue queue — per functional-unit \
         class; a partial object overlays the defaults";
      pi "phys_int_regs" p.phys_int_regs
        "integer physical registers; the rename freelist holds this minus \
         the 32 architectural registers, so it must exceed 32";
      pi "phys_fp_regs" p.phys_fp_regs
        "floating-point physical registers; must exceed 32, as above";
      pi "max_spec_branches" p.max_spec_branches
        "unresolved conditional branches fetch may speculate past \
         (= branch shadow-map slots)";
      ci "l1_size" c.l1_size "L1 data cache size in bytes";
      ci "l1_ways" c.l1_ways "L1 associativity";
      ci "l1_line" c.l1_line "L1 line size in bytes";
      ci "l1_hit_latency" c.l1_hit_latency "cycles to data on an L1 hit";
      ci "l1_miss_penalty" c.l1_miss_penalty
        "cycles to reach L2 after an L1 miss";
      ci "l1_mshrs" c.l1_mshrs "L1 outstanding-miss registers";
      ci "l2_size" c.l2_size "L2 cache size in bytes";
      ci "l2_ways" c.l2_ways "L2 associativity";
      ci "l2_line" c.l2_line "L2 line size in bytes";
      ci "l2_hit_latency" c.l2_hit_latency "L2 array access time in cycles";
      ci "l2_mshrs" c.l2_mshrs "L2 outstanding-miss registers";
      ci "mem_latency" c.mem_latency
        "cycles from bus grant to the first data beat";
      ci "bus_width" c.bus_width "bytes per bus cycle";
      f "$.predictor" "string"
        (Printf.sprintf "%S" (predictor_to_string default.predictor))
        "branch predictor: \"standard\" (BHT + BTB + RAS), \"not-taken\" \
         or \"taken\"";
      f "$.policy" "string"
        (Printf.sprintf "%S" (policy_to_string default.policy))
        "p-action cache policy (fast engine only): \"unbounded\", \
         \"flush:BYTES\", \"copy:BYTES\" or \"gen:NURSERY:TOTAL\"";
      f "$.max_cycles" "int" "(absent: unlimited)"
        "cycle budget; the run stops and reports truncated = true when it \
         is reached" ]

  let schema_to_json () : J.t =
    Obj
      [ ("version", Int version);
        ( "fields",
          List
            (Stdlib.List.map
               (fun s ->
                 J.Obj
                   [ ("path", J.Str s.sf_path);
                     ("type", J.Str s.sf_type);
                     ("default", J.Str s.sf_default);
                     ("doc", J.Str s.sf_doc) ])
               schema) ) ]

  let unwrap = function Ok v -> v | Error m -> failwith m
  let params_of_json j = unwrap (params_of_json_result j)
  let cache_config_of_json j = unwrap (cache_config_of_json_result j)
  let of_json j = unwrap (of_json_result j)
end

(* ---------------------------------------------------------------- *)
(* Wire codec for {!result}. Every field — including the final
   architectural state and the optional memo/pcache statistics — crosses
   the JSON boundary and decodes back structurally equal (floats rely on
   Json's exact round-trip printing). The sweep report and the serve
   daemon both emit this shape; derived conveniences (ipc,
   detailed_fraction, avg_chain) ride along for human consumers and are
   accepted-but-ignored on decode. *)

let result_error fmt = Printf.ksprintf (fun m -> failwith ("result: " ^ m)) fmt

(* Imperative flavour of [strict_obj]: [field] returns whether it
   recognised the key and stashes the value in a ref. *)
let result_obj ~path ~field j =
  strict_obj ~error:(fun m -> failwith ("result: " ^ m)) ~path () j
    ~field:(fun () k v -> if field k v then Some () else None)

let result_need what = function
  | Some v -> v
  | None -> result_error "missing %s" what

let branch_stats_to_json (b : branch_stats) : J.t =
  Obj
    [ ("conditionals", Int b.conditionals);
      ("mispredicted", Int b.mispredicted);
      ("indirects", Int b.indirects);
      ("misfetched", Int b.misfetched) ]

let branch_stats_decode j : branch_stats =
  let c = ref None and m = ref None and i = ref None and f = ref None in
  result_obj ~path:"$.branches" j ~field:(fun k v ->
      match k with
      | "conditionals" -> c := Some (J.to_int v); true
      | "mispredicted" -> m := Some (J.to_int v); true
      | "indirects" -> i := Some (J.to_int v); true
      | "misfetched" -> f := Some (J.to_int v); true
      | _ -> false);
  { conditionals = result_need "branches.conditionals" !c;
    mispredicted = result_need "branches.mispredicted" !m;
    indirects = result_need "branches.indirects" !i;
    misfetched = result_need "branches.misfetched" !f }

let cache_stats_to_json (c : Cachesim.Hierarchy.stats) : J.t =
  Obj
    [ ("loads", Int c.loads);
      ("stores", Int c.stores);
      ("l1_hits", Int c.l1_hits);
      ("l1_misses", Int c.l1_misses);
      ("l2_hits", Int c.l2_hits);
      ("l2_misses", Int c.l2_misses);
      ("writebacks", Int c.writebacks);
      ("merged_misses", Int c.merged_misses) ]

let cache_stats_decode j : Cachesim.Hierarchy.stats =
  let got = Hashtbl.create 8 in
  result_obj ~path:"$.cache" j ~field:(fun k v ->
      match k with
      | "loads" | "stores" | "l1_hits" | "l1_misses" | "l2_hits" | "l2_misses"
      | "writebacks" | "merged_misses" ->
        Hashtbl.replace got k (J.to_int v);
        true
      | _ -> false);
  let need k =
    match Hashtbl.find_opt got k with
    | Some v -> v
    | None -> result_error "missing cache.%s" k
  in
  { Cachesim.Hierarchy.loads = need "loads";
    stores = need "stores";
    l1_hits = need "l1_hits";
    l1_misses = need "l1_misses";
    l2_hits = need "l2_hits";
    l2_misses = need "l2_misses";
    writebacks = need "writebacks";
    merged_misses = need "merged_misses" }

let memo_stats_to_json (m : Memo.Stats.t) : J.t =
  Obj
    [ ("detailed_retired", Int m.detailed_retired);
      ("replayed_retired", Int m.replayed_retired);
      ("detailed_cycles", Int m.detailed_cycles);
      ("replayed_cycles", Int m.replayed_cycles);
      ("detailed_fraction", Float (Memo.Stats.detailed_fraction m));
      ("actions_replayed", Int m.actions_replayed);
      ("groups_replayed", Int m.groups_replayed);
      ("chain_current", Int m.chain_current);
      ("chain_max", Int m.chain_max);
      ("avg_chain", Float (Memo.Stats.avg_chain m));
      ("episodes", Int m.episodes);
      ("detailed_entries", Int m.detailed_entries) ]

let memo_stats_decode j : Memo.Stats.t =
  let s = Memo.Stats.create () in
  result_obj ~path:"$.memo" j ~field:(fun k v ->
      match k with
      | "detailed_retired" -> s.Memo.Stats.detailed_retired <- J.to_int v; true
      | "replayed_retired" -> s.Memo.Stats.replayed_retired <- J.to_int v; true
      | "detailed_cycles" -> s.Memo.Stats.detailed_cycles <- J.to_int v; true
      | "replayed_cycles" -> s.Memo.Stats.replayed_cycles <- J.to_int v; true
      | "actions_replayed" -> s.Memo.Stats.actions_replayed <- J.to_int v; true
      | "groups_replayed" -> s.Memo.Stats.groups_replayed <- J.to_int v; true
      | "chain_current" -> s.Memo.Stats.chain_current <- J.to_int v; true
      | "chain_max" -> s.Memo.Stats.chain_max <- J.to_int v; true
      | "episodes" -> s.Memo.Stats.episodes <- J.to_int v; true
      | "detailed_entries" -> s.Memo.Stats.detailed_entries <- J.to_int v; true
      | "detailed_fraction" | "avg_chain" -> ignore (J.to_float v); true
      | _ -> false);
  s

let pcache_counters_to_json (p : Memo.Pcache.counters) : J.t =
  Obj
    [ ("static_configs", Int p.static_configs);
      ("static_actions", Int p.static_actions);
      ("live_configs", Int p.live_configs);
      ("modeled_bytes", Int p.modeled_bytes);
      ("peak_modeled_bytes", Int p.peak_modeled_bytes);
      ("flushes", Int p.flushes);
      ("minor_collections", Int p.minor_collections);
      ("full_collections", Int p.full_collections);
      ("last_gc_survivors", Int p.last_gc_survivors);
      ("last_gc_population", Int p.last_gc_population);
      ("stride_compactions", Int p.stride_compactions);
      ("stride_expansions", Int p.stride_expansions) ]

let pcache_counters_decode j : Memo.Pcache.counters =
  let got = Hashtbl.create 16 in
  result_obj ~path:"$.pcache" j ~field:(fun k v ->
      match k with
      | "static_configs" | "static_actions" | "live_configs" | "modeled_bytes"
      | "peak_modeled_bytes" | "flushes" | "minor_collections"
      | "full_collections" | "last_gc_survivors" | "last_gc_population"
      | "stride_compactions" | "stride_expansions" ->
        Hashtbl.replace got k (J.to_int v);
        true
      | _ -> false);
  let need k =
    match Hashtbl.find_opt got k with
    | Some v -> v
    | None -> result_error "missing pcache.%s" k
  in
  { Memo.Pcache.static_configs = need "static_configs";
    static_actions = need "static_actions";
    live_configs = need "live_configs";
    modeled_bytes = need "modeled_bytes";
    peak_modeled_bytes = need "peak_modeled_bytes";
    flushes = need "flushes";
    minor_collections = need "minor_collections";
    full_collections = need "full_collections";
    last_gc_survivors = need "last_gc_survivors";
    last_gc_population = need "last_gc_population";
    stride_compactions = need "stride_compactions";
    stride_expansions = need "stride_expansions" }

(* FP registers must round-trip bit-exactly, and JSON has no literal
   for NaN or the infinities (the printer would emit null). Finite
   values stay ordinary JSON floats; non-finite ones are carried as
   "bits:<16 hex digits>" strings of their IEEE-754 representation. *)
let freg_to_json v =
  if Float.is_finite v then J.Float v
  else J.Str (Printf.sprintf "bits:%016Lx" (Int64.bits_of_float v))

let freg_of_json = function
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | J.Str s when String.length s = 21 && String.sub s 0 5 = "bits:" -> (
    match Int64.of_string_opt ("0x" ^ String.sub s 5 16) with
    | Some bits -> Int64.float_of_bits bits
    | None -> result_error "final_state.fregs: bad bits literal %S" s)
  | _ -> result_error "final_state.fregs: expected a float"

let final_state_to_json (s : Emu.Arch_state.t) : J.t =
  Obj
    [ ("pc", Int s.Emu.Arch_state.pc);
      ( "iregs",
        List
          (Array.to_list
             (Array.map (fun v -> J.Int v) s.Emu.Arch_state.iregs)) );
      ( "fregs",
        List
          (Array.to_list
             (Array.map freg_to_json s.Emu.Arch_state.fregs)) ) ]

let final_state_decode j : Emu.Arch_state.t =
  let pc = ref None and iregs = ref None and fregs = ref None in
  result_obj ~path:"$.final_state" j ~field:(fun k v ->
      match k with
      | "pc" -> pc := Some (J.to_int v); true
      | "iregs" ->
        iregs := Some (Array.of_list (List.map J.to_int (J.to_list v)));
        true
      | "fregs" ->
        fregs := Some (Array.of_list (List.map freg_of_json (J.to_list v)));
        true
      | _ -> false);
  { Emu.Arch_state.pc = result_need "final_state.pc" !pc;
    iregs = result_need "final_state.iregs" !iregs;
    fregs = result_need "final_state.fregs" !fregs }

let provenance_to_json (p : provenance) : J.t =
  Obj
    ([ ("strategy", J.Str p.prov_strategy);
       ("intervals", J.Int p.prov_intervals);
       ("accepted", J.Int p.prov_accepted);
       ("repaired", J.Int p.prov_repaired) ]
    @ (match p.prov_fallback with
       | None -> []
       | Some f -> [ ("fallback", J.Str f) ])
    @
    match p.prov_errors with
    | [] -> []
    | errs ->
      [ ("errors", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) errs)) ])

let provenance_decode j : provenance =
  let strat = ref None and n = ref None and acc = ref None and rep = ref None in
  let fb = ref None and errs = ref [] in
  result_obj ~path:"$.provenance" j ~field:(fun k v ->
      match k with
      | "strategy" -> strat := Some (J.to_str v); true
      | "intervals" -> n := Some (J.to_int v); true
      | "accepted" -> acc := Some (J.to_int v); true
      | "repaired" -> rep := Some (J.to_int v); true
      | "fallback" -> fb := Some (J.to_str v); true
      | "errors" ->
        (match v with
         | J.Obj members ->
           errs := List.map (fun (k, v) -> (k, J.to_float v)) members
         | _ -> result_error "provenance.errors must be an object");
        true
      | _ -> false);
  { prov_strategy = result_need "provenance.strategy" !strat;
    prov_intervals = result_need "provenance.intervals" !n;
    prov_accepted = result_need "provenance.accepted" !acc;
    prov_repaired = result_need "provenance.repaired" !rep;
    prov_fallback = !fb;
    prov_errors = !errs }

let result_to_json (r : result) : J.t =
  Obj
    ([ ("cycles", J.Int r.cycles);
       ("retired", J.Int r.retired);
       ( "ipc",
         J.Float (float_of_int r.retired /. float_of_int (max 1 r.cycles)) );
       ("emulated_insts", J.Int r.emulated_insts);
       ("wrong_path_insts", J.Int r.wrong_path_insts);
       ( "retired_by_class",
         J.List
           (Array.to_list (Array.map (fun n -> J.Int n) r.retired_by_class))
       );
       ("branches", branch_stats_to_json r.branches);
       ("cache", cache_stats_to_json r.cache) ]
    @ (match r.memo with
       | None -> []
       | Some m -> [ ("memo", memo_stats_to_json m) ])
    @ (match r.pcache with
       | None -> []
       | Some p -> [ ("pcache", pcache_counters_to_json p) ])
    @ (match r.provenance with
       | None -> []
       | Some p -> [ ("provenance", provenance_to_json p) ])
    @ [ ("final_state", final_state_to_json r.final_state);
        ("truncated", J.Bool r.truncated) ])

let result_of_json j : (result, string) Stdlib.result =
  let decode j =
    let cycles = ref None and retired = ref None in
    let emulated = ref None and wrong_path = ref None in
    let classes = ref None and branches = ref None and cache = ref None in
    let memo = ref None and pcache = ref None and provenance = ref None in
    let final_state = ref None and truncated = ref None in
    result_obj ~path:"$" j ~field:(fun k v ->
        match k with
        | "cycles" -> cycles := Some (J.to_int v); true
        | "retired" -> retired := Some (J.to_int v); true
        | "ipc" -> ignore (J.to_float v); true
        | "emulated_insts" -> emulated := Some (J.to_int v); true
        | "wrong_path_insts" -> wrong_path := Some (J.to_int v); true
        | "retired_by_class" ->
          classes := Some (Array.of_list (List.map J.to_int (J.to_list v)));
          true
        | "branches" -> branches := Some (branch_stats_decode v); true
        | "cache" -> cache := Some (cache_stats_decode v); true
        | "memo" -> memo := Some (memo_stats_decode v); true
        | "pcache" -> pcache := Some (pcache_counters_decode v); true
        | "provenance" -> provenance := Some (provenance_decode v); true
        | "final_state" -> final_state := Some (final_state_decode v); true
        | "truncated" -> truncated := Some (J.to_bool v); true
        | _ -> false);
    { cycles = result_need "cycles" !cycles;
      retired = result_need "retired" !retired;
      retired_by_class = result_need "retired_by_class" !classes;
      emulated_insts = result_need "emulated_insts" !emulated;
      wrong_path_insts = result_need "wrong_path_insts" !wrong_path;
      branches = result_need "branches" !branches;
      cache = result_need "cache" !cache;
      memo = !memo;
      pcache = !pcache;
      final_state = result_need "final_state" !final_state;
      truncated = result_need "truncated" !truncated;
      provenance = !provenance }
  in
  match decode j with
  | v -> Ok v
  | exception Failure m -> Error m
  | exception J.Parse_error m -> Error ("result: " ^ m)

(* Baseline results are reshaped into {!result} so every engine answers
   through one type. The baseline model has no direct-execution
   decoupling and no per-class retirement accounting, so the fields it
   cannot produce are zero ([emulated_insts], [retired_by_class],
   conditional/indirect fetch counts) — only [mispredicted] is real. *)
let baseline_result (b : Baseline.result) : result =
  { cycles = b.Baseline.cycles;
    retired = b.Baseline.retired;
    retired_by_class = Array.make Isa.Instr.fu_count 0;
    emulated_insts = 0;
    wrong_path_insts = b.Baseline.wrong_path_insts;
    branches =
      { conditionals = 0;
        mispredicted = b.Baseline.mispredicts;
        indirects = 0;
        misfetched = 0 };
    cache = b.Baseline.cache;
    memo = None;
    pcache = None;
    final_state = b.Baseline.final_state;
    truncated = b.Baseline.truncated;
    provenance = None }

let run ?(strategy = Serial) ~engine (spec : Spec.t) prog =
  let serial () =
    match engine with
    | `Slow ->
      slow_sim ~params:spec.Spec.params ~cache_config:spec.Spec.cache_config
        ~predictor:spec.Spec.predictor ~max_cycles:spec.Spec.max_cycles
        ?observer:spec.Spec.observer ?obs:spec.Spec.obs prog
    | `Fast ->
      fast_sim ~params:spec.Spec.params ~cache_config:spec.Spec.cache_config
        ~predictor:spec.Spec.predictor ~max_cycles:spec.Spec.max_cycles
        ~policy:spec.Spec.policy ?pcache:spec.Spec.pcache
        ?store:spec.Spec.store ?obs:spec.Spec.obs prog
    | `Baseline ->
      let max_cycles =
        if spec.Spec.max_cycles = max_int then None
        else Some spec.Spec.max_cycles
      in
      baseline_result
        (Baseline.run ~cache_config:spec.Spec.cache_config ?max_cycles prog)
  in
  match (strategy, engine) with
  | Serial, _ -> serial ()
  | Parallel _, `Baseline ->
    let r = serial () in
    { r with
      provenance = Some (no_provenance ~strategy:"parallel" "baseline-engine") }
  | Sampled _, `Baseline ->
    let r = serial () in
    { r with
      provenance = Some (no_provenance ~strategy:"sampled" "baseline-engine") }
  | Parallel { interval_insns; warmup_insns; fanout }, ((`Fast | `Slow) as e)
    ->
    run_parallel ~engine:e ~params:spec.Spec.params
      ~cache_config:spec.Spec.cache_config ~predictor:spec.Spec.predictor
      ~max_cycles:spec.Spec.max_cycles ~policy:spec.Spec.policy
      ?store:spec.Spec.store ~pcache:spec.Spec.pcache ~serial prog
      ~interval_insns ~warmup_insns ~fanout
  | Sampled { sample_insns; sample_period; warmup_insns }, ((`Fast | `Slow) as e)
    ->
    run_sampled ~engine:e ~params:spec.Spec.params
      ~cache_config:spec.Spec.cache_config ~predictor:spec.Spec.predictor
      ~max_cycles:spec.Spec.max_cycles ~policy:spec.Spec.policy
      ?store:spec.Spec.store ~pcache:spec.Spec.pcache ~serial prog
      ~sample_insns ~sample_period ~warmup_insns
