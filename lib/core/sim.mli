(** The FastSim driver: speculative direct-execution + out-of-order timing
    simulation, with or without fast-forwarding (paper Figures 2 and 4).

    Two engines over identical components, selected by {!run}:

    - [`Slow] — "SlowSim": the detailed µ-architecture simulator runs
      every cycle (memoization disabled, nothing recorded).
    - [`Fast] — "FastSim": µ-architecture configurations and simulator
      actions are recorded in a p-action cache and replayed on repeat
      visits.

    Both produce {e identical} cycle counts and statistics — the paper's
    central claim, enforced by an extensive equivalence test suite.

    Both engines accept an optional {!Fastsim_obs.Ctx.t} observability
    context (event tracing, metrics, host profiling — see
    [docs/OBSERVABILITY.md]) through {!Spec.with_obs}. Observability is
    strictly passive: every field of {!result} is bit-identical with and
    without it, which the equivalence suite also enforces. *)

exception Deadlock of string
(** Raised when the pipeline makes no progress for an implausibly long
    time; indicates a broken test program (e.g. an infinite loop of direct
    jumps) or a simulator bug. Hitting a caller-supplied [max_cycles]
    budget is {e not} a deadlock: it returns a normal {!result} with
    [truncated = true]. *)

type branch_stats = {
  conditionals : int;  (** conditional-branch outcomes fetched. *)
  mispredicted : int;
  indirects : int;     (** indirect-jump outcomes fetched. *)
  misfetched : int;    (** indirect jumps the front end could not predict. *)
}

(** How to spread a strategy engine's interval work over workers. [f_map]
    evaluates [f 0 .. f (n-1)] (in any order, possibly concurrently) and
    returns the results in index order, [None] for a worker that crashed
    or was skipped — the stitcher repairs such intervals serially.
    [f_pcache_mode] says whether workers may share the caller's p-action
    cache ([`Inherit]: same process or fork-with-COW) or must build their
    own ([`Isolate]: e.g. domains, where sharing would race).
    {!Fastsim_exec.Strategy_pool.fanout} builds one over the process
    pool; {!inline_fanout} runs workers sequentially in-process. *)
type fanout = {
  f_map : 'a. (int -> 'a) -> int -> 'a option array;
  f_pcache_mode : [ `Inherit | `Isolate ];
}

val inline_fanout : fanout

(** Simulation strategy (docs/STRATEGY.md):

    - [Serial] — the plain engines; exact.
    - [Parallel] — time-parallel simulation: the program is split at
      functional checkpoints every [interval_insns] retired instructions;
      each interval is simulated independently (cold microarchitectural
      start [warmup_insns] earlier), and intervals whose boundary state
      matches the exact boundary are stitched, the rest re-simulated
      serially. The result is {e bit-identical} to the serial run.
    - [Sampled] — SMARTS-style sampling: every [sample_period] retired
      instructions, a window of [warmup_insns] (detailed, discarded) +
      [sample_insns] (measured) runs from a functional checkpoint; timing
      statistics are scaled estimates with per-statistic relative-error
      bounds in [provenance.prov_errors]; architectural results
      ([retired], [retired_by_class], [emulated_insts], [final_state])
      stay exact. *)
type strategy =
  | Serial
  | Parallel of {
      interval_insns : int;
      warmup_insns : int;
      fanout : fanout option;  (** [None] = {!inline_fanout}. *)
    }
  | Sampled of {
      sample_insns : int;
      sample_period : int;
      warmup_insns : int;
    }

(** How a non-serial strategy produced its result. *)
type provenance = {
  prov_strategy : string;  (** ["parallel"] or ["sampled"]. *)
  prov_intervals : int;    (** intervals simulated / windows sampled. *)
  prov_accepted : int;     (** parallel: intervals stitched speculatively. *)
  prov_repaired : int;     (** parallel: intervals re-simulated serially. *)
  prov_fallback : string option;
      (** set when the strategy fell back to a plain serial run (e.g.
          ["single-interval"], ["baseline-engine"], ["max-cycles"]). *)
  prov_errors : (string * float) list;
      (** sampled: relative 95%-confidence error per statistic. *)
}

val strategy_to_string : strategy -> string
(** ["serial"], ["parallel:INSNS:WARMUP"] or
    ["sampled:INSNS:PERIOD:WARMUP"] — the CLI/fuzz syntax. *)

val strategy_of_string : string -> (strategy, string) Stdlib.result
(** Inverse of {!strategy_to_string} (modulo [fanout], which is
    runtime-only and decodes to [None]). *)

type result = {
  cycles : int;             (** simulated cycles to program completion. *)
  retired : int;            (** instructions retired (includes [Halt]). *)
  retired_by_class : int array;
      (** retired instructions per functional-unit class, indexed by
          {!Isa.Instr.fu_index} — identical between engines, part of the
          paper's "all other processor statistics" claim. *)
  emulated_insts : int;     (** architectural instructions executed by
                                direct execution (excludes [Halt]). *)
  wrong_path_insts : int;   (** speculative instructions executed and then
                                rolled back. *)
  branches : branch_stats;  (** fetched control-flow outcomes (includes
                                wrong-path branches, which real hardware
                                also predicts); identical between
                                engines. *)
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;          (** FastSim only. *)
  pcache : Memo.Pcache.counters option;(** FastSim only. *)
  final_state : Emu.Arch_state.t;      (** architectural register state. *)
  truncated : bool;
      (** the run stopped at the [max_cycles] budget before the program
          halted. A truncated result is still exact for the cycles that
          ran: [cycles] equals the budget and every statistic reflects the
          simulation up to that point, identically for the fast and slow
          engines at {e every} truncation point (enforced by a property
          test sweeping budgets across replay-group boundaries). *)
  provenance : provenance option;
      (** [None] for serial runs (so serialised serial results are
          byte-identical to pre-strategy versions); [Some] whenever {!run}
          was given a non-serial strategy, including fallbacks. *)
}

type predictor_kind = Standard | Not_taken | Taken
(** [Standard] is the paper's front end (2-bit/512 BHT + BTB + RAS). *)

type engine = [ `Fast | `Slow | `Baseline ]
(** The three timing engines behind {!run}: the memoizing simulator, the
    detailed-every-cycle simulator, and the SimpleScalar-style
    register-update-unit baseline. ([Fastsim.Sim.functional] remains a
    separate, untimed entry point.) *)

(** A simulation specification: every knob of every engine in one record,
    with builder-style setters —

    {[
      Sim.Spec.default
      |> Sim.Spec.with_predictor Sim.Not_taken
      |> Sim.Spec.with_policy (Memo.Pcache.Flush_on_full 16_384)
      |> Sim.run ~engine:`Fast
    ]}

    The record splits into a {e serialisable} part (params, cache_config,
    predictor, max_cycles, policy — see {!Spec.to_json}/{!Spec.of_json})
    that sweep manifests and reports use to identify a configuration, and
    a {e runtime-only} part (pcache, obs, observer) that cannot cross a
    process boundary and is never serialised. *)
module Spec : sig
  type observer =
    int -> Uarch.Detailed.t -> Uarch.Detailed.cycle_result -> unit
  (** Per-cycle callback, honoured by the slow engine only (a
      fast-forwarded cycle never exists concretely to call it on). *)

  type t = {
    params : Uarch.Params.t;
    cache_config : Cachesim.Config.t;
    predictor : predictor_kind;
    max_cycles : int;         (** cycle budget; [max_int] = unlimited. *)
    policy : Memo.Pcache.policy;   (** fast engine only. *)
    pcache : Memo.Pcache.t option;
        (** warm p-action cache (fast engine only); overrides [policy]. *)
    store : Memo.Store.t option;
        (** chain store freshly created p-action caches intern stride
            rules into (fast engine only; ignored when [pcache] is set —
            a warm cache brings its own). The serve registry passes one
            shared store per program so every spec's cache dedupes its
            compressed chains against the others'. Runtime-only, never
            serialised. *)
    obs : Fastsim_obs.Ctx.t option;
    observer : observer option;
  }

  val default : t
  (** The paper's Table 1 processor and cache, standard predictor,
      unbounded p-action cache, no cycle limit, no instrumentation. *)

  val with_params : Uarch.Params.t -> t -> t
  val with_cache_config : Cachesim.Config.t -> t -> t
  val with_predictor : predictor_kind -> t -> t
  val with_max_cycles : int -> t -> t
  val with_policy : Memo.Pcache.policy -> t -> t
  val with_pcache : Memo.Pcache.t -> t -> t
  val with_store : Memo.Store.t -> t -> t
  val with_obs : Fastsim_obs.Ctx.t -> t -> t
  val with_observer : observer -> t -> t

  val predictor_to_string : predictor_kind -> string
  val predictor_of_string : string -> (predictor_kind, string) Stdlib.result

  val policy_to_string : Memo.Pcache.policy -> string
  (** ["unbounded"], ["flush:BYTES"], ["copy:BYTES"] or
      ["gen:NURSERY:TOTAL"] — the syntax the CLI and manifests accept. *)

  val policy_of_string : string -> (Memo.Pcache.policy, string) Stdlib.result

  val engine_to_string : engine -> string
  val engine_of_string : string -> (engine, string) Stdlib.result

  val version : int
  (** Current spec wire-format version, emitted by {!to_json}. Version 1
      is the pre-versioning format (a document without a ["version"]
      field); version 2 added [params.issue_width], [params.fu_latency]
      and [params.issue_ports]. {!of_json_result} accepts versions
      [1..version] — every new field overlays the default the older
      engine hard-coded, so old documents decode to identical behaviour —
      and rejects later versions. *)

  val params_to_json : Uarch.Params.t -> Fastsim_obs.Json.t
  val cache_config_to_json : Cachesim.Config.t -> Fastsim_obs.Json.t

  val to_json : t -> Fastsim_obs.Json.t
  (** Serialises the configuration part of the spec. Runtime-only fields
      (pcache, obs, observer) are omitted; [max_cycles] is omitted when
      unlimited. *)

  val of_json_result : Fastsim_obs.Json.t -> (t, string) Stdlib.result
  (** Decodes a (possibly partial) spec object by overlaying its fields
      on {!default}; [params] and [cache_config] sub-objects may also be
      partial. Unknown keys, {e duplicate} keys and ill-typed values are
      errors, so a manifest typo — or a malformed wire request — fails
      loudly instead of silently running the default (or last-wins)
      configuration, and every error message names the JSON path of the
      offending value (e.g. [$.params.fu_latency.mem]). This is the
      primary decoder; the serve daemon, manifest reader and fuzz
      loaders all consume untrusted input through it. *)

  val params_of_json_result :
    Fastsim_obs.Json.t -> (Uarch.Params.t, string) Stdlib.result

  val cache_config_of_json_result :
    Fastsim_obs.Json.t -> (Cachesim.Config.t, string) Stdlib.result

  val of_json : Fastsim_obs.Json.t -> t
    [@@deprecated "use of_json_result"]
  (** Raising wrapper over {!of_json_result}: raises [Failure] with the
      same message. Deprecated — new code should handle the [Result]. *)

  val params_of_json : Fastsim_obs.Json.t -> Uarch.Params.t
    [@@deprecated "use params_of_json_result"]

  val cache_config_of_json : Fastsim_obs.Json.t -> Cachesim.Config.t
    [@@deprecated "use cache_config_of_json_result"]

  (** {2 Self-describing schema}

      One {!schema_field} per JSON path the decoders accept, used by
      [fastsim spec schema] and [fastsim sweep --list-params] (and kept
      in lock-step with the decoders; [docs/CONFIG.md] is the prose
      companion). *)

  type schema_field = {
    sf_path : string;     (** JSON path, e.g. ["$.params.fetch_width"]. *)
    sf_type : string;     (** human-readable expected type. *)
    sf_default : string;  (** rendered default value. *)
    sf_doc : string;      (** one-line description. *)
  }

  val schema : schema_field list

  val schema_to_json : unit -> Fastsim_obs.Json.t
  (** [{"version": v, "fields": [{"path", "type", "default", "doc"}...]}] *)
end

val result_to_json : result -> Fastsim_obs.Json.t
(** Serialises a {!result} completely — including [final_state] and the
    optional [memo]/[pcache] statistics (omitted when [None]) — so that
    {!result_of_json} decodes it back structurally equal ([=]); float
    fields rely on {!Fastsim_obs.Json}'s exact round-trip printing. Also
    emits derived conveniences for human consumers ([ipc],
    [memo.detailed_fraction], [memo.avg_chain]) which the decoder accepts
    but ignores. The sweep report and the serve daemon's [result] frames
    both use this encoding. *)

val result_of_json : Fastsim_obs.Json.t -> (result, string) Stdlib.result
(** Strict decoder for {!result_to_json}'s output: unknown keys,
    duplicate keys, ill-typed values and missing required fields are
    errors. *)

val run : ?strategy:strategy -> engine:engine -> Spec.t -> Isa.Program.t -> result
(** Runs one simulation under [strategy] (default [Serial]). Non-serial
    strategies apply to [`Fast] and [`Slow] only ([`Baseline] falls back
    to a plain serial run, recorded in [provenance]); they ignore
    [Spec.obs]/[Spec.observer] (segments run uninstrumented) and report
    [memo = None]/[pcache = None]. [Parallel] results are bit-identical
    to the serial run of the same spec and engine (including truncation
    at [max_cycles]); [Sampled] results are estimates (exact
    architectural fields, scaled timing statistics with error bounds in
    [provenance]) and fall back to serial when [max_cycles] is bounded.

    [`Fast] and [`Slow] produce identical cycle
    counts and statistics (the paper's central claim); [`Baseline] runs
    the SimpleScalar-style model, which ignores [params], [predictor]
    (it has its own fixed front end matching the default configuration),
    [policy], [pcache], [obs] and [observer], and reports only the
    statistics its model tracks — [retired_by_class], [emulated_insts]
    and the conditional/indirect fetch counts are zero, [mispredicted]
    is real.

    For [`Fast], [Spec.pcache] starts from (and extends) an existing
    p-action cache — e.g. one restored with {!Memo.Persist.load} for the
    same program — and ignores [Spec.policy].

    [Spec.obs] attaches the observability layer to either timing engine:
    an event-trace sink (pipeline, cache and memoization events), a
    metrics registry, and host-profiling phase timers. Under memoization,
    fast-forwarded regions emit {e synthetic} events reconstructed from
    the replayed action chains (control outcomes, cache misses, per-group
    retirement, p-action cache activity), so a FastSim trace covers both
    detailed and replayed execution. See [docs/OBSERVABILITY.md].

    [Spec.observer] is called after every [`Slow] cycle with the cycle
    number, the live pipeline (inspect it with {!Uarch.Detailed.dump} /
    {!Uarch.Detailed.snapshot}), and that cycle's result — the hook behind
    the CLI's pipeline-trace command. The per-cycle callback is
    slow-engine-only (a fast-forwarded cycle never exists concretely to
    call it on). *)

val functional :
  ?max_insts:int -> Isa.Program.t -> Emu.Arch_state.t * Emu.Memory.t * int
(** Pure functional execution (no timing): the "original, uninstrumented
    executable" baseline of Tables 2 and 3. Re-exported from
    {!Emu.Emulator.run_functional}. *)
