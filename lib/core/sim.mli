(** The FastSim driver: speculative direct-execution + out-of-order timing
    simulation, with or without fast-forwarding (paper Figures 2 and 4).

    Two engines over identical components:

    - {!slow_sim} — "SlowSim": the detailed µ-architecture simulator runs
      every cycle (memoization disabled, nothing recorded).
    - {!fast_sim} — "FastSim": µ-architecture configurations and simulator
      actions are recorded in a p-action cache and replayed on repeat
      visits.

    Both produce {e identical} cycle counts and statistics — the paper's
    central claim, enforced by an extensive equivalence test suite.

    Both engines accept an optional {!Fastsim_obs.Ctx.t} observability
    context (event tracing, metrics, host profiling — see
    [docs/OBSERVABILITY.md]). Observability is strictly passive: every
    field of {!result} is bit-identical with and without it, which the
    equivalence suite also enforces. *)

exception Deadlock of string
(** Raised when the pipeline makes no progress for an implausibly long
    time; indicates a broken test program (e.g. an infinite loop of direct
    jumps) or a simulator bug. *)

type branch_stats = {
  conditionals : int;  (** conditional-branch outcomes fetched. *)
  mispredicted : int;
  indirects : int;     (** indirect-jump outcomes fetched. *)
  misfetched : int;    (** indirect jumps the front end could not predict. *)
}

type result = {
  cycles : int;             (** simulated cycles to program completion. *)
  retired : int;            (** instructions retired (includes [Halt]). *)
  retired_by_class : int array;
      (** retired instructions per functional-unit class, indexed by
          {!Isa.Instr.fu_index} — identical between engines, part of the
          paper's "all other processor statistics" claim. *)
  emulated_insts : int;     (** architectural instructions executed by
                                direct execution (excludes [Halt]). *)
  wrong_path_insts : int;   (** speculative instructions executed and then
                                rolled back. *)
  branches : branch_stats;  (** fetched control-flow outcomes (includes
                                wrong-path branches, which real hardware
                                also predicts); identical between
                                engines. *)
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;          (** FastSim only. *)
  pcache : Memo.Pcache.counters option;(** FastSim only. *)
  final_state : Emu.Arch_state.t;      (** architectural register state. *)
}

type predictor_kind = Standard | Not_taken | Taken
(** [Standard] is the paper's front end (2-bit/512 BHT + BTB + RAS). *)

val slow_sim :
  ?params:Uarch.Params.t ->
  ?cache_config:Cachesim.Config.t ->
  ?predictor:predictor_kind ->
  ?max_cycles:int ->
  ?observer:(int -> Uarch.Detailed.t -> Uarch.Detailed.cycle_result -> unit) ->
  ?obs:Fastsim_obs.Ctx.t ->
  Isa.Program.t ->
  result
(** [observer], if given, is called after every simulated cycle with the
    cycle number, the live pipeline (inspect it with
    {!Uarch.Detailed.dump} / {!Uarch.Detailed.snapshot}), and that cycle's
    result — the hook behind the CLI's pipeline-trace command. The
    per-cycle callback remains slow-sim-only (a fast-forwarded cycle never
    exists concretely to call it on), but that restriction no longer makes
    the fast engine a black box: [obs] tracing works under memoization —
    see {!fast_sim}.

    [obs] attaches the observability layer: an event-trace sink (pipeline,
    cache and memoization events), a metrics registry, and host-profiling
    phase timers. See [docs/OBSERVABILITY.md]. *)

val fast_sim :
  ?params:Uarch.Params.t ->
  ?cache_config:Cachesim.Config.t ->
  ?predictor:predictor_kind ->
  ?max_cycles:int ->
  ?policy:Memo.Pcache.policy ->
  ?pcache:Memo.Pcache.t ->
  ?obs:Fastsim_obs.Ctx.t ->
  Isa.Program.t ->
  result
(** Default policy is {!Memo.Pcache.Unbounded}. Passing [pcache] starts
    from (and extends) an existing p-action cache — e.g. one restored with
    {!Memo.Persist.load} for the same program — and ignores [policy].

    [obs] attaches the observability layer to the memoized engine too:
    fast-forwarded regions emit {e synthetic} events reconstructed from the
    replayed action chains (control outcomes, cache misses, per-group
    retirement, p-action cache activity), so a FastSim trace covers both
    detailed and replayed execution — lifting the historical
    slow-sim-only introspection restriction. Timing phases (detailed /
    replay / cachesim / emulation) are split by the profiler. Strictly
    passive: {!result} is bit-identical with and without [obs]. *)

val functional :
  ?max_insts:int -> Isa.Program.t -> Emu.Arch_state.t * Emu.Memory.t * int
(** Pure functional execution (no timing): the "original, uninstrumented
    executable" baseline of Tables 2 and 3. Re-exported from
    {!Emu.Emulator.run_functional}. *)
