(** Branch predictors.

    The paper's processor model (Table 1) uses a 2-bit, 512-entry branch
    history table for conditional branches. For indirect jumps — whose
    targets the paper treats purely as dynamic outcomes — we add a small
    branch target buffer and a return-address stack so that returns and
    stable computed jumps do not stall fetch forever; DESIGN.md documents
    this choice.

    All predictors are exposed both as their own types (for direct unit
    testing) and as {!Emu.Predictor.t} values for plugging into the
    emulator. *)

(** 2-bit saturating-counter branch history table. *)
module Twobit : sig
  type t

  val create : ?entries:int -> unit -> t
  (** [entries] must be a power of two; defaults to 512 (Table 1).
      Counters start at 1 (weakly not-taken). *)

  val predict : t -> pc:int -> bool
  val train : t -> pc:int -> taken:bool -> unit
  val entries : t -> int
end

(** Branch target buffer for indirect jumps (direct-mapped, tagged). *)
module Btb : sig
  type t

  val create : ?entries:int -> unit -> t
  (** [entries] must be a power of two; defaults to 64. *)

  val predict : t -> pc:int -> int option
  val train : t -> pc:int -> target:int -> unit
end

(** Return address stack. *)
module Ras : sig
  type t

  val create : ?depth:int -> unit -> t
  (** Defaults to 16 entries; overflow wraps (oldest entries lost). *)

  val push : t -> int -> unit
  val pop : t -> int option
  val depth : t -> int
end

val standard :
  ?prog:Isa.Program.t -> ?metrics:Fastsim_obs.Metrics.t -> unit ->
  Emu.Predictor.t
(** The paper's configuration: 2-bit/512-entry BHT for conditional
    branches, plus BTB and RAS for indirect jumps. If [prog] is given,
    [Jr r31] instructions are treated as returns and predicted with the
    RAS; all other indirect jumps use the BTB. [metrics] attaches the
    [bpred.*] observability counters (lookups, BTB hits, RAS pops/
    underflows — see [docs/OBSERVABILITY.md]); predictions are
    unaffected. *)

val static_not_taken : unit -> Emu.Predictor.t
(** Ablation predictor: always predicts not-taken, never predicts
    indirect targets. *)

val static_taken : unit -> Emu.Predictor.t
(** Ablation predictor: always predicts taken. *)

(** {1 State capture}

    The strategy engines (interval-parallel and sampled simulation,
    [docs/STRATEGY.md]) checkpoint a run's predictor tables at instruction
    boundaries. Because {!Emu.Predictor.t} is a record of closures, capture
    goes through a {!handle} that pairs a predictor with save/load over the
    tables it closes over. *)

type state = {
  s_bht : int array;          (** 2-bit counter table. *)
  s_btb_tags : int array;
  s_btb_targets : int array;
  s_ras : int array;
      (** live RAS entries, oldest first — rotation is normalised away,
          so byte-equal states are behaviourally equal. *)
}
(** Plain, closure-free predictor state: safe to [Marshal] across a
    process boundary and to compare for behavioural equality. *)

type handle = {
  h_pred : Emu.Predictor.t;
  h_save : unit -> state;     (** copies the live tables out. *)
  h_load : state -> unit;     (** overwrites the live tables. *)
}

val standard_handle :
  ?prog:Isa.Program.t -> ?metrics:Fastsim_obs.Metrics.t -> unit -> handle
(** {!standard} with capture: a fresh BHT/BTB/RAS instance whose state can
    be saved and restored. *)

val not_taken_handle : unit -> handle
(** {!static_not_taken} wrapped with empty (stateless) capture. *)

val taken_handle : unit -> handle
(** {!static_taken} wrapped with empty capture. *)
