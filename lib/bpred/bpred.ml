let check_pow2 name n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg (name ^ ": size must be a power of two")

module Twobit = struct
  type t = { counters : int array; mask : int }

  let create ?(entries = 512) () =
    check_pow2 "Twobit.create" entries;
    { counters = Array.make entries 1; mask = entries - 1 }

  let index t pc = (pc lsr 2) land t.mask
  let predict t ~pc = t.counters.(index t pc) >= 2

  let train t ~pc ~taken =
    let i = index t pc in
    let c = t.counters.(i) in
    t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

  let entries t = Array.length t.counters
end

module Btb = struct
  type t = { tags : int array; targets : int array; mask : int }

  let create ?(entries = 64) () =
    check_pow2 "Btb.create" entries;
    { tags = Array.make entries (-1); targets = Array.make entries 0;
      mask = entries - 1 }

  let index t pc = (pc lsr 2) land t.mask

  let predict t ~pc =
    let i = index t pc in
    if t.tags.(i) = pc then Some t.targets.(i) else None

  let train t ~pc ~target =
    let i = index t pc in
    t.tags.(i) <- pc;
    t.targets.(i) <- target
end

module Ras = struct
  type t = { stack : int array; mutable top : int; mutable size : int }

  let create ?(depth = 16) () =
    check_pow2 "Ras.create" depth;
    { stack = Array.make depth 0; top = 0; size = 0 }

  let push t addr =
    t.stack.(t.top) <- addr;
    t.top <- (t.top + 1) land (Array.length t.stack - 1);
    t.size <- min (t.size + 1) (Array.length t.stack)

  let pop t =
    if t.size = 0 then None
    else begin
      t.top <- (t.top - 1) land (Array.length t.stack - 1);
      t.size <- t.size - 1;
      Some t.stack.(t.top)
    end

  let depth t = t.size
end

let is_return prog pc =
  match prog with
  | None -> false
  | Some p -> (
    match Isa.Program.fetch_opt p pc with
    | Some (Isa.Instr.Jr rs) -> rs = Isa.Reg.link
    | Some _ | None -> false)

let standard_over ?prog ?metrics bht btb ras : Emu.Predictor.t =
  (* Observability counters (find-or-create; absent registry = no-ops).
     Strictly passive: predictions are unaffected. *)
  let m name =
    Option.map (fun reg -> Fastsim_obs.Metrics.counter reg name) metrics
  in
  let c_cond = m "bpred.cond_lookups" in
  let c_btb = m "bpred.btb_lookups" in
  let c_btb_hit = m "bpred.btb_hits" in
  let c_ras = m "bpred.ras_pops" in
  let c_ras_empty = m "bpred.ras_underflows" in
  let tick = function
    | None -> ()
    | Some c -> Fastsim_obs.Metrics.incr c
  in
  { predict_cond =
      (fun ~pc ->
        tick c_cond;
        Twobit.predict bht ~pc);
    train_cond = (fun ~pc ~taken -> Twobit.train bht ~pc ~taken);
    predict_indirect =
      (fun ~pc ->
        if is_return prog pc then begin
          match Ras.pop ras with
          | Some _ as r ->
            tick c_ras;
            r
          | None ->
            tick c_ras_empty;
            None
        end
        else begin
          tick c_btb;
          match Btb.predict btb ~pc with
          | Some _ as r ->
            tick c_btb_hit;
            r
          | None -> None
        end);
    train_indirect =
      (fun ~pc ~target ->
        if not (is_return prog pc) then Btb.train btb ~pc ~target);
    note_call = (fun ~pc:_ ~return_to -> Ras.push ras return_to) }

let standard ?prog ?metrics () : Emu.Predictor.t =
  standard_over ?prog ?metrics (Twobit.create ()) (Btb.create ())
    (Ras.create ())

let static_not_taken () = Emu.Predictor.always_not_taken

let static_taken () : Emu.Predictor.t =
  { Emu.Predictor.always_not_taken with predict_cond = (fun ~pc:_ -> true) }

(* ---- state capture (strategy engines, docs/STRATEGY.md) ------------ *)
(* The predictor interface is a record of closures, so checkpointing a
   run means capturing the tables those closures close over. A [handle]
   pairs a predictor with save/load over its private tables. The saved
   form is normalised plain data: RAS rotation is removed (only the live
   entries, oldest first, are observable through push/pop), so byte
   comparison of two saved states is a sound behavioural comparison. *)

type state = {
  s_bht : int array;
  s_btb_tags : int array;
  s_btb_targets : int array;
  s_ras : int array;  (** live entries, oldest first. *)
}

type handle = {
  h_pred : Emu.Predictor.t;
  h_save : unit -> state;
  h_load : state -> unit;
}

let empty_state =
  { s_bht = [||]; s_btb_tags = [||]; s_btb_targets = [||]; s_ras = [||] }

let static_handle pred =
  { h_pred = pred;
    h_save = (fun () -> empty_state);
    h_load = (fun _ -> ()) }

let standard_handle ?prog ?metrics () =
  let bht = Twobit.create () in
  let btb = Btb.create () in
  let ras = Ras.create () in
  let pred = standard_over ?prog ?metrics bht btb ras in
  let save () =
    let depth = Array.length ras.Ras.stack in
    { s_bht = Array.copy bht.Twobit.counters;
      s_btb_tags = Array.copy btb.Btb.tags;
      s_btb_targets = Array.copy btb.Btb.targets;
      s_ras =
        Array.init ras.Ras.size (fun i ->
            ras.Ras.stack.((ras.Ras.top - ras.Ras.size + i) land (depth - 1)))
    }
  in
  let load (s : state) =
    Array.blit s.s_bht 0 bht.Twobit.counters 0 (Array.length s.s_bht);
    Array.blit s.s_btb_tags 0 btb.Btb.tags 0 (Array.length s.s_btb_tags);
    Array.blit s.s_btb_targets 0 btb.Btb.targets 0
      (Array.length s.s_btb_targets);
    let depth = Array.length ras.Ras.stack in
    Array.fill ras.Ras.stack 0 depth 0;
    Array.blit s.s_ras 0 ras.Ras.stack 0 (Array.length s.s_ras);
    ras.Ras.top <- Array.length s.s_ras land (depth - 1);
    ras.Ras.size <- Array.length s.s_ras
  in
  { h_pred = pred; h_save = save; h_load = load }

let not_taken_handle () = static_handle (static_not_taken ())
let taken_handle () = static_handle (static_taken ())
