(** Set-associative tag array with true-LRU replacement.

    This tracks only tags and dirty bits — never data. The cache simulator
    models timing; program data lives solely in the functional emulator's
    memory, as in FastSim. *)

type t

type fill_result = {
  evicted : int option;
      (** Line-aligned byte address of an evicted line, if any. *)
  evicted_dirty : bool;
}

val create : size:int -> ways:int -> line:int -> t
(** Sizes must be powers of two with [size] divisible by [ways * line]. *)

val probe : t -> int -> bool
(** Tag check without any state change. *)

val touch : t -> int -> bool
(** Tag check; on a hit, updates LRU state and returns true. *)

val fill : t -> int -> dirty:bool -> fill_result
(** Allocates the line (which must currently miss), evicting the LRU way. *)

val set_dirty : t -> int -> unit
(** Marks a resident line dirty (no-op if the line is absent). *)

val line_addr : t -> int -> int
(** Line-aligns an address. *)

val sets : t -> int
val invalidate_all : t -> unit

(** {1 Capture / restore}

    Checkpoint support for the strategy engines (docs/STRATEGY.md). A
    saved state stores the within-set LRU order as {e ranks} rather than
    raw stamps, which makes it canonical: two byte-equal states are
    behaviourally indistinguishable, regardless of how many LRU ticks
    each source cache had consumed. *)

type state = {
  st_tags : int array;
  st_dirty : bool array;
  st_rank : int array;  (** per-set recency rank (0 = LRU); -1 = invalid *)
}

val save : t -> state

val load : t -> state -> unit
(** Overwrites [t]'s replacement state. The saved geometry must match
    [t]'s ([Invalid_argument] otherwise). *)
