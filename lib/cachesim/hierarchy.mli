(** Non-blocking two-level cache and memory timing model.

    This is FastSim's cache simulator: it models an aggressive non-blocking
    hierarchy (write-through L1, write-back L2, MSHRs, a split-transaction
    bus) but never touches program data — it is asked "a load of address A
    issued at cycle T: when is the data available?" and answers with a
    latency in cycles.

    The paper's interface lets the µ-architecture re-poll as intervals
    expire; because completion time here is fully determined at issue
    (MSHR/bus/memory occupancy are all known then), we return the complete
    latency in a single call. The µ-architecture simply waits that long,
    which interacts with memoization in exactly the same way: each distinct
    latency is an outcome edge in the p-action cache (see DESIGN.md).

    The model is deliberately stateful: latencies depend on resident lines,
    outstanding fills, MSHR occupancy and bus contention, so the same
    configuration can legitimately yield different latencies at different
    times — this is the source of outcome variation that terminates
    fast-forwarding (paper §4.2). *)

type t

val create :
  ?config:Config.t ->
  ?trace:Fastsim_obs.Trace.t ->
  ?metrics:Fastsim_obs.Metrics.t ->
  unit ->
  t
(** [trace] and [metrics] attach observability (see
    [docs/OBSERVABILITY.md]): the hierarchy emits [cache]-category
    [l1_miss] / [l2_miss] / [writeback] instant events and feeds the
    [cache.miss_latency] log2 histogram. Purely passive — timing and stats
    are identical with and without them. *)

val load : t -> now:int -> addr:int -> int
(** [load t ~now ~addr] issues a load and returns the number of cycles
    after [now] at which the data is available (always >= 1). [now] values
    must be non-decreasing across calls. *)

val store : t -> now:int -> addr:int -> unit
(** Issues a store: updates tag/LRU/dirty state and accounts write-through
    bus traffic (write-allocate in the L2, no-allocate in the L1). Stores
    complete asynchronously via the write buffer and add no direct
    latency. *)

type stats = {
  loads : int;
  stores : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  writebacks : int;
  merged_misses : int;
      (** loads satisfied by an already-outstanding fill of the same line. *)
}

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Capture / restore}

    Checkpoint support for the strategy engines (docs/STRATEGY.md). All
    temporal state (MSHR free times, outstanding fills, the bus) is saved
    {e relative} to the capture cycle, clamped at 0, with MSHR arrays
    sorted and already-completed fill entries dropped — a normal form in
    which byte equality (via {!state_canonical}) implies behavioural
    equality. Counters are carried along for stat stitching but excluded
    from the canonical form. *)

type state = {
  h_l1 : Setassoc.state;
  h_l2 : Setassoc.state;
  h_l1_mshr : int array;
  h_l2_mshr : int array;
  h_fills : (int * int) array;
  h_bus_free : int;
  h_stats : stats;
}

val capture : t -> now:int -> state

val restore : t -> now:int -> state -> unit
(** Overwrites [t]'s timing state and counters, rebasing saved relative
    times onto [now]. The saved geometry must match [t]'s configuration
    ([Invalid_argument] otherwise). *)

val state_canonical : state -> string
(** Deterministic bytes of the behavioural part of [state] (counters
    excluded); equal bytes imply behaviourally equal cache state. *)
