(** Cache hierarchy parameters.

    Defaults reproduce the paper's Table 1: a 16 KB 2-way set-associative
    write-through L1 data cache and a 1 MB 2-way set-associative write-back
    L2, both non-blocking with 8 MSHRs, over an 8-byte-wide split-transaction
    bus. *)

type t = {
  l1_size : int;        (** bytes. *)
  l1_ways : int;
  l1_line : int;        (** line size in bytes. *)
  l1_hit_latency : int; (** cycles from issue to data on an L1 hit. *)
  l1_miss_penalty : int;(** cycles to reach L2 after an L1 miss ("usually a
                            6 cycle delay" in the paper's example). *)
  l1_mshrs : int;
  l2_size : int;
  l2_ways : int;
  l2_line : int;
  l2_hit_latency : int; (** L2 array access time. *)
  l2_mshrs : int;
  mem_latency : int;    (** cycles from bus grant to first data beat. *)
  bus_width : int;      (** bytes per bus cycle. *)
}

val default : t

val tiny : t
(** A very small configuration (256 B / 4 KB) used by tests to force
    frequent misses and evictions on short address streams. *)
