type stats = {
  loads : int;
  stores : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  writebacks : int;
  merged_misses : int;
}

type t = {
  cfg : Config.t;
  (* Observability (docs/OBSERVABILITY.md): both default to absent and are
     strictly passive — no timing or stats field depends on them. *)
  trace : Fastsim_obs.Trace.t option;
  h_miss_latency : Fastsim_obs.Metrics.histogram option;
  l1 : Setassoc.t;
  l2 : Setassoc.t;
  l1_mshr : int array;  (* cycle at which each MSHR becomes free *)
  l2_mshr : int array;
  fills : (int, int) Hashtbl.t;  (* L1 line -> cycle its fill completes *)
  mutable bus_free : int;
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable writebacks : int;
  mutable merged_misses : int;
}

let create ?(config = Config.default) ?trace ?metrics () =
  let c = config in
  { cfg = c;
    trace;
    h_miss_latency =
      Option.map
        (fun m -> Fastsim_obs.Metrics.histogram m "cache.miss_latency")
        metrics;
    l1 = Setassoc.create ~size:c.l1_size ~ways:c.l1_ways ~line:c.l1_line;
    l2 = Setassoc.create ~size:c.l2_size ~ways:c.l2_ways ~line:c.l2_line;
    l1_mshr = Array.make c.l1_mshrs 0;
    l2_mshr = Array.make c.l2_mshrs 0;
    fills = Hashtbl.create 32;
    bus_free = 0;
    loads = 0;
    stores = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    writebacks = 0;
    merged_misses = 0 }

let emit t ts name args =
  match t.trace with
  | None -> ()
  | Some tr ->
    Fastsim_obs.Trace.emit tr
      (Fastsim_obs.Event.instant ~ts ~cat:"cache" ~args name)

let observe_miss t latency =
  match t.h_miss_latency with
  | None -> ()
  | Some h -> Fastsim_obs.Metrics.observe h latency

(* Index of the MSHR that frees earliest. *)
let earliest_mshr arr =
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < arr.(!best) then best := i
  done;
  !best

let l1_transfer t = t.cfg.l1_line / t.cfg.bus_width
let l2_transfer t = t.cfg.l2_line / t.cfg.bus_width

(* Timing of an L2 access (after an L1 miss) starting at [start]; fills the
   L2 on a miss and returns the cycle at which the L1's line arrives.
   L1 and L2 line sizes may differ (the L2 indexes with its own). *)
let l2_access t ~start ~addr ~dirty =
  let line2 = Setassoc.line_addr t.l2 addr in
  if Setassoc.touch t.l2 line2 then begin
    t.l2_hits <- t.l2_hits + 1;
    if dirty then Setassoc.set_dirty t.l2 line2;
    let bus_start = max (start + t.cfg.l2_hit_latency) t.bus_free in
    let ready = bus_start + l1_transfer t in
    t.bus_free <- ready;
    ready
  end
  else begin
    t.l2_misses <- t.l2_misses + 1;
    emit t start "l2_miss" [ ("addr", Fastsim_obs.Json.Int addr) ];
    let m = earliest_mshr t.l2_mshr in
    let start = max start t.l2_mshr.(m) in
    (* Request beat on the split-transaction bus, then memory, then the
       response transfer (a full L2 line from memory; the L1's slice
       forwards to the L1). *)
    let req = max (start + t.cfg.l2_hit_latency) t.bus_free in
    t.bus_free <- req + 1;
    let data = req + 1 + t.cfg.mem_latency in
    let resp = max data t.bus_free in
    let ready = resp + l2_transfer t in
    t.bus_free <- ready;
    let { Setassoc.evicted = _; evicted_dirty } =
      Setassoc.fill t.l2 line2 ~dirty
    in
    if evicted_dirty then begin
      t.writebacks <- t.writebacks + 1;
      emit t start "writeback" [ ("addr", Fastsim_obs.Json.Int addr) ];
      t.bus_free <- t.bus_free + l2_transfer t
    end;
    t.l2_mshr.(m) <- ready;
    ready
  end

let load t ~now ~addr =
  t.loads <- t.loads + 1;
  let line = Setassoc.line_addr t.l1 addr in
  (* The tag is installed when a miss is issued, but its data arrives only
     when the fill completes: a load in between merges with the
     outstanding fill (MSHR hit) instead of hitting. *)
  match Hashtbl.find_opt t.fills line with
  | Some ready when ready > now ->
    t.l1_misses <- t.l1_misses + 1;
    t.merged_misses <- t.merged_misses + 1;
    ignore (Setassoc.touch t.l1 line : bool);
    let latency = ready - now in
    emit t now "l1_miss"
      [ ("addr", Fastsim_obs.Json.Int addr);
        ("latency", Fastsim_obs.Json.Int latency);
        ("merged", Fastsim_obs.Json.Bool true) ];
    observe_miss t latency;
    latency
  | _ ->
    Hashtbl.remove t.fills line;
    if Setassoc.touch t.l1 line then begin
      t.l1_hits <- t.l1_hits + 1;
      t.cfg.l1_hit_latency
    end
    else begin
      t.l1_misses <- t.l1_misses + 1;
      let m = earliest_mshr t.l1_mshr in
      let start = max (now + t.cfg.l1_miss_penalty) t.l1_mshr.(m) in
      let ready = l2_access t ~start ~addr ~dirty:false in
      ignore (Setassoc.fill t.l1 line ~dirty:false : Setassoc.fill_result);
      Hashtbl.replace t.fills line ready;
      t.l1_mshr.(m) <- ready;
      let latency = max 1 (ready - now) in
      emit t now "l1_miss"
        [ ("addr", Fastsim_obs.Json.Int addr);
          ("latency", Fastsim_obs.Json.Int latency);
          ("merged", Fastsim_obs.Json.Bool false) ];
      observe_miss t latency;
      latency
    end

let store t ~now ~addr =
  t.stores <- t.stores + 1;
  let line = Setassoc.line_addr t.l1 addr in
  if Setassoc.touch t.l1 line then t.l1_hits <- t.l1_hits + 1
  else begin
    t.l1_misses <- t.l1_misses + 1;
    emit t now "l1_miss"
      [ ("addr", Fastsim_obs.Json.Int addr);
        ("store", Fastsim_obs.Json.Bool true) ]
  end;
  (* Write-through: one bus beat to L2 via the write buffer. *)
  t.bus_free <- max t.bus_free now + 1;
  ignore (l2_access t ~start:now ~addr ~dirty:true : int)

let stats t =
  { loads = t.loads;
    stores = t.stores;
    l1_hits = t.l1_hits;
    l1_misses = t.l1_misses;
    l2_hits = t.l2_hits;
    l2_misses = t.l2_misses;
    writebacks = t.writebacks;
    merged_misses = t.merged_misses }

let reset_stats t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  t.writebacks <- 0;
  t.merged_misses <- 0

(* ---- capture / restore (strategy engines, docs/STRATEGY.md) -------- *)
(* All of the hierarchy's temporal state (MSHR free times, outstanding
   fill completions, the bus) is compared only against [now] or against
   other timestamps, so shifting every timestamp by the same delta is
   behaviour-preserving. A capture therefore stores times RELATIVE to the
   capture cycle, clamped at 0 (a resource that freed in the past behaves
   exactly like one that is free now), with MSHR arrays sorted (only the
   multiset of free times is observable) and dead fill entries dropped
   (a fill whose data already arrived behaves exactly like no entry).
   The result is canonical: byte-equal states are behaviourally equal. *)

type state = {
  h_l1 : Setassoc.state;
  h_l2 : Setassoc.state;
  h_l1_mshr : int array;        (* relative, clamped, sorted *)
  h_l2_mshr : int array;
  h_fills : (int * int) array;  (* (line, relative ready > 0), by line *)
  h_bus_free : int;             (* relative, clamped *)
  h_stats : stats;              (* absolute counters; not behavioural *)
}

let capture t ~now : state =
  let rel arr =
    let a = Array.map (fun v -> max 0 (v - now)) arr in
    Array.sort compare a;
    a
  in
  let fills = ref [] in
  Hashtbl.iter
    (fun line ready -> if ready > now then fills := (line, ready - now) :: !fills)
    t.fills;
  let fills = Array.of_list !fills in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) fills;
  { h_l1 = Setassoc.save t.l1;
    h_l2 = Setassoc.save t.l2;
    h_l1_mshr = rel t.l1_mshr;
    h_l2_mshr = rel t.l2_mshr;
    h_fills = fills;
    h_bus_free = max 0 (t.bus_free - now);
    h_stats = stats t }

let restore t ~now (s : state) =
  Setassoc.load t.l1 s.h_l1;
  Setassoc.load t.l2 s.h_l2;
  let abs dst src =
    if Array.length src <> Array.length dst then
      invalid_arg "Hierarchy.load: geometry";
    Array.iteri (fun i v -> dst.(i) <- now + v) src
  in
  abs t.l1_mshr s.h_l1_mshr;
  abs t.l2_mshr s.h_l2_mshr;
  Hashtbl.reset t.fills;
  Array.iter (fun (line, r) -> Hashtbl.replace t.fills line (now + r)) s.h_fills;
  t.bus_free <- now + s.h_bus_free;
  t.loads <- s.h_stats.loads;
  t.stores <- s.h_stats.stores;
  t.l1_hits <- s.h_stats.l1_hits;
  t.l1_misses <- s.h_stats.l1_misses;
  t.l2_hits <- s.h_stats.l2_hits;
  t.l2_misses <- s.h_stats.l2_misses;
  t.writebacks <- s.h_stats.writebacks;
  t.merged_misses <- s.h_stats.merged_misses

let state_canonical (s : state) : string =
  Marshal.to_string
    (s.h_l1, s.h_l2, s.h_l1_mshr, s.h_l2_mshr, s.h_fills, s.h_bus_free)
    [ Marshal.No_sharing ]
