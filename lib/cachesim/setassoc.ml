type t = {
  ways : int;
  line_bits : int;
  set_mask : int;
  tags : int array;      (* -1 = invalid; indexed set*ways + way *)
  dirty : bool array;
  stamp : int array;     (* LRU timestamps *)
  mutable tick : int;
}

type fill_result = { evicted : int option; evicted_dirty : bool }

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create ~size ~ways ~line =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  if not (pow2 size && pow2 line) || ways <= 0 || size mod (ways * line) <> 0
  then invalid_arg "Setassoc.create";
  let sets = size / (ways * line) in
  if not (pow2 sets) then invalid_arg "Setassoc.create: sets not power of 2";
  { ways;
    line_bits = log2 line;
    set_mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    dirty = Array.make (sets * ways) false;
    stamp = Array.make (sets * ways) 0;
    tick = 0 }

let line_addr t addr = (addr lsr t.line_bits) lsl t.line_bits
let set_of t addr = (addr lsr t.line_bits) land t.set_mask
let tag_of t addr = addr lsr t.line_bits
let sets t = t.set_mask + 1

let find t addr =
  let s = set_of t addr and tag = tag_of t addr in
  let base = s * t.ways in
  let rec go w =
    if w >= t.ways then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let probe t addr = find t addr <> None

let touch t addr =
  match find t addr with
  | Some i ->
    t.tick <- t.tick + 1;
    t.stamp.(i) <- t.tick;
    true
  | None -> false

let fill t addr ~dirty =
  assert (find t addr = None);
  let s = set_of t addr and tag = tag_of t addr in
  let base = s * t.ways in
  (* Choose an invalid way if one exists, else the LRU way. *)
  let victim = ref base in
  for w = 1 to t.ways - 1 do
    let i = base + w in
    if t.tags.(!victim) <> -1
       && (t.tags.(i) = -1 || t.stamp.(i) < t.stamp.(!victim))
    then victim := i
  done;
  let v = !victim in
  let result =
    if t.tags.(v) = -1 then { evicted = None; evicted_dirty = false }
    else
      { evicted = Some (t.tags.(v) lsl t.line_bits);
        evicted_dirty = t.dirty.(v) }
  in
  t.tags.(v) <- tag;
  t.dirty.(v) <- dirty;
  t.tick <- t.tick + 1;
  t.stamp.(v) <- t.tick;
  result

let set_dirty t addr =
  match find t addr with Some i -> t.dirty.(i) <- true | None -> ()

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false
