type t = {
  ways : int;
  line_bits : int;
  set_mask : int;
  tags : int array;      (* -1 = invalid; indexed set*ways + way *)
  dirty : bool array;
  stamp : int array;     (* LRU timestamps *)
  mutable tick : int;
}

type fill_result = { evicted : int option; evicted_dirty : bool }

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create ~size ~ways ~line =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  if not (pow2 size && pow2 line) || ways <= 0 || size mod (ways * line) <> 0
  then invalid_arg "Setassoc.create";
  let sets = size / (ways * line) in
  if not (pow2 sets) then invalid_arg "Setassoc.create: sets not power of 2";
  { ways;
    line_bits = log2 line;
    set_mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    dirty = Array.make (sets * ways) false;
    stamp = Array.make (sets * ways) 0;
    tick = 0 }

let line_addr t addr = (addr lsr t.line_bits) lsl t.line_bits
let set_of t addr = (addr lsr t.line_bits) land t.set_mask
let tag_of t addr = addr lsr t.line_bits
let sets t = t.set_mask + 1

let find t addr =
  let s = set_of t addr and tag = tag_of t addr in
  let base = s * t.ways in
  let rec go w =
    if w >= t.ways then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let probe t addr = find t addr <> None

let touch t addr =
  match find t addr with
  | Some i ->
    t.tick <- t.tick + 1;
    t.stamp.(i) <- t.tick;
    true
  | None -> false

let fill t addr ~dirty =
  assert (find t addr = None);
  let s = set_of t addr and tag = tag_of t addr in
  let base = s * t.ways in
  (* Choose an invalid way if one exists, else the LRU way. *)
  let victim = ref base in
  for w = 1 to t.ways - 1 do
    let i = base + w in
    if t.tags.(!victim) <> -1
       && (t.tags.(i) = -1 || t.stamp.(i) < t.stamp.(!victim))
    then victim := i
  done;
  let v = !victim in
  let result =
    if t.tags.(v) = -1 then { evicted = None; evicted_dirty = false }
    else
      { evicted = Some (t.tags.(v) lsl t.line_bits);
        evicted_dirty = t.dirty.(v) }
  in
  t.tags.(v) <- tag;
  t.dirty.(v) <- dirty;
  t.tick <- t.tick + 1;
  t.stamp.(v) <- t.tick;
  result

let set_dirty t addr =
  match find t addr with Some i -> t.dirty.(i) <- true | None -> ()

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

(* ---- capture / restore (strategy engines, docs/STRATEGY.md) -------- *)
(* Only the within-set recency ORDER of the LRU stamps is observable:
   victim selection compares stamps inside one set, and every new stamp
   exceeds all existing ones. Saving ranks instead of raw stamps makes
   the saved form canonical — byte-equal states are behaviourally equal
   regardless of how many ticks each cache had consumed. *)

type state = {
  st_tags : int array;
  st_dirty : bool array;
  st_rank : int array;  (* per-set recency rank (0 = LRU); -1 = invalid *)
}

let save t : state =
  let n = Array.length t.tags in
  let rank = Array.make n (-1) in
  for s = 0 to t.set_mask do
    let base = s * t.ways in
    let valid = ref [] in
    for w = t.ways - 1 downto 0 do
      if t.tags.(base + w) <> -1 then valid := (base + w) :: !valid
    done;
    let sorted =
      List.sort (fun a b -> compare t.stamp.(a) t.stamp.(b)) !valid
    in
    List.iteri (fun r i -> rank.(i) <- r) sorted
  done;
  { st_tags = Array.copy t.tags;
    st_dirty = Array.copy t.dirty;
    st_rank = rank }

let load t (s : state) =
  let n = Array.length t.tags in
  if Array.length s.st_tags <> n then invalid_arg "Setassoc.load: geometry";
  Array.blit s.st_tags 0 t.tags 0 n;
  Array.blit s.st_dirty 0 t.dirty 0 n;
  for i = 0 to n - 1 do
    t.stamp.(i) <- s.st_rank.(i) + 1
  done;
  t.tick <- t.ways + 1
