type t = {
  l1_size : int;
  l1_ways : int;
  l1_line : int;
  l1_hit_latency : int;
  l1_miss_penalty : int;
  l1_mshrs : int;
  l2_size : int;
  l2_ways : int;
  l2_line : int;
  l2_hit_latency : int;
  l2_mshrs : int;
  mem_latency : int;
  bus_width : int;
}

let default =
  { l1_size = 16 * 1024;
    l1_ways = 2;
    l1_line = 32;
    l1_hit_latency = 2;
    l1_miss_penalty = 6;
    l1_mshrs = 8;
    l2_size = 1024 * 1024;
    l2_ways = 2;
    l2_line = 128;
    l2_hit_latency = 8;
    l2_mshrs = 8;
    mem_latency = 40;
    bus_width = 8 }

let tiny =
  { default with
    l1_size = 256;
    l2_size = 4 * 1024;
    l1_mshrs = 2;
    l2_mshrs = 2 }
