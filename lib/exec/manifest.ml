module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

type cache_axis = {
  c_name : string;
  c_config : Cachesim.Config.t;
}

type params_axis = {
  p_name : string;
  p_params : Uarch.Params.t;
}

type t = {
  workloads : string list;
  scales : int list option;
  engines : Fastsim.Sim.engine list;
  predictors : Fastsim.Sim.predictor_kind list;
  cache_configs : cache_axis list;
  policies : Memo.Pcache.policy list;
  params_configs : params_axis list;
  max_cycles : int option;
  warm : bool;
  fault : (string option * Job.fault) option;
}

let err fmt = Printf.ksprintf (fun m -> failwith ("manifest: " ^ m)) fmt

let default_params_axis =
  { p_name = "default"; p_params = Uarch.Params.default }

let make ~workloads () =
  { workloads;
    scales = None;
    engines = [ `Fast; `Slow ];
    predictors = [ Fastsim.Sim.Standard ];
    cache_configs = [ { c_name = "default"; c_config = Cachesim.Config.default } ];
    policies = [ Memo.Pcache.Unbounded ];
    params_configs = [ default_params_axis ];
    max_cycles = None;
    warm = false;
    fault = None }

(* ---------------------------------------------------------------- *)

let ok_or_err = function Ok v -> v | Error m -> err "%s" m

let cache_axis_of_json = function
  | J.Str "default" -> { c_name = "default"; c_config = Cachesim.Config.default }
  | J.Str "tiny" -> { c_name = "tiny"; c_config = Cachesim.Config.tiny }
  | J.Str s -> err "unknown cache config %S (want default, tiny or an object)" s
  | J.Obj fields ->
    let name =
      match List.assoc_opt "name" fields with
      | Some (J.Str n) -> n
      | Some _ -> err "cache config name must be a string"
      | None -> "custom"
    in
    let overrides = J.Obj (List.remove_assoc "name" fields) in
    { c_name = name;
      c_config = ok_or_err (Spec.cache_config_of_json_result overrides) }
  | j -> err "bad cache config %s" (J.to_string j)

let cache_axis_to_json { c_name; c_config } =
  match c_name with
  | "default" when c_config = Cachesim.Config.default -> J.Str "default"
  | "tiny" when c_config = Cachesim.Config.tiny -> J.Str "tiny"
  | _ -> (
    match Spec.cache_config_to_json c_config with
    | J.Obj fields -> J.Obj (("name", J.Str c_name) :: fields)
    | j -> j)

(* A named point on the processor-parameter axis: "default", or an
   object of {!Spec.params_to_json} overrides with an optional "name"
   label (mirrors the cache axis). *)
let params_axis_of_json = function
  | J.Str "default" -> default_params_axis
  | J.Str s -> err "unknown params config %S (want default or an object)" s
  | J.Obj fields ->
    let name =
      match List.assoc_opt "name" fields with
      | Some (J.Str n) -> n
      | Some _ -> err "params config name must be a string"
      | None -> "custom"
    in
    let overrides = J.Obj (List.remove_assoc "name" fields) in
    { p_name = name;
      p_params = ok_or_err (Spec.params_of_json_result overrides) }
  | j -> err "bad params config %s" (J.to_string j)

let params_axis_to_json { p_name; p_params } =
  if p_name = "default" && p_params = Uarch.Params.default then
    J.Str "default"
  else
    match Spec.params_to_json p_params with
    | J.Obj fields -> J.Obj (("name", J.Str p_name) :: fields)
    | j -> j

let strings what = function
  | J.List l ->
    List.map
      (function J.Str s -> s | j -> err "%s entries must be strings, got %s"
                                     what (J.to_string j))
      l
  | j -> err "%s must be a list, got %s" what (J.to_string j)

let ints what = function
  | J.List l -> List.map J.to_int l
  | j -> err "%s must be a list, got %s" what (J.to_string j)

let of_json j =
  match j with
  | J.Obj fields ->
    let seen = Hashtbl.create 16 in
    let m =
      List.fold_left
        (fun m (k, v) ->
          if Hashtbl.mem seen k then err "duplicate key %S" k;
          Hashtbl.add seen k ();
          match k with
          | "workloads" -> { m with workloads = strings "workloads" v }
          | "scales" -> { m with scales = Some (ints "scales" v) }
          | "engines" ->
            { m with
              engines =
                List.map
                  (fun s -> ok_or_err (Spec.engine_of_string s))
                  (strings "engines" v) }
          | "predictors" ->
            { m with
              predictors =
                List.map
                  (fun s -> ok_or_err (Spec.predictor_of_string s))
                  (strings "predictors" v) }
          | "cache_configs" ->
            { m with cache_configs = List.map cache_axis_of_json (J.to_list v) }
          | "policies" ->
            { m with
              policies =
                List.map
                  (fun s -> ok_or_err (Spec.policy_of_string s))
                  (strings "policies" v) }
          | "params" ->
            (* Legacy single-configuration form (pre-axis manifests):
               decodes as a one-point axis named "custom". *)
            if Hashtbl.mem seen "params_configs" then
              err "params and params_configs are mutually exclusive";
            { m with
              params_configs =
                [ { p_name = "custom";
                    p_params = ok_or_err (Spec.params_of_json_result v) } ] }
          | "params_configs" ->
            if Hashtbl.mem seen "params" then
              err "params and params_configs are mutually exclusive";
            { m with
              params_configs = List.map params_axis_of_json (J.to_list v) }
          | "max_cycles" -> { m with max_cycles = Some (J.to_int v) }
          | "warm" -> { m with warm = J.to_bool v }
          | "fault" ->
            let filter =
              if J.mem "workload" v then Some (J.to_str (J.member "workload" v))
              else None
            in
            { m with fault = Some (filter, Job.fault_of_json v) }
          | k -> err "unknown key %S" k)
        (make ~workloads:[] ())
        fields
    in
    if m.workloads = [] then err "workloads must be a non-empty list";
    if m.engines = [] then err "engines must be non-empty";
    if m.predictors = [] then err "predictors must be non-empty";
    if m.cache_configs = [] then err "cache_configs must be non-empty";
    if m.policies = [] then err "policies must be non-empty";
    if m.params_configs = [] then err "params_configs must be non-empty";
    (match m.scales with
     | Some [] -> err "scales must be non-empty when given"
     | _ -> ());
    m
  | j -> err "manifest must be an object, got %s" (J.to_string j)

let of_json_result j =
  match of_json j with
  | m -> Ok m
  | exception Failure m -> Error m
  | exception J.Parse_error m -> Error ("manifest: " ^ m)

let to_json m =
  let fields =
    [ ("workloads", J.List (List.map (fun w -> J.Str w) m.workloads)) ]
    @ (match m.scales with
       | None -> []
       | Some l -> [ ("scales", J.List (List.map (fun s -> J.Int s) l)) ])
    @ [ ( "engines",
          J.List
            (List.map (fun e -> J.Str (Spec.engine_to_string e)) m.engines) );
        ( "predictors",
          J.List
            (List.map
               (fun p -> J.Str (Spec.predictor_to_string p))
               m.predictors) );
        ("cache_configs", J.List (List.map cache_axis_to_json m.cache_configs));
        ( "policies",
          J.List
            (List.map (fun p -> J.Str (Spec.policy_to_string p)) m.policies) )
      ]
    @ (match m.params_configs with
       | [ axis ] when axis = default_params_axis -> []
       | [ { p_name = "custom"; p_params } ] ->
         (* Echo the legacy decode shape back in the legacy key. *)
         [ ("params", Spec.params_to_json p_params) ]
       | axes ->
         [ ("params_configs", J.List (List.map params_axis_to_json axes)) ])
    @ (match m.max_cycles with None -> [] | Some n -> [ ("max_cycles", J.Int n) ])
    @ (if m.warm then [ ("warm", J.Bool true) ] else [])
    @
    match m.fault with
    | None -> []
    | Some (filter, f) -> (
      match (Job.fault_to_json f, filter) with
      | J.Obj fields, Some w -> [ ("fault", J.Obj (("workload", J.Str w) :: fields)) ]
      | fj, _ -> [ ("fault", fj) ])
  in
  J.Obj fields

(* ---------------------------------------------------------------- *)

let expand m =
  let find name =
    match Workloads.Suite.find name with
    | w -> w
    | exception Not_found -> err "unknown workload %S" name
  in
  let next_id = ref 0 in
  let jobs = ref [] in
  List.iter
    (fun wname ->
      let w = find wname in
      let scales =
        match m.scales with
        | Some l -> l
        | None -> [ w.Workloads.Workload.default_scale ]
      in
      let fault_here =
        match m.fault with
        | Some (None, f) -> Some f
        | Some (Some filter, f)
          when filter = w.Workloads.Workload.name
               || filter = w.Workloads.Workload.short -> Some f
        | _ -> None
      in
      List.iter
        (fun scale ->
          List.iter
            (fun engine ->
              (* [`Baseline] ignores the predictor, the processor params
                 and the pcache policy (Sim.run only forwards the cache
                 config), so crossing it with those axes would emit
                 duplicate jobs whose labels pretend the axis mattered;
                 collapse each to one representative value. *)
              let predictors, params_configs, policies =
                match engine with
                | `Baseline ->
                  ( [ List.hd m.predictors ],
                    [ List.hd m.params_configs ],
                    [ List.hd m.policies ] )
                | `Fast | `Slow ->
                  (m.predictors, m.params_configs, m.policies)
              in
              List.iter
                (fun predictor ->
                  List.iter
                    (fun cache ->
                      List.iter
                        (fun paxis ->
                          List.iter
                            (fun policy ->
                              let spec =
                                { Spec.default with
                                  Spec.params = paxis.p_params;
                                  cache_config = cache.c_config;
                                  predictor;
                                  policy;
                                  max_cycles =
                                    Option.value m.max_cycles
                                      ~default:max_int }
                              in
                              jobs :=
                                { Job.id = !next_id;
                                  workload = w.Workloads.Workload.name;
                                  scale;
                                  engine;
                                  spec;
                                  cache_name = cache.c_name;
                                  params_name = paxis.p_name;
                                  warm = None;
                                  fault = fault_here }
                                :: !jobs;
                              incr next_id)
                            policies)
                        params_configs)
                    m.cache_configs)
                predictors)
            m.engines)
        scales)
    m.workloads;
  List.rev !jobs
