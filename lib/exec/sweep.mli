(** The batch driver behind [fastsim sweep]: expands a manifest, runs the
    jobs on a worker pool, and aggregates one report.

    Pipeline:

    + {!Manifest.expand} — deterministic job list;
    + optional {b warming stage} (manifest [warm]): each distinct
      (workload, scale, processor/cache configuration) that any fast job
      uses is simulated once with an unbounded p-action cache, which is
      persisted via {!Memo.Persist} and fanned out to every sibling fast
      job — those then start fast-forwarding from their first cycle.
      Warm-starting never changes results, only time-to-result (replay
      still validates every outcome), so warmed sweeps report identical
      statistics;
    + the job stage on the {!Pool} backend (forked processes by default),
      with per-job timeouts and bounded retries;
    + aggregation into a {!Report.t}, entries in job-id order regardless
      of completion order. A worker crash or timeout that exhausts its
      retries marks that entry failed; the suite always completes. *)

type config = {
  backend : Pool.backend;   (** default [Fork]. *)
  jobs : int;               (** worker count; [0] = auto (domain count). *)
  timeout_s : float;        (** per-attempt; [0.] = unlimited; Fork only. *)
  retries : int;            (** extra attempts after a crash/timeout. *)
  on_progress : (string -> unit) option;
      (** streamed human-readable progress lines, called as warming runs
          finish and jobs settle (in completion order). *)
}

val default_config : config
(** Fork backend, 1 job, no timeout, 1 retry, silent. *)

val run : ?config:config -> Manifest.t -> Report.t
