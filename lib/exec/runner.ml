module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

type summary = {
  cycles : int;
  retired : int;
  emulated_insts : int;
  wrong_path_insts : int;
  retired_by_class : int array;
  branches : Fastsim.Sim.branch_stats;
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;
  pcache : Memo.Pcache.counters option;
}

type run_result = {
  summary : summary;
  wall_s : float;
}

let summary_of_result (r : Fastsim.Sim.result) =
  { cycles = r.Fastsim.Sim.cycles;
    retired = r.Fastsim.Sim.retired;
    emulated_insts = r.Fastsim.Sim.emulated_insts;
    wrong_path_insts = r.Fastsim.Sim.wrong_path_insts;
    retired_by_class = r.Fastsim.Sim.retired_by_class;
    branches = r.Fastsim.Sim.branches;
    cache = r.Fastsim.Sim.cache;
    memo = r.Fastsim.Sim.memo;
    pcache = r.Fastsim.Sim.pcache }

let touch path =
  let oc = open_out_gen [ Open_creat; Open_wronly ] 0o644 path in
  close_out oc

let inject_fault = function
  | None -> ()
  | Some (Job.Crash_once sentinel) ->
    if not (Sys.file_exists sentinel) then begin
      touch sentinel;
      failwith "injected fault: crash-once"
    end
  | Some (Job.Hang_once (sentinel, seconds)) ->
    if not (Sys.file_exists sentinel) then begin
      touch sentinel;
      Unix.sleepf seconds
    end
  | Some (Job.Hang seconds) -> Unix.sleepf seconds

let run_sim (job : Job.t) =
  inject_fault job.Job.fault;
  let w = Workloads.Suite.find job.Job.workload in
  let prog = w.Workloads.Workload.build job.Job.scale in
  let spec =
    match (job.Job.engine, job.Job.warm) with
    | `Fast, Some path ->
      Spec.with_pcache
        (Memo.Persist.load_file ~policy:job.Job.spec.Spec.policy
           ~program:prog path)
        job.Job.spec
    | _ -> job.Job.spec
  in
  let t0 = Unix.gettimeofday () in
  let r = Fastsim.Sim.run ~engine:job.Job.engine spec prog in
  (r, Unix.gettimeofday () -. t0)

let run_job job =
  let r, wall_s = run_sim job in
  { summary = summary_of_result r; wall_s }

let summary_to_json s =
  let branch_json (b : Fastsim.Sim.branch_stats) =
    J.Obj
      [ ("conditionals", J.Int b.Fastsim.Sim.conditionals);
        ("mispredicted", J.Int b.Fastsim.Sim.mispredicted);
        ("indirects", J.Int b.Fastsim.Sim.indirects);
        ("misfetched", J.Int b.Fastsim.Sim.misfetched) ]
  in
  let cache_json (c : Cachesim.Hierarchy.stats) =
    J.Obj
      [ ("loads", J.Int c.Cachesim.Hierarchy.loads);
        ("stores", J.Int c.Cachesim.Hierarchy.stores);
        ("l1_hits", J.Int c.Cachesim.Hierarchy.l1_hits);
        ("l1_misses", J.Int c.Cachesim.Hierarchy.l1_misses);
        ("l2_hits", J.Int c.Cachesim.Hierarchy.l2_hits);
        ("l2_misses", J.Int c.Cachesim.Hierarchy.l2_misses);
        ("writebacks", J.Int c.Cachesim.Hierarchy.writebacks);
        ("merged_misses", J.Int c.Cachesim.Hierarchy.merged_misses) ]
  in
  let memo_json (m : Memo.Stats.t) =
    J.Obj
      [ ("detailed_retired", J.Int m.Memo.Stats.detailed_retired);
        ("replayed_retired", J.Int m.Memo.Stats.replayed_retired);
        ("detailed_cycles", J.Int m.Memo.Stats.detailed_cycles);
        ("replayed_cycles", J.Int m.Memo.Stats.replayed_cycles);
        ("detailed_fraction", J.Float (Memo.Stats.detailed_fraction m));
        ("actions_replayed", J.Int m.Memo.Stats.actions_replayed);
        ("groups_replayed", J.Int m.Memo.Stats.groups_replayed);
        ("episodes", J.Int m.Memo.Stats.episodes);
        ("avg_chain", J.Float (Memo.Stats.avg_chain m));
        ("max_chain", J.Int m.Memo.Stats.chain_max);
        ("detailed_entries", J.Int m.Memo.Stats.detailed_entries) ]
  in
  let pcache_json (p : Memo.Pcache.counters) =
    J.Obj
      [ ("static_configs", J.Int p.Memo.Pcache.static_configs);
        ("static_actions", J.Int p.Memo.Pcache.static_actions);
        ("live_configs", J.Int p.Memo.Pcache.live_configs);
        ("modeled_bytes", J.Int p.Memo.Pcache.modeled_bytes);
        ("peak_modeled_bytes", J.Int p.Memo.Pcache.peak_modeled_bytes);
        ("flushes", J.Int p.Memo.Pcache.flushes);
        ("minor_collections", J.Int p.Memo.Pcache.minor_collections);
        ("full_collections", J.Int p.Memo.Pcache.full_collections) ]
  in
  J.Obj
    ([ ("cycles", J.Int s.cycles);
       ("retired", J.Int s.retired);
       ( "ipc",
         J.Float (float_of_int s.retired /. float_of_int (max 1 s.cycles)) );
       ("emulated_insts", J.Int s.emulated_insts);
       ("wrong_path_insts", J.Int s.wrong_path_insts);
       ( "retired_by_class",
         J.List (Array.to_list (Array.map (fun n -> J.Int n) s.retired_by_class))
       );
       ("branches", branch_json s.branches);
       ("cache", cache_json s.cache) ]
    @ (match s.memo with None -> [] | Some m -> [ ("memo", memo_json m) ])
    @
    match s.pcache with
    | None -> []
    | Some p -> [ ("pcache", pcache_json p) ])
