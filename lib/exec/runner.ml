module Spec = Fastsim.Sim.Spec

type summary = Fastsim.Sim.result

type run_result = {
  summary : summary;
  wall_s : float;
}

let touch path =
  let oc = open_out_gen [ Open_creat; Open_wronly ] 0o644 path in
  close_out oc

let inject_fault = function
  | None -> ()
  | Some (Job.Crash_once sentinel) ->
    if not (Sys.file_exists sentinel) then begin
      touch sentinel;
      failwith "injected fault: crash-once"
    end
  | Some (Job.Hang_once (sentinel, seconds)) ->
    if not (Sys.file_exists sentinel) then begin
      touch sentinel;
      Unix.sleepf seconds
    end
  | Some (Job.Hang seconds) -> Unix.sleepf seconds

let run_sim (job : Job.t) =
  inject_fault job.Job.fault;
  let w = Workloads.Suite.find job.Job.workload in
  let prog = w.Workloads.Workload.build job.Job.scale in
  let spec =
    match (job.Job.engine, job.Job.warm) with
    | `Fast, Some path ->
      Spec.with_pcache
        (Memo.Persist.Codec.load_file ~policy:job.Job.spec.Spec.policy
           ~program:prog path)
        job.Job.spec
    | _ -> job.Job.spec
  in
  let t0 = Unix.gettimeofday () in
  let r = Fastsim.Sim.run ~engine:job.Job.engine spec prog in
  (r, Unix.gettimeofday () -. t0)

let run_job job =
  let summary, wall_s = run_sim job in
  { summary; wall_s }

let summary_to_json = Fastsim.Sim.result_to_json
