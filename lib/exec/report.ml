module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

type entry = {
  job : Job.t;
  attempts : int;
  outcome : [ `Ok of Runner.run_result | `Failed of string ];
}

type t = {
  manifest : Manifest.t;
  backend : string;
  jobs : int;
  warming : (string * float) list;
  entries : entry list;
}

let ok_count t =
  List.length
    (List.filter (fun e -> match e.outcome with `Ok _ -> true | _ -> false)
       t.entries)

let failed t =
  List.filter (fun e -> match e.outcome with `Failed _ -> true | _ -> false)
    t.entries

(* ---------------------------------------------------------------- *)
(* Rollups. Fast and slow runs of the same configuration point are
   paired: their cycle counts must agree (the paper's central claim,
   checked suite-wide here) and their wall-clock ratio is the memoization
   speedup. *)

let pair_key (j : Job.t) =
  Printf.sprintf "%s@%d/%s/%s/%s/%s" j.Job.workload j.Job.scale
    (Spec.predictor_to_string j.Job.spec.Spec.predictor)
    j.Job.cache_name j.Job.params_name
    (Spec.policy_to_string j.Job.spec.Spec.policy)

let pairs t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.outcome with
      | `Failed _ -> ()
      | `Ok r ->
        let key = pair_key e.job in
        let slot =
          match Hashtbl.find_opt tbl key with
          | Some s -> s
          | None ->
            let s = ref (None, None) in
            Hashtbl.add tbl key s;
            s
        in
        (match e.job.Job.engine with
         | `Fast -> slot := (Some r, snd !slot)
         | `Slow -> slot := (fst !slot, Some r)
         | `Baseline -> ()))
    t.entries;
  (* deterministic order: first appearance in the (ordered) entry list *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let key = pair_key e.job in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        match Hashtbl.find_opt tbl key with
        | Some { contents = Some fast, Some slow } -> Some (key, fast, slow)
        | _ -> None
      end)
    t.entries

let geomean = function
  | [] -> None
  | xs ->
    Some
      (exp
         (List.fold_left (fun acc x -> acc +. log x) 0. xs
         /. float_of_int (List.length xs)))

let rollups_json t =
  let entries_pairs = pairs t in
  let pair_json (key, (fast : Runner.run_result), (slow : Runner.run_result)) =
    let speedup = slow.Runner.wall_s /. fast.Runner.wall_s in
    J.Obj
      [ ("key", J.Str key);
        ("cycles", J.Int slow.Runner.summary.Fastsim.Sim.cycles);
        ( "cycle_agreement",
          J.Bool
            (slow.Runner.summary.Fastsim.Sim.cycles
            = fast.Runner.summary.Fastsim.Sim.cycles) );
        ("slow_wall_s", J.Float slow.Runner.wall_s);
        ("fast_wall_s", J.Float fast.Runner.wall_s);
        ("speedup", J.Float speedup) ]
  in
  let speedups =
    List.map
      (fun (_, (f : Runner.run_result), (s : Runner.run_result)) ->
        s.Runner.wall_s /. f.Runner.wall_s)
      entries_pairs
  in
  let agreement =
    List.for_all
      (fun (_, (f : Runner.run_result), (s : Runner.run_result)) ->
        f.Runner.summary.Fastsim.Sim.cycles = s.Runner.summary.Fastsim.Sim.cycles)
      entries_pairs
  in
  let total_wall =
    List.fold_left
      (fun acc e ->
        match e.outcome with `Ok r -> acc +. r.Runner.wall_s | _ -> acc)
      0. t.entries
  in
  J.Obj
    [ ( "totals",
        J.Obj
          [ ("jobs", J.Int (List.length t.entries));
            ("ok", J.Int (ok_count t));
            ("failed", J.Int (List.length (failed t)));
            ( "retried",
              J.Int
                (List.length
                   (List.filter (fun e -> e.attempts > 1) t.entries)) );
            ( "attempts",
              J.Int (List.fold_left (fun a e -> a + e.attempts) 0 t.entries)
            );
            ("total_wall_s", J.Float total_wall) ] );
      ("pairs", J.List (List.map pair_json entries_pairs));
      ( "geomean_speedup",
        match geomean speedups with None -> J.Null | Some g -> J.Float g );
      ( "cycle_agreement",
        if entries_pairs = [] then J.Null else J.Bool agreement ) ]

let entry_json e =
  J.Obj
    ([ ("job", Job.to_json e.job);
       ( "status",
         J.Str (match e.outcome with `Ok _ -> "ok" | `Failed _ -> "failed") );
       ("attempts", J.Int e.attempts) ]
    @
    match e.outcome with
    | `Ok r ->
      [ ("wall_s", J.Float r.Runner.wall_s);
        ("result", Runner.summary_to_json r.Runner.summary) ]
    | `Failed msg -> [ ("error", J.Str msg) ])

let to_json ?timestamp t =
  J.Obj
    ([ ("harness", J.Str "fastsim-sweep") ]
    @ (match timestamp with
       | None -> []
       | Some ts -> [ ("timestamp", J.Str ts) ])
    @ [ ("manifest", Manifest.to_json t.manifest);
        ("backend", J.Str t.backend);
        ("jobs", J.Int t.jobs);
        ( "warming",
          J.List
            (List.map
               (fun (key, wall) ->
                 J.Obj [ ("key", J.Str key); ("wall_s", J.Float wall) ])
               t.warming) );
        ("results", J.List (List.map entry_json t.entries));
        ("rollups", rollups_json t) ])

(* Keys whose values derive from the host clock; everything else in a
   report is a deterministic function of the manifest. *)
let timing_keys =
  [ "wall_s"; "slow_wall_s"; "fast_wall_s"; "total_wall_s"; "speedup";
    "geomean_speedup"; "ipc_rate"; "timestamp" ]

let rec strip_timing = function
  | J.Obj fields ->
    J.Obj
      (List.map
         (fun (k, v) ->
           if List.mem k timing_keys then (k, J.Null) else (k, strip_timing v))
         fields)
  | J.List l -> J.List (List.map strip_timing l)
  | v -> v

let write_file ?timestamp path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc (to_json ?timestamp t);
      output_char oc '\n')
