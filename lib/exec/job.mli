(** One unit of sweep work: a (workload, scale, engine, spec) tuple with a
    stable identity.

    Jobs are produced by {!Manifest.expand} in a deterministic order —
    workload-major, then scale, engine, predictor, cache configuration,
    processor params and policy — and [id] is the position in that order. The report lists
    results by [id] regardless of the order workers complete them, so two
    runs of the same manifest produce identically-ordered reports. *)

type fault =
  | Crash_once of string
      (** Abort the first attempt (creating the sentinel file), succeed on
          retry. Used by the crash/retry tests and for drills. *)
  | Hang_once of string * float
      (** Sleep for the given seconds on the first attempt (creating the
          sentinel file), succeed on retry — exercises the timeout path. *)
  | Hang of float  (** Sleep on {e every} attempt. *)

type t = {
  id : int;
  workload : string;         (** full suite name, e.g. ["099.go"]. *)
  scale : int;
  engine : Fastsim.Sim.engine;
  spec : Fastsim.Sim.Spec.t;
  cache_name : string;       (** manifest label, e.g. ["default"]. *)
  params_name : string;      (** processor-params axis label,
                                 e.g. ["default"]. *)
  warm : string option;      (** path to a persisted p-action cache to
                                 warm-start from (fast engine only). *)
  fault : fault option;      (** test-only fault injection. *)
}

val label : t -> string
(** Human-readable identity, e.g.
    ["099.go@5/fast/standard/default/default/unbounded"]
    (workload\@scale/engine/predictor/cache/params/policy). *)

val to_json : t -> Fastsim_obs.Json.t
(** The job's identity and full spec, embedded in the sweep report so
    every result records exactly which configuration produced it. *)

val fault_to_json : fault -> Fastsim_obs.Json.t
val fault_of_json : Fastsim_obs.Json.t -> fault
(** Raises [Failure] on an unknown kind or missing field. *)
