(** Process-pool fan-out for the time-parallel simulation strategy
    ([Fastsim.Sim.Parallel], docs/STRATEGY.md): adapts {!Pool.map} to the
    {!Fastsim.Sim.fanout} interface the stitcher consumes.

    A worker that crashes or times out becomes [None] in the fan-out
    result; the stitcher repairs that interval serially, so pool failures
    cost time, never correctness. *)

val fanout : ?backend:Pool.backend -> ?jobs:int -> unit -> Fastsim.Sim.fanout
(** [fanout ()] spreads interval workers over a {!Pool.Fork} pool with
    {!Domain_shim.recommended_jobs} workers. [Fork] and [Inline] workers
    may share ([`Inherit]) the caller's warm p-action cache — same
    address space, or copy-on-write after the fork — while [Domains]
    workers build their own ([`Isolate]): the p-action cache is not
    thread-safe, and sharing it across domains would race. *)
