(** Executes one job in the current process.

    This is the piece of the sweep driver that workers run: it resolves
    the workload, builds the program, warm-starts the p-action cache when
    the job carries one, runs the requested engine and reduces the result
    to a plain, process-boundary-safe summary (no closures, no simulator
    state), so the fork backend can ship it back to the parent. *)

type summary = {
  cycles : int;
  retired : int;
  emulated_insts : int;
  wrong_path_insts : int;
  retired_by_class : int array;
  branches : Fastsim.Sim.branch_stats;
  cache : Cachesim.Hierarchy.stats;
  memo : Memo.Stats.t option;           (** fast engine only. *)
  pcache : Memo.Pcache.counters option; (** fast engine only. *)
}

type run_result = {
  summary : summary;
  wall_s : float;
      (** host seconds of the simulation proper — program construction and
          warm-cache loading are excluded. *)
}

val summary_of_result : Fastsim.Sim.result -> summary

val run_sim : Job.t -> Fastsim.Sim.result * float
(** Runs the job and returns the full simulation result plus the wall
    clock of the simulation proper. Injected faults fire first (see
    {!Job.fault}): a crash fault raises [Failure]. Used directly by the
    bench harness, which wants the unreduced result. *)

val run_job : Job.t -> run_result
(** [run_sim] followed by {!summary_of_result}. *)

val summary_to_json : summary -> Fastsim_obs.Json.t
