(** Executes one job in the current process.

    This is the piece of the sweep driver that workers run: it resolves
    the workload, builds the program, warm-starts the p-action cache when
    the job carries one and runs the requested engine. The result is
    plain, process-boundary-safe data (no closures, no simulator state),
    so the fork backend can ship it back to the parent. *)

type summary = Fastsim.Sim.result
(** Historically a reduced projection of {!Fastsim.Sim.result}; since the
    result type became fully serialisable ({!Fastsim.Sim.result_to_json})
    the "summary" {e is} the result, and report/serve consumers share one
    codec. *)

type run_result = {
  summary : summary;
  wall_s : float;
      (** host seconds of the simulation proper — program construction and
          warm-cache loading are excluded. *)
}

val run_sim : Job.t -> Fastsim.Sim.result * float
(** Runs the job and returns the full simulation result plus the wall
    clock of the simulation proper. Injected faults fire first (see
    {!Job.fault}): a crash fault raises [Failure]. Used directly by the
    bench harness, which wants the unreduced result. *)

val run_job : Job.t -> run_result
(** {!run_sim} repackaged with the wall clock. *)

val summary_to_json : summary -> Fastsim_obs.Json.t
(** Alias of {!Fastsim.Sim.result_to_json}. *)
