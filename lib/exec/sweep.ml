module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

type config = {
  backend : Pool.backend;
  jobs : int;
  timeout_s : float;
  retries : int;
  on_progress : (string -> unit) option;
}

let default_config =
  { backend = Pool.Fork;
    jobs = 1;
    timeout_s = 0.;
    retries = 1;
    on_progress = None }

let progress cfg fmt =
  Printf.ksprintf
    (fun line ->
      match cfg.on_progress with None -> () | Some f -> f line)
    fmt

(* A warm cache is shared by every fast job with the same workload, scale
   and configuration-sans-policy: those record identical action graphs, so
   one warming run primes them all. The key is readable plus a digest of
   the exact spec, so distinct configurations never share a file. *)
let warm_key (job : Job.t) =
  let spec_json =
    Spec.to_json { job.Job.spec with Spec.policy = Memo.Pcache.Unbounded }
  in
  Printf.sprintf "%s@%d/%s/%s#%s" job.Job.workload job.Job.scale
    (Spec.predictor_to_string job.Job.spec.Spec.predictor)
    job.Job.cache_name
    (String.sub (Digest.to_hex (Digest.string (J.to_string spec_json))) 0 8)

let warm_file scratch key =
  (* the key contains '/'; flatten it for the filesystem *)
  Filename.concat scratch
    ("warm-" ^ String.map (function '/' -> '_' | c -> c) key ^ ".pcache")

let warm_run (job : Job.t) path =
  let w = Workloads.Suite.find job.Job.workload in
  let prog = w.Workloads.Workload.build job.Job.scale in
  let pc = Memo.Pcache.create ~policy:Memo.Pcache.Unbounded () in
  let spec =
    { job.Job.spec with
      Spec.policy = Memo.Pcache.Unbounded;
      pcache = Some pc }
  in
  let t0 = Unix.gettimeofday () in
  ignore (Fastsim.Sim.run ~engine:`Fast spec prog : Fastsim.Sim.result);
  let wall = Unix.gettimeofday () -. t0 in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  wall

let run ?(config = default_config) manifest =
  let cfg = config in
  let jobs_n =
    if cfg.jobs <= 0 then Domain_shim.recommended_jobs () else cfg.jobs
  in
  let jobs = Array.of_list (Manifest.expand manifest) in
  Pool.with_temp_dir ~prefix:"fastsim-sweep" (fun scratch ->
      (* Each Pool.map call gets a private scratch subdirectory: task
         indices restart at 0 every stage, so sharing one directory would
         let a later stage read an earlier stage's leftover result file
         (marshalled as a different type) for a child that died before
         writing its own. *)
      let stage_dir name =
        let d = Filename.concat scratch name in
        (match Unix.mkdir d 0o700 with
         | () -> ()
         | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
      in
      (* ---- warming stage -------------------------------------- *)
      let warming =
        if not manifest.Manifest.warm then []
        else begin
          let keys = Hashtbl.create 8 in
          let order = ref [] in
          Array.iter
            (fun (j : Job.t) ->
              if j.Job.engine = `Fast then begin
                let key = warm_key j in
                if not (Hashtbl.mem keys key) then begin
                  Hashtbl.add keys key j;
                  order := key :: !order
                end
              end)
            jobs;
          let keys_arr = Array.of_list (List.rev !order) in
          progress cfg "warming %d p-action cache(s) on %d worker(s)"
            (Array.length keys_arr) jobs_n;
          let settled =
            Pool.map ~backend:cfg.backend ~jobs:jobs_n
              ~timeout_s:cfg.timeout_s ~retries:cfg.retries
              ~on_outcome:(fun i (s : float Pool.settled) ->
                match s.Pool.outcome with
                | Pool.Done wall ->
                  progress cfg "warm %s: %.2fs" keys_arr.(i) wall
                | Pool.Crashed msg ->
                  progress cfg "warm %s: FAILED (%s); siblings run cold"
                    keys_arr.(i) msg
                | Pool.Timed_out ->
                  progress cfg "warm %s: TIMED OUT; siblings run cold"
                    keys_arr.(i))
              ~scratch_dir:(stage_dir "warm-stage")
              (fun i ->
                let key = keys_arr.(i) in
                warm_run (Hashtbl.find keys key) (warm_file scratch key))
              (Array.length keys_arr)
          in
          Array.to_list
            (Array.mapi
               (fun i (s : float Pool.settled) ->
                 match s.Pool.outcome with
                 | Pool.Done wall -> Some (keys_arr.(i), wall)
                 | _ -> None)
               settled)
          |> List.filter_map Fun.id
        end
      in
      (* fan the warm caches out to the sibling fast jobs *)
      let jobs =
        Array.map
          (fun (j : Job.t) ->
            if j.Job.engine <> `Fast || not manifest.Manifest.warm then j
            else
              let path = warm_file scratch (warm_key j) in
              if Sys.file_exists path then { j with Job.warm = Some path }
              else j)
          jobs
      in
      (* ---- job stage ------------------------------------------ *)
      progress cfg "running %d job(s) on %d %s worker(s)" (Array.length jobs)
        jobs_n
        (Pool.backend_to_string cfg.backend);
      let n_settled = ref 0 in
      let settled =
        Pool.map ~backend:cfg.backend ~jobs:jobs_n ~timeout_s:cfg.timeout_s
          ~retries:cfg.retries ~scratch_dir:(stage_dir "job-stage")
          ~on_outcome:(fun i (s : Runner.run_result Pool.settled) ->
            incr n_settled;
            let label = Job.label jobs.(i) in
            match s.Pool.outcome with
            | Pool.Done r ->
              progress cfg "[%d/%d] %s: %d cycles in %.2fs%s" !n_settled
                (Array.length jobs) label r.Runner.summary.Fastsim.Sim.cycles
                r.Runner.wall_s
                (if s.Pool.attempts > 1 then
                   Printf.sprintf " (attempt %d)" s.Pool.attempts
                 else "")
            | Pool.Crashed msg ->
              progress cfg "[%d/%d] %s: FAILED after %d attempt(s): %s"
                !n_settled (Array.length jobs) label s.Pool.attempts msg
            | Pool.Timed_out ->
              progress cfg "[%d/%d] %s: TIMED OUT after %d attempt(s)"
                !n_settled (Array.length jobs) label s.Pool.attempts)
          (fun i -> Runner.run_job jobs.(i))
          (Array.length jobs)
      in
      let entries =
        Array.to_list
          (Array.mapi
             (fun i (s : Runner.run_result Pool.settled) ->
               { Report.job = jobs.(i);
                 attempts = s.Pool.attempts;
                 outcome =
                   (match s.Pool.outcome with
                    | Pool.Done r -> `Ok r
                    | Pool.Crashed msg -> `Failed msg
                    | Pool.Timed_out ->
                      `Failed
                        (Printf.sprintf "timed out after %.1fs" cfg.timeout_s)) })
             settled)
      in
      { Report.manifest;
        backend = Pool.backend_to_string cfg.backend;
        jobs = jobs_n;
        warming;
        entries })
