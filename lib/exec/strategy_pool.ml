let fanout ?(backend = Pool.Fork) ?jobs () : Fastsim.Sim.fanout =
  let jobs =
    match jobs with
    | Some j when j > 0 -> j
    | Some j -> invalid_arg (Printf.sprintf "Strategy_pool.fanout: jobs %d" j)
    | None -> max 1 (Domain_shim.recommended_jobs ())
  in
  let f_map : 'a. (int -> 'a) -> int -> 'a option array =
   fun f n ->
    Pool.with_temp_dir ~prefix:"fastsim-strategy" (fun dir ->
        Pool.map ~backend ~jobs ~scratch_dir:dir f n)
    |> Array.map (fun (s : _ Pool.settled) ->
           match s.Pool.outcome with
           | Pool.Done v -> Some v
           | Pool.Crashed _ | Pool.Timed_out -> None)
  in
  let f_pcache_mode =
    match backend with
    | Pool.Fork | Pool.Inline -> `Inherit
    | Pool.Domains -> `Isolate
  in
  { Fastsim.Sim.f_map; f_pcache_mode }
