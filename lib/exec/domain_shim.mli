(** Portability shim over OCaml 5 domains.

    The sweep driver's default worker backend is process-based
    ({!Pool.Fork}), which behaves identically on 4.14 and 5.x; the
    [Domains] backend is an opt-in for multicore runtimes. This module
    presents one interface over both compilers: on 5.x it is a real
    work-sharing domain pool, on 4.14 it degrades to sequential in-process
    execution (and {!available} lets callers warn about it). *)

val available : bool
(** [true] iff the runtime actually executes thunks on multiple domains. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on 5.x; a small constant on
    4.14. *)

val run : jobs:int -> (unit -> unit) array -> unit
(** Executes every thunk exactly once and returns when all are done. On
    5.x, thunks run concurrently on up to [jobs] domains, so they must not
    share mutable state; each thunk is responsible for storing its own
    result and catching its own exceptions. On 4.14, thunks run
    sequentially in the calling process. *)

type handle
(** A spawned long-lived domain (the serve fleet's domain transport). *)

val spawn : (unit -> unit) -> handle
(** [Domain.spawn] on 5.x. Raises [Invalid_argument] on 4.14 — callers
    must gate on {!available}. *)

val join : handle -> unit

(** A blocking multi-producer/multi-consumer queue for handing work to
    spawned domains. On 5.x it is mutex+condition synchronised; on 4.14
    it is a plain queue usable only within one thread of control
    ({!Mailbox.take} on an empty mailbox raises there, since no other
    domain could ever fill it). *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val put : 'a t -> 'a -> unit

  val take_opt : 'a t -> 'a option
  (** Non-blocking. *)

  val take : 'a t -> 'a
  (** Blocks until a value arrives (5.x). On 4.14, raises
      [Invalid_argument] when empty instead of deadlocking. *)
end
