(** The sweep report: every job's configuration and result in job order,
    plus suite-level rollups.

    Schema (see [docs/SWEEP.md] for the full description):

    {v
    { "harness":  "fastsim-sweep",
      "manifest": { ...canonical manifest echo... },
      "backend":  "fork", "jobs": 4,
      "warming":  [ {"key": ..., "wall_s": ...}, ... ],
      "results":  [ {"job": {...}, "status": "ok"|"failed",
                     "attempts": N, "wall_s": S,
                     "result": { cycles, retired, ... } |
                     "error": "..."}, ... ],
      "rollups":  { "totals": {...}, "pairs": [...],
                    "geomean_speedup": F, "cycle_agreement": B } }
    v}

    Two runs of the same manifest produce byte-identical reports after
    {!strip_timing} (which nulls the host-time-derived values), because
    job order is deterministic and every simulation statistic is
    deterministic. *)

type entry = {
  job : Job.t;
  attempts : int;
  outcome : [ `Ok of Runner.run_result | `Failed of string ];
}

type t = {
  manifest : Manifest.t;
  backend : string;
  jobs : int;
  warming : (string * float) list;
      (** (warm key, wall seconds) for each pcache-warming run. *)
  entries : entry list;  (** in job-id order. *)
}

val ok_count : t -> int
val failed : t -> entry list

val to_json : ?timestamp:string -> t -> Fastsim_obs.Json.t
(** [timestamp], when given, is embedded verbatim (the library never
    reads the clock for report content, keeping reports reproducible;
    the CLI passes the current time). *)

val strip_timing : Fastsim_obs.Json.t -> Fastsim_obs.Json.t
(** Replaces every value whose key carries host-time-derived content
    ([wall_s], [speedup], [geomean_speedup], [total_wall_s], [ipc_rate]…,
    and [timestamp]) with [null], recursively. Two runs of the same
    manifest are byte-identical after this — the determinism contract the
    test suite enforces. *)

val write_file : ?timestamp:string -> string -> t -> unit
