type backend = Fork | Domains | Inline

let backend_to_string = function
  | Fork -> "fork"
  | Domains -> "domains"
  | Inline -> "inline"

let backend_of_string = function
  | "fork" -> Ok Fork
  | "domains" -> Ok Domains
  | "inline" -> Ok Inline
  | s -> Error (Printf.sprintf "unknown backend %S (want fork, domains or inline)" s)

type 'a outcome =
  | Done of 'a
  | Crashed of string
  | Timed_out

type 'a settled = {
  outcome : 'a outcome;
  attempts : int;
}

(* ---------------------------------------------------------------- *)
(* Temp directories (no Filename.temp_dir on 4.14). *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir ~prefix f =
  let base = Filename.get_temp_dir_name () in
  let rec make tries =
    let name =
      Printf.sprintf "%s-%d-%06x" prefix (Unix.getpid ())
        (Random.int 0x1000000)
    in
    let path = Filename.concat base name in
    match Unix.mkdir path 0o700 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries < 100 ->
      make (tries + 1)
  in
  let dir = make 0 in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* ---------------------------------------------------------------- *)
(* Inline backend: sequential, in-process. *)

let run_attempt f i =
  match f i with
  | v -> Done v
  | exception e -> Crashed (Printexc.to_string e)

let settle_inline ?on_outcome ~retries f results i =
  let rec go attempt =
    match run_attempt f i with
    | Done _ as outcome -> { outcome; attempts = attempt }
    | (Crashed _ | Timed_out) when attempt <= retries -> go (attempt + 1)
    | outcome -> { outcome; attempts = attempt }
  in
  let settled = go 1 in
  results.(i) <- Some settled;
  match on_outcome with None -> () | Some cb -> cb i settled

let map_inline ?on_outcome ~retries f n =
  let results = Array.make n None in
  for i = 0 to n - 1 do
    settle_inline ?on_outcome ~retries f results i
  done;
  results

(* ---------------------------------------------------------------- *)
(* Domains backend: concurrent attempts on a domain pool; retries run in
   subsequent rounds. No timeout enforcement (a domain cannot be safely
   killed), no crash isolation. *)

let map_domains ?on_outcome ~jobs ~retries f n =
  let results = Array.make n None in
  let attempts = Array.make n 0 in
  let pending = ref (List.init n (fun i -> i)) in
  while !pending <> [] do
    let round = Array.of_list !pending in
    let outcomes = Array.make (Array.length round) (Crashed "not run") in
    let thunks =
      Array.mapi
        (fun slot i -> fun () -> outcomes.(slot) <- run_attempt f i)
        round
    in
    Domain_shim.run ~jobs thunks;
    let next = ref [] in
    Array.iteri
      (fun slot i ->
        attempts.(i) <- attempts.(i) + 1;
        match outcomes.(slot) with
        | (Crashed _ | Timed_out) when attempts.(i) <= retries ->
          next := i :: !next
        | outcome ->
          let settled = { outcome; attempts = attempts.(i) } in
          results.(i) <- Some settled;
          (match on_outcome with None -> () | Some cb -> cb i settled))
      round;
    pending := List.rev !next
  done;
  results

(* ---------------------------------------------------------------- *)
(* Fork backend. Each attempt is a forked child that evaluates the task,
   marshals an [('a, string) result] to a scratch file (write to a temp
   name, then rename, so the parent never reads a half-written file) and
   exits. The parent keeps up to [jobs] children alive, reaps with
   WNOHANG, and SIGKILLs any child that outlives the timeout. *)

let child_run f task result_file =
  (* Never let anything escape the child except its exit. *)
  let result =
    match f task with
    | v -> Ok v
    | exception e -> Error (Printexc.to_string e)
  in
  (try
     let tmp = result_file ^ ".tmp" in
     let oc = open_out_bin tmp in
     Marshal.to_channel oc result [];
     close_out oc;
     Sys.rename tmp result_file
   with _ -> ());
  Unix._exit (match result with Ok _ -> 0 | Error _ -> 3)

let read_result_file path : ('a, string) result option =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match Marshal.from_channel ic with
        | r -> Some r
        | exception _ -> None)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* ---------------------------------------------------------------- *)
(* Incremental fork-task API: spawn one child, poll it from an event
   loop, kill it on timeout/cancellation. [map_fork] below is a batch
   driver over this; the serve daemon is an incremental one. *)

module Async = struct
  type 'a state = Running | Settled of 'a outcome

  type 'a task = {
    pid : int;
    result_file : string;
    started : float;
    mutable killed : bool;
    mutable state : 'a state;
  }

  let spawn ?spans ~scratch_dir ~tag f =
    let result_file = Filename.concat scratch_dir (tag ^ ".res") in
    let fork_start = Fastsim_obs.Span.now_us () in
    (* Flush so the child does not replay the parent's buffered output. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> child_run f () result_file
    | pid ->
      (match spans with
       | Some c ->
         Fastsim_obs.Span.record c ~name:"pool.fork" ~cat:"pool"
           ~args:[ ("tag", Fastsim_obs.Json.Str tag);
                   ("pid", Fastsim_obs.Json.Int pid) ]
           ~start_us:fork_start ~end_us:(Fastsim_obs.Span.now_us ()) ()
       | None -> ());
      let log = Fastsim_obs.Log.default () in
      if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
        Fastsim_obs.Log.debug log ~event:"pool.spawn"
          [ ("tag", Fastsim_obs.Json.Str tag);
            ("pid", Fastsim_obs.Json.Int pid) ];
      { pid; result_file; started = Unix.gettimeofday (); killed = false;
        state = Running }

  let pid t = t.pid
  let elapsed t = Unix.gettimeofday () -. t.started

  (* The child is gone (reaped, or reaped elsewhere): derive the outcome.
     A result file that parses wins even for a killed child — the work
     finished, the kill merely raced its exit. The file is consumed
     immediately: a stale file surviving into a later task with the same
     tag would be unmarshalled as that task's result type — a
     memory-unsafe type confusion. *)
  let settle t status_opt =
    let outcome =
      match read_result_file t.result_file with
      | Some (Ok v) -> Done v
      | Some (Error msg) -> Crashed msg
      | None ->
        if t.killed then Timed_out
        else
          Crashed
            ("worker "
            ^
            match status_opt with
            | Some status -> status_to_string status
            | None -> "exited (reaped elsewhere)")
    in
    (try Sys.remove t.result_file with Sys_error _ -> ());
    (try Sys.remove (t.result_file ^ ".tmp") with Sys_error _ -> ());
    t.state <- Settled outcome;
    let log = Fastsim_obs.Log.default () in
    if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
      Fastsim_obs.Log.debug log ~event:"pool.settle"
        [ ("pid", Fastsim_obs.Json.Int t.pid);
          ( "outcome",
            Fastsim_obs.Json.Str
              (match outcome with
               | Done _ -> "done"
               | Crashed m -> "crashed: " ^ m
               | Timed_out -> "timed_out") ) ];
    outcome

  (* Poll only this task's pid: waitpid(-1) would also reap — and
     silently discard the status of — any other child of the host
     process (library embeddings, a concurrent pool). *)
  let poll t =
    match t.state with
    | Settled o -> Some o
    | Running -> (
      match Unix.waitpid [ Unix.WNOHANG ] t.pid with
      | 0, _ -> None
      | _, status -> Some (settle t (Some status))
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        Some (settle t None)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

  let kill t =
    match t.state with
    | Settled _ -> ()
    | Running ->
      t.killed <- true;
      let log = Fastsim_obs.Log.default () in
      if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
        Fastsim_obs.Log.debug log ~event:"pool.kill"
          [ ("pid", Fastsim_obs.Json.Int t.pid) ];
      (try Unix.kill t.pid Sys.sigkill with _ -> ())

  let stop t =
    match t.state with
    | Settled _ -> ()
    | Running ->
      kill t;
      let rec wait () =
        match Unix.waitpid [] t.pid with
        | _, status -> ignore (settle t (Some status) : _ outcome)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          ignore (settle t None : _ outcome)
      in
      wait ()
end

(* ---------------------------------------------------------------- *)
(* Persistent workers: long-lived forked children that serve many
   requests over a pipe pair instead of paying one fork per task. The
   serve fleet ([Fastsim_serve.Fleet]) keeps one per registry shard so
   warm in-memory state survives across requests. Protocol: the parent
   marshals one ['req] at a time (a worker holds at most one in-flight
   request), the child replies with a marshalled [('resp, string)
   result]; closing the request pipe is the graceful-shutdown signal
   (the child exits 0 on EOF). *)

module Worker = struct
  type ('req, 'resp) t = {
    w_pid : int;
    w_tag : string;
    w_req_fd : Unix.file_descr;
    w_resp_fd : Unix.file_descr;
    w_buf : Buffer.t;
    w_chunk : Bytes.t;
    mutable w_busy : bool;
    mutable w_submitted : float;
    mutable w_killed : bool;
    mutable w_dead : bool;
    mutable w_req_closed : bool;
  }

  let child_loop handler req_fd resp_fd =
    let ic = Unix.in_channel_of_descr req_fd in
    let oc = Unix.out_channel_of_descr resp_fd in
    (* The handler thunk runs once per worker lifetime, so a respawned
       worker starts from fresh state; a raising request only poisons
       its own reply, never the worker. *)
    let f = try handler () with _ -> Unix._exit 3 in
    let rec loop () =
      match (Marshal.from_channel ic : 'req) with
      | exception (End_of_file | Sys_error _ | Failure _) -> Unix._exit 0
      | req ->
        let resp : ('resp, string) result =
          match f req with
          | v -> Ok v
          | exception e -> Error (Printexc.to_string e)
        in
        (try
           Marshal.to_channel oc resp [ Marshal.Closures ];
           flush oc
         with _ -> Unix._exit 0 (* parent is gone *));
        loop ()
    in
    loop ()

  let spawn ?spans ~tag (handler : unit -> 'req -> 'resp) : ('req, 'resp) t =
    let req_r, req_w = Unix.pipe () in
    let resp_r, resp_w = Unix.pipe () in
    let fork_start = Fastsim_obs.Span.now_us () in
    (* Flush so the child does not replay the parent's buffered output. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Unix.close req_w;
      Unix.close resp_r;
      child_loop handler req_r resp_w
    | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      Unix.set_nonblock resp_r;
      (match spans with
       | Some c ->
         Fastsim_obs.Span.record c ~name:"pool.fork" ~cat:"pool"
           ~args:
             [ ("tag", Fastsim_obs.Json.Str tag);
               ("pid", Fastsim_obs.Json.Int pid) ]
           ~start_us:fork_start ~end_us:(Fastsim_obs.Span.now_us ()) ()
       | None -> ());
      let log = Fastsim_obs.Log.default () in
      if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
        Fastsim_obs.Log.debug log ~event:"pool.spawn"
          [ ("tag", Fastsim_obs.Json.Str tag);
            ("pid", Fastsim_obs.Json.Int pid);
            ("persistent", Fastsim_obs.Json.Bool true) ];
      { w_pid = pid; w_tag = tag; w_req_fd = req_w; w_resp_fd = resp_r;
        w_buf = Buffer.create 4096; w_chunk = Bytes.create 65536;
        w_busy = false; w_submitted = 0.; w_killed = false; w_dead = false;
        w_req_closed = false }

  let pid t = t.w_pid
  let tag t = t.w_tag
  let fd t = t.w_resp_fd
  let busy t = t.w_busy
  let alive t = not t.w_dead
  let elapsed t = if t.w_busy then Unix.gettimeofday () -. t.w_submitted else 0.

  let write_all fd b =
    let len = Bytes.length b in
    let pos = ref 0 in
    while !pos < len do
      match Unix.write fd b !pos (len - !pos) with
      | n -> pos := !pos + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done

  let submit t req =
    if t.w_dead || t.w_busy || t.w_req_closed then
      invalid_arg "Pool.Worker.submit: worker dead or busy";
    t.w_busy <- true;
    t.w_submitted <- Unix.gettimeofday ();
    (* The child sits in a blocking read between requests, so a large
       request drains through the pipe without deadlock. EPIPE (child
       died under us) is left for [poll] to discover as EOF, keeping
       the caller's failure handling single-path. *)
    try write_all t.w_req_fd (Marshal.to_bytes req [ Marshal.Closures ])
    with Unix.Unix_error _ | Sys_error _ -> ()

  let rec drain t =
    match Unix.read t.w_resp_fd t.w_chunk 0 (Bytes.length t.w_chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes t.w_buf t.w_chunk 0 n;
      drain t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Blocked
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain t
    | exception Unix.Unix_error _ -> `Eof

  (* At most one reply can be buffered (one in-flight request), so the
     buffer is cleared whole once a complete marshalled value arrives. *)
  let parse_ready t : ('resp, string) result option =
    let len = Buffer.length t.w_buf in
    if len < Marshal.header_size then None
    else begin
      let b = Buffer.to_bytes t.w_buf in
      let need = Marshal.header_size + Marshal.data_size b 0 in
      if len < need then None
      else begin
        Buffer.clear t.w_buf;
        match (Marshal.from_bytes b 0 : ('resp, string) result) with
        | r -> Some r
        | exception _ -> Some (Error "unmarshalable worker reply")
      end
    end

  let rec reap_blocking t =
    match Unix.waitpid [] t.w_pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap_blocking t
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

  let poll t : 'resp outcome option =
    if t.w_dead then None
    else begin
      let status = drain t in
      match parse_ready t with
      | Some (Ok v) ->
        t.w_busy <- false;
        Some (Done v)
      | Some (Error msg) ->
        (* The request raised but the worker caught it and lives on. *)
        t.w_busy <- false;
        Some (Crashed msg)
      | None -> (
        match status with
        | `Blocked -> None
        | `Eof ->
          (* Child closed its pipe: it has exited or is about to. *)
          t.w_dead <- true;
          reap_blocking t;
          let was_busy = t.w_busy in
          t.w_busy <- false;
          let log = Fastsim_obs.Log.default () in
          if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
            Fastsim_obs.Log.debug log ~event:"pool.worker_exit"
              [ ("tag", Fastsim_obs.Json.Str t.w_tag);
                ("pid", Fastsim_obs.Json.Int t.w_pid);
                ("killed", Fastsim_obs.Json.Bool t.w_killed) ];
          if t.w_killed then Some Timed_out
          else if was_busy then Some (Crashed "worker exited mid-request")
          else None)
    end

  let kill t =
    if not t.w_dead then begin
      t.w_killed <- true;
      let log = Fastsim_obs.Log.default () in
      if Fastsim_obs.Log.enabled log Fastsim_obs.Log.Debug then
        Fastsim_obs.Log.debug log ~event:"pool.kill"
          [ ("pid", Fastsim_obs.Json.Int t.w_pid) ];
      try Unix.kill t.w_pid Sys.sigkill with Unix.Unix_error _ -> ()
    end

  let close_req t =
    if not t.w_req_closed then begin
      t.w_req_closed <- true;
      try Unix.close t.w_req_fd with Unix.Unix_error _ -> ()
    end

  let stop ?(grace_s = 1.0) t =
    close_req t;
    if not t.w_dead then begin
      let deadline = Unix.gettimeofday () +. grace_s in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] t.w_pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill t.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap_blocking t
          end
          else begin
            Unix.sleepf 0.005;
            wait ()
          end
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ();
      t.w_dead <- true
    end;
    try Unix.close t.w_resp_fd with Unix.Unix_error _ -> ()
end

let map_fork ?on_outcome ~jobs ~timeout_s ~retries ~scratch_dir f n =
  let results = Array.make n None in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add (i, 1) pending
  done;
  let running : (int * int * _ Async.task) list ref = ref [] in
  let spawn (task, attempt) =
    let t =
      Async.spawn ~scratch_dir
        ~tag:(Printf.sprintf "task-%d-attempt-%d" task attempt)
        (fun () -> f task)
    in
    running := (task, attempt, t) :: !running
  in
  let settle task attempt outcome =
    match outcome with
    | (Crashed _ | Timed_out) when attempt <= retries ->
      Queue.add (task, attempt + 1) pending
    | outcome ->
      let settled = { outcome; attempts = attempt } in
      results.(task) <- Some settled;
      (match on_outcome with None -> () | Some cb -> cb task settled)
  in
  Fun.protect
    ~finally:(fun () ->
      (* Only reached with children still running when an exception is
         escaping: kill them, then reap so they don't linger as zombies. *)
      List.iter (fun (_, _, t) -> Async.stop t) !running)
    (fun () ->
      while (not (Queue.is_empty pending)) || !running <> [] do
        while (not (Queue.is_empty pending)) && List.length !running < jobs do
          spawn (Queue.pop pending)
        done;
        let still = ref [] in
        List.iter
          (fun ((task, attempt, t) as r) ->
            match Async.poll t with
            | Some outcome -> settle task attempt outcome
            | None -> still := r :: !still)
          !running;
        running := List.rev !still;
        if timeout_s > 0. then
          List.iter
            (fun (_, _, t) ->
              if Async.elapsed t > timeout_s then Async.kill t)
            !running;
        if !running <> [] then Unix.sleepf 0.002
      done);
  results

(* ---------------------------------------------------------------- *)

let map ?(backend = Fork) ?(jobs = 1) ?(timeout_s = 0.) ?(retries = 0)
    ?on_outcome ~scratch_dir f n =
  let jobs = max 1 jobs in
  let results =
    match backend with
    | Inline -> map_inline ?on_outcome ~retries f n
    | Domains -> map_domains ?on_outcome ~jobs ~retries f n
    | Fork -> map_fork ?on_outcome ~jobs ~timeout_s ~retries ~scratch_dir f n
  in
  Array.map
    (function
      | Some s -> s
      | None -> { outcome = Crashed "task never settled"; attempts = 0 })
    results
