type backend = Fork | Domains | Inline

let backend_to_string = function
  | Fork -> "fork"
  | Domains -> "domains"
  | Inline -> "inline"

let backend_of_string = function
  | "fork" -> Ok Fork
  | "domains" -> Ok Domains
  | "inline" -> Ok Inline
  | s -> Error (Printf.sprintf "unknown backend %S (want fork, domains or inline)" s)

type 'a outcome =
  | Done of 'a
  | Crashed of string
  | Timed_out

type 'a settled = {
  outcome : 'a outcome;
  attempts : int;
}

(* ---------------------------------------------------------------- *)
(* Temp directories (no Filename.temp_dir on 4.14). *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir ~prefix f =
  let base = Filename.get_temp_dir_name () in
  let rec make tries =
    let name =
      Printf.sprintf "%s-%d-%06x" prefix (Unix.getpid ())
        (Random.int 0x1000000)
    in
    let path = Filename.concat base name in
    match Unix.mkdir path 0o700 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries < 100 ->
      make (tries + 1)
  in
  let dir = make 0 in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* ---------------------------------------------------------------- *)
(* Inline backend: sequential, in-process. *)

let run_attempt f i =
  match f i with
  | v -> Done v
  | exception e -> Crashed (Printexc.to_string e)

let settle_inline ?on_outcome ~retries f results i =
  let rec go attempt =
    match run_attempt f i with
    | Done _ as outcome -> { outcome; attempts = attempt }
    | (Crashed _ | Timed_out) when attempt <= retries -> go (attempt + 1)
    | outcome -> { outcome; attempts = attempt }
  in
  let settled = go 1 in
  results.(i) <- Some settled;
  match on_outcome with None -> () | Some cb -> cb i settled

let map_inline ?on_outcome ~retries f n =
  let results = Array.make n None in
  for i = 0 to n - 1 do
    settle_inline ?on_outcome ~retries f results i
  done;
  results

(* ---------------------------------------------------------------- *)
(* Domains backend: concurrent attempts on a domain pool; retries run in
   subsequent rounds. No timeout enforcement (a domain cannot be safely
   killed), no crash isolation. *)

let map_domains ?on_outcome ~jobs ~retries f n =
  let results = Array.make n None in
  let attempts = Array.make n 0 in
  let pending = ref (List.init n (fun i -> i)) in
  while !pending <> [] do
    let round = Array.of_list !pending in
    let outcomes = Array.make (Array.length round) (Crashed "not run") in
    let thunks =
      Array.mapi
        (fun slot i -> fun () -> outcomes.(slot) <- run_attempt f i)
        round
    in
    Domain_shim.run ~jobs thunks;
    let next = ref [] in
    Array.iteri
      (fun slot i ->
        attempts.(i) <- attempts.(i) + 1;
        match outcomes.(slot) with
        | (Crashed _ | Timed_out) when attempts.(i) <= retries ->
          next := i :: !next
        | outcome ->
          let settled = { outcome; attempts = attempts.(i) } in
          results.(i) <- Some settled;
          (match on_outcome with None -> () | Some cb -> cb i settled))
      round;
    pending := List.rev !next
  done;
  results

(* ---------------------------------------------------------------- *)
(* Fork backend. Each attempt is a forked child that evaluates the task,
   marshals an [('a, string) result] to a scratch file (write to a temp
   name, then rename, so the parent never reads a half-written file) and
   exits. The parent keeps up to [jobs] children alive, reaps with
   WNOHANG, and SIGKILLs any child that outlives the timeout. *)

type running = {
  pid : int;
  task : int;
  attempt : int;
  started : float;
  result_file : string;
  mutable killed : bool;
}

let child_run f task result_file =
  (* Never let anything escape the child except its exit. *)
  let result =
    match f task with
    | v -> Ok v
    | exception e -> Error (Printexc.to_string e)
  in
  (try
     let tmp = result_file ^ ".tmp" in
     let oc = open_out_bin tmp in
     Marshal.to_channel oc result [];
     close_out oc;
     Sys.rename tmp result_file
   with _ -> ());
  Unix._exit (match result with Ok _ -> 0 | Error _ -> 3)

let read_result_file path : ('a, string) result option =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match Marshal.from_channel ic with
        | r -> Some r
        | exception _ -> None)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

let map_fork ?on_outcome ~jobs ~timeout_s ~retries ~scratch_dir f n =
  let results = Array.make n None in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add (i, 1) pending
  done;
  let running : running list ref = ref [] in
  let spawn (task, attempt) =
    let result_file =
      Filename.concat scratch_dir
        (Printf.sprintf "task-%d-attempt-%d.res" task attempt)
    in
    (* Flush so the child does not replay the parent's buffered output. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> child_run f task result_file
    | pid ->
      running :=
        { pid; task; attempt; started = Unix.gettimeofday ();
          result_file; killed = false }
        :: !running
  in
  let settle task attempt outcome =
    match outcome with
    | (Crashed _ | Timed_out) when attempt <= retries ->
      Queue.add (task, attempt + 1) pending
    | outcome ->
      let settled = { outcome; attempts = attempt } in
      results.(task) <- Some settled;
      (match on_outcome with None -> () | Some cb -> cb task settled)
  in
  let reap pid status =
    match List.partition (fun r -> r.pid = pid) !running with
    | [ r ], rest ->
      running := rest;
      let outcome =
        (* A result file that parses wins even for a killed child: the
           work finished, the kill merely raced its exit. *)
        match read_result_file r.result_file with
        | Some (Ok v) -> Done v
        | Some (Error msg) -> Crashed msg
        | None ->
          if r.killed then Timed_out
          else Crashed ("worker " ^ status_to_string status)
      in
      (* Consume the result file now: a stale file surviving into a later
         Pool.map over the same scratch dir would be unmarshalled as that
         call's result type — a memory-unsafe type confusion. *)
      (try Sys.remove r.result_file with Sys_error _ -> ());
      (try Sys.remove (r.result_file ^ ".tmp") with Sys_error _ -> ());
      settle r.task r.attempt outcome
    | _ -> () (* not one of ours; ignore *)
  in
  Fun.protect
    ~finally:(fun () ->
      (* Only reached with children still running when an exception is
         escaping: kill them, then reap so they don't linger as zombies. *)
      List.iter
        (fun r ->
          (try Unix.kill r.pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] r.pid) with _ -> ())
        !running)
    (fun () ->
      while (not (Queue.is_empty pending)) || !running <> [] do
        while (not (Queue.is_empty pending)) && List.length !running < jobs do
          spawn (Queue.pop pending)
        done;
        (* Poll only the pool's own pids: waitpid(-1) would also reap —
           and silently discard the status of — any other child of the
           host process (library embeddings, a concurrent pool). *)
        List.iter
          (fun r ->
            match Unix.waitpid [ Unix.WNOHANG ] r.pid with
            | 0, _ -> ()
            | pid, status -> reap pid status
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              (* someone else reaped it; settle from the result file *)
              reap r.pid (Unix.WEXITED 0)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          !running;
        if timeout_s > 0. then begin
          let now = Unix.gettimeofday () in
          List.iter
            (fun r ->
              if (not r.killed) && now -. r.started > timeout_s then begin
                r.killed <- true;
                try Unix.kill r.pid Sys.sigkill with _ -> ()
              end)
            !running
        end;
        if !running <> [] then Unix.sleepf 0.002
      done);
  results

(* ---------------------------------------------------------------- *)

let map ?(backend = Fork) ?(jobs = 1) ?(timeout_s = 0.) ?(retries = 0)
    ?on_outcome ~scratch_dir f n =
  let jobs = max 1 jobs in
  let results =
    match backend with
    | Inline -> map_inline ?on_outcome ~retries f n
    | Domains -> map_domains ?on_outcome ~jobs ~retries f n
    | Fork -> map_fork ?on_outcome ~jobs ~timeout_s ~retries ~scratch_dir f n
  in
  Array.map
    (function
      | Some s -> s
      | None -> { outcome = Crashed "task never settled"; attempts = 0 })
    results
