(** A sweep manifest: the axes of a batch experiment.

    {!expand} takes the cartesian product
    workloads × scales × engines × predictors × cache configs ×
    processor params × policies and yields one {!Job.t} per point, in
    that nesting order (outermost varies slowest). The order is
    deterministic, so job ids — and the report — are stable across runs
    of the same manifest. [`Baseline] ignores the predictor, the
    processor params and the policy, so for baseline jobs those three
    axes collapse to their first value instead of producing duplicates.

    JSON form (only ["workloads"] is required; see [docs/SWEEP.md] and
    [docs/CONFIG.md]):

    {v
    { "workloads":      ["go", "129.compress"],
      "scales":         [5],
      "engines":        ["fast", "slow"],
      "predictors":     ["standard"],
      "cache_configs":  ["default", {"name": "small-l1", "l1_size": 4096}],
      "policies":       ["unbounded", "flush:16384"],
      "params_configs": ["default",
                         {"name": "narrow", "fetch_width": 2},
                         {"name": "tiny-prf", "phys_int_regs": 40}],
      "max_cycles":     20000000,
      "warm":           true }
    v}

    The legacy ["params"] key (one override object applied to every job)
    is still accepted and decodes as a one-point axis named ["custom"];
    giving both ["params"] and ["params_configs"] is an error. *)

type cache_axis = {
  c_name : string;  (** label used in job identities and the report. *)
  c_config : Cachesim.Config.t;
}

type params_axis = {
  p_name : string;  (** label used in job identities and the report. *)
  p_params : Uarch.Params.t;
}

type t = {
  workloads : string list;  (** suite names, full or short. *)
  scales : int list option;
      (** [None]: each workload runs at its default scale. *)
  engines : Fastsim.Sim.engine list;
  predictors : Fastsim.Sim.predictor_kind list;
  cache_configs : cache_axis list;
  policies : Memo.Pcache.policy list;
  params_configs : params_axis list;
      (** processor-parameter axis (machine descriptions to sweep). *)
  max_cycles : int option;
  warm : bool;
      (** run a pcache-warming stage and fan the caches out to the fast
          jobs (see {!Sweep}). *)
  fault : (string option * Job.fault) option;
      (** test-only fault injection: [(workload filter, fault)]; a [None]
          filter faults every job. *)
}

val make : workloads:string list -> unit -> t
(** A manifest with the default axes: fast + slow engines, standard
    predictor, default cache, unbounded policy, default scales, no
    warming. *)

val of_json_result : Fastsim_obs.Json.t -> (t, string) result
(** Rejects unknown keys, {e duplicate} keys, unknown axis values and
    ill-typed fields. *)

val of_json : Fastsim_obs.Json.t -> t
(** Raising wrapper over {!of_json_result} ([Failure]). *)

val to_json : t -> Fastsim_obs.Json.t
(** Canonical echo of the manifest (embedded in the report). *)

val expand : t -> Job.t list
(** Resolves workload names against {!Workloads.Suite} (raising [Failure]
    with the offending name if unknown) and produces the job list. Warm
    cache paths are attached later by {!Sweep}. *)
