module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

type fault =
  | Crash_once of string
  | Hang_once of string * float
  | Hang of float

type t = {
  id : int;
  workload : string;
  scale : int;
  engine : Fastsim.Sim.engine;
  spec : Fastsim.Sim.Spec.t;
  cache_name : string;
  params_name : string;
  warm : string option;
  fault : fault option;
}

let label t =
  Printf.sprintf "%s@%d/%s/%s/%s/%s/%s" t.workload t.scale
    (Spec.engine_to_string t.engine)
    (Spec.predictor_to_string t.spec.Spec.predictor)
    t.cache_name t.params_name
    (Spec.policy_to_string t.spec.Spec.policy)

let fault_to_json = function
  | Crash_once sentinel ->
    J.Obj [ ("kind", J.Str "crash-once"); ("sentinel", J.Str sentinel) ]
  | Hang_once (sentinel, seconds) ->
    J.Obj
      [ ("kind", J.Str "hang-once");
        ("sentinel", J.Str sentinel);
        ("seconds", J.Float seconds) ]
  | Hang seconds ->
    J.Obj [ ("kind", J.Str "hang"); ("seconds", J.Float seconds) ]

let fault_of_json j =
  match J.to_str (J.member "kind" j) with
  | "crash-once" -> Crash_once (J.to_str (J.member "sentinel" j))
  | "hang-once" ->
    Hang_once
      (J.to_str (J.member "sentinel" j), J.to_float (J.member "seconds" j))
  | "hang" -> Hang (J.to_float (J.member "seconds" j))
  | k -> failwith (Printf.sprintf "unknown fault kind %S" k)

let to_json t =
  J.Obj
    ([ ("id", J.Int t.id);
       ("label", J.Str (label t));
       ("workload", J.Str t.workload);
       ("scale", J.Int t.scale);
       ("engine", J.Str (Spec.engine_to_string t.engine));
       ("cache_name", J.Str t.cache_name);
       ("params_name", J.Str t.params_name);
       ("warm", J.Bool (t.warm <> None));
       ("spec", Spec.to_json t.spec) ]
    @
    match t.fault with
    | None -> []
    | Some f -> [ ("fault", fault_to_json f) ])
