(** A bounded worker pool with per-task timeouts and bounded retries.

    Three backends behind one interface:

    - {!Fork} (default): one forked process per task attempt, results
      shipped back through marshalled scratch files. Works identically on
      OCaml 4.14 and 5.x, isolates worker crashes from the driver, and is
      the only backend that can enforce timeouts (the parent SIGKILLs an
      overrunning child).
    - {!Domains}: a domain pool on OCaml 5.x ({!Domain_shim}); on 4.14 it
      silently degrades to sequential execution. No timeout enforcement
      and no crash isolation — a segfaulting task takes the driver down —
      but no fork/marshal overhead.
    - {!Inline}: sequential in-process execution, mainly for debugging
      and for deterministic single-process tests.

    The returned array is indexed in {e task order} regardless of
    completion order. [on_outcome], by contrast, fires as each task
    {e settles} (final attempt done) — i.e. in completion order, which
    depends on scheduling. Drivers that need a deterministic report must
    derive it from the returned array, not from [on_outcome] (which is
    for progress display). *)

type backend = Fork | Domains | Inline

val backend_to_string : backend -> string
val backend_of_string : string -> (backend, string) result

type 'a outcome =
  | Done of 'a
  | Crashed of string
      (** the task raised, or its worker process died (non-zero exit,
          signal, or unreadable result file); the payload describes it. *)
  | Timed_out

type 'a settled = {
  outcome : 'a outcome;
  attempts : int;  (** total attempts consumed (1 = no retry needed). *)
}

val map :
  ?backend:backend ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?on_outcome:(int -> 'a settled -> unit) ->
  scratch_dir:string ->
  (int -> 'a) ->
  int ->
  'a settled array
(** [map ~scratch_dir f n] evaluates [f i] for [0 <= i < n] and returns
    the settled outcomes indexed by task. [jobs] bounds concurrent workers
    (default 1); [timeout_s > 0.] bounds one attempt's wall clock (Fork
    only; default unlimited); a task whose attempt crashes or times out is
    retried up to [retries] more times (default 0). [scratch_dir] must
    exist; the Fork backend writes per-attempt result files under it.
    The result values of the Fork backend cross a process boundary via
    [Marshal], so ['a] must be closure-free plain data. *)

val with_temp_dir : prefix:string -> (string -> 'a) -> 'a
(** Creates a fresh private directory under the system temp dir, passes
    it to the callback, and removes it (recursively) afterwards. *)

(** The incremental face of the Fork backend: spawn one worker process
    per call, poll it from an event loop, kill it on timeout or
    cancellation. {!map} with [~backend:Fork] is a batch driver over
    this; the serve daemon ([Fastsim_serve]) is an incremental one. *)
module Async : sig
  type 'a task

  val spawn :
    ?spans:Fastsim_obs.Span.collector ->
    scratch_dir:string -> tag:string -> (unit -> 'a) -> 'a task
  (** Forks a child that evaluates the thunk, marshals the result to
      [scratch_dir/tag.res] (atomically: temp name + rename) and exits.
      [tag] must be unique among concurrently-live tasks sharing a
      scratch dir. As with {!map}, ['a] crosses the process boundary via
      [Marshal] and must be closure-free plain data.

      [spans] receives a ["pool.fork"] span (cat ["pool"], args [tag]
      and child [pid]) timing the fork itself. Spawn/kill/settle debug
      events go to {!Fastsim_obs.Log.default}. *)

  val poll : 'a task -> 'a outcome option
  (** [None] while the child runs. The first [Some] settles the task:
      the child is reaped (only this task's pid is waited on), the
      result file is read and {e consumed}. Subsequent polls return the
      same outcome. A killed task whose result file nevertheless parses
      settles [Done] (the kill raced its exit); otherwise it settles
      {!Timed_out}. *)

  val kill : 'a task -> unit
  (** SIGKILLs a running child (no-op once settled). The task stays
      un-settled until the next {!poll} reaps it. *)

  val stop : 'a task -> unit
  (** {!kill} + blocking reap: for shutdown paths. No-op once settled. *)

  val pid : 'a task -> int
  val elapsed : 'a task -> float
  (** Seconds since {!spawn}. *)
end

(** Persistent workers: long-lived forked children serving many requests
    over a pipe pair, instead of paying a fork (and, for the serve
    daemon, a p-action-cache serialization round-trip) per task. The
    serve fleet keeps one per registry shard so warm in-memory state
    survives across requests.

    Wire discipline: the parent marshals one ['req] at a time — a worker
    holds at most one in-flight request — and the child replies with a
    marshalled [('resp, string) result]. Values cross the process
    boundary via [Marshal] with closure sharing enabled (both sides are
    the same binary image), but plain closure-free data is still the
    safe default. *)
module Worker : sig
  type ('req, 'resp) t

  val spawn :
    ?spans:Fastsim_obs.Span.collector ->
    tag:string ->
    (unit -> 'req -> 'resp) ->
    ('req, 'resp) t
  (** Forks a child that evaluates [handler ()] once (its chance to build
      per-worker state — a respawned worker starts fresh) and then loops:
      read a request, apply, reply. A request that raises is reported as
      {!Crashed} for that request only; the worker stays alive. The child
      exits 0 when the request pipe reaches EOF ({!stop}), 3 if the
      handler thunk itself raises.

      [spans] receives a ["pool.fork"] span as for {!Async.spawn}; a
      ["pool.spawn"] debug event (with [persistent: true]) goes to
      {!Fastsim_obs.Log.default}. *)

  val submit : ('req, 'resp) t -> 'req -> unit
  (** Sends the next request. Raises [Invalid_argument] if the worker is
      dead, stopped, or already has a request in flight. If the child
      died unnoticed, the failure surfaces on the next {!poll} (as with a
      crash), not here. *)

  val poll : ('req, 'resp) t -> 'resp outcome option
  (** Drains the response pipe (non-blocking). [Some] settles the
      in-flight request: [Done] on a reply, [Crashed] if the request
      raised in the worker {e or} the worker died mid-request, and
      [Timed_out] if the death followed {!kill}. After a worker-death
      outcome, {!alive} is [false] and the caller must {!spawn} a
      replacement. An idle worker's death is absorbed silently ([None] —
      nothing was in flight). *)

  val kill : ('req, 'resp) t -> unit
  (** SIGKILL — for timeouts and orphaned-work cancellation. The next
      {!poll} settles the in-flight request as {!Timed_out}. *)

  val stop : ?grace_s:float -> ('req, 'resp) t -> unit
  (** Graceful shutdown: closes the request pipe (EOF tells the child to
      exit), waits up to [grace_s] (default 1s), then SIGKILLs; reaps
      either way and closes the remaining descriptor. *)

  val fd : ('req, 'resp) t -> Unix.file_descr
  (** Response-pipe descriptor, for [select] in an event loop. *)

  val pid : ('req, 'resp) t -> int
  val tag : ('req, 'resp) t -> string
  val busy : ('req, 'resp) t -> bool
  val alive : ('req, 'resp) t -> bool

  val elapsed : ('req, 'resp) t -> float
  (** Seconds since the in-flight request was submitted; [0.] if idle. *)
end
