(** A bounded worker pool with per-task timeouts and bounded retries.

    Three backends behind one interface:

    - {!Fork} (default): one forked process per task attempt, results
      shipped back through marshalled scratch files. Works identically on
      OCaml 4.14 and 5.x, isolates worker crashes from the driver, and is
      the only backend that can enforce timeouts (the parent SIGKILLs an
      overrunning child).
    - {!Domains}: a domain pool on OCaml 5.x ({!Domain_shim}); on 4.14 it
      silently degrades to sequential execution. No timeout enforcement
      and no crash isolation — a segfaulting task takes the driver down —
      but no fork/marshal overhead.
    - {!Inline}: sequential in-process execution, mainly for debugging
      and for deterministic single-process tests.

    The returned array is indexed in {e task order} regardless of
    completion order. [on_outcome], by contrast, fires as each task
    {e settles} (final attempt done) — i.e. in completion order, which
    depends on scheduling. Drivers that need a deterministic report must
    derive it from the returned array, not from [on_outcome] (which is
    for progress display). *)

type backend = Fork | Domains | Inline

val backend_to_string : backend -> string
val backend_of_string : string -> (backend, string) result

type 'a outcome =
  | Done of 'a
  | Crashed of string
      (** the task raised, or its worker process died (non-zero exit,
          signal, or unreadable result file); the payload describes it. *)
  | Timed_out

type 'a settled = {
  outcome : 'a outcome;
  attempts : int;  (** total attempts consumed (1 = no retry needed). *)
}

val map :
  ?backend:backend ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?on_outcome:(int -> 'a settled -> unit) ->
  scratch_dir:string ->
  (int -> 'a) ->
  int ->
  'a settled array
(** [map ~scratch_dir f n] evaluates [f i] for [0 <= i < n] and returns
    the settled outcomes indexed by task. [jobs] bounds concurrent workers
    (default 1); [timeout_s > 0.] bounds one attempt's wall clock (Fork
    only; default unlimited); a task whose attempt crashes or times out is
    retried up to [retries] more times (default 0). [scratch_dir] must
    exist; the Fork backend writes per-attempt result files under it.
    The result values of the Fork backend cross a process boundary via
    [Marshal], so ['a] must be closure-free plain data. *)

val with_temp_dir : prefix:string -> (string -> 'a) -> 'a
(** Creates a fresh private directory under the system temp dir, passes
    it to the callback, and removes it (recursively) afterwards. *)

(** The incremental face of the Fork backend: spawn one worker process
    per call, poll it from an event loop, kill it on timeout or
    cancellation. {!map} with [~backend:Fork] is a batch driver over
    this; the serve daemon ([Fastsim_serve]) is an incremental one. *)
module Async : sig
  type 'a task

  val spawn :
    ?spans:Fastsim_obs.Span.collector ->
    scratch_dir:string -> tag:string -> (unit -> 'a) -> 'a task
  (** Forks a child that evaluates the thunk, marshals the result to
      [scratch_dir/tag.res] (atomically: temp name + rename) and exits.
      [tag] must be unique among concurrently-live tasks sharing a
      scratch dir. As with {!map}, ['a] crosses the process boundary via
      [Marshal] and must be closure-free plain data.

      [spans] receives a ["pool.fork"] span (cat ["pool"], args [tag]
      and child [pid]) timing the fork itself. Spawn/kill/settle debug
      events go to {!Fastsim_obs.Log.default}. *)

  val poll : 'a task -> 'a outcome option
  (** [None] while the child runs. The first [Some] settles the task:
      the child is reaped (only this task's pid is waited on), the
      result file is read and {e consumed}. Subsequent polls return the
      same outcome. A killed task whose result file nevertheless parses
      settles [Done] (the kill raced its exit); otherwise it settles
      {!Timed_out}. *)

  val kill : 'a task -> unit
  (** SIGKILLs a running child (no-op once settled). The task stays
      un-settled until the next {!poll} reaps it. *)

  val stop : 'a task -> unit
  (** {!kill} + blocking reap: for shutdown paths. No-op once settled. *)

  val pid : 'a task -> int
  val elapsed : 'a task -> float
  (** Seconds since {!spawn}. *)
end
