(* Flat parallel arrays, linear probing, power-of-two capacity. The value
   array holds [Some v] for occupied slots so a hit returns the stored
   option without allocating. *)

type 'v t = {
  mutable keys : string array;  (* "" marks a free slot *)
  mutable hashes : int array;
  mutable vals : 'v option array;
  mutable mask : int;           (* capacity - 1 *)
  mutable count : int;
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(initial = 4096) () =
  let cap = pow2 (max 8 initial) 8 in
  { keys = Array.make cap "";
    hashes = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    count = 0 }

let length t = t.count

let is_free (s : string) = String.length s = 0

let find t ~hash key =
  let mask = t.mask in
  let i = ref (hash land mask) in
  let result = ref None in
  let probing = ref true in
  while !probing do
    let k = Array.unsafe_get t.keys !i in
    if is_free k then probing := false
    else if Array.unsafe_get t.hashes !i = hash && String.equal k key then begin
      result := Array.unsafe_get t.vals !i;
      probing := false
    end
    else i := (!i + 1) land mask
  done;
  !result

(* [String.equal] against a Bytes prefix, without materialising a string. *)
let bytes_matches (s : string) (b : Bytes.t) len =
  String.length s = len
  &&
  let i = ref 0 in
  while !i < len && String.unsafe_get s !i = Bytes.unsafe_get b !i do
    incr i
  done;
  !i = len

let find_bytes t ~hash b ~len =
  let mask = t.mask in
  let i = ref (hash land mask) in
  let result = ref None in
  let probing = ref true in
  while !probing do
    let k = Array.unsafe_get t.keys !i in
    if is_free k then probing := false
    else if Array.unsafe_get t.hashes !i = hash && bytes_matches k b len
    then begin
      result := Array.unsafe_get t.vals !i;
      probing := false
    end
    else i := (!i + 1) land mask
  done;
  !result

(* Insert into a table known to have room and no binding for [key]. *)
let add_fresh t ~hash key v =
  let mask = t.mask in
  let i = ref (hash land mask) in
  while not (is_free t.keys.(!i)) do
    i := (!i + 1) land mask
  done;
  t.keys.(!i) <- key;
  t.hashes.(!i) <- hash;
  t.vals.(!i) <- Some v;
  t.count <- t.count + 1

let grow t =
  let old_keys = t.keys and old_hashes = t.hashes and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap "";
  t.hashes <- Array.make cap 0;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.count <- 0;
  Array.iteri
    (fun i k ->
      if not (is_free k) then
        match old_vals.(i) with
        | Some v -> add_fresh t ~hash:old_hashes.(i) k v
        | None -> assert false)
    old_keys

let add t ~hash key v =
  if is_free key then invalid_arg "Ctable.add: empty key";
  (* Replace in place if present. *)
  let mask = t.mask in
  let i = ref (hash land mask) in
  let replaced = ref false in
  let probing = ref true in
  while !probing do
    let k = t.keys.(!i) in
    if is_free k then probing := false
    else if t.hashes.(!i) = hash && String.equal k key then begin
      t.vals.(!i) <- Some v;
      replaced := true;
      probing := false
    end
    else i := (!i + 1) land mask
  done;
  if not !replaced then begin
    (* Keep load factor under 1/2 so probe sequences stay short. *)
    if (t.count + 1) * 2 > t.mask + 1 then grow t;
    add_fresh t ~hash key v
  end

let iter f t =
  Array.iteri
    (fun i k ->
      if not (is_free k) then
        match t.vals.(i) with Some v -> f k v | None -> assert false)
    t.keys

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) "";
  Array.fill t.vals 0 (Array.length t.vals) None;
  t.count <- 0
