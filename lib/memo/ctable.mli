(** Open-addressed configuration-intern table (the hot-path replacement for
    the generic [Hashtbl] the p-action cache used to key on snapshot
    strings).

    The paper's speedup argument (§5) requires configuration lookup to cost
    a few dozen instructions: one hash, one probe sequence, no allocation.
    This table is keyed by a {e caller-supplied} 64-bit hash plus the key
    bytes; because the hash is a parameter (computed once during snapshot
    encoding, see {!Uarch.Snapshot.Arena}), a warm-cache lookup via
    {!find_bytes} touches only the scratch encode buffer and the table's
    flat arrays — zero allocation on a hit.

    Linear probing over power-of-two capacity; the empty string marks a
    free slot, so the empty key is not storable (snapshot keys are at least
    11 bytes, and test keys are nonempty). There is no per-entry removal:
    the p-action cache's replacement policies discard populations
    wholesale ({!clear} + re-{!add} of survivors), exactly as the old
    [Hashtbl] rebuild did. *)

type 'v t

val create : ?initial:int -> unit -> 'v t
(** [initial] is a capacity hint (rounded up to a power of two). *)

val length : 'v t -> int

val find : 'v t -> hash:int -> string -> 'v option
(** [find t ~hash key] returns the stored value, comparing the full hash
    first and the key bytes only on hash equality. *)

val find_bytes : 'v t -> hash:int -> Bytes.t -> len:int -> 'v option
(** Like {!find}, but the key is the first [len] bytes of a scratch buffer
    — the zero-allocation lookup used with {!Uarch.Snapshot.Arena}. *)

val add : 'v t -> hash:int -> string -> 'v -> unit
(** Inserts, replacing any existing binding for [key]. [hash] must be the
    same value every lookup of [key] supplies. Raises [Invalid_argument]
    on the empty key. *)

val iter : (string -> 'v -> unit) -> 'v t -> unit
val fold : (string -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a

val clear : 'v t -> unit
(** Empties the table, keeping its capacity. *)
