(** The p-action cache: configurations, action chains, and the replacement
    policies of paper §4.3.

    Sizes are tracked in {e modeled bytes} (the paper's accounting: 16 bytes
    + 1.5 per instruction + 4 per indirect jump for configurations; small
    fixed costs per action and per outcome edge), so budget experiments
    (Figure 7) are directly comparable with the paper regardless of the
    OCaml heap representation. *)

type policy =
  | Unbounded
      (** trivial policy: grow without limit. *)
  | Flush_on_full of int
      (** discard everything when modeled bytes exceed the budget. *)
  | Copying_gc of int
      (** when over budget, keep only configurations (and their action
          chains) used since the last collection. *)
  | Generational_gc of { nursery : int; total : int }
      (** two generations: recently used nursery configurations promote to
          the old generation on a minor collection; a full collection runs
          when the total budget is exceeded. *)

type t

exception Determinism_violation of string
(** Raised if a recorded group disagrees with the graph — e.g. a replayed
    path re-recorded with a different silent-cycle count or action
    sequence. This can only mean the detailed simulator is not a pure
    function of (configuration, outcomes): a memoization-soundness bug. *)

val create : ?policy:policy -> ?store:Store.t -> unit -> t
(** [store] is the chain store stride rules are interned into — pass one
    shared instance to let several caches of the same program dedupe
    their compressed chains (the serve registry does, keyed by
    [program_digest] only); defaults to a fresh private store. Creation
    registers the cache as a store holder ({!Store.addref});
    {!release_rules} deregisters it. *)

val policy : t -> policy

val store : t -> Store.t
(** The chain store this cache interns into (shared or private). *)

val release_rules : t -> unit
(** Returns every rule reference this cache holds (one per stride) to
    the store and deregisters the cache as a holder. Call exactly once,
    when discarding the cache while its — possibly shared — store lives
    on; the registry's eviction path does. The cache must not record or
    replay afterwards. *)

val attach_obs :
  t ->
  ?trace:Fastsim_obs.Trace.t ->
  ?metrics:Fastsim_obs.Metrics.t ->
  now:(unit -> int) ->
  unit ->
  unit
(** Attaches observability (docs/OBSERVABILITY.md) to this cache: [pcache]
    category [insert] / [flush] / [minor_gc] / [full_gc] trace events
    (timestamped with [now ()], the simulated cycle), plus the
    [pcache.inserts] / [pcache.intern_hits] counters and the
    [pcache.modeled_bytes] gauge. Attached after creation because a
    (possibly warm-started) cache outlives any one engine run; the fast
    engine calls this when given an observability context. Strictly
    passive: recording and replacement behaviour are unaffected. *)

val detach_obs : t -> unit
(** Removes any attached instruments (the engine detaches on exit so a
    persisted or reused cache does not keep a stale cycle source). *)

val intern : t -> Uarch.Snapshot.key -> Action.config
(** Finds or creates the configuration node for a key. *)

val intern_arena : t -> Uarch.Snapshot.Arena.t -> Action.config
(** Like {!intern}, but probes the table directly with the arena's bytes
    and precomputed FNV-1a hash ({!Uarch.Snapshot.Arena.hash}): a warm hit
    materialises no string and allocates nothing. Only a miss pays for
    {!Uarch.Snapshot.Arena.key}. This is the engine's hot path. *)

val find : t -> Uarch.Snapshot.key -> Action.config option

val find_arena : t -> Uarch.Snapshot.Arena.t -> Action.config option
(** Zero-allocation lookup against an arena (no interning on miss). *)

val merge_group :
  t ->
  Action.config ->
  silent:int ->
  retired:int ->
  classes:int array ->
  items:Action.item list ->
  terminal:Action.terminal ->
  Action.config option
(** Records one group under a configuration: creates the group if the
    configuration had none, otherwise walks the existing chain and grafts
    the suffix after the first unseen outcome (Figure 6). Returns the
    successor configuration for [T_goto], [None] for [T_halt].

    When the successor already owns a group (the engine is about to switch
    from recording to replay — typically a loop just closed), its chain is
    offered to {!compact}. *)

val compact : t -> Action.config -> bool
(** Stride compaction (docs/INTERNALS.md "Hot path"): if [config]'s group
    heads a linear run — every action on the chain and on its successors'
    chains has exactly one recorded outcome — collapse up to 64 successor
    groups into a single {!Action.N_stride} replayed as one step. The
    absorbed configurations stay interned but lose their groups; modeled
    bytes shrink accordingly. Returns whether anything was compacted. *)

val expand_stride : t -> Action.config -> Action.config array
(** Exact inverse of {!compact}: rebuilds the plain per-configuration
    groups a stride absorbed (preferring live twins of since-evicted
    configurations) and re-attaches a plain chain to the owner. Returns
    the absorbed configurations in chain order, [[||]] if the owner's
    group is not a stride. The replay engine calls this before reporting
    a mid-stride divergence so the detailed simulator resumes against
    plain chains. *)

val resolve_goto : t -> Action.goto_node -> Action.config
(** Follows a group-terminating link, transparently re-pointing edges whose
    target was evicted but has since been regenerated. *)

val touch : t -> Action.config -> unit
(** Marks a configuration as used in the current collection epoch (called
    by the replay engine). *)

val check_budget : t -> [ `Kept | `Flushed | `Collected ]
(** Applies the replacement policy if the budget is exceeded. After
    anything but [`Kept], configuration nodes previously obtained from
    [intern] may be stale; callers must re-intern the keys they hold. *)

type counters = {
  static_configs : int;   (** configurations allocated over the whole run. *)
  static_actions : int;   (** action nodes allocated over the whole run. *)
  live_configs : int;
  modeled_bytes : int;
  peak_modeled_bytes : int;
  flushes : int;
  minor_collections : int;
  full_collections : int;
  last_gc_survivors : int;
  last_gc_population : int;
  stride_compactions : int;  (** linear runs collapsed ({!compact}). *)
  stride_expansions : int;   (** strides expanded back on divergence. *)
}

val counters : t -> counters
val iter_configs : (Action.config -> unit) -> t -> unit

val install_group :
  t -> Action.config -> silent:int -> retired:int -> classes:int array ->
  first:Action.node -> unit
(** Low-level constructor used by {!Persist.load}: attaches a prebuilt
    action chain to a group-less configuration and accounts its size.
    Raises {!Determinism_violation} if the configuration already has a
    group. *)
