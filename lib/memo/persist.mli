(** Saving and restoring the p-action cache.

    An extension beyond the paper: FastSim's p-action cache lived only for
    one simulation; persisting it lets a later run of the {e same program}
    start warm and skip most detailed simulation from the first cycle.
    Soundness is unchanged — replay still validates every outcome against
    the live cache simulator and direct execution, so a stale edge merely
    exits to detailed simulation.

    The format is a self-describing binary stream tied to the program: a
    digest of the code image is stored and checked, because configuration
    keys embed instruction addresses and are only meaningful against the
    program that produced them. *)

exception Format_error of string

val save : Pcache.t -> program:Isa.Program.t -> out_channel -> unit
(** Writes every live configuration and its action chains. *)

val load : ?policy:Pcache.policy -> program:Isa.Program.t -> in_channel ->
  Pcache.t
(** Rebuilds a p-action cache. Raises {!Format_error} on a corrupt or
    truncated stream (a premature end-of-file is reported as
    {!Format_error}, never as a raw [End_of_file]) or when the stream was
    saved for a different program. Both [save] and [load] traverse action
    chains with explicit worklists, so arbitrarily deep chains round-trip
    without exhausting the call stack. *)

val load_string : ?policy:Pcache.policy -> program:Isa.Program.t -> string ->
  Pcache.t
(** [load] over an in-memory stream; same error behaviour. *)

val save_file : Pcache.t -> program:Isa.Program.t -> string -> unit

val load_file : ?policy:Pcache.policy -> program:Isa.Program.t -> string ->
  Pcache.t
(** Loads a saved cache by [mmap]ing the file and parsing in place, so
    spilled registry shards reload without copying the stream through
    stdio buffers (the kernel pages the file in lazily). Falls back to a
    plain read where [mmap] is unavailable. *)

val program_digest : Isa.Program.t -> string
(** Digest used for the program check (exposed for tests).

    Covers the {e code words only} — intentionally. Configuration keys
    embed instruction addresses and decoded µ-ops, so a saved cache is
    meaningful only against the same code image; data is consumed through
    the live oracle during replay, which validates every outcome anyway.
    Excluding data from the digest is what allows a warm start across
    reseeded inputs of the same kernel (docs/SWEEP.md): data-dependent
    paths simply diverge to detailed simulation. Do not "fix" this by
    digesting the whole image — test/test_persist.ml pins the semantics. *)
