(** Saving and restoring the p-action cache.

    An extension beyond the paper: FastSim's p-action cache lived only for
    one simulation; persisting it lets a later run of the {e same program}
    start warm and skip most detailed simulation from the first cycle.
    Soundness is unchanged — replay still validates every outcome against
    the live cache simulator and direct execution, so a stale edge merely
    exits to detailed simulation.

    The format is a self-describing binary stream tied to the program: a
    digest of the code image is stored and checked, because configuration
    keys embed instruction addresses and are only meaningful against the
    program that produced them. *)

exception Format_error of string

val save : Pcache.t -> program:Isa.Program.t -> out_channel -> unit
(** Writes every live configuration and its action chains. *)

val load : ?policy:Pcache.policy -> program:Isa.Program.t -> in_channel ->
  Pcache.t
(** Rebuilds a p-action cache. Raises {!Format_error} on a corrupt stream
    or when the stream was saved for a different program. *)

val save_file : Pcache.t -> program:Isa.Program.t -> string -> unit
val load_file : ?policy:Pcache.policy -> program:Isa.Program.t -> string ->
  Pcache.t

val program_digest : Isa.Program.t -> string
(** Digest used for the program check (exposed for tests). *)
