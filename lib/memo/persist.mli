(** Saving and restoring the p-action cache.

    An extension beyond the paper: FastSim's p-action cache lived only for
    one simulation; persisting it lets a later run of the {e same program}
    start warm and skip most detailed simulation from the first cycle.
    Soundness is unchanged — replay still validates every outcome against
    the live cache simulator and direct execution, so a stale edge merely
    exits to detailed simulation.

    The format is a self-describing binary stream tied to the program: a
    digest of the code image is stored and checked, because configuration
    keys embed instruction addresses and are only meaningful against the
    program that produced them.

    All versioned entry points live in {!Codec}; the raw top-level
    [save]/[load] functions are deprecated aliases for the current
    codec. *)

exception Format_error of string

(** Versioned stream codecs.

    - [current] (FSPC0004) is grammar-compressed: configuration keys go
      through a deduplicated string table and strides reference the chain
      store's rule table ('G' targets and stride bodies are indices), so
      chain suffixes shared by many strides — or, via a shared
      {!Store.t}, by many caches — are written once.
    - [v3] (FSPC0003) stores strides with inline segments. Its reader
      migrates streams into the store representation on load; its writer
      is kept only so benchmarks can compare sizes, and is deprecated.
    - [v2] (FSPC0002) predates strides and is read-only; the v3 reader
      covers it. *)
module Codec : sig
  type info = {
    version : int;
    magic : string;   (** the stream's leading 8 bytes. *)
    writable : bool;  (** whether {!save} accepts this codec. *)
  }

  val current : info
  val v3 : info
  val v2 : info
  val supported : info list

  val of_magic : string -> info option

  val save :
    ?codec:info -> Pcache.t -> program:Isa.Program.t -> out_channel -> unit
  (** Writes every live configuration and its action chains in
      [codec]'s format (default {!current}). Raises [Invalid_argument]
      for a read-only codec. *)

  val save_file :
    ?codec:info -> Pcache.t -> program:Isa.Program.t -> string -> unit

  val load :
    ?policy:Pcache.policy ->
    ?store:Store.t ->
    program:Isa.Program.t ->
    in_channel ->
    Pcache.t
  (** Rebuilds a p-action cache, auto-detecting the stream version from
      its magic. [store] is the chain store rules land in — pass the
      registry's shared per-program store to dedupe against caches
      already loaded; defaults to a fresh private store. Raises
      {!Format_error} on a corrupt or truncated stream (a premature
      end-of-file is reported as {!Format_error}, never as a raw
      [End_of_file]) or when the stream was saved for a different
      program; on error, any rules the partial load interned are
      released so a shared store is left clean. Save and load traverse
      action chains with explicit worklists, so arbitrarily deep chains
      round-trip without exhausting the call stack. *)

  val load_string :
    ?policy:Pcache.policy ->
    ?store:Store.t ->
    program:Isa.Program.t ->
    string ->
    Pcache.t
  (** [load] over an in-memory stream; same error behaviour. *)

  val load_file :
    ?policy:Pcache.policy ->
    ?store:Store.t ->
    program:Isa.Program.t ->
    string ->
    Pcache.t
  (** Loads a saved cache by [mmap]ing the file and parsing in place, so
      spilled registry shards reload without copying the stream through
      stdio buffers (the kernel pages the file in lazily). Falls back to
      a plain read where [mmap] is unavailable. *)
end

val save : Pcache.t -> program:Isa.Program.t -> out_channel -> unit
[@@deprecated "use Memo.Persist.Codec.save"]

val load : ?policy:Pcache.policy -> program:Isa.Program.t -> in_channel ->
  Pcache.t
[@@deprecated "use Memo.Persist.Codec.load"]

val load_string : ?policy:Pcache.policy -> program:Isa.Program.t -> string ->
  Pcache.t
[@@deprecated "use Memo.Persist.Codec.load_string"]

val save_file : Pcache.t -> program:Isa.Program.t -> string -> unit
[@@deprecated "use Memo.Persist.Codec.save_file"]

val load_file : ?policy:Pcache.policy -> program:Isa.Program.t -> string ->
  Pcache.t
[@@deprecated "use Memo.Persist.Codec.load_file"]

val program_digest : Isa.Program.t -> string
(** Digest used for the program check (exposed for tests).

    Covers the {e code words only} — intentionally. Configuration keys
    embed instruction addresses and decoded µ-ops, so a saved cache is
    meaningful only against the same code image; data is consumed through
    the live oracle during replay, which validates every outcome anyway.
    Excluding data from the digest is what allows a warm start across
    reseeded inputs of the same kernel (docs/SWEEP.md): data-dependent
    paths simply diverge to detailed simulation. Do not "fix" this by
    digesting the whole image — test/test_persist.ml pins the semantics. *)
