(** P-action cache data model (paper §4.2, Figures 5–6).

    The p-action cache is a graph: {e configuration} nodes (compressed
    µ-architecture snapshots) each own a {e group} — the number of silent
    cycles until the next interaction cycle, the instructions retired over
    those cycles, and a chain of {e action} nodes describing the
    interactions of that final cycle in order. Actions whose outcome varies
    (cache-load latencies, control-flow outcomes) branch: each previously
    seen outcome labels an edge to the rest of the chain. The last action
    of a group links to the following configuration, "forming an unbroken
    chain of actions" that fast-forwarding walks without re-running the
    detailed simulator. *)

type ctl = Uarch.Oracle.ctl_outcome

type item =
  | I_load of int     (** a load issued to the cache; payload = latency. *)
  | I_store           (** a store issued to the cache. *)
  | I_ctl of ctl      (** a control outcome pulled from direct execution. *)
  | I_rollback of int (** a misprediction repair; payload = bQ index. *)

type node =
  | N_load of load_node
  | N_store of node
  | N_ctl of ctl_node
  | N_rollback of int * node
  | N_halt
  | N_goto of goto_node
  | N_stride of stride_node

and load_node = { mutable l_edges : (int * node) list }
and ctl_node = { mutable c_edges : (ctl * node) list }

and goto_node = { mutable target : config }
(** Mutable so collections can "fix pointers" lazily: when a target was
    evicted and later regenerated, the first traversal re-points the edge
    to the live node (the moral equivalent of the copying collector's
    pointer forwarding). *)

and stride_node = {
  s_ops : item array;  (** the owner group's interaction items. *)
  s_segs : stride_seg array;
      (** the absorbed successor groups, in chain order — the replay
          engine's materialised view; always consistent with [s_rule]. *)
  s_term : node;  (** the run's final [N_goto] or [N_halt]. *)
  s_rule : rule;
      (** the canonical grammar-compressed form of [s_segs] in the
          owning {!Store}: content-addressed, suffix-deduplicated across
          strides (and, through a shared store, across specs and
          shards). The stride holds one reference; {!Pcache} releases it
          when the stride is expanded or discarded. *)
}
(** A stride: a linear run of groups — every action on the run has exactly
    one recorded outcome — collapsed into one node and replayed as one
    step ({!Pcache.compact}). Only ever appears as a group's [g_first].
    The owner keeps its group (with the stride as its chain); absorbed
    configurations stay interned but lose theirs, and on any mid-stride
    divergence the run is expanded back into exact plain groups before
    the detailed simulator takes over. *)

and stride_seg = {
  sg_cfg : config;      (** the absorbed configuration (still interned). *)
  sg_silent : int;
  sg_retired : int;
  sg_classes : int array;
  sg_ops : item array;  (** its single recorded outcome sequence. *)
}

and rule = {
  ru_id : int;         (** creation order within the owning store. *)
  ru_digest : string;  (** content address (digest over payload+children). *)
  ru_node : rule_node;
  ru_nsegs : int;      (** segments after full expansion. *)
  ru_bytes : int;      (** modeled bytes of this node alone. *)
  mutable ru_refs : int;
      (** parent rules + external holders; managed by {!Store}. *)
}
(** A grammar-compressed chain rule (docs/INTERNALS.md "Memoization 2.0"):
    an immutable cons spine over {e portable} segments, content-addressed
    and hash-consed by its owning {!Store} so identical suffixes are
    stored once, with [R_rep] capturing tandem repetition (loop bodies)
    — the body is itself a rule, so nesting expresses loop nests. *)

and rule_node =
  | R_nil
  | R_seg of { rs_seg : pseg; rs_rest : rule }
  | R_rep of { rp_body : rule; rp_count : int; rp_rest : rule }

and pseg = {
  pg_key : Uarch.Snapshot.key;
      (** the absorbed configuration's {e key} — not its node, so a rule
          never pins a particular p-action cache's intern table and can
          be shared across caches of the same program. *)
  pg_silent : int;
  pg_retired : int;
  pg_classes : int array;
  pg_ops : item array;
}

and config = {
  cfg_key : Uarch.Snapshot.key;
  cfg_hash : int;
      (** FNV-1a hash of [cfg_key] ([Uarch.Snapshot.hash_key]), computed
          once at intern time so table probes never rehash. *)
  cfg_bytes : int;  (** modeled size (paper's accounting). *)
  mutable cfg_action_bytes : int;
      (** modeled bytes of the action nodes this config's group owns. *)
  mutable cfg_group : group option;
  mutable cfg_touched : int;   (** GC epoch of last use. *)
  mutable cfg_hits : int;      (** times the replay engine visited this. *)
  mutable cfg_dropped : bool;  (** evicted from the table by a collection. *)
  mutable cfg_old_gen : bool;  (** promoted by the generational collector. *)
}

and group = {
  g_silent : int;   (** cycles before the interaction cycle. *)
  g_retired : int;  (** instructions retired across the whole group. *)
  g_classes : int array;
      (** retired counts per functional-unit class
          (indexed by [Isa.Instr.fu_index]); replayed like [g_retired], so
          instruction-mix statistics are identical under memoization. *)
  g_first : node;
}

type terminal = T_goto of config | T_halt
(** How a recorded group ends: linked to the next configuration — already
    interned by the caller, typically via the zero-allocation
    [Pcache.intern_arena] — or the retirement of [Halt]. *)

val ctl_equal : ctl -> ctl -> bool
(** Dedicated structural equality for control outcomes. The replay engine
    and the p-action cache merge walk use this (never polymorphic [=]) to
    match live outcomes against recorded edges. *)

val item_equal : item -> item -> bool

val pseg_equal : pseg -> pseg -> bool
(** Structural equality on portable segments (items via {!item_equal});
    used by the store's tandem-repeat detector. *)

val load_edge : int -> (int * node) list -> node option
(** Looks up a latency edge with [Int.equal]. *)

val ctl_edge : ctl -> (ctl * node) list -> node option
(** Looks up a control-outcome edge with {!ctl_equal}. *)

val node_bytes : node -> int
(** Modeled size of one action node (excluding nodes it links to):
    16 bytes for outcome-branching actions plus 8 per additional edge,
    8 bytes for the rest. *)

val pp_item : Format.formatter -> item -> unit
val pp_node_shallow : Format.formatter -> node -> unit
