(** The fast-forwarding engine (paper §4.2).

    Starting from a configuration, walks the p-action cache: advances the
    cycle counter over silent cycles, re-performs each interaction against
    the live oracle (cache simulator, direct execution), and follows the
    edge matching the live outcome. Replay leaves the graph whenever it
    reaches a configuration with no recorded group or an interaction whose
    live outcome has no edge; in the latter case it reports the already
    consumed outcomes of the current group as a {e prefix}, so the detailed
    simulator can re-derive the mid-group state without re-performing the
    side effects (paper: "previously unseen behaviors terminate
    fast-forwarding, so that the detailed simulator can simulate the new
    scenario"). *)

type result =
  | Diverged of {
      config : Action.config;
          (** the configuration whose group must (re)run in detail. *)
      prefix : Action.item list;
          (** outcomes already consumed live within this group, in order,
              including the diverging one. Empty when [config] simply has
              no group yet. *)
    }
  | Replay_halted
      (** the recorded chain reached [Halt]: simulation is complete. *)
  | Replay_budget of Action.config
      (** the caller's cycle or retirement bound falls inside [config]'s
          group: replaying it would overshoot [max_cycles] (or
          [max_retired]) mid-group. Replay stops {e before} touching the
          group — no interactions performed, no cycles or retirement
          charged — and hands the configuration back so the caller can
          re-simulate the truncated tail in detail, stopping exactly at
          the budget. This keeps Fast ≡ Slow (identical cycles and
          statistics) at every truncation point. *)

val run :
  ?max_cycles:int ->
  ?max_retired:int ->
  ?trace:Fastsim_obs.Trace.t ->
  ?metrics:Fastsim_obs.Metrics.t ->
  Pcache.t ->
  Stats.t ->
  oracle:Uarch.Oracle.t ->
  cycle:int ref ->
  classes:int array ->
  start:Action.config ->
  result
(** Fast-forwards from [start] until the graph runs out. [max_retired]
    bounds the number of instructions this call may retire via replay
    (strategy-engine interval boundaries, docs/STRATEGY.md); a group that
    would reach or cross it is handed back as [Replay_budget]. [cycle] is
    advanced for fully replayed groups, and [classes] accumulates their
    per-FU-class retirement counts (indexed by [Isa.Instr.fu_index]); on
    divergence the cycle counter is left at the start of the diverging
    group (the detailed simulator re-simulates that group's cycles).

    [trace] makes fast-forwarded regions observable (the memoized engine is
    otherwise a black box): each run emits an [engine]-category [replay]
    span, and each fully replayed group emits a synthetic
    [memo]/[group_replayed] instant plus a cumulative [retired] counter
    sample, reconstructed from the recorded action chains as they are
    walked. [metrics] feeds the [memo.replay_chain_length] and
    [memo.episode_cycles] histograms. Both are strictly passive (see
    docs/OBSERVABILITY.md). *)
