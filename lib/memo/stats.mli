(** Dynamic fast-forwarding statistics (Tables 4 and 5).

    Tracks how much simulation ran under replay vs. the detailed simulator,
    and the lengths of uninterrupted replay episodes ("chains of actions
    played back without stopping to perform detailed simulation"). *)

type t = {
  mutable detailed_retired : int;
      (** instructions retired during detailed simulation. *)
  mutable replayed_retired : int;
      (** instructions retired during fast-forwarding. *)
  mutable detailed_cycles : int;
  mutable replayed_cycles : int;
  mutable actions_replayed : int;  (** dynamic action count. *)
  mutable groups_replayed : int;   (** configurations visited in replay. *)
  mutable chain_current : int;
  mutable chain_max : int;
  mutable episodes : int;          (** completed replay episodes. *)
  mutable detailed_entries : int;
      (** times the detailed simulator was (re)entered. *)
}

val create : unit -> t

val note_action : t -> unit

val end_episode : t -> unit
(** Ends the current replay episode (called when replay exits to detailed
    simulation or the program halts during replay). Idempotent: the replay
    engine has several exit paths (divergence, halt, cycle limit) and a
    second [end_episode] with no intervening {!note_action} must not
    inflate [episodes] or corrupt [chain_max] — empty episodes (no actions)
    are never counted. *)

val avg_chain : t -> float
val detailed_fraction : t -> float
(** detailed retired / total retired. *)

val total_retired : t -> int
val total_cycles : t -> int
