exception Format_error of string

(* Four generations of the stream format, all 8-byte magics:
   - FSPC0002: plain action chains.
   - FSPC0003: added the 'T' (stride) action tag with inline segments.
     By construction an FSPC0002 stream contains no 'T', so one reader
     covers both.
   - FSPC0004: grammar-compressed. The stream carries a string table
     (configuration keys, referenced by index from 'G' targets and rule
     segments) and a topologically ordered rule table (the chain store's
     content-addressed rules); a stride serialises as its owner ops plus
     one rule index instead of inline segments, so chain suffixes shared
     by many strides are written once.
   Readers exist for all three ({!Codec.supported}); the v3 writer is
   kept for size-comparison benchmarks but deprecated, v2 is read-only. *)
let magic_v4 = "FSPC0004"
let magic_v3 = "FSPC0003"
let magic_v2 = "FSPC0002"

(* The digest covers the CODE WORDS ONLY — deliberately. Configuration keys
   embed instruction addresses and decoded µ-ops, so a saved cache is only
   meaningful against the same code image; data segments, on the other
   hand, are consumed through the live oracle (cache simulator + direct
   execution) during replay, which validates every outcome anyway. Keeping
   data out of the digest is what makes warm-starting across reseeded
   inputs work (docs/SWEEP.md): the same kernel over different data reuses
   the pcache, and any data-dependent path simply diverges to detailed
   simulation. test/test_persist.ml pins this down. *)
let program_digest (p : Isa.Program.t) =
  let b = Bytes.create (4 * Array.length p.words) in
  Array.iteri (fun i w -> Bytes.set_int32_le b (4 * i) w) p.words;
  Digest.bytes b

(* ---- writing ---- *)

let write_string oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let write_bool oc b = output_char oc (if b then '\001' else '\000')

let write_ctl oc (out : Action.ctl) =
  match out with
  | Uarch.Oracle.C_cond { taken; mispredicted } ->
    output_char oc 'c';
    write_bool oc taken;
    write_bool oc mispredicted
  | Uarch.Oracle.C_indirect { target; hit } ->
    output_char oc 'i';
    output_binary_int oc target;
    write_bool oc hit
  | Uarch.Oracle.C_stalled -> output_char oc 's'

let write_item oc (it : Action.item) =
  match it with
  | Action.I_load lat ->
    output_char oc 'l';
    output_binary_int oc lat
  | Action.I_store -> output_char oc 's'
  | Action.I_ctl out ->
    output_char oc 'c';
    write_ctl oc out
  | Action.I_rollback i ->
    output_char oc 'r';
    output_binary_int oc i

let write_items oc (arr : Action.item array) =
  output_binary_int oc (Array.length arr);
  Array.iter (write_item oc) arr

(* Action chains grow one node per silent region, so a long-running
   workload produces chains deep enough to overflow the OCaml stack under
   naive recursion (one frame per node). The writer therefore runs an
   explicit worklist; edge payloads (latency / control outcome) become
   their own work items so the stream layout is identical to the old
   recursive writer's pre-order. *)
type write_item =
  | W_node of Action.node
  | W_lat of int
  | W_ctl of Action.ctl

(* [goto] and [stride] abstract the two tags whose encoding differs
   between v3 (inline key string / inline segments) and v4 (string-table
   and rule-table indices). *)
let write_node ~goto ~stride oc (root : Action.node) =
  let stack = ref [ W_node root ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | item :: rest ->
      stack := rest;
      (match item with
       | W_lat lat -> output_binary_int oc lat
       | W_ctl out -> write_ctl oc out
       | W_node node -> (
         match node with
         | Action.N_load { l_edges } ->
           output_char oc 'L';
           output_binary_int oc (List.length l_edges);
           stack :=
             List.fold_right
               (fun (lat, next) acc -> W_lat lat :: W_node next :: acc)
               l_edges !stack
         | Action.N_store next ->
           output_char oc 'S';
           stack := W_node next :: !stack
         | Action.N_ctl { c_edges } ->
           output_char oc 'C';
           output_binary_int oc (List.length c_edges);
           stack :=
             List.fold_right
               (fun (out, next) acc -> W_ctl out :: W_node next :: acc)
               c_edges !stack
         | Action.N_rollback (i, next) ->
           output_char oc 'R';
           output_binary_int oc i;
           stack := W_node next :: !stack
         | Action.N_halt -> output_char oc 'H'
         | Action.N_goto g ->
           output_char oc 'G';
           goto g.Action.target.Action.cfg_key
         | Action.N_stride s ->
           output_char oc 'T';
           write_items oc s.Action.s_ops;
           stride s;
           stack := W_node s.Action.s_term :: !stack))
  done

let configs_of pc =
  let configs = ref [] in
  Pcache.iter_configs (fun c -> configs := c :: !configs) pc;
  List.rev !configs

let write_group oc ~goto ~stride (g : Action.group) =
  output_binary_int oc g.Action.g_silent;
  output_binary_int oc g.Action.g_retired;
  output_binary_int oc (Array.length g.Action.g_classes);
  Array.iter (output_binary_int oc) g.Action.g_classes;
  write_node ~goto ~stride oc g.Action.g_first

(* FSPC0003: inline keys and segments everywhere. Kept (deprecated) so the
   bench can compare v4 sizes against it. *)
let save_v3 pc ~program oc =
  output_string oc magic_v3;
  write_string oc (program_digest program);
  let goto key = write_string oc key in
  let stride (s : Action.stride_node) =
    output_binary_int oc (Array.length s.Action.s_segs);
    Array.iter
      (fun (seg : Action.stride_seg) ->
        write_string oc seg.Action.sg_cfg.Action.cfg_key;
        output_binary_int oc seg.Action.sg_silent;
        output_binary_int oc seg.Action.sg_retired;
        output_binary_int oc (Array.length seg.Action.sg_classes);
        Array.iter (output_binary_int oc) seg.Action.sg_classes;
        write_items oc seg.Action.sg_ops)
      s.Action.s_segs
  in
  let configs = configs_of pc in
  output_binary_int oc (List.length configs);
  List.iter
    (fun (c : Action.config) ->
      write_string oc c.Action.cfg_key;
      match c.Action.cfg_group with
      | None -> write_bool oc false
      | Some g ->
        write_bool oc true;
        write_group oc ~goto ~stride g)
    configs

(* FSPC0004: two collection passes (strings, then the rule closure),
   then stream sections in dependency order — string table, rule table
   (children before parents: rules sort by creation id, and a store only
   ever creates children first), configs. *)
let save_v4 pc ~program oc =
  let configs = configs_of pc in
  (* string interning: first-seen order is the table order *)
  let strings = Hashtbl.create 256 in
  let str_rev = ref [] in
  let nstr = ref 0 in
  let intern_str s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
      let i = !nstr in
      Hashtbl.add strings s i;
      str_rev := s :: !str_rev;
      incr nstr;
      i
  in
  (* reachable rule closure, keyed by creation id *)
  let rules = Hashtbl.create 64 in
  let add_rule_closure (root : Action.rule) =
    let stack = ref [ root ] in
    let continue_ = ref true in
    while !continue_ do
      match !stack with
      | [] -> continue_ := false
      | r :: rest -> (
        stack := rest;
        match r.Action.ru_node with
        | Action.R_nil -> ()
        | Action.R_seg { rs_seg; rs_rest } ->
          if not (Hashtbl.mem rules r.Action.ru_id) then begin
            Hashtbl.add rules r.Action.ru_id r;
            ignore (intern_str rs_seg.Action.pg_key : int);
            stack := rs_rest :: !stack
          end
        | Action.R_rep { rp_body; rp_rest; _ } ->
          if not (Hashtbl.mem rules r.Action.ru_id) then begin
            Hashtbl.add rules r.Action.ru_id r;
            stack := rp_body :: rp_rest :: !stack
          end)
    done
  in
  (* collection pass over every chain *)
  let collect_node (root : Action.node) =
    let stack = ref [ root ] in
    let continue_ = ref true in
    while !continue_ do
      match !stack with
      | [] -> continue_ := false
      | node :: rest ->
        stack := rest;
        (match node with
         | Action.N_load { l_edges } ->
           List.iter (fun (_, n) -> stack := n :: !stack) l_edges
         | Action.N_ctl { c_edges } ->
           List.iter (fun (_, n) -> stack := n :: !stack) c_edges
         | Action.N_store next | Action.N_rollback (_, next) ->
           stack := next :: !stack
         | Action.N_goto g ->
           ignore (intern_str g.Action.target.Action.cfg_key : int)
         | Action.N_stride s ->
           add_rule_closure s.Action.s_rule;
           stack := s.Action.s_term :: !stack
         | Action.N_halt -> ())
    done
  in
  List.iter
    (fun (c : Action.config) ->
      ignore (intern_str c.Action.cfg_key : int);
      match c.Action.cfg_group with
      | None -> ()
      | Some g -> collect_node g.Action.g_first)
    configs;
  (* rule index: 0 is the nil rule, table entries start at 1 *)
  let sorted =
    List.sort
      (fun (a : Action.rule) (b : Action.rule) ->
        compare a.Action.ru_id b.Action.ru_id)
      (Hashtbl.fold (fun _ r acc -> r :: acc) rules [])
  in
  let rule_idx = Hashtbl.create 64 in
  List.iteri
    (fun i (r : Action.rule) ->
      Hashtbl.add rule_idx r.Action.ru_id (i + 1))
    sorted;
  let idx_of (r : Action.rule) =
    match r.Action.ru_node with
    | Action.R_nil -> 0
    | _ -> Hashtbl.find rule_idx r.Action.ru_id
  in
  (* stream out *)
  output_string oc magic_v4;
  write_string oc (program_digest program);
  output_binary_int oc !nstr;
  List.iter (write_string oc) (List.rev !str_rev);
  output_binary_int oc (List.length sorted);
  List.iter
    (fun (r : Action.rule) ->
      match r.Action.ru_node with
      | Action.R_nil -> assert false
      | Action.R_seg { rs_seg = p; rs_rest } ->
        output_char oc 'g';
        output_binary_int oc (Hashtbl.find strings p.Action.pg_key);
        output_binary_int oc p.Action.pg_silent;
        output_binary_int oc p.Action.pg_retired;
        output_binary_int oc (Array.length p.Action.pg_classes);
        Array.iter (output_binary_int oc) p.Action.pg_classes;
        write_items oc p.Action.pg_ops;
        output_binary_int oc (idx_of rs_rest)
      | Action.R_rep { rp_body; rp_count; rp_rest } ->
        output_char oc 'p';
        output_binary_int oc (idx_of rp_body);
        output_binary_int oc rp_count;
        output_binary_int oc (idx_of rp_rest))
    sorted;
  let goto key = output_binary_int oc (Hashtbl.find strings key) in
  let stride (s : Action.stride_node) =
    output_binary_int oc (idx_of s.Action.s_rule)
  in
  output_binary_int oc (List.length configs);
  List.iter
    (fun (c : Action.config) ->
      output_binary_int oc (Hashtbl.find strings c.Action.cfg_key);
      match c.Action.cfg_group with
      | None -> write_bool oc false
      | Some g ->
        write_bool oc true;
        write_group oc ~goto ~stride g)
    configs

(* ---- reading ---- *)

(* All loads go through one positional cursor over an in-memory source:
   either the raw bytes of an mmap'd file ([load_file]) or a string (the
   channel API, which slurps its input once). Compared with the old
   [in_channel] reader this removes the per-byte channel machinery from
   the hot reload path and — for spilled registry shards — lets the
   kernel page the file in lazily instead of copying it through stdio
   buffers: the only per-node copies left are the interned [cfg_key]
   strings themselves. *)

type mapped =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type src = S_string of string | S_map of mapped

type reader = { src : src; len : int; mutable pos : int }

let reader_of_string s =
  { src = S_string s; len = String.length s; pos = 0 }

let truncated () = raise (Format_error "truncated p-action cache stream")

let read_char r =
  if r.pos >= r.len then truncated ();
  let c =
    match r.src with
    | S_string s -> String.unsafe_get s r.pos
    | S_map m -> Bigarray.Array1.unsafe_get m r.pos
  in
  r.pos <- r.pos + 1;
  c

let take_string r n =
  if n < 0 || r.len - r.pos < n then truncated ();
  let s =
    match r.src with
    | S_string s -> String.sub s r.pos n
    | S_map m ->
      let pos = r.pos in
      String.init n (fun i -> Bigarray.Array1.unsafe_get m (pos + i))
  in
  r.pos <- r.pos + n;
  s

(* Big-endian 32-bit, sign-extended: the same value [input_binary_int]
   would have produced, so the existing [< 0] sanity checks keep
   rejecting corrupt high-bit counts. *)
let read_int r =
  if r.len - r.pos < 4 then truncated ();
  let b i =
    Char.code
      (match r.src with
       | S_string s -> String.unsafe_get s (r.pos + i)
       | S_map m -> Bigarray.Array1.unsafe_get m (r.pos + i))
  in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  (v lxor 0x80000000) - 0x80000000

let read_string r =
  let n = read_int r in
  if n < 0 || n > 1 lsl 24 then raise (Format_error "bad string length");
  take_string r n

let read_bool r =
  match read_char r with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Format_error "bad boolean")

let read_ctl r : Action.ctl =
  match read_char r with
  | 'c' ->
    let taken = read_bool r in
    let mispredicted = read_bool r in
    Uarch.Oracle.C_cond { taken; mispredicted }
  | 'i' ->
    let target = read_int r in
    let hit = read_bool r in
    Uarch.Oracle.C_indirect { target; hit }
  | 's' -> Uarch.Oracle.C_stalled
  | _ -> raise (Format_error "bad control outcome")

let read_item r : Action.item =
  match read_char r with
  | 'l' -> Action.I_load (read_int r)
  | 's' -> Action.I_store
  | 'c' -> Action.I_ctl (read_ctl r)
  | 'r' -> Action.I_rollback (read_int r)
  | _ -> raise (Format_error "bad item tag")

let read_items r =
  let n = read_int r in
  if n < 0 || n > 1 lsl 24 then raise (Format_error "bad item count");
  Array.init n (fun _ -> read_item r)

(* Expanding a crafted rep pyramid must not allocate unbounded memory:
   nsegs is computed before expansion and bounded here. Generous next to
   the 64-segment stride cap; the headroom is for synthetic test rules. *)
let max_rule_nsegs = 1 lsl 20

(* The v4 'G'/'T' encodings resolve through these tables; v3/v2 streams
   carry their payloads inline ([tables = None]). *)
type v4_tables = { v_strings : string array; v_rules : Action.rule array }

let string_at tables idx =
  if idx < 0 || idx >= Array.length tables.v_strings then
    raise (Format_error "bad string index");
  tables.v_strings.(idx)

let rule_at tables idx =
  if idx < 0 || idx >= Array.length tables.v_rules then
    raise (Format_error "bad rule index");
  tables.v_rules.(idx)

(* The reader mirrors the writer's worklist: a frame per node whose
   children are still being parsed, and an iterative [reduce] that folds a
   completed subtree into its parent frame. No recursion, so deep chains
   load without growing the stack. *)
type read_frame =
  | R_store
  | R_rollback of int
  | R_load of load_frame
  | R_ctl of ctl_frame
  | R_stride of Action.item array * Action.stride_seg array * Action.rule
      (* ops, segments and rule already resolved; waiting on [s_term].
         The rule arrives retained: the stride under construction owns
         that reference. *)

and load_frame = {
  mutable l_remaining : int;
  mutable l_acc : (int * Action.node) list;
  mutable l_cur : int;  (* latency label of the edge being parsed *)
}

and ctl_frame = {
  mutable c_remaining : int;
  mutable c_acc : (Action.ctl * Action.node) list;
  mutable c_cur : Action.ctl;
}

let read_node ?tables pc store r : Action.node =
  let frames = ref [] in
  let finished = ref None in
  (* Fold [node0] into the enclosing frames until one still needs more
     children (then return to the tag loop) or none are left (done). *)
  let reduce node0 =
    let node = ref node0 in
    let reducing = ref true in
    while !reducing do
      match !frames with
      | [] ->
        finished := Some !node;
        reducing := false
      | R_store :: rest ->
        frames := rest;
        node := Action.N_store !node
      | R_rollback i :: rest ->
        frames := rest;
        node := Action.N_rollback (i, !node)
      | R_load f :: rest ->
        f.l_acc <- (f.l_cur, !node) :: f.l_acc;
        f.l_remaining <- f.l_remaining - 1;
        if f.l_remaining = 0 then begin
          frames := rest;
          node := Action.N_load { l_edges = List.rev f.l_acc }
        end
        else begin
          f.l_cur <- read_int r;
          reducing := false
        end
      | R_stride (ops, segs, rule) :: rest ->
        frames := rest;
        node :=
          Action.N_stride
            { Action.s_ops = ops; s_segs = segs; s_term = !node;
              s_rule = rule }
      | R_ctl f :: rest ->
        f.c_acc <- (f.c_cur, !node) :: f.c_acc;
        f.c_remaining <- f.c_remaining - 1;
        if f.c_remaining = 0 then begin
          frames := rest;
          node := Action.N_ctl { c_edges = List.rev f.c_acc }
        end
        else begin
          f.c_cur <- read_ctl r;
          reducing := false
        end
    done
  in
  let read_count () =
    let n = read_int r in
    if n < 0 || n > 1 lsl 24 then raise (Format_error "bad edge count");
    n
  in
  while !finished = None do
    match read_char r with
    | 'L' ->
      let n = read_count () in
      if n = 0 then reduce (Action.N_load { l_edges = [] })
      else begin
        let lat = read_int r in
        frames :=
          R_load { l_remaining = n; l_acc = []; l_cur = lat } :: !frames
      end
    | 'S' -> frames := R_store :: !frames
    | 'C' ->
      let n = read_count () in
      if n = 0 then reduce (Action.N_ctl { c_edges = [] })
      else begin
        let out = read_ctl r in
        frames :=
          R_ctl { c_remaining = n; c_acc = []; c_cur = out } :: !frames
      end
    | 'R' ->
      let i = read_int r in
      frames := R_rollback i :: !frames
    | 'H' -> reduce Action.N_halt
    | 'G' ->
      let key =
        match tables with
        | None -> read_string r
        | Some tb -> string_at tb (read_int r)
      in
      reduce (Action.N_goto { target = Pcache.intern pc key })
    | 'T' -> (
      let ops = read_items r in
      match tables with
      | Some tb ->
        (* v4: one rule index; segments come from expanding the rule. *)
        let rule = rule_at tb (read_int r) in
        if rule.Action.ru_nsegs = 0 then
          raise (Format_error "empty stride rule");
        let segs =
          Array.map
            (fun (p : Action.pseg) ->
              { Action.sg_cfg = Pcache.intern pc p.Action.pg_key;
                sg_silent = p.Action.pg_silent;
                sg_retired = p.Action.pg_retired;
                sg_classes = p.Action.pg_classes;
                sg_ops = p.Action.pg_ops })
            (Store.expand rule)
        in
        Store.retain rule;
        frames := R_stride (ops, segs, rule) :: !frames
      | None ->
        (* v3/v2: inline segments, interned into the store on the way in
           (migration: an old stream loads straight into the compressed
           representation). *)
        let nseg = read_int r in
        if nseg < 0 || nseg > 1 lsl 16 then
          raise (Format_error "bad stride segment count");
        let segs =
          Array.init nseg (fun _ ->
              let sg_cfg = Pcache.intern pc (read_string r) in
              let sg_silent = read_int r in
              let sg_retired = read_int r in
              let ncls = read_int r in
              if ncls < 0 || ncls > 64 then
                raise (Format_error "bad class count");
              let sg_classes = Array.init ncls (fun _ -> read_int r) in
              let sg_ops = read_items r in
              { Action.sg_cfg; sg_silent; sg_retired; sg_classes; sg_ops })
        in
        let rule =
          Store.intern_segs store
            (Array.map
               (fun (seg : Action.stride_seg) ->
                 { Action.pg_key = seg.Action.sg_cfg.Action.cfg_key;
                   pg_silent = seg.Action.sg_silent;
                   pg_retired = seg.Action.sg_retired;
                   pg_classes = seg.Action.sg_classes;
                   pg_ops = seg.Action.sg_ops })
               segs)
        in
        frames := R_stride (ops, segs, rule) :: !frames)
    | _ -> raise (Format_error "bad action tag")
  done;
  match !finished with Some n -> n | None -> assert false

let read_configs ?tables pc store r =
  let n = read_int r in
  if n < 0 then raise (Format_error "bad config count");
  for _ = 1 to n do
    let key =
      match tables with
      | None -> read_string r
      | Some tb -> string_at tb (read_int r)
    in
    let cfg = Pcache.intern pc key in
    if read_bool r then begin
      let silent = read_int r in
      let retired = read_int r in
      let ncls = read_int r in
      if ncls < 0 || ncls > 64 then raise (Format_error "bad class count");
      let classes = Array.init ncls (fun _ -> read_int r) in
      let first = read_node ?tables pc store r in
      Pcache.install_group pc cfg ~silent ~retired ~classes ~first
    end
  done

(* v4 preamble: string table, then the rule table rebuilt through the
   store's hash-consing constructors — loading into a shared store dedups
   against whatever other caches already interned. Indices may only refer
   backwards (children are written first), which the bound checks
   enforce. *)
let read_tables store r =
  let nstr = read_int r in
  if nstr < 0 || nstr > 1 lsl 24 then
    raise (Format_error "bad string table size");
  let v_strings = Array.init nstr (fun _ -> read_string r) in
  let nrules = read_int r in
  if nrules < 0 || nrules > 1 lsl 24 then
    raise (Format_error "bad rule table size");
  let v_rules = Array.make (nrules + 1) (Store.nil store) in
  let back tb i idx =
    if idx < 0 || idx >= i then raise (Format_error "bad rule reference");
    tb.(idx)
  in
  for i = 1 to nrules do
    (match read_char r with
     | 'g' ->
       let kidx = read_int r in
       if kidx < 0 || kidx >= nstr then
         raise (Format_error "bad string index");
       let pg_key = v_strings.(kidx) in
       let pg_silent = read_int r in
       let pg_retired = read_int r in
       let ncls = read_int r in
       if ncls < 0 || ncls > 64 then raise (Format_error "bad class count");
       let pg_classes = Array.init ncls (fun _ -> read_int r) in
       let pg_ops = read_items r in
       let rest = back v_rules i (read_int r) in
       v_rules.(i) <-
         Store.cons store
           { Action.pg_key; pg_silent; pg_retired; pg_classes; pg_ops }
           rest
     | 'p' ->
       let body = back v_rules i (read_int r) in
       let count = read_int r in
       if count < 2 || count > 1 lsl 16 then
         raise (Format_error "bad repetition count");
       if body.Action.ru_nsegs = 0 then
         raise (Format_error "empty repetition body");
       let rest = back v_rules i (read_int r) in
       if
         (body.Action.ru_nsegs * count) + rest.Action.ru_nsegs
         > max_rule_nsegs
       then raise (Format_error "rule expands too far");
       v_rules.(i) <- Store.rep store ~body ~count rest
     | _ -> raise (Format_error "bad rule tag"));
    if v_rules.(i).Action.ru_nsegs > max_rule_nsegs then
      raise (Format_error "rule expands too far")
  done;
  { v_strings; v_rules }

let load_reader ?policy ?store ~program r =
  let m = take_string r (String.length magic_v4) in
  let v4 =
    if String.equal m magic_v4 then true
    else if String.equal m magic_v3 || String.equal m magic_v2 then false
    else raise (Format_error "bad magic")
  in
  let digest = read_string r in
  if not (String.equal digest (program_digest program)) then
    raise (Format_error "p-action cache was saved for a different program");
  let store =
    match store with Some s -> s | None -> Store.create ()
  in
  let pc = Pcache.create ?policy ~store () in
  (try
     if v4 then begin
       let tables = read_tables store r in
       read_configs ~tables pc store r
     end
     else read_configs pc store r
   with e ->
     (* Return the half-built cache's rule references and drop any rule
        the stream's table declared but nothing ended up using, so an
        abandoned load never leaks into a shared store. *)
     (try Pcache.release_rules pc with _ -> ());
     Store.prune_dead store;
     raise e);
  Store.prune_dead store;
  pc

let slurp_channel ic =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* ---- versioned codec surface ---------------------------------------- *)

module Codec = struct
  type info = { version : int; magic : string; writable : bool }

  let current = { version = 4; magic = magic_v4; writable = true }
  let v3 = { version = 3; magic = magic_v3; writable = true }
  let v2 = { version = 2; magic = magic_v2; writable = false }
  let supported = [ current; v3; v2 ]

  let of_magic m = List.find_opt (fun c -> String.equal c.magic m) supported

  let save ?(codec = current) pc ~program oc =
    match codec.version with
    | 4 -> save_v4 pc ~program oc
    | 3 -> save_v3 pc ~program oc
    | v ->
      invalid_arg
        (Printf.sprintf "Memo.Persist.Codec.save: %s (v%d) is read-only"
           codec.magic v)

  let save_file ?codec pc ~program path =
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        save ?codec pc ~program oc)

  let load_string ?policy ?store ~program s =
    load_reader ?policy ?store ~program (reader_of_string s)

  let load ?policy ?store ~program ic =
    (* The channel API slurps its input and parses in memory — channels
       may not be seekable (pipes), and the positional reader wants random
       access for sign-free bounds checks. *)
    load_string ?policy ?store ~program (slurp_channel ic)

  let load_file ?policy ?store ~program path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        let mapped =
          if len <= 0 then None
          else
            (* Map read-only and let the kernel page the shard in lazily;
               fall back to a plain read where mmap is unavailable (some
               filesystems, zero-length corner cases). *)
            match
              Unix.map_file fd Bigarray.char Bigarray.c_layout false
                [| len |]
            with
            | g -> Some (Bigarray.array1_of_genarray g)
            | exception Unix.Unix_error _ -> None
            | exception Sys_error _ -> None
        in
        match mapped with
        | Some m ->
          load_reader ?policy ?store ~program { src = S_map m; len; pos = 0 }
        | None ->
          let ic = Unix.in_channel_of_descr fd in
          load ?policy ?store ~program ic)
end

(* ---- deprecated raw entry points (see persist.mli) ------------------- *)

let save pc ~program oc = Codec.save pc ~program oc
let load ?policy ~program ic = Codec.load ?policy ~program ic
let load_string ?policy ~program s = Codec.load_string ?policy ~program s
let save_file pc ~program path = Codec.save_file pc ~program path
let load_file ?policy ~program path = Codec.load_file ?policy ~program path
