exception Format_error of string

(* FSPC0003 added the 'T' (stride) action tag; streams written by the
   previous release carry FSPC0002 and by construction contain no 'T', so
   the reader accepts both magics with one code path. *)
let magic = "FSPC0003"
let magic_v2 = "FSPC0002"

(* The digest covers the CODE WORDS ONLY — deliberately. Configuration keys
   embed instruction addresses and decoded µ-ops, so a saved cache is only
   meaningful against the same code image; data segments, on the other
   hand, are consumed through the live oracle (cache simulator + direct
   execution) during replay, which validates every outcome anyway. Keeping
   data out of the digest is what makes warm-starting across reseeded
   inputs work (docs/SWEEP.md): the same kernel over different data reuses
   the pcache, and any data-dependent path simply diverges to detailed
   simulation. test/test_persist.ml pins this down. *)
let program_digest (p : Isa.Program.t) =
  let b = Bytes.create (4 * Array.length p.words) in
  Array.iteri (fun i w -> Bytes.set_int32_le b (4 * i) w) p.words;
  Digest.bytes b

(* ---- writing ---- *)

let write_string oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let write_bool oc b = output_char oc (if b then '\001' else '\000')

let write_ctl oc (out : Action.ctl) =
  match out with
  | Uarch.Oracle.C_cond { taken; mispredicted } ->
    output_char oc 'c';
    write_bool oc taken;
    write_bool oc mispredicted
  | Uarch.Oracle.C_indirect { target; hit } ->
    output_char oc 'i';
    output_binary_int oc target;
    write_bool oc hit
  | Uarch.Oracle.C_stalled -> output_char oc 's'

let write_item oc (it : Action.item) =
  match it with
  | Action.I_load lat ->
    output_char oc 'l';
    output_binary_int oc lat
  | Action.I_store -> output_char oc 's'
  | Action.I_ctl out ->
    output_char oc 'c';
    write_ctl oc out
  | Action.I_rollback i ->
    output_char oc 'r';
    output_binary_int oc i

let write_items oc (arr : Action.item array) =
  output_binary_int oc (Array.length arr);
  Array.iter (write_item oc) arr

(* Action chains grow one node per silent region, so a long-running
   workload produces chains deep enough to overflow the OCaml stack under
   naive recursion (one frame per node). The writer therefore runs an
   explicit worklist; edge payloads (latency / control outcome) become
   their own work items so the stream layout is identical to the old
   recursive writer's pre-order. *)
type write_item =
  | W_node of Action.node
  | W_lat of int
  | W_ctl of Action.ctl

let write_node oc (root : Action.node) =
  let stack = ref [ W_node root ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | item :: rest ->
      stack := rest;
      (match item with
       | W_lat lat -> output_binary_int oc lat
       | W_ctl out -> write_ctl oc out
       | W_node node -> (
         match node with
         | Action.N_load { l_edges } ->
           output_char oc 'L';
           output_binary_int oc (List.length l_edges);
           stack :=
             List.fold_right
               (fun (lat, next) acc -> W_lat lat :: W_node next :: acc)
               l_edges !stack
         | Action.N_store next ->
           output_char oc 'S';
           stack := W_node next :: !stack
         | Action.N_ctl { c_edges } ->
           output_char oc 'C';
           output_binary_int oc (List.length c_edges);
           stack :=
             List.fold_right
               (fun (out, next) acc -> W_ctl out :: W_node next :: acc)
               c_edges !stack
         | Action.N_rollback (i, next) ->
           output_char oc 'R';
           output_binary_int oc i;
           stack := W_node next :: !stack
         | Action.N_halt -> output_char oc 'H'
         | Action.N_goto g ->
           output_char oc 'G';
           write_string oc g.Action.target.Action.cfg_key
         | Action.N_stride { s_ops; s_segs; s_term } ->
           output_char oc 'T';
           write_items oc s_ops;
           output_binary_int oc (Array.length s_segs);
           Array.iter
             (fun (seg : Action.stride_seg) ->
               write_string oc seg.Action.sg_cfg.Action.cfg_key;
               output_binary_int oc seg.Action.sg_silent;
               output_binary_int oc seg.Action.sg_retired;
               output_binary_int oc (Array.length seg.Action.sg_classes);
               Array.iter (output_binary_int oc) seg.Action.sg_classes;
               write_items oc seg.Action.sg_ops)
             s_segs;
           stack := W_node s_term :: !stack))
  done

let save pc ~program oc =
  output_string oc magic;
  write_string oc (program_digest program);
  let configs = ref [] in
  Pcache.iter_configs (fun c -> configs := c :: !configs) pc;
  output_binary_int oc (List.length !configs);
  List.iter
    (fun (c : Action.config) ->
      write_string oc c.Action.cfg_key;
      match c.Action.cfg_group with
      | None -> write_bool oc false
      | Some g ->
        write_bool oc true;
        output_binary_int oc g.Action.g_silent;
        output_binary_int oc g.Action.g_retired;
        output_binary_int oc (Array.length g.Action.g_classes);
        Array.iter (output_binary_int oc) g.Action.g_classes;
        write_node oc g.Action.g_first)
    !configs

(* ---- reading ---- *)

(* All loads go through one positional cursor over an in-memory source:
   either the raw bytes of an mmap'd file ([load_file]) or a string (the
   channel API, which slurps its input once). Compared with the old
   [in_channel] reader this removes the per-byte channel machinery from
   the hot reload path and — for spilled registry shards — lets the
   kernel page the file in lazily instead of copying it through stdio
   buffers: the only per-node copies left are the interned [cfg_key]
   strings themselves. *)

type mapped =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type src = S_string of string | S_map of mapped

type reader = { src : src; len : int; mutable pos : int }

let reader_of_string s =
  { src = S_string s; len = String.length s; pos = 0 }

let truncated () = raise (Format_error "truncated p-action cache stream")

let read_char r =
  if r.pos >= r.len then truncated ();
  let c =
    match r.src with
    | S_string s -> String.unsafe_get s r.pos
    | S_map m -> Bigarray.Array1.unsafe_get m r.pos
  in
  r.pos <- r.pos + 1;
  c

let take_string r n =
  if n < 0 || r.len - r.pos < n then truncated ();
  let s =
    match r.src with
    | S_string s -> String.sub s r.pos n
    | S_map m ->
      let pos = r.pos in
      String.init n (fun i -> Bigarray.Array1.unsafe_get m (pos + i))
  in
  r.pos <- r.pos + n;
  s

(* Big-endian 32-bit, sign-extended: the same value [input_binary_int]
   would have produced, so the existing [< 0] sanity checks keep
   rejecting corrupt high-bit counts. *)
let read_int r =
  if r.len - r.pos < 4 then truncated ();
  let b i =
    Char.code
      (match r.src with
       | S_string s -> String.unsafe_get s (r.pos + i)
       | S_map m -> Bigarray.Array1.unsafe_get m (r.pos + i))
  in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  (v lxor 0x80000000) - 0x80000000

let read_string r =
  let n = read_int r in
  if n < 0 || n > 1 lsl 24 then raise (Format_error "bad string length");
  take_string r n

let read_bool r =
  match read_char r with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Format_error "bad boolean")

let read_ctl r : Action.ctl =
  match read_char r with
  | 'c' ->
    let taken = read_bool r in
    let mispredicted = read_bool r in
    Uarch.Oracle.C_cond { taken; mispredicted }
  | 'i' ->
    let target = read_int r in
    let hit = read_bool r in
    Uarch.Oracle.C_indirect { target; hit }
  | 's' -> Uarch.Oracle.C_stalled
  | _ -> raise (Format_error "bad control outcome")

let read_item r : Action.item =
  match read_char r with
  | 'l' -> Action.I_load (read_int r)
  | 's' -> Action.I_store
  | 'c' -> Action.I_ctl (read_ctl r)
  | 'r' -> Action.I_rollback (read_int r)
  | _ -> raise (Format_error "bad item tag")

let read_items r =
  let n = read_int r in
  if n < 0 || n > 1 lsl 24 then raise (Format_error "bad item count");
  Array.init n (fun _ -> read_item r)

(* The reader mirrors the writer's worklist: a frame per node whose
   children are still being parsed, and an iterative [reduce] that folds a
   completed subtree into its parent frame. No recursion, so deep chains
   load without growing the stack. *)
type read_frame =
  | R_store
  | R_rollback of int
  | R_load of load_frame
  | R_ctl of ctl_frame
  | R_stride of Action.item array * Action.stride_seg array
      (* ops and segments already parsed; waiting on [s_term]. *)

and load_frame = {
  mutable l_remaining : int;
  mutable l_acc : (int * Action.node) list;
  mutable l_cur : int;  (* latency label of the edge being parsed *)
}

and ctl_frame = {
  mutable c_remaining : int;
  mutable c_acc : (Action.ctl * Action.node) list;
  mutable c_cur : Action.ctl;
}

let read_node pc r : Action.node =
  let frames = ref [] in
  let finished = ref None in
  (* Fold [node0] into the enclosing frames until one still needs more
     children (then return to the tag loop) or none are left (done). *)
  let reduce node0 =
    let node = ref node0 in
    let reducing = ref true in
    while !reducing do
      match !frames with
      | [] ->
        finished := Some !node;
        reducing := false
      | R_store :: rest ->
        frames := rest;
        node := Action.N_store !node
      | R_rollback i :: rest ->
        frames := rest;
        node := Action.N_rollback (i, !node)
      | R_load f :: rest ->
        f.l_acc <- (f.l_cur, !node) :: f.l_acc;
        f.l_remaining <- f.l_remaining - 1;
        if f.l_remaining = 0 then begin
          frames := rest;
          node := Action.N_load { l_edges = List.rev f.l_acc }
        end
        else begin
          f.l_cur <- read_int r;
          reducing := false
        end
      | R_stride (ops, segs) :: rest ->
        frames := rest;
        node :=
          Action.N_stride
            { Action.s_ops = ops; s_segs = segs; s_term = !node }
      | R_ctl f :: rest ->
        f.c_acc <- (f.c_cur, !node) :: f.c_acc;
        f.c_remaining <- f.c_remaining - 1;
        if f.c_remaining = 0 then begin
          frames := rest;
          node := Action.N_ctl { c_edges = List.rev f.c_acc }
        end
        else begin
          f.c_cur <- read_ctl r;
          reducing := false
        end
    done
  in
  let read_count () =
    let n = read_int r in
    if n < 0 || n > 1 lsl 24 then raise (Format_error "bad edge count");
    n
  in
  while !finished = None do
    match read_char r with
    | 'L' ->
      let n = read_count () in
      if n = 0 then reduce (Action.N_load { l_edges = [] })
      else begin
        let lat = read_int r in
        frames :=
          R_load { l_remaining = n; l_acc = []; l_cur = lat } :: !frames
      end
    | 'S' -> frames := R_store :: !frames
    | 'C' ->
      let n = read_count () in
      if n = 0 then reduce (Action.N_ctl { c_edges = [] })
      else begin
        let out = read_ctl r in
        frames :=
          R_ctl { c_remaining = n; c_acc = []; c_cur = out } :: !frames
      end
    | 'R' ->
      let i = read_int r in
      frames := R_rollback i :: !frames
    | 'H' -> reduce Action.N_halt
    | 'G' ->
      let key = read_string r in
      reduce (Action.N_goto { target = Pcache.intern pc key })
    | 'T' ->
      let ops = read_items r in
      let nseg = read_int r in
      if nseg < 0 || nseg > 1 lsl 16 then
        raise (Format_error "bad stride segment count");
      let segs =
        Array.init nseg (fun _ ->
            let sg_cfg = Pcache.intern pc (read_string r) in
            let sg_silent = read_int r in
            let sg_retired = read_int r in
            let ncls = read_int r in
            if ncls < 0 || ncls > 64 then
              raise (Format_error "bad class count");
            let sg_classes = Array.init ncls (fun _ -> read_int r) in
            let sg_ops = read_items r in
            { Action.sg_cfg; sg_silent; sg_retired; sg_classes; sg_ops })
      in
      frames := R_stride (ops, segs) :: !frames
    | _ -> raise (Format_error "bad action tag")
  done;
  match !finished with Some n -> n | None -> assert false

let load_reader ?policy ~program r =
  let m = take_string r (String.length magic) in
  if not (String.equal m magic || String.equal m magic_v2) then
    raise (Format_error "bad magic");
  let digest = read_string r in
  if not (String.equal digest (program_digest program)) then
    raise (Format_error "p-action cache was saved for a different program");
  let pc = Pcache.create ?policy () in
  let n = read_int r in
  if n < 0 then raise (Format_error "bad config count");
  for _ = 1 to n do
    let key = read_string r in
    let cfg = Pcache.intern pc key in
    if read_bool r then begin
      let silent = read_int r in
      let retired = read_int r in
      let ncls = read_int r in
      if ncls < 0 || ncls > 64 then raise (Format_error "bad class count");
      let classes = Array.init ncls (fun _ -> read_int r) in
      let first = read_node pc r in
      Pcache.install_group pc cfg ~silent ~retired ~classes ~first
    end
  done;
  pc

let load_string ?policy ~program s =
  load_reader ?policy ~program (reader_of_string s)

let load ?policy ~program ic =
  (* The channel API slurps its input and parses in memory — channels
     may not be seekable (pipes), and the positional reader wants random
     access for sign-free bounds checks. *)
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec slurp () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      slurp ()
    end
  in
  slurp ();
  load_string ?policy ~program (Buffer.contents buf)

let save_file pc ~program path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      save pc ~program oc)

let load_file ?policy ~program path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let mapped =
        if len <= 0 then None
        else
          (* Map read-only and let the kernel page the shard in lazily;
             fall back to a plain read where mmap is unavailable (some
             filesystems, zero-length corner cases). *)
          match
            Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |]
          with
          | g -> Some (Bigarray.array1_of_genarray g)
          | exception Unix.Unix_error _ -> None
          | exception Sys_error _ -> None
      in
      match mapped with
      | Some m -> load_reader ?policy ~program { src = S_map m; len; pos = 0 }
      | None ->
        let ic = Unix.in_channel_of_descr fd in
        load ?policy ~program ic)
