exception Format_error of string

let magic = "FSPC0002"

let program_digest (p : Isa.Program.t) =
  let b = Bytes.create (4 * Array.length p.words) in
  Array.iteri (fun i w -> Bytes.set_int32_le b (4 * i) w) p.words;
  Digest.bytes b

(* ---- writing ---- *)

let write_string oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let write_bool oc b = output_char oc (if b then '\001' else '\000')

let rec write_node oc (node : Action.node) =
  match node with
  | Action.N_load { l_edges } ->
    output_char oc 'L';
    output_binary_int oc (List.length l_edges);
    List.iter
      (fun (lat, next) ->
        output_binary_int oc lat;
        write_node oc next)
      l_edges
  | Action.N_store next ->
    output_char oc 'S';
    write_node oc next
  | Action.N_ctl { c_edges } ->
    output_char oc 'C';
    output_binary_int oc (List.length c_edges);
    List.iter
      (fun (out, next) ->
        (match (out : Action.ctl) with
         | Uarch.Oracle.C_cond { taken; mispredicted } ->
           output_char oc 'c';
           write_bool oc taken;
           write_bool oc mispredicted
         | Uarch.Oracle.C_indirect { target; hit } ->
           output_char oc 'i';
           output_binary_int oc target;
           write_bool oc hit
         | Uarch.Oracle.C_stalled -> output_char oc 's');
        write_node oc next)
      c_edges
  | Action.N_rollback (i, next) ->
    output_char oc 'R';
    output_binary_int oc i;
    write_node oc next
  | Action.N_halt -> output_char oc 'H'
  | Action.N_goto g ->
    output_char oc 'G';
    write_string oc g.Action.target.Action.cfg_key

let save pc ~program oc =
  output_string oc magic;
  write_string oc (program_digest program);
  let configs = ref [] in
  Pcache.iter_configs (fun c -> configs := c :: !configs) pc;
  output_binary_int oc (List.length !configs);
  List.iter
    (fun (c : Action.config) ->
      write_string oc c.Action.cfg_key;
      match c.Action.cfg_group with
      | None -> write_bool oc false
      | Some g ->
        write_bool oc true;
        output_binary_int oc g.Action.g_silent;
        output_binary_int oc g.Action.g_retired;
        output_binary_int oc (Array.length g.Action.g_classes);
        Array.iter (output_binary_int oc) g.Action.g_classes;
        write_node oc g.Action.g_first)
    !configs

(* ---- reading ---- *)

let read_string ic =
  let n = input_binary_int ic in
  if n < 0 || n > 1 lsl 24 then raise (Format_error "bad string length");
  really_input_string ic n

let read_bool ic =
  match input_char ic with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Format_error "bad boolean")

let rec read_node pc ic : Action.node =
  match input_char ic with
  | 'L' ->
    let n = input_binary_int ic in
    let edges =
      List.init n (fun _ ->
          let lat = input_binary_int ic in
          (lat, read_node pc ic))
    in
    Action.N_load { l_edges = edges }
  | 'S' -> Action.N_store (read_node pc ic)
  | 'C' ->
    let n = input_binary_int ic in
    let edges =
      List.init n (fun _ ->
          let out : Action.ctl =
            match input_char ic with
            | 'c' ->
              let taken = read_bool ic in
              let mispredicted = read_bool ic in
              Uarch.Oracle.C_cond { taken; mispredicted }
            | 'i' ->
              let target = input_binary_int ic in
              let hit = read_bool ic in
              Uarch.Oracle.C_indirect { target; hit }
            | 's' -> Uarch.Oracle.C_stalled
            | _ -> raise (Format_error "bad control outcome")
          in
          (out, read_node pc ic))
    in
    Action.N_ctl { c_edges = edges }
  | 'R' ->
    let i = input_binary_int ic in
    Action.N_rollback (i, read_node pc ic)
  | 'H' -> Action.N_halt
  | 'G' ->
    let key = read_string ic in
    Action.N_goto { target = Pcache.intern pc key }
  | _ -> raise (Format_error "bad action tag")

let load ?policy ~program ic =
  let m = really_input_string ic (String.length magic) in
  if not (String.equal m magic) then raise (Format_error "bad magic");
  let digest = read_string ic in
  if not (String.equal digest (program_digest program)) then
    raise (Format_error "p-action cache was saved for a different program");
  let pc = Pcache.create ?policy () in
  let n = input_binary_int ic in
  if n < 0 then raise (Format_error "bad config count");
  for _ = 1 to n do
    let key = read_string ic in
    let cfg = Pcache.intern pc key in
    if read_bool ic then begin
      let silent = input_binary_int ic in
      let retired = input_binary_int ic in
      let ncls = input_binary_int ic in
      if ncls < 0 || ncls > 64 then raise (Format_error "bad class count");
      let classes = Array.init ncls (fun _ -> input_binary_int ic) in
      let first = read_node pc ic in
      Pcache.install_group pc cfg ~silent ~retired ~classes ~first
    end
  done;
  pc

let save_file pc ~program path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      save pc ~program oc)

let load_file ?policy ~program path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      load ?policy ~program ic)
