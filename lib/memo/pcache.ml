type policy =
  | Unbounded
  | Flush_on_full of int
  | Copying_gc of int
  | Generational_gc of { nursery : int; total : int }

exception Determinism_violation of string

type t = {
  pol : policy;
  (* The chain store this cache interns stride rules into. Private by
     default; the serve registry passes one shared store to every cache
     of the same program ([Registry.chain_store]), so identical chain
     suffixes across spec_keys are stored once. The cache holds rule
     references through its strides' [s_rule]; [release_rules] drops
     them when the cache is discarded while the store lives on. *)
  store : Store.t;
  (* Open-addressed intern table (see ctable.mli): keyed by the FNV-1a
     hash computed during snapshot encoding plus the key bytes, so warm
     lookups through [intern_arena] allocate nothing. *)
  table : Action.config Ctable.t;
  mutable epoch : int;
  (* "Used since the last collection" needs a notion of recency finer than
     the collections themselves (on the first collection everything has
     been used since the start). The epoch advances every [window] modeled
     bytes of allocation, so a collection keeps what was touched in the
     current allocation window. *)
  window : int;
  mutable alloc_window : int;
  mutable bytes : int;
  mutable nursery_bytes : int;
  mutable peak : int;
  mutable configs_alloc : int;
  mutable actions_alloc : int;
  mutable flush_count : int;
  mutable minor_count : int;
  mutable full_count : int;
  mutable gc_survivors : int;
  mutable gc_population : int;
  mutable stride_count : int;
  mutable expand_count : int;
  (* Observability (docs/OBSERVABILITY.md). Attached after creation with
     [attach_obs] because a warm-started cache outlives any one engine run.
     Strictly passive: no replacement or recording decision reads these. *)
  mutable obs_trace : Fastsim_obs.Trace.t option;
  mutable obs_now : unit -> int;  (* simulated-cycle source for event ts *)
  mutable m_inserts : Fastsim_obs.Metrics.counter option;
  mutable m_hits : Fastsim_obs.Metrics.counter option;
  mutable m_strides : Fastsim_obs.Metrics.counter option;
  mutable m_bytes : Fastsim_obs.Metrics.gauge option;
}

type counters = {
  static_configs : int;
  static_actions : int;
  live_configs : int;
  modeled_bytes : int;
  peak_modeled_bytes : int;
  flushes : int;
  minor_collections : int;
  full_collections : int;
  last_gc_survivors : int;
  last_gc_population : int;
  stride_compactions : int;
  stride_expansions : int;
}

let epoch_window = function
  | Copying_gc budget -> max 1024 (budget / 2)
  | Generational_gc { nursery; _ } -> max 1024 (nursery / 2)
  | Unbounded | Flush_on_full _ -> max_int

let create ?(policy = Unbounded) ?store () =
  let store =
    match store with Some s -> s | None -> Store.create ()
  in
  Store.addref store;
  { pol = policy;
    store;
    table = Ctable.create ~initial:4096 ();
    epoch = 0;
    window = epoch_window policy;
    alloc_window = 0;
    bytes = 0;
    nursery_bytes = 0;
    peak = 0;
    configs_alloc = 0;
    actions_alloc = 0;
    flush_count = 0;
    minor_count = 0;
    full_count = 0;
    gc_survivors = 0;
    gc_population = 0;
    stride_count = 0;
    expand_count = 0;
    obs_trace = None;
    obs_now = (fun () -> 0);
    m_inserts = None;
    m_hits = None;
    m_strides = None;
    m_bytes = None }

let policy t = t.pol
let store t = t.store

(* A stride's [s_rule] is the cache's only rule reference; dropping the
   group (expansion, flush, eviction) must return it to the store. *)
let release_group_rules t (c : Action.config) =
  match c.Action.cfg_group with
  | Some { Action.g_first = Action.N_stride s; _ } ->
    Store.release t.store s.Action.s_rule
  | _ -> ()

let release_rules t =
  Ctable.iter
    (fun _ (c : Action.config) ->
      match c.Action.cfg_group with
      | Some { Action.g_first = Action.N_stride s; _ } ->
        Store.release t.store s.Action.s_rule;
        (* Drop the group so a stray second call cannot double-release;
           the cache is being discarded, not reused. *)
        c.Action.cfg_group <- None
      | _ -> ())
    t.table;
  Store.decref t.store

let attach_obs t ?trace ?metrics ~now () =
  t.obs_trace <- trace;
  t.obs_now <- now;
  t.m_inserts <-
    Option.map (fun m -> Fastsim_obs.Metrics.counter m "pcache.inserts")
      metrics;
  t.m_hits <-
    Option.map (fun m -> Fastsim_obs.Metrics.counter m "pcache.intern_hits")
      metrics;
  t.m_strides <-
    Option.map
      (fun m -> Fastsim_obs.Metrics.counter m "pcache.stride_compactions")
      metrics;
  t.m_bytes <-
    Option.map (fun m -> Fastsim_obs.Metrics.gauge m "pcache.modeled_bytes")
      metrics

let detach_obs t =
  t.obs_trace <- None;
  t.obs_now <- (fun () -> 0);
  t.m_inserts <- None;
  t.m_hits <- None;
  t.m_strides <- None;
  t.m_bytes <- None

let emit t name args =
  match t.obs_trace with
  | None -> ()
  | Some tr ->
    Fastsim_obs.Trace.emit tr
      (Fastsim_obs.Event.instant ~ts:(t.obs_now ()) ~cat:"pcache" ~args name)

let tick = function
  | None -> ()
  | Some c -> Fastsim_obs.Metrics.incr c

let violation fmt = Format.kasprintf (fun s -> raise (Determinism_violation s)) fmt

let set_bytes_gauge t =
  match t.m_bytes with
  | None -> ()
  | Some g -> Fastsim_obs.Metrics.set g (float_of_int t.bytes)

let add_bytes t (cfg : Action.config) n =
  t.bytes <- t.bytes + n;
  if not cfg.cfg_old_gen then t.nursery_bytes <- t.nursery_bytes + n;
  set_bytes_gauge t;
  if t.bytes > t.peak then t.peak <- t.bytes;
  t.alloc_window <- t.alloc_window + n;
  if t.alloc_window >= t.window then begin
    t.epoch <- t.epoch + 1;
    t.alloc_window <- 0
  end

(* Structural shrinkage (stride compaction discarding plain chains): the
   modeled bytes go away but no allocation happened, so the epoch window
   and peak are untouched. *)
let remove_bytes t (cfg : Action.config) n =
  t.bytes <- t.bytes - n;
  if not cfg.Action.cfg_old_gen then
    t.nursery_bytes <- t.nursery_bytes - n;
  set_bytes_gauge t

let intern_miss t hash key =
  let cfg =
    { Action.cfg_key = key;
      cfg_hash = hash;
      cfg_bytes = Uarch.Snapshot.modeled_bytes key;
      cfg_action_bytes = 0;
      cfg_group = None;
      cfg_touched = t.epoch;
      cfg_hits = 0;
      cfg_dropped = false;
      cfg_old_gen = false }
  in
  Ctable.add t.table ~hash key cfg;
  t.configs_alloc <- t.configs_alloc + 1;
  add_bytes t cfg cfg.Action.cfg_bytes;
  tick t.m_inserts;
  emit t "insert"
    [ ("configs", Fastsim_obs.Json.Int (Ctable.length t.table));
      ("modeled_bytes", Fastsim_obs.Json.Int t.bytes) ];
  cfg

let intern t key =
  let hash = Uarch.Snapshot.hash_key key in
  match Ctable.find t.table ~hash key with
  | Some cfg ->
    tick t.m_hits;
    cfg.Action.cfg_touched <- t.epoch;
    cfg
  | None -> intern_miss t hash key

let intern_arena t (a : Uarch.Snapshot.Arena.t) =
  let hash = Uarch.Snapshot.Arena.hash a in
  match
    Ctable.find_bytes t.table ~hash (Uarch.Snapshot.Arena.buffer a)
      ~len:(Uarch.Snapshot.Arena.length a)
  with
  | Some cfg ->
    (* The hot-path hit: no string was materialised, nothing allocated. *)
    tick t.m_hits;
    cfg.Action.cfg_touched <- t.epoch;
    cfg
  | None -> intern_miss t hash (Uarch.Snapshot.Arena.key a)

let find t key =
  Ctable.find t.table ~hash:(Uarch.Snapshot.hash_key key) key

let find_arena t (a : Uarch.Snapshot.Arena.t) =
  Ctable.find_bytes t.table
    ~hash:(Uarch.Snapshot.Arena.hash a)
    (Uarch.Snapshot.Arena.buffer a)
    ~len:(Uarch.Snapshot.Arena.length a)

let touch t (cfg : Action.config) =
  cfg.Action.cfg_touched <- t.epoch;
  cfg.Action.cfg_hits <- cfg.Action.cfg_hits + 1

(* Builds a fresh chain for [items] ending in [term], charging its modeled
   bytes to [owner]. *)
let build_chain t owner items term =
  let alloc node =
    t.actions_alloc <- t.actions_alloc + 1;
    add_bytes t owner (Action.node_bytes node);
    node
  in
  let rec go = function
    | [] -> term
    | Action.I_load lat :: rest ->
      alloc (Action.N_load { l_edges = [ (lat, go rest) ] })
    | Action.I_store :: rest -> alloc (Action.N_store (go rest))
    | Action.I_ctl c :: rest ->
      alloc (Action.N_ctl { c_edges = [ (c, go rest) ] })
    | Action.I_rollback i :: rest -> alloc (Action.N_rollback (i, go rest))
  in
  go items

let resolve_goto t (g : Action.goto_node) =
  let target = g.Action.target in
  if target.Action.cfg_dropped then begin
    match Ctable.find t.table ~hash:target.Action.cfg_hash target.Action.cfg_key with
    | Some live ->
      g.Action.target <- live;
      live
    | None -> target
  end
  else target

(* ---- stride compaction (docs/INTERNALS.md "Hot path") ---------------- *)

(* A chain qualifies for compaction when it is a straight line: every
   action node carries exactly one recorded outcome edge. Returns the
   items in order, the terminal ([`Goto] keeps the actual node so its
   edge — and lazy pointer healing — is preserved), and the summed
   modeled bytes of every node on the line including the terminal. *)
let linear_chain first =
  let rec go acc bytes node =
    match node with
    | Action.N_load { Action.l_edges = [ (lat, next) ] } ->
      go (Action.I_load lat :: acc) (bytes + Action.node_bytes node) next
    | Action.N_ctl { Action.c_edges = [ (c, next) ] } ->
      go (Action.I_ctl c :: acc) (bytes + Action.node_bytes node) next
    | Action.N_store next ->
      go (Action.I_store :: acc) (bytes + Action.node_bytes node) next
    | Action.N_rollback (i, next) ->
      go (Action.I_rollback i :: acc) (bytes + Action.node_bytes node) next
    | Action.N_goto gn -> Some (List.rev acc, bytes + 8, `Goto gn)
    | Action.N_halt -> Some (List.rev acc, bytes + 8, `Halt)
    | Action.N_load _ | Action.N_ctl _ | Action.N_stride _ -> None
  in
  go [] 0 first

(* Strides longer than this stop growing: bounds the work a mid-stride
   divergence (full re-expansion) can cost. *)
let max_stride_segs = 64

let compact t (owner : Action.config) =
  (* A store over its (advisory) budget stops taking new rules; chains
     simply stay plain — observationally neutral for replay, the run is
     just not collapsed. Never the case without an explicit budget. *)
  if Store.over_budget t.store then false
  else
  match owner.Action.cfg_group with
  | None -> false
  | Some g ->
    (match linear_chain g.Action.g_first with
     | None | Some (_, _, `Halt) ->
       (* Multi-edge, already a stride, or nothing follows: leave it. *)
       false
     | Some (owner_ops, owner_bytes, `Goto gn0) ->
       let segs = ref [] in
       let nsegs = ref 0 in
       let seen = ref [ owner ] in
       let halt_term = ref false in
       let last_goto = ref gn0 in
       let cur = ref (resolve_goto t gn0) in
       let stop = ref false in
       while not !stop do
         let c = !cur in
         if
           !nsegs >= max_stride_segs
           || List.memq c !seen
           || c.Action.cfg_dropped
         then stop := true
         else
           match c.Action.cfg_group with
           | None -> stop := true
           | Some sg -> (
             match linear_chain sg.Action.g_first with
             | None -> stop := true
             | Some (ops, bytes, term) ->
               seen := c :: !seen;
               segs := (c, sg, ops, bytes) :: !segs;
               incr nsegs;
               (match term with
                | `Goto gn ->
                  last_goto := gn;
                  cur := resolve_goto t gn
                | `Halt ->
                  halt_term := true;
                  stop := true))
       done;
       if !nsegs = 0 then false
       else begin
         let segs = List.rev !segs in
         (* Strip the plain chains: the absorbed configurations stay
            interned (re-recordable on a direct landing) but lose their
            groups; the owner keeps its group with the stride as chain. *)
         remove_bytes t owner owner_bytes;
         List.iter
           (fun ((c : Action.config), _, _, bytes) ->
             remove_bytes t c bytes;
             c.Action.cfg_group <- None)
           segs;
         let term_node =
           if !halt_term then Action.N_halt
           else Action.N_goto !last_goto
         in
         let seg_arr =
           Array.of_list
             (List.map
                (fun (c, (sg : Action.group), ops, _) ->
                  { Action.sg_cfg = c;
                    sg_silent = sg.Action.g_silent;
                    sg_retired = sg.Action.g_retired;
                    sg_classes = sg.Action.g_classes;
                    sg_ops = Array.of_list ops })
                segs)
         in
         (* Canonical compressed form: portable segments (keys, not
            nodes) interned into the chain store, sharing the segment
            arrays just built. The returned rule arrives retained; the
            stride owns that reference until expansion/discard. *)
         let rule =
           Store.intern_segs t.store
             (Array.map
                (fun (seg : Action.stride_seg) ->
                  { Action.pg_key = seg.Action.sg_cfg.Action.cfg_key;
                    pg_silent = seg.Action.sg_silent;
                    pg_retired = seg.Action.sg_retired;
                    pg_classes = seg.Action.sg_classes;
                    pg_ops = seg.Action.sg_ops })
                seg_arr)
         in
         let stride =
           Action.N_stride
             { Action.s_ops = Array.of_list owner_ops;
               s_segs = seg_arr;
               s_term = term_node;
               s_rule = rule }
         in
         t.actions_alloc <- t.actions_alloc + 1;
         owner.Action.cfg_group <-
           Some
             { Action.g_silent = g.Action.g_silent;
               g_retired = g.Action.g_retired;
               g_classes = g.Action.g_classes;
               g_first = stride };
         add_bytes t owner (Action.node_bytes stride);
         add_bytes t owner (Action.node_bytes term_node);
         t.stride_count <- t.stride_count + 1;
         tick t.m_strides;
         emit t "stride_compact"
           [ ("segs", Fastsim_obs.Json.Int (List.length segs));
             ("modeled_bytes", Fastsim_obs.Json.Int t.bytes) ];
         true
       end)

let expand_stride t (owner : Action.config) =
  match owner.Action.cfg_group with
  | Some ({ Action.g_first = Action.N_stride s; _ } as g) ->
    let nseg = Array.length s.Action.s_segs in
    (* Prefer the live twin of each absorbed configuration: if one was
       dropped by a collection and re-interned since, the restored group
       must land on the table's node so the engine's subsequent merge and
       goto edges see it. *)
    let resolved =
      Array.map
        (fun (seg : Action.stride_seg) ->
          let c = seg.Action.sg_cfg in
          if c.Action.cfg_dropped then
            match
              Ctable.find t.table ~hash:c.Action.cfg_hash c.Action.cfg_key
            with
            | Some live -> live
            | None -> c
          else c)
        s.Action.s_segs
    in
    (* Rebuild plain groups from the tail so each segment's terminal can
       point at the next segment's configuration. A segment that already
       re-recorded its own group (possible after an eviction) keeps it. *)
    for i = nseg - 1 downto 0 do
      let seg = s.Action.s_segs.(i) in
      let c = resolved.(i) in
      if c.Action.cfg_group = None then begin
        let term =
          if i = nseg - 1 then s.Action.s_term
          else Action.N_goto { Action.target = resolved.(i + 1) }
        in
        t.actions_alloc <- t.actions_alloc + 1;
        add_bytes t c (Action.node_bytes term);
        let first =
          build_chain t c (Array.to_list seg.Action.sg_ops) term
        in
        c.Action.cfg_group <-
          Some
            { Action.g_silent = seg.Action.sg_silent;
              g_retired = seg.Action.sg_retired;
              g_classes = seg.Action.sg_classes;
              g_first = first }
      end
    done;
    remove_bytes t owner
      (Action.node_bytes (Action.N_stride s)
      + Action.node_bytes s.Action.s_term);
    Store.release t.store s.Action.s_rule;
    let term0 = Action.N_goto { Action.target = resolved.(0) } in
    t.actions_alloc <- t.actions_alloc + 1;
    add_bytes t owner (Action.node_bytes term0);
    let first = build_chain t owner (Array.to_list s.Action.s_ops) term0 in
    owner.Action.cfg_group <-
      Some
        { Action.g_silent = g.Action.g_silent;
          g_retired = g.Action.g_retired;
          g_classes = g.Action.g_classes;
          g_first = first };
    t.expand_count <- t.expand_count + 1;
    emit t "stride_expand"
      [ ("segs", Fastsim_obs.Json.Int nseg);
        ("modeled_bytes", Fastsim_obs.Json.Int t.bytes) ];
    resolved
  | _ -> [||]

(* ---- group recording ------------------------------------------------- *)

let merge_group t (cfg : Action.config) ~silent ~retired ~classes ~items
    ~terminal =
  let next_cfg =
    match terminal with
    | Action.T_goto c -> Some c
    | Action.T_halt -> None
  in
  (* The terminal node is only allocated if a chain is actually built;
     re-recording an already known path must not grow the cache. *)
  let make_term () =
    match next_cfg with
    | Some c ->
      t.actions_alloc <- t.actions_alloc + 1;
      let n = Action.N_goto { target = c } in
      add_bytes t cfg (Action.node_bytes n);
      n
    | None ->
      t.actions_alloc <- t.actions_alloc + 1;
      add_bytes t cfg (Action.node_bytes Action.N_halt);
      Action.N_halt
  in
  (* A stride at the head means [cfg] owns a compacted run; expand it back
     to plain groups before walking (defensive: the engine's merges land
     on plain chains — replay expands before reporting a divergence). *)
  (match cfg.Action.cfg_group with
   | Some { Action.g_first = Action.N_stride _; _ } ->
     ignore (expand_stride t cfg : Action.config array)
   | _ -> ());
  (match cfg.Action.cfg_group with
   | None ->
     cfg.Action.cfg_group <-
       Some
         { Action.g_silent = silent;
           g_retired = retired;
           g_classes = Array.copy classes;
           g_first = build_chain t cfg items (make_term ()) }
   | Some g ->
     if g.Action.g_silent <> silent then
       violation "group silent-cycle mismatch: %d vs %d" g.Action.g_silent
         silent;
     if g.Action.g_retired <> retired then
       violation "group retired-count mismatch: %d vs %d" g.Action.g_retired
         retired;
     if g.Action.g_classes <> classes then
       violation "group per-class retirement mismatch";
     (* Walk the existing chain along [items]; graft at the first unseen
        outcome. *)
     let rec walk node items =
       match node, items with
       | Action.N_load ln, Action.I_load lat :: rest -> (
         match Action.load_edge lat ln.Action.l_edges with
         | Some next -> walk next rest
         | None ->
           ln.Action.l_edges <-
             (lat, build_chain t cfg rest (make_term ()))
             :: ln.Action.l_edges;
           (* one more outcome edge on this node *)
           add_bytes t cfg 8)
       | Action.N_store next, Action.I_store :: rest -> walk next rest
       | Action.N_ctl cn, Action.I_ctl c :: rest -> (
         match Action.ctl_edge c cn.Action.c_edges with
         | Some next -> walk next rest
         | None ->
           cn.Action.c_edges <-
             (c, build_chain t cfg rest (make_term ()))
             :: cn.Action.c_edges;
           add_bytes t cfg 8)
       | Action.N_rollback (i, next), Action.I_rollback j :: rest ->
         if i <> j then violation "rollback index mismatch: %d vs %d" i j;
         walk next rest
       | Action.N_goto g, [] -> (
         match terminal with
         | Action.T_goto c
           when String.equal g.Action.target.Action.cfg_key
                  c.Action.cfg_key ->
           ()
         | Action.T_goto _ -> violation "successor configuration mismatch"
         | Action.T_halt -> violation "halt where goto was recorded")
       | Action.N_halt, [] -> (
         match terminal with
         | Action.T_halt -> ()
         | Action.T_goto _ -> violation "goto where halt was recorded")
       | node, item :: _ ->
         violation "action kind mismatch: %a vs item %a"
           (fun ppf -> Action.pp_node_shallow ppf)
           node
           (fun ppf -> Action.pp_item ppf)
           item
       | node, [] ->
         violation "recorded chain shorter than existing: at %a"
           (fun ppf -> Action.pp_node_shallow ppf)
           node
     in
     walk g.Action.g_first items);
  (* Compaction opportunity: the successor already has a group, so the
     engine is about to switch to replay through it. If it heads a linear
     run, collapse the run now — the successor keeps its group (as stride
     owner), so nothing the engine needs next is lost. *)
  (match next_cfg with
   | Some next when next.Action.cfg_group <> None ->
     ignore (compact t next : bool)
   | _ -> ());
  next_cfg

let config_size (c : Action.config) =
  c.Action.cfg_bytes + c.Action.cfg_action_bytes

(* [cfg_action_bytes] is maintained here rather than at every [add_bytes]
   call site: recompute a config's share lazily before collections.
   Iterative with an explicit worklist: chains grow one node per silent
   region, so a long-running workload can build chains deep enough to
   overflow the OCaml stack under naive recursion. *)
let recompute_action_bytes (c : Action.config) =
  let total = ref 0 in
  let stack = ref [] in
  let push n = stack := n :: !stack in
  (match c.Action.cfg_group with
   | Some g -> push g.Action.g_first
   | None -> ());
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | node :: rest ->
      stack := rest;
      total := !total + Action.node_bytes node;
      (match node with
       | Action.N_load { l_edges } -> List.iter (fun (_, n) -> push n) l_edges
       | Action.N_ctl { c_edges } -> List.iter (fun (_, n) -> push n) c_edges
       | Action.N_store next | Action.N_rollback (_, next) -> push next
       | Action.N_stride { s_term; _ } -> push s_term
       | Action.N_halt | Action.N_goto _ -> ())
  done;
  c.Action.cfg_action_bytes <- !total

let flush t =
  emit t "flush"
    [ ("population", Fastsim_obs.Json.Int (Ctable.length t.table)) ];
  Ctable.iter
    (fun _ (c : Action.config) ->
      release_group_rules t c;
      c.Action.cfg_dropped <- true;
      c.Action.cfg_group <- None)
    t.table;
  Ctable.clear t.table;
  t.bytes <- 0;
  t.nursery_bytes <- 0;
  t.flush_count <- t.flush_count + 1;
  match t.m_bytes with
  | None -> ()
  | Some g -> Fastsim_obs.Metrics.set g 0.

(* Keep configurations used since the last collection (epoch = current).
   [minor] restricts eviction to the nursery. *)
let collect t ~minor =
  let population = Ctable.length t.table in
  let survivors = ref [] in
  Ctable.iter
    (fun _ (c : Action.config) ->
      let used = c.Action.cfg_touched >= t.epoch in
      let keep = if minor then c.Action.cfg_old_gen || used else used in
      if keep then begin
        if minor && used && not c.Action.cfg_old_gen then
          c.Action.cfg_old_gen <- true;
        survivors := c :: !survivors
      end
      else begin
        release_group_rules t c;
        c.Action.cfg_dropped <- true;
        c.Action.cfg_group <- None
      end)
    t.table;
  Ctable.clear t.table;
  t.bytes <- 0;
  t.nursery_bytes <- 0;
  List.iter
    (fun (c : Action.config) ->
      recompute_action_bytes c;
      Ctable.add t.table ~hash:c.Action.cfg_hash c.Action.cfg_key c;
      t.bytes <- t.bytes + config_size c;
      if not c.Action.cfg_old_gen then
        t.nursery_bytes <- t.nursery_bytes + config_size c)
    !survivors;
  if minor then t.minor_count <- t.minor_count + 1
  else t.full_count <- t.full_count + 1;
  t.gc_survivors <- List.length !survivors;
  t.gc_population <- population;
  set_bytes_gauge t;
  emit t
    (if minor then "minor_gc" else "full_gc")
    [ ("survivors", Fastsim_obs.Json.Int t.gc_survivors);
      ("population", Fastsim_obs.Json.Int population) ];
  t.epoch <- t.epoch + 1

let check_budget t =
  match t.pol with
  | Unbounded -> `Kept
  | Flush_on_full budget ->
    if t.bytes > budget then begin
      flush t;
      `Flushed
    end
    else `Kept
  | Copying_gc budget ->
    if t.bytes > budget then begin
      collect t ~minor:false;
      (* A collection that frees nothing must still bound memory. *)
      if t.bytes > budget then flush t;
      `Collected
    end
    else `Kept
  | Generational_gc { nursery; total } ->
    if t.bytes > total then begin
      collect t ~minor:false;
      if t.bytes > total then flush t;
      `Collected
    end
    else if t.nursery_bytes > nursery then begin
      collect t ~minor:true;
      `Collected
    end
    else `Kept

let counters t =
  { static_configs = t.configs_alloc;
    static_actions = t.actions_alloc;
    live_configs = Ctable.length t.table;
    modeled_bytes = t.bytes;
    peak_modeled_bytes = t.peak;
    flushes = t.flush_count;
    minor_collections = t.minor_count;
    full_collections = t.full_count;
    last_gc_survivors = t.gc_survivors;
    last_gc_population = t.gc_population;
    stride_compactions = t.stride_count;
    stride_expansions = t.expand_count }

let iter_configs f t = Ctable.iter (fun _ c -> f c) t.table

(* Low-level: attach a prebuilt chain (deserialisation); accounts for its
   modeled size and static counters. *)
let install_group t (cfg : Action.config) ~silent ~retired ~classes ~first =
  if cfg.Action.cfg_group <> None then
    violation "install_group: configuration already has a group";
  cfg.Action.cfg_group <-
    Some
      { Action.g_silent = silent;
        g_retired = retired;
        g_classes = classes;
        g_first = first };
  (* Worklist, not recursion: deserialised chains can be arbitrarily deep
     (see the ≥100k-node regression test in test/test_persist.ml). *)
  let stack = ref [ first ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | node :: rest ->
      stack := rest;
      t.actions_alloc <- t.actions_alloc + 1;
      add_bytes t cfg (Action.node_bytes node);
      (match node with
       | Action.N_load { l_edges } ->
         List.iter (fun (_, n) -> stack := n :: !stack) l_edges
       | Action.N_ctl { c_edges } ->
         List.iter (fun (_, n) -> stack := n :: !stack) c_edges
       | Action.N_store next | Action.N_rollback (_, next) ->
         stack := next :: !stack
       | Action.N_stride { s_term; _ } -> stack := s_term :: !stack
       | Action.N_halt | Action.N_goto _ -> ())
  done
