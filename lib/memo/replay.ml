type result =
  | Diverged of { config : Action.config; prefix : Action.item list }
  | Replay_halted
  | Replay_budget of Action.config

type group_step =
  | G_next of Action.config
  | G_halt
  | G_diverge of Action.item list

(* Test-only fault injection (docs/FUZZ.md): when the environment variable
   FASTSIM_REPLAY_FAULT_EVERY is a positive integer n, every n-th fully
   replayed group charges one extra cycle. This deliberately breaks the
   fast ≡ slow equivalence so the differential fuzzing harness (and CI)
   can prove it detects and shrinks such bugs. Unset (the normal case),
   replay is exact. The variable is re-read on every [run] so tests can
   toggle it with [Unix.putenv]. *)
let fault_period () =
  match Sys.getenv_opt "FASTSIM_REPLAY_FAULT_EVERY" with
  | None | Some "" -> 0
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 0)

let run ?(max_cycles = max_int) ?trace ?metrics pc (stats : Stats.t)
    ~(oracle : Uarch.Oracle.t) ~cycle ~classes ~start =
  (* Observability (docs/OBSERVABILITY.md): one [engine]-category replay
     span per run, synthetic per-group events reconstructed from the action
     chains as they are walked, and chain/episode-length histograms.
     Strictly passive. *)
  let h_chain =
    Option.map
      (fun m -> Fastsim_obs.Metrics.histogram m "memo.replay_chain_length")
      metrics
  in
  let h_episode =
    Option.map
      (fun m -> Fastsim_obs.Metrics.histogram m "memo.episode_cycles")
      metrics
  in
  let cycle0 = !cycle in
  let actions0 = stats.Stats.actions_replayed in
  let groups0 = stats.Stats.groups_replayed in
  (match trace with
   | None -> ()
   | Some tr ->
     Fastsim_obs.Trace.emit tr
       (Fastsim_obs.Event.span_begin ~ts:cycle0 ~cat:"engine" "replay"));
  (* All exit paths funnel through here; [Stats.end_episode] is idempotent
     and empty episodes are not counted, so observe the chain length under
     the same guard. *)
  let end_episode () =
    (match h_chain with
     | Some h when stats.Stats.chain_current > 0 ->
       Fastsim_obs.Metrics.observe h stats.Stats.chain_current
     | Some _ | None -> ());
    Stats.end_episode stats
  in
  let group_done g =
    match trace with
    | None -> ()
    | Some tr ->
      Fastsim_obs.Trace.emit tr
        (Fastsim_obs.Event.instant ~ts:!cycle ~cat:"memo" "group_replayed"
           ~args:
             [ ("silent", Fastsim_obs.Json.Int g.Action.g_silent);
               ("retired", Fastsim_obs.Json.Int g.Action.g_retired) ]);
      Fastsim_obs.Trace.emit tr
        (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
           (stats.Stats.detailed_retired + stats.Stats.replayed_retired))
  in
  let fault_every = fault_period () in
  let cur = ref start in
  let result = ref None in
  while !result = None do
    let cfg = !cur in
    Pcache.touch pc cfg;
    match cfg.Action.cfg_group with
    | None ->
      end_episode ();
      result := Some (Diverged { config = cfg; prefix = [] })
    | Some g when !cycle + g.Action.g_silent >= max_cycles ->
      (* The cycle budget falls inside this group: its interaction cycle
         would land at or past [max_cycles]. Replaying it would overshoot
         the budget mid-group — performing interactions a detailed run
         stopped at the same budget never performs, and charging cycles and
         retirement that are recorded only as whole-group aggregates. Hand
         the configuration back instead; the caller re-simulates the
         truncated tail in detail, stopping exactly at the budget with
         exact partial statistics, so Fast ≡ Slow at every truncation
         point. *)
      end_episode ();
      result := Some (Replay_budget cfg)
    | Some g ->
      let base = !cycle in
      let now = base + g.Action.g_silent in
      let prefix = ref [] in
      let push item = prefix := item :: !prefix in
      (* Walk this group's chain, re-performing interactions live. *)
      let rec walk node =
        match node with
        | Action.N_load ln -> (
          let lat = oracle.cache_load ~now in
          push (Action.I_load lat);
          match Action.load_edge lat ln.Action.l_edges with
          | Some next ->
            Stats.note_action stats;
            walk next
          | None -> G_diverge (List.rev !prefix))
        | Action.N_store next ->
          oracle.cache_store ~now;
          push Action.I_store;
          Stats.note_action stats;
          walk next
        | Action.N_ctl cn -> (
          let out = oracle.fetch_control () in
          push (Action.I_ctl out);
          match Action.ctl_edge out cn.Action.c_edges with
          | Some next ->
            Stats.note_action stats;
            walk next
          | None -> G_diverge (List.rev !prefix))
        | Action.N_rollback (i, next) ->
          oracle.rollback ~index:i;
          push (Action.I_rollback i);
          Stats.note_action stats;
          walk next
        | Action.N_halt ->
          Stats.note_action stats;
          G_halt
        | Action.N_goto gn ->
          Stats.note_action stats;
          G_next (Pcache.resolve_goto pc gn)
      in
      let skew =
        (* see [fault_period] above; 0 unless fault injection is enabled *)
        if
          fault_every > 0
          && (stats.Stats.groups_replayed + 1) mod fault_every = 0
        then 1
        else 0
      in
      (match walk g.Action.g_first with
       | G_next target ->
         cycle := now + 1 + skew;
         stats.replayed_cycles <- stats.replayed_cycles + g.Action.g_silent + 1;
         stats.replayed_retired <- stats.replayed_retired + g.Action.g_retired;
         stats.groups_replayed <- stats.groups_replayed + 1;
         Array.iteri
           (fun i v -> classes.(i) <- classes.(i) + v)
           g.Action.g_classes;
         group_done g;
         cur := target
       | G_halt ->
         cycle := now + 1 + skew;
         stats.replayed_cycles <- stats.replayed_cycles + g.Action.g_silent + 1;
         stats.replayed_retired <- stats.replayed_retired + g.Action.g_retired;
         stats.groups_replayed <- stats.groups_replayed + 1;
         Array.iteri
           (fun i v -> classes.(i) <- classes.(i) + v)
           g.Action.g_classes;
         group_done g;
         end_episode ();
         result := Some Replay_halted
       | G_diverge prefix ->
         (* The cycle counter stays at the group start: the detailed
            simulator re-simulates this group's cycles, consuming [prefix]
            instead of re-performing its side effects. *)
         end_episode ();
         result := Some (Diverged { config = cfg; prefix }))
  done;
  (match h_episode with
   | Some h when !cycle > cycle0 ->
     Fastsim_obs.Metrics.observe h (!cycle - cycle0)
   | Some _ | None -> ());
  (match trace with
   | None -> ()
   | Some tr ->
     Fastsim_obs.Trace.emit tr
       (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "replay"
          ~args:
            [ ( "groups",
                Fastsim_obs.Json.Int (stats.Stats.groups_replayed - groups0) );
              ( "actions",
                Fastsim_obs.Json.Int (stats.Stats.actions_replayed - actions0)
              ) ]));
  match !result with Some r -> r | None -> assert false
