type result =
  | Diverged of { config : Action.config; prefix : Action.item list }
  | Replay_halted
  | Replay_budget of Action.config

type group_step =
  | G_next of Action.config
  | G_halt
  | G_diverge of Action.item list

(* Test-only fault injection (docs/FUZZ.md): when the environment variable
   FASTSIM_REPLAY_FAULT_EVERY is a positive integer n, every n-th fully
   replayed group charges one extra cycle. This deliberately breaks the
   fast ≡ slow equivalence so the differential fuzzing harness (and CI)
   can prove it detects and shrinks such bugs. Unset (the normal case),
   replay is exact. The variable is re-read on every [run] so tests can
   toggle it with [Unix.putenv]. *)
let fault_period () =
  match Sys.getenv_opt "FASTSIM_REPLAY_FAULT_EVERY" with
  | None | Some "" -> 0
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 0)

let run ?(max_cycles = max_int) ?(max_retired = max_int) ?trace ?metrics pc
    (stats : Stats.t) ~(oracle : Uarch.Oracle.t) ~cycle ~classes ~start =
  (* Observability (docs/OBSERVABILITY.md): one [engine]-category replay
     span per run, synthetic per-group events reconstructed from the action
     chains as they are walked, and chain/episode-length histograms.
     Strictly passive. *)
  let h_chain =
    Option.map
      (fun m -> Fastsim_obs.Metrics.histogram m "memo.replay_chain_length")
      metrics
  in
  let h_episode =
    Option.map
      (fun m -> Fastsim_obs.Metrics.histogram m "memo.episode_cycles")
      metrics
  in
  let cycle0 = !cycle in
  let actions0 = stats.Stats.actions_replayed in
  let groups0 = stats.Stats.groups_replayed in
  let retired0 = stats.Stats.replayed_retired in
  (* Retirement budget (strategy engines, docs/STRATEGY.md): replaying a
     group that would bring this run's retirement tally to [max_retired]
     or past it would overshoot a boundary whose exact crossing cycle is
     recorded only as a whole-group aggregate. Same contract as the
     [max_cycles] guard: stop {e before} such a group, hand its
     configuration back, and let the caller re-simulate in detail up to
     the exact crossing point. *)
  let retire_budget_hit g_retired =
    stats.Stats.replayed_retired - retired0 + g_retired >= max_retired
  in
  (match trace with
   | None -> ()
   | Some tr ->
     Fastsim_obs.Trace.emit tr
       (Fastsim_obs.Event.span_begin ~ts:cycle0 ~cat:"engine" "replay"));
  (* All exit paths funnel through here; [Stats.end_episode] is idempotent
     and empty episodes are not counted, so observe the chain length under
     the same guard. *)
  let end_episode () =
    (match h_chain with
     | Some h when stats.Stats.chain_current > 0 ->
       Fastsim_obs.Metrics.observe h stats.Stats.chain_current
     | Some _ | None -> ());
    Stats.end_episode stats
  in
  let group_done ~silent ~retired =
    match trace with
    | None -> ()
    | Some tr ->
      Fastsim_obs.Trace.emit tr
        (Fastsim_obs.Event.instant ~ts:!cycle ~cat:"memo" "group_replayed"
           ~args:
             [ ("silent", Fastsim_obs.Json.Int silent);
               ("retired", Fastsim_obs.Json.Int retired) ]);
      Fastsim_obs.Trace.emit tr
        (Fastsim_obs.Event.counter ~ts:!cycle ~cat:"engine" "retired"
           (stats.Stats.detailed_retired + stats.Stats.replayed_retired))
  in
  let fault_every = fault_period () in
  let cur = ref start in
  let result = ref None in
  (* ---- stride replay (docs/INTERNALS.md "Hot path") ----------------
     A stride is a compacted linear run of groups replayed as one step.
     Every observable effect — oracle call order and [~now] stamps,
     per-group cycle/retirement/class charging, fault-injection skew,
     budget truncation, note_action counts — matches what plain replay
     of the uncompacted run would do, so statistics are bit-identical. *)
  (* Re-perform one segment's recorded items against the live oracle.
     Returns [`Ok] or the consumed outcomes (live values, including the
     diverging one) exactly as the plain walk builds its prefix. *)
  let perform_ops ops now =
    let prefix = ref [] in
    let n = Array.length ops in
    let i = ref 0 in
    let diverged = ref false in
    while (not !diverged) && !i < n do
      (match ops.(!i) with
       | Action.I_load lat ->
         let live = oracle.Uarch.Oracle.cache_load ~now in
         prefix := Action.I_load live :: !prefix;
         if Int.equal live lat then Stats.note_action stats
         else diverged := true
       | Action.I_store ->
         oracle.Uarch.Oracle.cache_store ~now;
         prefix := Action.I_store :: !prefix;
         Stats.note_action stats
       | Action.I_ctl c ->
         let out = oracle.Uarch.Oracle.fetch_control () in
         prefix := Action.I_ctl out :: !prefix;
         if Action.ctl_equal out c then Stats.note_action stats
         else diverged := true
       | Action.I_rollback idx ->
         oracle.Uarch.Oracle.rollback ~index:idx;
         prefix := Action.I_rollback idx :: !prefix;
         Stats.note_action stats);
      incr i
    done;
    if !diverged then `Diverge (List.rev !prefix) else `Ok
  in
  (* Whole-group charging, identical to the plain G_next/G_halt paths:
     one boundary note_action (the goto/halt/segment boundary the plain
     chain would have walked), the same fault-injection skew formula, the
     same cycle advance. *)
  let charge_segment ~silent ~retired ~seg_classes =
    Stats.note_action stats;
    let skew =
      if
        fault_every > 0
        && (stats.Stats.groups_replayed + 1) mod fault_every = 0
      then 1
      else 0
    in
    cycle := !cycle + silent + 1 + skew;
    stats.replayed_cycles <- stats.replayed_cycles + silent + 1;
    stats.replayed_retired <- stats.replayed_retired + retired;
    stats.groups_replayed <- stats.groups_replayed + 1;
    Array.iteri (fun i v -> classes.(i) <- classes.(i) + v) seg_classes;
    group_done ~silent ~retired
  in
  let replay_stride (cfg : Action.config) (g : Action.group)
      (s : Action.stride_node) =
    (* The owner group's budget was checked by the caller's guard. *)
    match perform_ops s.Action.s_ops (!cycle + g.Action.g_silent) with
    | `Diverge prefix ->
      (* Expand the whole run back into exact plain groups, then report
         the divergence against the owner — the detailed simulator merges
         into a plain chain, never into a stride. *)
      ignore (Pcache.expand_stride pc cfg : Action.config array);
      end_episode ();
      result := Some (Diverged { config = cfg; prefix })
    | `Ok ->
      charge_segment ~silent:g.Action.g_silent ~retired:g.Action.g_retired
        ~seg_classes:g.Action.g_classes;
      let nseg = Array.length s.Action.s_segs in
      let i = ref 0 in
      let stopped = ref false in
      while (not !stopped) && !i < nseg do
        let seg = s.Action.s_segs.(!i) in
        Pcache.touch pc seg.Action.sg_cfg;
        if
          !cycle + seg.Action.sg_silent >= max_cycles
          || retire_budget_hit seg.Action.sg_retired
        then begin
          (* Same contract as the plain [Replay_budget]: stop before the
             segment, nothing performed, nothing charged; the caller
             re-simulates the truncated tail in detail from this
             configuration's key. The stride itself stays compacted. *)
          end_episode ();
          result := Some (Replay_budget seg.Action.sg_cfg);
          stopped := true
        end
        else begin
          match perform_ops seg.Action.sg_ops (!cycle + seg.Action.sg_silent)
          with
          | `Diverge prefix ->
            let resolved = Pcache.expand_stride pc cfg in
            let target =
              if !i < Array.length resolved then resolved.(!i)
              else seg.Action.sg_cfg
            in
            end_episode ();
            result := Some (Diverged { config = target; prefix });
            stopped := true
          | `Ok ->
            charge_segment ~silent:seg.Action.sg_silent
              ~retired:seg.Action.sg_retired
              ~seg_classes:seg.Action.sg_classes;
            incr i
        end
      done;
      if not !stopped then begin
        match s.Action.s_term with
        | Action.N_goto gn -> cur := Pcache.resolve_goto pc gn
        | Action.N_halt ->
          end_episode ();
          result := Some Replay_halted
        | _ ->
          raise
            (Pcache.Determinism_violation
               "stride terminal must be goto or halt")
      end
  in
  while !result = None do
    let cfg = !cur in
    Pcache.touch pc cfg;
    match cfg.Action.cfg_group with
    | None ->
      end_episode ();
      result := Some (Diverged { config = cfg; prefix = [] })
    | Some g
      when !cycle + g.Action.g_silent >= max_cycles
           || retire_budget_hit g.Action.g_retired ->
      (* The cycle budget falls inside this group: its interaction cycle
         would land at or past [max_cycles]. Replaying it would overshoot
         the budget mid-group — performing interactions a detailed run
         stopped at the same budget never performs, and charging cycles and
         retirement that are recorded only as whole-group aggregates. Hand
         the configuration back instead; the caller re-simulates the
         truncated tail in detail, stopping exactly at the budget with
         exact partial statistics, so Fast ≡ Slow at every truncation
         point. *)
      end_episode ();
      result := Some (Replay_budget cfg)
    | Some ({ Action.g_first = Action.N_stride s; _ } as g) ->
      replay_stride cfg g s
    | Some g ->
      let base = !cycle in
      let now = base + g.Action.g_silent in
      let prefix = ref [] in
      let push item = prefix := item :: !prefix in
      (* Walk this group's chain, re-performing interactions live. *)
      let rec walk node =
        match node with
        | Action.N_load ln -> (
          let lat = oracle.cache_load ~now in
          push (Action.I_load lat);
          match Action.load_edge lat ln.Action.l_edges with
          | Some next ->
            Stats.note_action stats;
            walk next
          | None -> G_diverge (List.rev !prefix))
        | Action.N_store next ->
          oracle.cache_store ~now;
          push Action.I_store;
          Stats.note_action stats;
          walk next
        | Action.N_ctl cn -> (
          let out = oracle.fetch_control () in
          push (Action.I_ctl out);
          match Action.ctl_edge out cn.Action.c_edges with
          | Some next ->
            Stats.note_action stats;
            walk next
          | None -> G_diverge (List.rev !prefix))
        | Action.N_rollback (i, next) ->
          oracle.rollback ~index:i;
          push (Action.I_rollback i);
          Stats.note_action stats;
          walk next
        | Action.N_halt ->
          Stats.note_action stats;
          G_halt
        | Action.N_goto gn ->
          Stats.note_action stats;
          G_next (Pcache.resolve_goto pc gn)
        | Action.N_stride _ ->
          (* Strides only ever head a group's chain; the dispatch above
             routes them to [replay_stride]. *)
          raise
            (Pcache.Determinism_violation "stride node inside a chain")
      in
      let skew =
        (* see [fault_period] above; 0 unless fault injection is enabled *)
        if
          fault_every > 0
          && (stats.Stats.groups_replayed + 1) mod fault_every = 0
        then 1
        else 0
      in
      (match walk g.Action.g_first with
       | G_next target ->
         cycle := now + 1 + skew;
         stats.replayed_cycles <- stats.replayed_cycles + g.Action.g_silent + 1;
         stats.replayed_retired <- stats.replayed_retired + g.Action.g_retired;
         stats.groups_replayed <- stats.groups_replayed + 1;
         Array.iteri
           (fun i v -> classes.(i) <- classes.(i) + v)
           g.Action.g_classes;
         group_done ~silent:g.Action.g_silent ~retired:g.Action.g_retired;
         cur := target
       | G_halt ->
         cycle := now + 1 + skew;
         stats.replayed_cycles <- stats.replayed_cycles + g.Action.g_silent + 1;
         stats.replayed_retired <- stats.replayed_retired + g.Action.g_retired;
         stats.groups_replayed <- stats.groups_replayed + 1;
         Array.iteri
           (fun i v -> classes.(i) <- classes.(i) + v)
           g.Action.g_classes;
         group_done ~silent:g.Action.g_silent ~retired:g.Action.g_retired;
         end_episode ();
         result := Some Replay_halted
       | G_diverge prefix ->
         (* The cycle counter stays at the group start: the detailed
            simulator re-simulates this group's cycles, consuming [prefix]
            instead of re-performing its side effects. *)
         end_episode ();
         result := Some (Diverged { config = cfg; prefix }))
  done;
  (match h_episode with
   | Some h when !cycle > cycle0 ->
     Fastsim_obs.Metrics.observe h (!cycle - cycle0)
   | Some _ | None -> ());
  (match trace with
   | None -> ()
   | Some tr ->
     Fastsim_obs.Trace.emit tr
       (Fastsim_obs.Event.span_end ~ts:!cycle ~cat:"engine" "replay"
          ~args:
            [ ( "groups",
                Fastsim_obs.Json.Int (stats.Stats.groups_replayed - groups0) );
              ( "actions",
                Fastsim_obs.Json.Int (stats.Stats.actions_replayed - actions0)
              ) ]));
  match !result with Some r -> r | None -> assert false
