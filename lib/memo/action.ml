type ctl = Uarch.Oracle.ctl_outcome

type item =
  | I_load of int
  | I_store
  | I_ctl of ctl
  | I_rollback of int

type node =
  | N_load of load_node
  | N_store of node
  | N_ctl of ctl_node
  | N_rollback of int * node
  | N_halt
  | N_goto of goto_node
  | N_stride of stride_node

and load_node = { mutable l_edges : (int * node) list }
and ctl_node = { mutable c_edges : (ctl * node) list }

and goto_node = { mutable target : config }

(* A compacted linear run of groups (docs/INTERNALS.md "Hot path"): the
   owner's own interaction items followed by the absorbed successor
   groups, each a straight line with a single recorded outcome per action.
   Only ever appears as a group's [g_first]; [s_term] is the run's final
   N_goto or N_halt. The absorbed configurations stay interned (their
   [cfg_group] is cleared) so divergence can re-expand the run exactly. *)
and stride_node = {
  s_ops : item array;       (* the owner group's items *)
  s_segs : stride_seg array;
  s_term : node;            (* N_goto or N_halt *)
  s_rule : rule;            (* canonical compressed form (Memo.Store) *)
}

and stride_seg = {
  sg_cfg : config;
  sg_silent : int;
  sg_retired : int;
  sg_classes : int array;
  sg_ops : item array;
}

(* Grammar-compressed chain rules (docs/INTERNALS.md "Memoization 2.0").
   A rule is an immutable, content-addressed spine over {e portable}
   segments ([pseg]: configuration keys, not configuration nodes, so a
   rule is meaningful in any p-action cache of the same program): a cons
   list whose tail sharing dedupes identical chain suffixes across
   strides, specs and shards, plus [R_rep] nodes capturing tandem
   repetition (loop bodies) with the body itself a rule — nesting gives
   the grammar. Rules are owned by a {!Store}: [ru_refs] counts parent
   rules plus external holders (strides, persist readers); construction
   and release live in store.ml. *)
and rule = {
  ru_id : int;        (* creation order within the owning store *)
  ru_digest : string; (* content address: digest over payload + children *)
  ru_node : rule_node;
  ru_nsegs : int;     (* segments after full expansion *)
  ru_bytes : int;     (* modeled bytes of this node alone (not children) *)
  mutable ru_refs : int;
}

and rule_node =
  | R_nil
  | R_seg of { rs_seg : pseg; rs_rest : rule }
  | R_rep of { rp_body : rule; rp_count : int; rp_rest : rule }

and pseg = {
  pg_key : Uarch.Snapshot.key;
  pg_silent : int;
  pg_retired : int;
  pg_classes : int array;
  pg_ops : item array;
}

and config = {
  cfg_key : Uarch.Snapshot.key;
  cfg_hash : int;  (* FNV-1a of cfg_key (Uarch.Snapshot.hash_key) *)
  cfg_bytes : int;
  mutable cfg_action_bytes : int;
  mutable cfg_group : group option;
  mutable cfg_touched : int;
  mutable cfg_hits : int;
  mutable cfg_dropped : bool;
  mutable cfg_old_gen : bool;
}

and group = {
  g_silent : int;
  g_retired : int;
  g_classes : int array;  (* per-FU-class retired counts for this group *)
  g_first : node;
}

type terminal = T_goto of config | T_halt

(* Dedicated equality for control outcomes: the replay engine compares the
   live outcome against recorded edges on every interaction cycle, and the
   polymorphic [=] it used to rely on is both slower (generic traversal)
   and fragile (it would silently change meaning if [ctl] ever grew a
   non-structural component such as a cached closure or abstract handle). *)
let ctl_equal (a : ctl) (b : ctl) =
  match (a, b) with
  | ( Uarch.Oracle.C_cond { taken = t1; mispredicted = m1 },
      Uarch.Oracle.C_cond { taken = t2; mispredicted = m2 } ) ->
    t1 = t2 && m1 = m2
  | ( Uarch.Oracle.C_indirect { target = g1; hit = h1 },
      Uarch.Oracle.C_indirect { target = g2; hit = h2 } ) ->
    g1 = g2 && h1 = h2
  | Uarch.Oracle.C_stalled, Uarch.Oracle.C_stalled -> true
  | ( ( Uarch.Oracle.C_cond _ | Uarch.Oracle.C_indirect _
      | Uarch.Oracle.C_stalled ),
      _ ) ->
    false

let item_equal (a : item) (b : item) =
  match (a, b) with
  | I_load l1, I_load l2 -> Int.equal l1 l2
  | I_store, I_store -> true
  | I_ctl c1, I_ctl c2 -> ctl_equal c1 c2
  | I_rollback i1, I_rollback i2 -> Int.equal i1 i2
  | (I_load _ | I_store | I_ctl _ | I_rollback _), _ -> false

(* Portable-segment equality, used by the store's tandem-repeat detector.
   [pg_classes] holds small non-negative counts, so structural [=] on the
   int array is exact; items go through {!item_equal} (never polymorphic
   equality over [ctl]). *)
let pseg_equal (a : pseg) (b : pseg) =
  String.equal a.pg_key b.pg_key
  && Int.equal a.pg_silent b.pg_silent
  && Int.equal a.pg_retired b.pg_retired
  && a.pg_classes = b.pg_classes
  && Array.length a.pg_ops = Array.length b.pg_ops
  &&
  let n = Array.length a.pg_ops in
  let rec go i =
    i >= n || (item_equal a.pg_ops.(i) b.pg_ops.(i) && go (i + 1))
  in
  go 0

(* Edge lookups on the hot replay path: latency edges compare with
   [Int.equal], control edges with {!ctl_equal} — never polymorphic
   equality. *)
let load_edge lat edges =
  let rec go = function
    | [] -> None
    | (l, n) :: rest -> if Int.equal l lat then Some n else go rest
  in
  go edges

let ctl_edge out edges =
  let rec go = function
    | [] -> None
    | (c, n) :: rest -> if ctl_equal c out then Some n else go rest
  in
  go edges

let node_bytes = function
  | N_load { l_edges } -> 16 + (8 * max 0 (List.length l_edges - 1))
  | N_ctl { c_edges } -> 16 + (8 * max 0 (List.length c_edges - 1))
  | N_store _ | N_rollback _ | N_halt | N_goto _ -> 8
  | N_stride { s_ops; s_segs; _ } ->
    (* 8-byte stride header + 2 bytes per packed op + an 8-byte header and
       2 bytes per op for each absorbed segment; [s_term] is accounted as
       its own node by every traversal. The compressed rate (2 bytes vs
       8–16 per plain node) is the modeled-bytes saving stride compaction
       claims; see docs/INTERNALS.md. *)
    8 + (2 * Array.length s_ops)
    + Array.fold_left
        (fun acc seg -> acc + 8 + (2 * Array.length seg.sg_ops))
        0 s_segs

let pp_ctl ppf (c : ctl) =
  match c with
  | Uarch.Oracle.C_cond { taken; mispredicted } ->
    Format.fprintf ppf "cond(%s%s)"
      (if taken then "T" else "NT")
      (if mispredicted then ",mispred" else "")
  | Uarch.Oracle.C_indirect { target; hit } ->
    Format.fprintf ppf "ind(0x%x%s)" target (if hit then "" else ",miss")
  | Uarch.Oracle.C_stalled -> Format.fprintf ppf "stalled"

let pp_item ppf = function
  | I_load lat -> Format.fprintf ppf "load->%d" lat
  | I_store -> Format.fprintf ppf "store"
  | I_ctl c -> Format.fprintf ppf "ctl:%a" pp_ctl c
  | I_rollback i -> Format.fprintf ppf "rollback[%d]" i

let pp_node_shallow ppf = function
  | N_load { l_edges } ->
    Format.fprintf ppf "Load{%d outcomes}" (List.length l_edges)
  | N_store _ -> Format.fprintf ppf "Store"
  | N_ctl { c_edges } ->
    Format.fprintf ppf "Ctl{%d outcomes}" (List.length c_edges)
  | N_rollback (i, _) -> Format.fprintf ppf "Rollback[%d]" i
  | N_halt -> Format.fprintf ppf "Halt"
  | N_goto { target = c } ->
    Format.fprintf ppf "Goto{%d bytes%s}" c.cfg_bytes
      (if c.cfg_group = None then ",empty" else "")
  | N_stride { s_ops; s_segs; _ } ->
    Format.fprintf ppf "Stride{%d ops, %d segs}" (Array.length s_ops)
      (Array.length s_segs)
