type ctl = Uarch.Oracle.ctl_outcome

type item =
  | I_load of int
  | I_store
  | I_ctl of ctl
  | I_rollback of int

type node =
  | N_load of load_node
  | N_store of node
  | N_ctl of ctl_node
  | N_rollback of int * node
  | N_halt
  | N_goto of goto_node

and load_node = { mutable l_edges : (int * node) list }
and ctl_node = { mutable c_edges : (ctl * node) list }

and goto_node = { mutable target : config }

and config = {
  cfg_key : Uarch.Snapshot.key;
  cfg_bytes : int;
  mutable cfg_action_bytes : int;
  mutable cfg_group : group option;
  mutable cfg_touched : int;
  mutable cfg_dropped : bool;
  mutable cfg_old_gen : bool;
}

and group = {
  g_silent : int;
  g_retired : int;
  g_classes : int array;  (* per-FU-class retired counts for this group *)
  g_first : node;
}

type terminal = T_goto of Uarch.Snapshot.key | T_halt

let node_bytes = function
  | N_load { l_edges } -> 16 + (8 * max 0 (List.length l_edges - 1))
  | N_ctl { c_edges } -> 16 + (8 * max 0 (List.length c_edges - 1))
  | N_store _ | N_rollback _ | N_halt | N_goto _ -> 8

let pp_ctl ppf (c : ctl) =
  match c with
  | Uarch.Oracle.C_cond { taken; mispredicted } ->
    Format.fprintf ppf "cond(%s%s)"
      (if taken then "T" else "NT")
      (if mispredicted then ",mispred" else "")
  | Uarch.Oracle.C_indirect { target; hit } ->
    Format.fprintf ppf "ind(0x%x%s)" target (if hit then "" else ",miss")
  | Uarch.Oracle.C_stalled -> Format.fprintf ppf "stalled"

let pp_item ppf = function
  | I_load lat -> Format.fprintf ppf "load->%d" lat
  | I_store -> Format.fprintf ppf "store"
  | I_ctl c -> Format.fprintf ppf "ctl:%a" pp_ctl c
  | I_rollback i -> Format.fprintf ppf "rollback[%d]" i

let pp_node_shallow ppf = function
  | N_load { l_edges } ->
    Format.fprintf ppf "Load{%d outcomes}" (List.length l_edges)
  | N_store _ -> Format.fprintf ppf "Store"
  | N_ctl { c_edges } ->
    Format.fprintf ppf "Ctl{%d outcomes}" (List.length c_edges)
  | N_rollback (i, _) -> Format.fprintf ppf "Rollback[%d]" i
  | N_halt -> Format.fprintf ppf "Halt"
  | N_goto { target = c } ->
    Format.fprintf ppf "Goto{%d bytes%s}" c.cfg_bytes
      (if c.cfg_group = None then ",empty" else "")
