(* The immutable, refcounted chain store (docs/INTERNALS.md
   "Memoization 2.0").

   Rules are hash-consed by content digest: [cons] and [rep] first look
   the would-be node up in the digest table and return the existing rule
   when one matches, so identical chain suffixes — within one stride,
   across strides, and (through a shared store) across the p-action
   caches of different specs — are stored once. [intern_segs] is the
   producer entry point: it rewrites a flat segment run as a rule spine,
   detecting tandem repetition (loop bodies, and nested repetition
   inside them) as [R_rep] nodes.

   Reference counting: [ru_refs] counts parent rules plus external
   holders (a stride's [s_rule], a persist reader mid-load). Releasing
   the last reference removes the rule from the table, returns its
   modeled bytes, and cascades into its children — iteratively, because
   a cons spine is as deep as the run is long. *)

type t = {
  tbl : (string, Action.rule) Hashtbl.t;  (* digest -> live rule *)
  budget : int option;
  max_rep_depth : int;
  mutable next_id : int;
  mutable bytes : int;
  mutable peak : int;
  mutable holders : int;       (* attached caches / registry entries *)
  mutable interned_runs : int; (* intern_segs calls *)
  mutable dedup_hits : int;    (* cons/rep that found an existing rule *)
  mutable rep_rules : int;     (* live R_rep rules *)
  mutable released : int;      (* rules freed at refcount zero *)
  nil : Action.rule;
}

type counters = {
  live_rules : int;
  live_rep_rules : int;
  modeled_bytes : int;
  peak_modeled_bytes : int;
  holders : int;
  interned_runs : int;
  dedup_hits : int;
  released_rules : int;
}

(* Modeled cost of one rule node, mirroring the stride accounting
   (8-byte segment header + 2 bytes per packed op); a rep node is two
   headers (count + body/rest references). Children are their own
   nodes. *)
let seg_bytes (p : Action.pseg) = 8 + (2 * Array.length p.Action.pg_ops)
let rep_node_bytes = 16

let default_max_rep_depth = 8

let create ?budget_bytes ?(max_rep_depth = default_max_rep_depth) () =
  let nil =
    { Action.ru_id = 0;
      ru_digest = Digest.string "fastsim.rule.nil";
      ru_node = Action.R_nil;
      ru_nsegs = 0;
      ru_bytes = 0;
      (* pinned: retain/release are no-ops on nil *)
      ru_refs = 1 }
  in
  { tbl = Hashtbl.create 256;
    budget = budget_bytes;
    max_rep_depth = max 0 max_rep_depth;
    next_id = 1;
    bytes = 0;
    peak = 0;
    holders = 0;
    interned_runs = 0;
    dedup_hits = 0;
    rep_rules = 0;
    released = 0;
    nil }

let nil (t : t) = t.nil

let bytes (t : t) = t.bytes
let live_rules (t : t) = Hashtbl.length t.tbl

let over_budget (t : t) =
  match t.budget with None -> false | Some b -> t.bytes > b

let budget_bytes (t : t) = t.budget

let addref (t : t) = t.holders <- t.holders + 1
let decref (t : t) = t.holders <- max 0 (t.holders - 1)
let holders (t : t) = t.holders

let counters (t : t) =
  { live_rules = Hashtbl.length t.tbl;
    live_rep_rules = t.rep_rules;
    modeled_bytes = t.bytes;
    peak_modeled_bytes = t.peak;
    holders = t.holders;
    interned_runs = t.interned_runs;
    dedup_hits = t.dedup_hits;
    released_rules = t.released }

(* ---- content addressing ---------------------------------------------- *)

let digest_item buf (it : Action.item) =
  match it with
  | Action.I_load lat ->
    Buffer.add_char buf 'l';
    Buffer.add_string buf (string_of_int lat)
  | Action.I_store -> Buffer.add_char buf 's'
  | Action.I_ctl (Uarch.Oracle.C_cond { taken; mispredicted }) ->
    Buffer.add_char buf 'c';
    Buffer.add_char buf (if taken then 'T' else 'N');
    Buffer.add_char buf (if mispredicted then 'M' else '-')
  | Action.I_ctl (Uarch.Oracle.C_indirect { target; hit }) ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int target);
    Buffer.add_char buf (if hit then 'H' else '-')
  | Action.I_ctl Uarch.Oracle.C_stalled -> Buffer.add_char buf 'x'
  | Action.I_rollback i ->
    Buffer.add_char buf 'r';
    Buffer.add_string buf (string_of_int i)

let digest_pseg (p : Action.pseg) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int (String.length p.Action.pg_key));
  Buffer.add_char buf ':';
  Buffer.add_string buf p.Action.pg_key;
  Buffer.add_string buf (string_of_int p.Action.pg_silent);
  Buffer.add_char buf ',';
  Buffer.add_string buf (string_of_int p.Action.pg_retired);
  Buffer.add_char buf ',';
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf ';')
    p.Action.pg_classes;
  Array.iter (digest_item buf) p.Action.pg_ops;
  Digest.string (Buffer.contents buf)

let digest_seg ~seg_digest ~(rest : Action.rule) =
  Digest.string ("S" ^ seg_digest ^ rest.Action.ru_digest)

let digest_rep ~(body : Action.rule) ~count ~(rest : Action.rule) =
  Digest.string
    (Printf.sprintf "P%d:%s%s" count body.Action.ru_digest
       rest.Action.ru_digest)

(* ---- construction ---------------------------------------------------- *)

let retain (r : Action.rule) =
  match r.Action.ru_node with
  | Action.R_nil -> ()
  | _ -> r.Action.ru_refs <- r.Action.ru_refs + 1

let release (t : t) (r : Action.rule) =
  let stack = ref [ r ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | r :: rest -> (
      stack := rest;
      match r.Action.ru_node with
      | Action.R_nil -> ()
      | node ->
        if r.Action.ru_refs <= 0 then
          invalid_arg "Memo.Store.release: refcount already zero";
        r.Action.ru_refs <- r.Action.ru_refs - 1;
        if r.Action.ru_refs = 0 then begin
          Hashtbl.remove t.tbl r.Action.ru_digest;
          t.bytes <- t.bytes - r.Action.ru_bytes;
          t.released <- t.released + 1;
          match node with
          | Action.R_seg { rs_rest; _ } -> stack := rs_rest :: !stack
          | Action.R_rep { rp_body; rp_rest; _ } ->
            t.rep_rules <- t.rep_rules - 1;
            stack := rp_body :: rp_rest :: !stack
          | Action.R_nil -> ()
        end)
  done

let register (t : t) ~digest ~node ~nsegs ~node_bytes =
  let r =
    { Action.ru_id = t.next_id;
      ru_digest = digest;
      ru_node = node;
      ru_nsegs = nsegs;
      ru_bytes = node_bytes;
      ru_refs = 0 }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.add t.tbl digest r;
  t.bytes <- t.bytes + node_bytes;
  if t.bytes > t.peak then t.peak <- t.bytes;
  r

(* A found rule is returned as-is: its children were retained when it was
   first built, so the caller only owns whatever reference it takes on
   the returned rule itself. *)
let cons (t : t) (seg : Action.pseg) (rest : Action.rule) =
  let digest = digest_seg ~seg_digest:(digest_pseg seg) ~rest in
  match Hashtbl.find_opt t.tbl digest with
  | Some r ->
    t.dedup_hits <- t.dedup_hits + 1;
    r
  | None ->
    retain rest;
    register t ~digest
      ~node:(Action.R_seg { rs_seg = seg; rs_rest = rest })
      ~nsegs:(1 + rest.Action.ru_nsegs)
      ~node_bytes:(seg_bytes seg)

let rep (t : t) ~(body : Action.rule) ~count (rest : Action.rule) =
  if count < 2 then invalid_arg "Memo.Store.rep: count must be >= 2";
  if body.Action.ru_nsegs = 0 then
    invalid_arg "Memo.Store.rep: empty body";
  let digest = digest_rep ~body ~count ~rest in
  match Hashtbl.find_opt t.tbl digest with
  | Some r ->
    t.dedup_hits <- t.dedup_hits + 1;
    r
  | None ->
    retain body;
    retain rest;
    t.rep_rules <- t.rep_rules + 1;
    register t ~digest
      ~node:(Action.R_rep { rp_body = body; rp_count = count; rp_rest = rest })
      ~nsegs:((body.Action.ru_nsegs * count) + rest.Action.ru_nsegs)
      ~node_bytes:rep_node_bytes

(* ---- grammar construction (tandem-repeat detection) ------------------ *)

(* Smallest period p (and its maximal count k >= 2) such that
   [segs.(lo .. lo + p*k - 1)] is k back-to-back copies of the p-segment
   block at [lo], and rewriting as a rep node saves modeled bytes:
   the rep header must cost less than the k-1 repeat copies it elides. *)
let find_repeat (segs : Action.pseg array) lo hi =
  let n = hi - lo in
  let best = ref None in
  let p = ref 1 in
  while !best = None && !p <= n / 2 do
    let period = !p in
    let k = ref 1 in
    let ok = ref true in
    while !ok && (!k + 1) * period <= n do
      let base = lo + (!k * period) in
      let matches = ref true in
      let i = ref 0 in
      while !matches && !i < period do
        if not (Action.pseg_equal segs.(lo + !i) segs.(base + !i)) then
          matches := false;
        incr i
      done;
      if !matches then incr k else ok := false
    done;
    if !k >= 2 then begin
      let body_flat = ref 0 in
      for i = lo to lo + period - 1 do
        body_flat := !body_flat + seg_bytes segs.(i)
      done;
      (* worthwhile: elided copies outweigh the rep header *)
      if (!k - 1) * !body_flat > rep_node_bytes then
        best := Some (period, !k)
    end;
    incr p
  done;
  !best

(* Builds the rule for [segs.(lo .. hi-1)], scanning left to right and
   folding any worthwhile tandem repeat into a rep whose body is built
   recursively (bounded by [max_rep_depth]), so nested loops become
   nested reps. Recursion depth is one frame per segment at worst; runs
   are bounded (strides cap at 64 segments, persist validates counts),
   so no worklist is needed here. *)
let rec build t ~depth (segs : Action.pseg array) lo hi =
  if lo >= hi then t.nil
  else
    match
      if depth < t.max_rep_depth then find_repeat segs lo hi else None
    with
    | Some (period, count) ->
      let body = build t ~depth:(depth + 1) segs lo (lo + period) in
      let rest = build t ~depth segs (lo + (period * count)) hi in
      rep t ~body ~count rest
    | None -> cons t segs.(lo) (build t ~depth segs (lo + 1) hi)

let intern_segs (t : t) (segs : Action.pseg array) =
  t.interned_runs <- t.interned_runs + 1;
  let r = build t ~depth:0 segs 0 (Array.length segs) in
  retain r;
  r

(* ---- expansion ------------------------------------------------------- *)

let expand (r : Action.rule) =
  let out = ref [] in
  let count = ref 0 in
  let stack = ref [ r ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | r :: rest -> (
      stack := rest;
      match r.Action.ru_node with
      | Action.R_nil -> ()
      | Action.R_seg { rs_seg; rs_rest } ->
        out := rs_seg :: !out;
        incr count;
        stack := rs_rest :: !stack
      | Action.R_rep { rp_body; rp_count; rp_rest } ->
        let tail = ref (rp_rest :: !stack) in
        for _ = 1 to rp_count do
          tail := rp_body :: !tail
        done;
        stack := !tail)
  done;
  let arr = Array.make !count (Obj.magic 0 : Action.pseg) in
  let i = ref (!count - 1) in
  List.iter
    (fun s ->
      arr.(!i) <- s;
      decr i)
    !out;
  arr

let prune_dead (t : t) =
  (* Orphans can only come from an abandoned load (a crafted stream whose
     rule table holds entries no stride references): collect refs-0 roots
     and release them through the normal cascade. *)
  let dead = ref [] in
  Hashtbl.iter
    (fun _ r -> if r.Action.ru_refs = 0 then dead := r :: !dead)
    t.tbl;
  List.iter
    (fun (r : Action.rule) ->
      (* re-check: an earlier cascade may have freed it already *)
      if r.Action.ru_refs = 0 && Hashtbl.mem t.tbl r.Action.ru_digest then begin
        (* give it the one reference [release] consumes *)
        retain r;
        release t r
      end)
    !dead
