type t = {
  mutable detailed_retired : int;
  mutable replayed_retired : int;
  mutable detailed_cycles : int;
  mutable replayed_cycles : int;
  mutable actions_replayed : int;
  mutable groups_replayed : int;
  mutable chain_current : int;
  mutable chain_max : int;
  mutable episodes : int;
  mutable detailed_entries : int;
}

let create () =
  { detailed_retired = 0;
    replayed_retired = 0;
    detailed_cycles = 0;
    replayed_cycles = 0;
    actions_replayed = 0;
    groups_replayed = 0;
    chain_current = 0;
    chain_max = 0;
    episodes = 0;
    detailed_entries = 0 }

let note_action t =
  t.actions_replayed <- t.actions_replayed + 1;
  t.chain_current <- t.chain_current + 1

(* Guarded against double-ending: a replay run can reach several exit
   paths (divergence, halt, cycle limit) whose callers may each end the
   episode; only the first call after any [note_action] counts. An episode
   with no actions (immediate divergence at a group's first interaction)
   is likewise not counted — otherwise avg_chain would be diluted by
   zero-length "episodes". *)
let end_episode t =
  if t.chain_current > 0 then begin
    t.episodes <- t.episodes + 1;
    if t.chain_current > t.chain_max then t.chain_max <- t.chain_current;
    t.chain_current <- 0
  end

let avg_chain t =
  if t.episodes = 0 then 0.0
  else float_of_int t.actions_replayed /. float_of_int t.episodes

let total_retired t = t.detailed_retired + t.replayed_retired
let total_cycles t = t.detailed_cycles + t.replayed_cycles

let detailed_fraction t =
  let total = total_retired t in
  if total = 0 then 0.0
  else float_of_int t.detailed_retired /. float_of_int total
