(** Immutable, refcounted chain store (docs/INTERNALS.md
    "Memoization 2.0").

    A store owns grammar-compressed chain rules ({!Action.rule}):
    content-addressed cons spines over portable segments, hash-consed so
    identical chain suffixes — within one stride, across strides, and
    across the p-action caches of every spec sharing the store — are
    represented once, with [R_rep] nodes capturing tandem repetition
    (loop bodies, nested). Rules are immutable; the store tracks their
    reference counts ([ru_refs] = parent rules + external holders such
    as a stride's [s_rule]) and frees a rule's modeled bytes when the
    last reference goes away.

    One store instance is shareable across specs and shards keyed by
    [program_digest] only (see {!Fastsim_serve.Registry.chain_store}):
    rules reference configurations by snapshot {e key}, never by node,
    so they are meaningful in any p-action cache of the same program. *)

type t

type counters = {
  live_rules : int;          (** rules currently in the table. *)
  live_rep_rules : int;      (** of which [R_rep]. *)
  modeled_bytes : int;       (** summed [ru_bytes] of live rules. *)
  peak_modeled_bytes : int;
  holders : int;             (** attached caches / registry entries. *)
  interned_runs : int;       (** {!intern_segs} calls. *)
  dedup_hits : int;          (** constructions answered by hash-consing. *)
  released_rules : int;      (** rules freed at refcount zero. *)
}

val create : ?budget_bytes:int -> ?max_rep_depth:int -> unit -> t
(** [budget_bytes] is advisory: the store never refuses an intern (rules
    may arrive from a persist stream that must load whole), but
    {!over_budget} flips and producers — {!Pcache.compact} — stop
    creating new rules. [max_rep_depth] bounds [R_rep] nesting
    (default 8); 0 disables repeat detection entirely. *)

val nil : t -> Action.rule
(** The empty rule. Pinned: retain/release on it are no-ops. *)

val intern_segs : t -> Action.pseg array -> Action.rule
(** Rewrites a flat segment run as a (possibly nested) rule, folding
    tandem repeats that save modeled bytes into [R_rep] nodes and
    hash-consing every node. The returned rule carries one reference
    owned by the caller; release it with {!release}. *)

val cons : t -> Action.pseg -> Action.rule -> Action.rule
(** Hash-consed single-segment extension. The returned rule is {e not}
    retained for the caller (use {!retain}); a freshly created node
    retains its children itself. *)

val rep : t -> body:Action.rule -> count:int -> Action.rule -> Action.rule
(** Hash-consed repetition node ([count] ≥ 2, non-empty body). Same
    ownership convention as {!cons}. *)

val retain : Action.rule -> unit

val release : t -> Action.rule -> unit
(** Drops one reference; at zero the rule leaves the table, its modeled
    bytes are returned, and the release cascades into its children.
    Raises [Invalid_argument] on a rule whose count is already zero. *)

val expand : Action.rule -> Action.pseg array
(** The exact inverse of {!intern_segs}: the flat segment run, worklist
    iteration (no stack proportional to chain length). *)

val prune_dead : t -> unit
(** Releases any refs-0 rules left in the table — only possible after an
    abandoned persist load whose rule table held entries no stride ended
    up referencing. *)

val bytes : t -> int
(** Modeled bytes of all live rules. *)

val live_rules : t -> int
val over_budget : t -> bool
val budget_bytes : t -> int option

val addref : t -> unit
(** Registers an external holder (a p-action cache attaching, a registry
    entry binding); {!decref} reverses. Purely observational — the store
    is never torn down by holder count — but surfaced in serve stats to
    prove cross-spec sharing. *)

val decref : t -> unit
val holders : t -> int

val counters : t -> counters
