(** The warm p-action-cache registry.

    The daemon's reason to exist: cross-request reuse of memoization
    state. Entries are keyed by [(program digest, serialisable spec)] —
    the exact pair under which a p-action cache's recorded timings are
    valid — and hold the cache in one or both of two forms: {e hot} (a
    live {!Memo.Pcache.t} in the server process, ready to hand to an
    in-process run or to share with a forked worker by copy-on-write)
    and {e spilled} (a {!Memo.Persist} file in the registry directory).

    A byte budget bounds the {e hot} footprint, measured in the caches'
    own modeled bytes. When the budget overflows, least-recently-used
    entries are spilled: the hot cache is dropped (saved to its file
    first if no up-to-date file exists), and a later {!acquire} reloads
    it — so eviction costs a reload, never recorded work.

    Orthogonally to entries, the registry keeps one {e shared chain
    store} ({!Memo.Store.t}) per [program_digest] — keyed by digest
    {e only}, not by spec. Every hot cache created or reloaded through
    the registry interns its grammar-compressed stride rules there, so
    entries whose specs differ only in non-timing-relevant fields share
    one copy of each chain (docs/SERVE.md "Shared chain store"). Store
    footprint is accounted once per digest from the store map —
    {!store_bytes} — never by summing per-entry shares; eviction returns
    an entry's rule references to the store (refcounts, with aliasing of
    one hot cache under several keys handled) rather than freeing shared
    rules. *)

type t

val create :
  dir:string ->
  ?budget_bytes:int ->
  ?program_of:(string -> Isa.Program.t option) ->
  ?metrics:Fastsim_obs.Metrics.t ->
  ?log:Fastsim_obs.Log.t ->
  unit ->
  t
(** [dir] holds the registry's persist files (created if missing).
    [budget_bytes] bounds the summed modeled bytes of hot entries;
    omitted = unbounded. [program_of] resolves a hex digest back to its
    program so an evicted hot cache can be spilled ({!Memo.Persist}
    saves are program-tied); without it (default), eviction of a
    file-less hot entry discards the cache instead of spilling.

    [metrics] mirrors the registry's state into a shared instrument
    registry: counters [registry.{hits,misses,reloads,spills,evictions}]
    and per-digest [registry.digest.<12-hex>.{hits,misses}], gauges
    [registry.{entries,hot_entries,hot_bytes,spilled_bytes,stores,
    store_refs,store_bytes}] and per-digest
    [registry.digest.<12-hex>.spilled_bytes] (gauges are refreshed after
    every mutation; the per-digest spill gauge is recounted from live
    entries, never incremented, so spill–reload–spill cycles cannot
    double-count). [log] (default {!Fastsim_obs.Log.null})
    receives [registry.{spill,evict,reload,adopt,corrupt_spill}]
    events. Both are strictly passive. *)

val spec_key : Fastsim.Sim.Spec.t -> string
(** Canonical registry key for a spec: the serialised form of its
    configuration part. Runtime-only fields do not participate. *)

val chain_store : t -> digest:string -> Memo.Store.t
(** The shared chain store for a program digest (created on first use).
    Pass it to {!Memo.Pcache.create} (or [Sim.Spec.with_store]) when
    starting a cold run whose cache will be committed here, so its
    compressed chains dedupe against every other spec of the program. *)

val store_count : t -> int
(** Number of per-digest shared stores. *)

val store_refs : t -> int
(** Total hot entries bound to shared stores; a single digest with
    refcount > 1 is the cross-spec-sharing proof the serve stats
    surface. *)

val store_refs_for : t -> digest:string -> int

val store_bytes : t -> int
(** Modeled bytes of all shared stores, counted once per digest from
    the store map. *)

val store_rules : t -> int
(** Live rules across all shared stores. *)

val acquire :
  t ->
  digest:string ->
  spec_key:string ->
  policy:Memo.Pcache.policy ->
  program:Isa.Program.t ->
  Memo.Pcache.t option
(** Warm cache for this (program, spec), or [None] on a miss. A spilled
    entry is reloaded from its file (counted in [reloads]); a reload
    failure (corrupt/missing file) drops the entry and reports a miss.
    The returned cache is the registry's hot copy: an in-process caller
    may mutate it (and should {!commit_mem} afterwards); a forking
    caller shares it with the child for free via copy-on-write. *)

val commit_mem :
  t -> digest:string -> spec_key:string -> Memo.Pcache.t -> unit
(** After an in-process run: (re)install the live cache as the entry's
    hot form, refresh its LRU position and byte accounting, and drop any
    stale spill file. *)

val adopt :
  t -> digest:string -> spec_key:string -> src:string -> bytes:int -> unit
(** After a forked run: adopt the persist file the worker wrote at
    [src] (renamed into the registry dir; across filesystems it is
    copied via a temp name and renamed only once complete, so a failed
    copy never installs a truncated file). [bytes] is the cache's
    modeled size as reported by the worker. The entry's hot form, if
    any, is dropped as stale — the next {!acquire} reloads the newer
    file. *)

val stats_json : t -> Fastsim_obs.Json.t
(** [{entries, hot_entries, hot_bytes, spilled_bytes, hits, misses,
    reloads, spills, evictions, stores, store_refs, store_rules,
    store_bytes}] — surfaced in the daemon's [stats] and [telemetry]
    frames. *)

val entry_count : t -> int
val hot_count : t -> int
val hot_bytes : t -> int
val spilled_bytes : t -> int
(** Summed on-disk size of live spill files. *)

val hits : t -> int
val misses : t -> int
val spills : t -> int
val reloads : t -> int
val evictions : t -> int
