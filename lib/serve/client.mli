(** Blocking client for the serve protocol (docs/SERVE.md).

    Thin by design: {!connect} performs the hello exchange, {!send} /
    {!recv} move single frames, and the convenience wrappers implement
    the common request/response conversations. One connection is one
    ordered frame stream; this client does not interleave concurrent
    requests (the protocol allows it — tag requests with distinct ids
    and match responses by id). *)

type t

val connect :
  ?retries:int -> ?retry_delay_s:float -> Proto.address -> (t, string) result
(** Connects and exchanges [hello]. [retries] (default 0) re-attempts
    the connection — for clients racing a daemon that is still binding
    its socket — sleeping [retry_delay_s] (default 0.1) between tries. *)

val close : t -> unit

val send : t -> Proto.request -> (unit, string) result
val recv : t -> (Proto.response, string) result
(** [recv] blocks for the next frame; a closed connection or malformed
    frame is [Error]. *)

val run :
  t ->
  id:string ->
  engine:Fastsim.Sim.engine ->
  spec:Fastsim.Sim.Spec.t ->
  ?fault:string ->
  Proto.program_ref ->
  (Proto.response, string) result
(** Sends a [run] request and reads frames until its terminal response:
    the [result] frame, or an [error] frame carrying this request's id
    (or no id). Intervening frames for other ids are an error (this
    client never multiplexes). The [accepted] frame is consumed
    silently. *)

val stats : t -> id:string -> (Fastsim_obs.Json.t, string) result

val telemetry :
  t -> id:string -> ?include_trace:bool -> unit ->
  (Fastsim_obs.Json.t, string) result
(** One telemetry snapshot (the [telemetry] member of the response
    frame): [{at, server, registry, metrics, trace?}]. [include_trace]
    (default false) asks for the buffered request spans as a Chrome
    trace object — large; leave it off for periodic scrapes. *)

val ping : t -> id:string -> (unit, string) result
val shutdown : t -> id:string -> (unit, string) result
(** Requests a graceful drain; returns once the server acknowledges. *)
