(* Offset-windowed output queue: encoded frames are queued as chunks and
   written head-first, each chunk tracking how much of it has already
   reached the socket. Replaces the previous per-connection [Buffer.t],
   whose pump did [Buffer.to_bytes] — an O(total) copy of everything
   still buffered — on every partial write, and which could grow without
   bound under a consumer slower than the simulator. *)

type chunk = { data : Bytes.t; mutable off : int }

type t = {
  q : chunk Queue.t;
  mutable pending : int;  (* unsent bytes across all chunks *)
}

let create () = { q = Queue.create (); pending = 0 }

let pending t = t.pending
let is_empty t = t.pending = 0

let push t data =
  if Bytes.length data > 0 then begin
    Queue.add { data; off = 0 } t.q;
    t.pending <- t.pending + Bytes.length data
  end

let clear t =
  Queue.clear t.q;
  t.pending <- 0

(* Write as much as the socket will take right now. [`Closed] means the
   peer is gone (any fatal write error); EAGAIN/EINTR just end the
   round. Each [Unix.write] sends only the head chunk's remaining
   window — no re-copy of queued data, ever. *)
let pump t fd =
  let rec go () =
    match Queue.peek_opt t.q with
    | None -> `Ok
    | Some c -> (
      let len = Bytes.length c.data - c.off in
      match Unix.write fd c.data c.off len with
      | n ->
        c.off <- c.off + n;
        t.pending <- t.pending - n;
        if c.off = Bytes.length c.data then begin
          ignore (Queue.pop t.q : chunk);
          go ()
        end
        else `Ok (* partial write: the socket is full *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Ok
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> `Closed)
  in
  go ()
