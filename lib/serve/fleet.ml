module J = Fastsim_obs.Json
module Log = Fastsim_obs.Log
module Metrics = Fastsim_obs.Metrics
module Span = Fastsim_obs.Span
module Spec = Fastsim.Sim.Spec
module Pool = Fastsim_exec.Pool
module Worker = Fastsim_exec.Pool.Worker
module Shim = Fastsim_exec.Domain_shim

type transport = [ `Process | `Domain ]

let transport_to_string = function
  | `Process -> "process"
  | `Domain -> "domain"

type req = {
  q_rid : string;
  q_engine : Fastsim.Sim.engine;
  q_spec : Spec.t;
  q_prog : Isa.Program.t;
  q_digest : string;
  q_spec_key : string;
  q_fault : string option;
}

type reg_stats = {
  rs_entries : int;
  rs_hot_entries : int;
  rs_hot_bytes : int;
  rs_spilled_bytes : int;
  rs_hits : int;
  rs_misses : int;
  rs_reloads : int;
  rs_spills : int;
  rs_evictions : int;
  rs_stores : int;
  rs_store_refs : int;
  rs_store_bytes : int;
}

let zero_stats =
  { rs_entries = 0; rs_hot_entries = 0; rs_hot_bytes = 0;
    rs_spilled_bytes = 0; rs_hits = 0; rs_misses = 0; rs_reloads = 0;
    rs_spills = 0; rs_evictions = 0; rs_stores = 0; rs_store_refs = 0;
    rs_store_bytes = 0 }

type resp = {
  r_result : Fastsim.Sim.result;
  r_wall_s : float;
  r_warm : bool;
  r_spans : Span.span list;
  r_reg : reg_stats;
}

(* ---------------------------------------------------------------- *)
(* The shard body — runs inside the worker (forked process or spawned
   domain). It owns this shard's registry, so the warm pcache never
   crosses a process boundary on the hot path: acquire and commit_mem
   are pointer operations. Persistence happens only when the shard's
   own LRU budget spills an entry. *)

let apply_fault = function
  | None -> ()
  | Some "crash" -> failwith "injected fault: crash"
  | Some "exit" -> Unix._exit 9
  | Some "hang" -> Unix.sleepf 3600.
  | Some f -> failwith ("unknown injected fault: " ^ f)

let reg_snapshot reg =
  { rs_entries = Registry.entry_count reg;
    rs_hot_entries = Registry.hot_count reg;
    rs_hot_bytes = Registry.hot_bytes reg;
    rs_spilled_bytes = Registry.spilled_bytes reg;
    rs_hits = Registry.hits reg;
    rs_misses = Registry.misses reg;
    rs_reloads = Registry.reloads reg;
    rs_spills = Registry.spills reg;
    rs_evictions = Registry.evictions reg;
    rs_stores = Registry.store_count reg;
    rs_store_refs = Registry.store_refs reg;
    rs_store_bytes = Registry.store_bytes reg }

let shard_handler ~dir ~budget_bytes () =
  (match Unix.mkdir dir 0o700 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let programs : (string, Isa.Program.t) Hashtbl.t = Hashtbl.create 16 in
  let registry =
    Registry.create ~dir ?budget_bytes
      ~program_of:(fun d -> Hashtbl.find_opt programs d)
      ()
  in
  fun (rq : req) ->
    apply_fault rq.q_fault;
    Hashtbl.replace programs rq.q_digest rq.q_prog;
    let sc = Span.create () in
    let engine_name = Spec.engine_to_string rq.q_engine in
    let run spec =
      let t0 = Unix.gettimeofday () in
      let result =
        Span.with_span sc ~name:"engine.run" ~cat:"worker"
          ~args:[ ("engine", J.Str engine_name) ]
          (fun () -> Fastsim.Sim.run ~engine:rq.q_engine spec rq.q_prog)
      in
      (result, Unix.gettimeofday () -. t0)
    in
    match rq.q_engine with
    | `Fast ->
      let warm =
        Registry.acquire registry ~digest:rq.q_digest ~spec_key:rq.q_spec_key
          ~policy:rq.q_spec.Spec.policy ~program:rq.q_prog
      in
      let pc =
        match warm with
        | Some pc -> pc
        | None ->
          Memo.Pcache.create ~policy:rq.q_spec.Spec.policy
            ~store:(Registry.chain_store registry ~digest:rq.q_digest) ()
      in
      let result, wall = run (Spec.with_pcache pc rq.q_spec) in
      Span.with_span sc ~name:"pcache.commit" ~cat:"worker" (fun () ->
          Registry.commit_mem registry ~digest:rq.q_digest
            ~spec_key:rq.q_spec_key pc);
      { r_result = result; r_wall_s = wall; r_warm = warm <> None;
        r_spans = Span.spans sc; r_reg = reg_snapshot registry }
    | `Slow | `Baseline ->
      let result, wall = run rq.q_spec in
      { r_result = result; r_wall_s = wall; r_warm = false;
        r_spans = Span.spans sc; r_reg = reg_snapshot registry }

(* ---------------------------------------------------------------- *)
(* Parent side. *)

(* Domain slots move through: Idle -> Busy -> Idle, with a detour for
   cancellation — a domain cannot be killed, so Cancelled reports
   Timed_out to the caller immediately (becoming Abandoned) and the
   slot stays occupied until the domain's late result arrives and is
   discarded. *)
type dom_state = D_idle | D_busy | D_cancelled | D_abandoned

type dom_slot = {
  d_inbox : req option Shim.Mailbox.t;  (* None = shut down *)
  d_outbox : (resp, string) result Shim.Mailbox.t;
  d_handle : Shim.handle;
  mutable d_state : dom_state;
  mutable d_submitted : float;
}

type slot_impl = Proc of (req, resp) Worker.t | Dom of dom_slot

type slot = {
  s_index : int;
  s_dir : string;
  mutable s_impl : slot_impl;
  mutable s_last : reg_stats;  (* shard registry at its last reply *)
  mutable s_requests : int;
  mutable s_respawns : int;
}

type t = {
  f_budget : int option;  (* per shard *)
  f_transport : transport;
  f_log : Log.t;
  f_metrics : Metrics.t option;
  f_slots : slot array;
}

let dom_body ~dir ~budget_bytes inbox outbox () =
  let handle = shard_handler ~dir ~budget_bytes () in
  let rec loop () =
    match Shim.Mailbox.take inbox with
    | None -> ()
    | Some rq ->
      let r =
        match handle rq with
        | v -> Ok v
        | exception e -> Error (Printexc.to_string e)
      in
      Shim.Mailbox.put outbox r;
      loop ()
  in
  loop ()

let spawn_impl ~transport ~budget_bytes ~dir index =
  match transport with
  | `Process ->
    Proc
      (Worker.spawn
         ~tag:(Printf.sprintf "shard-%d" index)
         (shard_handler ~dir ~budget_bytes))
  | `Domain ->
    let inbox = Shim.Mailbox.create () in
    let outbox = Shim.Mailbox.create () in
    let handle = Shim.spawn (dom_body ~dir ~budget_bytes inbox outbox) in
    Dom
      { d_inbox = inbox; d_outbox = outbox; d_handle = handle;
        d_state = D_idle; d_submitted = 0. }

let create ~dir ~jobs ?budget_bytes ?(transport = `Process) ?metrics
    ?(log = Log.null) () =
  let jobs = max 1 jobs in
  if transport = `Domain && not Shim.available then
    invalid_arg "Fleet.create: domain transport needs a multicore runtime";
  (match Unix.mkdir dir 0o700 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* The hot-footprint budget is split evenly across shards: each worker
     enforces its own slice, so the fleet-wide footprint stays bounded
     without cross-process coordination. *)
  let budget_bytes = Option.map (fun b -> max 1 (b / jobs)) budget_bytes in
  let slots =
    Array.init jobs (fun i ->
        let sdir = Filename.concat dir (Printf.sprintf "shard-%d" i) in
        { s_index = i; s_dir = sdir;
          s_impl = spawn_impl ~transport ~budget_bytes ~dir:sdir i;
          s_last = zero_stats; s_requests = 0; s_respawns = 0 })
  in
  let t =
    { f_budget = budget_bytes; f_transport = transport; f_log = log;
      f_metrics = metrics; f_slots = slots }
  in
  Array.iter
    (fun s ->
      Log.debug log ~event:"fleet.spawn"
        [ ("shard", J.Int s.s_index);
          ("transport", J.Str (transport_to_string transport));
          ( "pid",
            match s.s_impl with
            | Proc w -> J.Int (Worker.pid w)
            | Dom _ -> J.Null ) ])
    slots;
  t

let jobs t = Array.length t.f_slots
let transport t = t.f_transport

let shard_of t ~digest = Hashtbl.hash digest mod Array.length t.f_slots

(* A respawned worker starts with a fresh, cold registry: the shard's
   hot caches died with the process, and its spill files — though still
   on disk — are keyed by a (digest, spec key) mapping only the dead
   worker knew. Subsequent requests simply re-record. *)
let respawn t slot =
  slot.s_respawns <- slot.s_respawns + 1;
  slot.s_last <- zero_stats;
  slot.s_impl <-
    spawn_impl ~transport:t.f_transport ~budget_bytes:t.f_budget
      ~dir:slot.s_dir slot.s_index;
  Log.warn t.f_log ~event:"fleet.respawn"
    [ ("shard", J.Int slot.s_index);
      ( "pid",
        match slot.s_impl with
        | Proc w -> J.Int (Worker.pid w)
        | Dom _ -> J.Null ) ]

let idle t ~shard =
  let slot = t.f_slots.(shard) in
  match slot.s_impl with
  | Proc w ->
    if Worker.busy w then false
    else begin
      (* Notice (and absorb) an idle worker's death before claiming the
         slot. *)
      (match Worker.poll w with Some _ | None -> ());
      if not (Worker.alive w) then respawn t slot;
      true
    end
  | Dom d -> d.d_state = D_idle

let submit t ~shard rq =
  let slot = t.f_slots.(shard) in
  slot.s_requests <- slot.s_requests + 1;
  match slot.s_impl with
  | Proc w -> Worker.submit w rq
  | Dom d ->
    if d.d_state <> D_idle then invalid_arg "Fleet.submit: shard busy";
    d.d_state <- D_busy;
    d.d_submitted <- Unix.gettimeofday ();
    Shim.Mailbox.put d.d_inbox (Some rq)

(* Fold a completed request's shard-registry snapshot into the parent's
   shared metrics: counter deltas accumulate under the same
   [registry.*] names the parent-side registry would use, gauges are
   refreshed as sums over every shard's latest snapshot — so scrapers
   see one coherent fleet-wide registry. *)
let note_reply t slot (r : resp) =
  let last = slot.s_last in
  slot.s_last <- r.r_reg;
  match t.f_metrics with
  | None -> ()
  | Some m ->
    let add name now prev =
      if now > prev then Metrics.add (Metrics.counter m name) (now - prev)
    in
    add "registry.hits" r.r_reg.rs_hits last.rs_hits;
    add "registry.misses" r.r_reg.rs_misses last.rs_misses;
    add "registry.reloads" r.r_reg.rs_reloads last.rs_reloads;
    add "registry.spills" r.r_reg.rs_spills last.rs_spills;
    add "registry.evictions" r.r_reg.rs_evictions last.rs_evictions;
    let sum f =
      Array.fold_left (fun acc s -> acc + f s.s_last) 0 t.f_slots
    in
    let set name v = Metrics.set (Metrics.gauge m name) (float_of_int v) in
    set "registry.entries" (sum (fun s -> s.rs_entries));
    set "registry.hot_entries" (sum (fun s -> s.rs_hot_entries));
    set "registry.hot_bytes" (sum (fun s -> s.rs_hot_bytes));
    set "registry.spilled_bytes" (sum (fun s -> s.rs_spilled_bytes));
    set "registry.stores" (sum (fun s -> s.rs_stores));
    set "registry.store_refs" (sum (fun s -> s.rs_store_refs));
    set "registry.store_bytes" (sum (fun s -> s.rs_store_bytes))

let poll t ~shard : resp Pool.outcome option =
  let slot = t.f_slots.(shard) in
  match slot.s_impl with
  | Proc w -> (
    match Worker.poll w with
    | None -> None
    | Some outcome ->
      (match outcome with Pool.Done r -> note_reply t slot r | _ -> ());
      if not (Worker.alive w) then respawn t slot;
      Some outcome)
  | Dom d -> (
    match d.d_state with
    | D_idle -> None
    | D_cancelled ->
      d.d_state <- D_abandoned;
      Some Pool.Timed_out
    | D_busy | D_abandoned -> (
      match Shim.Mailbox.take_opt d.d_outbox with
      | None -> None
      | Some r ->
        let abandoned = d.d_state = D_abandoned in
        d.d_state <- D_idle;
        if abandoned then None (* late result of a cancelled run *)
        else (
          match r with
          | Ok v ->
            note_reply t slot v;
            Some (Pool.Done v)
          | Error m -> Some (Pool.Crashed m))))

let cancel t ~shard =
  let slot = t.f_slots.(shard) in
  match slot.s_impl with
  | Proc w -> if Worker.busy w then Worker.kill w
  | Dom d -> if d.d_state = D_busy then d.d_state <- D_cancelled

let elapsed t ~shard =
  let slot = t.f_slots.(shard) in
  match slot.s_impl with
  | Proc w -> Worker.elapsed w
  | Dom d ->
    if d.d_state = D_busy then Unix.gettimeofday () -. d.d_submitted else 0.

let fds t =
  Array.fold_left
    (fun acc s ->
      match s.s_impl with
      | Proc w when Worker.alive w && Worker.busy w -> Worker.fd w :: acc
      | _ -> acc)
    [] t.f_slots

let stop t =
  Array.iter
    (fun s ->
      match s.s_impl with
      | Proc w -> Worker.stop w
      | Dom d -> (
        Shim.Mailbox.put d.d_inbox None;
        (* A busy domain finishes its current run before seeing the
           poison pill; joining here bounds shutdown by one run. *)
        try Shim.join d.d_handle with _ -> ()))
    t.f_slots

(* ---------------------------------------------------------------- *)
(* Introspection — shapes match Registry.stats_json so stats consumers
   need not care whether they are looking at one registry or a fleet. *)

let reg_totals t =
  Array.fold_left
    (fun acc s ->
      let l = s.s_last in
      { rs_entries = acc.rs_entries + l.rs_entries;
        rs_hot_entries = acc.rs_hot_entries + l.rs_hot_entries;
        rs_hot_bytes = acc.rs_hot_bytes + l.rs_hot_bytes;
        rs_spilled_bytes = acc.rs_spilled_bytes + l.rs_spilled_bytes;
        rs_hits = acc.rs_hits + l.rs_hits;
        rs_misses = acc.rs_misses + l.rs_misses;
        rs_reloads = acc.rs_reloads + l.rs_reloads;
        rs_spills = acc.rs_spills + l.rs_spills;
        rs_evictions = acc.rs_evictions + l.rs_evictions;
        rs_stores = acc.rs_stores + l.rs_stores;
        rs_store_refs = acc.rs_store_refs + l.rs_store_refs;
        rs_store_bytes = acc.rs_store_bytes + l.rs_store_bytes })
    zero_stats t.f_slots

let reg_stats_json (r : reg_stats) =
  J.Obj
    [ ("entries", J.Int r.rs_entries);
      ("hot_entries", J.Int r.rs_hot_entries);
      ("hot_bytes", J.Int r.rs_hot_bytes);
      ("spilled_bytes", J.Int r.rs_spilled_bytes);
      ("hits", J.Int r.rs_hits);
      ("misses", J.Int r.rs_misses);
      ("reloads", J.Int r.rs_reloads);
      ("spills", J.Int r.rs_spills);
      ("evictions", J.Int r.rs_evictions);
      ("stores", J.Int r.rs_stores);
      ("store_refs", J.Int r.rs_store_refs);
      ("store_bytes", J.Int r.rs_store_bytes) ]

let registry_json t = reg_stats_json (reg_totals t)

let shards_json t =
  J.List
    (Array.to_list
       (Array.map
          (fun s ->
            let busy, pid =
              match s.s_impl with
              | Proc w -> (Worker.busy w, Some (Worker.pid w))
              | Dom d -> (d.d_state <> D_idle, None)
            in
            J.Obj
              [ ("shard", J.Int s.s_index);
                ("transport", J.Str (transport_to_string t.f_transport));
                ("pid", match pid with Some p -> J.Int p | None -> J.Null);
                ("busy", J.Bool busy);
                ("requests", J.Int s.s_requests);
                ("respawns", J.Int s.s_respawns);
                ("registry", reg_stats_json s.s_last) ])
          t.f_slots))
