module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

let version = 1
let max_frame = 16 * 1024 * 1024

type program_ref =
  | Workload of { name : string; scale : int option }
  | Asm of string
  | By_digest of string

type request =
  | Hello of { proto : int }
  | Run of {
      id : string;
      engine : Fastsim.Sim.engine;
      spec : Fastsim.Sim.Spec.t;
      program : program_ref;
      fault : string option;
    }
  | Stats of { id : string }
  | Telemetry of { id : string; include_trace : bool }
  | Cancel of { id : string }
  | Ping of { id : string }
  | Shutdown of { id : string }

type error_code =
  | Overloaded
  | Bad_request
  | Unknown_workload
  | Unknown_digest
  | Worker_crashed
  | Timeout
  | Cancelled
  | Shutting_down
  | Unsupported_proto
  | Internal

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Bad_request -> "bad_request"
  | Unknown_workload -> "unknown_workload"
  | Unknown_digest -> "unknown_digest"
  | Worker_crashed -> "worker_crashed"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Shutting_down -> "shutting_down"
  | Unsupported_proto -> "unsupported_proto"
  | Internal -> "internal"

let error_code_of_string = function
  | "overloaded" -> Ok Overloaded
  | "bad_request" -> Ok Bad_request
  | "unknown_workload" -> Ok Unknown_workload
  | "unknown_digest" -> Ok Unknown_digest
  | "worker_crashed" -> Ok Worker_crashed
  | "timeout" -> Ok Timeout
  | "cancelled" -> Ok Cancelled
  | "shutting_down" -> Ok Shutting_down
  | "unsupported_proto" -> Ok Unsupported_proto
  | "internal" -> Ok Internal
  | s -> Error (Printf.sprintf "unknown error code %S" s)

type response =
  | R_hello of { proto : int }
  | Accepted of { id : string }
  | Result of {
      id : string;
      result : Fastsim.Sim.result;
      wall_s : float;
      warm : bool;
      digest : string;
    }
  | Error of { id : string option; code : error_code; message : string }
  | R_stats of { id : string; stats : J.t }
  | R_telemetry of { id : string; telemetry : J.t }
  | Pong of { id : string }

(* ---------------------------------------------------------------- *)
(* Strict object decoding, same discipline as Sim's spec/result codecs:
   one pass, unknown and duplicate keys rejected. The fold carries a
   [unit] accumulator; fields stash their values in refs. *)

let fail fmt = Printf.ksprintf (fun m -> failwith m) fmt

let strict ~what ~field j =
  match j with
  | J.Obj members ->
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (k, v) ->
        if Hashtbl.mem seen k then fail "duplicate %s field %S" what k;
        Hashtbl.add seen k ();
        if not (field k v) then fail "unknown %s field %S" what k)
      members
  | _ -> fail "%s must be an object" what

let need what = function Some v -> v | None -> fail "missing %s" what

let as_result what decode j =
  match decode j with
  | v -> Ok v
  | exception Failure m -> Error (what ^ ": " ^ m)
  | exception J.Parse_error m -> Error (what ^ ": " ^ m)

(* ---------------------------------------------------------------- *)
(* Program references. *)

let program_ref_to_json = function
  | Workload { name; scale } ->
    J.Obj
      ([ ("kind", J.Str "workload"); ("name", J.Str name) ]
      @ match scale with None -> [] | Some s -> [ ("scale", J.Int s) ])
  | Asm source -> J.Obj [ ("kind", J.Str "asm"); ("source", J.Str source) ]
  | By_digest d -> J.Obj [ ("kind", J.Str "digest"); ("digest", J.Str d) ]

let program_ref_decode j =
  let kind = ref None and name = ref None and scale = ref None in
  let source = ref None and digest = ref None in
  strict ~what:"program" j ~field:(fun k v ->
      match k with
      | "kind" -> kind := Some (J.to_str v); true
      | "name" -> name := Some (J.to_str v); true
      | "scale" -> scale := Some (J.to_int v); true
      | "source" -> source := Some (J.to_str v); true
      | "digest" -> digest := Some (J.to_str v); true
      | _ -> false);
  match need "program.kind" !kind with
  | "workload" ->
    Workload { name = need "program.name" !name; scale = !scale }
  | "asm" -> Asm (need "program.source" !source)
  | "digest" -> By_digest (need "program.digest" !digest)
  | k -> fail "unknown program kind %S (want workload, asm or digest)" k

(* ---------------------------------------------------------------- *)
(* Requests. *)

let request_to_json = function
  | Hello { proto } ->
    J.Obj [ ("type", J.Str "hello"); ("proto", J.Int proto) ]
  | Run { id; engine; spec; program; fault } ->
    J.Obj
      ([ ("type", J.Str "run");
         ("id", J.Str id);
         ("engine", J.Str (Spec.engine_to_string engine));
         ("spec", Spec.to_json spec);
         ("program", program_ref_to_json program) ]
      @ match fault with None -> [] | Some f -> [ ("fault", J.Str f) ])
  | Stats { id } -> J.Obj [ ("type", J.Str "stats"); ("id", J.Str id) ]
  | Telemetry { id; include_trace } ->
    J.Obj
      ([ ("type", J.Str "telemetry"); ("id", J.Str id) ]
      @ if include_trace then [ ("trace", J.Bool true) ] else [])
  | Cancel { id } -> J.Obj [ ("type", J.Str "cancel"); ("id", J.Str id) ]
  | Ping { id } -> J.Obj [ ("type", J.Str "ping"); ("id", J.Str id) ]
  | Shutdown { id } -> J.Obj [ ("type", J.Str "shutdown"); ("id", J.Str id) ]

let ok_or_fail = function Ok v -> v | Error m -> fail "%s" m

let request_decode j =
  let typ = ref None and id = ref None and proto = ref None in
  let engine = ref None and spec = ref None and program = ref None in
  let fault = ref None and trace = ref None in
  strict ~what:"request" j ~field:(fun k v ->
      match k with
      | "type" -> typ := Some (J.to_str v); true
      | "id" -> id := Some (J.to_str v); true
      | "proto" -> proto := Some (J.to_int v); true
      | "trace" -> trace := Some (J.to_bool v); true
      | "engine" ->
        engine := Some (ok_or_fail (Spec.engine_of_string (J.to_str v)));
        true
      | "spec" -> spec := Some (ok_or_fail (Spec.of_json_result v)); true
      | "program" -> program := Some (program_ref_decode v); true
      | "fault" -> fault := Some (J.to_str v); true
      | _ -> false);
  let id () = need "id" !id in
  match need "type" !typ with
  | "hello" -> Hello { proto = need "proto" !proto }
  | "run" ->
    Run
      { id = id ();
        engine = need "engine" !engine;
        spec = need "spec" !spec;
        program = need "program" !program;
        fault = !fault }
  | "stats" -> Stats { id = id () }
  | "telemetry" ->
    Telemetry
      { id = id ();
        include_trace = (match !trace with Some b -> b | None -> false) }
  | "cancel" -> Cancel { id = id () }
  | "ping" -> Ping { id = id () }
  | "shutdown" -> Shutdown { id = id () }
  | t -> fail "unknown request type %S" t

let request_of_json j = as_result "request" request_decode j

(* ---------------------------------------------------------------- *)
(* Responses. *)

let response_to_json = function
  | R_hello { proto } ->
    J.Obj [ ("type", J.Str "hello"); ("proto", J.Int proto) ]
  | Accepted { id } -> J.Obj [ ("type", J.Str "accepted"); ("id", J.Str id) ]
  | Result { id; result; wall_s; warm; digest } ->
    J.Obj
      [ ("type", J.Str "result");
        ("id", J.Str id);
        ("result", Fastsim.Sim.result_to_json result);
        ("wall_s", J.Float wall_s);
        ("warm", J.Bool warm);
        ("digest", J.Str digest) ]
  | Error { id; code; message } ->
    J.Obj
      ([ ("type", J.Str "error") ]
      @ (match id with None -> [] | Some id -> [ ("id", J.Str id) ])
      @ [ ("code", J.Str (error_code_to_string code));
          ("message", J.Str message) ])
  | R_stats { id; stats } ->
    J.Obj [ ("type", J.Str "stats"); ("id", J.Str id); ("stats", stats) ]
  | R_telemetry { id; telemetry } ->
    J.Obj
      [ ("type", J.Str "telemetry"); ("id", J.Str id);
        ("telemetry", telemetry) ]
  | Pong { id } -> J.Obj [ ("type", J.Str "pong"); ("id", J.Str id) ]

let response_decode j =
  let typ = ref None and id = ref None and proto = ref None in
  let result = ref None and wall_s = ref None and warm = ref None in
  let digest = ref None and code = ref None and message = ref None in
  let stats = ref None and telemetry = ref None in
  strict ~what:"response" j ~field:(fun k v ->
      match k with
      | "type" -> typ := Some (J.to_str v); true
      | "id" -> id := Some (J.to_str v); true
      | "proto" -> proto := Some (J.to_int v); true
      | "result" ->
        (match Fastsim.Sim.result_of_json v with
         | Ok r -> result := Some r
         | Error m -> fail "%s" m);
        true
      | "wall_s" -> wall_s := Some (J.to_float v); true
      | "warm" -> warm := Some (J.to_bool v); true
      | "digest" -> digest := Some (J.to_str v); true
      | "code" ->
        code := Some (ok_or_fail (error_code_of_string (J.to_str v)));
        true
      | "message" -> message := Some (J.to_str v); true
      | "stats" -> stats := Some v; true
      | "telemetry" -> telemetry := Some v; true
      | _ -> false);
  let rid () = need "id" !id in
  match need "type" !typ with
  | "hello" -> R_hello { proto = need "proto" !proto }
  | "accepted" -> Accepted { id = rid () }
  | "result" ->
    Result
      { id = rid ();
        result = need "result" !result;
        wall_s = need "wall_s" !wall_s;
        warm = need "warm" !warm;
        digest = need "digest" !digest }
  | "error" ->
    Error
      { id = !id;
        code = need "code" !code;
        message = need "message" !message }
  | "stats" -> R_stats { id = rid (); stats = need "stats" !stats }
  | "telemetry" ->
    R_telemetry { id = rid (); telemetry = need "telemetry" !telemetry }
  | "pong" -> Pong { id = rid () }
  | t -> fail "unknown response type %S" t

let response_of_json j = as_result "response" response_decode j

(* ---------------------------------------------------------------- *)
(* Framing. *)

let encode_frame j =
  let body = J.to_string j in
  let n = String.length body in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Proto.encode_frame: %d-byte frame" n);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 b 4 n;
  b

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd j =
  let b = encode_frame j in
  write_all fd b 0 (Bytes.length b)

(* Blocking read of exactly [len] bytes; [`Eof] only when the very first
   byte is missing (a clean close between frames). *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Ok b
    else
      match Unix.read fd b off (len - off) with
      | 0 -> if off = 0 then Error `Eof else Error `Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let read_frame fd =
  match read_exact fd 4 with
  | Error `Eof -> Ok None
  | Error `Truncated -> Error "EOF inside frame header"
  | Ok hdr -> (
    let len = be32 hdr 0 in
    if len > max_frame then
      Error (Printf.sprintf "frame of %d bytes exceeds limit" len)
    else
      match read_exact fd len with
      | Error (`Eof | `Truncated) -> Error "EOF inside frame body"
      | Ok body -> (
        match J.of_string (Bytes.to_string body) with
        | j -> Ok (Some j)
        | exception J.Parse_error m -> Error ("bad frame: " ^ m)))

module Decoder = struct
  type t = { mutable data : string }

  let create () = { data = "" }

  let feed d b n = d.data <- d.data ^ Bytes.sub_string b 0 n

  let next d =
    if String.length d.data < 4 then Ok None
    else begin
      let hdr = Bytes.of_string (String.sub d.data 0 4) in
      let len = be32 hdr 0 in
      if len > max_frame then
        Error (Printf.sprintf "frame of %d bytes exceeds limit" len)
      else if String.length d.data < 4 + len then Ok None
      else begin
        let body = String.sub d.data 4 len in
        d.data <-
          String.sub d.data (4 + len) (String.length d.data - 4 - len);
        match J.of_string body with
        | j -> Ok (Some j)
        | exception J.Parse_error m -> Error ("bad frame: " ^ m)
      end
    end
end

(* ---------------------------------------------------------------- *)

type address = [ `Unix_path of string | `Tcp of string * int ]

let address_of_string s =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None ->
      Stdlib.Error
        (Printf.sprintf "bad tcp address %S (want HOST:PORT)" rest)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (`Tcp (host, p))
      | _ -> Stdlib.Error (Printf.sprintf "bad port %S" port))
  in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (`Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else Ok (`Unix_path s)

let address_to_string = function
  | `Unix_path p -> "unix:" ^ p
  | `Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
