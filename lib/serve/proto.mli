(** The serve wire protocol (docs/SERVE.md).

    Frames are length-prefixed JSON: a 4-byte big-endian byte count
    followed by exactly that many bytes of one JSON object. The protocol
    is versioned by {!version}: a client opens with a [hello] frame and
    the server answers [hello] (or an [unsupported_proto] error) before
    anything else flows.

    The JSON schemas are shared with the rest of the system rather than
    re-invented: a request's [spec] is {!Fastsim.Sim.Spec.to_json} (the
    same object sweep manifests embed) and a [result] frame's payload is
    {!Fastsim.Sim.result_to_json} — so a daemon response, a sweep report
    entry and a fuzz artifact are mutually intelligible. *)

val version : int
(** Current protocol version (1). *)

val max_frame : int
(** Upper bound on one frame's body size; oversized frames are a
    protocol error, never an allocation. *)

(** How a [run] request names its program. *)
type program_ref =
  | Workload of { name : string; scale : int option }
      (** a suite workload ({!Workloads.Suite.find} name), optionally at
          an explicit scale (default: the workload's default scale). *)
  | Asm of string
      (** inline SRISC assembly source ({!Isa.Parse.program}). *)
  | By_digest of string
      (** hex code digest of a program this server has already built for
          an earlier request (see the [digest] field of result frames);
          saves re-shipping the source. *)

type request =
  | Hello of { proto : int }
  | Run of {
      id : string;             (** caller-chosen; echoed on every frame. *)
      engine : Fastsim.Sim.engine;
      spec : Fastsim.Sim.Spec.t;
      program : program_ref;
      fault : string option;
          (** test-only crash injection; rejected unless the server was
              started with [allow_fault]. *)
    }
  | Stats of { id : string }
  | Telemetry of { id : string; include_trace : bool }
      (** live telemetry scrape: a {!Fastsim_obs.Metrics.snapshot} of
          every server instrument plus server/registry sections; with
          [include_trace], also the buffered request spans as JSON (see
          docs/OBSERVABILITY.md for the schema). Wire form:
          [{"type":"telemetry","id":...,"trace":true?}]. *)
  | Cancel of { id : string }  (** [id] of an in-flight [run]. *)
  | Ping of { id : string }
  | Shutdown of { id : string }
      (** graceful drain: running and queued work finishes, new work is
          refused with [shutting_down]. *)

type error_code =
  | Overloaded        (** request queue full — back off and retry. *)
  | Bad_request
  | Unknown_workload
  | Unknown_digest
  | Worker_crashed
  | Timeout
  | Cancelled
  | Shutting_down
  | Unsupported_proto
  | Internal

val error_code_to_string : error_code -> string
val error_code_of_string : string -> (error_code, string) result

type response =
  | R_hello of { proto : int }
  | Accepted of { id : string }  (** the run is queued. *)
  | Result of {
      id : string;
      result : Fastsim.Sim.result;
      wall_s : float;
      warm : bool;   (** served from a warm registry pcache. *)
      digest : string;
          (** hex code digest of the program that ran; usable in a later
              {!By_digest} request. *)
    }
  | Error of { id : string option; code : error_code; message : string }
  | R_stats of { id : string; stats : Fastsim_obs.Json.t }
  | R_telemetry of { id : string; telemetry : Fastsim_obs.Json.t }
  | Pong of { id : string }

val request_to_json : request -> Fastsim_obs.Json.t
val request_of_json : Fastsim_obs.Json.t -> (request, string) result

val response_to_json : response -> Fastsim_obs.Json.t
val response_of_json : Fastsim_obs.Json.t -> (response, string) result
(** Strict decoders: unknown keys, duplicate keys, ill-typed values and
    missing required fields are errors (malformed input must become an
    [Error] frame, never a daemon crash). *)

(* ---- framing ---------------------------------------------------- *)

val encode_frame : Fastsim_obs.Json.t -> bytes
(** Length prefix + serialised JSON. Raises [Invalid_argument] if the
    body exceeds {!max_frame}. *)

val write_frame : Unix.file_descr -> Fastsim_obs.Json.t -> unit
(** Blocking write of one frame (for clients and tests). *)

val read_frame : Unix.file_descr -> (Fastsim_obs.Json.t option, string) result
(** Blocking read of one frame. [Ok None] is a clean EOF at a frame
    boundary; EOF mid-frame, an oversized length or unparseable JSON is
    [Error]. *)

(** Incremental decoder for nonblocking servers: feed raw bytes as they
    arrive, pull complete frames out. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed d b n] appends the first [n] bytes of [b]. *)

  val next : t -> (Fastsim_obs.Json.t option, string) result
  (** [Ok None]: no complete frame buffered yet. An [Error] (oversized
      or unparseable frame) poisons the connection: the caller should
      close it. *)
end

(* ---- addresses -------------------------------------------------- *)

type address = [ `Unix_path of string | `Tcp of string * int ]

val address_of_string : string -> (address, string) result
(** ["unix:PATH"] (or a bare path) and ["tcp:HOST:PORT"]. *)

val address_to_string : address -> string
