(** Per-connection output queue for the serve event loop.

    Encoded frames are queued as byte chunks; {!pump} writes them
    head-first, remembering the offset already sent within the head
    chunk. Cost per pump is proportional to the bytes actually written —
    unlike a flat buffer, nothing already queued is ever copied again —
    and {!pending} gives the loop a cheap backpressure measure for
    closing consumers that fall too far behind. *)

type t

val create : unit -> t

val push : t -> Bytes.t -> unit
(** Queue one encoded frame. The queue takes ownership of the bytes
    (callers must not mutate them afterwards). *)

val pump : t -> Unix.file_descr -> [ `Ok | `Closed ]
(** Write as much queued data as the (non-blocking) descriptor accepts.
    [`Ok] covers both progress and EAGAIN; [`Closed] reports a fatal
    write error — the caller should drop the connection. *)

val pending : t -> int
(** Bytes queued but not yet written. *)

val is_empty : t -> bool
val clear : t -> unit
