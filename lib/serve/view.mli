(** Terminal renderers shared by [fastsim client stats] and
    [fastsim top].

    Both views are built from the daemon's own JSON exports (a [stats]
    frame, a [telemetry] frame), so the human-readable tables can never
    drift from the machine-readable schema. Pure string builders;
    screen clearing and refresh pacing belong to the CLI. *)

val kv_table : (string * string) list -> string
(** Two-column table with keys padded to a common width; a [("", "")]
    row renders as a blank separator line. *)

val fmt_bytes : int -> string
val fmt_us : float -> string
(** Human units: ["512 B"]/["1.2 MiB"]; ["340µs"]/["1.2ms"]/["2.50s"]. *)

val stats_table : Fastsim_obs.Json.t -> string
(** Renders a [stats] frame's payload ([{server, registry, metrics}])
    as an aligned table. Tolerant of missing fields (an older or newer
    daemon): absent values render as 0 / ["?"]. *)

type sample = {
  at : float;                       (** server clock at snapshot time. *)
  server : Fastsim_obs.Json.t;      (** the [server] section. *)
  registry : Fastsim_obs.Json.t;    (** the [registry] section. *)
  snap : Fastsim_obs.Metrics.snapshot;  (** the [metrics] section. *)
}

val sample_of_json : Fastsim_obs.Json.t -> (sample, string) result
(** Parses a [telemetry] frame's payload into a {!sample}. *)

val top_view : ?prev:sample -> sample -> string
(** One [fastsim top] refresh frame. With [prev] (the previous poll),
    counter rates and histogram quantiles are computed over the
    interval via {!Fastsim_obs.Metrics.snapshot_diff}; without it they
    are cumulative since server boot. *)
