(** Load generator for the daemon (docs/SERVE.md, "fastsim loadtest").

    Forks a private daemon on a Unix socket, opens [clients] concurrent
    connections from a single nonblocking event loop, and drives each
    through two measured phases of [requests_per_client] fast-engine
    runs each: a {e cold} phase against a fresh daemon, then a {e warm}
    phase repeating the identical requests against the now-warm
    registry. Each phase reports throughput and latency percentiles, so
    a backend change shows up as cold-vs-warm and backend-vs-backend
    deltas in one artifact.

    Correctness is measured alongside performance: every result frame's
    architectural payload (cycles, retired, cache and branch counters —
    everything except the memo/pcache introspection, which legitimately
    differs between cold and warm runs) must be byte-identical to a
    direct in-process [Sim.run] of the same (engine, spec, program),
    and the fast engine's cycle count must equal the slow engine's
    ({!report.lt_divergent} counts workloads where either check fails —
    the gate is that it stays 0). *)

type config = {
  backend : Server.backend;
  transport : Fleet.transport;  (** fleet backend only *)
  jobs : int;
  clients : int;                (** concurrent connections *)
  requests_per_client : int;    (** per phase *)
  workloads : string list;
      (** workload names, assigned to clients round-robin *)
  scale : int option;           (** default: each workload's test scale *)
  registry_budget : int option;
  phase_timeout_s : float;      (** abort a phase that wedges *)
}

val default : config
(** Fleet backend over process workers, [jobs = 2], [clients = 100],
    [requests_per_client = 2], workloads [li]/[compress]/[go] at test
    scale, 300 s phase timeout. *)

type phase = {
  ph_requests : int;
  ph_errors : int;
  ph_warm_hits : int;   (** result frames flagged warm *)
  ph_wall_s : float;
  ph_rps : float;
  ph_p50_ms : float;
  ph_p90_ms : float;
  ph_p99_ms : float;
  ph_mean_ms : float;
}

type report = {
  lt_backend : string;
  lt_transport : string;
  lt_jobs : int;
  lt_clients : int;
  lt_requests_per_client : int;
  lt_workloads : string list;
  lt_cold : phase;
  lt_warm : phase;
  lt_divergent : int;
      (** workloads whose daemon results diverged from direct runs or
          whose fast/slow cycle counts disagree; 0 = bit-identical *)
}

val run : ?progress:(string -> unit) -> config -> (report, string) result
(** [progress] (default silent) receives one human line per milestone
    (daemon up, phase done, verification done). *)

val report_to_json : report -> Fastsim_obs.Json.t
