(** The persistent-worker fleet.

    Replaces fork-per-request dispatch: a fixed pool of long-lived
    workers, each owning one {e shard} of the warm p-action-cache
    registry. Requests are routed by program-digest affinity
    ({!shard_of}), so a given program's warm cache lives in exactly one
    worker and is reused across requests as a live pointer —
    {!Registry.acquire}/[commit_mem] inside the worker — instead of
    being round-tripped through a {!Memo.Persist} file on every run.
    Serialization happens only when a shard's own LRU budget spills an
    entry (and spilled shards reload via mmap; see {!Memo.Persist}).

    Two transports: [`Process] (default) forks one
    {!Fastsim_exec.Pool.Worker} per shard — crash-isolated, killable
    (timeouts, orphan cancellation), portable to 4.14; [`Domain] runs
    each shard on an OCaml 5 domain (no fork, no marshalling) — but a
    domain cannot be killed, so a cancelled run merely {e abandons} the
    slot until the run finishes, and a crashing C stub or injected
    [exit] fault takes the whole daemon down. The serve daemon defaults
    to [`Process]; [`Domain] is opt-in and gated on
    {!Fastsim_exec.Domain_shim.available}.

    Failure/restart semantics: a dead process worker is respawned on the
    next {!poll}/{!idle} that notices; the replacement starts with a
    cold registry (the shard's hot caches died with the process, and its
    on-disk spills are keyed by a mapping only the dead worker held), so
    warmth is rebuilt by re-recording. The in-flight request, if any, is
    reported [Crashed] (or [Timed_out] after {!cancel}). *)

type t

type transport = [ `Process | `Domain ]

val transport_to_string : transport -> string

(** One simulation request, as shipped to a shard worker. [q_spec]'s
    runtime-only fields must be unset (wire-decoded specs qualify). *)
type req = {
  q_rid : string;  (** server-minted request id, for worker-side logs *)
  q_engine : Fastsim.Sim.engine;
  q_spec : Fastsim.Sim.Spec.t;
  q_prog : Isa.Program.t;
  q_digest : string;
  q_spec_key : string;
  q_fault : string option;
}

(** A shard registry's counters, snapshot after each run and shipped
    back so the parent can aggregate fleet-wide stats. *)
type reg_stats = {
  rs_entries : int;
  rs_hot_entries : int;
  rs_hot_bytes : int;
  rs_spilled_bytes : int;
  rs_hits : int;
  rs_misses : int;
  rs_reloads : int;
  rs_spills : int;
  rs_evictions : int;
  rs_stores : int;  (** per-digest shared chain stores in the shard *)
  rs_store_refs : int;  (** hot entries bound to a shared store *)
  rs_store_bytes : int;  (** modeled store bytes, once per digest *)
}

type resp = {
  r_result : Fastsim.Sim.result;
  r_wall_s : float;
  r_warm : bool;  (** the shard registry had a warm cache for this run *)
  r_spans : Fastsim_obs.Span.span list;
      (** worker-side spans (engine.run, pcache.commit), carrying the
          worker's pid for cross-process trace stitching *)
  r_reg : reg_stats;
}

val create :
  dir:string ->
  jobs:int ->
  ?budget_bytes:int ->
  ?transport:transport ->
  ?metrics:Fastsim_obs.Metrics.t ->
  ?log:Fastsim_obs.Log.t ->
  unit ->
  t
(** Spawns [jobs] shard workers. [dir] holds per-shard registry
    directories ([shard-N/]). [budget_bytes] is the {e fleet-wide} hot
    budget, split evenly across shards. [metrics] receives aggregated
    [registry.*] counters/gauges (deltas folded in as replies arrive),
    so Prometheus/telemetry surfaces keep working unchanged. Raises
    [Invalid_argument] for [`Domain] on a single-domain runtime. *)

val shard_of : t -> digest:string -> int
(** Digest-affinity routing: all requests for one program hit the same
    shard, so its warm cache is never duplicated or serialized. *)

val idle : t -> shard:int -> bool
(** The shard can accept {!submit} now. Quietly respawns a process
    worker that died between requests. *)

val submit : t -> shard:int -> req -> unit
(** One in-flight request per shard; raises [Invalid_argument] if the
    shard is busy (callers gate on {!idle}). *)

val poll : t -> shard:int -> resp Fastsim_exec.Pool.outcome option
(** Non-blocking. [Done]/[Crashed] settle normally; [Timed_out] follows
    {!cancel}. A worker death settles the in-flight request and respawns
    the worker before returning. *)

val cancel : t -> shard:int -> unit
(** Kill the in-flight run (timeout, client cancel, orphaned work on
    disconnect). Process transport SIGKILLs the worker — the next
    {!poll} reports [Timed_out] and respawns. Domain transport cannot
    kill: {!poll} reports [Timed_out] immediately and the slot stays
    occupied until the run's late result is discarded. *)

val elapsed : t -> shard:int -> float
(** Seconds the in-flight request has been running; [0.] if idle. *)

val fds : t -> Unix.file_descr list
(** Response descriptors of busy process workers, for [select]. (Domain
    slots have no descriptor; poll them on a timeout tick.) *)

val stop : t -> unit
(** Graceful shutdown of every worker (EOF / poison pill, then kill
    after a grace period for processes). *)

val jobs : t -> int
val transport : t -> transport

val registry_json : t -> Fastsim_obs.Json.t
(** Fleet-wide registry stats, summed over shards' latest snapshots —
    same shape as {!Registry.stats_json}. *)

val shards_json : t -> Fastsim_obs.Json.t
(** Per-shard detail: pid, busy, request/respawn counts, registry
    snapshot. *)
