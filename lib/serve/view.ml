(* Terminal renderers shared by `fastsim client stats` and
   `fastsim top`: aligned key/value tables built from the JSON the
   daemon already exports, so the human view can never drift from the
   machine view. Pure string builders — no terminal control here
   except what the caller asks for. *)

module J = Fastsim_obs.Json
module Metrics = Fastsim_obs.Metrics

(* ---------------------------------------------------------------- *)
(* Formatting helpers. *)

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if f < 1024. *. 1024. then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Printf.sprintf "%.1f MiB" (f /. (1024. *. 1024.))
  else Printf.sprintf "%.2f GiB" (f /. (1024. *. 1024. *. 1024.))

let fmt_us us =
  if us < 1000. then Printf.sprintf "%.0fµs" us
  else if us < 1_000_000. then Printf.sprintf "%.1fms" (us /. 1000.)
  else Printf.sprintf "%.2fs" (us /. 1_000_000.)

let fmt_pct num den =
  if den <= 0 then "n/a"
  else Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int den)

let fmt_uptime s =
  if s < 120. then Printf.sprintf "%.0fs" s
  else if s < 7200. then Printf.sprintf "%.1fm" (s /. 60.)
  else Printf.sprintf "%.1fh" (s /. 3600.)

(* Two-column aligned table; rows of [("", "")] render as blank
   separator lines. *)
let kv_table rows =
  let width =
    List.fold_left
      (fun w (k, _) -> max w (String.length k))
      0 rows
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (k, v) ->
      if k = "" && v = "" then Buffer.add_char buf '\n'
      else begin
        Buffer.add_string buf k;
        Buffer.add_string buf (String.make (width - String.length k + 2) ' ');
        Buffer.add_string buf v;
        Buffer.add_char buf '\n'
      end)
    rows;
  Buffer.contents buf

(* Tolerant member access: the daemon we are talking to may be newer or
   older than this client, so a missing field renders as a default
   rather than failing the whole view. *)
let geti j k = if J.mem k j then (try J.to_int (J.member k j) with _ -> 0) else 0

let getf j k =
  if J.mem k j then (try J.to_float (J.member k j) with _ -> 0.) else 0.

let getb j k =
  if J.mem k j then (try J.to_bool (J.member k j) with _ -> false) else false

let gets j k =
  if J.mem k j then (try J.to_str (J.member k j) with _ -> "?") else "?"

(* ---------------------------------------------------------------- *)
(* `client stats` table. *)

let stats_table j =
  let server = if J.mem "server" j then J.member "server" j else J.Obj [] in
  let reg = if J.mem "registry" j then J.member "registry" j else J.Obj [] in
  let runs_ok = geti server "runs_ok" in
  kv_table
    [ ("uptime", fmt_uptime (getf server "uptime_s"));
      ( "backend",
        Printf.sprintf "%s ×%d%s" (gets server "backend") (geti server "jobs")
          (if getb server "draining" then "  (draining)" else "") );
      ("requests", string_of_int (geti server "requests_served"));
      ( "runs",
        Printf.sprintf "%d ok, %d failed" runs_ok
          (geti server "runs_failed") );
      ( "in flight",
        Printf.sprintf "%d running, %d queued" (geti server "running")
          (geti server "queue_depth") );
      ( "warm hits",
        Printf.sprintf "%d/%d (%s)" (geti server "warm_hits") runs_ok
          (fmt_pct (geti server "warm_hits") runs_ok) );
      ( "last replay",
        Printf.sprintf "%.1f%%" (100. *. getf server "last_replay_fraction")
      );
      ("programs", string_of_int (geti server "programs_known"));
      ("", "");
      ( "registry",
        Printf.sprintf "%d entries (%d hot)" (geti reg "entries")
          (geti reg "hot_entries") );
      ( "cache bytes",
        Printf.sprintf "%s hot, %s spilled"
          (fmt_bytes (geti reg "hot_bytes"))
          (fmt_bytes (geti reg "spilled_bytes")) );
      ( "cache hits",
        Printf.sprintf "%d hits, %d misses (%s)" (geti reg "hits")
          (geti reg "misses")
          (fmt_pct (geti reg "hits") (geti reg "hits" + geti reg "misses")) );
      ( "churn",
        Printf.sprintf "%d reloads, %d spills, %d evictions"
          (geti reg "reloads") (geti reg "spills") (geti reg "evictions") ) ]

(* ---------------------------------------------------------------- *)
(* `fastsim top`. *)

type sample = {
  at : float;
  server : J.t;
  registry : J.t;
  snap : Metrics.snapshot;
}

let sample_of_json j =
  match
    ( (if J.mem "at" j then J.to_float (J.member "at" j)
       else Unix.gettimeofday ()),
      J.member "server" j,
      J.member "registry" j,
      Metrics.snapshot_of_json (J.member "metrics" j) )
  with
  | at, server, registry, Ok snap -> Ok { at; server; registry; snap }
  | _, _, _, (Error _ as e) -> e
  | exception J.Parse_error m -> Error ("telemetry: " ^ m)

let find_hist snap name = List.assoc_opt name snap.Metrics.s_histograms

let quantiles_line snap name =
  match find_hist snap name with
  | None -> "n/a"
  | Some h when h.Metrics.s_count = 0 -> "—"
  | Some h ->
    Printf.sprintf "p50 %s  p99 %s  max %s  (%d samples)"
      (fmt_us (Metrics.hsnap_quantile h 0.5))
      (fmt_us (Metrics.hsnap_quantile h 0.99))
      (fmt_us (float_of_int h.Metrics.s_max))
      h.Metrics.s_count

let counter_of snap name =
  match List.assoc_opt name snap.Metrics.s_counters with
  | Some v -> v
  | None -> 0

(* One refresh frame. With [prev], histogram quantiles and rates are
   per-interval (snapshot diff); without it they are since-boot. *)
let top_view ?prev sample =
  let interval, snap =
    match prev with
    | Some p when sample.at > p.at ->
      ( Some (sample.at -. p.at),
        Metrics.snapshot_diff ~after:sample.snap ~before:p.snap )
    | _ -> (None, sample.snap)
  in
  let scoped = { sample with snap } in
  let server = sample.server in
  let rate name =
    match interval with
    | Some dt when dt > 0. ->
      Printf.sprintf "%+d (%.1f/s)" (counter_of snap name)
        (float_of_int (counter_of snap name) /. dt)
    | _ -> ""
  in
  let replayed = counter_of snap "serve.replayed_retired" in
  let detailed = counter_of snap "serve.detailed_retired" in
  let reg = sample.registry in
  let header =
    Printf.sprintf "fastsim top — %s backend ×%d — uptime %s%s%s\n"
      (gets server "backend") (geti server "jobs")
      (fmt_uptime (getf server "uptime_s"))
      (match interval with
       | Some dt -> Printf.sprintf " — interval %.1fs" dt
       | None -> " — since boot")
      (if getb server "draining" then " — DRAINING" else "")
  in
  header ^ "\n"
  ^ kv_table
      [ ( "in flight",
          Printf.sprintf "%d running, %d queued" (geti server "running")
            (geti server "queue_depth") );
        ( "requests",
          Printf.sprintf "%d %s" (geti server "requests_served")
            (rate "serve.requests") );
        ( "runs",
          Printf.sprintf "%d ok, %d failed %s" (geti server "runs_ok")
            (geti server "runs_failed") (rate "serve.runs_ok") );
        ( "warm hits",
          Printf.sprintf "%d/%d (%s)" (geti server "warm_hits")
            (geti server "runs_ok")
            (fmt_pct (geti server "warm_hits") (geti server "runs_ok")) );
        ("", "");
        ("run latency", quantiles_line scoped.snap "serve.run_latency_us");
        ("queue wait", quantiles_line scoped.snap "serve.queue_wait_us");
        ("frame decode", quantiles_line scoped.snap "serve.frame_decode_us");
        ("", "");
        ( "replay",
          Printf.sprintf "%d replayed / %d retired (%s)  last %.1f%%"
            replayed (replayed + detailed)
            (fmt_pct replayed (replayed + detailed))
            (100. *. getf server "last_replay_fraction") );
        ( "registry",
          Printf.sprintf "%d entries (%d hot, %s hot, %s spilled)"
            (geti reg "entries") (geti reg "hot_entries")
            (fmt_bytes (geti reg "hot_bytes"))
            (fmt_bytes (geti reg "spilled_bytes")) );
        ( "reg traffic",
          Printf.sprintf "%d hits, %d misses, %d reloads, %d evictions"
            (geti reg "hits") (geti reg "misses") (geti reg "reloads")
            (geti reg "evictions") ) ]
