type t = { fd : Unix.file_descr }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let connect ?(retries = 0) ?(retry_delay_s = 0.1) address =
  let sockaddr, domain =
    match address with
    | `Unix_path p -> (Unix.ADDR_UNIX p, Unix.PF_UNIX)
    | `Tcp (host, port) ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      (Unix.ADDR_INET (addr, port), Unix.PF_INET)
  in
  let rec attempt n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      if n < retries then begin
        Unix.sleepf retry_delay_s;
        attempt (n + 1)
      end
      else
        Error
          (Printf.sprintf "connect %s: %s"
             (Proto.address_to_string address)
             (Unix.error_message e))
  in
  match attempt 0 with
  | Error _ as e -> e
  | Ok fd -> (
    let t = { fd } in
    let fail m =
      close t;
      Error m
    in
    match
      Proto.write_frame fd
        (Proto.request_to_json (Proto.Hello { proto = Proto.version }))
    with
    | exception Unix.Unix_error (e, _, _) ->
      fail ("hello: " ^ Unix.error_message e)
    | () -> (
      match Proto.read_frame fd with
      | Error m -> fail ("hello: " ^ m)
      | Ok None -> fail "hello: server closed the connection"
      | Ok (Some j) -> (
        match Proto.response_of_json j with
        | Error m -> fail ("hello: " ^ m)
        | Ok (Proto.R_hello { proto }) when proto = Proto.version -> Ok t
        | Ok (Proto.R_hello { proto }) ->
          fail (Printf.sprintf "server speaks unsupported proto %d" proto)
        | Ok (Proto.Error { message; _ }) -> fail message
        | Ok _ -> fail "hello: unexpected response")))

let send t req =
  match Proto.write_frame t.fd (Proto.request_to_json req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let recv t =
  match Proto.read_frame t.fd with
  | Error m -> Error m
  | Ok None -> Error "connection closed"
  | Ok (Some j) -> Proto.response_of_json j

let ( let* ) r f = match r with Error m -> Error m | Ok v -> f v

let run t ~id ~engine ~spec ?fault program =
  let* () = send t (Proto.Run { id; engine; spec; program; fault }) in
  let rec await () =
    let* resp = recv t in
    match resp with
    | Proto.Accepted { id = rid } when rid = id -> await ()
    | Proto.Result { id = rid; _ } when rid = id -> Ok resp
    | Proto.Error { id = rid; _ } when rid = None || rid = Some id ->
      Ok resp
    | other ->
      Error
        (Printf.sprintf "unexpected frame %s"
           (Fastsim_obs.Json.to_string (Proto.response_to_json other)))
  in
  await ()

let stats t ~id =
  let* () = send t (Proto.Stats { id }) in
  let* resp = recv t in
  match resp with
  | Proto.R_stats { id = rid; stats } when rid = id -> Ok stats
  | Proto.Error { message; _ } -> Error message
  | _ -> Error "unexpected response to stats"

let telemetry t ~id ?(include_trace = false) () =
  let* () = send t (Proto.Telemetry { id; include_trace }) in
  let* resp = recv t in
  match resp with
  | Proto.R_telemetry { id = rid; telemetry } when rid = id -> Ok telemetry
  | Proto.Error { message; _ } -> Error message
  | _ -> Error "unexpected response to telemetry"

let ping t ~id =
  let* () = send t (Proto.Ping { id }) in
  let* resp = recv t in
  match resp with
  | Proto.Pong { id = rid } when rid = id -> Ok ()
  | Proto.Error { message; _ } -> Error message
  | _ -> Error "unexpected response to ping"

let shutdown t ~id =
  let* () = send t (Proto.Shutdown { id }) in
  let* resp = recv t in
  match resp with
  | Proto.Accepted { id = rid } when rid = id -> Ok ()
  | Proto.Error { message; _ } -> Error message
  | _ -> Error "unexpected response to shutdown"
