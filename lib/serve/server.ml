module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec
module Async = Fastsim_exec.Pool.Async
module Metrics = Fastsim_obs.Metrics
module Log = Fastsim_obs.Log
module Span = Fastsim_obs.Span

type backend = [ `Fleet | `Fork | `Inline ]

let backend_name = function
  | `Fleet -> "fleet"
  | `Fork -> "fork"
  | `Inline -> "inline"

type config = {
  address : Proto.address;
  backend : backend;
  fleet_transport : Fleet.transport;  (* `Fleet only *)
  jobs : int;
  queue_max : int;
  timeout_s : float;
  registry_budget : int option;
  scratch_dir : string option;
  allow_fault : bool;
  quiet : bool;
  log : Log.t;
  slow_trace_s : float;        (* 0 = never dump per-request traces *)
  trace_dir : string option;   (* where slow-request traces land *)
  span_keep : int;             (* per-request span sets buffered for telemetry *)
  max_out_bytes : int;         (* per-connection output backlog budget *)
}

let default_config address =
  { address; backend = `Fleet; fleet_transport = `Process; jobs = 2;
    queue_max = 64; timeout_s = 0.;
    registry_budget = None; scratch_dir = None; allow_fault = false;
    quiet = false; log = Log.null; slow_trace_s = 0.; trace_dir = None;
    span_keep = 2048; max_out_bytes = 64 * 1024 * 1024 }

(* ---------------------------------------------------------------- *)
(* Connections. *)

type conn = {
  c_fd : Unix.file_descr;
  c_id : int;
  c_dec : Proto.Decoder.t;
  c_out : Outq.t;
  c_read_buf : Bytes.t;  (* per-connection, so the loop is domain-safe *)
  mutable c_greeted : bool;
  mutable c_closing : bool;  (* close once the out queue drains *)
  mutable c_dead : bool;
}

(* A run waiting for a worker slot. *)
type pending = {
  p_conn : int;
  p_id : string;
  p_rid : string;  (* server-minted request id; correlates spans + logs *)
  p_engine : Fastsim.Sim.engine;
  p_spec : Spec.t;
  p_prog : Isa.Program.t;
  p_digest : string;
  p_spec_key : string;
  p_fault : string option;
  p_enq_us : int;             (* when the run entered the queue *)
  p_ctx : Span.Ctx.t;         (* server-side spans for this request *)
}

(* What a worker ships back: the full result, the wall clock, the
   post-run modeled byte size of the pcache (fast engine only; the
   pcache itself travels as a Persist file written by the child), and
   the spans the worker recorded (engine run, pcache save). *)
type payload = Fastsim.Sim.result * float * int option * Span.span list

(* Where a dispatched run lives: a forked one-shot child, or an
   in-flight request on a fleet shard. *)
type task_handle =
  | H_fork of payload Async.task
  | H_fleet of int  (* shard index *)

type active = {
  a_req : pending;
  a_task : task_handle;
  mutable a_warm : bool;  (* fleet backend learns this from the reply *)
  a_pcache_file : string option;  (* fork backend's handoff file *)
  a_start_us : int;  (* dispatch time: queue-wait ends, run latency starts *)
  mutable a_cancelled : bool;
  mutable a_dropped : bool;   (* client went away; discard the outcome *)
  mutable a_orphaned : bool;  (* dropped AND the run itself was cancelled *)
}

type state = {
  cfg : config;
  scratch : string;
  registry : Registry.t;
  programs : (string, Isa.Program.t) Hashtbl.t;  (* hex digest -> program *)
  metrics : Fastsim_obs.Metrics.t;
  m_requests : Fastsim_obs.Metrics.counter;
  m_runs_ok : Fastsim_obs.Metrics.counter;
  m_runs_failed : Fastsim_obs.Metrics.counter;
  m_connections : Fastsim_obs.Metrics.counter;
  m_warm_hits : Fastsim_obs.Metrics.counter;
  m_replayed : Fastsim_obs.Metrics.counter;
  m_detailed : Fastsim_obs.Metrics.counter;
  g_queue : Fastsim_obs.Metrics.gauge;
  g_running : Fastsim_obs.Metrics.gauge;
  g_replay : Fastsim_obs.Metrics.gauge;
  h_queue_wait : Fastsim_obs.Metrics.histogram;    (* µs *)
  h_run_latency : Fastsim_obs.Metrics.histogram;   (* µs, dispatch→settle *)
  h_frame_decode : Fastsim_obs.Metrics.histogram;  (* µs per drained frame *)
  h_replay_pct : Fastsim_obs.Metrics.histogram;    (* percent, per fast run *)
  span_ring : Span.span Fastsim_obs.Ring.t;  (* recent request spans *)
  queue : pending Queue.t;
  mutable fleet : Fleet.t option;  (* Some iff backend = `Fleet *)
  mutable actives : active list;
  mutable conns : conn list;
  mutable draining : bool;
  mutable next_seq : int;
  started : float;
}

let log_of t = t.cfg.log

let conn_by_id t id = List.find_opt (fun c -> c.c_id = id) t.conns

let close_conn t conn =
  if not conn.c_dead then begin
    conn.c_dead <- true;
    Log.debug (log_of t) ~event:"serve.conn_closed"
      [ ("conn", J.Int conn.c_id) ];
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    Outq.clear conn.c_out;
    (* Orphan this connection's work: dequeue what hasn't started, and
       cancel what has — a worker grinding on for a client nobody can
       deliver to would hold its slot (and, in the fleet, its shard)
       hostage for the whole run. *)
    let keep = Queue.create () in
    Queue.iter
      (fun (p : pending) ->
        if p.p_conn <> conn.c_id then Queue.add p keep)
      t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue;
    List.iter
      (fun a ->
        if a.a_req.p_conn = conn.c_id && not a.a_dropped then begin
          a.a_dropped <- true;
          a.a_orphaned <- true;
          Log.debug (log_of t) ~req:a.a_req.p_rid ~event:"serve.orphan_cancel"
            [ ("id", J.Str a.a_req.p_id); ("conn", J.Int conn.c_id) ];
          match a.a_task with
          | H_fork task -> Async.kill task
          | H_fleet shard -> (
            match t.fleet with
            | Some f -> Fleet.cancel f ~shard
            | None -> ())
        end)
      t.actives;
    t.conns <- List.filter (fun c -> c.c_id <> conn.c_id) t.conns
  end

(* Queue an encoded frame on the connection; a consumer whose backlog
   exceeds the output budget is cut loose — unlike the old unbounded
   buffer, a stalled reader can no longer grow the daemon's heap without
   limit. *)
let send t conn resp =
  if not conn.c_dead then begin
    Outq.push conn.c_out (Proto.encode_frame (Proto.response_to_json resp));
    if Outq.pending conn.c_out > t.cfg.max_out_bytes then begin
      Log.warn (log_of t) ~event:"serve.slow_consumer"
        [ ("conn", J.Int conn.c_id);
          ("pending_bytes", J.Int (Outq.pending conn.c_out));
          ("budget_bytes", J.Int t.cfg.max_out_bytes) ];
      close_conn t conn
    end
  end

let send_to t conn_id resp =
  match conn_by_id t conn_id with
  | Some c when not c.c_dead -> send t c resp
  | _ -> ()

let err ?id code message = Proto.Error { id; code; message }

(* ---------------------------------------------------------------- *)
(* Program resolution (parent side, before any dispatch). *)

let digest_hex prog = Digest.to_hex (Memo.Persist.program_digest prog)

let resolve_program t (r : Proto.program_ref) :
    (Isa.Program.t * string, Proto.error_code * string) result =
  match r with
  | Proto.Workload { name; scale } -> (
    match Workloads.Suite.find name with
    | w ->
      let scale =
        match scale with
        | Some s -> s
        | None -> w.Workloads.Workload.default_scale
      in
      (match w.Workloads.Workload.build scale with
       | prog ->
         let d = digest_hex prog in
         Hashtbl.replace t.programs d prog;
         Ok (prog, d)
       | exception e ->
         Error
           ( Proto.Bad_request,
             Printf.sprintf "building %s at scale %d failed: %s" name scale
               (Printexc.to_string e) ))
    | exception Not_found ->
      Error (Proto.Unknown_workload, Printf.sprintf "unknown workload %S" name)
    )
  | Proto.Asm source -> (
    match Isa.Parse.program source with
    | prog ->
      let d = digest_hex prog in
      Hashtbl.replace t.programs d prog;
      Ok (prog, d)
    | exception Isa.Parse.Error { line; message } ->
      Error
        (Proto.Bad_request, Printf.sprintf "asm line %d: %s" line message)
    | exception Isa.Asm.Error m -> Error (Proto.Bad_request, "asm: " ^ m))
  | Proto.By_digest d -> (
    match Hashtbl.find_opt t.programs d with
    | Some prog -> Ok (prog, d)
    | None ->
      Error
        ( Proto.Unknown_digest,
          Printf.sprintf "no program with digest %s on this server" d ))

(* ---------------------------------------------------------------- *)
(* Running simulations. *)

let apply_fault = function
  | None -> ()
  | Some "crash" -> failwith "injected fault: crash"
  | Some "exit" -> Unix._exit 9
  | Some "hang" -> Unix.sleepf 3600.
  | Some f -> failwith ("unknown injected fault: " ^ f)

(* The worker body. [warm] is the registry's hot pcache (shared with a
   forked child by copy-on-write); [save_to] is where a fast worker
   persists the post-run cache for the parent to adopt. The spans in
   the payload carry the worker's pid, so the parent can stitch them
   into the request's cross-process trace. *)
let simulate ~engine ~(spec : Spec.t) ~prog ~warm ~fault ~save_to () :
    payload =
  apply_fault fault;
  let sc = Span.create () in
  let engine_name = Spec.engine_to_string engine in
  match engine with
  | `Fast ->
    let pc =
      match warm with
      | Some pc -> pc
      | None -> Memo.Pcache.create ~policy:spec.Spec.policy ()
    in
    let spec = Spec.with_pcache pc spec in
    let t0 = Unix.gettimeofday () in
    let r =
      Span.with_span sc ~name:"engine.run" ~cat:"worker"
        ~args:[ ("engine", J.Str engine_name) ]
        (fun () -> Fastsim.Sim.run ~engine spec prog)
    in
    let wall = Unix.gettimeofday () -. t0 in
    (match save_to with
     | Some file ->
       Span.with_span sc ~name:"pcache.save" ~cat:"worker" (fun () ->
           Memo.Persist.Codec.save_file pc ~program:prog file)
     | None -> ());
    ( r, wall,
      Some (Memo.Pcache.counters pc).Memo.Pcache.modeled_bytes,
      Span.spans sc )
  | (`Slow | `Baseline) as engine ->
    let t0 = Unix.gettimeofday () in
    let r =
      Span.with_span sc ~name:"engine.run" ~cat:"worker"
        ~args:[ ("engine", J.Str engine_name) ]
        (fun () -> Fastsim.Sim.run ~engine spec prog)
    in
    (r, Unix.gettimeofday () -. t0, None, Span.spans sc)

let note_result t (r : Fastsim.Sim.result) =
  Fastsim_obs.Metrics.incr t.m_runs_ok;
  match r.Fastsim.Sim.memo with
  | Some m ->
    let replayed = m.Memo.Stats.replayed_retired in
    let detailed = m.Memo.Stats.detailed_retired in
    let retired = detailed + replayed in
    Metrics.add t.m_replayed replayed;
    Metrics.add t.m_detailed detailed;
    let frac = float_of_int replayed /. float_of_int (max 1 retired) in
    Fastsim_obs.Metrics.set t.g_replay frac;
    Metrics.observe t.h_replay_pct (int_of_float (frac *. 100.))
  | None -> ()

(* Stitch a finished request's spans into the telemetry ring and, when
   it crossed the slow-request threshold, dump its own Chrome trace. *)
let retire_spans t (p : pending) ~wall_s =
  let spans = Span.Ctx.finish p.p_ctx in
  List.iter (Fastsim_obs.Ring.push t.span_ring) spans;
  if t.cfg.slow_trace_s > 0. && wall_s >= t.cfg.slow_trace_s then begin
    let dir = match t.cfg.trace_dir with Some d -> d | None -> t.scratch in
    (match Unix.mkdir dir 0o700 with
     | () -> ()
     | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
     | exception Unix.Unix_error _ -> ());
    let file = Filename.concat dir ("trace-" ^ p.p_rid ^ ".json") in
    (match
       Span.write_chrome_file file
         ~process_names:[ (Unix.getpid (), "fastsim-serve") ]
         spans
     with
     | () ->
       Log.info (log_of t) ~req:p.p_rid ~event:"serve.slow_trace"
         [ ("wall_s", J.Float wall_s); ("file", J.Str file) ]
     | exception Sys_error m ->
       Log.warn (log_of t) ~req:p.p_rid ~event:"serve.slow_trace_failed"
         [ ("error", J.Str m) ])
  end

let deliver_result t (p : pending) ~warm ~result ~wall_s =
  note_result t result;
  if warm then Metrics.incr t.m_warm_hits;
  send_to t p.p_conn
    (Proto.Result
       { id = p.p_id; result; wall_s; warm; digest = p.p_digest })

(* Record the dispatch-side bookkeeping every backend shares: the
   queue-wait span and histogram sample. Returns the dispatch time. *)
let note_dispatch t (p : pending) =
  let now = Span.now_us () in
  Span.record (Span.Ctx.collector p.p_ctx) ~name:"queue.wait"
    ~start_us:p.p_enq_us ~end_us:now ();
  Metrics.observe t.h_queue_wait (now - p.p_enq_us);
  Log.debug (log_of t) ~req:p.p_rid ~event:"serve.dispatch"
    [ ("id", J.Str p.p_id);
      ("engine", J.Str (Spec.engine_to_string p.p_engine));
      ("digest", J.Str p.p_digest);
      ("queue_wait_us", J.Int (now - p.p_enq_us)) ];
  now

let note_settled t (p : pending) ~start_us ~ok =
  let now = Span.now_us () in
  Span.record (Span.Ctx.collector p.p_ctx) ~name:"request.run"
    ~args:[ ("id", J.Str p.p_id) ] ~start_us ~end_us:now ();
  Metrics.observe t.h_run_latency (now - start_us);
  Log.info (log_of t) ~req:p.p_rid ~event:"serve.settled"
    [ ("id", J.Str p.p_id);
      ("ok", J.Bool ok);
      ("latency_us", J.Int (now - start_us)) ]

(* Inline backend: the run happens right here, synchronously, against
   the registry's live caches. The pcache is created up front (not
   inside [simulate]) so it can be committed back to the registry even
   though the run is in-process. *)
let run_inline t (p : pending) =
  let start_us = note_dispatch t p in
  let warm_pc, warm_hit =
    match p.p_engine with
    | `Fast -> (
      match
        Registry.acquire t.registry ~digest:p.p_digest
          ~spec_key:p.p_spec_key ~policy:p.p_spec.Spec.policy
          ~program:p.p_prog
      with
      | Some pc -> (Some pc, true)
      | None ->
        (* Cold start still interns into the digest's shared chain
           store, so the commit below dedupes against every other
           spec_key of this program. *)
        ( Some
            (Memo.Pcache.create ~policy:p.p_spec.Spec.policy
               ~store:(Registry.chain_store t.registry ~digest:p.p_digest)
               ()),
          false ))
    | _ -> (None, false)
  in
  (match
     simulate ~engine:p.p_engine ~spec:p.p_spec ~prog:p.p_prog ~warm:warm_pc
       ~fault:p.p_fault ~save_to:None ()
   with
   | result, wall_s, _, run_spans ->
     Span.absorb (Span.Ctx.collector p.p_ctx) run_spans;
     (match (p.p_engine, warm_pc) with
      | `Fast, Some pc ->
        Span.with_span (Span.Ctx.collector p.p_ctx) ~name:"pcache.commit"
          (fun () ->
            Registry.commit_mem t.registry ~digest:p.p_digest
              ~spec_key:p.p_spec_key pc)
      | _ -> ());
     note_settled t p ~start_us ~ok:true;
     deliver_result t p ~warm:warm_hit ~result ~wall_s;
     retire_spans t p ~wall_s
   | exception e ->
     Fastsim_obs.Metrics.incr t.m_runs_failed;
     note_settled t p ~start_us ~ok:false;
     send_to t p.p_conn
       (err ~id:p.p_id Proto.Worker_crashed (Printexc.to_string e));
     retire_spans t p ~wall_s:0.)

(* Fork backend: spawn an Async task; the event loop polls it. *)
let dispatch_fork t (p : pending) =
  let start_us = note_dispatch t p in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let warm =
    match p.p_engine with
    | `Fast ->
      Registry.acquire t.registry ~digest:p.p_digest ~spec_key:p.p_spec_key
        ~policy:p.p_spec.Spec.policy ~program:p.p_prog
    | _ -> None
  in
  let pcache_file =
    Filename.concat t.scratch (Printf.sprintf "req-%d.pcache" seq)
  in
  let save_to = match p.p_engine with `Fast -> Some pcache_file | _ -> None in
  let task =
    Async.spawn ~spans:(Span.Ctx.collector p.p_ctx) ~scratch_dir:t.scratch
      ~tag:(Printf.sprintf "req-%d" seq)
      (simulate ~engine:p.p_engine ~spec:p.p_spec ~prog:p.p_prog ~warm
         ~fault:p.p_fault ~save_to)
  in
  t.actives <-
    { a_req = p; a_task = H_fork task; a_warm = warm <> None;
      a_pcache_file = Some pcache_file; a_start_us = start_us;
      a_cancelled = false; a_dropped = false; a_orphaned = false }
    :: t.actives

(* Fleet backend: hand the request to its digest's shard. The warm
   pcache stays inside the worker; only the result comes back. *)
let dispatch_fleet t fleet (p : pending) ~shard =
  let start_us = note_dispatch t p in
  Fleet.submit fleet ~shard
    { Fleet.q_rid = p.p_rid; q_engine = p.p_engine; q_spec = p.p_spec;
      q_prog = p.p_prog; q_digest = p.p_digest; q_spec_key = p.p_spec_key;
      q_fault = p.p_fault };
  t.actives <-
    { a_req = p; a_task = H_fleet shard; a_warm = false;
      a_pcache_file = None; a_start_us = start_us; a_cancelled = false;
      a_dropped = false; a_orphaned = false }
    :: t.actives

(* One pass over the queue, dispatching every request whose shard is
   free. Strict digest affinity: a request whose shard is busy waits
   even if other shards idle — that is the price of never moving a warm
   cache between workers. *)
let dispatch_fleet_round t fleet =
  if not (Queue.is_empty t.queue) then begin
    let keep = Queue.create () in
    Queue.iter
      (fun (p : pending) ->
        match conn_by_id t p.p_conn with
        | None -> () (* client vanished while queued *)
        | Some _ ->
          let shard = Fleet.shard_of fleet ~digest:p.p_digest in
          if Fleet.idle fleet ~shard then dispatch_fleet t fleet p ~shard
          else Queue.add p keep)
      t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue
  end

(* The backend-independent tail of a run's life. *)
type settled_run =
  | S_ok of {
      result : Fastsim.Sim.result;
      wall_s : float;
      warm : bool;
      spans : Span.span list;
      commit : unit -> unit;  (* backend-specific registry handoff *)
    }
  | S_crashed of string
  | S_timed_out

let settle_active t (a : active) (s : settled_run) =
  let p = a.a_req in
  let wall_s = ref 0. in
  (match s with
   | S_ok { result; wall_s = run_wall_s; warm; spans; commit } ->
     wall_s := run_wall_s;
     a.a_warm <- warm;
     Span.absorb (Span.Ctx.collector p.p_ctx) spans;
     commit ();
     note_settled t p ~start_us:a.a_start_us ~ok:true;
     if not a.a_dropped then
       deliver_result t p ~warm ~result ~wall_s:run_wall_s
   | S_crashed m ->
     Fastsim_obs.Metrics.incr t.m_runs_failed;
     note_settled t p ~start_us:a.a_start_us ~ok:false;
     Log.warn (log_of t) ~req:p.p_rid ~event:"serve.worker_crashed"
       [ ("id", J.Str p.p_id); ("error", J.Str m) ];
     if not a.a_dropped then
       send_to t p.p_conn (err ~id:p.p_id Proto.Worker_crashed m)
   | S_timed_out when a.a_orphaned ->
     (* Not a failure: the client vanished and we reclaimed the slot. *)
     note_settled t p ~start_us:a.a_start_us ~ok:false;
     Log.debug (log_of t) ~req:p.p_rid ~event:"serve.orphan_reaped"
       [ ("id", J.Str p.p_id) ]
   | S_timed_out ->
     Fastsim_obs.Metrics.incr t.m_runs_failed;
     note_settled t p ~start_us:a.a_start_us ~ok:false;
     Log.warn (log_of t) ~req:p.p_rid ~event:"serve.timeout"
       [ ("id", J.Str p.p_id); ("cancelled", J.Bool a.a_cancelled) ];
     if not a.a_dropped then
       if a.a_cancelled then
         send_to t p.p_conn
           (err ~id:p.p_id Proto.Cancelled "run cancelled")
       else
         send_to t p.p_conn
           (err ~id:p.p_id Proto.Timeout
              (Printf.sprintf "run exceeded %.1fs" t.cfg.timeout_s)));
  retire_spans t p ~wall_s:!wall_s;
  (* the worker's pcache handoff file, if it survived, is either adopted
     above or stale — never leave it behind *)
  match a.a_pcache_file with
  | Some f -> ( try Sys.remove f with Sys_error _ -> ())
  | None -> ()

let settle_fork t (a : active) (outcome : payload Fastsim_exec.Pool.outcome) =
  let p = a.a_req in
  match outcome with
  | Fastsim_exec.Pool.Done (result, wall_s, bytes_opt, spans) ->
    let commit () =
      match (p.p_engine, bytes_opt, a.a_pcache_file) with
      | `Fast, Some bytes, Some file when Sys.file_exists file ->
        Span.with_span (Span.Ctx.collector p.p_ctx) ~name:"pcache.commit"
          (fun () ->
            Registry.adopt t.registry ~digest:p.p_digest
              ~spec_key:p.p_spec_key ~src:file ~bytes)
      | _ -> ()
    in
    settle_active t a
      (S_ok { result; wall_s; warm = a.a_warm; spans; commit })
  | Fastsim_exec.Pool.Crashed m -> settle_active t a (S_crashed m)
  | Fastsim_exec.Pool.Timed_out -> settle_active t a S_timed_out

let settle_fleet t (a : active) (outcome : Fleet.resp Fastsim_exec.Pool.outcome)
    =
  match outcome with
  | Fastsim_exec.Pool.Done r ->
    settle_active t a
      (S_ok
         { result = r.Fleet.r_result; wall_s = r.Fleet.r_wall_s;
           warm = r.Fleet.r_warm; spans = r.Fleet.r_spans;
           commit = (fun () -> ()) })
  | Fastsim_exec.Pool.Crashed m -> settle_active t a (S_crashed m)
  | Fastsim_exec.Pool.Timed_out -> settle_active t a S_timed_out

(* ---------------------------------------------------------------- *)
(* Stats. *)

let server_json t =
  J.Obj
    [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ("draining", J.Bool t.draining);
      ("backend", J.Str (backend_name t.cfg.backend));
      ("jobs", J.Int t.cfg.jobs);
      ("queue_depth", J.Int (Queue.length t.queue));
      ("running", J.Int (List.length t.actives));
      ( "requests_served",
        J.Int (Fastsim_obs.Metrics.counter_value t.m_requests) );
      ("runs_ok", J.Int (Fastsim_obs.Metrics.counter_value t.m_runs_ok));
      ( "runs_failed",
        J.Int (Fastsim_obs.Metrics.counter_value t.m_runs_failed) );
      ("warm_hits", J.Int (Metrics.counter_value t.m_warm_hits));
      ( "last_replay_fraction",
        J.Float (Fastsim_obs.Metrics.gauge_value t.g_replay) );
      ("programs_known", J.Int (Hashtbl.length t.programs)) ]

(* With the fleet backend, the registry lives sharded inside the
   workers; the parent presents the aggregate (same shape), so stats
   consumers need not care which backend is running. *)
let registry_json t =
  match t.fleet with
  | Some f -> Fleet.registry_json f
  | None -> Registry.stats_json t.registry

let stats_json t =
  J.Obj
    ([ ("server", server_json t);
       ("registry", registry_json t) ]
    @ (match t.fleet with
       | Some f -> [ ("fleet", Fleet.shards_json f) ]
       | None -> [])
    @ [ ("metrics", Fastsim_obs.Metrics.to_json t.metrics) ])

(* The telemetry frame: everything a scraper needs in one snapshot.
   [at] lets a poller compute interval rates without trusting its own
   clock skew; [trace] (opt-in — it is the big one) is the buffered
   request spans, already in Chrome trace_event form. *)
let telemetry_json t ~include_trace =
  let base =
    [ ("at", J.Float (Unix.gettimeofday ()));
      ("server", server_json t);
      ("registry", registry_json t);
      ("metrics",
       Metrics.snapshot_to_json (Metrics.snapshot t.metrics)) ]
  in
  let trace =
    if not include_trace then []
    else
      let spans = Fastsim_obs.Ring.to_list t.span_ring in
      [ ("trace",
         Span.chrome_json
           ~process_names:[ (Unix.getpid (), "fastsim-serve") ]
           spans);
        ("trace_spans", J.Int (List.length spans));
        ("trace_dropped", J.Int (Fastsim_obs.Ring.dropped t.span_ring)) ]
  in
  J.Obj (base @ trace)

(* ---------------------------------------------------------------- *)
(* Request handling. *)

let handle_request t conn req =
  Fastsim_obs.Metrics.incr t.m_requests;
  match req with
  | Proto.Hello { proto } ->
    if proto <> Proto.version then begin
      send t conn
        (err Proto.Unsupported_proto
           (Printf.sprintf "server speaks proto %d, client sent %d"
              Proto.version proto));
      conn.c_closing <- true
    end
    else begin
      conn.c_greeted <- true;
      send t conn (Proto.R_hello { proto = Proto.version })
    end
  | _ when not conn.c_greeted ->
    send t conn (err Proto.Bad_request "expected hello first");
    conn.c_closing <- true
  | Proto.Ping { id } -> send t conn (Proto.Pong { id })
  | Proto.Stats { id } ->
    send t conn (Proto.R_stats { id; stats = stats_json t })
  | Proto.Telemetry { id; include_trace } ->
    send t conn
      (Proto.R_telemetry { id; telemetry = telemetry_json t ~include_trace })
  | Proto.Shutdown { id } ->
    t.draining <- true;
    Log.info (log_of t) ~event:"serve.drain" [ ("conn", J.Int conn.c_id) ];
    send t conn (Proto.Accepted { id })
  | Proto.Cancel { id } -> (
    (* queued first: cheap and race-free *)
    let found = ref false in
    let keep = Queue.create () in
    Queue.iter
      (fun (p : pending) ->
        if (not !found) && p.p_id = id && p.p_conn = conn.c_id then begin
          found := true;
          send t conn (err ~id Proto.Cancelled "run cancelled")
        end
        else Queue.add p keep)
      t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue;
    if not !found then
      match
        List.find_opt
          (fun a ->
            a.a_req.p_id = id && a.a_req.p_conn = conn.c_id
            && not a.a_cancelled)
          t.actives
      with
      | Some a -> (
        a.a_cancelled <- true;
        match a.a_task with
        | H_fork task -> Async.kill task
        | H_fleet shard -> (
          match t.fleet with
          | Some f -> Fleet.cancel f ~shard
          | None -> ()))
      | None ->
        send t conn
          (err ~id Proto.Bad_request
             (Printf.sprintf "no cancellable run with id %S" id)))
  | Proto.Run { id; engine; spec; program; fault } ->
    if t.draining then
      send t conn (err ~id Proto.Shutting_down "server is draining")
    else if fault <> None && not t.cfg.allow_fault then
      send t conn
        (err ~id Proto.Bad_request "fault injection disabled on this server")
    else if Queue.length t.queue >= t.cfg.queue_max then
      send t conn
        (err ~id Proto.Overloaded
           (Printf.sprintf "queue full (%d requests)" t.cfg.queue_max))
    else (
      match resolve_program t program with
      | Error (code, m) ->
        Log.warn (log_of t) ~event:"serve.rejected"
          [ ("id", J.Str id);
            ("code", J.Str (Proto.error_code_to_string code));
            ("message", J.Str m) ];
        send t conn (err ~id code m)
      | Ok (prog, digest) ->
        let rid = Span.mint_id () in
        let p =
          { p_conn = conn.c_id; p_id = id; p_rid = rid; p_engine = engine;
            p_spec = spec; p_prog = prog; p_digest = digest;
            p_spec_key = Registry.spec_key spec; p_fault = fault;
            p_enq_us = Span.now_us (); p_ctx = Span.Ctx.create ~id:rid () }
        in
        Log.info (log_of t) ~req:rid ~event:"serve.accepted"
          [ ("id", J.Str id);
            ("engine", J.Str (Spec.engine_to_string engine));
            ("digest", J.Str digest);
            ("queue_depth", J.Int (Queue.length t.queue)) ];
        Queue.add p t.queue;
        send t conn (Proto.Accepted { id }))

let handle_frame t conn j =
  match Proto.request_of_json j with
  | Ok req -> handle_request t conn req
  | Error m -> send t conn (err Proto.Bad_request m)

(* ---------------------------------------------------------------- *)
(* Socket plumbing. *)

let make_listener = function
  | `Unix_path path ->
    (match Unix.lstat path with
     | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
     | _ -> ()
     | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  | `Tcp (host, port) ->
    let addr =
      if host = "" || host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

let pump_reads t conn =
  match Unix.read conn.c_fd conn.c_read_buf 0 (Bytes.length conn.c_read_buf)
  with
  | 0 -> close_conn t conn
  | n ->
    Proto.Decoder.feed conn.c_dec conn.c_read_buf n;
    let rec drain () =
      if not (conn.c_dead || conn.c_closing) then begin
        let t0 = Span.now_us () in
        match Proto.Decoder.next conn.c_dec with
        | Ok (Some j) ->
          Metrics.observe t.h_frame_decode (Span.now_us () - t0);
          handle_frame t conn j;
          drain ()
        | Ok None -> ()
        | Error m ->
          Log.warn (log_of t) ~event:"serve.bad_frame"
            [ ("conn", J.Int conn.c_id); ("error", J.Str m) ];
          send t conn (err Proto.Bad_request m);
          conn.c_closing <- true
      end
    in
    drain ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn

let pump_writes t conn =
  (match Outq.pump conn.c_out conn.c_fd with
   | `Ok -> ()
   | `Closed -> close_conn t conn);
  if conn.c_closing && (not conn.c_dead) && Outq.is_empty conn.c_out then
    close_conn t conn

(* ---------------------------------------------------------------- *)

let run cfg =
  let owns_scratch = cfg.scratch_dir = None in
  let scratch =
    match cfg.scratch_dir with
    | Some d ->
      (match Unix.mkdir d 0o700 with
       | () -> ()
       | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
    | None ->
      let base = Filename.get_temp_dir_name () in
      let rec make tries =
        let path =
          Filename.concat base
            (Printf.sprintf "fastsim-serve-%d-%06x" (Unix.getpid ())
               (Random.int 0x1000000))
        in
        match Unix.mkdir path 0o700 with
        | () -> path
        | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries < 100 ->
          make (tries + 1)
      in
      make 0
  in
  let programs = Hashtbl.create 16 in
  let metrics = Fastsim_obs.Metrics.create () in
  let registry =
    Registry.create
      ~dir:(Filename.concat scratch "registry")
      ?budget_bytes:cfg.registry_budget
      ~program_of:(fun d -> Hashtbl.find_opt programs d)
      ~metrics ~log:cfg.log ()
  in
  (* Subsystems without an explicit logger (Pool.Async) follow ours. *)
  Log.set_default cfg.log;
  let t =
    { cfg; scratch; registry; programs; metrics;
      m_requests = Fastsim_obs.Metrics.counter metrics "serve.requests";
      m_runs_ok = Fastsim_obs.Metrics.counter metrics "serve.runs_ok";
      m_runs_failed = Fastsim_obs.Metrics.counter metrics "serve.runs_failed";
      m_connections = Fastsim_obs.Metrics.counter metrics "serve.connections";
      m_warm_hits = Fastsim_obs.Metrics.counter metrics "serve.warm_hits";
      m_replayed =
        Fastsim_obs.Metrics.counter metrics "serve.replayed_retired";
      m_detailed =
        Fastsim_obs.Metrics.counter metrics "serve.detailed_retired";
      g_queue = Fastsim_obs.Metrics.gauge metrics "serve.queue_depth";
      g_running = Fastsim_obs.Metrics.gauge metrics "serve.running";
      g_replay =
        Fastsim_obs.Metrics.gauge metrics "serve.last_replay_fraction";
      h_queue_wait =
        Fastsim_obs.Metrics.histogram metrics "serve.queue_wait_us";
      h_run_latency =
        Fastsim_obs.Metrics.histogram metrics "serve.run_latency_us";
      h_frame_decode =
        Fastsim_obs.Metrics.histogram metrics "serve.frame_decode_us";
      h_replay_pct =
        Fastsim_obs.Metrics.histogram metrics "serve.replay_fraction_pct";
      span_ring = Fastsim_obs.Ring.create ~capacity:(max 1 cfg.span_keep);
      queue = Queue.create (); fleet = None; actives = []; conns = [];
      draining = false; next_seq = 0; started = Unix.gettimeofday () }
  in
  Log.info cfg.log ~event:"serve.start"
    [ ("address", J.Str (Proto.address_to_string cfg.address));
      ("backend", J.Str (backend_name cfg.backend));
      ("jobs", J.Int cfg.jobs) ];
  let listener = make_listener cfg.address in
  (* a client that disappears mid-write must not kill the daemon; the
     fleet also relies on this when a shard worker dies under a write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match cfg.backend with
   | `Fleet ->
     t.fleet <-
       Some
         (Fleet.create
            ~dir:(Filename.concat scratch "fleet")
            ~jobs:(max 1 cfg.jobs) ?budget_bytes:cfg.registry_budget
            ~transport:cfg.fleet_transport ~metrics ~log:cfg.log ())
   | `Fork | `Inline -> ());
  let previous_term =
    try
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> t.draining <- true)))
    with Invalid_argument _ -> None
  in
  let previous_int =
    try
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> t.draining <- true)))
    with Invalid_argument _ -> None
  in
  if not cfg.quiet then begin
    Printf.printf "fastsim-serve: listening on %s (backend %s, jobs %d)\n"
      (Proto.address_to_string cfg.address)
      (backend_name cfg.backend) cfg.jobs;
    flush stdout
  end;
  let next_conn_id = ref 0 in
  let accept_new () =
    let rec go () =
      match Unix.accept listener with
      | fd, _ ->
        Unix.set_nonblock fd;
        incr next_conn_id;
        Fastsim_obs.Metrics.incr t.m_connections;
        Log.debug cfg.log ~event:"serve.conn_accepted"
          [ ("conn", J.Int !next_conn_id) ];
        t.conns <-
          { c_fd = fd; c_id = !next_conn_id; c_dec = Proto.Decoder.create ();
            c_out = Outq.create (); c_read_buf = Bytes.create 65536;
            c_greeted = false; c_closing = false; c_dead = false }
          :: t.conns;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    go ()
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun a ->
          match a.a_task with
          | H_fork task -> Async.stop task
          | H_fleet _ -> ())
        t.actives;
      (match t.fleet with Some f -> Fleet.stop f | None -> ());
      List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) t.conns;
      (try Unix.close listener with _ -> ());
      (match cfg.address with
       | `Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
       | `Tcp _ -> ());
      (match previous_term with
       | Some b -> ( try Sys.set_signal Sys.sigterm b with _ -> ())
       | None -> ());
      (match previous_int with
       | Some b -> ( try Sys.set_signal Sys.sigint b with _ -> ())
       | None -> ());
      if owns_scratch then
        try
          let rec rm path =
            match Unix.lstat path with
            | { Unix.st_kind = Unix.S_DIR; _ } ->
              Array.iter
                (fun e -> rm (Filename.concat path e))
                (Sys.readdir path);
              Unix.rmdir path
            | _ -> Unix.unlink path
            | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
          in
          rm scratch
        with _ -> ())
    (fun () ->
      while not !finished do
        (* dispatch while worker slots are free *)
        (match t.fleet with
         | Some fleet -> dispatch_fleet_round t fleet
         | None ->
           while
             (not (Queue.is_empty t.queue))
             && List.length t.actives < max 1 t.cfg.jobs
           do
             let p = Queue.pop t.queue in
             match conn_by_id t p.p_conn with
             | None -> () (* client vanished while queued *)
             | Some _ -> (
               match t.cfg.backend with
               | `Inline -> run_inline t p
               | `Fork -> dispatch_fork t p
               | `Fleet -> assert false (* fleet is Some above *))
           done);
        Fastsim_obs.Metrics.set t.g_queue
          (float_of_int (Queue.length t.queue));
        Fastsim_obs.Metrics.set t.g_running
          (float_of_int (List.length t.actives));
        (* poll workers *)
        let still = ref [] in
        List.iter
          (fun a ->
            match a.a_task with
            | H_fork task -> (
              match Async.poll task with
              | Some outcome -> settle_fork t a outcome
              | None -> still := a :: !still)
            | H_fleet shard -> (
              match t.fleet with
              | None -> () (* unreachable: fleet actives imply a fleet *)
              | Some fleet -> (
                match Fleet.poll fleet ~shard with
                | Some outcome -> settle_fleet t a outcome
                | None -> still := a :: !still)))
          t.actives;
        t.actives <- List.rev !still;
        (* enforce per-run timeouts *)
        if t.cfg.timeout_s > 0. then
          List.iter
            (fun a ->
              match a.a_task with
              | H_fork task ->
                if Async.elapsed task > t.cfg.timeout_s then Async.kill task
              | H_fleet shard -> (
                match t.fleet with
                | None -> ()
                | Some fleet ->
                  if Fleet.elapsed fleet ~shard > t.cfg.timeout_s then
                    Fleet.cancel fleet ~shard))
            t.actives;
        (* multiplex the sockets (and the fleet's response pipes) *)
        let reads =
          (if t.draining then [] else [ listener ])
          @ List.filter_map
              (fun c -> if c.c_dead then None else Some c.c_fd)
              t.conns
          @ (match t.fleet with Some f -> Fleet.fds f | None -> [])
        in
        let writes =
          List.filter_map
            (fun c ->
              if (not c.c_dead) && Outq.pending c.c_out > 0 then
                Some c.c_fd
              else None)
            t.conns
        in
        let timeout = if t.actives <> [] then 0.01 else 0.2 in
        let readable, writable, _ =
          match Unix.select reads writes [] timeout with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem listener readable then accept_new ();
        List.iter
          (fun c ->
            if (not c.c_dead) && List.mem c.c_fd readable then
              pump_reads t c)
          t.conns;
        List.iter
          (fun c ->
            if
              (not c.c_dead)
              && (List.mem c.c_fd writable
                 || (c.c_closing && Outq.is_empty c.c_out))
            then pump_writes t c)
          t.conns;
        (* drain complete? flush remaining output first *)
        if
          t.draining
          && Queue.is_empty t.queue
          && t.actives = []
          && List.for_all (fun c -> Outq.is_empty c.c_out) t.conns
        then finished := true
      done);
  Log.info cfg.log ~event:"serve.exit" [];
  if not cfg.quiet then begin
    Printf.printf "fastsim-serve: drained, exiting\n";
    flush stdout
  end
