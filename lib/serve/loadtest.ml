module J = Fastsim_obs.Json
module Sim = Fastsim.Sim
module Spec = Fastsim.Sim.Spec

type config = {
  backend : Server.backend;
  transport : Fleet.transport;
  jobs : int;
  clients : int;
  requests_per_client : int;
  workloads : string list;
  scale : int option;
  registry_budget : int option;
  phase_timeout_s : float;
}

let default =
  { backend = `Fleet; transport = `Process; jobs = 2; clients = 100;
    requests_per_client = 2; workloads = [ "li"; "compress"; "go" ];
    scale = None; registry_budget = None; phase_timeout_s = 300. }

type phase = {
  ph_requests : int;
  ph_errors : int;
  ph_warm_hits : int;
  ph_wall_s : float;
  ph_rps : float;
  ph_p50_ms : float;
  ph_p90_ms : float;
  ph_p99_ms : float;
  ph_mean_ms : float;
}

type report = {
  lt_backend : string;
  lt_transport : string;
  lt_jobs : int;
  lt_clients : int;
  lt_requests_per_client : int;
  lt_workloads : string list;
  lt_cold : phase;
  lt_warm : phase;
  lt_divergent : int;
}

(* The comparable part of a result: warm and cold runs agree on
   everything architectural; the memo/pcache introspection counters
   necessarily differ (a warm run replays more). *)
let arch_str r =
  match Sim.result_to_json r with
  | J.Obj fields ->
    J.to_string
      (J.Obj (List.filter (fun (k, _) -> k <> "memo" && k <> "pcache") fields))
  | j -> J.to_string j

(* ---------------------------------------------------------------- *)
(* One concurrent client: a nonblocking socket with its own decoder,
   write backlog and latency samples. One request in flight at a time
   (per connection — concurrency comes from the number of clients). *)

type client = {
  fd : Unix.file_descr;
  dec : Proto.Decoder.t;
  rbuf : Bytes.t;
  mutable outb : Bytes.t;
  mutable out_off : int;
  wname : string;
  wref : Proto.program_ref;
  idx : int;
  mutable greeted : bool;
  mutable sent : int;          (* requests issued this phase *)
  mutable got : int;           (* terminal responses this phase *)
  mutable t_send : float;
  mutable dead : bool;
}

let enqueue c json =
  let frame = Proto.encode_frame json in
  if c.out_off >= Bytes.length c.outb then begin
    c.outb <- frame;
    c.out_off <- 0
  end
  else begin
    let rest = Bytes.length c.outb - c.out_off in
    let b = Bytes.create (rest + Bytes.length frame) in
    Bytes.blit c.outb c.out_off b 0 rest;
    Bytes.blit frame 0 b rest (Bytes.length frame);
    c.outb <- b;
    c.out_off <- 0
  end

let pump_write c =
  let len = Bytes.length c.outb - c.out_off in
  if len > 0 then
    match Unix.write c.fd c.outb c.out_off len with
    | n -> c.out_off <- c.out_off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> c.dead <- true

let has_output c = Bytes.length c.outb - c.out_off > 0

(* Read whatever is available and return the decoded frames, oldest
   first. A closed or poisoned connection marks the client dead. *)
let pump_read c =
  let frames = ref [] in
  (match Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) with
   | 0 -> c.dead <- true
   | n -> Proto.Decoder.feed c.dec c.rbuf n
   | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
     -> ()
   | exception Unix.Unix_error _ -> c.dead <- true);
  let rec drain () =
    match Proto.Decoder.next c.dec with
    | Ok (Some j) ->
      frames := j :: !frames;
      drain ()
    | Ok None -> ()
    | Error _ -> c.dead <- true
  in
  drain ();
  List.rev !frames

(* ---------------------------------------------------------------- *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let spec_for (_ : config) = Spec.default

(* Drive every client through [n] sequential requests; returns the
   phase stats and folds each result's architectural string into
   [observe wname arch]. *)
let run_phase cfg clients ~n ~observe =
  let lats = ref [] in
  let errors = ref 0 in
  let warm_hits = ref 0 in
  List.iter
    (fun c ->
      c.sent <- 0;
      c.got <- 0)
    clients;
  let spec = spec_for cfg in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.phase_timeout_s in
  let unfinished () =
    List.exists (fun c -> (not c.dead) && c.got < n) clients
  in
  while unfinished () && Unix.gettimeofday () < deadline do
    (* issue the next request on every idle connection *)
    List.iter
      (fun c ->
        if (not c.dead) && c.sent < n && c.sent = c.got then begin
          let id = Printf.sprintf "c%d-%d" c.idx c.sent in
          enqueue c
            (Proto.request_to_json
               (Proto.Run
                  { id; engine = `Fast; spec; program = c.wref;
                    fault = None }));
          c.sent <- c.sent + 1;
          c.t_send <- Unix.gettimeofday ()
        end)
      clients;
    let live = List.filter (fun c -> not c.dead) clients in
    let reads = List.map (fun c -> c.fd) live in
    let writes =
      List.filter_map (fun c -> if has_output c then Some c.fd else None) live
    in
    (match Unix.select reads writes [] 0.1 with
     | readable, writable, _ ->
       List.iter
         (fun c ->
           if (not c.dead) && List.mem c.fd writable then pump_write c)
         live;
       List.iter
         (fun c ->
           if (not c.dead) && List.mem c.fd readable then
             List.iter
               (fun j ->
                 match Proto.response_of_json j with
                 | Ok (Proto.Accepted _) -> ()
                 | Ok (Proto.Result { result; warm; _ }) ->
                   lats :=
                     ((Unix.gettimeofday () -. c.t_send) *. 1000.) :: !lats;
                   if warm then incr warm_hits;
                   observe c.wname (arch_str result);
                   c.got <- c.got + 1
                 | Ok (Proto.Error _) ->
                   incr errors;
                   c.got <- c.got + 1
                 | Ok _ -> ()
                 | Error _ -> c.dead <- true)
               (pump_read c))
         live
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  let timed_out = unfinished () in
  let wall = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let total = Array.fold_left ( +. ) 0. sorted in
  let requests = Array.length sorted + !errors in
  let phase =
    { ph_requests = requests;
      ph_errors = !errors;
      ph_warm_hits = !warm_hits;
      ph_wall_s = wall;
      ph_rps = (if wall > 0. then float_of_int requests /. wall else 0.);
      ph_p50_ms = percentile sorted 0.50;
      ph_p90_ms = percentile sorted 0.90;
      ph_p99_ms = percentile sorted 0.99;
      ph_mean_ms =
        (if sorted = [||] then 0.
         else total /. float_of_int (Array.length sorted)) }
  in
  if timed_out then
    Error
      (Printf.sprintf "phase timed out after %.0fs (%d/%d responses)"
         cfg.phase_timeout_s
         (List.fold_left (fun acc c -> acc + c.got) 0 clients)
         (n * List.length clients))
  else Ok phase

(* ---------------------------------------------------------------- *)

let run ?(progress = fun (_ : string) -> ()) cfg =
  if cfg.clients < 1 then Error "loadtest: clients must be >= 1"
  else if cfg.requests_per_client < 1 then
    Error "loadtest: requests-per-client must be >= 1"
  else if cfg.workloads = [] then Error "loadtest: no workloads"
  else
    match
      List.find_opt
        (fun n ->
          match Workloads.Suite.find n with
          | (_ : Workloads.Workload.t) -> false
          | exception Not_found -> true)
        cfg.workloads
    with
    | Some n -> Error (Printf.sprintf "loadtest: unknown workload %s" n)
    | None ->
      Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-loadtest" (fun dir ->
          let sock = Filename.concat dir "lt.sock" in
          let address = `Unix_path sock in
          let server_cfg =
            { (Server.default_config address) with
              Server.backend = cfg.backend;
              fleet_transport = cfg.transport;
              jobs = cfg.jobs;
              (* every client may queue at once; the loadtest must
                 measure latency, not exercise admission control *)
              queue_max = (cfg.clients * 2) + 16;
              registry_budget = cfg.registry_budget;
              scratch_dir = Some (Filename.concat dir "scratch");
              quiet = true }
          in
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 -> (
            try
              Server.run server_cfg;
              Unix._exit 0
            with _ -> Unix._exit 1)
          | daemon_pid ->
            let finish () =
              (try Unix.kill daemon_pid Sys.sigterm
               with Unix.Unix_error _ -> ());
              let rec reap tries =
                match Unix.waitpid [ Unix.WNOHANG ] daemon_pid with
                | 0, _ when tries > 0 ->
                  Unix.sleepf 0.05;
                  reap (tries - 1)
                | 0, _ ->
                  (try Unix.kill daemon_pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] daemon_pid)
                | _ -> ()
              in
              reap 200
            in
            Fun.protect ~finally:finish (fun () ->
                (* wait for the socket, then open every connection with a
                   blocking hello exchange (simple, and it cannot deadlock:
                   the daemon answers hello synchronously) *)
                let rec wait_sock tries =
                  if Sys.file_exists sock then Ok ()
                  else if tries = 0 then Error "daemon did not come up"
                  else begin
                    Unix.sleepf 0.05;
                    wait_sock (tries - 1)
                  end
                in
                match wait_sock 200 with
                | Error m -> Error m
                | Ok () -> (
                  let workloads = Array.of_list cfg.workloads in
                  let connect idx =
                    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                    match
                      Unix.connect fd (Unix.ADDR_UNIX sock);
                      Proto.write_frame fd
                        (Proto.request_to_json
                           (Proto.Hello { proto = Proto.version }));
                      Proto.read_frame fd
                    with
                    | Ok (Some j) -> (
                      match Proto.response_of_json j with
                      | Ok (Proto.R_hello _) ->
                        Unix.set_nonblock fd;
                        let wname =
                          workloads.(idx mod Array.length workloads)
                        in
                        let w = Workloads.Suite.find wname in
                        let scale =
                          match cfg.scale with
                          | Some s -> s
                          | None -> w.Workloads.Workload.test_scale
                        in
                        Ok
                          { fd; dec = Proto.Decoder.create ();
                            rbuf = Bytes.create 65536;
                            outb = Bytes.create 0; out_off = 0; wname;
                            wref =
                              Proto.Workload
                                { name = wname; scale = Some scale };
                            idx; greeted = true; sent = 0; got = 0;
                            t_send = 0.; dead = false }
                      | Ok _ | Error _ ->
                        Unix.close fd;
                        Error "unexpected hello reply"
                    )
                    | Ok None -> Unix.close fd; Error "daemon closed during hello"
                    | Error m -> Unix.close fd; Error m
                    | exception Unix.Unix_error (e, fn, _) ->
                      (try Unix.close fd with _ -> ());
                      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
                  in
                  let rec connect_all acc i =
                    if i = cfg.clients then Ok (List.rev acc)
                    else
                      match connect i with
                      | Ok c -> connect_all (c :: acc) (i + 1)
                      | Error m ->
                        List.iter (fun c -> try Unix.close c.fd with _ -> ()) acc;
                        Error (Printf.sprintf "client %d: %s" i m)
                  in
                  match connect_all [] 0 with
                  | Error m -> Error m
                  | Ok clients ->
                    progress
                      (Printf.sprintf
                         "daemon up (%s backend, %d jobs); %d clients \
                          connected"
                         (Server.backend_name cfg.backend) cfg.jobs
                         cfg.clients);
                    Fun.protect
                      ~finally:(fun () ->
                        List.iter
                          (fun c -> try Unix.close c.fd with _ -> ())
                          clients)
                      (fun () ->
                        (* (workload -> distinct architectural results
                           observed); bit-identity means one per key *)
                        let seen : (string, string list) Hashtbl.t =
                          Hashtbl.create 8
                        in
                        let observe w arch =
                          let l =
                            Option.value ~default:[] (Hashtbl.find_opt seen w)
                          in
                          if not (List.mem arch l) then
                            Hashtbl.replace seen w (arch :: l)
                        in
                        let n = cfg.requests_per_client in
                        match run_phase cfg clients ~n ~observe with
                        | Error m -> Error ("cold " ^ m)
                        | Ok cold -> (
                          progress
                            (Printf.sprintf
                               "cold phase: %d requests in %.2fs (%.1f \
                                req/s, p50 %.1fms, p99 %.1fms)"
                               cold.ph_requests cold.ph_wall_s cold.ph_rps
                               cold.ph_p50_ms cold.ph_p99_ms);
                          match run_phase cfg clients ~n ~observe with
                          | Error m -> Error ("warm " ^ m)
                          | Ok warm ->
                            progress
                              (Printf.sprintf
                                 "warm phase: %d requests in %.2fs (%.1f \
                                  req/s, p50 %.1fms, p99 %.1fms, %d warm \
                                  hits)"
                                 warm.ph_requests warm.ph_wall_s warm.ph_rps
                                 warm.ph_p50_ms warm.ph_p99_ms
                                 warm.ph_warm_hits);
                            (* verification: daemon results vs direct runs,
                               fast cycles vs slow cycles *)
                            let divergent = ref 0 in
                            List.iter
                              (fun wname ->
                                let w = Workloads.Suite.find wname in
                                let scale =
                                  match cfg.scale with
                                  | Some s -> s
                                  | None -> w.Workloads.Workload.test_scale
                                in
                                let prog = w.Workloads.Workload.build scale in
                                let spec = spec_for cfg in
                                let fast =
                                  Sim.run ~engine:`Fast
                                    (Spec.with_pcache
                                       (Memo.Pcache.create
                                          ~policy:spec.Spec.policy ())
                                       spec)
                                    prog
                                in
                                let slow = Sim.run ~engine:`Slow spec prog in
                                let expect = arch_str fast in
                                let got =
                                  Option.value ~default:[]
                                    (Hashtbl.find_opt seen wname)
                                in
                                let ok =
                                  got <> [] && List.for_all (( = ) expect) got
                                  && fast.Sim.cycles = slow.Sim.cycles
                                  && fast.Sim.retired = slow.Sim.retired
                                in
                                if not ok then incr divergent)
                              cfg.workloads;
                            progress
                              (Printf.sprintf
                                 "verification: %d divergent workload(s)"
                                 !divergent);
                            Ok
                              { lt_backend = Server.backend_name cfg.backend;
                                lt_transport =
                                  Fleet.transport_to_string cfg.transport;
                                lt_jobs = cfg.jobs;
                                lt_clients = cfg.clients;
                                lt_requests_per_client = n;
                                lt_workloads = cfg.workloads;
                                lt_cold = cold;
                                lt_warm = warm;
                                lt_divergent = !divergent })))))

let phase_to_json p =
  J.Obj
    [ ("requests", J.Int p.ph_requests);
      ("errors", J.Int p.ph_errors);
      ("warm_hits", J.Int p.ph_warm_hits);
      ("wall_s", J.Float p.ph_wall_s);
      ("rps", J.Float p.ph_rps);
      ("p50_ms", J.Float p.ph_p50_ms);
      ("p90_ms", J.Float p.ph_p90_ms);
      ("p99_ms", J.Float p.ph_p99_ms);
      ("mean_ms", J.Float p.ph_mean_ms) ]

let report_to_json r =
  J.Obj
    [ ("backend", J.Str r.lt_backend);
      ("transport", J.Str r.lt_transport);
      ("jobs", J.Int r.lt_jobs);
      ("clients", J.Int r.lt_clients);
      ("requests_per_client", J.Int r.lt_requests_per_client);
      ("workloads", J.List (List.map (fun w -> J.Str w) r.lt_workloads));
      ("cold", phase_to_json r.lt_cold);
      ("warm", phase_to_json r.lt_warm);
      ("divergent_workloads", J.Int r.lt_divergent) ]
