module J = Fastsim_obs.Json
module Metrics = Fastsim_obs.Metrics
module Log = Fastsim_obs.Log

type entry = {
  e_digest : string;
  e_spec_key : string;
  e_file : string;  (* fixed path in the registry dir; may not exist yet *)
  mutable e_hot : Memo.Pcache.t option;
  mutable e_has_file : bool;
  mutable e_bytes : int;       (* modeled bytes of the hot form *)
  mutable e_file_bytes : int;  (* on-disk size of the spill file, if any *)
  mutable e_last_use : int;
  mutable e_hits : int;
  mutable e_bound : bool;
      (* whether this entry's hot cache interns into the registry's
         per-digest shared chain store (and so holds one [sr_refs]) *)
}

(* The per-program shared chain store: every spec_key of one digest
   interns stride rules into the same store, so chains identical across
   specs are stored once. [sr_refs] counts bound hot entries; the record
   itself lives for the registry's lifetime (an empty store is free). *)
type store_rec = {
  sr_store : Memo.Store.t;
  mutable sr_refs : int;
}

(* Instruments mirrored into a shared Metrics registry when the caller
   provides one (the daemon does; library users usually don't). The
   counters double the plain int fields below so [stats_json] keeps
   working without a registry. *)
type instruments = {
  i_metrics : Metrics.t;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_reloads : Metrics.counter;
  c_spills : Metrics.counter;
  c_evictions : Metrics.counter;
  g_entries : Metrics.gauge;
  g_hot_entries : Metrics.gauge;
  g_hot_bytes : Metrics.gauge;
  g_spilled_bytes : Metrics.gauge;
  g_stores : Metrics.gauge;
  g_store_refs : Metrics.gauge;
  g_store_bytes : Metrics.gauge;
}

type t = {
  dir : string;
  budget : int option;
  program_of : string -> Isa.Program.t option;
  tbl : (string * string, entry) Hashtbl.t;
  stores : (string, store_rec) Hashtbl.t;  (* keyed by digest ONLY *)
  inst : instruments option;
  log : Log.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable reloads : int;
  mutable spills : int;
  mutable evictions : int;
}

let make_instruments m =
  { i_metrics = m;
    c_hits = Metrics.counter m "registry.hits";
    c_misses = Metrics.counter m "registry.misses";
    c_reloads = Metrics.counter m "registry.reloads";
    c_spills = Metrics.counter m "registry.spills";
    c_evictions = Metrics.counter m "registry.evictions";
    g_entries = Metrics.gauge m "registry.entries";
    g_hot_entries = Metrics.gauge m "registry.hot_entries";
    g_hot_bytes = Metrics.gauge m "registry.hot_bytes";
    g_spilled_bytes = Metrics.gauge m "registry.spilled_bytes";
    g_stores = Metrics.gauge m "registry.stores";
    g_store_refs = Metrics.gauge m "registry.store_refs";
    g_store_bytes = Metrics.gauge m "registry.store_bytes" }

let create ~dir ?budget_bytes ?(program_of = fun _ -> None) ?metrics
    ?(log = Log.null) () =
  (match Unix.mkdir dir 0o700 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { dir; budget = budget_bytes; program_of; tbl = Hashtbl.create 16;
    stores = Hashtbl.create 16;
    inst = Option.map make_instruments metrics; log;
    tick = 0; hits = 0; misses = 0; reloads = 0; spills = 0; evictions = 0 }

let spec_key spec = J.to_string (Fastsim.Sim.Spec.to_json spec)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_last_use <- t.tick

let file_for t ~digest ~spec_key =
  Filename.concat t.dir
    (Printf.sprintf "%s-%s.pcache" digest
       (Digest.to_hex (Digest.string spec_key)))

let entry t ~digest ~spec_key =
  let key = (digest, spec_key) in
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e
  | None ->
    let e =
      { e_digest = digest; e_spec_key = spec_key;
        e_file = file_for t ~digest ~spec_key; e_hot = None;
        e_has_file = false; e_bytes = 0; e_file_bytes = 0; e_last_use = 0;
        e_hits = 0; e_bound = false }
    in
    Hashtbl.add t.tbl key e;
    e

let store_record t ~digest =
  match Hashtbl.find_opt t.stores digest with
  | Some sr -> sr
  | None ->
    let sr = { sr_store = Memo.Store.create (); sr_refs = 0 } in
    Hashtbl.add t.stores digest sr;
    sr

let chain_store t ~digest = (store_record t ~digest).sr_store

(* Is the same physical hot cache still being served under another key?
   Legitimate: a caller may commit one cache under several spec_keys; its
   rule references must be released only when the last alias goes. *)
let aliased t (e : entry) (pc : Memo.Pcache.t) =
  Hashtbl.fold
    (fun _ (e' : entry) acc ->
      acc
      || (e' != e
          && match e'.e_hot with Some pc' -> pc' == pc | None -> false))
    t.tbl false

(* Bind a hot cache to the digest store's refcount iff it actually
   interns there (private-store caches committed from outside stay
   unbound and keep their pre-sharing semantics). *)
let bind_store t (e : entry) (pc : Memo.Pcache.t) =
  if not e.e_bound then begin
    let sr = store_record t ~digest:e.e_digest in
    if Memo.Pcache.store pc == sr.sr_store then begin
      e.e_bound <- true;
      sr.sr_refs <- sr.sr_refs + 1
    end
  end

(* Drop an entry's hot form, returning its rule references to the shared
   store (unless an alias still serves the same cache) and its store
   refcount. *)
let drop_hot t (e : entry) =
  match e.e_hot with
  | None -> ()
  | Some pc ->
    if e.e_bound then begin
      (match Hashtbl.find_opt t.stores e.e_digest with
       | Some sr -> sr.sr_refs <- max 0 (sr.sr_refs - 1)
       | None -> ());
      e.e_bound <- false;
      if not (aliased t e pc) then Memo.Pcache.release_rules pc
    end;
    e.e_hot <- None

let hot_bytes t =
  Hashtbl.fold
    (fun _ e acc -> if e.e_hot <> None then acc + e.e_bytes else acc)
    t.tbl 0

let spilled_bytes t =
  Hashtbl.fold
    (fun _ e acc -> if e.e_has_file then acc + e.e_file_bytes else acc)
    t.tbl 0

let hot_count t =
  Hashtbl.fold (fun _ e n -> if e.e_hot <> None then n + 1 else n) t.tbl 0

let store_count t = Hashtbl.length t.stores

let store_refs t =
  Hashtbl.fold (fun _ sr acc -> acc + sr.sr_refs) t.stores 0

(* Chain-store footprint, counted ONCE PER DIGEST from the store map —
   never by summing per-entry shares. Entries of one digest deliberately
   alias a single store, so any per-entry accumulation double-counts as
   soon as a digest is spilled and reloaded within one eviction pass;
   the regression test in test/test_serve.ml pins this under a 1-byte
   budget. *)
let store_bytes t =
  Hashtbl.fold
    (fun _ sr acc -> acc + Memo.Store.bytes sr.sr_store)
    t.stores 0

let store_rules t =
  Hashtbl.fold
    (fun _ sr acc -> acc + Memo.Store.live_rules sr.sr_store)
    t.stores 0

let store_refs_for t ~digest =
  match Hashtbl.find_opt t.stores digest with
  | Some sr -> sr.sr_refs
  | None -> 0

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Mirror the registry's state into the shared metrics registry (when
   one was supplied) after any mutation. Cheap: four gauge writes. *)
let sync_gauges t =
  match t.inst with
  | None -> ()
  | Some i ->
    Metrics.set i.g_entries (float_of_int (Hashtbl.length t.tbl));
    Metrics.set i.g_hot_entries (float_of_int (hot_count t));
    Metrics.set i.g_hot_bytes (float_of_int (hot_bytes t));
    Metrics.set i.g_spilled_bytes (float_of_int (spilled_bytes t));
    Metrics.set i.g_stores (float_of_int (store_count t));
    Metrics.set i.g_store_refs (float_of_int (store_refs t));
    Metrics.set i.g_store_bytes (float_of_int (store_bytes t))

let digest_short d = if String.length d > 12 then String.sub d 0 12 else d

(* Per-digest hit/miss counters let a dashboard see which programs are
   actually enjoying warm caches; find-or-create is safe here because
   acquire/commit paths are not hot relative to a simulation run. *)
let bump_digest t ~digest what =
  match t.inst with
  | None -> ()
  | Some i ->
    Metrics.incr
      (Metrics.counter i.i_metrics
         (Printf.sprintf "registry.digest.%s.%s" (digest_short digest) what))

(* Per-digest spilled-bytes gauge, SET from a recount over the digest's
   live entries on every change. Deliberately not maintained
   incrementally: a digest that is spilled, reloaded and re-spilled
   within one eviction pass would count its file twice under
   increment-on-spill, because the reload leaves the file (and its
   previously counted size) in place. The 1-byte-budget regression test
   in test/test_serve.ml pins this. *)
let sync_digest_spilled t ~digest =
  match t.inst with
  | None -> ()
  | Some i ->
    let total =
      Hashtbl.fold
        (fun (d, _) e acc ->
          if String.equal d digest && e.e_has_file then
            acc + e.e_file_bytes
          else acc)
        t.tbl 0
    in
    Metrics.set
      (Metrics.gauge i.i_metrics
         (Printf.sprintf "registry.digest.%s.spilled_bytes"
            (digest_short digest)))
      (float_of_int total)

let count_hit t ~digest =
  t.hits <- t.hits + 1;
  (match t.inst with Some i -> Metrics.incr i.c_hits | None -> ());
  bump_digest t ~digest "hits"

let count_miss t ~digest =
  t.misses <- t.misses + 1;
  (match t.inst with Some i -> Metrics.incr i.c_misses | None -> ());
  bump_digest t ~digest "misses"

(* Drop hot forms, least recently used first, until the hot footprint
   fits the budget. A hot cache with no up-to-date file is saved first
   (a spill); recorded work is never discarded. [keep] protects the
   entry being served right now. *)
let enforce_budget t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
    let over () = hot_bytes t > budget in
    while
      over ()
      &&
      let victim =
        Hashtbl.fold
          (fun _ e best ->
            let kept =
              match keep with Some k -> k == e | None -> false
            in
            if e.e_hot = None || kept then best
            else
              match best with
              | Some b when b.e_last_use <= e.e_last_use -> best
              | _ -> Some e)
          t.tbl None
      in
      match victim with
      | None -> false
      | Some e ->
        (match e.e_hot with
         | Some pc when not e.e_has_file -> (
           match t.program_of e.e_digest with
           | Some program ->
             Memo.Persist.Codec.save_file pc ~program e.e_file;
             e.e_has_file <- true;
             e.e_file_bytes <- file_size e.e_file;
             t.spills <- t.spills + 1;
             (match t.inst with Some i -> Metrics.incr i.c_spills | None -> ());
             sync_digest_spilled t ~digest:e.e_digest;
             Log.debug t.log ~event:"registry.spill"
               [ ("digest", J.Str (digest_short e.e_digest));
                 ("file_bytes", J.Int e.e_file_bytes) ]
           | None -> () (* no program to save against: drop the work *))
         | _ -> ());
        drop_hot t e;
        t.evictions <- t.evictions + 1;
        (match t.inst with Some i -> Metrics.incr i.c_evictions | None -> ());
        Log.debug t.log ~event:"registry.evict"
          [ ("digest", J.Str (digest_short e.e_digest));
            ("modeled_bytes", J.Int e.e_bytes);
            ("spilled", J.Bool e.e_has_file) ];
        true
    do
      ()
    done;
    sync_gauges t

let acquire t ~digest ~spec_key ~policy ~program =
  match Hashtbl.find_opt t.tbl (digest, spec_key) with
  | None ->
    count_miss t ~digest;
    None
  | Some e -> (
    touch t e;
    match e.e_hot with
    | Some pc ->
      count_hit t ~digest;
      e.e_hits <- e.e_hits + 1;
      Some pc
    | None ->
      if not e.e_has_file then begin
        count_miss t ~digest;
        None
      end
      else
        match
          (* Reload into the digest's shared chain store: rules dedupe
             against whatever other spec_keys of this program already
             interned. *)
          Memo.Persist.Codec.load_file ~policy
            ~store:(chain_store t ~digest) ~program e.e_file
        with
        | pc ->
          count_hit t ~digest;
          t.reloads <- t.reloads + 1;
          (match t.inst with Some i -> Metrics.incr i.c_reloads | None -> ());
          e.e_hits <- e.e_hits + 1;
          e.e_hot <- Some pc;
          bind_store t e pc;
          e.e_bytes <- (Memo.Pcache.counters pc).Memo.Pcache.modeled_bytes;
          Log.debug t.log ~event:"registry.reload"
            [ ("digest", J.Str (digest_short digest));
              ("modeled_bytes", J.Int e.e_bytes) ];
          enforce_budget t ~keep:(Some e);
          sync_gauges t;
          Some pc
        | exception _ ->
          (* corrupt or vanished spill: forget it and start cold *)
          (try Sys.remove e.e_file with Sys_error _ -> ());
          Hashtbl.remove t.tbl (digest, spec_key);
          sync_digest_spilled t ~digest;
          Log.warn t.log ~event:"registry.corrupt_spill"
            [ ("digest", J.Str (digest_short digest));
              ("file", J.Str e.e_file) ];
          count_miss t ~digest;
          sync_gauges t;
          None)

let commit_mem t ~digest ~spec_key pc =
  let e = entry t ~digest ~spec_key in
  touch t e;
  (* Replacing a different hot cache returns the old one's rule
     references first; recommitting the same cache must not. *)
  (match e.e_hot with
   | Some old when old == pc -> ()
   | _ -> drop_hot t e);
  e.e_hot <- Some pc;
  bind_store t e pc;
  e.e_bytes <- (Memo.Pcache.counters pc).Memo.Pcache.modeled_bytes;
  (* the live cache has moved past any previous spill *)
  if e.e_has_file then begin
    (try Sys.remove e.e_file with Sys_error _ -> ());
    e.e_has_file <- false;
    e.e_file_bytes <- 0;
    sync_digest_spilled t ~digest
  end;
  enforce_budget t ~keep:(Some e);
  sync_gauges t

let adopt t ~digest ~spec_key ~src ~bytes =
  let e = entry t ~digest ~spec_key in
  touch t e;
  (match Sys.rename src e.e_file with
   | () -> ()
   | exception Sys_error _ -> (
     (* Cross-filesystem (EXDEV): copy — but through a temp name in the
        registry dir, renamed only once complete, so a failure mid-copy
        can never leave a truncated file that [e_has_file] would then
        vouch for. *)
     let tmp = e.e_file ^ ".adopt" in
     try
       let ic = open_in_bin src in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let oc = open_out_bin tmp in
           (try
              let buf = Bytes.create 65536 in
              let rec pump () =
                let n = input ic buf 0 (Bytes.length buf) in
                if n > 0 then begin
                  output oc buf 0 n;
                  pump ()
                end
              in
              pump ();
              close_out oc
            with exn ->
              close_out_noerr oc;
              raise exn);
           Sys.rename tmp e.e_file);
       (try Sys.remove src with Sys_error _ -> ())
     with _ -> ( try Sys.remove tmp with Sys_error _ -> ())));
  if Sys.file_exists e.e_file then begin
    e.e_has_file <- true;
    e.e_bytes <- bytes;
    e.e_file_bytes <- file_size e.e_file;
    (* the file is newer than any hot copy the parent kept *)
    drop_hot t e;
    sync_digest_spilled t ~digest;
    Log.debug t.log ~event:"registry.adopt"
      [ ("digest", J.Str (digest_short digest));
        ("modeled_bytes", J.Int bytes);
        ("file_bytes", J.Int e.e_file_bytes) ]
  end;
  sync_gauges t

let entry_count t = Hashtbl.length t.tbl

let hits t = t.hits
let misses t = t.misses
let spills t = t.spills
let reloads t = t.reloads
let evictions t = t.evictions

let stats_json t =
  J.Obj
    [ ("entries", J.Int (entry_count t));
      ("hot_entries", J.Int (hot_count t));
      ("hot_bytes", J.Int (hot_bytes t));
      ("spilled_bytes", J.Int (spilled_bytes t));
      ("hits", J.Int t.hits);
      ("misses", J.Int t.misses);
      ("reloads", J.Int t.reloads);
      ("spills", J.Int t.spills);
      ("evictions", J.Int t.evictions);
      ("stores", J.Int (store_count t));
      ("store_refs", J.Int (store_refs t));
      ("store_rules", J.Int (store_rules t));
      ("store_bytes", J.Int (store_bytes t)) ]
