module J = Fastsim_obs.Json

type entry = {
  e_digest : string;
  e_spec_key : string;
  e_file : string;  (* fixed path in the registry dir; may not exist yet *)
  mutable e_hot : Memo.Pcache.t option;
  mutable e_has_file : bool;
  mutable e_bytes : int;     (* modeled bytes of the hot form *)
  mutable e_last_use : int;
  mutable e_hits : int;
}

type t = {
  dir : string;
  budget : int option;
  program_of : string -> Isa.Program.t option;
  tbl : (string * string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable reloads : int;
  mutable spills : int;
  mutable evictions : int;
}

let create ~dir ?budget_bytes ?(program_of = fun _ -> None) () =
  (match Unix.mkdir dir 0o700 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { dir; budget = budget_bytes; program_of; tbl = Hashtbl.create 16;
    tick = 0; hits = 0; misses = 0; reloads = 0; spills = 0; evictions = 0 }

let spec_key spec = J.to_string (Fastsim.Sim.Spec.to_json spec)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_last_use <- t.tick

let file_for t ~digest ~spec_key =
  Filename.concat t.dir
    (Printf.sprintf "%s-%s.pcache" digest
       (Digest.to_hex (Digest.string spec_key)))

let entry t ~digest ~spec_key =
  let key = (digest, spec_key) in
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e
  | None ->
    let e =
      { e_digest = digest; e_spec_key = spec_key;
        e_file = file_for t ~digest ~spec_key; e_hot = None;
        e_has_file = false; e_bytes = 0; e_last_use = 0; e_hits = 0 }
    in
    Hashtbl.add t.tbl key e;
    e

let hot_bytes t =
  Hashtbl.fold
    (fun _ e acc -> if e.e_hot <> None then acc + e.e_bytes else acc)
    t.tbl 0

(* Drop hot forms, least recently used first, until the hot footprint
   fits the budget. A hot cache with no up-to-date file is saved first
   (a spill); recorded work is never discarded. [keep] protects the
   entry being served right now. *)
let enforce_budget t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
    let over () = hot_bytes t > budget in
    while
      over ()
      &&
      let victim =
        Hashtbl.fold
          (fun _ e best ->
            let kept =
              match keep with Some k -> k == e | None -> false
            in
            if e.e_hot = None || kept then best
            else
              match best with
              | Some b when b.e_last_use <= e.e_last_use -> best
              | _ -> Some e)
          t.tbl None
      in
      match victim with
      | None -> false
      | Some e ->
        (match e.e_hot with
         | Some pc when not e.e_has_file -> (
           match t.program_of e.e_digest with
           | Some program ->
             Memo.Persist.save_file pc ~program e.e_file;
             e.e_has_file <- true;
             t.spills <- t.spills + 1
           | None -> () (* no program to save against: drop the work *))
         | _ -> ());
        e.e_hot <- None;
        t.evictions <- t.evictions + 1;
        true
    do
      ()
    done

let acquire t ~digest ~spec_key ~policy ~program =
  match Hashtbl.find_opt t.tbl (digest, spec_key) with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e -> (
    touch t e;
    match e.e_hot with
    | Some pc ->
      t.hits <- t.hits + 1;
      e.e_hits <- e.e_hits + 1;
      Some pc
    | None ->
      if not e.e_has_file then begin
        t.misses <- t.misses + 1;
        None
      end
      else
        match Memo.Persist.load_file ~policy ~program e.e_file with
        | pc ->
          t.hits <- t.hits + 1;
          t.reloads <- t.reloads + 1;
          e.e_hits <- e.e_hits + 1;
          e.e_hot <- Some pc;
          e.e_bytes <- (Memo.Pcache.counters pc).Memo.Pcache.modeled_bytes;
          enforce_budget t ~keep:(Some e);
          Some pc
        | exception _ ->
          (* corrupt or vanished spill: forget it and start cold *)
          (try Sys.remove e.e_file with Sys_error _ -> ());
          Hashtbl.remove t.tbl (digest, spec_key);
          t.misses <- t.misses + 1;
          None)

let commit_mem t ~digest ~spec_key pc =
  let e = entry t ~digest ~spec_key in
  touch t e;
  e.e_hot <- Some pc;
  e.e_bytes <- (Memo.Pcache.counters pc).Memo.Pcache.modeled_bytes;
  (* the live cache has moved past any previous spill *)
  if e.e_has_file then begin
    (try Sys.remove e.e_file with Sys_error _ -> ());
    e.e_has_file <- false
  end;
  enforce_budget t ~keep:(Some e)

let commit_file t ~digest ~spec_key ~src ~bytes =
  let e = entry t ~digest ~spec_key in
  touch t e;
  (match Sys.rename src e.e_file with
   | () -> ()
   | exception Sys_error _ -> (
     (* cross-filesystem: copy then remove *)
     try
       let ic = open_in_bin src in
       let oc = open_out_bin e.e_file in
       let buf = Bytes.create 65536 in
       let rec pump () =
         let n = input ic buf 0 (Bytes.length buf) in
         if n > 0 then begin
           output oc buf 0 n;
           pump ()
         end
       in
       pump ();
       close_in_noerr ic;
       close_out oc;
       Sys.remove src
     with _ -> ()));
  if Sys.file_exists e.e_file then begin
    e.e_has_file <- true;
    e.e_bytes <- bytes;
    (* the file is newer than any hot copy the parent kept *)
    e.e_hot <- None
  end

let entry_count t = Hashtbl.length t.tbl

let hot_count t =
  Hashtbl.fold (fun _ e n -> if e.e_hot <> None then n + 1 else n) t.tbl 0

let hits t = t.hits
let misses t = t.misses
let spills t = t.spills
let reloads t = t.reloads

let stats_json t =
  J.Obj
    [ ("entries", J.Int (entry_count t));
      ("hot_entries", J.Int (hot_count t));
      ("hot_bytes", J.Int (hot_bytes t));
      ("hits", J.Int t.hits);
      ("misses", J.Int t.misses);
      ("reloads", J.Int t.reloads);
      ("spills", J.Int t.spills);
      ("evictions", J.Int t.evictions) ]
