(** The simulation daemon (docs/SERVE.md).

    A single-threaded event loop over a listening socket: nonblocking
    accept/read/write multiplexed with [select], framed requests decoded
    incrementally ({!Proto.Decoder}), simulations dispatched to a bounded
    worker pool, responses streamed back as frames. One process owns one
    {!Registry.t}, so every request for a (program, spec) it has seen
    before starts from a warm p-action cache.

    Operational behaviour:
    - the request queue is bounded ([queue_max]); an overfull queue
      answers [overloaded] immediately — requests are never silently
      dropped;
    - per-request wall-clock timeouts ([timeout_s], Fork backend) kill
      the worker and answer [timeout];
    - [cancel] kills or dequeues a run and answers [cancelled];
    - SIGTERM/SIGINT (or a [shutdown] request) drain gracefully: running
      and queued work completes and is delivered, new work is refused
      with [shutting_down], then the daemon exits. *)

type backend = [ `Fleet | `Fork | `Inline ]
(** [`Fleet] (production, default): a fixed pool of [jobs] long-lived
    shard workers ({!Fleet}); requests route by program-digest affinity
    and warm caches stay inside their shard as live pointers — no
    per-request fork, no cache serialization on the hot path.
    [`Fork] (legacy baseline): one worker process per run — warm caches
    reach workers by fork-time copy-on-write and updated caches return
    as {!Memo.Persist} files adopted into the parent registry.
    [`Inline] (tests, debugging): runs execute synchronously inside the
    server process — deterministic, no parallelism, no timeout
    enforcement; the registry stays live in-process. *)

val backend_name : backend -> string

type config = {
  address : Proto.address;
  backend : backend;
  fleet_transport : Fleet.transport;
      (** [`Process] (default) or [`Domain] (OCaml 5 only; see
          {!Fleet}); ignored by the other backends. *)
  jobs : int;               (** shard workers (Fleet) / concurrent
                                worker processes (Fork). *)
  queue_max : int;          (** queued (not yet running) request bound. *)
  timeout_s : float;        (** per-run wall clock; 0 = unlimited. *)
  registry_budget : int option;
      (** hot-cache byte budget ({!Registry.create}). *)
  scratch_dir : string option;
      (** working directory for worker result files, registry persist
          files and the pcache handoff; default: a fresh private temp
          dir, removed at exit. *)
  allow_fault : bool;
      (** accept the test-only [fault] request field (crash/hang
          injection); keep [false] outside tests. *)
  quiet : bool;             (** suppress the startup/shutdown banner. *)
  log : Fastsim_obs.Log.t;
      (** structured JSONL log sink (default {!Fastsim_obs.Log.null});
          also installed as {!Fastsim_obs.Log.set_default} so worker-pool
          events land in the same stream. *)
  slow_trace_s : float;
      (** requests whose run wall clock reaches this many seconds dump
          their stitched Chrome trace to [trace_dir]; 0 (default)
          disables the dump. *)
  trace_dir : string option;
      (** where slow-request traces land (created if missing); default:
          the scratch dir. *)
  span_keep : int;
      (** how many recent request spans the telemetry ring buffers for
          [telemetry] frames with [trace=true] (default 2048). *)
  max_out_bytes : int;
      (** per-connection output backlog bound: a client that stops
          reading while this many bytes queue is a slow consumer and is
          closed (its backlog discarded) rather than allowed to grow the
          daemon's heap without bound. Default 64 MiB; [0] = unbounded. *)
}

val default_config : Proto.address -> config
(** Fleet backend over process workers, [jobs = 2], [queue_max = 64],
    no timeout, unbounded registry, temp scratch, faults refused, no
    logging, no slow-trace dumps.

    Observability (all strictly passive — simulation results are
    bit-identical with everything enabled): every accepted run gets a
    server-minted request id correlating its log lines and spans;
    spans cover queue wait, fork, worker-side engine run and pcache
    save, and the parent-side pcache commit; the shared metrics
    registry carries [serve.*] counters/gauges plus histograms
    [serve.{queue_wait_us,run_latency_us,frame_decode_us,
    replay_fraction_pct}] and the [registry.*] instruments
    ({!Registry.create}); the v1 [telemetry] frame exports all of it
    as one snapshot. *)

val run : config -> unit
(** Binds, listens, serves; returns after a graceful drain (signal or
    [shutdown] request). Raises [Unix.Unix_error] if the address cannot
    be bound. A pre-existing Unix socket path is replaced. *)
