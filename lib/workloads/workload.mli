(** Benchmark workloads.

    The paper evaluates FastSim on SPEC95. Without the SPEC sources or a
    SPARC toolchain, we substitute one synthetic SRISC kernel per SPEC95
    program, each built to exercise its namesake's {e dominant dynamic
    behaviour} — branch predictability, working-set size, pointer chasing,
    call depth, int/FP mix, long-latency operation density — because those
    are the properties memoization, branch prediction, and the cache model
    respond to (see DESIGN.md's substitution table). *)

type category = Integer | Floating

type t = {
  name : string;           (** SPEC-style name, e.g. ["099.go"]. *)
  short : string;          (** bare name, e.g. ["go"]. *)
  description : string;    (** what the kernel does and what it models. *)
  category : category;
  default_scale : int;     (** iteration parameter for a benchmark run. *)
  test_scale : int;        (** small parameter for unit tests. *)
  build : int -> Isa.Program.t;  (** scale -> program. *)
}

val make :
  name:string ->
  description:string ->
  category:category ->
  default_scale:int ->
  test_scale:int ->
  (int -> Isa.Program.t) ->
  t
(** [short] is derived from [name] by dropping the numeric prefix. *)
