(** Assembly shorthand shared by the workload kernels: one combinator per
    SRISC instruction (wrapping {!Isa.Asm.insn}), plus deterministic
    pseudo-random data generators for initial data segments. *)

include module type of Isa.Asm

module I = Isa.Instr

val addi : int -> int -> int -> stmt
val add : int -> int -> int -> stmt
val sub : int -> int -> int -> stmt
val and_ : int -> int -> int -> stmt
val or_ : int -> int -> int -> stmt
val xor : int -> int -> int -> stmt
val andi : int -> int -> int -> stmt
val ori : int -> int -> int -> stmt
val xori : int -> int -> int -> stmt
val slli : int -> int -> int -> stmt
val srli : int -> int -> int -> stmt
val srai : int -> int -> int -> stmt
val slt : int -> int -> int -> stmt
val mul : int -> int -> int -> stmt
val div : int -> int -> int -> stmt
val rem_ : int -> int -> int -> stmt

val lw : int -> int -> int -> stmt
(** [lw rd base off]. All memory combinators take (reg, base, offset). *)

val lb : int -> int -> int -> stmt
val lbu : int -> int -> int -> stmt
val lh : int -> int -> int -> stmt
val lhu : int -> int -> int -> stmt
val sw : int -> int -> int -> stmt
val sb : int -> int -> int -> stmt
val sh : int -> int -> int -> stmt
val fld : int -> int -> int -> stmt
val fsd : int -> int -> int -> stmt

val fadd : int -> int -> int -> stmt
val fsub : int -> int -> int -> stmt
val fmul : int -> int -> int -> stmt
val fdiv : int -> int -> int -> stmt
val fsqrt : int -> int -> stmt
val fneg : int -> int -> stmt
val fabs_ : int -> int -> stmt
val feq : int -> int -> int -> stmt
val flt : int -> int -> int -> stmt
val fle : int -> int -> int -> stmt
val cvt_if : int -> int -> stmt
val cvt_fi : int -> int -> stmt
val jr : int -> stmt

val sp : int
val ra : int

val init_sp : stmt
(** Points the stack pointer at the top of the stack region. *)

val lcg : ?seed:int -> int -> int list
(** [n] deterministic pseudo-random non-negative ints (< 2{^30}). *)

val lcg_mod : ?seed:int -> int -> int -> int list
val lcg_doubles : ?seed:int -> int -> float list
(** doubles in [0, 1). *)
