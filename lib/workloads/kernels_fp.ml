(* The ten SPEC95 floating-point kernels.

   Same register conventions as the integer kernels; FP registers f0-f9
   are temporaries, f10+ accumulate. All arrays are IEEE doubles. *)

open Dsl

(* Row-major index helpers used by the 2D kernels: arrays are n x n
   doubles, element (i,j) at base + 8*(i*n + j). *)

(* 101.tomcatv — vectorised mesh generation: repeated 5-point stencil
   sweeps over two 33x33 grids with a residual reduction. Regular,
   perfectly predictable control with FP add/mul chains. *)
let tomcatv ?(data_seed = 11) scale =
  let n = 33 in
  assemble
    [ data "gx" [ Doubles (lcg_doubles ~seed:data_seed (n * n)) ];
      data "gy" [ Doubles (lcg_doubles ~seed:(data_seed + 1) (n * n)) ];
      data "resid" [ Double 0.0 ];
      init_sp;
      la 1 "gx";
      la 2 "gy";
      li 10 0;
      li 11 scale;
      label "iter";
      li 12 1;            (* i *)
      li 13 (n - 1);
      label "row";
      li 14 1;            (* j *)
      label "col";
      (* addr = base + 8*(i*n + j) *)
      li 26 n;
      mul 3 12 26;
      add 3 3 14;
      slli 3 3 3;
      add 4 1 3;          (* &gx[i][j] *)
      add 5 2 3;          (* &gy[i][j] *)
      fld 0 4 0;
      fld 1 4 (-8);
      fld 2 4 8;
      fld 3 4 (-8 * n);
      fld 4 4 (8 * n);
      fadd 5 1 2;
      fadd 6 3 4;
      fadd 5 5 6;
      li 27 4;
      cvt_if 7 27;
      fdiv 5 5 7;
      fsub 6 5 0;         (* correction *)
      fadd 0 0 6;
      fsd 0 4 0;
      fld 1 5 0;
      fmul 1 1 5;
      fsd 1 5 0;
      addi 14 14 1;
      blt 14 13 "col";
      addi 12 12 1;
      blt 12 13 "row";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 102.swim — shallow-water model: three 33x33 grids updated with
   neighbour stencils in separate passes, exactly the
   stencil-over-multiple-arrays pattern of swim's U/V/P updates. *)
let swim scale =
  let n = 33 in
  let idx_setup =
    [ li 26 n ]
  in
  assemble
    ([ data "u" [ Doubles (lcg_doubles ~seed:21 (n * n)) ];
       data "v" [ Doubles (lcg_doubles ~seed:22 (n * n)) ];
       data "p" [ Doubles (lcg_doubles ~seed:23 (n * n)) ];
       init_sp;
       la 1 "u";
       la 2 "v";
       la 3 "p";
       li 10 0;
       li 11 scale;
       label "iter" ]
    @ idx_setup
    @ [ li 12 1;
        li 13 (n - 1);
        label "row";
        li 14 1;
        label "col";
        mul 4 12 26;
        add 4 4 14;
        slli 4 4 3;
        add 5 1 4;   (* &u *)
        add 6 2 4;   (* &v *)
        add 7 3 4;   (* &p *)
        fld 0 5 0;
        fld 1 6 0;
        fld 2 7 0;
        fld 3 7 8;
        fld 4 7 (-8);
        fsub 5 3 4;          (* dp/dx *)
        fmul 6 5 1;
        fadd 0 0 6;          (* u += v * dp/dx *)
        fsd 0 5 0;
        fld 3 7 (8 * n);
        fld 4 7 (-8 * n);
        fsub 5 3 4;
        fmul 6 5 0;
        fadd 1 1 6;          (* v += u * dp/dy *)
        fsd 1 6 0;
        fadd 5 0 1;
        fmul 5 5 2;
        fsd 5 7 0;           (* p = p * (u+v) *)
        addi 14 14 1;
        blt 14 13 "col";
        addi 12 12 1;
        blt 12 13 "row";
        addi 10 10 1;
        blt 10 11 "iter";
        halt ])

(* 103.su2cor — quantum field lattice: complex multiply-accumulate chains
   over paired (re,im) arrays with a global reduction, su2cor's gauge
   update in miniature. *)
let su2cor scale =
  let n = 512 in
  assemble
    [ data "a" [ Doubles (lcg_doubles ~seed:31 (2 * n)) ];
      data "b" [ Doubles (lcg_doubles ~seed:32 (2 * n)) ];
      data "acc" [ Doubles [ 0.0; 0.0 ] ];
      init_sp;
      la 1 "a";
      la 2 "b";
      li 10 0;
      li 11 scale;
      label "iter";
      li 12 0;
      li 13 n;
      fsub 10 10 10;  (* acc_re = 0 *)
      fsub 11 11 11;  (* acc_im = 0 *)
      label "site";
      slli 3 12 4;    (* 16 bytes per complex *)
      add 4 1 3;
      add 5 2 3;
      fld 0 4 0;      (* a.re *)
      fld 1 4 8;      (* a.im *)
      fld 2 5 0;      (* b.re *)
      fld 3 5 8;      (* b.im *)
      (* c = a * b (complex) *)
      fmul 4 0 2;
      fmul 5 1 3;
      fsub 6 4 5;     (* c.re *)
      fmul 4 0 3;
      fmul 5 1 2;
      fadd 7 4 5;     (* c.im *)
      fsd 6 4 0;      (* a <- c *)
      fsd 7 4 8;
      fadd 10 10 6;
      fadd 11 11 7;
      addi 12 12 1;
      blt 12 13 "site";
      la 3 "acc";
      fsd 10 3 0;
      fsd 11 3 8;
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 104.hydro2d — hydrodynamics: stencil sweeps whose inner loop divides by
   a neighbour expression, making the non-pipelined FP divider the
   bottleneck, as in hydro2d's flux computations. *)
let hydro2d scale =
  let n = 33 in
  assemble
    [ data "rho" [ Doubles (List.map (fun x -> x +. 0.5) (lcg_doubles ~seed:41 (n * n))) ];
      data "flux" [ Doubles (lcg_doubles ~seed:42 (n * n)) ];
      init_sp;
      la 1 "rho";
      la 2 "flux";
      li 10 0;
      li 11 scale;
      label "iter";
      li 26 n;
      li 12 1;
      li 13 (n - 1);
      label "row";
      li 14 1;
      label "col";
      mul 3 12 26;
      add 3 3 14;
      slli 3 3 3;
      add 4 1 3;
      add 5 2 3;
      fld 0 4 0;
      fld 1 4 8;
      fld 2 4 (-8);
      fadd 3 1 2;
      fdiv 4 0 3;    (* rho / (left + right): the divider chain *)
      fld 5 5 0;
      fadd 5 5 4;
      fsd 5 5 0;
      addi 14 14 1;
      blt 14 13 "col";
      addi 12 12 1;
      blt 12 13 "row";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 107.mgrid — multigrid solver: 3D 7-point stencil applied at two
   resolutions (unit and doubled stride), the strided-access pattern that
   gives mgrid its long, perfectly regular loops. *)
let mgrid scale =
  let n = 17 in
  let plane = n * n in
  assemble
    [ data "grid" [ Doubles (lcg_doubles ~seed:51 (n * n * n)) ];
      init_sp;
      la 1 "grid";
      li 10 0;
      li 11 scale;
      label "iter";
      (* fine sweep: stride 1 *)
      li 15 1;         (* stride *)
      call "sweep";
      (* coarse sweep: stride 2 *)
      li 15 2;
      call "sweep";
      addi 10 10 1;
      blt 10 11 "iter";
      halt;
      (* sweep(r15=stride): 7-point stencil over interior points with the
         given stride. clobbers r2-r9, r12-r14, f0-f8. *)
      label "sweep";
      add 12 15 0;     (* k = stride *)
      li 9 (n - 1);
      label "sk";
      add 13 15 0;     (* i *)
      label "si";
      add 14 15 0;     (* j *)
      label "sj";
      (* addr = base + 8*(k*plane + i*n + j) *)
      li 26 plane;
      mul 2 12 26;
      li 26 n;
      mul 3 13 26;
      add 2 2 3;
      add 2 2 14;
      slli 2 2 3;
      add 4 1 2;
      fld 0 4 0;
      fld 1 4 8;
      fld 2 4 (-8);
      fld 3 4 (8 * n);
      fld 4 4 (-8 * n);
      fld 5 4 (8 * plane);
      fld 6 4 (-8 * plane);
      fadd 1 1 2;
      fadd 3 3 4;
      fadd 5 5 6;
      fadd 1 1 3;
      fadd 1 1 5;
      li 27 6;
      cvt_if 7 27;
      fdiv 1 1 7;
      fadd 0 0 1;
      li 27 2;
      cvt_if 7 27;
      fdiv 0 0 7;
      fsd 0 4 0;
      add 14 14 15;
      blt 14 9 "sj";
      add 13 13 15;
      blt 13 9 "si";
      add 12 12 15;
      blt 12 9 "sk";
      ret ]

(* 110.applu — LU decomposition of many small dense systems: triangular
   elimination loops with a divide per pivot, applu's block-solve core. *)
let applu scale =
  let m = 6 in
  (* several 6x6 matrices, regenerated per pass from a template *)
  assemble
    [ data "template" [ Doubles (List.map (fun x -> x +. 1.0) (lcg_doubles ~seed:61 (m * m))) ];
      data "work" [ Space (8 * m * m) ];
      init_sp;
      la 1 "template";
      la 2 "work";
      li 10 0;
      li 11 scale;
      label "iter";
      (* copy template into work *)
      li 12 0;
      li 13 (m * m);
      label "copy";
      slli 3 12 3;
      add 4 1 3;
      add 5 2 3;
      fld 0 4 0;
      fsd 0 5 0;
      addi 12 12 1;
      blt 12 13 "copy";
      (* in-place LU without pivoting *)
      li 12 0;          (* pivot k *)
      li 13 m;
      label "pivot";
      li 26 m;
      mul 3 12 26;
      add 3 3 12;
      slli 3 3 3;
      add 4 2 3;        (* &work[k][k] *)
      fld 0 4 0;        (* pivot value *)
      addi 14 12 1;     (* row i = k+1 *)
      label "elim_row";
      bge 14 13 "pivot_next";
      mul 3 14 26;
      add 3 3 12;
      slli 3 3 3;
      add 5 2 3;        (* &work[i][k] *)
      fld 1 5 0;
      fdiv 2 1 0;       (* multiplier *)
      fsd 2 5 0;
      addi 15 12 1;     (* col j = k+1 *)
      label "elim_col";
      bge 15 13 "elim_row_next";
      mul 3 14 26;
      add 3 3 15;
      slli 3 3 3;
      add 6 2 3;        (* &work[i][j] *)
      mul 3 12 26;
      add 3 3 15;
      slli 3 3 3;
      add 7 2 3;        (* &work[k][j] *)
      fld 3 6 0;
      fld 4 7 0;
      fmul 5 2 4;
      fsub 3 3 5;
      fsd 3 6 0;
      addi 15 15 1;
      j "elim_col";
      label "elim_row_next";
      addi 14 14 1;
      j "elim_row";
      label "pivot_next";
      addi 12 12 1;
      blt 12 13 "pivot";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 125.turb3d — turbulence: FFT-style butterfly passes over a
   power-of-two array with halving strides, turb3d's transform phase.
   Strided loads with mul/add twiddles and log-n loop structure. *)
let turb3d scale =
  let n = 256 in
  assemble
    [ data "re" [ Doubles (lcg_doubles ~seed:71 n) ];
      data "im" [ Doubles (lcg_doubles ~seed:72 n) ];
      data "twiddle" [ Double 0.92387953 ];
      init_sp;
      la 1 "re";
      la 2 "im";
      la 3 "twiddle";
      fld 8 3 0;
      li 10 0;
      li 11 scale;
      label "iter";
      li 15 (n / 2);  (* stride, halves each pass *)
      label "pass";
      li 12 0;        (* base index *)
      label "group";
      add 13 12 0;    (* j = base *)
      label "bfly";
      slli 3 13 3;
      add 4 1 3;      (* &re[j] *)
      add 5 2 3;      (* &im[j] *)
      slli 6 15 3;
      add 7 4 6;      (* &re[j+stride] *)
      add 8 5 6;      (* &im[j+stride] *)
      fld 0 4 0;
      fld 1 7 0;
      fld 2 5 0;
      fld 3 8 0;
      fadd 4 0 1;
      fsub 5 0 1;
      fadd 6 2 3;
      fsub 7 2 3;
      (* twiddle the low outputs by 0.92387953 (stand-in constant) *)
      fmul 5 5 8;
      fmul 7 7 8;
      fsd 4 4 0;
      fsd 5 7 0;
      fsd 6 5 0;
      fsd 7 8 0;
      addi 13 13 1;
      add 9 12 15;
      blt 13 9 "bfly";
      slli 9 15 1;
      add 12 12 9;
      li 26 n;
      blt 12 26 "group";
      srli 15 15 1;
      bne 15 0 "pass";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 141.apsi — mesoscale weather: per-column physics with a Horner-series
   evaluation (a tight dependent FP chain), a conditional threshold
   branch, and a divide — apsi's mix of dependence-limited FP and
   data-driven decisions. *)
let apsi scale =
  let cols = 64 and levels = 16 in
  assemble
    [ data "field" [ Doubles (lcg_doubles ~seed:81 (cols * levels)) ];
      data "coef" [ Doubles [ 0.25; -0.5; 0.125; 1.0; -0.0625 ] ];
      init_sp;
      la 1 "field";
      la 2 "coef";
      fld 10 2 0;
      fld 11 2 8;
      fld 12 2 16;
      fld 13 2 24;
      fld 14 2 32;
      li 10 0;
      li 11 scale;
      label "iter";
      li 12 0;
      li 13 cols;
      label "column";
      li 14 0;
      li 15 levels;
      label "level";
      li 26 levels;
      mul 3 12 26;
      add 3 3 14;
      slli 3 3 3;
      add 4 1 3;
      fld 0 4 0;      (* x *)
      (* Horner: s = (((c4*x + c3)*x + c2)*x + c1)*x + c0 *)
      fmul 1 14 0;
      fadd 1 1 13;
      fmul 1 1 0;
      fadd 1 1 12;
      fmul 1 1 0;
      fadd 1 1 11;
      fmul 1 1 0;
      fadd 1 1 10;
      (* threshold: if s < 0.5 then damp by half, else normalise by x+1 *)
      li 27 1;
      cvt_if 2 27;
      fadd 3 0 2;
      li 27 2;
      cvt_if 4 27;
      fdiv 5 1 4;
      flt 5 1 5;      (* reuses r5 as int flag *)
      beq 5 0 "norm";
      fdiv 1 1 4;
      j "store";
      label "norm";
      fdiv 1 1 3;
      label "store";
      fsd 1 4 0;
      addi 14 14 1;
      blt 14 15 "level";
      addi 12 12 1;
      blt 12 13 "column";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]

(* 145.fpppp — electron integrals: very long straight-line basic blocks of
   dense FP arithmetic with divides and square roots and almost no
   branches — fpppp's famous block structure, which stresses the FP
   pipelines rather than prediction. *)
let fpppp scale =
  let n = 128 in
  let block off =
    (* one unrolled "integral": 4 loads, a dense expression dag with
       div/sqrt, 2 stores *)
    [ fld 0 4 (16 * off);
      fld 1 4 ((16 * off) + 8);
      fld 2 5 (16 * off);
      fld 3 5 ((16 * off) + 8);
      fmul 4 0 2;
      fmul 5 1 3;
      fadd 6 4 5;
      fmul 4 0 3;
      fmul 5 1 2;
      fsub 7 4 5;
      fmul 4 6 6;
      fmul 5 7 7;
      fadd 4 4 5;
      fsqrt 8 4;
      fadd 8 8 6;
      fdiv 9 7 8;
      fadd 6 6 9;
      fsd 6 4 (16 * off);
      fsd 9 4 ((16 * off) + 8) ]
  in
  assemble
    ([ data "orb1" [ Doubles (List.map (fun x -> x +. 1.0) (lcg_doubles ~seed:91 n)) ];
       data "orb2" [ Doubles (List.map (fun x -> x +. 1.0) (lcg_doubles ~seed:92 n)) ];
       init_sp;
       la 1 "orb1";
       la 2 "orb2";
       li 10 0;
       li 11 scale;
       label "iter";
       li 12 0;
       li 13 (n / 16) ]
    @ [ label "chunk";
        slli 3 12 7;
        add 4 1 3;
        add 5 2 3 ]
    @ List.concat_map block [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    @ [ addi 12 12 1;
        blt 12 13 "chunk";
        addi 10 10 1;
        blt 10 11 "iter";
        halt ])

(* 146.wave5 — particle-in-cell plasma: gather field values at particle
   positions through computed indices, update velocities/positions, and
   scatter charge back — the indexed gather/scatter that dominates
   wave5. *)
let wave5 scale =
  let particles = 512 and gridn = 256 in
  assemble
    [ data "pos" [ Doubles (List.map (fun x -> x *. 250.0) (lcg_doubles ~seed:93 particles)) ];
      data "vel" [ Doubles (lcg_doubles ~seed:94 particles) ];
      data "efield" [ Doubles (lcg_doubles ~seed:95 gridn) ];
      data "charge" [ Space (8 * gridn) ];
      init_sp;
      la 1 "pos";
      la 2 "vel";
      la 3 "efield";
      la 4 "charge";
      li 10 0;
      li 11 scale;
      label "iter";
      li 12 0;
      li 13 particles;
      label "particle";
      slli 5 12 3;
      add 6 1 5;       (* &pos[i] *)
      add 7 2 5;       (* &vel[i] *)
      fld 0 6 0;
      cvt_fi 8 0;      (* cell index *)
      andi 8 8 (gridn - 1);
      slli 8 8 3;
      add 9 3 8;
      fld 1 9 0;       (* gathered field *)
      fld 2 7 0;
      fadd 2 2 1;      (* vel += E *)
      fsd 2 7 0;
      fadd 0 0 2;      (* pos += vel *)
      fabs_ 0 0;
      fsd 0 6 0;
      (* scatter charge *)
      cvt_fi 8 0;
      andi 8 8 (gridn - 1);
      slli 8 8 3;
      add 9 4 8;
      fld 3 9 0;
      li 27 1;
      cvt_if 4 27;
      fadd 3 3 4;
      fsd 3 9 0;
      addi 12 12 1;
      blt 12 13 "particle";
      addi 10 10 1;
      blt 10 11 "iter";
      halt ]
