type category = Integer | Floating

type t = {
  name : string;
  short : string;
  description : string;
  category : category;
  default_scale : int;
  test_scale : int;
  build : int -> Isa.Program.t;
}

let make ~name ~description ~category ~default_scale ~test_scale build =
  let short =
    match String.index_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  { name; short; description; category; default_scale; test_scale; build }
