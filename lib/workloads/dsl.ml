(* Shared assembly shorthand for the workload kernels. *)

include Isa.Asm
module I = Isa.Instr

let addi rd rs v = insn (I.Alui (I.Add, rd, rs, v))
let add rd a b = insn (I.Alu (I.Add, rd, a, b))
let sub rd a b = insn (I.Alu (I.Sub, rd, a, b))
let and_ rd a b = insn (I.Alu (I.And, rd, a, b))
let or_ rd a b = insn (I.Alu (I.Or, rd, a, b))
let xor rd a b = insn (I.Alu (I.Xor, rd, a, b))
let andi rd rs v = insn (I.Alui (I.And, rd, rs, v))
let ori rd rs v = insn (I.Alui (I.Or, rd, rs, v))
let xori rd rs v = insn (I.Alui (I.Xor, rd, rs, v))
let slli rd rs v = insn (I.Alui (I.Sll, rd, rs, v))
let srli rd rs v = insn (I.Alui (I.Srl, rd, rs, v))
let srai rd rs v = insn (I.Alui (I.Sra, rd, rs, v))
let slt rd a b = insn (I.Alu (I.Slt, rd, a, b))
let mul rd a b = insn (I.Mul (rd, a, b))
let div rd a b = insn (I.Div (rd, a, b))
let rem_ rd a b = insn (I.Rem (rd, a, b))
let lw rd base off = insn (I.Load (I.Lw, rd, base, off))
let lb rd base off = insn (I.Load (I.Lb, rd, base, off))
let lbu rd base off = insn (I.Load (I.Lbu, rd, base, off))
let lh rd base off = insn (I.Load (I.Lh, rd, base, off))
let lhu rd base off = insn (I.Load (I.Lhu, rd, base, off))
let sw rs base off = insn (I.Store (I.Sw, rs, base, off))
let sb rs base off = insn (I.Store (I.Sb, rs, base, off))
let sh rs base off = insn (I.Store (I.Sh, rs, base, off))
let fld fd base off = insn (I.Fload (fd, base, off))
let fsd fs base off = insn (I.Fstore (fs, base, off))
let fadd fd a b = insn (I.Fop (I.Fadd, fd, a, b))
let fsub fd a b = insn (I.Fop (I.Fsub, fd, a, b))
let fmul fd a b = insn (I.Fop (I.Fmul, fd, a, b))
let fdiv fd a b = insn (I.Fop (I.Fdiv, fd, a, b))
let fsqrt fd a = insn (I.Fop (I.Fsqrt, fd, a, a))
let fneg fd a = insn (I.Fop (I.Fneg, fd, a, a))
let fabs_ fd a = insn (I.Fop (I.Fabs, fd, a, a))
let feq rd a b = insn (I.Fcmp (I.Feq, rd, a, b))
let flt rd a b = insn (I.Fcmp (I.Flt, rd, a, b))
let fle rd a b = insn (I.Fcmp (I.Fle, rd, a, b))
let cvt_if fd rs = insn (I.Fcvt_if (fd, rs))
let cvt_fi rd fs = insn (I.Fcvt_fi (rd, fs))
let jr rs = insn (I.Jr rs)
let sp = Isa.Reg.sp
let ra = Isa.Reg.link
let init_sp = li sp Isa.Program.default_stack_top

(* Deterministic pseudo-random data for the kernels' initial segments. *)
let lcg ?(seed = 123456789) n =
  let s = ref seed in
  List.init n (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3fffffff;
      !s)

let lcg_mod ?seed n m = List.map (fun v -> v mod m) (lcg ?seed n)

let lcg_doubles ?seed n =
  List.map (fun v -> float_of_int (v land 0xffff) /. 65536.0) (lcg ?seed n)
