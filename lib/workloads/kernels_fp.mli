(** The ten SPEC95 floating-point kernels (see {!Suite} for descriptions
    and calibrated scales; each builder takes an iteration count and
    returns a program that halts). [?data_seed] varies initial data without
    changing code (see {!Kernels_int}). *)

val tomcatv : ?data_seed:int -> int -> Isa.Program.t
val swim : int -> Isa.Program.t
val su2cor : int -> Isa.Program.t
val hydro2d : int -> Isa.Program.t
val mgrid : int -> Isa.Program.t
val applu : int -> Isa.Program.t
val turb3d : int -> Isa.Program.t
val apsi : int -> Isa.Program.t
val fpppp : int -> Isa.Program.t
val wave5 : int -> Isa.Program.t
