let w = Workload.make

let all =
  [ w ~name:"099.go" ~category:Workload.Integer ~default_scale:640
      ~test_scale:2
      ~description:
        "board-position evaluator: branchy neighbour scans over a 19x19 \
         board with occasional mutations"
      (fun scale -> Kernels_int.go scale);
    w ~name:"124.m88ksim" ~category:Workload.Integer ~default_scale:2800
      ~test_scale:4
      ~description:
        "CPU-simulator dispatch loop: opcode fetch and jump-table handlers \
         updating a simulated register file"
      Kernels_int.m88ksim;
    w ~name:"126.gcc" ~category:Workload.Integer ~default_scale:300
      ~test_scale:2
      ~description:
        "compiler-style tree work: binary-search-tree build plus repeated \
         called lookups with irregular branching"
      Kernels_int.gcc;
    w ~name:"129.compress" ~category:Workload.Integer ~default_scale:7
      ~test_scale:2
      ~description:
        "LZW-style compression: byte-stream hashing into a probed code \
         table with collision loops"
      (fun scale -> Kernels_int.compress scale);
    w ~name:"130.li" ~category:Workload.Integer ~default_scale:1700
      ~test_scale:3
      ~description:
        "lisp-interpreter heart: cons-cell list building and deeply \
         recursive reduction with real stack frames"
      Kernels_int.li_kernel;
    w ~name:"132.ijpeg" ~category:Workload.Integer ~default_scale:450
      ~test_scale:2
      ~description:
        "image coding: 8x8 integer transform butterflies with \
         multiply/shift and periodic quantisation divides"
      Kernels_int.ijpeg;
    w ~name:"134.perl" ~category:Workload.Integer ~default_scale:6500
      ~test_scale:5
      ~description:
        "stack-machine interpreter: jump-table bytecode dispatch, memory \
         operand stack, hashed variable table"
      Kernels_int.perl;
    w ~name:"147.vortex" ~category:Workload.Integer ~default_scale:20
      ~test_scale:1
      ~description:
        "object database: chained lookups and field updates over 64 KB of \
         records through a shuffled index"
      Kernels_int.vortex;
    w ~name:"101.tomcatv" ~category:Workload.Floating ~default_scale:100
      ~test_scale:2
      ~description:
        "mesh generation: 5-point stencil sweeps over two grids with \
         an averaging correction"
      (fun scale -> Kernels_fp.tomcatv scale);
    w ~name:"102.swim" ~category:Workload.Floating ~default_scale:100
      ~test_scale:2
      ~description:
        "shallow-water model: neighbour stencils over three coupled grids"
      Kernels_fp.swim;
    w ~name:"103.su2cor" ~category:Workload.Floating ~default_scale:260
      ~test_scale:3
      ~description:
        "lattice field theory: complex multiply-accumulate chains with a \
         global reduction"
      Kernels_fp.su2cor;
    w ~name:"104.hydro2d" ~category:Workload.Floating ~default_scale:170
      ~test_scale:2
      ~description:
        "hydrodynamics: stencil sweeps bottlenecked on the non-pipelined \
         FP divider"
      Kernels_fp.hydro2d;
    w ~name:"107.mgrid" ~category:Workload.Floating ~default_scale:22
      ~test_scale:1
      ~description:
        "multigrid solver: 3D 7-point stencil at two resolutions with \
         strided access"
      Kernels_fp.mgrid;
    w ~name:"110.applu" ~category:Workload.Floating ~default_scale:1800
      ~test_scale:5
      ~description:
        "LU block solver: triangular elimination loops with a divide per \
         pivot"
      Kernels_fp.applu;
    w ~name:"125.turb3d" ~category:Workload.Floating ~default_scale:100
      ~test_scale:2
      ~description:
        "turbulence transform: FFT-style butterfly passes with halving \
         strides"
      Kernels_fp.turb3d;
    w ~name:"141.apsi" ~category:Workload.Floating ~default_scale:95
      ~test_scale:4
      ~description:
        "mesoscale weather: Horner-series column physics with threshold \
         branches and divides"
      Kernels_fp.apsi;
    w ~name:"145.fpppp" ~category:Workload.Floating ~default_scale:2000
      ~test_scale:5
      ~description:
        "electron integrals: very long straight-line FP blocks with \
         divides and square roots, almost branch-free"
      Kernels_fp.fpppp;
    w ~name:"146.wave5" ~category:Workload.Floating ~default_scale:190
      ~test_scale:3
      ~description:
        "particle-in-cell plasma: indexed gather/scatter between particles \
         and a field grid"
      Kernels_fp.wave5 ]

let integer =
  List.filter (fun w -> w.Workload.category = Workload.Integer) all

let floating =
  List.filter (fun w -> w.Workload.category = Workload.Floating) all

let find name =
  match
    List.find_opt
      (fun w -> String.equal w.Workload.name name
                || String.equal w.Workload.short name)
      all
  with
  | Some w -> w
  | None -> raise Not_found

let names () = List.map (fun w -> w.Workload.name) all
