(** The full benchmark suite: one kernel per SPEC95 program the paper
    evaluates (Tables 2–5), in the paper's order. *)

val all : Workload.t list
(** The 18 workloads: 8 integer, 10 floating point. *)

val integer : Workload.t list
val floating : Workload.t list

val find : string -> Workload.t
(** Look up by full name ("099.go") or short name ("go").
    Raises [Not_found]. *)

val names : unit -> string list
