(* The eight SPEC95 integer kernels.

   Register conventions within kernels: r1-r9 addresses and short-lived
   temporaries, r10-r19 loop counters and bounds, r20-r25 accumulators and
   long-lived values, r26-r29 scratch. Results end in r20 (and a [result]
   data word) so engines can be cross-checked. *)

open Dsl

(* 099.go — board-scanning position evaluator: a 19x19 board of
   {empty,black,white}, swept repeatedly with data-dependent neighbour
   comparisons and occasional board mutations. Dominated by poorly
   predictable branches over a small working set, like go's evaluator. *)
let go ?(data_seed = 123456789) scale =
  assemble
    ([ data "board" [ Words (lcg_mod ~seed:data_seed 361 3) ];
       data "result" [ Word 0 ];
       init_sp;
       la 1 "board";
       li 10 0;
       li 11 scale;
       li 20 0;
       label "iter" ]
    @ [ li 12 1;
        li 13 360;
        label "pos";
        slli 2 12 2;
        add 3 1 2;
        lw 4 3 0;
        beq 4 0 "skip";
        lw 5 3 (-4);
        bne 5 4 "no_left";
        addi 20 20 1;
        label "no_left";
        lw 6 3 4;
        bne 6 4 "no_right";
        addi 20 20 2;
        label "no_right";
        add 7 12 10;
        andi 7 7 15;
        bne 7 0 "skip";
        (* claim the point: flip the cell to (cell xor 3) *)
        xori 8 4 3;
        sw 8 3 0;
        label "skip";
        addi 12 12 1;
        blt 12 13 "pos";
        addi 10 10 1;
        blt 10 11 "iter";
        la 2 "result";
        sw 20 2 0;
        halt ])

(* 124.m88ksim — a processor simulator simulating: fetches synthetic
   opcodes from an instruction array and dispatches through a jump table
   of eight handlers that update a simulated register file. Exercises
   indirect jumps with a stable, learnable target stream. *)
let m88ksim scale =
  let handler n body =
    [ label (Printf.sprintf "h%d" n) ] @ body @ [ j "next" ]
  in
  assemble
    ([ data "iprog" [ Words (lcg_mod ~seed:7 64 8) ];
       data "handlers"
         [ Label_words [ "h0"; "h1"; "h2"; "h3"; "h4"; "h5"; "h6"; "h7" ] ];
       data "mregs" [ Words (lcg 16) ];
       data "result" [ Word 0 ];
       init_sp;
       la 1 "iprog";
       la 2 "handlers";
       la 3 "mregs";
       li 10 0;
       li 11 scale;
       label "iter";
       li 12 0;
       li 13 64;
       label "fetch";
       slli 4 12 2;
       add 4 1 4;
       lw 5 4 0;
       slli 6 5 2;
       add 6 2 6;
       lw 7 6 0;
       jr 7 ]
    @ handler 0 [ lw 8 3 0; lw 9 3 4; add 8 8 9; sw 8 3 0 ]
    @ handler 1 [ lw 8 3 8; lw 9 3 12; xor 8 8 9; sw 8 3 8 ]
    @ handler 2 [ lw 8 3 16; srli 8 8 1; sw 8 3 16 ]
    @ handler 3 [ lw 8 3 20; lw 9 3 24; mul 8 8 9; sw 8 3 20 ]
    @ handler 4 [ lw 8 3 28; addi 8 8 13; sw 8 3 28 ]
    @ handler 5 [ lw 8 3 32; lw 9 3 36; sub 8 8 9; sw 8 3 32 ]
    @ handler 6 [ lw 8 3 40; slli 8 8 2; ori 8 8 5; sw 8 3 40 ]
    @ handler 7 [ lw 8 3 44; lw 9 3 0; and_ 8 8 9; sw 8 3 44 ]
    @ [ label "next";
        addi 12 12 1;
        blt 12 13 "fetch";
        addi 10 10 1;
        blt 10 11 "iter";
        lw 20 3 0;
        la 2 "result";
        sw 20 2 0;
        halt ])

(* 126.gcc — compiler-style irregular control: builds a binary search tree
   in an arena, then performs repeated keyed lookups through a called
   function. Irregular branches, call/return traffic, and pointer
   chasing over a growing structure. *)
let gcc scale =
  assemble
    ([ data "arena" [ Space (16 * 512) ];
       data "keys" [ Words (lcg_mod ~seed:31 128 10_000) ];
       data "result" [ Word 0 ];
       init_sp;
       la 20 "arena";  (* arena base *)
       li 21 1;        (* node count; node 0 is the root *)
       la 22 "keys";
       (* root node holds keys[0] *)
       lw 4 22 0;
       sw 4 20 0;
       (* insert keys[1..127] *)
       li 12 1;
       li 13 128;
       label "ins_next";
       slli 2 12 2;
       add 2 22 2;
       lw 4 2 0;
       call "insert";
       addi 12 12 1;
       blt 12 13 "ins_next";
       (* lookup phase: scale passes over all keys plus probes *)
       li 10 0;
       li 11 scale;
       li 23 0;        (* hit counter *)
       label "iter";
       li 12 0;
       li 13 128;
       label "look_next";
       slli 2 12 2;
       add 2 22 2;
       lw 4 2 0;
       (* also probe a near-miss key to take the not-found path *)
       add 4 4 10;
       call "find";
       add 23 23 5;
       addi 12 12 1;
       blt 12 13 "look_next";
       addi 10 10 1;
       blt 10 11 "iter";
       la 2 "result";
       sw 23 2 0;
       add 20 23 0;
       halt;
       (* insert(r4=key): iterative BST insert into the arena.
          clobbers r5-r9. *)
       label "insert";
       add 5 20 0;  (* cur = root *)
       label "ins_loop";
       lw 6 5 0;
       beq 4 6 "ins_done";
       blt 4 6 "ins_left";
       lw 7 5 8;    (* right child *)
       bne 7 0 "ins_right_walk";
       (* allocate node for right *)
       slli 8 21 4;
       add 8 20 8;
       sw 4 8 0;
       sw 8 5 8;
       addi 21 21 1;
       j "ins_done";
       label "ins_right_walk";
       add 5 7 0;
       j "ins_loop";
       label "ins_left";
       lw 7 5 4;    (* left child *)
       bne 7 0 "ins_left_walk";
       slli 8 21 4;
       add 8 20 8;
       sw 4 8 0;
       sw 8 5 4;
       addi 21 21 1;
       j "ins_done";
       label "ins_left_walk";
       add 5 7 0;
       j "ins_loop";
       label "ins_done";
       ret;
       (* find(r4=key) -> r5 in {0,1}; clobbers r6-r8. *)
       label "find";
       add 6 20 0;
       label "find_loop";
       beq 6 0 "find_miss";
       lw 7 6 0;
       beq 4 7 "find_hit";
       blt 4 7 "find_left";
       lw 6 6 8;
       j "find_loop";
       label "find_left";
       lw 6 6 4;
       j "find_loop";
       label "find_hit";
       li 5 1;
       ret;
       label "find_miss";
       li 5 0;
       ret ])

(* 129.compress — LZW-flavoured byte compression: hashes input bytes into
   a probed code table with data-dependent collision loops and byte-wide
   loads, like compress's table-driven core. *)
let compress ?(data_seed = 99) scale =
  let input_bytes = lcg_mod ~seed:data_seed 4096 256 in
  let packed =
    (* pack 4 bytes per word, little endian *)
    let rec go = function
      | a :: b :: c :: d :: rest ->
        (a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)) :: go rest
      | [] -> []
      | rest -> [ List.fold_left (fun acc v -> (acc lsl 8) lor v) 0 rest ]
    in
    go input_bytes
  in
  assemble
    [ data "input" [ Words packed ];
      data "table" [ Space (4 * 4096) ];
      data "result" [ Word 0 ];
      init_sp;
      la 1 "input";
      la 2 "table";
      li 10 0;
      li 11 scale;
      li 20 0;  (* emitted codes *)
      label "iter";
      li 12 0;
      li 13 4096;
      li 21 0;  (* rolling hash *)
      label "byte";
      add 3 1 12;
      lbu 4 3 0;
      (* h = (h*31 + c) & 4095 *)
      slli 5 21 5;
      sub 5 5 21;
      add 5 5 4;
      andi 21 5 4095;
      (* probe the table *)
      add 6 21 0;
      addi 7 4 1;  (* value = c+1, never 0 *)
      label "probe";
      slli 8 6 2;
      add 8 2 8;
      lw 9 8 0;
      beq 9 0 "miss";
      beq 9 7 "hit";
      addi 6 6 1;
      andi 6 6 4095;
      j "probe";
      label "miss";
      sw 7 8 0;
      addi 20 20 1;
      j "byte_done";
      label "hit";
      addi 20 20 2;
      label "byte_done";
      addi 12 12 1;
      blt 12 13 "byte";
      addi 10 10 1;
      blt 10 11 "iter";
      la 2 "result";
      sw 20 2 0;
      halt ]

(* 130.li — lisp-interpreter heart: cons cells in an arena, a list build,
   and a deeply recursive sum with stack frames — call/return-heavy with
   pointer chasing, like xlisp's evaluator. *)
let li_kernel scale =
  assemble
    [ data "cells" [ Space (8 * 256) ];
      data "vals" [ Words (lcg_mod ~seed:17 64 1000) ];
      data "result" [ Word 0 ];
      init_sp;
      la 20 "cells";
      la 22 "vals";
      li 10 0;
      li 11 scale;
      li 23 0;
      label "iter";
      (* build a fresh 64-element list (arena reset each pass) *)
      li 21 0;   (* cell count *)
      li 24 0;   (* head = nil *)
      li 12 0;
      li 13 64;
      label "build";
      slli 2 12 2;
      add 2 22 2;
      lw 4 2 0;            (* value *)
      slli 5 21 3;
      add 5 20 5;          (* new cell *)
      sw 4 5 0;            (* car = value *)
      sw 24 5 4;           (* cdr = head *)
      add 24 5 0;
      addi 21 21 1;
      addi 12 12 1;
      blt 12 13 "build";
      (* sum the list recursively *)
      add 4 24 0;
      call "sum";
      add 23 23 5;
      addi 10 10 1;
      blt 10 11 "iter";
      la 2 "result";
      sw 23 2 0;
      add 20 23 0;
      halt;
      (* sum(r4=list) -> r5; recursive, uses the stack. *)
      label "sum";
      bne 4 0 "sum_rec";
      li 5 0;
      ret;
      label "sum_rec";
      addi sp sp (-8);
      sw ra sp 0;
      lw 6 4 0;    (* car *)
      sw 6 sp 4;
      lw 4 4 4;    (* cdr *)
      call "sum";
      lw 6 sp 4;
      add 5 5 6;
      lw ra sp 0;
      addi sp sp 8;
      ret ]

(* 132.ijpeg — image coding: 8x8 integer blocks through a separable
   transform with multiply/shift butterflies and a quantisation pass that
   divides by a table entry — regular loops, multiply-heavy, periodic
   long-latency divides. *)
let ijpeg scale =
  assemble
    [ data "blocks" [ Words (lcg_mod ~seed:5 (64 * 16) 256) ];
      data "quant"
        [ Words (List.map (fun v -> (v mod 31) + 1) (lcg ~seed:3 64)) ];
      data "result" [ Word 0 ];
      init_sp;
      la 1 "blocks";
      la 2 "quant";
      li 10 0;
      li 11 scale;
      li 20 0;
      label "iter";
      li 14 0;    (* block index *)
      li 15 16;
      label "block";
      slli 3 14 8;
      add 3 1 3;  (* block base *)
      (* row butterflies *)
      li 12 0;
      li 13 8;
      label "row";
      slli 4 12 5;
      add 4 3 4;  (* row base: 8 words *)
      lw 5 4 0;
      lw 6 4 28;
      add 7 5 6;
      sub 8 5 6;
      li 26 25;
      mul 8 8 26;   (* fixed-point twiddle *)
      srai 8 8 4;
      sw 7 4 0;
      sw 8 4 28;
      lw 5 4 8;
      lw 6 4 20;
      add 7 5 6;
      sub 8 5 6;
      li 26 47;
      mul 8 8 26;
      srai 8 8 5;
      sw 7 4 8;
      sw 8 4 20;
      addi 12 12 1;
      blt 12 13 "row";
      (* quantise every fourth coefficient (divides) *)
      li 12 0;
      li 13 64;
      label "q";
      slli 4 12 2;
      add 5 3 4;
      lw 6 5 0;
      add 7 2 4;
      lw 8 7 0;
      div 9 6 8;
      sw 9 5 0;
      add 20 20 9;
      addi 12 12 4;
      blt 12 13 "q";
      addi 14 14 1;
      blt 14 15 "block";
      addi 10 10 1;
      blt 10 11 "iter";
      la 2 "result";
      sw 20 2 0;
      halt ]

(* 134.perl — a stack-machine interpreter: bytecode dispatched through a
   jump table, a memory-resident operand stack, and a probed variable
   table — interpreter dispatch plus hashing, like perl's runtime. *)
let perl scale =
  (* bytecode: pairs (op, arg); ops: 0 push, 1 add, 2 dup, 3 store var,
     4 load var, 5 drop *)
  let code =
    [ 0; 11; 0; 31; 1; 0; 2; 0; 3; 5; 0; 7; 4; 5; 1; 0; 3; 9; 0; 13; 1; 0;
      4; 9; 1; 0; 3; 2; 0; 42; 2; 0; 1; 0; 0; 4; 4; 2; 1; 0; 5; 0; 4; 9;
      1; 0; 5; 0 ]
  in
  assemble
    ([ data "bytecode" [ Words code ];
       data "ops" [ Label_words [ "op0"; "op1"; "op2"; "op3"; "op4"; "op5" ] ];
       data "vmstack" [ Space (4 * 64) ];
       data "vars" [ Space (4 * 64) ];
       data "result" [ Word 0 ];
       init_sp;
       la 1 "bytecode";
       la 2 "ops";
       la 3 "vars";
       la 25 "vmstack";  (* VM stack pointer (empty, grows up) *)
       li 10 0;
       li 11 scale;
       li 20 0;
       label "iter";
       la 25 "vmstack";
       li 12 0;
       li 13 48;
       label "dispatch";
       slli 4 12 2;
       add 4 1 4;
       lw 5 4 0;   (* op *)
       lw 6 4 4;   (* arg *)
       slli 7 5 2;
       add 7 2 7;
       lw 8 7 0;
       jr 8;
       label "op0";  (* push arg *)
       sw 6 25 0;
       addi 25 25 4;
       j "vnext";
       label "op1";  (* add top two *)
       lw 8 25 (-4);
       lw 9 25 (-8);
       add 8 8 9;
       sw 8 25 (-8);
       addi 25 25 (-4);
       j "vnext";
       label "op2";  (* dup *)
       lw 8 25 (-4);
       sw 8 25 0;
       addi 25 25 4;
       j "vnext";
       label "op3";  (* store top into var[hash(arg)] *)
       lw 8 25 (-4);
       addi 25 25 (-4);
       li 26 40503;
       mul 9 6 26;
       andi 9 9 63;
       slli 9 9 2;
       add 9 3 9;
       sw 8 9 0;
       j "vnext";
       label "op4";  (* load var[hash(arg)] *)
       li 26 40503;
       mul 9 6 26;
       andi 9 9 63;
       slli 9 9 2;
       add 9 3 9;
       lw 8 9 0;
       sw 8 25 0;
       addi 25 25 4;
       j "vnext";
       label "op5";  (* drop *)
       addi 25 25 (-4);
       label "vnext";
       addi 12 12 2;
       blt 12 13 "dispatch";
       (* accumulate whatever is on the variable table's first slot *)
       lw 8 3 0;
       add 20 20 8;
       addi 10 10 1;
       blt 10 11 "iter";
       la 2 "result";
       sw 20 2 0;
       halt ])

(* 147.vortex — object database: 64 KB of fixed-width records addressed
   through a shuffled index, chain-following between records, field reads
   and read-modify-write updates. A memory-intensive working set that
   overflows the L1 cache. *)
let vortex scale =
  let records = 2048 in
  assemble
    [ data "recs" [ Words (lcg_mod ~seed:77 (records * 8) 65536) ];
      data "index" [ Words (lcg_mod ~seed:88 records records) ];
      data "result" [ Word 0 ];
      init_sp;
      la 1 "recs";
      la 2 "index";
      li 10 0;
      li 11 scale;
      li 20 0;
      label "iter";
      li 12 0;
      li 13 records;
      label "txn";
      slli 3 12 2;
      add 3 2 3;
      lw 4 3 0;        (* record number *)
      (* follow a 4-deep chain: next = rec.f4 mod records *)
      li 14 0;
      label "chase";
      slli 5 4 5;
      add 5 1 5;       (* record base *)
      lw 6 5 0;
      lw 7 5 4;
      add 6 6 7;
      lw 7 5 8;
      add 6 6 7;
      add 20 20 6;
      sw 6 5 12;       (* update field 3 *)
      lw 4 5 16;
      andi 4 4 2047;
      addi 14 14 1;
      li 15 4;
      blt 14 15 "chase";
      addi 12 12 1;
      blt 12 13 "txn";
      addi 10 10 1;
      blt 10 11 "iter";
      la 2 "result";
      sw 20 2 0;
      halt ]
