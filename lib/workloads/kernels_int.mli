(** The eight SPEC95 integer kernels (see {!Suite} for descriptions and
    calibrated scales; each builder takes an iteration count and returns a
    program that halts).

    Kernels taking [?data_seed] regenerate their initial data from a
    different pseudo-random stream: same code (and therefore the same
    p-action cache key space), different input — used by the cross-input
    memoization experiment (`bench --ablation inputs`). *)

val go : ?data_seed:int -> int -> Isa.Program.t
val m88ksim : int -> Isa.Program.t
val gcc : int -> Isa.Program.t
val compress : ?data_seed:int -> int -> Isa.Program.t
val li_kernel : int -> Isa.Program.t
val ijpeg : int -> Isa.Program.t
val perl : int -> Isa.Program.t
val vortex : int -> Isa.Program.t
