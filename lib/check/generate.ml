(* Biased random SRISC programs for differential checking (docs/FUZZ.md).

   Richer than the QCheck generator in test/gen.ml: deeper loop nests,
   compare-ladder "branchy chains", wider jump tables, deliberate
   load/store aliasing bursts (same scratch word reached through two
   differently computed pointers, plus partial-width accesses), bounded
   recursion — and still terminating by construction: all loops are
   counted, all memory operands are masked into a scratch region (so no
   access faults on the architectural path), and the main path ends in
   [halt].

   Register conventions (shared with test/gen.ml so reproducers read the
   same way): r1 = scratch base; r2..r9, r20..r23 free; r10/r11 and
   r12/r13 (and r14/r15 for the optional third level) loop
   counters/limits; r24/r25 dispatch linkage; r26/r27 address temps. *)

module I = Isa.Instr

let gp_regs = [| 2; 3; 4; 5; 6; 7; 8; 9; 20; 21; 22; 23 |]
let fp_regs = [| 0; 1; 2; 3; 4; 5; 6 |]
let scratch_words = 256

let pick st arr = arr.(Random.State.int st (Array.length arr))
let chance st pct = Random.State.int st 100 < pct

let random_alu_op st =
  pick st
    [| I.Add; I.Sub; I.And; I.Or; I.Xor; I.Sll; I.Srl; I.Sra; I.Slt; I.Sltu |]

let random_cond st = pick st [| I.Eq; I.Ne; I.Lt; I.Ge; I.Le; I.Gt |]

(* masked scratch address into r27: r27 = r1 + (rs & mask) *)
let masked_addr ~mask rs acc =
  Prog.Insn (I.Alu (I.Add, 27, 1, 26))
  :: Prog.Insn (I.Alui (I.And, 26, rs, mask))
  :: acc

(* One random non-control instruction group, prepended (reversed) onto
   [acc]. *)
let straight st ~use_fp acc =
  let r () = pick st gp_regs in
  let fr () = pick st fp_regs in
  match Random.State.int st (if use_fp then 9 else 7) with
  | 0 -> Prog.Insn (I.Alu (random_alu_op st, r (), r (), r ())) :: acc
  | 1 ->
    let op = random_alu_op st in
    let imm =
      match op with
      | I.Sll | I.Srl | I.Sra -> Random.State.int st 32
      | I.And | I.Or | I.Xor -> Random.State.int st 65536
      | _ -> Random.State.int st 2048 - 1024
    in
    Prog.Insn (I.Alui (op, r (), r (), imm)) :: acc
  | 2 ->
    (* word load at a masked, 4-aligned scratch address *)
    Prog.Insn (I.Load (I.Lw, r (), 27, 0))
    :: masked_addr ~mask:((scratch_words - 1) * 4 land lnot 3) (r ()) acc
  | 3 ->
    Prog.Insn (I.Store (I.Sw, r (), 27, 0))
    :: masked_addr ~mask:((scratch_words - 1) * 4 land lnot 3) (r ()) acc
  | 4 ->
    (* partial-width access: bytes need no alignment, halves 2 bytes *)
    let w, mask =
      match Random.State.int st 3 with
      | 0 -> (`B, (scratch_words * 4) - 1)
      | 1 -> (`Bu, (scratch_words * 4) - 1)
      | _ -> (`H, ((scratch_words * 4) - 1) land lnot 1)
    in
    let op =
      match w with
      | `B ->
        if Random.State.bool st then I.Load (I.Lb, r (), 27, 0)
        else I.Store (I.Sb, r (), 27, 0)
      | `Bu -> I.Load (I.Lbu, r (), 27, 0)
      | `H ->
        if Random.State.bool st then I.Load (I.Lh, r (), 27, 0)
        else I.Store (I.Sh, r (), 27, 0)
    in
    Prog.Insn op :: masked_addr ~mask (r ()) acc
  | 5 -> Prog.Insn (I.Mul (r (), r (), r ())) :: acc
  | 6 ->
    (match Random.State.int st 2 with
     | 0 -> Prog.Insn (I.Div (r (), r (), r ())) :: acc
     | _ -> Prog.Insn (I.Rem (r (), r (), r ())) :: acc)
  | 7 ->
    let op = pick st [| I.Fadd; I.Fsub; I.Fmul |] in
    Prog.Insn (I.Fop (op, fr (), fr (), fr ())) :: acc
  | 8 ->
    let fd = fr () and rs = r () in
    (match Random.State.int st 4 with
     | 0 -> Prog.Insn (I.Fcvt_if (fd, rs)) :: acc
     | 1 ->
       (* unary FP op: operands kept identical so pp/parse round-trips *)
       let u = pick st [| I.Fneg; I.Fabs |] in
       let fs = fr () in
       Prog.Insn (I.Fop (u, fd, fs, fs)) :: acc
     | 2 ->
       Prog.Insn (I.Fload (fd, 27, 0))
       :: masked_addr ~mask:((scratch_words - 2) * 4 land lnot 7) rs acc
     | _ ->
       Prog.Insn (I.Fstore (fd, 27, 0))
       :: masked_addr ~mask:((scratch_words - 2) * 4 land lnot 7) rs acc)
  | _ -> assert false

(* A load/store aliasing burst: write a scratch slot through one pointer,
   immediately reload the same slot through a differently computed pointer
   (and sometimes poke one of its bytes in between), so store-to-load
   forwarding, partial overlap and memory-order rollback paths all get
   exercised. *)
let alias_burst st acc =
  let rv = pick st gp_regs and rd = pick st gp_regs in
  let slot = Random.State.int st scratch_words * 4 in
  let acc =
    Prog.Insn (I.Store (I.Sw, rv, 27, 0))
    :: Prog.Insn (I.Alui (I.Add, 27, 1, slot))
    :: acc
  in
  let acc =
    if Random.State.bool st then
      (* overlapping byte store into the same word *)
      Prog.Insn (I.Store (I.Sb, rd, 27, Random.State.int st 4))
      :: Prog.Insn (I.Alui (I.Add, 27, 1, slot))
      :: acc
    else acc
  in
  (* reload via a different computation of the same address *)
  Prog.Insn (I.Load (I.Lw, rd, 27, 0))
  :: Prog.Insn (I.Alu (I.Add, 27, 1, 26))
  :: Prog.Insn (I.Alui (I.Add, 26, 0, slot))
  :: acc

let program ?(bias = Bias.default) (st : Random.State.t) : Prog.t =
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s_%d" prefix !n
  in
  let body = ref [] in
  let emit s = body := s :: !body in
  let emit_all l = List.iter emit l in
  let table = Array.init bias.Bias.table_size (fun i -> Printf.sprintf "case%d" i) in
  for _ = 1 to bias.Bias.blocks do
    let skip = fresh "skip" in
    if chance st bias.Bias.branch_pct then
      emit (Prog.Branch (random_cond st, pick st gp_regs, pick st gp_regs, skip));
    let acc = ref [] in
    for _ = 1 to bias.Bias.block_len do
      acc := straight st ~use_fp:bias.Bias.use_fp !acc
    done;
    if chance st bias.Bias.alias_pct then acc := alias_burst st !acc;
    emit_all (List.rev !acc);
    if chance st bias.Bias.chain_pct then begin
      (* branchy chain: a compare ladder with small arms *)
      let join = fresh "join" in
      let arms = 2 + Random.State.int st 2 in
      for _ = 1 to arms do
        let next = fresh "arm" in
        emit
          (Prog.Branch
             (random_cond st, pick st gp_regs, pick st gp_regs, next));
        let arm = ref [] in
        for _ = 1 to 1 + Random.State.int st 2 do
          arm := straight st ~use_fp:false !arm
        done;
        emit_all (List.rev !arm);
        emit (Prog.Jump join);
        emit (Prog.Label next)
      done;
      emit (Prog.Insn (I.Alui (I.Xor, pick st gp_regs, pick st gp_regs, 1)));
      emit (Prog.Label join)
    end;
    if chance st bias.Bias.call_pct then emit (Prog.Jal (31, "leaf"));
    if chance st bias.Bias.recurse_pct then begin
      emit (Prog.Insn (I.Alui (I.And, 4, pick st gp_regs, 7)));
      emit (Prog.Jal (31, "recurse"))
    end;
    if chance st bias.Bias.indirect_pct then begin
      (* dispatch through the jump table on a data-dependent index *)
      let join = fresh "idis" in
      emit
        (Prog.Insn (I.Alui (I.And, 26, pick st gp_regs, bias.Bias.table_size - 1)));
      emit (Prog.Insn (I.Alui (I.Sll, 26, 26, 2)));
      emit (Prog.La (27, "dispatch"));
      emit (Prog.Insn (I.Alu (I.Add, 27, 27, 26)));
      emit (Prog.Insn (I.Load (I.Lw, 27, 27, 0)));
      emit (Prog.Insn (I.Alu (I.Add, 24, 25, 0)));
      emit (Prog.La (25, join));
      emit (Prog.Insn (I.Jr 27));
      emit (Prog.Label join);
      emit (Prog.Insn (I.Alu (I.Add, 25, 24, 0)))
    end;
    emit (Prog.Label skip)
  done;
  (* optional third loop level wrapped around the generated body *)
  let body = List.rev !body in
  let body =
    if chance st bias.Bias.third_level_pct then
      [ Prog.Li { rd = 14; v = 0; scale = false };
        Prog.Li { rd = 15; v = 2 + Random.State.int st 3; scale = true };
        Prog.Label "third" ]
      @ body
      @ [ Prog.Insn (I.Alui (I.Add, 14, 14, 1));
          Prog.Branch (I.Lt, 14, 15, "third") ]
    else body
  in
  let seed_regs =
    List.concat
      (List.map
         (fun rd ->
           [ Prog.Li { rd; v = Random.State.int st 0x10000; scale = false } ])
         (Array.to_list gp_regs))
  in
  let cases =
    List.concat
      (List.map
         (fun name ->
           let tweak =
             match Random.State.int st 4 with
             | 0 -> I.Alui (I.Add, pick st gp_regs, pick st gp_regs, 3)
             | 1 -> I.Alui (I.Xor, pick st gp_regs, pick st gp_regs, 0x55)
             | 2 -> I.Alui (I.Sra, pick st gp_regs, pick st gp_regs, 1)
             | _ -> I.Alu (I.Sub, pick st gp_regs, pick st gp_regs, pick st gp_regs)
           in
           [ Prog.Label name; Prog.Insn tweak; Prog.Insn (I.Jr 25) ])
         (Array.to_list table))
  in
  [ Prog.Data
      ( "scratch",
        [ Isa.Asm.Words
            (List.init scratch_words (fun i ->
                 (i * 3) lxor (Random.State.int st 256))) ] );
    Prog.Li { rd = Isa.Reg.sp; v = Isa.Program.default_stack_top; scale = false };
    Prog.La (1, "scratch") ]
  @ seed_regs
  @ [ Prog.Li { rd = 10; v = 0; scale = false };
      Prog.Li { rd = 11; v = bias.Bias.outer_iters; scale = true };
      Prog.Label "outer";
      Prog.Li { rd = 12; v = 0; scale = false };
      Prog.Li { rd = 13; v = bias.Bias.inner_iters; scale = true };
      Prog.Label "inner" ]
  @ body
  @ [ Prog.Insn (I.Alui (I.Add, 12, 12, 1));
      Prog.Branch (I.Lt, 12, 13, "inner");
      Prog.Insn (I.Alui (I.Add, 10, 10, 1));
      Prog.Branch (I.Lt, 10, 11, "outer");
      Prog.Insn I.Halt;
      (* leaf function *)
      Prog.Label "leaf";
      Prog.Insn (I.Alu (I.Add, 24, 2, 3));
      Prog.Insn (I.Alui (I.Sra, 24, 24, 1));
      Prog.Insn (I.Jr 31);
      (* recurse(r4 = depth): real stack frames *)
      Prog.Label "recurse";
      Prog.Branch (I.Gt, 4, 0, "recurse_go");
      Prog.Li { rd = 5; v = 0; scale = false };
      Prog.Insn (I.Jr 31);
      Prog.Label "recurse_go";
      Prog.Insn (I.Alui (I.Add, Isa.Reg.sp, Isa.Reg.sp, -8));
      Prog.Insn (I.Store (I.Sw, Isa.Reg.link, Isa.Reg.sp, 0));
      Prog.Insn (I.Store (I.Sw, 4, Isa.Reg.sp, 4));
      Prog.Insn (I.Alui (I.Add, 4, 4, -1));
      Prog.Jal (31, "recurse");
      Prog.Insn (I.Load (I.Lw, 4, Isa.Reg.sp, 4));
      Prog.Insn (I.Alu (I.Add, 5, 5, 4));
      Prog.Insn (I.Load (I.Lw, Isa.Reg.link, Isa.Reg.sp, 0));
      Prog.Insn (I.Alui (I.Add, Isa.Reg.sp, Isa.Reg.sp, 8));
      Prog.Insn (I.Jr 31) ]
  @ cases
  @ [ Prog.Data ("dispatch", [ Isa.Asm.Label_words (Array.to_list table) ]) ]
