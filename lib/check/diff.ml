(* The differential oracle (docs/FUZZ.md): runs one generated program
   under the fast, slow and baseline engines across derived scenarios —
   full runs, truncation points, a mid-run pcache save/load round-trip —
   and reports the first disagreement. The paper's claim is bit-identical
   equivalence, so every comparison is exact equality. *)

module Sim = Fastsim.Sim

(* Guard for architecturally runaway candidates (the generator terminates
   by construction, but the shrinker can produce non-halting mutants and a
   fuzz case must never hang a worker): every engine run is capped. *)
let safety_cycles = 400_000

type mismatch = {
  stage : string;  (* "full", "trunc@N", "pcache-roundtrip", "baseline" *)
  field : string;
  expected : string;  (* slow engine's value *)
  actual : string;    (* fast (or baseline) engine's value *)
}

type verdict =
  | Agree of { cycles : int }  (* full-run slow == fast, all stages clean *)
  | Diverged of mismatch
  | Engine_error of { stage : string; exn : string }
      (* one engine raised where the reference ran (or the reference
         itself raised): equally a correctness failure *)

(* A coarse identity for "fails the same way", used as the shrinker's
   predicate: stage + field for a mismatch, stage + exception constructor
   for an error. *)
let classify = function
  | Agree _ -> None
  | Diverged m -> Some (Printf.sprintf "mismatch:%s:%s" m.stage m.field)
  | Engine_error { stage; exn } ->
    let ctor = match String.index_opt exn '(' with
      | Some i -> String.trim (String.sub exn 0 i)
      | None -> exn
    in
    Some (Printf.sprintf "error:%s:%s" stage ctor)

let pp_verdict = function
  | Agree { cycles } -> Printf.sprintf "agree (%d cycles)" cycles
  | Diverged m ->
    Printf.sprintf "diverged at %s: %s (slow %s, fast %s)" m.stage m.field
      m.expected m.actual
  | Engine_error { stage; exn } ->
    Printf.sprintf "engine error at %s: %s" stage exn

let string_of_classes a =
  String.concat "," (List.map string_of_int (Array.to_list a))

let string_of_cache (c : Cachesim.Hierarchy.stats) =
  Printf.sprintf "loads=%d stores=%d l1h=%d l1m=%d l2h=%d l2m=%d wb=%d mm=%d"
    c.Cachesim.Hierarchy.loads c.Cachesim.Hierarchy.stores
    c.Cachesim.Hierarchy.l1_hits c.Cachesim.Hierarchy.l1_misses
    c.Cachesim.Hierarchy.l2_hits c.Cachesim.Hierarchy.l2_misses
    c.Cachesim.Hierarchy.writebacks c.Cachesim.Hierarchy.merged_misses

(* Exact comparison of everything both engines report. *)
let compare_results ~stage (slow : Sim.result) (fast : Sim.result) :
    mismatch option =
  let mk field expected actual = Some { stage; field; expected; actual } in
  let int_field field a b =
    if a = b then None else mk field (string_of_int a) (string_of_int b)
  in
  let checks =
    [ (fun () -> int_field "cycles" slow.Sim.cycles fast.Sim.cycles);
      (fun () -> int_field "retired" slow.Sim.retired fast.Sim.retired);
      (fun () ->
        if slow.Sim.truncated = fast.Sim.truncated then None
        else
          mk "truncated"
            (string_of_bool slow.Sim.truncated)
            (string_of_bool fast.Sim.truncated));
      (fun () ->
        if slow.Sim.retired_by_class = fast.Sim.retired_by_class then None
        else
          mk "retired_by_class"
            (string_of_classes slow.Sim.retired_by_class)
            (string_of_classes fast.Sim.retired_by_class));
      (fun () ->
        int_field "emulated_insts" slow.Sim.emulated_insts
          fast.Sim.emulated_insts);
      (fun () ->
        int_field "wrong_path_insts" slow.Sim.wrong_path_insts
          fast.Sim.wrong_path_insts);
      (fun () ->
        int_field "branches.conditionals" slow.Sim.branches.Sim.conditionals
          fast.Sim.branches.Sim.conditionals);
      (fun () ->
        int_field "branches.mispredicted" slow.Sim.branches.Sim.mispredicted
          fast.Sim.branches.Sim.mispredicted);
      (fun () ->
        int_field "branches.indirects" slow.Sim.branches.Sim.indirects
          fast.Sim.branches.Sim.indirects);
      (fun () ->
        int_field "branches.misfetched" slow.Sim.branches.Sim.misfetched
          fast.Sim.branches.Sim.misfetched);
      (fun () ->
        if slow.Sim.cache = fast.Sim.cache then None
        else
          mk "cache" (string_of_cache slow.Sim.cache)
            (string_of_cache fast.Sim.cache));
      (fun () ->
        if Emu.Arch_state.equal slow.Sim.final_state fast.Sim.final_state
        then None
        else mk "final_state" "<slow architectural state>" "<differs>") ]
  in
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let run_engine ~stage engine spec prog k =
  match Sim.run ~engine spec prog with
  | r -> k r
  | exception e ->
    Engine_error { stage; exn = Printexc.to_string e }

(* Strategy oracles (docs/STRATEGY.md). The parallel engine promises
   bit-identity with the serial run under any interval/warmup choice —
   including the pathological ones the scenario sampler emits — so it goes
   through [compare_results] unchanged. The sampled engine only promises
   exact architectural results (its timing is an estimate), so it is held
   to the architectural subset; when it reports a fallback it ran the
   serial path and must match bit-for-bit again. *)
let check_strategies ~(slow : Sim.result) ~spec prog plans :
    verdict option =
  let rec go = function
    | [] -> None
    | plan :: rest -> (
      let stage =
        Printf.sprintf "strategy:%s" (Scenario.strategy_plan_to_string plan)
      in
      let strategy =
        Scenario.materialize_strategy ~retired:slow.Sim.retired plan
      in
      let verdict =
        match strategy with
        | Sim.Serial | Sim.Parallel _ -> (
          (* same budgeted spec as the reference: stitching must be exact
             even across a mid-interval truncation *)
          match Sim.run ~strategy ~engine:`Fast spec prog with
          | exception e ->
            Some (Engine_error { stage; exn = Printexc.to_string e })
          | r -> (
            match compare_results ~stage slow r with
            | Some m -> Some (Diverged m)
            | None -> None))
        | Sim.Sampled _ ->
          if slow.Sim.truncated then None
            (* a non-halting candidate: the sampled functional pass would
               run to its own cap; nothing to check *)
          else (
            let uspec = Sim.Spec.with_max_cycles max_int spec in
            match Sim.run ~strategy ~engine:`Fast uspec prog with
            | exception e ->
              Some (Engine_error { stage; exn = Printexc.to_string e })
            | r -> (
              let prov =
                match r.Sim.provenance with
                | Some p -> p
                | None ->
                  (* the strategy engines always attach provenance *)
                  { Sim.prov_strategy = "sampled"; prov_intervals = 0;
                    prov_accepted = 0; prov_repaired = 0;
                    prov_fallback = None; prov_errors = [] }
              in
              match prov.Sim.prov_fallback with
              | Some _ -> (
                (* fell back to the serial path: exact again *)
                match compare_results ~stage slow r with
                | Some m -> Some (Diverged m)
                | None -> None)
              | None ->
                let mk field expected actual =
                  Some (Diverged { stage; field; expected; actual })
                in
                if r.Sim.retired <> slow.Sim.retired then
                  mk "retired"
                    (string_of_int slow.Sim.retired)
                    (string_of_int r.Sim.retired)
                else if r.Sim.emulated_insts <> slow.Sim.emulated_insts then
                  mk "emulated_insts"
                    (string_of_int slow.Sim.emulated_insts)
                    (string_of_int r.Sim.emulated_insts)
                else if r.Sim.retired_by_class <> slow.Sim.retired_by_class
                then
                  mk "retired_by_class"
                    (string_of_classes slow.Sim.retired_by_class)
                    (string_of_classes r.Sim.retired_by_class)
                else if
                  not
                    (Emu.Arch_state.equal slow.Sim.final_state
                       r.Sim.final_state)
                then
                  mk "final_state" "<slow architectural state>" "<differs>"
                else if r.Sim.cycles < 0 then
                  mk "cycles" ">= 0" (string_of_int r.Sim.cycles)
                else if
                  List.exists
                    (fun (_, e) -> Float.is_nan e || e < 0.)
                    prov.Sim.prov_errors
                then mk "prov_errors" "finite non-negative" "nan or negative"
                else None))
      in
      match verdict with Some v -> Some v | None -> go rest)
  in
  go plans

(* Truncation points derived from the full run: early, middle, late, and
   two consecutive late points (a pair straddles a group boundary often
   enough to catch off-by-one budget handling). *)
let truncation_points cycles =
  if cycles <= 2 then []
  else
    List.sort_uniq compare
      (List.filter
         (fun p -> p > 0 && p < cycles)
         [ cycles / 7; cycles / 3; cycles / 2; (2 * cycles) / 3;
           cycles - 2; cycles - 1 ])

let check ?(scratch_dir = Filename.get_temp_dir_name ())
    ?(strategy_plans = []) ~spec prog : verdict =
  let spec = Sim.Spec.with_max_cycles safety_cycles spec in
  run_engine ~stage:"slow" `Slow spec prog @@ fun slow ->
  run_engine ~stage:"full" `Fast spec prog @@ fun fast ->
  match compare_results ~stage:"full" slow fast with
  | Some m -> Diverged m
  | None ->
    (* truncation sweep: Fast ≡ Slow at every budget *)
    let rec trunc = function
      | [] -> Ok ()
      | p :: rest -> (
        let tspec = Sim.Spec.with_max_cycles p spec in
        let stage = Printf.sprintf "trunc@%d" p in
        match Sim.run ~engine:`Slow tspec prog with
        | exception e ->
          Error (Engine_error { stage; exn = Printexc.to_string e })
        | ts -> (
          match Sim.run ~engine:`Fast tspec prog with
          | exception e ->
            Error (Engine_error { stage; exn = Printexc.to_string e })
          | tf -> (
            match compare_results ~stage ts tf with
            | Some m -> Error (Diverged m)
            | None -> trunc rest)))
    in
    (match trunc (truncation_points slow.Sim.cycles) with
     | Error v -> v
     | Ok () -> (
     match check_strategies ~slow ~spec prog strategy_plans with
     | Some v -> v
     | None -> (
       (* pcache save/load round-trip: truncated cold run, persist,
          reload, warm full run — must still equal the slow full run *)
       let roundtrip () =
         let pc = Memo.Pcache.create ~policy:spec.Sim.Spec.policy () in
         let half = max 1 (slow.Sim.cycles / 2) in
         let warm_spec = Sim.Spec.with_pcache pc spec in
         ignore
           (Sim.run ~engine:`Fast
              (Sim.Spec.with_max_cycles half warm_spec)
              prog
             : Sim.result);
         let path =
           Filename.temp_file ~temp_dir:scratch_dir "fuzz_pcache" ".bin"
         in
         Fun.protect
           ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
           (fun () ->
             Memo.Persist.Codec.save_file pc ~program:prog path;
             let pc' = Memo.Persist.Codec.load_file ~program:prog path in
             Sim.run ~engine:`Fast (Sim.Spec.with_pcache pc' spec) prog)
       in
       match roundtrip () with
       | exception e ->
         Engine_error
           { stage = "pcache-roundtrip"; exn = Printexc.to_string e }
       | warm -> (
         match compare_results ~stage:"pcache-roundtrip" slow warm with
         | Some m -> Diverged m
         | None -> (
           (* baseline engine: a different µarchitecture, so only the
              architectural outcome is comparable — and only when neither
              run was truncated *)
           run_engine ~stage:"baseline" `Baseline spec prog @@ fun base ->
           if slow.Sim.truncated || base.Sim.truncated then
             Agree { cycles = slow.Sim.cycles }
           else if base.Sim.retired <> slow.Sim.retired then
             Diverged
               { stage = "baseline";
                 field = "retired";
                 expected = string_of_int slow.Sim.retired;
                 actual = string_of_int base.Sim.retired }
           else if
             not (Emu.Arch_state.equal slow.Sim.final_state
                    base.Sim.final_state)
           then
             Diverged
               { stage = "baseline";
                 field = "final_state";
                 expected = "<slow architectural state>";
                 actual = "<differs>" }
           else Agree { cycles = slow.Sim.cycles })))))
