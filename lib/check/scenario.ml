(* Spec sampling for the differential oracle (docs/FUZZ.md): a bounded
   pool of interesting engine configurations — every replacement policy,
   every predictor, default and pathological cache geometries, narrow and
   wide pipelines — drawn with the case's own seeded state so each fuzz
   case pins one deterministic (program, spec) pair. *)

module Spec = Fastsim.Sim.Spec

let sample_policy st =
  match Random.State.int st 6 with
  | 0 -> Memo.Pcache.Unbounded
  | 1 -> Memo.Pcache.Flush_on_full (4 * 1024 lsl Random.State.int st 4)
  | 2 -> Memo.Pcache.Copying_gc (8 * 1024 lsl Random.State.int st 3)
  | 3 ->
    let total = 16 * 1024 lsl Random.State.int st 2 in
    Memo.Pcache.Generational_gc { nursery = total / 4; total }
  | 4 ->
    (* Pathologically tiny budgets — down to less than one configuration's
       modeled size (a config is ≥ 16 bytes + 1.5/instruction), so the
       cache thrashes: every interaction cycle can trigger a flush or a
       collection that frees nothing. Equivalence must survive even when
       memoization never gets to replay anything. *)
    Memo.Pcache.Flush_on_full (1 lsl (3 + Random.State.int st 6))
  | _ ->
    let total = 1 lsl (4 + Random.State.int st 6) in
    if Random.State.bool st then Memo.Pcache.Copying_gc total
    else Memo.Pcache.Generational_gc { nursery = max 8 (total / 4); total }

let sample_predictor st =
  match Random.State.int st 3 with
  | 0 -> Fastsim.Sim.Standard
  | 1 -> Fastsim.Sim.Not_taken
  | _ -> Fastsim.Sim.Taken

let sample_cache st =
  match Random.State.int st 3 with
  | 0 -> Cachesim.Config.default
  | 1 -> Cachesim.Config.tiny
  | _ ->
    { Cachesim.Config.default with
      Cachesim.Config.l1_size = 1024 lsl Random.State.int st 4;
      l1_ways = 1 lsl Random.State.int st 2;
      mem_latency = 20 + (30 * Random.State.int st 6) }

let sample_params st =
  let d = Uarch.Params.default in
  match Random.State.int st 8 with
  | 0 -> d
  | 1 ->
    (* narrow machine: single-issue exposes different group boundaries *)
    { d with
      Uarch.Params.fetch_width = 1;
      decode_width = 1;
      retire_width = 1;
      int_units = 1;
      mem_units = 1 }
  | 2 ->
    { d with
      Uarch.Params.active_list = 16;
      int_queue = 8;
      max_spec_branches = 2 }
  | 3 ->
    (* starved rename stage: freelists of 1–8 registers per class, so
       decode stalls on physical registers rather than queue slots *)
    { d with
      Uarch.Params.phys_int_regs = 33 + Random.State.int st 8;
      phys_fp_regs = 33 + Random.State.int st 8 }
  | 4 ->
    (* issue-bandwidth cap tighter than the per-port unit counts *)
    { d with Uarch.Params.issue_width = 1 + Random.State.int st 3 }
  | 5 ->
    (* remapped issue ports: pile classes onto one port so its queue and
       unit count become the bottleneck for foreign classes *)
    let ports = Array.copy d.Uarch.Params.issue_ports in
    let idx c = Isa.Instr.fu_index c in
    (match Random.State.int st 3 with
     | 0 ->
       (* long-latency integer ops contend with FP *)
       ports.(idx Isa.Instr.Fu_int_mul) <- Uarch.Params.P_fp;
       ports.(idx Isa.Instr.Fu_int_div) <- Uarch.Params.P_fp
     | 1 ->
       (* branches resolve through the memory port *)
       ports.(idx Isa.Instr.Fu_branch) <- Uarch.Params.P_mem
     | _ ->
       (* everything on the integer port: one queue, one unit pool *)
       Array.fill ports 0 (Array.length ports) Uarch.Params.P_int);
    { d with Uarch.Params.issue_ports = ports }
  | 6 ->
    (* perturbed latencies, including 1-cycle divides and slow ALUs *)
    let lat = Array.copy d.Uarch.Params.fu_latency in
    let n = 1 + Random.State.int st 3 in
    for _ = 1 to n do
      lat.(Random.State.int st (Array.length lat)) <-
        1 + Random.State.int st 40
    done;
    { d with Uarch.Params.fu_latency = lat }
  | _ ->
    (* wide machine with a capped issue width and a deep window *)
    { d with
      Uarch.Params.fetch_width = 8;
      decode_width = 8;
      retire_width = 8;
      issue_width = 4 + Random.State.int st 5;
      active_list = 64;
      int_units = 4;
      fp_units = 4;
      mem_units = 2 }

(* Chain-store pathology: most cases run with the default store (fresh,
   unbounded, rep depth 8), but a quarter get a deliberately hostile one —
   a byte budget so tiny that [Pcache.compact] refuses on the first
   over-budget check (chains stay plain, which must be observationally
   invisible), or a rule-nesting depth of 0/1 that disables or nearly
   disables repeat folding. Equivalence and replay identity must hold
   whether chains are grammar-compressed, flat, or absent. *)
let sample_store st =
  match Random.State.int st 8 with
  | 0 ->
    (* budget below any rule's modeled size: compaction always refused *)
    Some (Memo.Store.create ~budget_bytes:(Random.State.int st 8) ())
  | 1 ->
    (* budget around one or two rules: compaction stops mid-run *)
    Some
      (Memo.Store.create
         ~budget_bytes:(1 lsl (4 + Random.State.int st 8))
         ())
  | 2 ->
    (* repeat folding disabled or capped at trivial depth *)
    Some (Memo.Store.create ~max_rep_depth:(Random.State.int st 2) ())
  | 3 ->
    (* pathologically deep nesting allowed *)
    Some (Memo.Store.create ~max_rep_depth:(8 + Random.State.int st 56) ())
  | _ -> None

let sample st : Spec.t =
  let base =
    Spec.default
    |> Spec.with_policy (sample_policy st)
    |> Spec.with_predictor (sample_predictor st)
    |> Spec.with_cache_config (sample_cache st)
    |> Spec.with_params (sample_params st)
  in
  match sample_store st with
  | None -> base
  | Some store -> Spec.with_store store base

(* Strategy plans for the differential oracle. A plan is sized relative
   to the program (divisors of the retired-instruction count) because the
   generator's programs vary by two orders of magnitude; the oracle
   materializes it once the exact run has measured the program. The
   pathological plans — 1-instruction intervals with no warmup, a warmup
   longer than the interval — deliberately force the stitcher onto its
   repair path at nearly every boundary. *)
type strategy_plan =
  | Plan_parallel of { interval_div : int; warmup_div : int }
  | Plan_parallel_one_insn
  | Plan_sampled of { len_div : int; period_div : int; warmup_div : int }

let strategy_plan_to_string = function
  | Plan_parallel { interval_div; warmup_div } ->
    Printf.sprintf "parallel[t/%d,warm t/%d]" interval_div warmup_div
  | Plan_parallel_one_insn -> "parallel[1-insn]"
  | Plan_sampled { len_div; period_div; warmup_div } ->
    Printf.sprintf "sampled[t/%d every t/%d,warm t/%d]" len_div period_div
      warmup_div

(* [retired] is the exact run's instruction count. *)
let materialize_strategy ~retired = function
  | Plan_parallel { interval_div; warmup_div } ->
    Fastsim.Sim.Parallel
      { interval_insns = max 1 (retired / interval_div);
        warmup_insns = retired / warmup_div;
        fanout = None }
  | Plan_parallel_one_insn ->
    Fastsim.Sim.Parallel
      { interval_insns = 1; warmup_insns = 0; fanout = None }
  | Plan_sampled { len_div; period_div; warmup_div } ->
    Fastsim.Sim.Sampled
      { sample_insns = max 1 (retired / len_div);
        sample_period = max 1 (retired / period_div);
        warmup_insns = retired / warmup_div }

let sample_strategy_plans st : strategy_plan list =
  let parallel =
    match Random.State.int st 4 with
    | 0 -> Plan_parallel_one_insn
    | 1 ->
      (* warmup longer than the interval: workers overlap heavily *)
      Plan_parallel { interval_div = 11; warmup_div = 5 }
    | 2 -> Plan_parallel { interval_div = 3 + Random.State.int st 10;
                           warmup_div = 1000 (* effectively no warmup *) }
    | _ -> Plan_parallel { interval_div = 4 + Random.State.int st 8;
                           warmup_div = 10 + Random.State.int st 30 }
  in
  let sampled =
    Plan_sampled
      { len_div = 10 + Random.State.int st 40;
        period_div = 4 + Random.State.int st 8;
        warmup_div = 20 + Random.State.int st 60 }
  in
  [ parallel; sampled ]

let to_json_string spec = Fastsim_obs.Json.to_string (Spec.to_json spec)

(* Reloads a saved fuzz artifact's spec. Artifacts are external input
   (hand-edited, stale across format changes), so parse and decode both
   surface as [Error] rather than an exception. *)
let of_json_string s =
  match Fastsim_obs.Json.of_string s with
  | j -> Spec.of_json_result j
  | exception Fastsim_obs.Json.Parse_error m -> Error ("spec: " ^ m)
