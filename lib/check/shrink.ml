(* Automatic reproducer minimisation (docs/FUZZ.md). Given a failing
   (program, spec) pair, greedily shrink the program while the failure
   class (stage + field, or stage + exception constructor) is preserved:

   1. chunk deletion — remove runs of statements, halving the chunk size
      like delta debugging; labels, data sections and the final [Halt]
      are never deleted so every candidate still assembles and halts;
   2. operand simplification — replace expensive opcodes with cheap ones
      ([Mul]/[Div]/[Rem] -> [Add], [Fdiv]/[Fsqrt] -> [Fadd]) and zero
      immediates, which tends to collapse timing noise around the bug;
   3. scale reduction — halve loop-trip-count constants (the [Li]
      statements the generator tagged [scale = true]), shrinking runtime
      without touching program shape.

   Each oracle call runs the simulator several times, so the total number
   of candidate evaluations is bounded. *)

module I = Isa.Instr

type outcome = {
  program : Prog.t;
  evaluations : int;   (* oracle calls spent *)
  passes : int;        (* full improvement rounds completed *)
}

let max_evaluations = 400

(* Statements the deletion pass must keep: jump targets and layout. *)
let undeletable = function
  | Prog.Label _ | Prog.Data _ -> true
  | Prog.Insn i -> i = I.Halt
  | _ -> false

let simplify_insn (i : I.t) : I.t option =
  match i with
  | I.Mul (rd, rs1, rs2) | I.Div (rd, rs1, rs2) | I.Rem (rd, rs1, rs2) ->
    Some (I.Alu (I.Add, rd, rs1, rs2))
  | I.Fop ((I.Fdiv | I.Fsqrt), fd, fs1, fs2) ->
    Some (I.Fop (I.Fadd, fd, fs1, fs2))
  | I.Alui (op, rd, rs, imm) when imm <> 0 && op <> I.Add ->
    Some (I.Alui (op, rd, rs, 0))
  | _ -> None

let simplify_stmt = function
  | Prog.Insn i ->
    (match simplify_insn i with Some i' -> Some (Prog.Insn i') | None -> None)
  | Prog.Li { rd; v; scale = true } when v > 1 ->
    Some (Prog.Li { rd; v = max 1 (v / 2); scale = true })
  | _ -> None

(* [still_fails] is the caller's oracle, pre-bound to the failure class
   observed on the original program. *)
let minimize ~(still_fails : Prog.t -> bool) (prog : Prog.t) : outcome =
  let evals = ref 0 in
  let try_candidate current candidate =
    if !evals >= max_evaluations then None
    else if candidate = current then None
    else begin
      incr evals;
      if Prog.roundtrips candidate && still_fails candidate then
        Some candidate
      else None
    end
  in
  (* One deletion sweep at a given chunk size; returns the reduced program
     (possibly unchanged). *)
  let delete_pass chunk prog =
    let arr = Array.of_list prog in
    let n = Array.length arr in
    let keep = Array.make n true in
    let current = ref prog in
    let i = ref 0 in
    while !i < n && !evals < max_evaluations do
      let hi = min n (!i + chunk) in
      let deletable = ref false in
      for k = !i to hi - 1 do
        if keep.(k) && not (undeletable arr.(k)) then deletable := true
      done;
      if !deletable then begin
        let saved = Array.sub keep !i (hi - !i) in
        for k = !i to hi - 1 do
          if not (undeletable arr.(k)) then keep.(k) <- false
        done;
        let candidate =
          List.filteri (fun k _ -> keep.(k)) (Array.to_list arr)
        in
        match try_candidate !current candidate with
        | Some c -> current := c
        | None -> Array.blit saved 0 keep !i (hi - !i)
      end;
      i := hi
    done;
    List.filteri (fun k _ -> keep.(k)) (Array.to_list arr)
  in
  let rec delete_rounds chunk prog =
    if chunk < 1 || !evals >= max_evaluations then prog
    else
      let reduced = delete_pass chunk prog in
      delete_rounds (chunk / 2) reduced
  in
  (* Point rewrites: try each simplifiable statement in isolation. *)
  let simplify_round prog =
    let arr = Array.of_list prog in
    let current = ref prog in
    Array.iteri
      (fun k stmt ->
        if !evals < max_evaluations then
          match simplify_stmt stmt with
          | None -> ()
          | Some stmt' ->
            let cur = Array.of_list !current in
            if k < Array.length cur && cur.(k) = stmt then begin
              let cand = Array.copy cur in
              cand.(k) <- stmt';
              match try_candidate !current (Array.to_list cand) with
              | Some c -> current := c
              | None -> ()
            end)
      arr;
    !current
  in
  let passes = ref 0 in
  let current = ref prog in
  let improved = ref true in
  while !improved && !evals < max_evaluations && !passes < 6 do
    incr passes;
    let before = !current in
    let start_chunk = max 1 (List.length !current / 4) in
    current := delete_rounds start_chunk !current;
    current := simplify_round !current;
    improved := Prog.instruction_count !current < Prog.instruction_count before
  done;
  { program = !current; evaluations = !evals; passes = !passes }
