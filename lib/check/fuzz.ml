(* The fuzzing campaign driver behind `fastsim fuzz` (docs/FUZZ.md).

   Each case [i] is fully determined by [(seed, i)]: a private
   [Random.State] drives the program generator and then the scenario
   sampler, so a failure reported by a parallel worker can be re-created
   bit-identically in the driver process for artifact emission and
   shrinking. Workers return only the (marshalable) verdict. *)

module Pool = Fastsim_exec.Pool

type config = {
  seed : int;
  cases : int;
  bias : Bias.t;
  shrink : bool;
  jobs : int;
  backend : Pool.backend;
  timeout_s : float;     (* per-case wall clock; <= 0. means unlimited *)
  out_dir : string;      (* where failing-case artifacts land *)
  max_failures : int;    (* stop writing artifacts after this many *)
}

let default_config =
  { seed = 0;
    cases = 100;
    bias = Bias.default;
    shrink = true;
    jobs = 1;
    backend = Pool.Fork;
    timeout_s = 120.;
    out_dir = "_fuzz";
    max_failures = 10 }

type failure = {
  f_case : int;
  f_class : string;     (* Diff.classify, or "crashed" / "timed-out" *)
  f_detail : string;
  f_source : string option;      (* path of the emitted reproducer .s *)
  f_min_source : string option;  (* path of the shrunk reproducer *)
  f_min_insns : int option;
}

type summary = {
  total : int;
  agreed : int;
  failures : failure list;  (* in case order *)
}

let materialize config case =
  let st = Random.State.make [| config.seed; case |] in
  let prog = Generate.program ~bias:config.bias st in
  let spec = Scenario.sample st in
  let plans = Scenario.sample_strategy_plans st in
  (prog, spec, plans)

let run_case config case : Diff.verdict =
  let prog, spec, plans = materialize config case in
  Diff.check ~spec ~strategy_plans:plans (Prog.assemble prog)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Emit case-NNNNNN.s / .json (and .min.s when shrinking succeeds) into
   [config.out_dir]; returns the failure record. *)
let emit_failure config ~log case ~cls ~detail =
  ensure_dir config.out_dir;
  let stem = Filename.concat config.out_dir (Printf.sprintf "case-%06d" case) in
  let prog, spec, plans = materialize config case in
  let source = stem ^ ".s" in
  write_file source (Prog.render prog);
  write_file (stem ^ ".json")
    (Printf.sprintf
       "{\"case\": %d, \"seed\": %d, \"class\": %s, \"detail\": %s, \
        \"strategies\": %s, \"spec\": %s}\n"
       case config.seed
       (Fastsim_obs.Json.to_string (Fastsim_obs.Json.Str cls))
       (Fastsim_obs.Json.to_string (Fastsim_obs.Json.Str detail))
       (Fastsim_obs.Json.to_string
          (Fastsim_obs.Json.List
             (List.map
                (fun p ->
                  Fastsim_obs.Json.Str (Scenario.strategy_plan_to_string p))
                plans)))
       (Scenario.to_json_string spec));
  let min_source, min_insns =
    if not config.shrink then (None, None)
    else begin
      let still_fails p =
        match
          Diff.classify
            (Diff.check ~spec ~strategy_plans:plans (Prog.assemble p))
        with
        | Some c -> String.equal c cls
        | None -> false
      in
      (* shrinking only makes sense for failures we can re-create locally *)
      if not (still_fails prog) then (None, None)
      else begin
        let o = Shrink.minimize ~still_fails prog in
        let path = stem ^ ".min.s" in
        write_file path (Prog.render o.Shrink.program);
        log
          (Printf.sprintf
             "  shrunk case %d: %d -> %d instructions (%d evaluations)"
             case
             (Prog.instruction_count prog)
             (Prog.instruction_count o.Shrink.program)
             o.Shrink.evaluations);
        (Some path, Some (Prog.instruction_count o.Shrink.program))
      end
    end
  in
  { f_case = case;
    f_class = cls;
    f_detail = detail;
    f_source = Some source;
    f_min_source = min_source;
    f_min_insns = min_insns }

(* Failure handling runs in the driver, over the settled array in task
   order — not from the pool's [on_outcome] callback, which fires in
   completion order and would make the report (and the [max_failures]
   artifact cutoff) depend on worker scheduling. *)
let run ?(log = fun _ -> ()) config : summary =
  let settled =
    Pool.with_temp_dir ~prefix:"fastsim_fuzz" (fun scratch_dir ->
        let timeout_s =
          if config.timeout_s > 0. then config.timeout_s else 0.
        in
        Pool.map ~backend:config.backend ~jobs:config.jobs ~timeout_s
          ~scratch_dir
          (fun case -> run_case config case)
          config.cases)
  in
  let agreed = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun case (s : Diff.verdict Pool.settled) ->
      match s.Pool.outcome with
      | Pool.Done (Diff.Agree _) -> incr agreed
      | Pool.Done v ->
        let cls =
          match Diff.classify v with Some c -> c | None -> "unknown"
        in
        let detail = Diff.pp_verdict v in
        log (Printf.sprintf "case %d FAILED: %s" case detail);
        if List.length !failures < config.max_failures then
          failures := emit_failure config ~log case ~cls ~detail :: !failures
        else
          failures :=
            { f_case = case; f_class = cls; f_detail = detail;
              f_source = None; f_min_source = None; f_min_insns = None }
            :: !failures
      | Pool.Crashed msg ->
        log (Printf.sprintf "case %d CRASHED: %s" case msg);
        failures :=
          { f_case = case; f_class = "crashed"; f_detail = msg;
            f_source = None; f_min_source = None; f_min_insns = None }
          :: !failures
      | Pool.Timed_out ->
        log (Printf.sprintf "case %d TIMED OUT" case);
        failures :=
          { f_case = case; f_class = "timed-out";
            f_detail =
              Printf.sprintf "exceeded %.0fs budget" config.timeout_s;
            f_source = None; f_min_source = None; f_min_insns = None }
          :: !failures)
    settled;
  { total = config.cases; agreed = !agreed; failures = List.rev !failures }

let pp_summary s =
  let failed = List.length s.failures in
  if failed = 0 then
    Printf.sprintf "fuzz: %d/%d cases agree, no divergences" s.agreed s.total
  else
    Printf.sprintf "fuzz: %d/%d cases agree, %d FAILED:\n%s" s.agreed s.total
      failed
      (String.concat "\n"
         (List.map
            (fun f ->
              Printf.sprintf "  case %d [%s] %s%s" f.f_case f.f_class
                f.f_detail
                (match f.f_min_source with
                 | Some p ->
                   Printf.sprintf " (minimized: %s, %d insns)" p
                     (Option.value ~default:0 f.f_min_insns)
                 | None -> (
                   match f.f_source with
                   | Some p -> Printf.sprintf " (%s)" p
                   | None -> "")))
            s.failures))
