(* Generator bias knobs (docs/FUZZ.md). Percentages are per-block
   probabilities; the generator draws against them with its own seeded
   [Random.State], so a (seed, bias) pair fully determines the program. *)

type t = {
  blocks : int;        (* straight-line blocks per loop body *)
  block_len : int;     (* instruction draws per block *)
  outer_iters : int;   (* outer loop trip count *)
  inner_iters : int;   (* inner loop trip count *)
  third_level_pct : int;  (* chance of a third, innermost counted loop *)
  branch_pct : int;    (* chance a block is guarded by a forward branch *)
  chain_pct : int;     (* chance of a compare-ladder (branchy chain) *)
  call_pct : int;      (* chance of a leaf call *)
  recurse_pct : int;   (* chance of a bounded recursive call *)
  indirect_pct : int;  (* chance of a jump-table dispatch *)
  alias_pct : int;     (* chance of a load/store aliasing burst *)
  use_fp : bool;
  table_size : int;    (* jump-table entries (power of two, 2..8) *)
}

let default =
  { blocks = 4;
    block_len = 6;
    outer_iters = 4;
    inner_iters = 10;
    third_level_pct = 30;
    branch_pct = 50;
    chain_pct = 35;
    call_pct = 30;
    recurse_pct = 25;
    indirect_pct = 35;
    alias_pct = 40;
    use_fp = true;
    table_size = 4 }

(* Smaller programs for smoke runs (--quick): same shape, fewer cycles. *)
let quick =
  { default with
    blocks = 3;
    block_len = 4;
    outer_iters = 2;
    inner_iters = 4;
    third_level_pct = 20 }
