(* The fuzzer's program representation: a label-based statement list that
   both assembles directly (via {!Isa.Asm}) and renders to textual assembly
   accepted by {!Isa.Parse} — so every emitted reproducer is a runnable
   [.s] file (`fastsim asm case.s`), and the shrinker can re-assemble each
   candidate without going through text.

   [Insn] carries only instructions whose {!Isa.Instr.pp} output the parser
   reads back verbatim; control flow that needs label resolution
   ([Branch]/[Jump]/[Jal]) and the [li]/[la] pseudo-instructions have
   dedicated constructors. *)

module I = Isa.Instr

type stmt =
  | Insn of I.t
      (* must not be [I.Branch]/[I.Jump]/[I.Jal]: those print numeric
         targets; use the label-based constructors below instead *)
  | Label of string
  | Branch of I.cond * int * int * string
  | Jump of string
  | Jal of int * string
  | Li of { rd : int; v : int; scale : bool }
      (* [scale] marks loop-trip-count constants the shrinker may halve *)
  | La of int * string
  | Data of string * Isa.Asm.data_item list

type t = stmt list

let to_stmts (p : t) : Isa.Asm.stmt list =
  List.map
    (function
      | Insn i -> Isa.Asm.insn i
      | Label l -> Isa.Asm.label l
      | Branch (c, a, b, l) -> Isa.Asm.branch c a b l
      | Jump l -> Isa.Asm.j l
      | Jal (rd, l) -> Isa.Asm.jal rd l
      | Li { rd; v; _ } -> Isa.Asm.li rd v
      | La (rd, l) -> Isa.Asm.la rd l
      | Data (name, items) -> Isa.Asm.data name items)
    p

let assemble (p : t) = Isa.Asm.assemble (to_stmts p)

(* Statements that expand to at least one instruction ([Li] may expand to
   two; close enough for the "minimal reproducer" size criterion). *)
let instruction_count (p : t) =
  List.fold_left
    (fun n -> function Label _ | Data _ -> n | _ -> n + 1)
    0 p

(* ---- rendering ---- *)

let render_float f =
  let s = Printf.sprintf "%.17g" f in
  if
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
    (* 'n' covers nan/inf, which the generator never emits anyway *)
  then s
  else s ^ ".0"

let render_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_data buf name items =
  Printf.bprintf buf ".data %s\n" name;
  List.iter
    (fun (item : Isa.Asm.data_item) ->
      match item with
      | Isa.Asm.Word v -> Printf.bprintf buf "  .word %d\n" v
      | Isa.Asm.Words vs ->
        Printf.bprintf buf "  .words %s\n"
          (String.concat " " (List.map string_of_int vs))
      | Isa.Asm.Double f ->
        Printf.bprintf buf "  .double %s\n" (render_float f)
      | Isa.Asm.Doubles fs ->
        Printf.bprintf buf "  .doubles %s\n"
          (String.concat " " (List.map render_float fs))
      | Isa.Asm.Space n -> Printf.bprintf buf "  .space %d\n" n
      | Isa.Asm.Asciiz s ->
        Printf.bprintf buf "  .asciiz \"%s\"\n" (render_string s)
      | Isa.Asm.Label_word l -> Printf.bprintf buf "  .addr %s\n" l
      | Isa.Asm.Label_words ls ->
        Printf.bprintf buf "  .addr %s\n" (String.concat " " ls))
    items

let render (p : t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun stmt ->
      match stmt with
      | Insn i -> Printf.bprintf buf "  %s\n" (I.to_string i)
      | Label l -> Printf.bprintf buf "%s:\n" l
      | Branch (c, a, b, l) ->
        Printf.bprintf buf "  %s r%d, r%d, %s\n" (I.cond_name c) a b l
      | Jump l -> Printf.bprintf buf "  j %s\n" l
      | Jal (rd, l) -> Printf.bprintf buf "  jal r%d, %s\n" rd l
      | Li { rd; v; _ } -> Printf.bprintf buf "  li r%d, %d\n" rd v
      | La (rd, l) -> Printf.bprintf buf "  la r%d, %s\n" rd l
      | Data (name, items) -> render_data buf name items)
    p;
  Buffer.contents buf

(* Round-trip used by tests and as a belt-and-braces check before a
   reproducer is written out: the rendered text must re-assemble to the
   identical program image. *)
let roundtrips (p : t) =
  let direct = assemble p in
  match Isa.Parse.program (render p) with
  | parsed -> parsed.Isa.Program.words = direct.Isa.Program.words
  | exception _ -> false
