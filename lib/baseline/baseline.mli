(** A conventional out-of-order simulator in the SimpleScalar mould.

    The paper benchmarks FastSim against the SimpleScalar 2.0 out-of-order
    simulator (sim-outorder): a register-update-unit design that interleaves
    {e functional} execution with timing simulation inside the per-cycle
    loop — every instruction, including wrong-path ones, is decoded,
    renamed and functionally executed by the pipeline model itself; there
    is no direct-execution decoupling and no memoization.

    This module reproduces that design point over the SRISC ISA so the
    Table 3 comparison exercises the same trade-off: a register-update unit
    with explicit per-entry operand/producer records built at dispatch,
    dispatch-time functional execution of every instruction (on the
    simulator's own architectural + speculative state), squash-and-repair
    misprediction recovery, and the same cache hierarchy model and
    2-bit/512-entry branch predictor configuration as FastSim.

    Cycle counts are close to, but not identical with, FastSim's — the two
    simulators model slightly different microarchitectures, just as
    SimpleScalar's MIPS-like model differs from FastSim's processor. The
    paper uses SimpleScalar purely as a simulation-speed baseline; so do
    we. *)

exception Fault of string
exception Deadlock of string

type result = {
  cycles : int;
  retired : int;           (** instructions committed (includes [Halt]). *)
  wrong_path_insts : int;  (** instructions executed then squashed. *)
  mispredicts : int;
  cache : Cachesim.Hierarchy.stats;
  final_state : Emu.Arch_state.t;
  truncated : bool;
      (** stopped at the [max_cycles] budget before the program halted;
          [cycles] equals the budget and all statistics are exact for the
          cycles that ran. *)
}

val run :
  ?ruu_size:int ->
  ?lsq_size:int ->
  ?fetch_width:int ->
  ?commit_width:int ->
  ?cache_config:Cachesim.Config.t ->
  ?max_cycles:int ->
  Isa.Program.t ->
  result
(** Simulates the program to completion. Defaults: 32-entry RUU, 16-entry
    load/store queue, 4-wide fetch/commit — comparable to the FastSim
    processor model. *)

val run_trace : Isa.Program.t -> int list
(** Addresses of committed instructions in commit order ([Halt] excluded);
    used by tests to check the committed stream against pure functional
    execution. *)

(** The in-order approximate-timing strawman (see {!module:Inorder}). *)
module Inorder : module type of Inorder
