(** A simple in-order timing approximation.

    The paper's related work (§2) contrasts FastSim with fast approximate
    simulators — WWT2's static basic-block timing, simple in-order pipeline
    models — and cites Pai et al. (HPCA 1997): out-of-order processors
    {e cannot} be approximated accurately by in-order models, because of the
    unpredictable overlap of reordered memory operations. FastSim's whole
    point is getting out-of-order accuracy without paying for it on every
    cycle.

    This module is that strawman, built honestly: a single-issue in-order
    pipeline with a blocking view of the same cache model and a fixed
    misprediction penalty. It runs fast, and the benchmark harness
    (`--ablation approx`) shows how far its cycle counts drift from the
    cycle-accurate model — and, crucially, that the error is {e not a
    constant factor} across workloads, which is what makes such models
    unusable for comparing designs. *)

type result = {
  cycles : int;     (** approximate cycle count. *)
  retired : int;
  cache : Cachesim.Hierarchy.stats;
}

val run :
  ?cache_config:Cachesim.Config.t ->
  ?mispredict_penalty:int ->
  ?max_insts:int ->
  Isa.Program.t ->
  result
(** Default misprediction penalty: 4 cycles. *)
