exception Fault = Emu.Emulator.Fault
exception Deadlock of string

type result = {
  cycles : int;
  retired : int;
  wrong_path_insts : int;
  mispredicts : int;
  cache : Cachesim.Hierarchy.stats;
  final_state : Emu.Arch_state.t;
  truncated : bool;
}

type ustate = U_waiting | U_issued of int | U_complete

type uop = {
  q_id : int;
  q_addr : int;
  q_insn : Isa.Instr.t;
  q_fu : Isa.Instr.fu_class;
  mutable q_state : ustate;
  q_srcs : int list;  (* RUU ids of in-flight producers at dispatch time *)
  q_is_load : bool;
  q_is_store : bool;
  q_mem_addr : int;   (* effective address, -1 for non-memory ops *)
  q_mem_width : int;
  mutable q_mispredict : bool;  (* unrepaired conditional misprediction *)
  q_ind_misfetch : bool;        (* indirect jump the front end missed *)
  q_is_halt : bool;
  q_rename : (int array * int array) option;
      (* rename-table snapshot for misprediction recovery *)
}

type t = {
  prog : Isa.Program.t;
  emu : Emu.Emulator.t;
  cache : Cachesim.Hierarchy.t;
  ruu : uop option array;
  lsq_size : int;
  fetch_width : int;
  commit_width : int;
  mutable oldest : int;
  mutable next : int;
  rename_i : int array;
  rename_f : int array;
  mutable fetch_stall : int;  (* uop id fetch waits on, -1 if none *)
  mutable fetch_wedged : bool;
  mutable fetch_halted : bool;
  mutable cycle : int;
  mutable retired : int;
  mutable squashed : int;
  mutable mispredicts : int;
  mutable halted : bool;
}

let cap t = Array.length t.ruu
let size t = t.next - t.oldest
let slot t id = id mod cap t

let entry t id =
  match t.ruu.(slot t id) with Some u -> u | None -> assert false

let in_ruu t id = id >= t.oldest && id < t.next

let iter_ruu f t =
  for id = t.oldest to t.next - 1 do
    f (entry t id)
  done

let lsq_count t =
  let n = ref 0 in
  iter_ruu (fun u -> if u.q_is_load || u.q_is_store then incr n) t;
  !n

let src_ready t id = (not (in_ruu t id)) || (entry t id).q_state = U_complete

let commit_hook : (uop -> unit) option ref = ref None

(* ---- commit ---- *)

let commit t =
  let k = ref 0 and continue_ = ref true in
  while !continue_ && !k < t.commit_width && size t > 0 do
    let u = entry t t.oldest in
    if u.q_state = U_complete then begin
      t.ruu.(slot t t.oldest) <- None;
      t.oldest <- t.oldest + 1;
      t.retired <- t.retired + 1;
      (match !commit_hook with Some f -> f u | None -> ());
      incr k;
      (match Isa.Instr.dest u.q_insn with
       | Some (Isa.Instr.Dint r) ->
         if t.rename_i.(r) = u.q_id then t.rename_i.(r) <- -1
       | Some (Isa.Instr.Dfloat r) ->
         if t.rename_f.(r) = u.q_id then t.rename_f.(r) <- -1
       | None -> ());
      if u.q_is_halt then begin
        t.halted <- true;
        continue_ := false
      end
    end
    else continue_ := false
  done

(* ---- misprediction recovery ---- *)

let recover t (u : uop) =
  t.mispredicts <- t.mispredicts + 1;
  let index = ref 0 in
  for id = t.oldest to u.q_id - 1 do
    if (entry t id).q_mispredict then incr index
  done;
  u.q_mispredict <- false;
  ignore (Emu.Emulator.rollback_to t.emu ~index:!index : int);
  for id = u.q_id + 1 to t.next - 1 do
    t.ruu.(slot t id) <- None;
    t.squashed <- t.squashed + 1
  done;
  t.next <- u.q_id + 1;
  (match u.q_rename with
   | Some (ri, rf) ->
     Array.blit ri 0 t.rename_i 0 (Array.length ri);
     Array.blit rf 0 t.rename_f 0 (Array.length rf)
   | None -> assert false);
  (* Entries naming squashed uops are stale (they were renamed after the
     snapshot was taken only if younger). *)
  Array.iteri
    (fun r id -> if id >= t.next then t.rename_i.(r) <- -1)
    t.rename_i;
  Array.iteri
    (fun r id -> if id >= t.next then t.rename_f.(r) <- -1)
    t.rename_f;
  if t.fetch_stall >= t.next then t.fetch_stall <- -1;
  t.fetch_wedged <- false;
  t.fetch_halted <- false

(* ---- writeback ---- *)

let writeback t =
  let id = ref t.oldest in
  while !id < t.next do
    let u = entry t !id in
    (match u.q_state with
     | U_issued n when n > 1 -> u.q_state <- U_issued (n - 1)
     | U_issued _ ->
       u.q_state <- U_complete;
       if u.q_is_store then
         Cachesim.Hierarchy.store t.cache ~now:t.cycle ~addr:u.q_mem_addr;
       if u.q_mispredict then recover t u
       else if u.q_ind_misfetch && t.fetch_stall = u.q_id then
         t.fetch_stall <- -1
     | U_waiting | U_complete -> ());
    incr id
  done

(* ---- issue ---- *)

let overlaps a1 w1 a2 w2 = a1 < a2 + w2 && a2 < a1 + w1

let issue t =
  let int_issued = ref 0 and fp_issued = ref 0 and mem_issued = ref 0 in
  let div_busy = ref false and fpdiv_busy = ref false in
  iter_ruu
    (fun u ->
      match u.q_state, u.q_fu with
      | U_issued _, Isa.Instr.Fu_int_div -> div_busy := true
      | U_issued _, (Isa.Instr.Fu_fp_div | Isa.Instr.Fu_fp_sqrt) ->
        fpdiv_busy := true
      | _ -> ())
    t;
  for id = t.oldest to t.next - 1 do
    let u = entry t id in
    if u.q_state = U_waiting && List.for_all (src_ready t) u.q_srcs then begin
      let unit_free =
        match u.q_fu with
        | Isa.Instr.Fu_int_alu | Fu_branch | Fu_int_mul -> !int_issued < 2
        | Fu_int_div -> !int_issued < 2 && not !div_busy
        | Fu_fp_add | Fu_fp_mul -> !fp_issued < 2
        | Fu_fp_div | Fu_fp_sqrt -> !fp_issued < 2 && not !fpdiv_busy
        | Fu_mem -> !mem_issued < 1
        | Fu_none -> false
      in
      if unit_free then
        if u.q_is_load then begin
          (* Address-based disambiguation against older stores. *)
          let blocked = ref false and forwarded = ref false in
          for sid = t.oldest to id - 1 do
            let s = entry t sid in
            if
              s.q_is_store
              && overlaps s.q_mem_addr s.q_mem_width u.q_mem_addr
                   u.q_mem_width
            then
              if s.q_state = U_complete then forwarded := true
              else blocked := true
          done;
          if not !blocked then begin
            incr mem_issued;
            let lat =
              if !forwarded then 2
              else
                1
                + Cachesim.Hierarchy.load t.cache ~now:t.cycle
                    ~addr:u.q_mem_addr
            in
            u.q_state <- U_issued lat
          end
        end
        else begin
          (match u.q_fu with
           | Isa.Instr.Fu_int_alu | Fu_branch | Fu_int_mul -> incr int_issued
           | Fu_int_div ->
             incr int_issued;
             div_busy := true
           | Fu_fp_add | Fu_fp_mul -> incr fp_issued
           | Fu_fp_div | Fu_fp_sqrt ->
             incr fp_issued;
             fpdiv_busy := true
           | Fu_mem -> incr mem_issued
           | Fu_none -> ());
          u.q_state <- U_issued (Isa.Instr.latency u.q_fu)
        end
    end
  done

(* ---- fetch/dispatch: in-order functional execution in the pipeline ---- *)

let srcs_of t insn =
  List.filter_map
    (fun src ->
      let id =
        match src with
        | Isa.Instr.Dint r -> t.rename_i.(r)
        | Isa.Instr.Dfloat r -> t.rename_f.(r)
      in
      if id >= 0 && in_ruu t id && (entry t id).q_state <> U_complete then
        Some id
      else None)
    (Isa.Instr.sources insn)

let push_uop t u =
  t.ruu.(slot t t.next) <- Some u;
  t.next <- t.next + 1

(* SimpleScalar interprets in the pipeline: every dispatch re-fetches the
   raw instruction word from the image and decodes it, where FastSim's
   direct execution runs predecoded code. This models the per-instruction
   decode/interpretation work the paper's baseline pays. *)
let fetch_decode t pc =
  if Isa.Program.in_code t.prog pc then
    let w =
      t.prog.Isa.Program.words.((pc - t.prog.Isa.Program.code_base) / 4)
    in
    match Isa.Encode.decode w with
    | insn -> Some insn
    | exception Isa.Encode.Decode_error _ -> None
  else None

let dispatch t =
  let k = ref 0 and continue_ = ref true in
  while
    !continue_ && !k < t.fetch_width
    && size t < cap t
    && t.fetch_stall = -1
    && (not t.fetch_wedged)
    && not t.fetch_halted
  do
    let pc = (Emu.Emulator.state t.emu).Emu.Arch_state.pc in
    let peek = fetch_decode t pc in
    let is_mem =
      match peek with
      | Some insn -> Isa.Instr.is_load insn || Isa.Instr.is_store insn
      | None -> false
    in
    if is_mem && lsq_count t >= t.lsq_size then continue_ := false
    else begin
      let rename_snap =
        match peek with
        | Some insn -> (
          match Isa.Instr.control insn with
          | Isa.Instr.Ctl_cond ->
            Some (Array.copy t.rename_i, Array.copy t.rename_f)
          | _ -> None)
        | None -> None
      in
      let srcs = match peek with Some i -> srcs_of t i | None -> [] in
      let s = Emu.Emulator.step_one t.emu in
      (match s.Emu.Emulator.s_load with
       | Some _ ->
         ignore (Emu.Emulator.pop_load t.emu : Emu.Emulator.load_rec)
       | None -> ());
      (match s.Emu.Emulator.s_store with
       | Some _ ->
         ignore (Emu.Emulator.pop_store t.emu : Emu.Emulator.store_rec)
       | None -> ());
      match s.Emu.Emulator.s_event with
      | Some (Emu.Emulator.Wedged _) ->
        t.fetch_wedged <- true;
        continue_ := false
      | Some (Emu.Emulator.Halted _) ->
        push_uop t
          { q_id = t.next;
            q_addr = pc;
            q_insn = Isa.Instr.Halt;
            q_fu = Isa.Instr.Fu_none;
            q_state = U_complete;
            q_srcs = [];
            q_is_load = false;
            q_is_store = false;
            q_mem_addr = -1;
            q_mem_width = 0;
            q_mispredict = false;
            q_ind_misfetch = false;
            q_is_halt = true;
            q_rename = None };
        t.fetch_halted <- true;
        continue_ := false
      | event ->
        let insn =
          match peek with Some i -> i | None -> assert false
        in
        let mem_addr, mem_width =
          match s.Emu.Emulator.s_load, s.Emu.Emulator.s_store with
          | Some l, _ -> (l.Emu.Emulator.l_addr, l.Emu.Emulator.l_width)
          | None, Some st -> (st.Emu.Emulator.s_addr, st.Emu.Emulator.s_width)
          | None, None -> (-1, 0)
        in
        let mispredict, fetched_taken =
          match event with
          | Some (Emu.Emulator.Cond { taken; predicted_taken; _ }) ->
            (taken <> predicted_taken, predicted_taken)
          | _ -> (false, false)
        in
        let ind_misfetch =
          match event with
          | Some (Emu.Emulator.Indirect { target; predicted; _ }) ->
            predicted <> Some target
          | _ -> false
        in
        let fu = Isa.Instr.fu_class insn in
        let u =
          { q_id = t.next;
            q_addr = pc;
            q_insn = insn;
            q_fu = fu;
            q_state = (if fu = Isa.Instr.Fu_none then U_complete else U_waiting);
            q_srcs = srcs;
            q_is_load = Isa.Instr.is_load insn;
            q_is_store = Isa.Instr.is_store insn;
            q_mem_addr = mem_addr;
            q_mem_width = mem_width;
            q_mispredict = mispredict;
            q_ind_misfetch = ind_misfetch;
            q_is_halt = false;
            q_rename = rename_snap }
        in
        push_uop t u;
        (match Isa.Instr.dest insn with
         | Some (Isa.Instr.Dint r) -> t.rename_i.(r) <- u.q_id
         | Some (Isa.Instr.Dfloat r) -> t.rename_f.(r) <- u.q_id
         | None -> ());
        if ind_misfetch then t.fetch_stall <- u.q_id;
        incr k;
        (* A taken (or predicted-taken) transfer ends the fetch packet. *)
        (match Isa.Instr.control insn with
         | Isa.Instr.Ctl_direct _ | Isa.Instr.Ctl_indirect ->
           continue_ := false
         | Isa.Instr.Ctl_cond -> if fetched_taken then continue_ := false
         | Isa.Instr.Ctl_none | Isa.Instr.Ctl_halt -> ())
    end
  done

let run ?(ruu_size = 32) ?(lsq_size = 16) ?(fetch_width = 4)
    ?(commit_width = 4) ?cache_config ?(max_cycles = max_int) prog =
  let predictor = Bpred.standard ~prog () in
  let t =
    { prog;
      emu = Emu.Emulator.create ~read_ahead:false ~predictor prog;
      cache = Cachesim.Hierarchy.create ?config:cache_config ();
      ruu = Array.make ruu_size None;
      lsq_size;
      fetch_width;
      commit_width;
      oldest = 0;
      next = 0;
      rename_i = Array.make Isa.Reg.count (-1);
      rename_f = Array.make Isa.Reg.count (-1);
      fetch_stall = -1;
      fetch_wedged = false;
      fetch_halted = false;
      cycle = 0;
      retired = 0;
      squashed = 0;
      mispredicts = 0;
      halted = false }
  in
  let last_progress = ref 0 in
  let truncated = ref false in
  while (not t.halted) && not !truncated do
    if t.cycle >= max_cycles then truncated := true
    else begin
      let before = t.retired in
      commit t;
      if not t.halted then begin
        writeback t;
        issue t;
        dispatch t
      end;
      t.cycle <- t.cycle + 1;
      if t.retired > before then last_progress := t.cycle;
      if t.cycle - !last_progress > 100_000 then
        raise (Deadlock "no commit progress")
    end
  done;
  { cycles = t.cycle;
    retired = t.retired;
    wrong_path_insts = t.squashed;
    mispredicts = t.mispredicts;
    cache = Cachesim.Hierarchy.stats t.cache;
    final_state = Emu.Emulator.state t.emu;
    truncated = !truncated }


(* Debug helper: committed instruction addresses. *)
let run_trace prog =
  let addrs = ref [] in
  commit_hook := Some (fun u -> if not u.q_is_halt then addrs := u.q_addr :: !addrs);
  ignore (run prog : result);
  commit_hook := None;
  List.rev !addrs

module Inorder = Inorder
