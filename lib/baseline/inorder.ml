type result = {
  cycles : int;
  retired : int;
  cache : Cachesim.Hierarchy.stats;
}

let run ?cache_config ?(mispredict_penalty = 4) ?(max_insts = max_int) prog =
  let predictor = Bpred.standard ~prog () in
  let emu = Emu.Emulator.create ~read_ahead:false ~predictor prog in
  let cache = Cachesim.Hierarchy.create ?config:cache_config () in
  let cycles = ref 0 and retired = ref 0 in
  let continue_ = ref true in
  while !continue_ && !retired < max_insts do
    let outstanding_before = Emu.Emulator.outstanding emu in
    let s = Emu.Emulator.step_one emu in
    match s.Emu.Emulator.s_event with
    | Some (Emu.Emulator.Halted _) -> continue_ := false
    | ev ->
      incr retired;
      (* one issue slot per cycle *)
      incr cycles;
      (* long-latency units stall the single pipeline *)
      (match Isa.Program.fetch_opt prog s.Emu.Emulator.s_addr with
       | Some insn ->
         let fu = Isa.Instr.fu_class insn in
         let lat = Isa.Instr.latency fu in
         if lat > 1 then cycles := !cycles + lat - 1
       | None -> ());
      (* blocking cache: a load stalls for its full latency *)
      (match s.Emu.Emulator.s_load with
       | Some l ->
         ignore (Emu.Emulator.pop_load emu : Emu.Emulator.load_rec);
         let lat =
           Cachesim.Hierarchy.load cache ~now:!cycles
             ~addr:l.Emu.Emulator.l_addr
         in
         cycles := !cycles + lat
       | None -> ());
      (match s.Emu.Emulator.s_store with
       | Some st ->
         ignore (Emu.Emulator.pop_store emu : Emu.Emulator.store_rec);
         Cachesim.Hierarchy.store cache ~now:!cycles
           ~addr:st.Emu.Emulator.s_addr
       | None -> ());
      (* an in-order pipeline repairs mispredictions immediately with a
         fixed refetch penalty *)
      (match ev with
       | Some (Emu.Emulator.Cond _)
         when Emu.Emulator.outstanding emu > outstanding_before ->
         ignore
           (Emu.Emulator.rollback_to emu
              ~index:(Emu.Emulator.outstanding emu - 1)
             : int);
         (* the rolled-back branch stays retired; only timing is charged *)
         cycles := !cycles + mispredict_penalty
       | Some (Emu.Emulator.Indirect { target; predicted; _ })
         when predicted <> Some target ->
         cycles := !cycles + mispredict_penalty
       | _ -> ())
  done;
  { cycles = !cycles;
    retired = !retired;
    cache = Cachesim.Hierarchy.stats cache }
