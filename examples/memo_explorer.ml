(* Memo explorer: watch fast-forwarding work. Runs a workload with
   memoization, then dumps the p-action cache's structure — the
   configurations (compressed pipeline snapshots) and their action chains,
   the graph of Figure 5/6 in the paper.

     dune exec examples/memo_explorer.exe -- [workload] [scale] *)

let dump_chain ppf first =
  let rec go depth node =
    let pad = String.make (2 * depth) ' ' in
    match node with
    | Memo.Action.N_load ln ->
      Format.fprintf ppf "%sCacheLoad\n" pad;
      List.iter
        (fun (lat, next) ->
          Format.fprintf ppf "%s  latency=%d ->\n" pad lat;
          go (depth + 2) next)
        ln.Memo.Action.l_edges
    | Memo.Action.N_store next ->
      Format.fprintf ppf "%sCacheStore\n" pad;
      go depth next
    | Memo.Action.N_ctl cn ->
      Format.fprintf ppf "%sFetchControl\n" pad;
      List.iter
        (fun (out, next) ->
          (match out with
           | Uarch.Oracle.C_cond { taken; mispredicted } ->
             Format.fprintf ppf "%s  cond %s%s ->\n" pad
               (if taken then "taken" else "not-taken")
               (if mispredicted then " (mispredicted)" else "")
           | Uarch.Oracle.C_indirect { target; hit } ->
             Format.fprintf ppf "%s  indirect 0x%x%s ->\n" pad target
               (if hit then "" else " (misfetch)")
           | Uarch.Oracle.C_stalled ->
             Format.fprintf ppf "%s  stalled ->\n" pad);
          go (depth + 2) next)
        cn.Memo.Action.c_edges
    | Memo.Action.N_rollback (i, next) ->
      Format.fprintf ppf "%sRollback bQ[%d]\n" pad i;
      go depth next
    | Memo.Action.N_halt -> Format.fprintf ppf "%sHalt\n" pad
    | Memo.Action.N_goto g ->
      Format.fprintf ppf "%sGoto config (%d entries)\n" pad
        (Uarch.Snapshot.entry_count g.Memo.Action.target.Memo.Action.cfg_key)
    | Memo.Action.N_stride s ->
      Format.fprintf ppf "%sStride (%d ops + %d compacted groups)\n" pad
        (Array.length s.Memo.Action.s_ops)
        (Array.length s.Memo.Action.s_segs);
      Array.iter
        (fun (seg : Memo.Action.stride_seg) ->
          Format.fprintf ppf "%s  seg: %d silent, %d retired, %d ops\n" pad
            seg.Memo.Action.sg_silent seg.Memo.Action.sg_retired
            (Array.length seg.Memo.Action.sg_ops))
        s.Memo.Action.s_segs;
      go (depth + 1) s.Memo.Action.s_term
  in
  go 1 first

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "perl" in
  let w = Workloads.Suite.find name in
  let scale =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else w.test_scale
  in
  let prog = w.build scale in
  Printf.printf "workload %s (scale %d): %s\n\n" w.name scale w.description;
  (* Run memoized simulation, but keep the p-action cache for inspection by
     rebuilding the run here with the driver's own pieces. *)
  let fast = Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog in
  Printf.printf "simulated %d cycles, %d instructions retired\n" fast.cycles
    fast.retired;
  (match (fast.memo, fast.pcache) with
   | Some m, Some p ->
     Printf.printf "p-action cache: %d configurations, %d actions, %.1f KB\n"
       p.static_configs p.static_actions
       (float_of_int p.peak_modeled_bytes /. 1024.);
     Printf.printf
       "dynamic: %d actions replayed over %d configuration visits\n"
       m.actions_replayed m.groups_replayed;
     Printf.printf "  (%.1f actions/config, avg chain %.0f, max chain %d)\n"
       (float_of_int m.actions_replayed
       /. float_of_int (max 1 m.groups_replayed))
       (Memo.Stats.avg_chain m) m.chain_max
   | _ -> ());
  (* Show the first cycles of detailed simulation and the structure that
     gets recorded, by re-running a few steps by hand. *)
  print_endline "\n--- first detailed cycles (pipeline dumps) ---";
  let pred = Bpred.standard ~prog () in
  let emu = Emu.Emulator.create ~predictor:pred prog in
  let cache = Cachesim.Hierarchy.create () in
  let oracle : Uarch.Oracle.t =
    { cache_load =
        (fun ~now ->
          let l = Emu.Emulator.pop_load emu in
          Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr);
      cache_store =
        (fun ~now ->
          let s = Emu.Emulator.pop_store emu in
          Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr);
      fetch_control =
        (fun () ->
          match Emu.Emulator.next_event emu with
          | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
            Uarch.Oracle.C_cond
              { taken; mispredicted = taken <> predicted_taken }
          | Emu.Emulator.Indirect { target; predicted; _ } ->
            Uarch.Oracle.C_indirect { target; hit = predicted = Some target }
          | _ -> Uarch.Oracle.C_stalled);
      rollback =
        (fun ~index -> ignore (Emu.Emulator.rollback_to emu ~index : int)) }
  in
  let uarch = Uarch.Detailed.create prog in
  let pcache = Memo.Pcache.create () in
  let items = ref [] and silent = ref 0 and retired = ref 0 in
  let cfg = ref (Memo.Pcache.intern pcache (Uarch.Detailed.snapshot uarch)) in
  (* record the first few groups *)
  let shown = ref 0 in
  let cycle = ref 0 in
  while !shown < 3 && not (Uarch.Detailed.halted uarch) do
    let wrapped =
      { oracle with
        Uarch.Oracle.cache_load =
          (fun ~now ->
            let lat = oracle.Uarch.Oracle.cache_load ~now in
            items := Memo.Action.I_load lat :: !items;
            lat);
        cache_store =
          (fun ~now ->
            oracle.Uarch.Oracle.cache_store ~now;
            items := Memo.Action.I_store :: !items);
        fetch_control =
          (fun () ->
            let out = oracle.Uarch.Oracle.fetch_control () in
            items := Memo.Action.I_ctl out :: !items;
            out) }
    in
    let r = Uarch.Detailed.step_cycle uarch ~now:!cycle wrapped in
    incr cycle;
    retired := !retired + r.Uarch.Detailed.retired;
    if r.Uarch.Detailed.interactions > 0 then begin
      let next = Memo.Pcache.intern pcache (Uarch.Detailed.snapshot uarch) in
      ignore
        (Memo.Pcache.merge_group pcache !cfg ~silent:!silent
           ~retired:!retired ~classes:[||]
           ~items:(List.rev !items)
           ~terminal:(Memo.Action.T_goto next)
          : Memo.Action.config option);
      Printf.printf
        "\ngroup %d: config (%d entries, %d modeled bytes), %d silent \
         cycles, %d retired, chain:\n"
        !shown
        (Uarch.Snapshot.entry_count !cfg.Memo.Action.cfg_key)
        (Uarch.Snapshot.modeled_bytes !cfg.Memo.Action.cfg_key)
        !silent !retired;
      (match !cfg.Memo.Action.cfg_group with
       | Some g -> dump_chain Format.std_formatter g.Memo.Action.g_first
       | None -> ());
      Format.printf "pipeline after this group:\n%a" Uarch.Detailed.dump
        uarch;
      cfg := next;
      items := [];
      silent := 0;
      retired := 0;
      incr shown
    end
    else incr silent
  done
