(* Warm start: persist the p-action cache and reuse it in a second
   process/run of the same program — an extension of the paper's
   space-for-time trade across runs.

     dune exec examples/warm_start.exe -- [workload] [scale] *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "m88ksim" in
  let w = Workloads.Suite.find name in
  let scale =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else w.default_scale
  in
  let prog = w.build scale in
  let path = Filename.temp_file "fastsim_warm" ".fspc" in
  Printf.printf "workload %s (scale %d)\n\n" w.name scale;

  let run_fast pc =
    Fastsim.Sim.run ~engine:`Fast
      Fastsim.Sim.Spec.(with_pcache pc default)
      prog
  in
  let pc = Memo.Pcache.create () in
  let cold, t_cold = time (fun () -> run_fast pc) in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  Printf.printf "cold run:  %d cycles in %.3fs; p-action cache saved (%d \
                 configs, %d bytes on disk)\n"
    cold.cycles t_cold
    (Memo.Pcache.counters pc).static_configs
    (Unix.stat path).st_size;
  (match cold.memo with
   | Some m ->
     Printf.printf "           detailed fraction %.3f%%\n"
       (100. *. Memo.Stats.detailed_fraction m)
   | None -> ());

  let warm_pc = Memo.Persist.Codec.load_file ~program:prog path in
  let warm, t_warm = time (fun () -> run_fast warm_pc) in
  Printf.printf "\nwarm run:  %d cycles in %.3fs (%.2fx the cold run)\n"
    warm.cycles t_warm (t_cold /. t_warm);
  (match warm.memo with
   | Some m ->
     Printf.printf "           detailed fraction %.4f%% — the whole run \
                    fast-forwards\n"
       (100. *. Memo.Stats.detailed_fraction m)
   | None -> ());
  assert (cold.cycles = warm.cycles);
  assert (cold.retired = warm.retired);
  Printf.printf "\nidentical cycle counts (%d); accuracy is untouched\n"
    cold.cycles;
  Sys.remove path
