(* Custom kernel: how a downstream user writes their own workload with the
   assembler DSL and studies it under all three engines — including a
   what-if with a different processor configuration.

     dune exec examples/custom_kernel.exe *)

open Workloads.Dsl

(* A string-search kernel: count occurrences of a 4-byte needle in a
   pseudo-random haystack, byte loads with a data-dependent inner match
   loop — the kind of code whose branches resist prediction. *)
let search_kernel ~haystack_len ~iters =
  assemble
    [ data "haystack"
        [ Words
            (List.map
               (fun v -> v land 0x03030303)
               (lcg ~seed:2024 (haystack_len / 4))) ];
      data "needle" [ Words [ 0x00010203 ] ];
      data "result" [ Word 0 ];
      init_sp;
      la 1 "haystack";
      la 2 "needle";
      li 20 0;              (* match count *)
      li 10 0;
      li 11 iters;
      label "iter";
      li 12 0;
      li 13 (haystack_len - 4);
      label "pos";
      add 3 1 12;
      li 14 0;              (* needle index *)
      label "cmp";
      add 4 3 14;
      lbu 5 4 0;
      add 6 2 14;
      lbu 7 6 0;
      bne 5 7 "no_match";
      addi 14 14 1;
      li 8 4;
      blt 14 8 "cmp";
      addi 20 20 1;         (* full match *)
      label "no_match";
      addi 12 12 1;
      blt 12 13 "pos";
      addi 10 10 1;
      blt 10 11 "iter";
      la 9 "result";
      sw 20 9 0;
      halt ]

let engines prog =
  let t0 = Unix.gettimeofday () in
  let slow = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog in
  let t1 = Unix.gettimeofday () in
  let fast = Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog in
  let t2 = Unix.gettimeofday () in
  let base = Baseline.run prog in
  let t3 = Unix.gettimeofday () in
  assert (slow.cycles = fast.cycles);
  (slow, fast, base, t1 -. t0, t2 -. t1, t3 -. t2)

let () =
  let prog = search_kernel ~haystack_len:4096 ~iters:40 in
  let _, _, insts = Fastsim.Sim.functional prog in
  Printf.printf "search kernel: %d dynamic instructions\n\n" insts;
  let slow, fast, base, t_slow, t_fast, t_base = engines prog in
  Printf.printf "%-22s %12s %10s %8s\n" "engine" "cycles" "time (s)" "IPC";
  Printf.printf "%-22s %12d %10.2f %8.2f\n" "SlowSim" slow.cycles t_slow
    (float_of_int slow.retired /. float_of_int slow.cycles);
  Printf.printf "%-22s %12d %10.2f %8.2f\n" "FastSim (memoized)" fast.cycles
    t_fast
    (float_of_int fast.retired /. float_of_int fast.cycles);
  Printf.printf "%-22s %12d %10.2f %8.2f\n" "SimpleScalar-style" base.cycles
    t_base
    (float_of_int base.retired /. float_of_int base.cycles);
  Printf.printf "\nmemoization speedup: %.2fx\n" (t_slow /. t_fast);
  (* What-if: a narrower machine. Both engines still agree exactly. *)
  let narrow =
    { Uarch.Params.default with
      Uarch.Params.fetch_width = 2;
      decode_width = 2;
      retire_width = 2;
      int_units = 1;
      active_list = 16 }
  in
  let narrow_spec = Fastsim.Sim.Spec.(with_params narrow default) in
  let slow2 = Fastsim.Sim.run ~engine:`Slow narrow_spec prog in
  let fast2 = Fastsim.Sim.run ~engine:`Fast narrow_spec prog in
  assert (slow2.cycles = fast2.cycles);
  Printf.printf
    "\nwhat-if (2-wide, 1 ALU, 16-entry window): %d cycles (%.2fx slower \
     than the 4-wide machine)\n"
    slow2.cycles
    (float_of_int slow2.cycles /. float_of_int slow.cycles)
