(* Quickstart: assemble a small program, simulate it with and without
   memoization, and check that fast-forwarding changed nothing but the
   wall-clock.

     dune exec examples/quickstart.exe *)

let prog =
  (* sum an array, counting odd and even elements separately *)
  Workloads.Dsl.(
    assemble
      [ data "numbers" [ Words (List.init 512 (fun i -> (i * 37) land 0xff)) ];
        data "result" [ Words [ 0; 0 ] ];
        la 1 "numbers";
        li 10 0;
        li 11 512;
        li 20 0;  (* sum of evens *)
        li 21 0;  (* sum of odds *)
        label "loop";
        lw 2 1 0;
        andi 3 2 1;
        bne 3 0 "odd";
        add 20 20 2;
        j "next";
        label "odd";
        add 21 21 2;
        label "next";
        addi 1 1 4;
        addi 10 10 1;
        blt 10 11 "loop";
        la 4 "result";
        sw 20 4 0;
        sw 21 4 4;
        halt ])

let () =
  print_endline "FastSim quickstart";
  print_endline "==================";
  (* 1. Pure functional execution: what the program computes. *)
  let st, _mem, insts = Fastsim.Sim.functional prog in
  Printf.printf "\nfunctional run: %d instructions\n" insts;
  Printf.printf "  sum of evens (r20) = %d\n" (Emu.Arch_state.get_i st 20);
  Printf.printf "  sum of odds  (r21) = %d\n" (Emu.Arch_state.get_i st 21);
  (* 2. Cycle-accurate simulation, conventional (SlowSim). *)
  let t0 = Unix.gettimeofday () in
  let slow = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog in
  let t_slow = Unix.gettimeofday () -. t0 in
  Printf.printf "\nSlowSim (detailed every cycle):\n";
  Printf.printf "  %d cycles, %d retired, IPC %.2f, %.1f ms\n"
    slow.cycles slow.retired
    (float_of_int slow.retired /. float_of_int slow.cycles)
    (1000. *. t_slow);
  Printf.printf "  wrong-path instructions executed and rolled back: %d\n"
    slow.wrong_path_insts;
  Printf.printf "  L1 misses: %d, L2 misses: %d\n" slow.cache.l1_misses
    slow.cache.l2_misses;
  (* 3. The same simulation with fast-forwarding. *)
  let t0 = Unix.gettimeofday () in
  let fast = Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog in
  let t_fast = Unix.gettimeofday () -. t0 in
  Printf.printf "\nFastSim (memoized):\n";
  Printf.printf "  %d cycles, %d retired, %.1f ms (%.1fx faster)\n"
    fast.cycles fast.retired (1000. *. t_fast)
    (t_slow /. t_fast);
  (match (fast.memo, fast.pcache) with
   | Some m, Some p ->
     Printf.printf
       "  %d configurations, %d actions, %.1f KB modeled p-action cache\n"
       p.static_configs p.static_actions
       (float_of_int p.peak_modeled_bytes /. 1024.);
     Printf.printf "  detailed fraction: %.3f%% of retired instructions\n"
       (100. *. Memo.Stats.detailed_fraction m)
   | _ -> ());
  assert (slow.cycles = fast.cycles);
  assert (slow.retired = fast.retired);
  print_endline "\ncycle counts identical: memoization cost nothing but memory"
