(* Policy sweep: a miniature of the paper's Figure 7. Sweeps the p-action
   cache budget for one workload under all three replacement policies and
   prints the resulting memoization speedup curve.

     dune exec examples/policy_sweep.exe -- [workload] [scale] *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let w = Workloads.Suite.find name in
  let scale =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else max 1 (w.default_scale / 4)
  in
  let prog = w.build scale in
  Printf.printf "workload %s (scale %d)\n" w.name scale;
  let slow, t_slow =
    time (fun () -> Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog)
  in
  let fast, t_fast =
    time (fun () -> Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog)
  in
  assert (slow.cycles = fast.cycles);
  let natural =
    match fast.pcache with
    | Some p -> p.peak_modeled_bytes
    | None -> 0
  in
  Printf.printf
    "SlowSim %.2fs; unbounded FastSim %.2fs (%.2fx); natural p-action size \
     %.1f KB\n\n"
    t_slow t_fast (t_slow /. t_fast)
    (float_of_int natural /. 1024.);
  Printf.printf "%10s %14s %14s %16s\n" "budget" "flush-on-full"
    "copying-gc" "generational-gc";
  let budgets =
    List.filter (fun b -> b <= max 4096 natural)
      [ 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072 ]
  in
  List.iter
    (fun budget ->
      let speedup policy =
        let r, t =
          time (fun () ->
              Fastsim.Sim.run ~engine:`Fast
                Fastsim.Sim.Spec.(with_policy policy default)
                prog)
        in
        assert (r.Fastsim.Sim.cycles = slow.cycles);
        t_slow /. t
      in
      Printf.printf "%9dK %14.2f %14.2f %16.2f\n" (budget / 1024)
        (speedup (Memo.Pcache.Flush_on_full budget))
        (speedup (Memo.Pcache.Copying_gc budget))
        (speedup
           (Memo.Pcache.Generational_gc
              { nursery = max 512 (budget / 4); total = budget })))
    budgets;
  print_endline
    "\n(cycle counts are identical in every cell: policies trade time for \
     memory, never accuracy)"
